// Command krum-ps runs the parameter server over real TCP: it waits for
// the declared number of workers (launch them with krum-worker) and
// trains the selected workload with the selected aggregation rule.
// Byzantine behaviour lives in the workers (-behaviour on krum-worker),
// matching a real deployment where the server cannot tell who is lying.
//
//	krum-ps -addr 127.0.0.1:7070 -workers 5 -f 1 -rule krum -rounds 200
//
// The -f flag declares how many Byzantine workers the RULE should
// tolerate; the actual number of misbehaving workers is whatever you
// launched.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"krum"
	"krum/distsgd"
	"krum/internal/harness"
	"krum/internal/transport"
	"krum/model"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	workers := flag.Int("workers", 5, "number of workers to wait for")
	fTol := flag.Int("f", 1, "Byzantine workers the rule tolerates")
	// All help text below is generated from the central registries so it
	// can never drift from the implemented sets.
	ruleSpec := flag.String("rule", "krum", "aggregation rule spec: "+krum.RuleUsage())
	workloadSpec := flag.String("workload", "mnist", "workload spec: "+harness.WorkloadUsage())
	rounds := flag.Int("rounds", 200, "synchronous rounds")
	gamma := flag.Float64("gamma", 0.5, "initial learning rate (ignored when -schedule is set)")
	schedSpec := flag.String("schedule", "",
		"learning-rate schedule spec: "+krum.ScheduleUsage()+" (default: inverset from -gamma)")
	evalEvery := flag.Int("eval-every", 20, "evaluate every k rounds (0 = off)")
	seed := flag.Uint64("seed", 42, "random seed")
	waitFor := flag.Duration("accept-timeout", 2*time.Minute, "how long to wait for workers")
	savePath := flag.String("save", "", "write the final model checkpoint to this file")
	loadPath := flag.String("load", "", "resume from a model checkpoint file")
	flag.Parse()

	wl, err := harness.BuildWorkload(*workloadSpec, harness.Quick, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workload: %v\n", err)
		return 2
	}
	rule, err := krum.ParseRuleIn(krum.SpecContext{N: *workers, F: *fTol}, *ruleSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	schedule := krum.ScheduleInverseTStretched(*gamma, 0.75, float64(*rounds)/3)
	if *schedSpec != "" {
		schedule, err = krum.ParseSchedule(*schedSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 2
		}
	}
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load: %v\n", err)
			return 1
		}
		err = model.LoadParams(f, wl.Model)
		_ = f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "load: %v\n", err)
			return 1
		}
		fmt.Printf("resumed from %s\n", *loadPath)
	}

	pool, err := transport.Listen(*addr, wl.Model.Dim())
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		return 1
	}
	defer func() { _ = pool.Close() }()

	fmt.Printf("parameter server on %s — %s\n", pool.Addr(), wl.Description)
	fmt.Printf("rule %s, waiting for %d workers...\n", rule.Name(), *workers)
	if err := pool.AcceptWorkers(*workers, *waitFor); err != nil {
		fmt.Fprintf(os.Stderr, "accept: %v\n", err)
		return 1
	}
	fmt.Printf("%d workers joined; training %d rounds\n", *workers, *rounds)

	cfg := distsgd.Config{
		Model:     wl.Model,
		Dataset:   wl.Dataset,
		Rule:      rule,
		N:         *workers,
		F:         0, // all proposals come over the wire; see command doc
		Schedule:  schedule,
		Rounds:    *rounds,
		Seed:      *seed,
		EvalEvery: *evalEvery,
		Source:    pool,
		OnRound: func(s distsgd.RoundStats) {
			if s.Evaluated {
				fmt.Printf("round %4d  train-loss %.4f  test-acc %.4f  γ %.4g\n",
					s.Round, s.TrainLoss, s.TestAccuracy, s.LearningRate)
			}
		},
	}
	res, err := distsgd.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "training: %v\n", err)
		return 1
	}
	if res.Diverged {
		fmt.Printf("DIVERGED at round %d (the rule did not contain the attack)\n", res.DivergedRound)
		return 0
	}
	fmt.Printf("done: final test accuracy %.4f\n", res.FinalTestAccuracy)
	if *savePath != "" {
		if err := wl.Model.SetParams(res.FinalParams); err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			return 1
		}
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			return 1
		}
		err = model.SaveParams(f, wl.Model)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			return 1
		}
		fmt.Printf("checkpoint written to %s\n", *savePath)
	}
	return 0
}
