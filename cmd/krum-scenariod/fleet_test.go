package main

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"krum/scenario"
)

// fleetSpec builds a distinct (but never-executed) cell for fleet
// dispatch unit tests; seed differentiates the affinity group.
func fleetSpec(seed uint64) scenario.Spec {
	return scenario.Spec{
		Workload:  "gmm(k=3,dim=4,radius=4,sigma=0.5)",
		Rule:      "krum",
		Schedule:  "const(gamma=0.05)",
		N:         5,
		F:         1,
		Rounds:    4,
		BatchSize: 4,
		Seed:      seed,
	}
}

// TestFleetReleasedTasksCollectible is the regression test for the
// dispatch-queue memory leak: the old slice queue (fl.queue =
// fl.queue[1:]) never cleared dequeued slots, so the backing array
// pinned every completed *fleetTask — spec, result bytes and done
// channel — for the life of the coordinator. The ring queue nils every
// vacated slot; this test proves completed tasks actually become
// garbage-collectible.
func TestFleetReleasedTasksCollectible(t *testing.T) {
	fl := newFleet(time.Minute)
	grant := fl.join(1)

	const tasks = 32
	var collected atomic.Int32
	// Enqueue, assign and complete inside a closure so the test frame
	// holds no task references afterwards.
	func() {
		for i := 0; i < tasks; i++ {
			task, ok := fl.enqueue(fleetSpec(uint64(i)), defaultTenant, 0)
			if !ok {
				t.Fatal("enqueue refused with a live worker")
			}
			runtime.SetFinalizer(task, func(*fleetTask) { collected.Add(1) })
			assigned, known := fl.tryAssign(grant.WorkerID, grant.Token, 1)
			if !known || len(assigned) != 1 || assigned[0] != task {
				t.Fatalf("task %d: tryAssign returned %d tasks (known=%v)", i, len(assigned), known)
			}
			if accepted, known := fl.complete(grant.WorkerID, grant.Token, task.id, nil, "unit test"); !accepted || !known {
				t.Fatalf("task %d: complete not accepted", i)
			}
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for collected.Load() < tasks && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
	}
	if got := collected.Load(); got < tasks {
		t.Fatalf("only %d of %d completed tasks were collected — the dispatch queue still pins released tasks", got, tasks)
	}
}

// TestFleetFairShareDispatch pins the fair-share invariant: two
// equal-priority tenants with queued backlogs alternate dispatches, so
// each holds half the fleet's attention regardless of queue depth.
func TestFleetFairShareDispatch(t *testing.T) {
	fl := newFleet(time.Minute)
	grant := fl.join(64)
	// Lopsided backlogs: tenant a queues 3x what tenant b does.
	for i := 0; i < 30; i++ {
		if _, ok := fl.enqueue(fleetSpec(uint64(i)), "tenant-a", 0); !ok {
			t.Fatal("enqueue refused")
		}
	}
	for i := 0; i < 10; i++ {
		if _, ok := fl.enqueue(fleetSpec(uint64(100+i)), "tenant-b", 0); !ok {
			t.Fatal("enqueue refused")
		}
	}
	// Assign 20 tasks one at a time without completing any: in-flight
	// balance is exactly what fair share equalizes.
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		assigned, known := fl.tryAssign(grant.WorkerID, grant.Token, 1)
		if !known || len(assigned) != 1 {
			t.Fatalf("assign %d: got %d tasks", i, len(assigned))
		}
		counts[assigned[0].tenant]++
	}
	if counts["tenant-a"] != 10 || counts["tenant-b"] != 10 {
		t.Fatalf("dispatches a=%d b=%d, want a perfect 10/10 split under fair share", counts["tenant-a"], counts["tenant-b"])
	}
}

// TestFleetPriorityDispatch pins strict tier precedence: a
// higher-priority tenant's backlog drains completely before any
// lower-priority task dispatches.
func TestFleetPriorityDispatch(t *testing.T) {
	fl := newFleet(time.Minute)
	grant := fl.join(64)
	for i := 0; i < 5; i++ {
		if _, ok := fl.enqueue(fleetSpec(uint64(i)), "background", 0); !ok {
			t.Fatal("enqueue refused")
		}
	}
	for i := 0; i < 3; i++ {
		if _, ok := fl.enqueue(fleetSpec(uint64(50+i)), "rush", 5); !ok {
			t.Fatal("enqueue refused")
		}
	}
	var order []string
	for i := 0; i < 8; i++ {
		assigned, _ := fl.tryAssign(grant.WorkerID, grant.Token, 1)
		if len(assigned) != 1 {
			t.Fatalf("assign %d: got %d tasks", i, len(assigned))
		}
		order = append(order, assigned[0].tenant)
	}
	want := []string{"rush", "rush", "rush", "background", "background", "background", "background", "background"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want priority-5 tasks strictly first", order)
		}
	}
}

// TestFleetAffinityDispatch pins the affinity window: a worker that
// just ran a workload×seed is preferentially handed another task of
// the same group, even when it is not at the head of the queue.
func TestFleetAffinityDispatch(t *testing.T) {
	fl := newFleet(time.Minute)
	grant := fl.join(64)
	// Interleave two affinity groups (seeds 1 and 2) in one queue:
	// 1, 2, 1, 2.
	for _, seed := range []uint64{1, 2, 1, 2} {
		if _, ok := fl.enqueue(fleetSpec(seed), defaultTenant, 0); !ok {
			t.Fatal("enqueue refused")
		}
	}
	var seeds []uint64
	for i := 0; i < 4; i++ {
		assigned, _ := fl.tryAssign(grant.WorkerID, grant.Token, 1)
		if len(assigned) != 1 {
			t.Fatalf("assign %d: got %d tasks", i, len(assigned))
		}
		seeds = append(seeds, assigned[0].spec.Seed)
	}
	want := []uint64{1, 1, 2, 2}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("affinity dispatch order %v, want %v (runs of one workload×seed)", seeds, want)
		}
	}
}

// TestFleetBatchedAssignAndHeartbeat pins the batched protocol paths:
// one tryAssign hands out up to max tasks, and one heartbeat naming
// several tasks refreshes every named deadline.
func TestFleetBatchedAssignAndHeartbeat(t *testing.T) {
	fl := newFleet(50 * time.Millisecond)
	grant := fl.join(8)
	for i := 0; i < 5; i++ {
		if _, ok := fl.enqueue(fleetSpec(uint64(i)), defaultTenant, 0); !ok {
			t.Fatal("enqueue refused")
		}
	}
	first, known := fl.tryAssign(grant.WorkerID, grant.Token, 3)
	if !known || len(first) != 3 {
		t.Fatalf("batched assign: got %d tasks (known=%v), want 3", len(first), known)
	}
	rest, _ := fl.tryAssign(grant.WorkerID, grant.Token, 10)
	if len(rest) != 2 {
		t.Fatalf("second batched assign: got %d tasks, want the remaining 2", len(rest))
	}

	ids := make([]string, 0, len(first))
	for _, task := range first {
		ids = append(ids, task.id)
	}
	// Let the original deadlines lapse, keeping them alive with batched
	// heartbeats — then sweep: the heartbeated 3 must survive, the
	// unheartbeated 2 requeue.
	for i := 0; i < 4; i++ {
		time.Sleep(20 * time.Millisecond)
		if !fl.heartbeat(grant.WorkerID, grant.Token, ids) {
			t.Fatal("heartbeat rejected a live member")
		}
	}
	// The worker itself is alive (heartbeats refreshed lastSeen); only
	// the two never-heartbeated task deadlines have lapsed.
	fl.sweep(time.Now())
	fl.mu.Lock()
	survivors := len(fl.assigned)
	requeued := fl.queued
	fl.mu.Unlock()
	if survivors != 3 || requeued != 2 {
		t.Fatalf("after sweep: %d assigned, %d requeued; want the 3 heartbeated tasks assigned and 2 requeued", survivors, requeued)
	}
}

// TestFleetStatusTenantCounters pins the per-tenant observability
// surface: dispatch and requeue counters land on the right tenant.
func TestFleetStatusTenantCounters(t *testing.T) {
	fl := newFleet(time.Minute)
	grant := fl.join(8)
	if _, ok := fl.enqueue(fleetSpec(1), "tenant-x", 0); !ok {
		t.Fatal("enqueue refused")
	}
	assigned, _ := fl.tryAssign(grant.WorkerID, grant.Token, 1)
	if len(assigned) != 1 {
		t.Fatal("no task assigned")
	}
	// A garbage payload requeues the task and counts a requeue.
	if accepted, known := fl.complete(grant.WorkerID, grant.Token, assigned[0].id, []byte(`{"bogus": 1}`), ""); accepted || !known {
		t.Fatalf("garbage payload: accepted=%v known=%v", accepted, known)
	}
	st := fl.status()
	var row *fleetTenantJSON
	for i := range st.Tenants {
		if st.Tenants[i].Tenant == "tenant-x" {
			row = &st.Tenants[i]
		}
	}
	if row == nil {
		t.Fatalf("tenant-x missing from status tenants: %+v", st.Tenants)
	}
	if row.Dispatches != 1 || row.Requeues != 1 || row.Queued != 1 || row.InFlight != 0 {
		t.Fatalf("tenant-x counters %+v, want 1 dispatch, 1 requeue, 1 queued, 0 in flight", *row)
	}
	depths := fl.queueDepths()
	if len(depths) != 1 || depths[0] != (fleetQueueDepthJSON{Tenant: "tenant-x", Priority: 0, Depth: 1}) {
		t.Fatalf("queue depths %+v, want one tenant-x/0 queue of depth 1", depths)
	}
}

// TestFleetRingRemoveAt pins the ring's affinity-removal arithmetic
// across wraparound, which index math makes easy to get wrong.
func TestFleetRingRemoveAt(t *testing.T) {
	r := &taskRing{}
	mk := func(n int) *fleetTask { return &fleetTask{id: fmt.Sprintf("t%d", n)} }
	// Force wraparound: fill, drain a prefix, refill.
	for i := 0; i < 6; i++ {
		r.push(mk(i))
	}
	for i := 0; i < 4; i++ {
		if got := r.pop(); got.id != fmt.Sprintf("t%d", i) {
			t.Fatalf("pop %d: got %s", i, got.id)
		}
	}
	for i := 6; i < 10; i++ {
		r.push(mk(i))
	}
	// Queue now: 4 5 6 7 8 9. Remove index 3 (t7); FIFO order of the
	// rest must hold.
	if got := r.removeAt(3); got.id != "t7" {
		t.Fatalf("removeAt(3): got %s, want t7", got.id)
	}
	want := []string{"t4", "t5", "t6", "t8", "t9"}
	for _, id := range want {
		if got := r.pop(); got.id != id {
			t.Fatalf("after removeAt: got %s, want %s", got.id, id)
		}
	}
	if r.len() != 0 {
		t.Fatalf("ring not drained: %d left", r.len())
	}
}
