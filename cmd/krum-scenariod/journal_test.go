package main

// Journal coverage: replay rules (checkpoint replacement, done
// removal, unknown-matrix and malformed-line skipping, torn final
// line), the checkpoint rewrite, and server-level resume — a journaled
// matrix resurrects under its original id on a fresh server and
// finishes with results byte-identical to a direct run, and a graceful
// Stop leaves a zero-lag checkpoint that preserves the id sequences.

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"krum/scenario"
	"krum/scenario/store"
)

// journalLine renders one event as a journal line.
func journalLine(t *testing.T, ev journalEvent) string {
	t.Helper()
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

// testCells expands matrixBody's grid into specs.
func testCells(t *testing.T, seed uint64, rules ...string) []scenario.Spec {
	t.Helper()
	m, err := scenario.ParseMatrixJSON([]byte(matrixBody(t, seed, rules...)))
	if err != nil {
		t.Fatal(err)
	}
	return m.Cells()
}

// TestJournalReplayRules pins the replay semantics line by line:
// events apply in order, a checkpoint replaces everything before it,
// done removes a matrix, unknown references and malformed interior
// lines are skipped-and-counted, and a torn final line is forgiven.
func TestJournalReplayRules(t *testing.T) {
	cells := testCells(t, 1, "krum")
	var sb strings.Builder
	// Pre-checkpoint garbage that the checkpoint must erase.
	sb.WriteString(journalLine(t, journalEvent{Type: "submit", Matrix: "m1", Cells: cells}))
	sb.WriteString(journalLine(t, journalEvent{Type: "checkpoint", Checkpoint: &checkpoint{
		Seq: 4, Wseq: 7,
		Matrices: []checkpointMatrix{{ID: "m3", Cells: cells}},
	}}))
	sb.WriteString(journalLine(t, journalEvent{Type: "cell", Matrix: "m3", Index: 0}))
	sb.WriteString(journalLine(t, journalEvent{Type: "cell", Matrix: "m99", Index: 0})) // unknown matrix
	sb.WriteString("{not json}\n")                                                      // malformed interior
	sb.WriteString(journalLine(t, journalEvent{Type: "submit", Matrix: "m5", Cells: cells}))
	sb.WriteString(journalLine(t, journalEvent{Type: "done", Matrix: "m3"}))
	sb.WriteString(journalLine(t, journalEvent{Type: "join", Worker: "w9"}))
	sb.WriteString(`{"type":"cell","matrix":"m5","ind`) // torn final append

	state := &journalState{}
	replayJournal([]byte(sb.String()), state)
	if state.seq != 5 {
		t.Errorf("seq = %d, want 5 (checkpoint's 4 advanced by m5)", state.seq)
	}
	if state.wseq != 9 {
		t.Errorf("wseq = %d, want 9", state.wseq)
	}
	if len(state.matrices) != 1 || state.matrices[0].ID != "m5" {
		t.Fatalf("live matrices = %+v, want just m5 (m3 is done, m1 pre-checkpoint)", state.matrices)
	}
	if len(state.matrices[0].Cells) != len(cells) {
		t.Errorf("m5 carries %d cells, want %d", len(state.matrices[0].Cells), len(cells))
	}
	// Skipped: the unknown-matrix cell and the malformed interior line;
	// NOT the torn final line.
	if state.skipped != 2 {
		t.Errorf("skipped = %d, want 2", state.skipped)
	}
	// Lag since the checkpoint: cell(m3), submit(m5), done(m3), join.
	if state.events != 4 {
		t.Errorf("events since checkpoint = %d, want 4", state.events)
	}
}

// TestJournalCheckpointRewrite pins the rewrite mechanics: after a
// rewrite the file holds exactly one checkpoint line, lag is zero,
// and appends land after it and replay on top of it.
func TestJournalCheckpointRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coordinator.journal")
	cells := testCells(t, 1, "krum")
	j, state, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if state.events != 0 || len(state.matrices) != 0 {
		t.Fatalf("fresh journal replayed state %+v", state)
	}
	for i := 0; i < 3; i++ {
		if _, err := j.append(journalEvent{Type: "join", Worker: "w1"}); err != nil {
			t.Fatal(err)
		}
	}
	if j.Lag() != 3 {
		t.Fatalf("lag = %d, want 3", j.Lag())
	}
	cp := checkpoint{Seq: 2, Wseq: 1, Matrices: []checkpointMatrix{{ID: "m2", Cells: cells}}}
	if err := j.rewrite(func() checkpoint { return cp }); err != nil {
		t.Fatal(err)
	}
	if j.Lag() != 0 {
		t.Errorf("lag after rewrite = %d, want 0", j.Lag())
	}
	if _, err := j.append(journalEvent{Type: "cell", Matrix: "m2", Index: 0}); err != nil {
		t.Fatal(err)
	}
	j.close()

	j2, state2, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if state2.seq != 2 || state2.wseq != 1 {
		t.Errorf("sequences = (%d, %d), want (2, 1)", state2.seq, state2.wseq)
	}
	if len(state2.matrices) != 1 || state2.matrices[0].ID != "m2" {
		t.Fatalf("live matrices = %+v, want just m2", state2.matrices)
	}
	if got := state2.matrices[0].Done; len(got) != 1 || got[0] != 0 {
		t.Errorf("m2 done = %v, want [0]", got)
	}
	if state2.events != 1 {
		t.Errorf("replayed lag = %d, want 1 (one append after the checkpoint)", state2.events)
	}
}

// TestJournalServerResume is the recovery half at the server level
// (no fleet): a journal holding a live matrix resurrects it on
// UseJournal under its original id, the matrix finishes with results
// byte-identical to a direct run, /healthz reports the journal lag,
// and a graceful Stop leaves a zero-lag checkpoint preserving the id
// sequence for the next incarnation.
func TestJournalServerResume(t *testing.T) {
	cells := testCells(t, 3, "krum", "average")
	direct, err := (&scenario.Runner{Workers: 2}).RunCells(cells)
	if err != nil {
		t.Fatal(err)
	}

	// A "crashed coordinator's" journal: matrix m2 was live, one cell
	// had completed, and worker id w3 had been granted.
	path := filepath.Join(t.TempDir(), "coordinator.journal")
	blob := journalLine(t, journalEvent{Type: "submit", Matrix: "m2", Cells: cells}) +
		journalLine(t, journalEvent{Type: "cell", Matrix: "m2", Index: 0}) +
		journalLine(t, journalEvent{Type: "join", Worker: "w3"})
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(2, store.NewMemory(), 0)
	resumed, err := srv.UseJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d matrices, want 1", resumed)
	}
	ts := httptest.NewServer(srv)
	status := waitFinished(t, ts, "m2")
	if status.Failed != 0 || status.Total != len(cells) {
		t.Fatalf("resumed matrix: %+v", status)
	}
	var results resultsJSON
	getJSON(t, ts, "/matrices/m2/results", &results)
	for i, cr := range direct {
		cell := results.Results[i]
		if cell == nil || cell.Result == nil || cell.Error != "" {
			t.Fatalf("resumed cell %d missing or failed: %+v", i, cell)
		}
		if encodeResult(t, cell.Result) != encodeResult(t, cr.Result) {
			t.Errorf("resumed cell %d differs from the direct run", i)
		}
	}

	// The journal is live: healthz must report a lag (the finished
	// matrix appended cell and done events after the initial
	// checkpoint).
	var health healthJSON
	getJSON(t, ts, "/healthz", &health)
	if health.Status != "ok" || health.JournalLag == nil {
		t.Fatalf("healthz with a journal = %+v, want status ok with a lag", health)
	}

	// New ids must not collide with resurrected ones.
	sub := submit(t, ts, matrixBody(t, 9, "krum"))
	if sub.ID != "m3" {
		t.Errorf("post-recovery submission got id %s, want m3", sub.ID)
	}
	waitFinished(t, ts, sub.ID)

	// Graceful Stop: the final checkpoint is a zero-lag file whose
	// sequences cover everything ever granted, with no live matrices.
	ts.Close()
	srv.Stop()
	_, state, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if state.events != 0 || len(state.matrices) != 0 {
		t.Errorf("post-Stop journal: %d events, %d matrices; want a bare checkpoint", state.events, len(state.matrices))
	}
	if state.seq < 3 || state.wseq < 3 {
		t.Errorf("post-Stop sequences = (%d, %d), want at least (3, 3)", state.seq, state.wseq)
	}
}
