package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"krum/scenario"
	"krum/scenario/store"
)

// withTenant wraps a marshaled matrix body in the tenancy envelope.
func withTenant(t *testing.T, body, tenant string, priority int) string {
	t.Helper()
	var envelope map[string]any
	if err := json.Unmarshal([]byte(body), &envelope); err != nil {
		t.Fatal(err)
	}
	envelope["tenant"] = tenant
	if priority != 0 {
		envelope["priority"] = priority
	}
	out, err := json.Marshal(envelope)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// postMatrix POSTs a submission and returns the raw response (the
// caller asserts status and headers — unlike submit, 4xx is a valid
// outcome here).
func postMatrix(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/matrices", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, blob
}

// TestShardMetricsAndBackpressure is the smoke assertion the shard CI
// job runs: per-tenant quotas answer 429 + Retry-After without losing
// any work, and GET /metrics exposes the tenant counters in the
// Prometheus text format.
func TestShardMetricsAndBackpressure(t *testing.T) {
	st := store.NewMemory()
	srv := NewServerOptions(Options{
		Workers:            1, // serialize cells so the first matrix stays pending
		Store:              st,
		TenantPendingCells: map[string]int{"quota-tenant": 1},
	})
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Cells slow enough (hundreds of ms each, serialized on a 1-wide
	// pool) that the first matrix is reliably still pending when the
	// second submission arrives.
	slow := scenario.Matrix{
		Base: scenario.Spec{
			Workload:  "mnist(size=8,hidden=12)",
			Rule:      "krum",
			Schedule:  "const(gamma=0.05)",
			N:         9,
			F:         2,
			Rounds:    250,
			BatchSize: 4,
			Seed:      77,
		},
		Rules: []string{"krum", "average", "coordmedian"},
		Seeds: []uint64{77, 78},
	}
	blob, err := json.Marshal(slow)
	if err != nil {
		t.Fatal(err)
	}
	body := withTenant(t, string(blob), "quota-tenant", 3)

	// First submission: the tenant has nothing outstanding, so the
	// quota (1 pending cell) cannot refuse it — admission caps existing
	// backlog, not matrix size.
	resp, first := postMatrix(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, first)
	}
	var sub submitResponse
	if err := json.Unmarshal(first, &sub); err != nil {
		t.Fatal(err)
	}
	var status statusJSON
	getJSON(t, ts, "/matrices/"+sub.ID, &status)
	if status.Tenant != "quota-tenant" || status.Priority != 3 {
		t.Fatalf("status tenant %q priority %d, want quota-tenant/3", status.Tenant, status.Priority)
	}

	// Second submission while the first is pending: over quota → 429
	// with a parseable Retry-After.
	resp, msg := postMatrix(t, ts, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d: %s, want 429", resp.StatusCode, msg)
	}
	retryAfter := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(retryAfter); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q: want a positive integer of seconds", retryAfter)
	}
	if !strings.Contains(string(msg), "quota") {
		t.Fatalf("429 body %q does not explain the quota", msg)
	}

	// Another tenant is unaffected by quota-tenant's backpressure.
	resp, msg = postMatrix(t, ts, withTenant(t, string(blob), "other-tenant", 0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant: status %d: %s", resp.StatusCode, msg)
	}
	var subOther submitResponse
	if err := json.Unmarshal(msg, &subOther); err != nil {
		t.Fatal(err)
	}

	// The metrics page reports the rejection, the queues and the store.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := mresp.Header.Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("metrics content type %q, want %q", ct, metricsContentType)
	}
	for _, want := range []string{
		`krum_scenariod_rejected_total{tenant="quota-tenant"} 1`,
		`krum_scenariod_pending_cells{tenant="quota-tenant"}`,
		`# TYPE krum_scenariod_queue_depth gauge`,
		`krum_scenariod_fleet_workers 0`,
		`krum_scenariod_store_entries`,
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("metrics page missing %q", want)
		}
	}

	// Nothing was lost to backpressure: once the backlog drains, the
	// refused matrix resubmits cleanly and its cells replay from the
	// store — the work the 429 deferred, not destroyed.
	waitFinished(t, ts, sub.ID)
	waitFinished(t, ts, subOther.ID)
	resp, msg = postMatrix(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit after drain: status %d: %s", resp.StatusCode, msg)
	}
	var subRetry submitResponse
	if err := json.Unmarshal(msg, &subRetry); err != nil {
		t.Fatal(err)
	}
	final := waitFinished(t, ts, subRetry.ID)
	if final.Failed != 0 || final.Completed != final.Total {
		t.Fatalf("resubmitted matrix: %d/%d completed, %d failed", final.Completed, final.Total, final.Failed)
	}
	if final.Cached != final.Total {
		t.Errorf("resubmitted matrix recomputed %d cells — the deferred work was lost from the store", final.Total-final.Cached)
	}
}
