package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"krum/scenario"
	"krum/scenario/shardproto"
	"krum/scenario/store"
)

// errVersionMismatch marks a join rejected for carrying the wrong
// result-semantics version — fatal, unlike transient join failures.
var errVersionMismatch = errors.New("worker: coordinator rejected our version")

// Worker is the worker half of sharded scenario execution
// (krum-scenariod -worker -join <coordinator>): it joins a
// coordinator's fleet, long-polls for cell tasks across Slots
// concurrent loops, executes each via scenario.RunCell against the
// local engine, heartbeats while a cell trains (polling is blocked
// then, so heartbeats are the only liveness signal), and reports the
// stable-JSON distsgd.Result back. Because cells are pure functions of
// their specs, a worker adds capacity without adding any source of
// nondeterminism — results are byte-identical wherever a cell lands.
//
// A worker whose lease expired (a long GC pause, a partition, a
// delayed heartbeat) is told so by HTTP 410 on its next message; it
// rejoins under a fresh identity and carries on. Any result it reports
// for a task that was reassigned meanwhile is answered Accepted=false
// and dropped.
type Worker struct {
	// Coordinator is the coordinator's base URL, e.g.
	// "http://host:8080".
	Coordinator string
	// Slots is the number of concurrent poll-execute loops (0 means 1).
	Slots int
	// Store, when non-nil, is the worker's local result cache: hits
	// skip training, fresh results are written through. It is
	// independent of the coordinator's store (which persists every
	// accepted result regardless).
	Store scenario.ResultStore
	// Client is the HTTP client used for all coordinator calls (nil
	// means a default with no overall timeout — polls are long).
	Client *http.Client
	// HeartbeatEvery overrides the mid-cell heartbeat cadence (0 means
	// a third of the coordinator's lease).
	HeartbeatEvery time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	id    string
	token string
	lease time.Duration
	// executed counts cells this worker finished running (whether or
	// not the coordinator accepted the report).
	executed int
}

// Executed reports how many dispatched cells this worker has finished
// executing — an observability counter for operators (and tests)
// verifying that work actually landed on the fleet.
func (w *Worker) Executed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.executed
}

// logf forwards to Logf when set.
func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// client returns the configured HTTP client.
func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// post sends one protocol message and returns the status code and
// (bounded) response body.
func (w *Worker) post(ctx context.Context, path string, msg any) (int, []byte, error) {
	blob, err := json.Marshal(msg)
	if err != nil {
		return 0, nil, fmt.Errorf("encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(blob))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := shardproto.ReadBody(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// join acquires a fleet identity, replacing stale (the id the caller
// observed failing; join is a no-op when another loop already
// rejoined).
func (w *Worker) join(ctx context.Context, stale string) error {
	w.mu.Lock()
	if w.id != "" && w.id != stale {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	status, body, err := w.post(ctx, "/fleet/join",
		shardproto.JoinRequest{Slots: w.slots(), Version: store.Version})
	if err != nil {
		return fmt.Errorf("joining %s: %w", w.Coordinator, err)
	}
	if status == http.StatusConflict {
		return fmt.Errorf("joining %s: %s: %w", w.Coordinator, body, errVersionMismatch)
	}
	if status != http.StatusOK {
		return fmt.Errorf("joining %s: status %d: %s", w.Coordinator, status, body)
	}
	grant, err := shardproto.DecodeJoinResponse(body)
	if err != nil {
		return fmt.Errorf("joining %s: %w", w.Coordinator, err)
	}
	w.mu.Lock()
	w.id = grant.WorkerID
	w.token = grant.Token
	w.lease = time.Duration(grant.LeaseMillis) * time.Millisecond
	w.mu.Unlock()
	w.logf("joined %s as %s (lease %dms)", w.Coordinator, grant.WorkerID, grant.LeaseMillis)
	return nil
}

// slots returns the effective loop count.
func (w *Worker) slots() int {
	if w.Slots <= 0 {
		return 1
	}
	return w.Slots
}

// identity snapshots the current fleet id, token and lease.
func (w *Worker) identity() (id, token string, lease time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id, w.token, w.lease
}

// Run joins the fleet and serves until ctx is cancelled. Transient
// join failures (coordinator not up yet, a partition) are retried —
// only a version rejection is fatal, because no amount of retrying
// makes an old binary's results safe to persist. Cells already
// executing when ctx falls are finished but their results are
// discarded unreported — indistinguishable, to the coordinator, from
// the process dying, which is the point: shutdown exercises the same
// reassignment path as a crash.
func (w *Worker) Run(ctx context.Context) error {
	for {
		err := w.join(ctx, "")
		if err == nil {
			break
		}
		if errors.Is(err, errVersionMismatch) {
			return err
		}
		if ctx.Err() != nil {
			return nil
		}
		w.logf("join: %v (retrying)", err)
		w.pause(ctx, 500*time.Millisecond)
	}
	var wg sync.WaitGroup
	for i := 0; i < w.slots(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				w.pollOnce(ctx)
			}
		}()
	}
	wg.Wait()
	return nil
}

// pollOnce performs one poll → (maybe) execute → report cycle.
func (w *Worker) pollOnce(ctx context.Context) {
	id, token, lease := w.identity()
	status, body, err := w.post(ctx, "/fleet/poll", shardproto.PollRequest{WorkerID: id, Token: token})
	if err != nil {
		if ctx.Err() == nil {
			w.logf("poll: %v (retrying)", err)
			w.pause(ctx, lease/4)
		}
		return
	}
	switch status {
	case http.StatusOK:
	case http.StatusGone:
		w.logf("lease expired; rejoining")
		if err := w.join(ctx, id); err != nil && ctx.Err() == nil {
			w.logf("rejoin: %v (retrying)", err)
			w.pause(ctx, lease/4)
		}
		return
	default:
		if ctx.Err() == nil {
			w.logf("poll: status %d: %s (retrying)", status, body)
			w.pause(ctx, lease/4)
		}
		return
	}
	poll, err := shardproto.DecodePollResponse(body)
	if err != nil {
		w.logf("poll: %v (retrying)", err)
		w.pause(ctx, lease/4)
		return
	}
	if poll.Task == nil {
		return // idle window; the poll itself refreshed the lease
	}
	w.executeTask(ctx, poll.Task)
}

// pause sleeps without outliving ctx.
func (w *Worker) pause(ctx context.Context, d time.Duration) {
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// executeTask runs one dispatched cell with mid-cell heartbeats and
// reports the outcome.
func (w *Worker) executeTask(ctx context.Context, task *shardproto.Task) {
	id, token, lease := w.identity()
	every := w.HeartbeatEvery
	if every <= 0 {
		every = lease / 3
		if every <= 0 {
			every = time.Second
		}
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				if _, _, err := w.post(hbCtx, "/fleet/heartbeat",
					shardproto.HeartbeatRequest{WorkerID: id, Token: token, TaskID: task.ID}); err != nil && hbCtx.Err() == nil {
					w.logf("heartbeat: %v", err)
				}
			}
		}
	}()

	w.logf("executing %s (%s)", task.ID, task.Spec.Label())
	cr := scenario.RunCell(w.Store, 0, task.Spec)
	stopHB()
	hbWG.Wait()
	w.mu.Lock()
	w.executed++
	w.mu.Unlock()
	if ctx.Err() != nil {
		return // dying mid-cell: report nothing, let the lease expire
	}

	report := shardproto.ResultRequest{WorkerID: id, Token: token, TaskID: task.ID}
	if cr.Err != nil {
		report.Error = cr.Err.Error()
	} else {
		raw, err := json.Marshal(cr.Result)
		if err != nil {
			report.Error = fmt.Sprintf("encoding result: %v", err)
		} else {
			report.Result = raw
		}
	}
	// Retry transient transport failures a few times before giving the
	// result up: losing it only costs a recompute (the task's deadline
	// expires and the coordinator reassigns), but a recompute is far
	// more expensive than a resend.
	for attempt := 1; ; attempt++ {
		status, body, err := w.post(ctx, "/fleet/result", report)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if attempt >= 3 {
				w.logf("reporting %s: %v (giving up; the coordinator will reassign)", task.ID, err)
				return
			}
			w.logf("reporting %s: %v (retrying)", task.ID, err)
			w.pause(ctx, lease/4)
			continue
		}
		if status == http.StatusGone {
			// Our identity is dead — the lease lapsed, or the coordinator
			// restarted and no longer knows this incarnation. Rejoin right
			// away and drop the result: the new coordinator re-dispatches
			// the cell, and purity makes the recompute byte-identical.
			w.logf("reporting %s: identity expired; rejoining and dropping the result", task.ID)
			if err := w.join(ctx, id); err != nil && ctx.Err() == nil {
				w.logf("rejoin: %v (the poll loop retries)", err)
			}
			return
		}
		if status != http.StatusOK {
			w.logf("reporting %s: status %d: %s", task.ID, status, body)
			return
		}
		var resp shardproto.ResultResponse
		if err = json.Unmarshal(body, &resp); err != nil {
			w.logf("reporting %s: %v", task.ID, err)
			return
		}
		if !resp.Accepted {
			w.logf("%s was reassigned; dropping duplicate result", task.ID)
		}
		return
	}
}
