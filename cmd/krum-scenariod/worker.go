package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"time"

	"krum/distsgd"
	"krum/internal/vec"
	"krum/scenario"
	"krum/scenario/shardproto"
	"krum/scenario/store"
)

// errVersionMismatch marks a join rejected for carrying the wrong
// result-semantics version or kernel accumulation-order family —
// fatal, unlike transient join failures: retrying cannot fix a build
// or ISA mismatch.
var errVersionMismatch = errors.New("worker: coordinator rejected our version")

// Worker is the worker half of sharded scenario execution
// (krum-scenariod -worker -join <coordinator>): it joins a
// coordinator's fleet, long-polls for cell tasks — one batched poll
// asking for as many tasks as it has free slots, instead of one poll
// per slot — executes each against the local engine through a shared
// workload cache (affinity dispatch sends it runs of cells sharing a
// workload×seed, so dataset/model construction amortizes), heartbeats
// all in-flight tasks in one batched message while cells train, and
// reports each stable-JSON distsgd.Result back. Because cells are pure
// functions of their specs and the cache only reuses immutable
// workload bundles, a worker adds capacity without adding any source
// of nondeterminism — results are byte-identical wherever a cell
// lands.
//
// A worker whose lease expired (a long GC pause, a partition, a
// delayed heartbeat) is told so by HTTP 410 on its next message; it
// rejoins under a fresh identity and carries on. Any result it reports
// for a task that was reassigned meanwhile is answered Accepted=false
// and dropped. Transient failures back off with jitter, so a fleet of
// workers that all lost the same coordinator does not retry in
// lockstep.
type Worker struct {
	// Coordinator is the coordinator's base URL, e.g.
	// "http://host:8080".
	Coordinator string
	// Slots is the number of cells executed concurrently (0 means 1).
	Slots int
	// Store, when non-nil, is the worker's local result cache: hits
	// skip training, fresh results are written through. It is
	// independent of the coordinator's store (which persists every
	// accepted result regardless).
	Store scenario.ResultStore
	// Client is the HTTP client used for all coordinator calls (nil
	// means a default with no overall timeout — polls are long).
	Client *http.Client
	// HeartbeatEvery overrides the heartbeat cadence (0 means a third
	// of the coordinator's lease).
	HeartbeatEvery time.Duration
	// WorkloadCacheSize bounds the worker's workload-bundle LRU (0
	// means scenario.DefaultWorkloadCacheSize).
	WorkloadCacheSize int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	id    string
	token string
	lease time.Duration
	// executed counts cells this worker finished running (whether or
	// not the coordinator accepted the report).
	executed int
	// inflight holds the task ids currently executing — what the
	// shared heartbeat names in each batched message.
	inflight map[string]struct{}
	// cache memoizes workload construction across tasks (lazily built
	// so the zero-value Worker stays usable).
	cache *scenario.WorkloadCache
}

// Executed reports how many dispatched cells this worker has finished
// executing — an observability counter for operators (and tests)
// verifying that work actually landed on the fleet.
func (w *Worker) Executed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.executed
}

// CacheStats reports the worker's workload-cache hits and misses —
// how often affinity dispatch actually saved a bundle construction.
func (w *Worker) CacheStats() (hits, misses int) {
	w.mu.Lock()
	c := w.cache
	w.mu.Unlock()
	if c == nil {
		return 0, 0
	}
	return c.Stats()
}

// workloadCache returns the worker's cache, building it on first use.
func (w *Worker) workloadCache() *scenario.WorkloadCache {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cache == nil {
		w.cache = scenario.NewWorkloadCache(w.WorkloadCacheSize)
	}
	return w.cache
}

// logf forwards to Logf when set.
func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// client returns the configured HTTP client.
func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// post sends one protocol message and returns the status code and
// (bounded) response body.
func (w *Worker) post(ctx context.Context, path string, msg any) (int, []byte, error) {
	blob, err := json.Marshal(msg)
	if err != nil {
		return 0, nil, fmt.Errorf("encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(blob))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := shardproto.ReadBody(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// join acquires a fleet identity, replacing stale (the id the caller
// observed failing; join is a no-op when another loop already
// rejoined).
func (w *Worker) join(ctx context.Context, stale string) error {
	w.mu.Lock()
	if w.id != "" && w.id != stale {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	status, body, err := w.post(ctx, "/fleet/join",
		shardproto.JoinRequest{Slots: w.slots(), Version: store.Version, Kernel: vec.KernelOrder()})
	if err != nil {
		return fmt.Errorf("joining %s: %w", w.Coordinator, err)
	}
	if status == http.StatusConflict {
		return fmt.Errorf("joining %s: %s: %w", w.Coordinator, body, errVersionMismatch)
	}
	if status != http.StatusOK {
		return fmt.Errorf("joining %s: status %d: %s", w.Coordinator, status, body)
	}
	grant, err := shardproto.DecodeJoinResponse(body)
	if err != nil {
		return fmt.Errorf("joining %s: %w", w.Coordinator, err)
	}
	w.mu.Lock()
	w.id = grant.WorkerID
	w.token = grant.Token
	w.lease = time.Duration(grant.LeaseMillis) * time.Millisecond
	w.mu.Unlock()
	w.logf("joined %s as %s (lease %dms)", w.Coordinator, grant.WorkerID, grant.LeaseMillis)
	return nil
}

// slots returns the effective concurrent-execution capacity.
func (w *Worker) slots() int {
	if w.Slots <= 0 {
		return 1
	}
	return w.Slots
}

// identity snapshots the current fleet id, token and lease.
func (w *Worker) identity() (id, token string, lease time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id, w.token, w.lease
}

// addInflight registers an executing task with the shared heartbeat.
func (w *Worker) addInflight(taskID string) {
	w.mu.Lock()
	if w.inflight == nil {
		w.inflight = make(map[string]struct{})
	}
	w.inflight[taskID] = struct{}{}
	w.mu.Unlock()
}

// removeInflight deregisters a finished task.
func (w *Worker) removeInflight(taskID string) {
	w.mu.Lock()
	delete(w.inflight, taskID)
	w.mu.Unlock()
}

// inflightIDs snapshots the executing task ids, sorted for stable wire
// bytes.
func (w *Worker) inflightIDs() []string {
	w.mu.Lock()
	ids := make([]string, 0, len(w.inflight))
	for id := range w.inflight {
		ids = append(ids, id)
	}
	w.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Run joins the fleet and serves until ctx is cancelled. Transient
// join failures (coordinator not up yet, a partition) are retried —
// only a version rejection is fatal, because no amount of retrying
// makes an old binary's results safe to persist. Cells already
// executing when ctx falls are finished but their results are
// discarded unreported — indistinguishable, to the coordinator, from
// the process dying, which is the point: shutdown exercises the same
// reassignment path as a crash.
//
// One dispatcher loop polls for work — asking for as many tasks as it
// has free execution slots in a single batched request — and one
// shared heartbeat loop refreshes every in-flight task in a single
// batched message, so a worker's coordinator traffic stays O(1) per
// interval however many slots it runs.
func (w *Worker) Run(ctx context.Context) error {
	for {
		err := w.join(ctx, "")
		if err == nil {
			break
		}
		if errors.Is(err, errVersionMismatch) {
			return err
		}
		if ctx.Err() != nil {
			return nil
		}
		w.logf("join: %v (retrying)", err)
		w.pause(ctx, jittered(500*time.Millisecond))
	}

	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(hbCtx)
	}()

	slots := w.slots()
	sem := make(chan struct{}, slots)
	var taskWG sync.WaitGroup
dispatch:
	for ctx.Err() == nil {
		// Block for one free slot, then sweep up any additional free
		// slots without blocking — the batch size for this poll.
		select {
		case <-ctx.Done():
			break dispatch
		case sem <- struct{}{}:
		}
		free := 1
	sweep:
		for free < slots {
			select {
			case sem <- struct{}{}:
				free++
			default:
				break sweep
			}
		}
		tasks := w.pollBatch(ctx, free)
		// Register every task with the heartbeat BEFORE execution starts,
		// so no assignment sits unheartbeated in the gap.
		for i := range tasks {
			w.addInflight(tasks[i].ID)
		}
		for i := range tasks {
			task := tasks[i]
			taskWG.Add(1)
			go func() {
				defer func() {
					w.removeInflight(task.ID)
					<-sem
					taskWG.Done()
				}()
				w.executeTask(ctx, task)
			}()
		}
		for i := len(tasks); i < free; i++ {
			<-sem
		}
	}
	taskWG.Wait()
	stopHB()
	hbWG.Wait()
	return nil
}

// heartbeatLoop periodically sends ONE batched heartbeat naming every
// in-flight task (nothing when idle — the polls themselves refresh the
// lease then). A 410 triggers an immediate rejoin so executing cells
// get a live identity to report under.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	_, _, lease := w.identity()
	every := w.HeartbeatEvery
	if every <= 0 {
		every = lease / 3
		if every <= 0 {
			every = time.Second
		}
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		ids := w.inflightIDs()
		if len(ids) == 0 {
			continue
		}
		id, token, _ := w.identity()
		status, _, err := w.post(ctx, "/fleet/heartbeat",
			shardproto.HeartbeatRequest{WorkerID: id, Token: token, TaskIDs: ids})
		if err != nil {
			if ctx.Err() == nil {
				w.logf("heartbeat: %v", err)
			}
			continue
		}
		if status == http.StatusGone {
			w.logf("heartbeat: lease expired; rejoining")
			if err := w.join(ctx, id); err != nil && ctx.Err() == nil {
				w.logf("rejoin: %v (retrying)", err)
			}
		}
	}
}

// pollBatch performs one poll asking for up to max tasks and returns
// whatever the coordinator assigned (nil on idle windows and every
// error path). All failure branches are context-guarded — a cancelled
// poll is shutdown, not an error to log and back off from.
func (w *Worker) pollBatch(ctx context.Context, max int) []shardproto.Task {
	id, token, lease := w.identity()
	req := shardproto.PollRequest{WorkerID: id, Token: token}
	if max > 1 {
		req.MaxTasks = max
	}
	status, body, err := w.post(ctx, "/fleet/poll", req)
	if err != nil {
		if ctx.Err() == nil {
			w.logf("poll: %v (retrying)", err)
			w.pause(ctx, jittered(lease/4))
		}
		return nil
	}
	switch status {
	case http.StatusOK:
	case http.StatusGone:
		w.logf("lease expired; rejoining")
		if err := w.join(ctx, id); err != nil && ctx.Err() == nil {
			w.logf("rejoin: %v (retrying)", err)
			w.pause(ctx, jittered(lease/4))
		}
		return nil
	default:
		if ctx.Err() == nil {
			w.logf("poll: status %d: %s (retrying)", status, body)
			w.pause(ctx, jittered(lease/4))
		}
		return nil
	}
	poll, err := shardproto.DecodePollResponse(body)
	if err != nil {
		if ctx.Err() == nil {
			w.logf("poll: %v (retrying)", err)
			w.pause(ctx, jittered(lease/4))
		}
		return nil
	}
	return poll.All()
}

// jittered spreads a retry delay uniformly over [d/2, 3d/2), so
// workers that all observed the same failure at the same moment (a
// coordinator restart, a partition healing) do not hammer it back in
// lockstep. d ≤ 0 falls back to 100ms before jittering.
func jittered(d time.Duration) time.Duration {
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// pause sleeps without outliving ctx.
func (w *Worker) pause(ctx context.Context, d time.Duration) {
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// executeTask runs one dispatched cell (through the worker's store
// protocol and workload cache) and reports the outcome; the shared
// heartbeat loop keeps the task's deadline fresh meanwhile.
func (w *Worker) executeTask(ctx context.Context, task shardproto.Task) {
	id, token, lease := w.identity()
	w.logf("executing %s (%s)", task.ID, task.Spec.Label())
	cache := w.workloadCache()
	cr := scenario.RunCellWith(w.Store, 0, task.Spec, func() (*distsgd.Result, error) {
		return cache.ComputeCell(task.Spec)
	})
	w.mu.Lock()
	w.executed++
	w.mu.Unlock()
	if ctx.Err() != nil {
		return // dying mid-cell: report nothing, let the lease expire
	}

	report := shardproto.ResultRequest{WorkerID: id, Token: token, TaskID: task.ID}
	if cr.Err != nil {
		report.Error = cr.Err.Error()
	} else {
		raw, err := json.Marshal(cr.Result)
		if err != nil {
			report.Error = fmt.Sprintf("encoding result: %v", err)
		} else {
			report.Result = raw
		}
	}
	// Retry transient transport failures a few times before giving the
	// result up: losing it only costs a recompute (the task's deadline
	// expires and the coordinator reassigns), but a recompute is far
	// more expensive than a resend.
	for attempt := 1; ; attempt++ {
		status, body, err := w.post(ctx, "/fleet/result", report)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if attempt >= 3 {
				w.logf("reporting %s: %v (giving up; the coordinator will reassign)", task.ID, err)
				return
			}
			w.logf("reporting %s: %v (retrying)", task.ID, err)
			w.pause(ctx, jittered(lease/4))
			continue
		}
		if status == http.StatusGone {
			// Our identity is dead — the lease lapsed, or the coordinator
			// restarted and no longer knows this incarnation. Rejoin right
			// away and drop the result: the new coordinator re-dispatches
			// the cell, and purity makes the recompute byte-identical.
			w.logf("reporting %s: identity expired; rejoining and dropping the result", task.ID)
			if err := w.join(ctx, id); err != nil && ctx.Err() == nil {
				w.logf("rejoin: %v (the poll loop retries)", err)
			}
			return
		}
		if status != http.StatusOK {
			w.logf("reporting %s: status %d: %s", task.ID, status, body)
			return
		}
		var resp shardproto.ResultResponse
		if err = json.Unmarshal(body, &resp); err != nil {
			w.logf("reporting %s: %v", task.ID, err)
			return
		}
		if !resp.Accepted {
			w.logf("%s was reassigned; dropping duplicate result", task.ID)
		}
		return
	}
}
