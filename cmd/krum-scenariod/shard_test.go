package main

// End-to-end sharding integration: a coordinator plus in-process
// worker fleets execute examples/matrix-only.json, and the results
// must be byte-identical to a direct scenario.Runner run and across
// topologies — the distributed layer may change WHERE a cell runs,
// never WHAT it produces.

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"krum/internal/vec"
	"krum/scenario"
	"krum/scenario/shardproto"
	"krum/scenario/store"
)

// jsonBody wraps a literal request body.
func jsonBody(s string) io.Reader { return strings.NewReader(s) }

// testFleet is a set of in-process workers attached to a coordinator,
// each on its own context so the chaos test can kill one.
type testFleet struct {
	workers []*Worker
	cancels []context.CancelFunc
	wg      sync.WaitGroup
}

// startWorkers joins n single-slot in-process workers to the
// coordinator at ts, waiting until the coordinator sees them all.
func startWorkers(t *testing.T, ts *httptest.Server, n int, configure func(i int, w *Worker)) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		w := &Worker{
			Coordinator: ts.URL,
			Slots:       1,
			Logf:        t.Logf,
		}
		if configure != nil {
			configure(i, w)
		}
		f.workers = append(f.workers, w)
		f.cancels = append(f.cancels, cancel)
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("worker: %v", err)
			}
		}()
		// Join sequentially so coordinator ids w1..wN map to workers[0..N-1]
		// (the chaos test kills a specific one).
		waitForFleetSize(t, ts, i+1)
	}
	return f
}

// kill cancels one worker's context — the in-process equivalent of
// kill -9 for the protocol: heartbeats and polls stop, and any cell it
// is executing finishes silently without ever being reported.
func (f *testFleet) kill(i int) { f.cancels[i]() }

// stop cancels every worker and waits for their loops to exit.
func (f *testFleet) stop() {
	for _, cancel := range f.cancels {
		cancel()
	}
	f.wg.Wait()
}

// waitForFleetSize polls GET /fleet until the membership reaches n.
func waitForFleetSize(t *testing.T, ts *httptest.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st fleetStatusJSON
		getJSON(t, ts, "/fleet", &st)
		if len(st.Workers) == n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("fleet never reached %d workers", n)
}

// loadExampleMatrix reads examples/matrix-only.json, reduced to a
// slice of the grid under the race detector (see raceDetectorEnabled).
func loadExampleMatrix(t *testing.T) scenario.Matrix {
	t.Helper()
	blob, err := os.ReadFile("../../examples/matrix-only.json")
	if err != nil {
		t.Fatal(err)
	}
	m, err := scenario.ParseMatrixJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	if raceDetectorEnabled {
		m.Rules = m.Rules[:1]
		m.Attacks = m.Attacks[:2]
	}
	return m
}

// runTopology executes the matrix on a fresh coordinator + n-worker
// fleet (fresh in-memory store, so nothing is served from cache) and
// returns the per-cell stable encodings.
func runTopology(t *testing.T, m scenario.Matrix, workers int) []string {
	t.Helper()
	st := store.NewMemory()
	srv := NewServer(4, st, 0)
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	fleet := startWorkers(t, ts, workers, nil)
	defer fleet.stop()

	body, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	sub := submit(t, ts, string(body))
	status := waitFinished(t, ts, sub.ID)
	if status.Failed != 0 {
		t.Fatalf("%d-worker topology: %d cells failed", workers, status.Failed)
	}
	if status.Completed != len(m.Cells()) {
		t.Fatalf("%d-worker topology: completed %d/%d", workers, status.Completed, len(m.Cells()))
	}

	// Every cell must have executed ON the fleet: the local fallback is
	// for fleetless and dying coordinators, not for healthy topologies.
	executed := 0
	for _, w := range fleet.workers {
		executed += w.Executed()
	}
	if executed < len(m.Cells()) {
		t.Errorf("%d-worker topology: fleet executed %d of %d cells (rest ran locally?)", workers, executed, len(m.Cells()))
	}

	var results resultsJSON
	getJSON(t, ts, "/matrices/"+sub.ID+"/results", &results)
	out := make([]string, len(results.Results))
	for i, cell := range results.Results {
		if cell == nil || cell.Result == nil {
			t.Fatalf("%d-worker topology: cell %d missing", workers, i)
		}
		out[i] = encodeResult(t, cell.Result)
	}
	return out
}

// TestShardEndToEndByteIdentical is the issue's acceptance criterion:
// 1 coordinator + 3 in-process workers run examples/matrix-only.json
// and the results are byte-identical to a direct scenario.Runner run
// of the same grid AND to a 1-worker topology.
func TestShardEndToEndByteIdentical(t *testing.T) {
	m := loadExampleMatrix(t)

	direct, err := (&scenario.Runner{Workers: 4}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(direct))
	for i, cr := range direct {
		want[i] = encodeResult(t, cr.Result)
	}

	three := runTopology(t, m, 3)
	one := runTopology(t, m, 1)
	if len(three) != len(want) || len(one) != len(want) {
		t.Fatalf("cell counts: direct %d, 3-worker %d, 1-worker %d", len(want), len(three), len(one))
	}
	for i := range want {
		if three[i] != want[i] {
			t.Errorf("cell %d (%s): 3-worker result differs from direct run", i, direct[i].Spec.Label())
		}
		if one[i] != want[i] {
			t.Errorf("cell %d (%s): 1-worker result differs from direct run", i, direct[i].Spec.Label())
		}
	}
}

// asyncShardMatrix is a compact asynchronous grid: incremental cells
// swept across the arrival axis, quick enough to run three topologies
// back to back under the race detector.
func asyncShardMatrix() scenario.Matrix {
	return scenario.Matrix{
		Base: scenario.Spec{
			Workload:    "gmm(k=3,dim=6,radius=4,sigma=0.5)",
			Attack:      "gaussian(sigma=200)",
			Schedule:    "inverset(gamma=0.5,power=0.75,t0=50)",
			N:           9,
			F:           2,
			Rounds:      30,
			BatchSize:   8,
			Seed:        11,
			EvalEvery:   10,
			EvalBatch:   128,
			Incremental: true,
		},
		Rules:    []string{"krum", "average"},
		Arrivals: []string{"sync", "bounded(tau=2)", "bernoulli(p=0.5,tau=4)"},
	}
}

// TestShardAsyncMatrixByteIdentical extends the byte-identity contract
// to asynchronous cells: an arrivals-swept incremental matrix produces
// identical results on a direct run, a 3-worker fleet and a 1-worker
// fleet. The arrival trace is a pure function of the cell spec, so
// WHERE an async cell runs still never changes WHAT it produces.
func TestShardAsyncMatrixByteIdentical(t *testing.T) {
	m := asyncShardMatrix()

	direct, err := (&scenario.Runner{Workers: 4}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(direct))
	for i, cr := range direct {
		want[i] = encodeResult(t, cr.Result)
	}

	three := runTopology(t, m, 3)
	one := runTopology(t, m, 1)
	if len(three) != len(want) || len(one) != len(want) {
		t.Fatalf("cell counts: direct %d, 3-worker %d, 1-worker %d", len(want), len(three), len(one))
	}
	for i := range want {
		if three[i] != want[i] {
			t.Errorf("cell %d (%s): 3-worker async result differs from direct run", i, direct[i].Spec.Label())
		}
		if one[i] != want[i] {
			t.Errorf("cell %d (%s): 1-worker async result differs from direct run", i, direct[i].Spec.Label())
		}
	}
}

// TestShardFleetEndpointsRejectHostileInput pins the coordinator's
// protocol trust boundary at the HTTP layer: malformed fleet messages
// are 400s, unknown identities are 410s.
func TestShardFleetEndpointsRejectHostileInput(t *testing.T) {
	srv := NewServer(1, store.NewMemory(), 0)
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for path, body := range map[string]string{
		"/fleet/join":      `{"slots": -4}`,
		"/fleet/poll":      `{"worker_id": "", "token": "t"}`,
		"/fleet/heartbeat": `not json`,
		"/fleet/result":    `{"worker_id": "w1", "token": "t", "task_id": "t1"}`,
	} {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("POST %s with empty body: status %d, want 400", path, resp.StatusCode)
		}
		resp, err = ts.Client().Post(ts.URL+path, "application/json", jsonBody(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("POST %s with %q: status %d, want 400", path, body, resp.StatusCode)
		}
	}

	// A worker built against different result semantics (store.Version
	// salt) must be refused membership: its cells would persist stale
	// results under current-version keys.
	resp0, err := ts.Client().Post(ts.URL+"/fleet/join", "application/json",
		jsonBody(`{"slots": 1, "version": "krum-store-v0-ancient", "kernel": "`+vec.KernelOrder()+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != 409 {
		t.Errorf("mismatched-version join: status %d, want 409", resp0.StatusCode)
	}

	// Same for a worker running a different kernel accumulation-order
	// family: its results could never be bit-reproduced by the
	// coordinator's kernels, so membership is refused with the same 409.
	wrongOrder := "fma4"
	if vec.KernelOrder() == "fma4" {
		wrongOrder = "pair2"
	}
	respK, err := ts.Client().Post(ts.URL+"/fleet/join", "application/json",
		jsonBody(`{"slots": 1, "version": "`+store.Version+`", "kernel": "`+wrongOrder+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	respK.Body.Close()
	if respK.StatusCode != 409 {
		t.Errorf("mismatched-kernel join: status %d, want 409", respK.StatusCode)
	}

	// Valid messages from a never-joined worker: 410 Gone (rejoin).
	for path, body := range map[string]string{
		"/fleet/poll":      `{"worker_id": "w999", "token": "deadbeef"}`,
		"/fleet/heartbeat": `{"worker_id": "w999", "token": "deadbeef"}`,
	} {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", jsonBody(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 410 {
			t.Errorf("POST %s as unknown worker: status %d, want 410", path, resp.StatusCode)
		}
	}

	// A LIVE worker id with the wrong token is just as unknown: join
	// properly, then impersonate with a guessed token.
	grant := joinFleet(t, ts)
	resp, err := ts.Client().Post(ts.URL+"/fleet/poll", "application/json",
		jsonBody(`{"worker_id": "`+grant.WorkerID+`", "token": "deadbeef"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 410 {
		t.Errorf("poll with forged token: status %d, want 410", resp.StatusCode)
	}
	resp, err = ts.Client().Post(ts.URL+"/fleet/poll", "application/json",
		jsonBody(`{"worker_id": "`+grant.WorkerID+`", "token": "`+grant.Token+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("poll with real token: status %d, want 200", resp.StatusCode)
	}

	// A result for a never-assigned task is acknowledged but rejected.
	resp, err = ts.Client().Post(ts.URL+"/fleet/result", "application/json",
		jsonBody(`{"worker_id": "`+grant.WorkerID+`", "token": "`+grant.Token+`", "task_id": "t999", "error": "x"}`))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		Accepted bool `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || ack.Accepted {
		t.Errorf("stale result: status %d accepted %v, want 200 + rejected", resp.StatusCode, ack.Accepted)
	}
}

// joinFleet performs a raw HTTP join and returns the grant.
func joinFleet(t *testing.T, ts *httptest.Server) shardproto.JoinResponse {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/fleet/join", "application/json",
		jsonBody(`{"slots": 1, "version": "`+store.Version+`", "kernel": "`+vec.KernelOrder()+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("join: status %d", resp.StatusCode)
	}
	var grant shardproto.JoinResponse
	if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
		t.Fatal(err)
	}
	return grant
}

// TestShardRejectsGarbageResultPayload pins the canonical-bytes check:
// a structurally-valid-JSON but non-canonical result payload for a
// genuinely-assigned task is rejected and the task is requeued, so the
// store can never be poisoned by a worker that decodes to a zero
// Result.
func TestShardRejectsGarbageResultPayload(t *testing.T) {
	st := store.NewMemory()
	// A short lease so the test's hand-rolled worker, which stops
	// polling after its one garbage report, expires quickly and the
	// requeued task falls back to local execution.
	srv := NewServer(2, st, 500*time.Millisecond)
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	grant := joinFleet(t, ts)
	// Submit a one-cell matrix so a task gets assigned to our raw
	// "worker" on its next poll.
	sub := submit(t, ts, matrixBody(t, 97, "krum"))
	var task *shardproto.Task
	deadline := time.Now().Add(30 * time.Second)
	for task == nil && time.Now().Before(deadline) {
		resp, err := ts.Client().Post(ts.URL+"/fleet/poll", "application/json",
			jsonBody(`{"worker_id": "`+grant.WorkerID+`", "token": "`+grant.Token+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		poll, err := shardproto.DecodePollResponse(body)
		if err != nil {
			t.Fatal(err)
		}
		task = poll.Task
	}
	if task == nil {
		t.Fatal("never received a task")
	}

	// Report garbage that IS valid JSON but not a canonical Result.
	resp, err := ts.Client().Post(ts.URL+"/fleet/result", "application/json",
		jsonBody(`{"worker_id": "`+grant.WorkerID+`", "token": "`+grant.Token+`", "task_id": "`+task.ID+`", "result": {"garbage": 1}}`))
	if err != nil {
		t.Fatal(err)
	}
	var ack shardproto.ResultResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Accepted {
		t.Fatal("garbage result payload was accepted")
	}

	// The task must be requeued, not wedged: stop polling (our fake
	// worker "dies"), so after lease expiry the coordinator falls back
	// to local execution and the matrix still completes correctly.
	status := waitFinished(t, ts, sub.ID)
	if status.Failed != 0 {
		t.Fatalf("matrix failed %d cells after garbage report", status.Failed)
	}
	var results resultsJSON
	getJSON(t, ts, "/matrices/"+sub.ID+"/results", &results)
	want, err := (&scenario.Runner{Workers: 1}).RunCells([]scenario.Spec{results.Results[0].Spec})
	if err != nil {
		t.Fatal(err)
	}
	if encodeResult(t, results.Results[0].Result) != encodeResult(t, want[0].Result) {
		t.Fatal("cell result differs from a direct run after the garbage report")
	}
}
