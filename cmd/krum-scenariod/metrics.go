package main

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// Prometheus-style text exposition (GET /metrics): every gauge and
// counter an operator needs to see multi-tenant dispatch working —
// per-tenant×priority queue depths, per-tenant dispatch/requeue
// counters, admission gauges (pending cells, active matrices, 429s),
// fleet membership, the shared store's counters and the journal lag.
// The format is the Prometheus text exposition format version 0.0.4
// (HELP/TYPE comment lines, one sample per line, label values escaped)
// emitted with stdlib only, with tenants sorted so scrapes are
// byte-stable for tests and diffs.

// metricsContentType is the exposition-format content type scrapers
// negotiate for.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabel escapes a label value per the exposition format
// (backslash, double quote and newline).
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// metricsWriter accumulates exposition lines.
type metricsWriter struct {
	b strings.Builder
}

// header emits the HELP/TYPE preamble for a metric family.
func (m *metricsWriter) header(name, help, typ string) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line; labels alternate name, value and must
// come pre-sorted by the caller (label VALUES are escaped here).
func (m *metricsWriter) sample(name string, value int, labels ...string) {
	m.b.WriteString(name)
	if len(labels) > 0 {
		m.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				m.b.WriteByte(',')
			}
			fmt.Fprintf(&m.b, `%s="%s"`, labels[i], escapeLabel(labels[i+1]))
		}
		m.b.WriteByte('}')
	}
	fmt.Fprintf(&m.b, " %d\n", value)
}

// tenantAdmissionJSON is one tenant's admission-control gauges, for
// /metrics.
type tenantAdmissionJSON struct {
	// Tenant is the tenant name.
	Tenant string
	// Pending counts the tenant's outstanding (not-yet-completed)
	// cells across its live matrices.
	Pending int
	// Active counts the tenant's live (non-terminal) matrices.
	Active int
	// Rejected counts the tenant's quota rejections (429s) since the
	// coordinator started.
	Rejected int
}

// admissionMetrics snapshots per-tenant admission gauges, sorted by
// tenant name. A tenant appears once it has ever submitted or been
// rejected.
func (s *Server) admissionMetrics() []tenantAdmissionJSON {
	s.mu.Lock()
	names := make(map[string]struct{})
	for _, run := range s.matrices {
		names[run.tenant] = struct{}{}
	}
	for tenant := range s.rejected {
		names[tenant] = struct{}{}
	}
	out := make([]tenantAdmissionJSON, 0, len(names))
	for tenant := range names {
		pending, active := s.pendingCellsLocked(tenant)
		out = append(out, tenantAdmissionJSON{
			Tenant:   tenant,
			Pending:  pending,
			Active:   active,
			Rejected: s.rejected[tenant],
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// handleMetrics serves the exposition page (GET /metrics).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var m metricsWriter

	m.header("krum_scenariod_queue_depth", "Queued fleet tasks per tenant and priority.", "gauge")
	for _, q := range s.fleet.queueDepths() {
		m.sample("krum_scenariod_queue_depth", q.Depth,
			"priority", fmt.Sprintf("%d", q.Priority), "tenant", q.Tenant)
	}

	fs := s.fleet.status()
	m.header("krum_scenariod_tenant_inflight", "Fleet tasks currently leased to workers, per tenant.", "gauge")
	for _, t := range fs.Tenants {
		m.sample("krum_scenariod_tenant_inflight", t.InFlight, "tenant", t.Tenant)
	}
	m.header("krum_scenariod_dispatches_total", "Task assignments to workers, per tenant.", "counter")
	for _, t := range fs.Tenants {
		m.sample("krum_scenariod_dispatches_total", t.Dispatches, "tenant", t.Tenant)
	}
	m.header("krum_scenariod_requeues_total", "Tasks taken back from workers (lease or deadline expiry, bad payloads), per tenant.", "counter")
	for _, t := range fs.Tenants {
		m.sample("krum_scenariod_requeues_total", t.Requeues, "tenant", t.Tenant)
	}

	adm := s.admissionMetrics()
	m.header("krum_scenariod_pending_cells", "Outstanding (not-yet-completed) cells per tenant.", "gauge")
	for _, t := range adm {
		m.sample("krum_scenariod_pending_cells", t.Pending, "tenant", t.Tenant)
	}
	m.header("krum_scenariod_active_matrices", "Live (non-terminal) matrices per tenant.", "gauge")
	for _, t := range adm {
		m.sample("krum_scenariod_active_matrices", t.Active, "tenant", t.Tenant)
	}
	m.header("krum_scenariod_rejected_total", "Submissions refused with 429 (quota backpressure), per tenant.", "counter")
	for _, t := range adm {
		m.sample("krum_scenariod_rejected_total", t.Rejected, "tenant", t.Tenant)
	}

	m.header("krum_scenariod_fleet_workers", "Live fleet members.", "gauge")
	m.sample("krum_scenariod_fleet_workers", len(fs.Workers))
	m.header("krum_scenariod_fleet_queued", "Queued fleet tasks across all tenants.", "gauge")
	m.sample("krum_scenariod_fleet_queued", fs.Queued)
	m.header("krum_scenariod_fleet_assigned", "Fleet tasks currently leased to workers.", "gauge")
	m.sample("krum_scenariod_fleet_assigned", fs.Assigned)
	m.header("krum_scenariod_local_fallbacks_total", "Cells computed in-process on the coordinator (no live workers, or exhausted attempts).", "counter")
	m.sample("krum_scenariod_local_fallbacks_total", fs.LocalFallbacks)

	if st, ok := s.store.(storeStatser); ok {
		stats := st.Stats()
		for _, row := range []struct {
			name, help, typ string
			value           int
		}{
			{"krum_scenariod_store_entries", "Result-store entries resident.", "gauge", stats.Entries},
			{"krum_scenariod_store_hits_total", "Result-store lookup hits.", "counter", stats.Hits},
			{"krum_scenariod_store_misses_total", "Result-store lookup misses.", "counter", stats.Misses},
			{"krum_scenariod_store_flight_waits_total", "Lookups that waited on an identical in-flight computation.", "counter", stats.FlightWaits},
			{"krum_scenariod_store_saves_total", "Result-store writes.", "counter", stats.Saves},
			{"krum_scenariod_store_segments", "Persistent store segments.", "gauge", stats.Segments},
			{"krum_scenariod_store_seals_total", "Segment seals.", "counter", stats.Seals},
			{"krum_scenariod_store_compactions_total", "Segment compactions.", "counter", stats.Compactions},
		} {
			m.header(row.name, row.help, row.typ)
			m.sample(row.name, row.value)
		}
	}

	if s.journal != nil {
		m.header("krum_scenariod_journal_lag", "Journal events since the last checkpoint (replay cost of a crash right now).", "gauge")
		m.sample("krum_scenariod_journal_lag", s.journal.Lag())
	}

	w.Header().Set("Content-Type", metricsContentType)
	_, _ = w.Write([]byte(m.b.String()))
}
