package main

// Chaos coverage: Byzantine INFRASTRUCTURE instead of Byzantine
// workers. A worker is killed while executing a cell and another's
// heartbeats are delayed past the lease; the coordinator must expire
// both, reassign their cells, and still finish the matrix with results
// byte-identical to a direct single-process run — with every cell
// stored exactly once. Runs under -race in CI (the blocking shard
// job and the repo-wide race job).

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"krum/scenario"
	"krum/scenario/store"
)

// chaosLease is deliberately short so lease expiry happens inside a
// cell's execution time (chaosMatrix cells run ~0.5s without the race
// detector, several seconds with it).
const chaosLease = 250 * time.Millisecond

// chaosMatrix is a 6-cell grid whose cells each run well past
// chaosLease, so a worker that stops heartbeating mid-cell reliably
// expires before finishing.
func chaosMatrix() scenario.Matrix {
	return scenario.Matrix{
		Base: scenario.Spec{
			Workload:  "mnist(size=8,hidden=12)",
			Rule:      "krum",
			Schedule:  "inverset(gamma=0.5,power=0.75,t0=200)",
			N:         9,
			F:         2,
			Rounds:    600,
			BatchSize: 8,
			EvalEvery: 200,
			EvalBatch: 64,
		},
		Seeds: []uint64{1, 2, 3, 4, 5, 6},
	}
}

// waitWorkerBusy polls GET /fleet until the named worker holds an
// assignment.
func waitWorkerBusy(t *testing.T, ts *httptest.Server, workerID string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st fleetStatusJSON
		getJSON(t, ts, "/fleet", &st)
		for _, w := range st.Workers {
			if w.ID == workerID && w.InFlight > 0 {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("worker %s never received a task", workerID)
}

// waitWorkerGone polls GET /fleet until the named worker's lease has
// expired and it has been removed from the membership.
func waitWorkerGone(t *testing.T, ts *httptest.Server, workerID string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		gone := true
		var st fleetStatusJSON
		getJSON(t, ts, "/fleet", &st)
		for _, w := range st.Workers {
			if w.ID == workerID {
				gone = false
			}
		}
		if gone {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("worker %s was never expired", workerID)
}

// TestChaosWorkerDeathAndDelayedHeartbeat is the issue's chaos
// criterion: kill worker w1 mid-cell and delay w2's heartbeats past
// the lease; the coordinator must reassign their cells, the matrix
// must complete with zero failures, the store must hold every cell
// exactly once, and the final results must be byte-identical to a
// direct scenario.Runner run.
func TestChaosWorkerDeathAndDelayedHeartbeat(t *testing.T) {
	runChaos(t, chaosMatrix())
}

// TestChaosWorkerDeathAndDelayedHeartbeatAsync repeats the chaos
// scenario over asynchronous incremental cells: a reassigned async
// cell replays its arrival trace from the spec seed, so lease expiry
// and requeueing must still reproduce the direct run byte for byte.
// Fewer seeds than the sync variant keep the doubled suite's -race
// runtime bounded.
func TestChaosWorkerDeathAndDelayedHeartbeatAsync(t *testing.T) {
	m := chaosMatrix()
	m.Base.Arrival = "bernoulli(p=0.5,tau=4)"
	m.Base.Incremental = true
	m.Seeds = m.Seeds[:4]
	runChaos(t, m)
}

// runChaos runs the kill-one-delay-one chaos scenario over m and
// asserts completion, exactly-once storage, byte-identity with a
// direct run, and the expired worker's 410 → rejoin recovery.
func runChaos(t *testing.T, m scenario.Matrix) {
	t.Helper()
	direct, err := (&scenario.Runner{Workers: 4}).Run(m)
	if err != nil {
		t.Fatal(err)
	}

	st := store.NewMemory()
	srv := NewServer(4, st, chaosLease)
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// workers[0] (fleet id w1) is the murder victim; workers[1] (w2)
	// heartbeats far too slowly to survive a single cell; workers[2]
	// (w3) is healthy.
	fleet := startWorkers(t, ts, 3, func(i int, w *Worker) {
		if i == 1 {
			w.HeartbeatEvery = time.Hour
		}
	})
	defer fleet.stop()

	body, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	sub := submit(t, ts, string(body))

	// Kill w1 the moment it is executing a cell: its heartbeats stop,
	// its result is never reported, and the in-process goroutine keeps
	// crunching uselessly — exactly what a SIGKILL'd remote process
	// looks like from the coordinator's side.
	waitWorkerBusy(t, ts, "w1")
	fleet.kill(0)

	// The coordinator must expire both the corpse and the silent
	// heartbeater (w2's first cell outlives the lease), requeueing
	// their cells onto the survivors.
	waitWorkerGone(t, ts, "w1")
	waitWorkerGone(t, ts, "w2")

	status := waitFinished(t, ts, sub.ID)
	if status.Failed != 0 {
		t.Fatalf("chaos run failed %d cells", status.Failed)
	}
	if status.Completed != len(direct) {
		t.Fatalf("completed %d/%d cells", status.Completed, len(direct))
	}

	// No duplicated results: one save and one entry per distinct cell,
	// despite reassignments and the killed worker's abandoned copy.
	stats := st.Stats()
	if stats.Saves != len(direct) || stats.Entries != len(direct) {
		t.Errorf("store holds %d saves / %d entries for %d cells — duplicates or losses",
			stats.Saves, stats.Entries, len(direct))
	}

	var results resultsJSON
	getJSON(t, ts, "/matrices/"+sub.ID+"/results", &results)
	for i, cr := range direct {
		cell := results.Results[i]
		if cell == nil || cell.Result == nil {
			t.Fatalf("cell %d missing after chaos run", i)
		}
		if cell.Error != "" {
			t.Fatalf("cell %d failed: %s", i, cell.Error)
		}
		if encodeResult(t, cell.Result) != encodeResult(t, cr.Result) {
			t.Errorf("cell %d (%s): chaos result differs from direct run", i, cr.Spec.Label())
		}
	}

	// The delayed heartbeater must have rejoined under a fresh identity
	// after discovering its expiry — the 410 → rejoin path.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var fs fleetStatusJSON
		getJSON(t, ts, "/fleet", &fs)
		rejoined := false
		for _, w := range fs.Workers {
			if w.ID != "w1" && w.ID != "w2" && w.ID != "w3" {
				rejoined = true
			}
		}
		if rejoined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("the expired worker never rejoined")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
