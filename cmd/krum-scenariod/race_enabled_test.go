//go:build race

package main

// raceDetectorEnabled reports whether this test binary was built with
// -race. The end-to-end sharding test runs the full
// examples/matrix-only.json grid in ordinary builds but a reduced
// slice of it under the race detector, whose instrumentation slows
// training cells by an order of magnitude; the byte-identity
// assertions are identical either way, and the plain CI job still
// exercises the full file.
const raceDetectorEnabled = true
