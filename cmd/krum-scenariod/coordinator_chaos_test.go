package main

// Kill-the-coordinator chaos: the issue's acceptance criterion for the
// durability subsystem. A coordinator with a segmented store and a
// checkpoint/journal is killed SIGKILL-style mid-matrix while a live
// 3-worker fleet is executing cells; a second coordinator starts on
// the same address, store directory and journal, replays the journal,
// resumes the matrix under its original id, re-adopts the fleet
// through the 410/rejoin path, and finishes — with zero lost cells and
// both the served results and the persisted store bytes byte-identical
// to a direct single-process scenario.Runner run. Runs under -race in
// the blocking shard-tests CI job.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"krum/scenario"
	"krum/scenario/store"
)

// httpGetJSON is getJSON against a raw base URL (the chaos test cannot
// use httptest.Server — the address must survive the coordinator it
// belongs to).
func httpGetJSON(t *testing.T, base, path string, out any) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

// httpSubmit is submit against a raw base URL.
func httpSubmit(t *testing.T, base, body string) submitResponse {
	t.Helper()
	resp, err := http.Post(base+"/matrices", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, msg)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// waitCompletedAt polls a matrix's status at base until at least n
// cells completed, returning the snapshot that crossed the line.
func waitCompletedAt(t *testing.T, base, id string, n int) statusJSON {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var st statusJSON
		httpGetJSON(t, base, "/matrices/"+id, &st)
		if st.Completed >= n {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("matrix %s never completed %d cells", id, n)
	return statusJSON{}
}

// waitFinishedAt polls a matrix's status at base until it finishes.
func waitFinishedAt(t *testing.T, base, id string) statusJSON {
	t.Helper()
	deadline := time.Now().Add(300 * time.Second)
	for time.Now().Before(deadline) {
		var st statusJSON
		httpGetJSON(t, base, "/matrices/"+id, &st)
		if st.Finished {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("matrix %s did not finish in time", id)
	return statusJSON{}
}

// waitFleetAt polls GET /fleet at base until the membership reaches n,
// returning the member ids.
func waitFleetAt(t *testing.T, base string, n int) []string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st fleetStatusJSON
		httpGetJSON(t, base, "/fleet", &st)
		if len(st.Workers) >= n {
			ids := make([]string, 0, len(st.Workers))
			for _, w := range st.Workers {
				ids = append(ids, w.ID)
			}
			return ids
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("fleet never reached %d workers", n)
	return nil
}

// crashCoordinator is the in-process equivalent of kill -9 for a
// coordinator: the listener dies (workers get connection errors, then
// talk to whoever binds the address next), the journal and store
// handles close WITHOUT the graceful-shutdown checkpoint, and the
// executor goroutines are drained only so the test process does not
// leak them — everything they do after the store closed stays in the
// dead coordinator's memory, exactly like work lost inside a killed
// process. Nothing here persists any state the real SIGKILL would not.
func crashCoordinator(t *testing.T, hs *http.Server, srv *Server, st *store.Store) {
	t.Helper()
	hs.Close()
	srv.mu.Lock()
	srv.stopped = true
	srv.mu.Unlock()
	if srv.journal != nil {
		srv.journal.close() // no final checkpoint — this is the crash
	}
	if err := st.Close(); err != nil {
		t.Fatalf("closing crashed store: %v", err)
	}
	srv.cancel()
	srv.fleet.close()
	srv.wg.Wait()
}

// chaosSealBytes keeps segments tiny so the crash lands in a store
// that has already sealed — recovery replays segments AND a live tail.
const chaosSealBytes = 4096

// TestChaosCoordinatorKillMidMatrix kills the coordinator mid-matrix
// under a live 3-worker fleet and proves the durability subsystem
// end to end; see the package comment above.
func TestChaosCoordinatorKillMidMatrix(t *testing.T) {
	m := chaosMatrix()
	direct, err := (&scenario.Runner{Workers: 4}).Run(m)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	storeDir := dir + "/cells"
	journalPath := dir + "/coordinator.journal"
	openStore := func() *store.Store {
		st, err := store.OpenDirOptions(storeDir, store.SegmentedOptions{SealBytes: chaosSealBytes})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Coordinator #1 on a real listener: its ADDRESS must outlive it.
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	base := "http://" + addr
	st1 := openStore()
	srv1 := NewServer(3, st1, chaosLease)
	if _, err := srv1.UseJournal(journalPath); err != nil {
		t.Fatal(err)
	}
	hs1 := &http.Server{Handler: srv1}
	go hs1.Serve(ln1)

	// A 3-worker fleet joined by URL, so it survives the coordinator.
	workers := startWorkersAt(t, base, 3)
	defer workers.stop()
	waitFleetAt(t, base, 3)

	// Submit under an explicit tenant and priority: recovery must carry
	// the attribution across the crash (it is journaled with the
	// submit event and the checkpoints).
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var envelope map[string]any
	if err := json.Unmarshal(blob, &envelope); err != nil {
		t.Fatal(err)
	}
	envelope["tenant"] = "chaos-tenant"
	envelope["priority"] = 2
	body, err := json.Marshal(envelope)
	if err != nil {
		t.Fatal(err)
	}
	sub := httpSubmit(t, base, string(body))

	// SIGKILL the coordinator once real progress exists but well before
	// the matrix finishes.
	progress := waitCompletedAt(t, base, sub.ID, 2)
	if progress.Finished {
		t.Fatalf("matrix finished (%d cells) before the kill — chaos cells are too fast", progress.Completed)
	}
	crashCoordinator(t, hs1, srv1, st1)

	// Coordinator #2: same address, same store, same journal. The bind
	// can race the dying listener's teardown, so retry briefly.
	var ln2 net.Listener
	for deadline := time.Now().Add(10 * time.Second); ; {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st2 := openStore()
	defer st2.Close()
	srv2 := NewServer(3, st2, chaosLease)
	resumed, err := srv2.UseJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("recovery resumed %d matrices, want 1", resumed)
	}
	hs2 := &http.Server{Handler: srv2}
	go hs2.Serve(ln2)
	defer hs2.Close()
	defer srv2.Stop()

	// The fleet re-adopts itself: the same worker processes, under
	// FRESH identities (the restored id sequence never re-grants w1-w3).
	ids := waitFleetAt(t, base, 3)
	for _, id := range ids {
		if id == "w1" || id == "w2" || id == "w3" {
			t.Fatalf("re-adopted fleet reuses pre-crash id %s (ids: %v)", id, ids)
		}
	}

	// Zero lost cells: the resurrected matrix — original id — finishes
	// completely, its pre-crash prefix served from the store.
	status := waitFinishedAt(t, base, sub.ID)
	if status.Failed != 0 {
		t.Fatalf("recovered run failed %d cells", status.Failed)
	}
	if status.Tenant != "chaos-tenant" || status.Priority != 2 {
		t.Fatalf("recovery lost tenancy: tenant %q priority %d, want chaos-tenant/2", status.Tenant, status.Priority)
	}
	if status.Completed != len(direct) || status.Total != len(direct) {
		t.Fatalf("recovered run completed %d/%d of %d cells", status.Completed, status.Total, len(direct))
	}
	if status.Cached == 0 {
		t.Error("recovery recomputed everything — the pre-crash prefix was not served from the store")
	}

	// Byte-identity of the SERVED results against the direct
	// single-process run.
	var results resultsJSON
	httpGetJSON(t, base, "/matrices/"+sub.ID+"/results", &results)
	for i, cr := range direct {
		cell := results.Results[i]
		if cell == nil || cell.Result == nil {
			t.Fatalf("cell %d missing after recovery", i)
		}
		if cell.Error != "" {
			t.Fatalf("cell %d failed: %s", i, cell.Error)
		}
		if encodeResult(t, cell.Result) != encodeResult(t, cr.Result) {
			t.Errorf("cell %d (%s): recovered result differs from direct run", i, cr.Spec.Label())
		}
	}

	// The crash must have landed in a store with sealed segments, or
	// this test is not exercising segment replay.
	if st2.Stats().Segments == 0 && st2.Stats().Seals == 0 {
		t.Error("no segments ever sealed — lower chaosSealBytes")
	}

	// Byte-identity of the PERSISTED bytes: a completely fresh store
	// handle over the same directory must serve every cell's stable
	// encoding identical to the direct run.
	hs2.Close()
	srv2.Stop()
	st2.Close()
	final := openStore()
	defer final.Close()
	for i, cr := range direct {
		got, ok := final.Lookup(cr.Spec)
		if !ok {
			t.Fatalf("cell %d (%s) missing from the persisted store", i, cr.Spec.Label())
		}
		if encodeResult(t, got) != encodeResult(t, cr.Result) {
			t.Errorf("cell %d (%s): persisted bytes differ from direct run", i, cr.Spec.Label())
		}
	}
	if got := final.Stats().Entries; got < len(direct) {
		t.Errorf("persisted store holds %d entries, want at least %d", got, len(direct))
	}
}

// startWorkersAt is startWorkers against a raw base URL: n single-slot
// workers joined sequentially (ids map to join order).
func startWorkersAt(t *testing.T, base string, n int) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		w := &Worker{
			Coordinator: base,
			Slots:       1,
			Logf:        t.Logf,
		}
		f.workers = append(f.workers, w)
		f.cancels = append(f.cancels, cancel)
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("worker: %v", err)
			}
		}()
		waitFleetAt(t, base, i+1)
	}
	return f
}
