package main

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"krum/distsgd"
	"krum/internal/vec"
	"krum/scenario"
	"krum/scenario/shardproto"
	"krum/scenario/store"
)

// The fleet is the coordinator half of sharded scenario execution: a
// tenant-aware dispatch queue plus heartbeat-based membership. Cells
// enter through fleet.execute (called under the store's single-flight,
// so one key is dispatched at most once however many matrices or
// callers want it), wait in per-tenant×priority ring queues, and are
// leased to workers that long-poll for work — up to a whole batch per
// poll. Dispatch order is priority first, then fair share: among the
// highest-priority non-empty queues the tenant with the fewest
// in-flight tasks goes next (least-recently-picked breaks ties), so
// two tenants submitting equal work each hold ~half the fleet however
// lopsided their queue depths are. Within the chosen queue a small
// affinity window prefers a task whose workload×seed matches what the
// polling worker ran last, so the worker's workload cache keeps
// hitting. A worker silent for longer than the lease is presumed dead:
// its tasks are requeued and picked up by the next poll. When no live
// workers remain (none ever joined, or the fleet died mid-matrix),
// execution falls back to the local in-process path — a coordinator
// without a fleet is exactly the PR-4 single-process service.

// errNoWorkers resolves a task the fleet cannot execute; execute
// answers it by computing locally, so matrices always complete.
var errNoWorkers = errors.New("fleet: no live workers")

// maxTaskAttempts bounds how many workers may die holding one task
// before the coordinator stops re-dispatching and computes it locally.
const maxTaskAttempts = 3

// affinityWindow is how deep into the chosen queue tryAssign looks for
// a task matching the polling worker's last workload×seed. Small on
// purpose: affinity is a cache optimization, and scanning deeper would
// trade queue fairness (and O(1) dispatch) for marginal hit rate.
const affinityWindow = 8

// fleetTask is one dispatched cell.
type fleetTask struct {
	id   string
	spec scenario.Spec
	// tenant and priority place the task in its dispatch queue; they
	// come from the submission that first requested the cell (identical
	// cells from different tenants collapse in the store's
	// single-flight, so attribution goes to the first caller).
	tenant   string
	priority int
	// affinity groups tasks that share workload construction (the
	// workload spec × seed), so dispatch can aim them at a worker whose
	// cache already holds the bundle.
	affinity string
	attempts int
	// worker is the current assignee ("" while queued).
	worker string
	// deadline bounds how long an ASSIGNMENT may go unmentioned: set at
	// assignment and refreshed by heartbeats naming the task. A lapsed
	// deadline requeues the task even if its worker still polls —
	// covering a lost poll response and a lost result report, the two
	// failures worker-lease expiry cannot see.
	deadline time.Time
	// done closes when the task resolves; raw/err are valid after.
	done chan struct{}
	raw  json.RawMessage
	err  error
}

// affinityKey derives a task's affinity group from its spec: cells
// sharing a workload spec and seed share exactly the bundle a
// scenario.WorkloadCache memoizes.
func affinityKey(spec scenario.Spec) string {
	return fmt.Sprintf("%s|%d", spec.Workload, spec.Seed)
}

// taskRing is a FIFO queue over a reusable ring buffer. Unlike the
// fl.queue[1:] slice it replaced, every vacated slot is nilled out, so
// a dequeued task becomes collectible the moment its result is
// delivered — the PR-8 leak fix (the old backing array pinned every
// completed *fleetTask, spec and done channel included, for the life
// of the process).
type taskRing struct {
	buf  []*fleetTask
	head int
	n    int
}

// len reports the number of queued tasks.
func (r *taskRing) len() int { return r.n }

// at returns the i-th queued task (0 = oldest) without removing it.
func (r *taskRing) at(i int) *fleetTask {
	return r.buf[(r.head+i)%len(r.buf)]
}

// push appends a task, growing the ring when full.
func (r *taskRing) push(t *fleetTask) {
	if r.n == len(r.buf) {
		grown := make([]*fleetTask, 2*r.n+4)
		for i := 0; i < r.n; i++ {
			grown[i] = r.at(i)
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = t
	r.n++
}

// pop removes and returns the oldest task, clearing its slot.
func (r *taskRing) pop() *fleetTask {
	return r.removeAt(0)
}

// removeAt removes the i-th queued task, shifting the (at most
// affinityWindow) older entries forward one slot and clearing the
// vacated head. Panics on out-of-range i, like a slice would.
func (r *taskRing) removeAt(i int) *fleetTask {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("taskRing.removeAt(%d) with %d queued", i, r.n))
	}
	t := r.at(i)
	for j := i; j > 0; j-- {
		r.buf[(r.head+j)%len(r.buf)] = r.buf[(r.head+j-1)%len(r.buf)]
	}
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return t
}

// qkey identifies one dispatch queue: a tenant at a priority. Keeping
// tenant×priority queues separate (rather than one priority-sorted
// heap) makes fair-share selection a scan over live queues and keeps
// every queue strictly FIFO within its class.
type qkey struct {
	tenant   string
	priority int
}

// tenantStats is one tenant's dispatch accounting. queued/inflight are
// live gauges; dispatches/requeues are monotonic counters kept for the
// life of the process (they feed /metrics and the fair-share
// assertions in the load harness).
type tenantStats struct {
	queued     int
	inflight   int
	dispatches int
	requeues   int
	// lastPick is the global pick sequence at this tenant's most recent
	// dispatch — the round-robin tie-break among tenants with equal
	// in-flight counts.
	lastPick uint64
}

// fleetWorker is one fleet member's membership state.
type fleetWorker struct {
	id    string
	token string
	slots int
	// joined and lastSeen bound the member's lease.
	joined   time.Time
	lastSeen time.Time
	// affinity is the workload×seed of the member's most recent
	// assignment — what the affinity window matches against.
	affinity string
	// tasks are the member's in-flight assignments, by task id.
	tasks map[string]*fleetTask
}

// fleet tracks members and the dispatch queues. All fields are guarded
// by mu; tasks resolve by closing done with raw/err already set.
type fleet struct {
	lease    time.Duration
	pollWait time.Duration
	// localCache amortizes workload construction across cells computed
	// on the coordinator itself (the no-workers fallback path). It has
	// its own locking.
	localCache *scenario.WorkloadCache

	mu      sync.Mutex
	workers map[string]*fleetWorker
	queues  map[qkey]*taskRing
	tenants map[string]*tenantStats
	// queued is the total across all queues (Σ tenantStats.queued).
	queued   int
	pickSeq  uint64
	assigned map[string]*fleetTask
	wseq     int
	tseq     int
	closed   bool
	// localFallbacks counts cells resolved to in-process computation —
	// no live workers, or a task that exhausted maxTaskAttempts.
	localFallbacks int
	// notify wakes one idle long-poll when a queue gains a task.
	notify chan struct{}
}

// newFleet builds a fleet with the given liveness lease (0 means 10s);
// the long-poll window is derived from it.
func newFleet(lease time.Duration) *fleet {
	if lease <= 0 {
		lease = 10 * time.Second
	}
	pollWait := lease / 10
	if pollWait > time.Second {
		pollWait = time.Second
	}
	if pollWait < 20*time.Millisecond {
		pollWait = 20 * time.Millisecond
	}
	return &fleet{
		lease:      lease,
		pollWait:   pollWait,
		localCache: scenario.NewWorkloadCache(0),
		workers:    make(map[string]*fleetWorker),
		queues:     make(map[qkey]*taskRing),
		tenants:    make(map[string]*tenantStats),
		assigned:   make(map[string]*fleetTask),
		notify:     make(chan struct{}, 1),
	}
}

// tenantLocked returns (creating if needed) a tenant's stats; callers
// hold fl.mu.
func (fl *fleet) tenantLocked(tenant string) *tenantStats {
	ts, ok := fl.tenants[tenant]
	if !ok {
		ts = &tenantStats{}
		fl.tenants[tenant] = ts
	}
	return ts
}

// computeLocal is the coordinator's in-process compute path, routed
// through the local workload cache.
func (fl *fleet) computeLocal(spec scenario.Spec) (*distsgd.Result, error) {
	fl.mu.Lock()
	fl.localFallbacks++
	fl.mu.Unlock()
	return fl.localCache.ComputeCell(spec)
}

// execute runs one cell through the fleet on behalf of a tenant and
// blocks until its result arrives (through however many lease-expiry
// reassignments it takes), falling back to local computation when no
// live workers exist. It is the compute function the store's
// single-flight invokes, so identical concurrent cells reach it
// exactly once — under the first caller's tenant and priority.
func (fl *fleet) execute(spec scenario.Spec, tenant string, priority int) (*distsgd.Result, error) {
	t, ok := fl.enqueue(spec, tenant, priority)
	if !ok {
		return fl.computeLocal(spec)
	}
	<-t.done
	if errors.Is(t.err, errNoWorkers) {
		return fl.computeLocal(spec)
	}
	if t.err != nil {
		return nil, t.err
	}
	res := new(distsgd.Result)
	if err := json.Unmarshal(t.raw, res); err != nil {
		return nil, fmt.Errorf("decoding worker result: %w", err)
	}
	return res, nil
}

// enqueue appends a task to its tenant×priority queue; ok is false
// when the fleet has no live workers (or is closed) and the caller
// should run locally.
func (fl *fleet) enqueue(spec scenario.Spec, tenant string, priority int) (*fleetTask, bool) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed || len(fl.workers) == 0 {
		return nil, false
	}
	fl.tseq++
	t := &fleetTask{
		id:       fmt.Sprintf("t%d", fl.tseq),
		spec:     spec,
		tenant:   tenant,
		priority: priority,
		affinity: affinityKey(spec),
		done:     make(chan struct{}),
	}
	fl.pushLocked(t)
	fl.signal()
	return t, true
}

// pushLocked places a task on its queue and bumps the gauges; callers
// hold fl.mu.
func (fl *fleet) pushLocked(t *fleetTask) {
	key := qkey{tenant: t.tenant, priority: t.priority}
	r, ok := fl.queues[key]
	if !ok {
		r = &taskRing{}
		fl.queues[key] = r
	}
	r.push(t)
	fl.tenantLocked(t.tenant).queued++
	fl.queued++
}

// signal wakes one idle poller; callers hold fl.mu. The channel is a
// level trigger with capacity one — a poller that misses the edge
// still re-checks the queue on its poll-window timeout.
func (fl *fleet) signal() {
	select {
	case fl.notify <- struct{}{}:
	default:
	}
}

// join admits a new member and returns its identity grant, including
// the per-member secret every later message must echo.
func (fl *fleet) join(slots int) shardproto.JoinResponse {
	token := make([]byte, 16)
	rand.Read(token) // never fails (crypto/rand contract)
	fl.mu.Lock()
	defer fl.mu.Unlock()
	fl.wseq++
	w := &fleetWorker{
		id:       fmt.Sprintf("w%d", fl.wseq),
		token:    hex.EncodeToString(token),
		slots:    slots,
		joined:   time.Now(),
		lastSeen: time.Now(),
		tasks:    make(map[string]*fleetTask),
	}
	fl.workers[w.id] = w
	return shardproto.JoinResponse{
		WorkerID:    w.id,
		Token:       w.token,
		LeaseMillis: int(fl.lease / time.Millisecond),
	}
}

// restoreWseq advances the member id sequence to at least n — journal
// recovery calls it so a restarted coordinator never re-grants an id
// some pre-crash worker may still be presenting (the token check would
// reject the zombie anyway, but unique ids keep logs and tests
// unambiguous about which incarnation a member belongs to).
func (fl *fleet) restoreWseq(n int) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if n > fl.wseq {
		fl.wseq = n
	}
}

// currentWseq reads the member id sequence for checkpointing.
func (fl *fleet) currentWseq() int {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.wseq
}

// member authenticates (id, token) against the live membership;
// callers hold fl.mu. A bad token is indistinguishable from an expired
// id, so guessing sequential worker ids grants nothing.
func (fl *fleet) member(workerID, token string) *fleetWorker {
	w, ok := fl.workers[workerID]
	if !ok || w.token != token {
		return nil
	}
	return w
}

// betterLocked orders two non-empty queues for dispatch: higher
// priority first, then the tenant with fewer in-flight tasks (the
// fair-share invariant), then the tenant picked least recently
// (round-robin among equals), then tenant name for determinism.
// Callers hold fl.mu.
func (fl *fleet) betterLocked(a, b qkey) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	sa, sb := fl.tenantLocked(a.tenant), fl.tenantLocked(b.tenant)
	if sa.inflight != sb.inflight {
		return sa.inflight < sb.inflight
	}
	if sa.lastPick != sb.lastPick {
		return sa.lastPick < sb.lastPick
	}
	return a.tenant < b.tenant
}

// pickLocked chooses and removes the next task for worker w, or nil
// when nothing is queued: best queue by betterLocked, then an affinity
// scan of that queue's first affinityWindow entries for a task whose
// workload×seed matches w's last assignment. Callers hold fl.mu.
func (fl *fleet) pickLocked(w *fleetWorker) *fleetTask {
	if fl.queued == 0 {
		return nil
	}
	var bestKey qkey
	haveBest := false
	for k, r := range fl.queues {
		if r.len() == 0 {
			continue
		}
		if !haveBest || fl.betterLocked(k, bestKey) {
			bestKey, haveBest = k, true
		}
	}
	if !haveBest {
		return nil
	}
	r := fl.queues[bestKey]
	idx := 0
	if w.affinity != "" {
		for i := 0; i < r.len() && i < affinityWindow; i++ {
			if r.at(i).affinity == w.affinity {
				idx = i
				break
			}
		}
	}
	t := r.removeAt(idx)
	if r.len() == 0 {
		delete(fl.queues, bestKey)
	}
	ts := fl.tenantLocked(t.tenant)
	ts.queued--
	fl.queued--
	ts.inflight++
	ts.dispatches++
	fl.pickSeq++
	ts.lastPick = fl.pickSeq
	w.affinity = t.affinity
	return t
}

// tryAssign refreshes the member's lease and hands it up to max queued
// tasks (max < 1 is treated as 1 — the unbatched protocol). known is
// false for expired, never-joined or wrongly-authenticated ids — the
// 410 that tells a worker to rejoin.
func (fl *fleet) tryAssign(workerID, token string, max int) (tasks []*fleetTask, known bool) {
	if max < 1 {
		max = 1
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	w := fl.member(workerID, token)
	if w == nil {
		return nil, false
	}
	w.lastSeen = time.Now()
	if fl.closed {
		return nil, true
	}
	for len(tasks) < max {
		t := fl.pickLocked(w)
		if t == nil {
			break
		}
		t.worker = workerID
		t.attempts++
		t.deadline = time.Now().Add(fl.lease)
		fl.assigned[t.id] = t
		w.tasks[t.id] = t
		tasks = append(tasks, t)
	}
	if fl.queued > 0 {
		fl.signal()
	}
	return tasks, true
}

// heartbeat refreshes a member's lease and, for every named task
// assigned to that member, the task's own deadline; false means the id
// is unknown (expired) and the worker must rejoin.
func (fl *fleet) heartbeat(workerID, token string, taskIDs []string) bool {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	w := fl.member(workerID, token)
	if w == nil {
		return false
	}
	now := time.Now()
	w.lastSeen = now
	for _, taskID := range taskIDs {
		if t, ok := fl.assigned[taskID]; ok && t.worker == workerID {
			t.deadline = now.Add(fl.lease)
		}
	}
	return true
}

// validResultBytes reports that a reported payload is a stable-encoded
// distsgd.Result: it must decode AND re-encode to the identical bytes.
// That is exactly what an honest same-version worker produces
// (Marshal∘Unmarshal∘Marshal ≡ Marshal, the serialize.go contract), so
// the check costs honest reports nothing while rejecting arbitrary
// JSON that would otherwise decode to a zero-value Result and be
// persisted as the cell's permanent store entry.
func validResultBytes(raw json.RawMessage) bool {
	res := new(distsgd.Result)
	if err := json.Unmarshal(raw, res); err != nil {
		return false
	}
	again, err := json.Marshal(res)
	if err != nil {
		return false
	}
	return bytes.Equal(bytes.TrimSpace(raw), again)
}

// unassignLocked removes a task from the assignment maps and releases
// its tenant's in-flight slot; callers hold fl.mu. Every task that
// entered the assigned state passes through here exactly once, however
// it leaves (completion, garbage payload, expiry, shutdown).
func (fl *fleet) unassignLocked(t *fleetTask) {
	delete(fl.assigned, t.id)
	if w, ok := fl.workers[t.worker]; ok {
		delete(w.tasks, t.id)
	}
	fl.tenantLocked(t.tenant).inflight--
}

// complete resolves a task with a worker's report. known is false when
// the reporter does not authenticate — a lease that expired, or a
// member of a pre-crash coordinator incarnation — and the caller
// answers 410 so the worker rejoins immediately instead of reporting
// into the void until its polls notice. An authenticated report is
// accepted only if the task is still assigned to that worker and a
// success payload survives the canonical-bytes check: a report for a
// task requeued after expiry (or already resolved by the replacement)
// answers accepted=false and is discarded — the executions are
// byte-identical, so dropping the stale copy loses nothing and keeps
// the store to one save per key — while a malformed payload requeues
// the task, treating its sender as faulty.
func (fl *fleet) complete(workerID, token, taskID string, raw json.RawMessage, errMsg string) (accepted, known bool) {
	fl.mu.Lock()
	w := fl.member(workerID, token)
	if w == nil {
		fl.mu.Unlock()
		return false, false
	}
	w.lastSeen = time.Now()
	t, ok := fl.assigned[taskID]
	if !ok || t.worker != workerID {
		fl.mu.Unlock()
		return false, true
	}
	if errMsg == "" && !validResultBytes(raw) {
		// The worker is alive but talking garbage: take the task away
		// from it and let someone else compute.
		fl.unassignLocked(t)
		resolve := fl.requeueLocked(t)
		fl.mu.Unlock()
		resolveAll(resolve)
		return false, true
	}
	fl.unassignLocked(t)
	fl.mu.Unlock()
	if errMsg != "" {
		t.err = errors.New(errMsg)
	} else {
		t.raw = raw
	}
	close(t.done)
	return true, true
}

// requeueLocked returns an unassigned-again task to its queue, or —
// when its attempts are exhausted — hands it back for resolution to
// the local fallback. Callers hold fl.mu and have already passed the
// task through unassignLocked.
func (fl *fleet) requeueLocked(t *fleetTask) []*fleetTask {
	t.worker = ""
	fl.tenantLocked(t.tenant).requeues++
	if t.attempts >= maxTaskAttempts {
		return []*fleetTask{t}
	}
	fl.pushLocked(t)
	fl.signal()
	return nil
}

// resolveAll resolves tasks to the local fallback, outside fl.mu.
func resolveAll(tasks []*fleetTask) {
	for _, t := range tasks {
		t.err = errNoWorkers
		close(t.done)
	}
}

// drainQueuesLocked empties every queue for local-fallback resolution,
// zeroing the queue gauges; callers hold fl.mu.
func (fl *fleet) drainQueuesLocked() []*fleetTask {
	var drained []*fleetTask
	for key, r := range fl.queues {
		for r.len() > 0 {
			drained = append(drained, r.pop())
		}
		delete(fl.queues, key)
	}
	for _, ts := range fl.tenants {
		ts.queued = 0
	}
	fl.queued = 0
	return drained
}

// sweep expires members whose lease lapsed and assignments whose own
// deadline lapsed, requeueing the affected tasks (tasks that already
// bounced off maxTaskAttempts assignments resolve to the local
// fallback instead). When the last member expires, every pending task
// resolves to the local fallback so matrices complete without a fleet.
func (fl *fleet) sweep(now time.Time) {
	fl.mu.Lock()
	var resolve []*fleetTask
	for id, w := range fl.workers {
		if now.Sub(w.lastSeen) <= fl.lease {
			continue
		}
		delete(fl.workers, id)
		for _, t := range w.tasks {
			fl.unassignLocked(t)
			resolve = append(resolve, fl.requeueLocked(t)...)
		}
	}
	// Task-level deadlines catch assignments a live worker lost (a poll
	// response that never arrived) or finished but failed to report.
	for _, t := range fl.assigned {
		if now.Before(t.deadline) {
			continue
		}
		fl.unassignLocked(t)
		resolve = append(resolve, fl.requeueLocked(t)...)
	}
	if len(fl.workers) == 0 {
		resolve = append(resolve, fl.drainQueuesLocked()...)
	}
	fl.mu.Unlock()
	resolveAll(resolve)
}

// close drains the fleet at shutdown: every pending task resolves to
// the local fallback (so in-flight cells still finish and persist, the
// PR-4 shutdown contract), and later polls find an empty queue.
func (fl *fleet) close() {
	fl.mu.Lock()
	fl.closed = true
	resolve := fl.drainQueuesLocked()
	for _, t := range fl.assigned {
		resolve = append(resolve, t)
	}
	fl.assigned = make(map[string]*fleetTask)
	for _, w := range fl.workers {
		w.tasks = make(map[string]*fleetTask)
	}
	for _, ts := range fl.tenants {
		ts.inflight = 0
	}
	fl.mu.Unlock()
	for _, t := range resolve {
		t.err = errNoWorkers
		close(t.done)
	}
}

// fleetWorkerJSON is one member's row in the GET /fleet reply.
type fleetWorkerJSON struct {
	// ID is the coordinator-assigned member identity.
	ID string `json:"id"`
	// Slots is the capacity the member declared at join.
	Slots int `json:"slots"`
	// InFlight counts the member's currently-assigned tasks.
	InFlight int `json:"in_flight"`
	// LastSeenMillis is the age of the member's last message.
	LastSeenMillis int64 `json:"last_seen_millis"`
}

// fleetTenantJSON is one tenant's row in the GET /fleet reply (and the
// per-tenant series behind GET /metrics).
type fleetTenantJSON struct {
	// Tenant is the submission-supplied tenant name ("default" when the
	// submission named none).
	Tenant string `json:"tenant"`
	// Queued counts the tenant's tasks waiting for a poll, across all
	// of its priority queues.
	Queued int `json:"queued"`
	// InFlight counts the tenant's tasks currently leased to members.
	InFlight int `json:"in_flight"`
	// Dispatches counts task assignments to workers since the
	// coordinator started — the fair-share measurable.
	Dispatches int `json:"dispatches"`
	// Requeues counts tasks taken back from workers (lease expiry, task
	// deadline, garbage payloads) since the coordinator started.
	Requeues int `json:"requeues"`
}

// fleetQueueDepthJSON is one tenant×priority queue's depth, for
// /metrics (GET /fleet aggregates per tenant instead).
type fleetQueueDepthJSON struct {
	// Tenant is the queue's tenant.
	Tenant string `json:"tenant"`
	// Priority is the queue's priority tier.
	Priority int `json:"priority"`
	// Depth counts queued tasks.
	Depth int `json:"depth"`
}

// fleetStatusJSON is the GET /fleet reply.
type fleetStatusJSON struct {
	// Workers lists live members in join order.
	Workers []fleetWorkerJSON `json:"workers"`
	// Queued counts tasks waiting for a poll, across all tenants.
	Queued int `json:"queued"`
	// Assigned counts tasks leased to members.
	Assigned int `json:"assigned"`
	// LeaseMillis is the liveness lease members must beat.
	LeaseMillis int `json:"lease_millis"`
	// Tenants lists per-tenant queue gauges and dispatch counters,
	// sorted by tenant name. A tenant stays listed (counters intact)
	// after its queues drain.
	Tenants []fleetTenantJSON `json:"tenants,omitempty"`
	// LocalFallbacks counts cells the coordinator computed in-process
	// (no live workers, or a task that exhausted its attempts).
	LocalFallbacks int `json:"local_fallbacks"`
}

// status snapshots the fleet for the membership endpoint.
func (fl *fleet) status() fleetStatusJSON {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	now := time.Now()
	out := fleetStatusJSON{
		Queued:         fl.queued,
		Assigned:       len(fl.assigned),
		LeaseMillis:    int(fl.lease / time.Millisecond),
		LocalFallbacks: fl.localFallbacks,
	}
	for _, w := range fl.workers {
		out.Workers = append(out.Workers, fleetWorkerJSON{
			ID:             w.id,
			Slots:          w.slots,
			InFlight:       len(w.tasks),
			LastSeenMillis: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out.Workers, func(i, j int) bool {
		a, b := out.Workers[i].ID, out.Workers[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	for tenant, ts := range fl.tenants {
		out.Tenants = append(out.Tenants, fleetTenantJSON{
			Tenant:     tenant,
			Queued:     ts.queued,
			InFlight:   ts.inflight,
			Dispatches: ts.dispatches,
			Requeues:   ts.requeues,
		})
	}
	sort.Slice(out.Tenants, func(i, j int) bool {
		return out.Tenants[i].Tenant < out.Tenants[j].Tenant
	})
	return out
}

// queueDepths snapshots every tenant×priority queue's depth for
// /metrics, sorted by tenant then priority.
func (fl *fleet) queueDepths() []fleetQueueDepthJSON {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	out := make([]fleetQueueDepthJSON, 0, len(fl.queues))
	for key, r := range fl.queues {
		out = append(out, fleetQueueDepthJSON{Tenant: key.tenant, Priority: key.priority, Depth: r.len()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Priority < out[j].Priority
	})
	return out
}

// handleFleetJoin admits a worker (POST /fleet/join).
func (s *Server) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	body, err := shardproto.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := shardproto.DecodeJoinRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A worker built before a result-affecting change must not
	// contribute cells: its results would persist under the NEW version
	// salt — a silent stale-serve the salt exists to prevent.
	if req.Version != store.Version {
		http.Error(w, fmt.Sprintf("version mismatch: worker %q, coordinator %q (rebuild the worker)",
			req.Version, store.Version), http.StatusConflict)
		return
	}
	// The kernel accumulation-order family is pinned exactly like the
	// version salt: the coordinator persists worker results under keys
	// salted with ITS order family, so a worker computing under another
	// family would poison the store with results the coordinator's own
	// kernels cannot bit-reproduce. Order-identical tiers (go/sse2)
	// share a family id and mix freely; a mismatch means a genuinely
	// different rounding order (e.g. an AVX2 worker joining a pair2
	// coordinator) and is refused.
	if req.Kernel != vec.KernelOrder() {
		http.Error(w, fmt.Sprintf("kernel order mismatch: worker %q, coordinator %q (set KRUM_KERNEL_TIER to a matching tier)",
			req.Kernel, vec.KernelOrder()), http.StatusConflict)
		return
	}
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		http.Error(w, "server is shutting down", http.StatusServiceUnavailable)
		return
	}
	grant := s.fleet.join(req.Slots)
	// Journal the granted id (mutation first, event second — the
	// ordering journal.rewrite relies on) so a restarted coordinator
	// resumes the sequence past every id ever handed out.
	s.journalAppend(journalEvent{Type: "join", Worker: grant.WorkerID})
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, grant)
}

// handleFleetPoll leases up to MaxTasks tasks to a worker (POST
// /fleet/poll), holding the request open for the poll window when the
// queues are idle. A MaxTasks ≤ 1 poll is answered in the unbatched
// single-Task wire form, so pre-batching workers interoperate.
func (s *Server) handleFleetPoll(w http.ResponseWriter, r *http.Request) {
	body, err := shardproto.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := shardproto.DecodePollRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	deadline := time.NewTimer(s.fleet.pollWait)
	defer deadline.Stop()
	for {
		tasks, known := s.fleet.tryAssign(req.WorkerID, req.Token, req.MaxTasks)
		if !known {
			http.Error(w, "unknown worker id (lease expired; rejoin)", http.StatusGone)
			return
		}
		if len(tasks) > 0 {
			w.Header().Set("Content-Type", "application/json")
			var resp shardproto.PollResponse
			if req.MaxTasks <= 1 {
				resp.Task = &shardproto.Task{ID: tasks[0].id, Spec: tasks[0].spec}
			} else {
				resp.Tasks = make([]shardproto.Task, len(tasks))
				for i, t := range tasks {
					resp.Tasks[i] = shardproto.Task{ID: t.id, Spec: t.spec}
				}
			}
			writeJSON(w, resp)
			return
		}
		select {
		case <-s.fleet.notify:
		case <-deadline.C:
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, shardproto.PollResponse{})
			return
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, shardproto.PollResponse{})
			return
		}
	}
}

// handleFleetHeartbeat refreshes a worker's lease and its named tasks'
// deadlines (POST /fleet/heartbeat).
func (s *Server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	body, err := shardproto.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := shardproto.DecodeHeartbeatRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	taskIDs := req.TaskIDs
	if req.TaskID != "" {
		taskIDs = append([]string{req.TaskID}, taskIDs...)
	}
	if !s.fleet.heartbeat(req.WorkerID, req.Token, taskIDs) {
		http.Error(w, "unknown worker id (lease expired; rejoin)", http.StatusGone)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleFleetResult records a worker's task report (POST
// /fleet/result).
func (s *Server) handleFleetResult(w http.ResponseWriter, r *http.Request) {
	body, err := shardproto.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := shardproto.DecodeResultRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	accepted, known := s.fleet.complete(req.WorkerID, req.Token, req.TaskID, req.Result, req.Error)
	if !known {
		// The reporter's identity means nothing here — its lease lapsed,
		// or it joined a previous coordinator incarnation. 410 sends it
		// straight to rejoin (the same signal poll and heartbeat give),
		// which is how a restarted coordinator re-adopts a live fleet
		// mid-matrix; the in-flight result is dropped and its cell is
		// re-dispatched, recomputing to identical bytes.
		http.Error(w, "unknown worker id (lease expired; rejoin)", http.StatusGone)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, shardproto.ResultResponse{Accepted: accepted})
}

// handleFleetStatus reports fleet membership, queue depth and tenant
// counters (GET /fleet).
func (s *Server) handleFleetStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s.fleet.status())
}
