package main

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"krum/distsgd"
	"krum/scenario"
	"krum/scenario/shardproto"
	"krum/scenario/store"
)

// The fleet is the coordinator half of sharded scenario execution: a
// dispatch queue plus heartbeat-based membership. Cells enter through
// fleet.execute (called under the store's single-flight, so one key is
// dispatched at most once however many matrices or callers want it),
// wait in a FIFO queue, and are leased to workers that long-poll for
// work. A worker silent for longer than the lease is presumed dead:
// its tasks are requeued and picked up by the next poll. When no live
// workers remain (none ever joined, or the fleet died mid-matrix),
// execution falls back to the local in-process path — a coordinator
// without a fleet is exactly the PR-4 single-process service.

// errNoWorkers resolves a task the fleet cannot execute; execute
// answers it by computing locally, so matrices always complete.
var errNoWorkers = errors.New("fleet: no live workers")

// maxTaskAttempts bounds how many workers may die holding one task
// before the coordinator stops re-dispatching and computes it locally.
const maxTaskAttempts = 3

// fleetTask is one dispatched cell.
type fleetTask struct {
	id       string
	spec     scenario.Spec
	attempts int
	// worker is the current assignee ("" while queued).
	worker string
	// deadline bounds how long an ASSIGNMENT may go unmentioned: set at
	// assignment and refreshed by heartbeats naming the task. A lapsed
	// deadline requeues the task even if its worker still polls —
	// covering a lost poll response and a lost result report, the two
	// failures worker-lease expiry cannot see.
	deadline time.Time
	// done closes when the task resolves; raw/err are valid after.
	done chan struct{}
	raw  json.RawMessage
	err  error
}

// fleetWorker is one fleet member's membership state.
type fleetWorker struct {
	id    string
	token string
	slots int
	// joined and lastSeen bound the member's lease.
	joined   time.Time
	lastSeen time.Time
	// tasks are the member's in-flight assignments, by task id.
	tasks map[string]*fleetTask
}

// fleet tracks members and the dispatch queue. All fields are guarded
// by mu; tasks resolve by closing done with raw/err already set.
type fleet struct {
	lease    time.Duration
	pollWait time.Duration

	mu       sync.Mutex
	workers  map[string]*fleetWorker
	queue    []*fleetTask
	assigned map[string]*fleetTask
	wseq     int
	tseq     int
	closed   bool
	// notify wakes one idle long-poll when the queue gains a task.
	notify chan struct{}
}

// newFleet builds a fleet with the given liveness lease (0 means 10s);
// the long-poll window is derived from it.
func newFleet(lease time.Duration) *fleet {
	if lease <= 0 {
		lease = 10 * time.Second
	}
	pollWait := lease / 10
	if pollWait > time.Second {
		pollWait = time.Second
	}
	if pollWait < 20*time.Millisecond {
		pollWait = 20 * time.Millisecond
	}
	return &fleet{
		lease:    lease,
		pollWait: pollWait,
		workers:  make(map[string]*fleetWorker),
		assigned: make(map[string]*fleetTask),
		notify:   make(chan struct{}, 1),
	}
}

// execute runs one cell through the fleet and blocks until its result
// arrives (through however many lease-expiry reassignments it takes),
// falling back to local computation when no live workers exist. It is
// the compute function the store's single-flight invokes, so identical
// concurrent cells reach it exactly once.
func (fl *fleet) execute(spec scenario.Spec) (*distsgd.Result, error) {
	t, ok := fl.enqueue(spec)
	if !ok {
		return scenario.ComputeCell(spec)
	}
	<-t.done
	if errors.Is(t.err, errNoWorkers) {
		return scenario.ComputeCell(spec)
	}
	if t.err != nil {
		return nil, t.err
	}
	res := new(distsgd.Result)
	if err := json.Unmarshal(t.raw, res); err != nil {
		return nil, fmt.Errorf("decoding worker result: %w", err)
	}
	return res, nil
}

// enqueue appends a task for dispatch; ok is false when the fleet has
// no live workers (or is closed) and the caller should run locally.
func (fl *fleet) enqueue(spec scenario.Spec) (*fleetTask, bool) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed || len(fl.workers) == 0 {
		return nil, false
	}
	fl.tseq++
	t := &fleetTask{
		id:   fmt.Sprintf("t%d", fl.tseq),
		spec: spec,
		done: make(chan struct{}),
	}
	fl.queue = append(fl.queue, t)
	fl.signal()
	return t, true
}

// signal wakes one idle poller; callers hold fl.mu. The channel is a
// level trigger with capacity one — a poller that misses the edge
// still re-checks the queue on its poll-window timeout.
func (fl *fleet) signal() {
	select {
	case fl.notify <- struct{}{}:
	default:
	}
}

// join admits a new member and returns its identity grant, including
// the per-member secret every later message must echo.
func (fl *fleet) join(slots int) shardproto.JoinResponse {
	token := make([]byte, 16)
	rand.Read(token) // never fails (crypto/rand contract)
	fl.mu.Lock()
	defer fl.mu.Unlock()
	fl.wseq++
	w := &fleetWorker{
		id:       fmt.Sprintf("w%d", fl.wseq),
		token:    hex.EncodeToString(token),
		slots:    slots,
		joined:   time.Now(),
		lastSeen: time.Now(),
		tasks:    make(map[string]*fleetTask),
	}
	fl.workers[w.id] = w
	return shardproto.JoinResponse{
		WorkerID:    w.id,
		Token:       w.token,
		LeaseMillis: int(fl.lease / time.Millisecond),
	}
}

// restoreWseq advances the member id sequence to at least n — journal
// recovery calls it so a restarted coordinator never re-grants an id
// some pre-crash worker may still be presenting (the token check would
// reject the zombie anyway, but unique ids keep logs and tests
// unambiguous about which incarnation a member belongs to).
func (fl *fleet) restoreWseq(n int) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if n > fl.wseq {
		fl.wseq = n
	}
}

// currentWseq reads the member id sequence for checkpointing.
func (fl *fleet) currentWseq() int {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.wseq
}

// member authenticates (id, token) against the live membership;
// callers hold fl.mu. A bad token is indistinguishable from an expired
// id, so guessing sequential worker ids grants nothing.
func (fl *fleet) member(workerID, token string) *fleetWorker {
	w, ok := fl.workers[workerID]
	if !ok || w.token != token {
		return nil
	}
	return w
}

// tryAssign refreshes the member's lease and hands it the oldest
// queued task, if any. known is false for expired, never-joined or
// wrongly-authenticated ids — the 410 that tells a worker to rejoin.
func (fl *fleet) tryAssign(workerID, token string) (t *fleetTask, known bool) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	w := fl.member(workerID, token)
	if w == nil {
		return nil, false
	}
	w.lastSeen = time.Now()
	if fl.closed || len(fl.queue) == 0 {
		return nil, true
	}
	t = fl.queue[0]
	fl.queue = fl.queue[1:]
	t.worker = workerID
	t.attempts++
	t.deadline = time.Now().Add(fl.lease)
	fl.assigned[t.id] = t
	w.tasks[t.id] = t
	if len(fl.queue) > 0 {
		fl.signal()
	}
	return t, true
}

// heartbeat refreshes a member's lease and, when the heartbeat names a
// task assigned to that member, the task's own deadline; false means
// the id is unknown (expired) and the worker must rejoin.
func (fl *fleet) heartbeat(workerID, token, taskID string) bool {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	w := fl.member(workerID, token)
	if w == nil {
		return false
	}
	w.lastSeen = time.Now()
	if t, ok := fl.assigned[taskID]; ok && t.worker == workerID {
		t.deadline = time.Now().Add(fl.lease)
	}
	return true
}

// validResultBytes reports that a reported payload is a stable-encoded
// distsgd.Result: it must decode AND re-encode to the identical bytes.
// That is exactly what an honest same-version worker produces
// (Marshal∘Unmarshal∘Marshal ≡ Marshal, the serialize.go contract), so
// the check costs honest reports nothing while rejecting arbitrary
// JSON that would otherwise decode to a zero-value Result and be
// persisted as the cell's permanent store entry.
func validResultBytes(raw json.RawMessage) bool {
	res := new(distsgd.Result)
	if err := json.Unmarshal(raw, res); err != nil {
		return false
	}
	again, err := json.Marshal(res)
	if err != nil {
		return false
	}
	return bytes.Equal(bytes.TrimSpace(raw), again)
}

// complete resolves a task with a worker's report. known is false when
// the reporter does not authenticate — a lease that expired, or a
// member of a pre-crash coordinator incarnation — and the caller
// answers 410 so the worker rejoins immediately instead of reporting
// into the void until its polls notice. An authenticated report is
// accepted only if the task is still assigned to that worker and a
// success payload survives the canonical-bytes check: a report for a
// task requeued after expiry (or already resolved by the replacement)
// answers accepted=false and is discarded — the executions are
// byte-identical, so dropping the stale copy loses nothing and keeps
// the store to one save per key — while a malformed payload requeues
// the task, treating its sender as faulty.
func (fl *fleet) complete(workerID, token, taskID string, raw json.RawMessage, errMsg string) (accepted, known bool) {
	fl.mu.Lock()
	w := fl.member(workerID, token)
	if w == nil {
		fl.mu.Unlock()
		return false, false
	}
	w.lastSeen = time.Now()
	t, ok := fl.assigned[taskID]
	if !ok || t.worker != workerID {
		fl.mu.Unlock()
		return false, true
	}
	if errMsg == "" && !validResultBytes(raw) {
		// The worker is alive but talking garbage: take the task away
		// from it and let someone else compute.
		delete(fl.assigned, taskID)
		delete(w.tasks, taskID)
		resolve := fl.requeueLocked(t)
		fl.mu.Unlock()
		resolveAll(resolve)
		return false, true
	}
	delete(fl.assigned, taskID)
	delete(w.tasks, taskID)
	fl.mu.Unlock()
	if errMsg != "" {
		t.err = errors.New(errMsg)
	} else {
		t.raw = raw
	}
	close(t.done)
	return true, true
}

// requeueLocked returns an unassigned-again task to the queue, or —
// when its attempts are exhausted — hands it back for resolution to
// the local fallback. Callers hold fl.mu and have already removed the
// task from the assignment maps.
func (fl *fleet) requeueLocked(t *fleetTask) []*fleetTask {
	t.worker = ""
	if t.attempts >= maxTaskAttempts {
		return []*fleetTask{t}
	}
	fl.queue = append(fl.queue, t)
	fl.signal()
	return nil
}

// resolveAll resolves tasks to the local fallback, outside fl.mu.
func resolveAll(tasks []*fleetTask) {
	for _, t := range tasks {
		t.err = errNoWorkers
		close(t.done)
	}
}

// sweep expires members whose lease lapsed and assignments whose own
// deadline lapsed, requeueing the affected tasks (tasks that already
// bounced off maxTaskAttempts assignments resolve to the local
// fallback instead). When the last member expires, every pending task
// resolves to the local fallback so matrices complete without a fleet.
func (fl *fleet) sweep(now time.Time) {
	fl.mu.Lock()
	var resolve []*fleetTask
	for id, w := range fl.workers {
		if now.Sub(w.lastSeen) <= fl.lease {
			continue
		}
		delete(fl.workers, id)
		for tid, t := range w.tasks {
			delete(fl.assigned, tid)
			resolve = append(resolve, fl.requeueLocked(t)...)
		}
	}
	// Task-level deadlines catch assignments a live worker lost (a poll
	// response that never arrived) or finished but failed to report.
	for tid, t := range fl.assigned {
		if now.Before(t.deadline) {
			continue
		}
		delete(fl.assigned, tid)
		if w, ok := fl.workers[t.worker]; ok {
			delete(w.tasks, tid)
		}
		resolve = append(resolve, fl.requeueLocked(t)...)
	}
	if len(fl.workers) == 0 {
		resolve = append(resolve, fl.queue...)
		fl.queue = nil
	}
	fl.mu.Unlock()
	resolveAll(resolve)
}

// close drains the fleet at shutdown: every pending task resolves to
// the local fallback (so in-flight cells still finish and persist, the
// PR-4 shutdown contract), and later polls find an empty queue.
func (fl *fleet) close() {
	fl.mu.Lock()
	fl.closed = true
	resolve := append([]*fleetTask(nil), fl.queue...)
	fl.queue = nil
	for id, t := range fl.assigned {
		delete(fl.assigned, id)
		resolve = append(resolve, t)
	}
	for _, w := range fl.workers {
		w.tasks = make(map[string]*fleetTask)
	}
	fl.mu.Unlock()
	for _, t := range resolve {
		t.err = errNoWorkers
		close(t.done)
	}
}

// fleetWorkerJSON is one member's row in the GET /fleet reply.
type fleetWorkerJSON struct {
	// ID is the coordinator-assigned member identity.
	ID string `json:"id"`
	// Slots is the capacity the member declared at join.
	Slots int `json:"slots"`
	// InFlight counts the member's currently-assigned tasks.
	InFlight int `json:"in_flight"`
	// LastSeenMillis is the age of the member's last message.
	LastSeenMillis int64 `json:"last_seen_millis"`
}

// fleetStatusJSON is the GET /fleet reply.
type fleetStatusJSON struct {
	// Workers lists live members in join order.
	Workers []fleetWorkerJSON `json:"workers"`
	// Queued counts tasks waiting for a poll.
	Queued int `json:"queued"`
	// Assigned counts tasks leased to members.
	Assigned int `json:"assigned"`
	// LeaseMillis is the liveness lease members must beat.
	LeaseMillis int `json:"lease_millis"`
}

// status snapshots the fleet for the membership endpoint.
func (fl *fleet) status() fleetStatusJSON {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	now := time.Now()
	out := fleetStatusJSON{
		Queued:      len(fl.queue),
		Assigned:    len(fl.assigned),
		LeaseMillis: int(fl.lease / time.Millisecond),
	}
	for _, w := range fl.workers {
		out.Workers = append(out.Workers, fleetWorkerJSON{
			ID:             w.id,
			Slots:          w.slots,
			InFlight:       len(w.tasks),
			LastSeenMillis: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out.Workers, func(i, j int) bool {
		a, b := out.Workers[i].ID, out.Workers[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// handleFleetJoin admits a worker (POST /fleet/join).
func (s *Server) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	body, err := shardproto.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := shardproto.DecodeJoinRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A worker built before a result-affecting change must not
	// contribute cells: its results would persist under the NEW version
	// salt — a silent stale-serve the salt exists to prevent.
	if req.Version != store.Version {
		http.Error(w, fmt.Sprintf("version mismatch: worker %q, coordinator %q (rebuild the worker)",
			req.Version, store.Version), http.StatusConflict)
		return
	}
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		http.Error(w, "server is shutting down", http.StatusServiceUnavailable)
		return
	}
	grant := s.fleet.join(req.Slots)
	// Journal the granted id (mutation first, event second — the
	// ordering journal.rewrite relies on) so a restarted coordinator
	// resumes the sequence past every id ever handed out.
	s.journalAppend(journalEvent{Type: "join", Worker: grant.WorkerID})
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, grant)
}

// handleFleetPoll leases a task to a worker (POST /fleet/poll),
// holding the request open for the poll window when the queue is idle.
func (s *Server) handleFleetPoll(w http.ResponseWriter, r *http.Request) {
	body, err := shardproto.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := shardproto.DecodePollRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	deadline := time.NewTimer(s.fleet.pollWait)
	defer deadline.Stop()
	for {
		t, known := s.fleet.tryAssign(req.WorkerID, req.Token)
		if !known {
			http.Error(w, "unknown worker id (lease expired; rejoin)", http.StatusGone)
			return
		}
		if t != nil {
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, shardproto.PollResponse{Task: &shardproto.Task{ID: t.id, Spec: t.spec}})
			return
		}
		select {
		case <-s.fleet.notify:
		case <-deadline.C:
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, shardproto.PollResponse{})
			return
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, shardproto.PollResponse{})
			return
		}
	}
}

// handleFleetHeartbeat refreshes a worker's lease (POST
// /fleet/heartbeat).
func (s *Server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	body, err := shardproto.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := shardproto.DecodeHeartbeatRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !s.fleet.heartbeat(req.WorkerID, req.Token, req.TaskID) {
		http.Error(w, "unknown worker id (lease expired; rejoin)", http.StatusGone)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleFleetResult records a worker's task report (POST
// /fleet/result).
func (s *Server) handleFleetResult(w http.ResponseWriter, r *http.Request) {
	body, err := shardproto.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := shardproto.DecodeResultRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	accepted, known := s.fleet.complete(req.WorkerID, req.Token, req.TaskID, req.Result, req.Error)
	if !known {
		// The reporter's identity means nothing here — its lease lapsed,
		// or it joined a previous coordinator incarnation. 410 sends it
		// straight to rejoin (the same signal poll and heartbeat give),
		// which is how a restarted coordinator re-adopts a live fleet
		// mid-matrix; the in-flight result is dropped and its cell is
		// re-dispatched, recomputing to identical bytes.
		http.Error(w, "unknown worker id (lease expired; rejoin)", http.StatusGone)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, shardproto.ResultResponse{Accepted: accepted})
}

// handleFleetStatus reports fleet membership and queue depth (GET
// /fleet).
func (s *Server) handleFleetStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s.fleet.status())
}
