package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"krum/distsgd"
	"krum/internal/vec"
	"krum/scenario"
	"krum/scenario/store"
)

// Server is the multi-matrix scenario coordinator: it accepts JSON
// matrix submissions over HTTP, fans their cells out across ONE shared
// bounded pool (so concurrent matrices share capacity fairly instead
// of each spawning its own), serves per-matrix progress and streaming
// results, and runs every cell through a shared
// scenario.ResultStore's single-flight — a stored cell is a hit, an
// in-flight identical cell is waited on, and only genuinely new work
// executes. Execution itself goes through the fleet (fleet.go): cells
// dispatch to joined workers when any are live and run in-process
// otherwise, with identical bytes either way. Because cells are pure
// functions of their spec and every computed cell is written through
// to the store, a service restart loses no work: resubmitting an
// interrupted matrix replays its completed prefix as store hits and
// only computes the remainder.
//
// Completed matrices stay in memory (results included) until a client
// deletes them (DELETE /matrices/{id}); consumers of many grids should
// delete what they have read — the persisted cells remain in the
// store either way.
type Server struct {
	store scenario.ResultStore
	// fleet is the coordinator's dispatch queue + membership table (see
	// fleet.go). With no joined workers every cell runs locally, so a
	// fleetless coordinator behaves exactly like the single-process
	// service.
	fleet *fleet
	// sem is the shared pool: one slot per concurrently-running cell
	// OR concurrently-dispatched cell, across ALL matrices.
	sem chan struct{}
	// ctx is cancelled by Stop; cells never start after cancellation.
	ctx    context.Context
	cancel context.CancelFunc
	// wg tracks in-flight matrix executors (not individual cells).
	wg  sync.WaitGroup
	mux *http.ServeMux

	// journal, when non-nil (UseJournal), records matrix lifecycle
	// events so a restarted coordinator resumes unfinished matrices
	// (journal.go). It is set before serving starts and never mutated
	// after, so reads need no lock.
	journal *journal

	// maxPending, maxActive and tenantQuota are the admission limits
	// (see Options); immutable after construction.
	maxPending  int
	maxActive   int
	tenantQuota map[string]int

	mu       sync.Mutex
	matrices map[string]*matrixRun
	seq      int
	// rejected counts quota rejections (429s) per tenant, for /metrics.
	rejected map[string]int
	// stopped flips under mu before ctx is cancelled, so handleSubmit
	// can refuse new work without racing wg.Add against Stop's
	// wg.Wait.
	stopped bool
}

// matrixRun is the execution state of one submitted matrix.
type matrixRun struct {
	id    string
	cells []scenario.Spec
	// tenant and priority come from the submission envelope and are
	// immutable after registration: they place every one of the run's
	// cells in the fleet's dispatch queues and attribute the run in
	// admission control and /metrics.
	tenant   string
	priority int

	mu sync.Mutex
	// results is indexed by cell position (results[i] answers cells[i]);
	// entries are nil until their cell completes — the same positional
	// guarantee scenario.Runner.RunCells documents.
	results []*scenario.CellResult
	// order lists completed cell indices in completion order, which is
	// what the streaming endpoint replays.
	order     []int
	cached    int
	failed    int
	storeErrs int
	// finished and aborted are mutually exclusive terminal states:
	// finished means every cell completed; aborted means shutdown cut
	// the matrix short after its completed cells persisted. Exactly one
	// of them is eventually set.
	finished bool
	aborted  bool
}

// defaultTenant attributes submissions that name no tenant; admission,
// dispatch and metrics treat it like any explicitly-named tenant.
const defaultTenant = "default"

// maxPriority bounds submission priorities to [-maxPriority,
// maxPriority] — a small closed range so "most urgent" is a knowable
// number, not an arms race.
const maxPriority = 9

// Default admission limits (see Options).
const (
	defaultMaxPendingCells   = 200_000
	defaultMaxActiveMatrices = 1024
)

// Options configures NewServerOptions. The zero value is a sensible
// service: NumCPU pool, in-memory-less store must still be supplied by
// the caller, 10s fleet lease, default admission limits.
type Options struct {
	// Workers is the shared cell pool width (0 means runtime.NumCPU()).
	Workers int
	// Store is the shared result store (use store.NewMemory() for a
	// non-persistent service).
	Store scenario.ResultStore
	// Lease is the fleet liveness lease (0 means 10s).
	Lease time.Duration
	// MaxPendingCells caps one tenant's outstanding (not-yet-completed)
	// cells: a submission from a tenant already at or past the cap is
	// answered 429 with a Retry-After hint. The cap is checked against
	// EXISTING pending work, so a tenant with nothing outstanding can
	// always submit one matrix (growth stays bounded by cap + the
	// per-submission cell limit). 0 means the default; negative
	// disables the cap.
	MaxPendingCells int
	// MaxActiveMatrices caps one tenant's concurrently-live
	// (non-terminal) matrices, same 429 semantics as MaxPendingCells.
	// 0 means the default; negative disables the cap.
	MaxActiveMatrices int
	// TenantPendingCells overrides MaxPendingCells for specific
	// tenants; a non-positive value disables the cap for that tenant.
	TenantPendingCells map[string]int
}

// NewServer builds a Server with the given shared pool width (0 means
// runtime.NumCPU()), result store (use store.NewMemory() for a
// non-persistent service) and fleet liveness lease (0 means 10s; only
// relevant once workers join). Admission limits take their defaults;
// use NewServerOptions to set them.
func NewServer(workers int, st scenario.ResultStore, lease time.Duration) *Server {
	return NewServerOptions(Options{Workers: workers, Store: st, Lease: lease})
}

// NewServerOptions builds a Server from the full option set.
func NewServerOptions(opts Options) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	maxPending := opts.MaxPendingCells
	if maxPending == 0 {
		maxPending = defaultMaxPendingCells
	}
	maxActive := opts.MaxActiveMatrices
	if maxActive == 0 {
		maxActive = defaultMaxActiveMatrices
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		store:       opts.Store,
		fleet:       newFleet(opts.Lease),
		sem:         make(chan struct{}, workers),
		ctx:         ctx,
		cancel:      cancel,
		mux:         http.NewServeMux(),
		maxPending:  maxPending,
		maxActive:   maxActive,
		tenantQuota: opts.TenantPendingCells,
		matrices:    make(map[string]*matrixRun),
		rejected:    make(map[string]int),
	}
	s.mux.HandleFunc("POST /matrices", s.handleSubmit)
	s.mux.HandleFunc("GET /matrices", s.handleList)
	s.mux.HandleFunc("GET /matrices/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /matrices/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /matrices/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /matrices/{id}/stream", s.handleStream)
	s.mux.HandleFunc("POST /fleet/join", s.handleFleetJoin)
	s.mux.HandleFunc("POST /fleet/poll", s.handleFleetPoll)
	s.mux.HandleFunc("POST /fleet/heartbeat", s.handleFleetHeartbeat)
	s.mux.HandleFunc("POST /fleet/result", s.handleFleetResult)
	s.mux.HandleFunc("GET /fleet", s.handleFleetStatus)
	s.mux.HandleFunc("GET /store", s.handleStore)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	go s.sweepFleet()
	return s
}

// sweepFleet periodically expires dead fleet members, requeueing their
// tasks; it exits when Stop cancels the server context (fleet.close
// then resolves whatever remains).
func (s *Server) sweepFleet() {
	interval := s.fleet.lease / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-ticker.C:
			s.fleet.sweep(now)
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stop refuses further submissions, cancels cell scheduling, and
// waits for in-flight cells to finish and persist. Cells that never
// started simply never run — their matrices report aborted, and
// resubmitting them after a restart replays the completed prefix from
// the store.
func (s *Server) Stop() {
	// Flip stopped under the same lock handleSubmit takes before its
	// wg.Add: after this critical section no new executor can register,
	// so wg.Wait cannot race an Add from a submission in flight.
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.cancel()
	// Resolve every dispatched task to the local fallback so in-flight
	// cells still finish and persist (the shutdown contract) even when
	// their workers never answer.
	s.fleet.close()
	s.wg.Wait()
	// Final checkpoint (the graceful-shutdown contract): every matrix
	// is terminal by now, so the checkpoint pins just the id sequences
	// — a clean, zero-lag journal for the next incarnation. Only a
	// crash leaves live matrices behind for recovery to resume.
	if s.journal != nil {
		_ = s.journal.rewrite(s.snapshot)
		s.journal.close()
	}
}

// UseJournal attaches a checkpoint/journal (journal.go) to the
// server, replaying path first: matrices that were live when the
// previous coordinator died are resurrected under their original ids
// and re-executed — their completed cells replay as store hits, so
// recovery costs only the genuinely unfinished work — and the id
// sequences resume past everything ever granted, so recovered and new
// ids never collide. Worker identities are deliberately NOT restored:
// a restarted coordinator must not trust tokens it cannot verify, so
// the live fleet re-adopts itself through the existing 410/rejoin
// path within one poll round-trip.
//
// Call it after NewServer and before serving requests or submitting
// matrices; it returns the number of resurrected matrices.
func (s *Server) UseJournal(path string) (resumed int, err error) {
	j, state, err := openJournal(path)
	if err != nil {
		return 0, err
	}
	s.journal = j
	s.fleet.restoreWseq(state.wseq)

	// Resurrect live matrices exactly the way handleSubmit registers
	// fresh ones: registration + wg.Add in one critical section, then
	// the executor goroutine.
	s.mu.Lock()
	if state.seq > s.seq {
		s.seq = state.seq
	}
	var runs []*matrixRun
	for _, cm := range state.matrices {
		tenant := cm.Tenant
		if tenant == "" {
			// Journals written before the tenancy fields carry no tenant;
			// normalizing here keeps dispatch and quotas uniform.
			tenant = defaultTenant
		}
		run := &matrixRun{
			id:       cm.ID,
			cells:    cm.Cells,
			tenant:   tenant,
			priority: cm.Priority,
			results:  make([]*scenario.CellResult, len(cm.Cells)),
		}
		s.matrices[run.id] = run
		s.wg.Add(1)
		runs = append(runs, run)
	}
	s.mu.Unlock()
	for _, run := range runs {
		go s.execute(run)
	}

	// Start the new journal from a checkpoint: replay gets instant and
	// whatever damage the old file carried is left behind.
	if err := j.rewrite(s.snapshot); err != nil {
		return len(runs), fmt.Errorf("initial checkpoint: %w", err)
	}
	return len(runs), nil
}

// journalAppend records one event and triggers the automatic
// checkpoint rewrite when the lag crosses the threshold. Journal
// failures are deliberately non-fatal: the coordinator's first duty is
// finishing matrices, and every result byte is already durable in the
// store — only resume-without-resubmission degrades.
func (s *Server) journalAppend(ev journalEvent) {
	if s.journal == nil {
		return
	}
	lag, err := s.journal.append(ev)
	if err != nil {
		return
	}
	if lag >= s.journal.every {
		_ = s.journal.rewrite(s.snapshot)
	}
}

// snapshot builds a checkpoint of the live (non-terminal) matrices and
// id sequences. It is handed to journal.rewrite, which calls it under
// the journal lock — see rewrite for why that ordering makes the
// rewrite lossless.
func (s *Server) snapshot() checkpoint {
	s.mu.Lock()
	cp := checkpoint{Seq: s.seq, Wseq: s.fleet.currentWseq()}
	runs := make([]*matrixRun, 0, len(s.matrices))
	for _, run := range s.matrices {
		runs = append(runs, run)
	}
	s.mu.Unlock()
	for _, run := range runs {
		run.mu.Lock()
		if run.terminal() {
			run.mu.Unlock()
			continue
		}
		cp.Matrices = append(cp.Matrices, checkpointMatrix{
			ID:       run.id,
			Cells:    run.cells,
			Tenant:   run.tenant,
			Priority: run.priority,
			Done:     append([]int(nil), run.order...),
		})
		run.mu.Unlock()
	}
	// Deterministic checkpoint bytes: ids are m1, m2, ... so
	// length-then-lex is numeric order.
	sort.Slice(cp.Matrices, func(i, j int) bool {
		a, b := cp.Matrices[i].ID, cp.Matrices[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return cp
}

// maxCells bounds one submission's cartesian expansion — large enough
// for any grid the pool could plausibly chew through, small enough
// that the expanded spec slice cannot threaten the process.
const maxCells = 100_000

// tooManyCells reports whether the matrix would expand past maxCells,
// without expanding it (overflow-safe: the running product exits as
// soon as it crosses the cap).
func tooManyCells(m scenario.Matrix) bool {
	size := 1
	for _, axis := range []int{
		len(m.Workloads), len(m.Rules), len(m.Attacks), len(m.Fs), len(m.Seeds),
	} {
		if axis > 0 {
			size *= axis
		}
		if size > maxCells {
			return true
		}
	}
	return false
}

// submitRequest is the POST /matrices body: a scenario.Matrix plus the
// optional multi-tenancy envelope. The Matrix embeds, so its fields
// stay top-level and every pre-tenancy submission body parses
// unchanged.
type submitRequest struct {
	scenario.Matrix
	// Tenant attributes the submission for fair-share dispatch,
	// admission quotas and metrics; empty means defaultTenant. Allowed:
	// up to 64 characters of [A-Za-z0-9._-].
	Tenant string `json:"tenant,omitempty"`
	// Priority places the matrix's cells in a dispatch tier (higher
	// dispatches first; range -9..9, default 0). Fair share applies
	// within a tier, strict precedence across tiers.
	Priority int `json:"priority,omitempty"`
}

// parseSubmit decodes a submission envelope, rejecting unknown fields
// like scenario.ParseMatrixJSON does for bare matrices.
func parseSubmit(body []byte) (submitRequest, error) {
	var req submitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return submitRequest{}, fmt.Errorf("decoding matrix submission: %w", err)
	}
	return req, nil
}

// canonTenant normalizes and validates a submission's tenant name.
func canonTenant(tenant string) (string, error) {
	tenant = strings.TrimSpace(tenant)
	if tenant == "" {
		return defaultTenant, nil
	}
	if len(tenant) > 64 {
		return "", fmt.Errorf("tenant name longer than 64 characters")
	}
	for i := 0; i < len(tenant); i++ {
		c := tenant[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return "", fmt.Errorf("tenant name %q: only [A-Za-z0-9._-] allowed", tenant)
		}
	}
	return tenant, nil
}

// pendingCellsLocked counts a tenant's outstanding cells and live
// matrices — the quantities admission control caps. Callers hold s.mu
// (run.tenant is immutable; the per-run progress needs run.mu, which
// nests inside s.mu here and nowhere nests the other way).
func (s *Server) pendingCellsLocked(tenant string) (pending, active int) {
	for _, run := range s.matrices {
		if run.tenant != tenant {
			continue
		}
		run.mu.Lock()
		if !run.terminal() {
			active++
			pending += len(run.cells) - len(run.order)
		}
		run.mu.Unlock()
	}
	return pending, active
}

// retrySeconds turns a backlog size into a Retry-After hint: one
// second per thousand pending cells, clamped to [1, 30] — honest
// enough to spread retries, small enough that clients re-probe soon.
func retrySeconds(pending int) int {
	secs := pending / 1000
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// admitLocked applies the tenant's admission limits to a new
// submission; on rejection it returns the Retry-After hint and the 429
// body. Callers hold s.mu.
func (s *Server) admitLocked(tenant string) (retryAfter int, reason string, ok bool) {
	pending, active := s.pendingCellsLocked(tenant)
	if s.maxActive > 0 && active >= s.maxActive {
		return retrySeconds(pending),
			fmt.Sprintf("tenant %q has %d active matrices (limit %d); retry later", tenant, active, s.maxActive),
			false
	}
	quota := s.maxPending
	if q, has := s.tenantQuota[tenant]; has {
		quota = q
	}
	if quota > 0 && pending >= quota {
		return retrySeconds(pending),
			fmt.Sprintf("tenant %q has %d pending cells (quota %d); retry later", tenant, pending, quota),
			false
	}
	return 0, "", true
}

// submitResponse is the POST /matrices reply.
type submitResponse struct {
	// ID names the accepted matrix in every other endpoint.
	ID string `json:"id"`
	// Cells is the expanded grid size.
	Cells int `json:"cells"`
	// StatusURL and ResultsURL and StreamURL are the matrix's
	// endpoints, spelled out so clients need no URL templating.
	StatusURL  string `json:"status_url"`
	ResultsURL string `json:"results_url"`
	StreamURL  string `json:"stream_url"`
}

// statusJSON is the GET /matrices/{id} reply (and the per-matrix entry
// of GET /matrices).
type statusJSON struct {
	// ID is the matrix id.
	ID string `json:"id"`
	// Tenant attributes the matrix for dispatch and quotas.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the matrix's dispatch tier.
	Priority int `json:"priority,omitempty"`
	// Total is the number of cells in the matrix.
	Total int `json:"total"`
	// Completed counts finished cells (cached + computed + failed).
	Completed int `json:"completed"`
	// Cached counts cells served from the result store.
	Cached int `json:"cached"`
	// Failed counts cells that returned an error.
	Failed int `json:"failed"`
	// StoreErrors counts cells whose result computed fine but failed to
	// persist to the shared store (CellResult.StoreErr). Non-zero means
	// the resume-by-resubmission guarantee is compromised for those
	// cells — they will recompute after a restart.
	StoreErrors int `json:"store_errors"`
	// Finished reports that every cell completed.
	Finished bool `json:"finished"`
	// Aborted reports the matrix was cut short by shutdown; resubmit it
	// to resume (completed cells replay from the store).
	Aborted bool `json:"aborted"`
}

// cellJSON is the wire form of one completed cell, used by both the
// results and stream endpoints.
type cellJSON struct {
	// Index is the cell's position in the matrix expansion order.
	Index int `json:"index"`
	// Spec is the cell that ran.
	Spec scenario.Spec `json:"spec"`
	// Cached reports a store hit.
	Cached bool `json:"cached,omitempty"`
	// Error is the cell's failure, if any.
	Error string `json:"error,omitempty"`
	// StoreError is a failed write-through to the result store; the
	// Result is still the valid computed outcome, only its persistence
	// failed.
	StoreError string `json:"store_error,omitempty"`
	// Result is the training outcome (absent when Error is set),
	// encoded with distsgd.Result's stable JSON encoding.
	Result *distsgd.Result `json:"result,omitempty"`
}

// resultsJSON is the GET /matrices/{id}/results reply: the status plus
// the positional results array (null entries for cells still pending).
type resultsJSON struct {
	statusJSON
	// Results is indexed by cell position; entry i is null until cell i
	// completes, so partial reads are unambiguous.
	Results []*cellJSON `json:"results"`
}

// handleSubmit validates and enqueues a matrix.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}
	req, err := parseSubmit(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m := req.Matrix
	tenant, err := canonTenant(req.Tenant)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Priority < -maxPriority || req.Priority > maxPriority {
		http.Error(w, fmt.Sprintf("priority %d out of range [%d, %d]", req.Priority, -maxPriority, maxPriority), http.StatusBadRequest)
		return
	}
	// Bound the grid BEFORE expanding it: a few KB of JSON can declare
	// a cartesian product of billions of cells, and materializing it
	// would take the whole service down. The product is computed with
	// early exit, so oversized (even int-overflowing) axis combinations
	// are rejected without allocating anything.
	if tooManyCells(m) {
		http.Error(w, fmt.Sprintf("matrix expands to more than %d cells", maxCells), http.StatusBadRequest)
		return
	}
	// Expand once and validate the cells directly (Matrix.Validate
	// would expand a second time).
	cells := m.Cells()
	if len(cells) == 0 {
		http.Error(w, "empty matrix", http.StatusBadRequest)
		return
	}
	for i, cell := range cells {
		if err := cell.Validate(); err != nil {
			http.Error(w, fmt.Sprintf("cell %d (%s): %v", i, cell.Label(), err), http.StatusBadRequest)
			return
		}
	}

	// Registration and wg.Add happen in one critical section with the
	// stopped check: once Stop has flipped the flag, no executor can
	// slip in behind its wg.Wait.
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		http.Error(w, "server is shutting down", http.StatusServiceUnavailable)
		return
	}
	// Admission backpressure: a tenant at its quota is told to retry,
	// and NOTHING of the submission registers — the client resubmits
	// the identical matrix later and completed cells replay from the
	// store, so backpressure never loses work.
	if retry, reason, ok := s.admitLocked(tenant); !ok {
		s.rejected[tenant]++
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		http.Error(w, reason, http.StatusTooManyRequests)
		return
	}
	s.seq++
	run := &matrixRun{
		id:       fmt.Sprintf("m%d", s.seq),
		cells:    cells,
		tenant:   tenant,
		priority: req.Priority,
		results:  make([]*scenario.CellResult, len(cells)),
	}
	s.matrices[run.id] = run
	s.wg.Add(1)
	s.mu.Unlock()

	// The registration above is the state mutation; the event follows
	// it — the ordering every checkpoint snapshot's completeness
	// argument rests on (see journal.rewrite).
	s.journalAppend(journalEvent{Type: "submit", Matrix: run.id, Cells: cells, Tenant: tenant, Priority: req.Priority})

	go s.execute(run)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, submitResponse{
		ID:         run.id,
		Cells:      len(cells),
		StatusURL:  "/matrices/" + run.id,
		ResultsURL: "/matrices/" + run.id + "/results",
		StreamURL:  "/matrices/" + run.id + "/stream",
	})
}

// execute fans one matrix's cells into the shared pool and marks the
// run finished (or aborted) when they drain.
func (s *Server) execute(run *matrixRun) {
	defer s.wg.Done()
	var cellWG sync.WaitGroup
	aborted := false
loop:
	for i := range run.cells {
		// Non-blocking cancellation check first: when both a pool slot
		// and cancellation are available, the select below picks at
		// random, which would let new cells start after Stop.
		if s.ctx.Err() != nil {
			aborted = true
			break loop
		}
		select {
		case <-s.ctx.Done():
			aborted = true
			break loop
		case s.sem <- struct{}{}:
		}
		cellWG.Add(1)
		go func(i int) {
			defer func() {
				<-s.sem
				cellWG.Done()
			}()
			cr := s.executeCell(i, run.cells[i], run.tenant, run.priority)
			run.record(cr)
			ev := journalEvent{Type: "cell", Matrix: run.id, Index: cr.Index, Cached: cr.Cached}
			if cr.Err != nil {
				ev.CellError = cr.Err.Error()
			}
			s.journalAppend(ev)
		}(i)
	}
	// The terminal flag is only set AFTER the in-flight cells drain:
	// until then the matrix is still executing — streams must keep
	// delivering late completions and DELETE must keep refusing.
	cellWG.Wait()
	run.finish(aborted)
	s.journalAppend(journalEvent{Type: "done", Matrix: run.id, Aborted: aborted})
}

// executeCell runs one cell through the shared store's single-flight
// (identical concurrent cells — across matrices and across the fleet —
// collapse to one execution) with the fleet as the compute path: cells
// dispatch to workers when any are live and run locally otherwise.
// tenant and priority place the dispatch in its fleet queue; when the
// single-flight collapses identical cells across tenants, the first
// caller's attribution wins (the others wait on its result).
func (s *Server) executeCell(i int, cell scenario.Spec, tenant string, priority int) scenario.CellResult {
	return scenario.RunCellWith(s.store, i, cell, func() (*distsgd.Result, error) {
		return s.fleet.execute(cell, tenant, priority)
	})
}

// record stores one completed cell.
func (r *matrixRun) record(cr scenario.CellResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := cr
	r.results[cr.Index] = &c
	r.order = append(r.order, cr.Index)
	if cr.Cached {
		r.cached++
	}
	if cr.Err != nil {
		r.failed++
	}
	if cr.StoreErr != nil {
		r.storeErrs++
	}
}

// finish marks the run terminal once every scheduled cell has drained:
// aborted when shutdown cut the grid short, finished (strictly "every
// cell completed") otherwise. The two flags stay mutually exclusive,
// so clients may key on either alone.
func (r *matrixRun) finish(aborted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if aborted {
		r.aborted = true
	} else {
		r.finished = true
	}
}

// terminal reports that no further cells will complete. Callers hold
// r.mu.
func (r *matrixRun) terminal() bool { return r.finished || r.aborted }

// status snapshots the run's progress.
func (r *matrixRun) status() statusJSON {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statusLocked()
}

// statusLocked builds the progress snapshot; callers hold r.mu. It
// exists so handleResults can take the status and the results array
// under ONE critical section — a finished:true header must never
// accompany a results array with pending nulls.
func (r *matrixRun) statusLocked() statusJSON {
	return statusJSON{
		ID:          r.id,
		Tenant:      r.tenant,
		Priority:    r.priority,
		Total:       len(r.cells),
		Completed:   len(r.order),
		Cached:      r.cached,
		Failed:      r.failed,
		StoreErrors: r.storeErrs,
		Finished:    r.finished,
		Aborted:     r.aborted,
	}
}

// cellWire converts a completed cell to its wire form.
func cellWire(cr *scenario.CellResult) *cellJSON {
	if cr == nil {
		return nil
	}
	c := &cellJSON{Index: cr.Index, Spec: cr.Spec, Cached: cr.Cached, Result: cr.Result}
	if cr.Err != nil {
		c.Error = cr.Err.Error()
	}
	if cr.StoreErr != nil {
		c.StoreError = cr.StoreErr.Error()
	}
	return c
}

// lookup resolves a matrix id from the request path.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *matrixRun {
	s.mu.Lock()
	run, ok := s.matrices[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown matrix id", http.StatusNotFound)
		return nil
	}
	return run
}

// handleList reports every submitted matrix's status.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*matrixRun, 0, len(s.matrices))
	for _, run := range s.matrices {
		runs = append(runs, run)
	}
	s.mu.Unlock()
	out := make([]statusJSON, 0, len(runs))
	for _, run := range runs {
		out = append(out, run.status())
	}
	// Deterministic order: ids are m1, m2, ..., so length-then-lex is
	// numeric order.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, out)
}

// handleStatus reports one matrix's progress.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, run.status())
}

// handleDelete evicts a terminal matrix's in-memory results (the store
// keeps the persisted cells). Matrices are retained in memory until
// deleted, so long-running deployments should delete grids they have
// consumed; a matrix still executing cannot be deleted.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	run.mu.Lock()
	done := run.terminal()
	run.mu.Unlock()
	if !done {
		http.Error(w, "matrix is still executing; delete it once finished or aborted", http.StatusConflict)
		return
	}
	s.mu.Lock()
	delete(s.matrices, run.id)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleResults returns the positional results array (nulls for
// pending cells) plus the progress header.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	run.mu.Lock()
	out := resultsJSON{Results: make([]*cellJSON, len(run.results))}
	for i, cr := range run.results {
		out.Results[i] = cellWire(cr)
	}
	out.statusJSON = run.statusLocked()
	run.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, out)
}

// handleStream writes completed cells as NDJSON in completion order,
// flushing each line as it happens, and returns when the matrix
// finishes (or the client goes away). A client that connects late
// first replays everything already completed.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cursor := 0
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for {
		run.mu.Lock()
		pending := run.order[cursor:]
		batch := make([]*cellJSON, len(pending))
		for i, idx := range pending {
			batch[i] = cellWire(run.results[idx])
		}
		cursor += len(pending)
		done := run.terminal()
		run.mu.Unlock()

		for _, c := range batch {
			if err := enc.Encode(c); err != nil {
				return
			}
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// storeStatser is the optional stats surface of the configured store
// (satisfied by *store.Store).
type storeStatser interface {
	Stats() store.Stats
}

// handleStore reports the shared store's counters when the store
// exposes them.
func (s *Server) handleStore(w http.ResponseWriter, _ *http.Request) {
	st, ok := s.store.(storeStatser)
	if !ok {
		http.Error(w, "store exposes no stats", http.StatusNotFound)
		return
	}
	stats := st.Stats()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]int{
		"entries":            stats.Entries,
		"hits":               stats.Hits,
		"misses":             stats.Misses,
		"flight_waits":       stats.FlightWaits,
		"saves":              stats.Saves,
		"skipped_records":    stats.SkippedRecords,
		"dropped_tail_bytes": stats.DroppedTailBytes,
		"superseded":         stats.Superseded,
		"tampered":           stats.Tampered,
		"foreign":            stats.Foreign,
		"segments":           stats.Segments,
		"seals":              stats.Seals,
		"compactions":        stats.Compactions,
	})
}

// healthJSON is the GET /healthz reply.
type healthJSON struct {
	// Status is "ok" whenever the server answers at all.
	Status string `json:"status"`
	// JournalLag counts journal events since the last checkpoint —
	// the replay cost a crash right now would pay. Present only when a
	// journal is attached.
	JournalLag *int `json:"journal_lag,omitempty"`
	// KernelTier is the active kernel tier name (vec.KernelTier — "go",
	// "sse2", "avx2") and KernelOrder its accumulation-order family
	// ("pair2", "fma4") — the value the fleet join handshake pins.
	// Operators diagnosing a worker's 409 look here first.
	KernelTier string `json:"kernel_tier"`
	// KernelOrder is the accumulation-order family of KernelTier.
	KernelOrder string `json:"kernel_order"`
}

// handleHealthz is the liveness probe; with a journal attached it also
// reports the journal lag.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	out := healthJSON{
		Status:      "ok",
		KernelTier:  vec.KernelTier().String(),
		KernelOrder: vec.KernelOrder(),
	}
	if s.journal != nil {
		lag := s.journal.Lag()
		out.JournalLag = &lag
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, out)
}

// writeJSON encodes v, ignoring write errors (the client went away).
func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
