// Command krum-scenariod is the scenario-execution service (see
// EXPERIMENTS.md and ARCHITECTURE.md at the repository root). It runs
// in one of two roles:
//
// The coordinator (default) is a long-running HTTP service that
// accepts JSON matrix submissions — the same schema krum-experiments
// -config accepts under "matrix" — expands them, and executes their
// cells against a shared content-addressed result store with
// store-level single-flight: concurrent identical cells, across
// matrices and across callers, collapse to one execution. With no
// workers joined every cell runs in-process on one shared bounded
// pool; once workers join, cells are dispatched to the fleet instead.
//
//	krum-scenariod -addr :8080 -workers 8 -store cells.jsonl
//
// A durable coordinator adds a segmented store directory and a
// checkpoint/journal; killed mid-matrix — SIGKILL, OOM, a pulled plug
// — and restarted on the same state, it replays the journal, resumes
// unfinished matrices under their original ids (completed cells
// replay as store hits), and re-adopts the live worker fleet through
// the 410/rejoin path:
//
//	krum-scenariod -addr :8080 -store-dir ./cells -journal ./coordinator.journal
//
// A worker joins a coordinator's fleet and contributes capacity:
//
//	krum-scenariod -worker -join http://coordinator:8080 -workers 4
//
// Workers long-poll for cells, execute them locally, heartbeat while a
// cell trains, and report stable-JSON results back; the coordinator
// requeues the tasks of workers whose lease lapses, so killing a
// worker mid-cell only moves its cells elsewhere. Results are
// byte-identical whatever the topology — zero workers, one, many, or
// many minus the ones that died — because every cell is a pure
// function of its spec.
//
// The coordinator is multi-tenant: a submission may carry optional
// "tenant" and "priority" fields alongside the matrix. Dispatch to the
// fleet is priority-tiered with fair share inside each tier (two
// equal-priority tenants each get about half the fleet however
// lopsided their backlogs are), and per-tenant admission quotas answer
// an over-quota submission with HTTP 429 plus a Retry-After hint — the
// client resubmits later and loses nothing, because completed cells
// replay from the store. Tenancy is journaled, so a recovered backlog
// keeps its attribution.
//
// Coordinator endpoints:
//
//	POST /matrices               submit a scenario.Matrix (JSON, optional "tenant"/"priority");
//	                             202 {id, cells, ...urls} or 429 + Retry-After over quota
//	GET  /matrices               status of every submitted matrix
//	GET  /matrices/{id}          progress: {tenant, priority, total, completed, cached, failed, ...}
//	GET  /matrices/{id}/results  positional results array (null for pending cells)
//	GET  /matrices/{id}/stream   NDJSON of cells in completion order, live until finished
//	DELETE /matrices/{id}        evict a finished/aborted matrix from memory (store keeps its cells)
//	POST /fleet/join             worker → coordinator: join the fleet (scenario/shardproto schema)
//	POST /fleet/poll             worker → coordinator: long-poll for cell tasks (batched via max_tasks)
//	POST /fleet/heartbeat        worker → coordinator: liveness, batched task deadline refresh
//	POST /fleet/result           worker → coordinator: report a finished task
//	GET  /fleet                  fleet membership, queue depth, per-tenant dispatch counters
//	GET  /store                  result-store counters (hits, misses, superseded, tampered, ...)
//	GET  /metrics                Prometheus text exposition: queues, tenants, 429s, store, journal lag
//	GET  /healthz                liveness probe; reports journal lag when -journal is set
//
// Shutdown (SIGINT/SIGTERM) is graceful mid-matrix in both roles: a
// coordinator finishes and persists in-flight cells (dispatched cells
// fall back to local execution), unstarted cells never run, the
// affected matrices report "aborted", and with -journal a final
// checkpoint is written before exit — resume is resubmitting the same
// matrix after restart, replaying the completed prefix as store hits.
// (Only a crash leaves live matrices in the journal; those resume
// automatically, no resubmission needed.) A dying worker simply stops
// heartbeating; its cells are reassigned.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"krum/scenario"
	"krum/scenario/store"
)

func main() {
	os.Exit(run())
}

// run is the testable body of main (exit-once rule).
func run() int {
	addrFlag := flag.String("addr", ":8080", "coordinator listen address")
	workersFlag := flag.Int("workers", 0, "coordinator: shared pool width across all matrices; worker: concurrent cell slots (0 = NumCPU)")
	storeFlag := flag.String("store", "", "content-addressed result store JSONL path (empty = in-memory only)")
	storeDirFlag := flag.String("store-dir", "", "segmented result store directory (live tail + sealed, hashed segments); mutually exclusive with -store")
	journalFlag := flag.String("journal", "", "coordinator checkpoint/journal path: a restarted coordinator replays it and resumes unfinished matrices")
	leaseFlag := flag.Duration("lease", 10*time.Second, "coordinator: worker liveness lease (a worker silent this long is presumed dead)")
	maxPendingFlag := flag.Int("max-pending-cells", 0, "coordinator: per-tenant cap on outstanding cells; over-quota submissions get 429 + Retry-After (0 = default, negative = unlimited)")
	maxActiveFlag := flag.Int("max-active-matrices", 0, "coordinator: per-tenant cap on live matrices (0 = default, negative = unlimited)")
	workerFlag := flag.Bool("worker", false, "run as a fleet worker instead of a coordinator")
	joinFlag := flag.String("join", "", "worker: coordinator base URL to join, e.g. http://host:8080")
	flag.Parse()

	if *storeFlag != "" && *storeDirFlag != "" {
		fmt.Fprintln(os.Stderr, "-store and -store-dir are mutually exclusive")
		return 2
	}
	if *workerFlag && *journalFlag != "" {
		fmt.Fprintln(os.Stderr, "-journal is a coordinator flag (workers keep no matrix state)")
		return 2
	}

	var st scenario.ResultStore
	if *storeDirFlag != "" {
		dirStore, err := store.OpenDir(*storeDirFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "store: %v\n", err)
			return 2
		}
		defer dirStore.Close()
		fmt.Printf("store %s (segmented): %s\n", *storeDirFlag, dirStore.Stats())
		st = dirStore
	} else if *storeFlag != "" {
		fileStore, err := store.Open(*storeFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "store: %v\n", err)
			return 2
		}
		defer fileStore.Close()
		stats := fileStore.Stats()
		fmt.Printf("store %s: %s\n", *storeFlag, stats)
		st = fileStore
	} else if *workerFlag {
		st = nil // workers need no cache; the coordinator persists results
	} else {
		st = store.NewMemory()
		fmt.Println("store: in-memory (pass -store to persist results across restarts)")
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *workerFlag {
		return runWorker(ctx, *joinFlag, *workersFlag, st)
	}
	opts := Options{
		Workers:           *workersFlag,
		Store:             st,
		Lease:             *leaseFlag,
		MaxPendingCells:   *maxPendingFlag,
		MaxActiveMatrices: *maxActiveFlag,
	}
	return runCoordinator(ctx, *addrFlag, opts, *journalFlag)
}

// runWorker is the -worker role: join the fleet and execute dispatched
// cells until interrupted.
func runWorker(ctx context.Context, join string, slots int, st scenario.ResultStore) int {
	if join == "" {
		fmt.Fprintln(os.Stderr, "-worker requires -join <coordinator URL>")
		return 2
	}
	if slots <= 0 {
		slots = runtime.NumCPU()
	}
	w := &Worker{
		Coordinator: join,
		Slots:       slots,
		Store:       st,
		Logf: func(format string, args ...any) {
			fmt.Printf("worker: "+format+"\n", args...)
		},
	}
	fmt.Printf("krum-scenariod worker: %d slots, joining %s\n", slots, join)
	if err := w.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		return 1
	}
	fmt.Println("bye (in-flight cells were abandoned; the coordinator reassigns them)")
	return 0
}

// runCoordinator is the default role: serve matrices and the fleet,
// resuming journaled matrices first when a journal is configured.
func runCoordinator(ctx context.Context, addr string, opts Options, journalPath string) int {
	srv := NewServerOptions(opts)
	if journalPath != "" {
		resumed, err := srv.UseJournal(journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "journal: %v\n", err)
			return 2
		}
		fmt.Printf("journal %s: %d unfinished matrices resumed\n", journalPath, resumed)
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("krum-scenariod listening on %s\n", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Println("shutting down: waiting for in-flight cells to finish and persist...")
	srv.Stop() // stop scheduling, drain in-flight cells into the store
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		return 1
	}
	fmt.Println("bye (interrupted matrices resume by resubmission — the store holds their completed cells)")
	return 0
}
