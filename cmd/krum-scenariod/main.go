// Command krum-scenariod is a long-running HTTP service that executes
// scenario matrices (see EXPERIMENTS.md and ARCHITECTURE.md at the
// repository root): clients POST JSON matrix definitions — the same
// schema krum-experiments -config accepts under "matrix" — and the
// service fans their cells out across one shared bounded worker pool,
// backed by a shared content-addressed result store.
//
//	krum-scenariod -addr :8080 -workers 8 -store cells.jsonl
//
// Endpoints:
//
//	POST /matrices               submit a scenario.Matrix (JSON); returns {id, cells, ...urls}
//	GET  /matrices               status of every submitted matrix
//	GET  /matrices/{id}          progress: {total, completed, cached, failed, finished, aborted}
//	GET  /matrices/{id}/results  positional results array (null for pending cells)
//	GET  /matrices/{id}/stream   NDJSON of cells in completion order, live until finished
//	DELETE /matrices/{id}        evict a finished/aborted matrix from memory (store keeps its cells)
//	GET  /store                  result-store counters (hits, misses, entries, ...)
//	GET  /healthz                liveness probe
//
// Concurrent matrices share the pool: total in-flight cells never
// exceed -workers, however many matrices are running. Results are
// deterministic per cell regardless of the interleaving (cells are
// explicitly seeded pure functions of their spec), so two clients
// racing the same grid get identical numbers.
//
// Shutdown (SIGINT/SIGTERM) is graceful mid-matrix: in-flight cells
// finish and persist to the store, unstarted cells never run, and the
// affected matrices report "aborted". Because every completed cell is
// in the store, resume is simply resubmitting the same matrix after
// restart — the completed prefix replays as cache hits and only the
// remainder computes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"krum/scenario"
	"krum/scenario/store"
)

func main() {
	os.Exit(run())
}

// run is the testable body of main (exit-once rule).
func run() int {
	addrFlag := flag.String("addr", ":8080", "listen address")
	workersFlag := flag.Int("workers", 0, "shared worker-pool size across all matrices (0 = NumCPU)")
	storeFlag := flag.String("store", "", "content-addressed result store JSONL path (empty = in-memory only)")
	flag.Parse()

	var st scenario.ResultStore
	if *storeFlag != "" {
		fileStore, err := store.Open(*storeFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "store: %v\n", err)
			return 2
		}
		defer fileStore.Close()
		stats := fileStore.Stats()
		fmt.Printf("store %s: %s\n", *storeFlag, stats)
		st = fileStore
	} else {
		st = store.NewMemory()
		fmt.Println("store: in-memory (pass -store to persist results across restarts)")
	}

	srv := NewServer(*workersFlag, st)
	httpSrv := &http.Server{Addr: *addrFlag, Handler: srv}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("krum-scenariod listening on %s\n", *addrFlag)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Println("shutting down: waiting for in-flight cells to finish and persist...")
	srv.Stop() // stop scheduling, drain in-flight cells into the store
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		return 1
	}
	fmt.Println("bye (interrupted matrices resume by resubmission — the store holds their completed cells)")
	return 0
}
