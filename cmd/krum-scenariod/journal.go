package main

// The coordinator checkpoint/journal: an append-only JSONL event log
// that makes the coordinator's in-memory state — which matrices exist,
// which cells completed, how far the id sequences ran — recoverable
// after a crash. It deliberately journals NO results: every result
// byte lives in the content-addressed store, so recovery re-executes a
// resurrected matrix's cells and the completed prefix replays as store
// hits for free. The journal only has to remember which grids were
// promised to clients.
//
// Format: one JSON event per line. Five event types —
//
//	submit      a matrix was accepted (id + expanded cells)
//	cell        a cell of a matrix completed
//	done        a matrix reached a terminal state (finished/aborted)
//	join        a fleet member was granted an id (bumps the id sequence)
//	checkpoint  a full-state snapshot REPLACING everything before it
//
// A checkpoint is written by rewriting the whole file (temp file +
// rename, the same atomicity discipline the store's segments use) with
// a single checkpoint event; ordinary events then append after it.
// "Journal lag" — events since the last checkpoint — is what /healthz
// reports and what triggers the automatic rewrite.
//
// Corruption tolerance matches the store's tail rules: a torn final
// line (the append the crash interrupted) is ignored, malformed
// interior lines are skipped, and unknown matrix references are
// dropped. Losing a cell event is always safe (recovery re-executes);
// losing a submit event loses only a matrix the client was never
// acknowledged... and the client retries. The lost-update analysis for
// the checkpoint rewrite is in (*journal).rewrite.
//
// Lock order: journal.mu is taken BEFORE server/run locks (rewrite
// snapshots server state while holding mu); no journal caller may hold
// s.mu or run.mu when calling into the journal.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"

	"krum/scenario"
)

// defaultCheckpointEvery is the journal lag at which an automatic
// checkpoint rewrite triggers — small enough that replay after a crash
// is instant, large enough that the rewrite cost (proportional to live
// matrix count, not to history) amortizes away.
const defaultCheckpointEvery = 64

// journalEvent is one journal line; Type selects which other fields
// are meaningful.
type journalEvent struct {
	// Type is "submit", "cell", "done", "join" or "checkpoint".
	Type string `json:"type"`
	// Matrix is the matrix id for submit/cell/done events.
	Matrix string `json:"matrix,omitempty"`
	// Cells is the submit event's expanded grid.
	Cells []scenario.Spec `json:"cells,omitempty"`
	// Tenant is the submit event's tenant attribution; empty in
	// pre-tenancy journals (replay normalizes it to the default).
	Tenant string `json:"tenant,omitempty"`
	// Priority is the submit event's dispatch tier.
	Priority int `json:"priority,omitempty"`
	// Index is the cell event's position in the matrix.
	Index int `json:"index,omitempty"`
	// Cached marks a cell event served from the store.
	Cached bool `json:"cached,omitempty"`
	// CellError is the cell event's failure, if any.
	CellError string `json:"cell_error,omitempty"`
	// Aborted marks a done event cut short by shutdown.
	Aborted bool `json:"aborted,omitempty"`
	// Worker is the join event's granted member id.
	Worker string `json:"worker,omitempty"`
	// Checkpoint is the checkpoint event's full snapshot.
	Checkpoint *checkpoint `json:"checkpoint,omitempty"`
}

// checkpoint is a full snapshot of the coordinator state the journal
// protects. Results are absent by design — the store holds them.
type checkpoint struct {
	// Seq is the matrix id sequence (ids are "m<seq>").
	Seq int `json:"seq"`
	// Wseq is the fleet member id sequence (ids are "w<seq>").
	Wseq int `json:"wseq"`
	// Matrices are the live (non-terminal) matrices.
	Matrices []checkpointMatrix `json:"matrices,omitempty"`
}

// checkpointMatrix is one live matrix inside a checkpoint.
type checkpointMatrix struct {
	// ID is the matrix id clients hold.
	ID string `json:"id"`
	// Cells is the expanded grid, in submission order.
	Cells []scenario.Spec `json:"cells"`
	// Tenant and Priority restore the matrix's dispatch attribution on
	// recovery, so a resumed backlog keeps its fair-share and tier
	// placement. Empty Tenant (a pre-tenancy journal) resumes as the
	// default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the matrix's dispatch tier.
	Priority int `json:"priority,omitempty"`
	// Done lists completed cell indices — informational: recovery
	// re-executes every cell and lets the store answer the done ones.
	Done []int `json:"done,omitempty"`
}

// journalState is what replaying a journal file yields.
type journalState struct {
	seq      int
	wseq     int
	matrices []checkpointMatrix
	// events is the replayed lag: events applied since the last
	// checkpoint (the whole file, if it has none).
	events int
	// skipped counts malformed interior lines and events referencing
	// unknown matrices — surfaced so operators see journal damage.
	skipped int
}

// journal is the append handle plus lag accounting. All methods are
// safe for concurrent use.
type journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	lag  int
	// every is the auto-checkpoint threshold (defaultCheckpointEvery
	// unless a test lowers it).
	every int
}

// seqOf parses the numeric tail of an "m7"/"w12"-style id; 0 when the
// id is not of that shape.
func seqOf(id string, prefix byte) int {
	if len(id) < 2 || id[0] != prefix {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// openJournal replays path (absent is an empty journal) and returns
// the append handle plus the recovered state.
func openJournal(path string) (*journal, *journalState, error) {
	state := &journalState{}
	blob, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("reading journal %s: %w", path, err)
	}
	if len(blob) > 0 {
		replayJournal(blob, state)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("opening journal %s: %w", path, err)
	}
	j := &journal{path: path, f: f, lag: state.events, every: defaultCheckpointEvery}
	return j, state, nil
}

// replayJournal applies a journal file's events, in order, to state.
// The final line may be torn (the append a crash interrupted) — it is
// ignored, like the store's tail. Malformed interior lines and events
// for unknown matrices are skipped and counted.
func replayJournal(blob []byte, state *journalState) {
	// byID mirrors state.matrices for O(1) event application; the slice
	// keeps submission order.
	byID := make(map[string]int)
	reset := func(cp *checkpoint) {
		state.seq, state.wseq = cp.Seq, cp.Wseq
		state.matrices = append([]checkpointMatrix(nil), cp.Matrices...)
		state.events = 0
		byID = make(map[string]int)
		for i := range state.matrices {
			byID[state.matrices[i].ID] = i
		}
	}
	lines := bytes.Split(blob, []byte("\n"))
	// A file not ending in '\n' has a torn final element (the append
	// the crash interrupted); one that does has an empty final element.
	// An undecodable LAST line is therefore forgiven where an
	// undecodable interior line is counted as damage.
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev journalEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			if i == len(lines)-1 {
				break // torn final append
			}
			state.skipped++
			continue
		}
		switch ev.Type {
		case "checkpoint":
			if ev.Checkpoint == nil {
				state.skipped++
				continue
			}
			reset(ev.Checkpoint)
		case "submit":
			if ev.Matrix == "" || len(ev.Cells) == 0 {
				state.skipped++
				continue
			}
			if _, dup := byID[ev.Matrix]; dup {
				state.skipped++
				continue
			}
			byID[ev.Matrix] = len(state.matrices)
			state.matrices = append(state.matrices, checkpointMatrix{
				ID: ev.Matrix, Cells: ev.Cells, Tenant: ev.Tenant, Priority: ev.Priority,
			})
			if n := seqOf(ev.Matrix, 'm'); n > state.seq {
				state.seq = n
			}
			state.events++
		case "cell":
			idx, ok := byID[ev.Matrix]
			if !ok {
				state.skipped++
				continue
			}
			state.matrices[idx].Done = append(state.matrices[idx].Done, ev.Index)
			state.events++
		case "done":
			idx, ok := byID[ev.Matrix]
			if !ok {
				state.skipped++
				continue
			}
			// Terminal matrices leave the journal: their results lived
			// only in coordinator memory, and the documented resume path
			// for them is resubmission (free, via the store).
			state.matrices = append(state.matrices[:idx], state.matrices[idx+1:]...)
			byID = make(map[string]int)
			for i := range state.matrices {
				byID[state.matrices[i].ID] = i
			}
			state.events++
		case "join":
			if n := seqOf(ev.Worker, 'w'); n > state.wseq {
				state.wseq = n
			}
			state.events++
		default:
			state.skipped++
		}
	}
}

// append writes one event and returns the resulting lag. A write error
// is returned but leaves the journal usable — the coordinator keeps
// serving (durability degrades, execution does not), and the next
// checkpoint rewrite restores a consistent file.
func (j *journal) append(ev journalEvent) (lag int, err error) {
	blob, err := json.Marshal(ev)
	if err != nil {
		return 0, fmt.Errorf("encoding journal event: %w", err)
	}
	blob = append(blob, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, fmt.Errorf("journal %s is closed", j.path)
	}
	if _, err := j.f.Write(blob); err != nil {
		return j.lag, fmt.Errorf("appending to journal %s: %w", j.path, err)
	}
	j.lag++
	return j.lag, nil
}

// Lag reports events appended since the last checkpoint.
func (j *journal) Lag() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lag
}

// rewrite replaces the journal with a single checkpoint event obtained
// from snapshot, which it calls while holding j.mu. That lock order
// (journal before server state) is what makes the rewrite lose no
// events: any append that completed before the rewrite took the lock
// had its state mutation applied even earlier — mutations always
// precede their events — so the snapshot covers it; any append that
// arrives later blocks on j.mu and lands in the new file.
func (j *journal) rewrite(snapshot func() checkpoint) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal %s is closed", j.path)
	}
	cp := snapshot()
	blob, err := json.Marshal(journalEvent{Type: "checkpoint", Checkpoint: &cp})
	if err != nil {
		return fmt.Errorf("encoding checkpoint: %w", err)
	}
	blob = append(blob, '\n')
	tmp := j.path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("writing checkpoint %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("publishing checkpoint %s: %w", j.path, err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The checkpoint IS on disk; only the append handle is gone.
		// Close the stale handle (it points at the renamed-over inode)
		// and report — the server keeps running journal-less-ly.
		j.f.Close()
		j.f = nil
		return fmt.Errorf("reopening journal %s after checkpoint: %w", j.path, err)
	}
	old := j.f
	j.f = f
	old.Close()
	j.lag = 0
	return nil
}

// close releases the append handle; later appends fail.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}
