//go:build !race

package main

// raceDetectorEnabled is false in ordinary test builds; see
// race_enabled_test.go for why the sharding end-to-end test consults
// it.
const raceDetectorEnabled = false
