package main

// The in-process multi-tenant load harness (make load-test): hundreds
// of worker slots against a deep multi-tenant backlog of small
// matrices, proving the PR-8 acceptance criteria at scale —
//
//   - fair share: two equal-priority tenants each take ~50% of the
//     dispatches measured over a mid-contention window (final totals
//     are trivially equal once both backlogs drain, so the window is
//     the honest measurement);
//   - strict priority: a high-priority "rush" tenant submitted into
//     the contended backlog finishes while the backlog is still deep;
//   - quota backpressure: a small-quota tenant sees real 429s with
//     Retry-After, retries, and loses nothing;
//   - byte identity: every served result equals a direct in-process
//     scenario.Runner run of the same specs;
//   - affinity: worker workload caches actually hit.
//
// Gated behind KRUM_LOAD_TEST=1 because it deliberately saturates the
// machine for tens of seconds; CI runs it in a non-blocking job.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"krum/scenario"
	"krum/scenario/store"
)

// loadMatrix builds one small two-cell matrix (a rules sweep sharing
// workload×seed, so worker affinity has something to cache).
func loadMatrix(seed uint64) scenario.Matrix {
	return scenario.Matrix{
		Base: scenario.Spec{
			Workload:  "gmm(k=3,dim=10,radius=4,sigma=0.5)",
			Rule:      "krum",
			Schedule:  "const(gamma=0.05)",
			N:         9,
			F:         2,
			Rounds:    150,
			BatchSize: 4,
			Seed:      seed,
		},
		Rules: []string{"krum", "average"},
	}
}

// submitTenant marshals a loadMatrix under a tenant envelope and
// returns the raw response.
func submitTenant(t *testing.T, ts *httptest.Server, seed uint64, tenant string, priority int) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(loadMatrix(seed))
	if err != nil {
		t.Fatal(err)
	}
	return postMatrix(t, ts, withTenant(t, string(blob), tenant, priority))
}

// fleetTenantRow finds one tenant's dispatch counters in a fleet
// status snapshot (zero row when the tenant never dispatched).
func fleetTenantRow(fs fleetStatusJSON, tenant string) fleetTenantJSON {
	for _, row := range fs.Tenants {
		if row.Tenant == tenant {
			return row
		}
	}
	return fleetTenantJSON{Tenant: tenant}
}

// startLoadWorkers launches n workers with the given slot count each,
// joined sequentially.
func startLoadWorkers(t *testing.T, base string, n, slots int) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		w := &Worker{
			Coordinator: base,
			Slots:       slots,
		}
		f.workers = append(f.workers, w)
		f.cancels = append(f.cancels, cancel)
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	return f
}

// TestLoadMultiTenant is the load harness; see the package comment
// above for what it proves.
func TestLoadMultiTenant(t *testing.T) {
	if os.Getenv("KRUM_LOAD_TEST") == "" {
		t.Skip("set KRUM_LOAD_TEST=1 to run the multi-tenant load harness (make load-test)")
	}

	matricesPerTenant := 400
	bigWorkers, bigSlots := 4, 64
	if raceDetectorEnabled {
		matricesPerTenant = 80
		bigWorkers, bigSlots = 2, 16
	}

	st := store.NewMemory()
	srv := NewServerOptions(Options{
		// A pool far wider than the cell count, so every cell reaches
		// the fleet queues instead of waiting on the coordinator's own
		// semaphore — the fleet's scheduling is what this test measures.
		Workers:            4 * matricesPerTenant * 2,
		Store:              st,
		Lease:              5 * time.Second,
		MaxActiveMatrices:  -1, // thousands of live matrices is the point
		TenantPendingCells: map[string]int{"tenant-c": 2},
	})
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A single 1-slot starter worker joins first: enqueue requires live
	// membership, and one slot cannot meaningfully drain the backlog —
	// the contention window survives until the big fleet joins.
	starter := startLoadWorkers(t, ts.URL, 1, 1)
	defer starter.stop()
	waitForFleetSize(t, ts, 1)

	// Build the backlog: two equal-priority tenants, interleaved.
	var idsA, idsB []string
	for i := 0; i < matricesPerTenant; i++ {
		for _, tenant := range []string{"tenant-a", "tenant-b"} {
			seed := uint64(10_000 + i)
			if tenant == "tenant-b" {
				seed += 500_000 // disjoint seeds: no cross-tenant single-flight
			}
			resp, body := submitTenant(t, ts, seed, tenant, 0)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("%s submit %d: status %d: %s", tenant, i, resp.StatusCode, body)
			}
			var sub submitResponse
			if err := json.Unmarshal(body, &sub); err != nil {
				t.Fatal(err)
			}
			if tenant == "tenant-a" {
				idsA = append(idsA, sub.ID)
			} else {
				idsB = append(idsB, sub.ID)
			}
		}
	}
	cellsPerTenant := 2 * matricesPerTenant

	// Quota tenant: back-to-back 2-cell submissions MUST bounce off the
	// 2-pending-cell quota (the first is always admitted — quotas cap
	// existing backlog); honoring Retry-After must eventually land every
	// one of them.
	var idsC []string
	rejections := 0
	for i := 0; i < 4; i++ {
		for attempt := 0; ; attempt++ {
			resp, body := submitTenant(t, ts, uint64(900_000+i), "tenant-c", 0)
			if resp.StatusCode == http.StatusAccepted {
				var sub submitResponse
				if err := json.Unmarshal(body, &sub); err != nil {
					t.Fatal(err)
				}
				idsC = append(idsC, sub.ID)
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("tenant-c submit %d: status %d: %s", i, resp.StatusCode, body)
			}
			secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || secs < 1 {
				t.Fatalf("429 without a usable Retry-After: %q", resp.Header.Get("Retry-After"))
			}
			rejections++
			if attempt > 120 {
				t.Fatalf("tenant-c submit %d never admitted after %d retries", i, attempt)
			}
			time.Sleep(time.Duration(secs) * time.Second)
		}
	}
	if rejections == 0 {
		t.Error("tenant-c never saw a 429 — the quota did not bite")
	}

	// Rush tenant: priority 5 into the contended backlog, while the
	// fleet is still just the 1-slot starter. Strict tier precedence
	// must cut the line: the rush matrix finishes while the
	// equal-priority backlog is still deep.
	resp, body := submitTenant(t, ts, 700_001, "rush", 5)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("rush submit: status %d: %s", resp.StatusCode, body)
	}
	var rushSub submitResponse
	if err := json.Unmarshal(body, &rushSub); err != nil {
		t.Fatal(err)
	}
	rushStatus := waitFinished(t, ts, rushSub.ID)
	if rushStatus.Failed != 0 {
		t.Fatalf("rush matrix failed %d cells", rushStatus.Failed)
	}
	var fsRush fleetStatusJSON
	getJSON(t, ts, "/fleet", &fsRush)
	backlogDispatched := fleetTenantRow(fsRush, "tenant-a").Dispatches + fleetTenantRow(fsRush, "tenant-b").Dispatches
	if backlogDispatched >= 2*cellsPerTenant {
		t.Error("backlog fully dispatched before the rush matrix finished — priority precedence unobservable (cells too fast for this machine)")
	}

	// The big fleet joins: hundreds of slots. Sample the per-tenant
	// dispatch counters NOW (one atomic snapshot) — the fairness window
	// starts here.
	big := startLoadWorkers(t, ts.URL, bigWorkers, bigSlots)
	defer big.stop()
	waitForFleetSize(t, ts, 1+bigWorkers)
	var fs0 fleetStatusJSON
	getJSON(t, ts, "/fleet", &fs0)
	d0a, d0b := fleetTenantRow(fs0, "tenant-a").Dispatches, fleetTenantRow(fs0, "tenant-b").Dispatches

	// Fairness window: wait until at least 60% of the remaining backlog
	// dispatched, then compare the two tenants' windowed shares.
	windowTarget := (2*cellsPerTenant - d0a - d0b) * 6 / 10
	var wa, wb int
	for deadline := time.Now().Add(5 * time.Minute); ; {
		var fs fleetStatusJSON
		getJSON(t, ts, "/fleet", &fs)
		wa = fleetTenantRow(fs, "tenant-a").Dispatches - d0a
		wb = fleetTenantRow(fs, "tenant-b").Dispatches - d0b
		if wa+wb >= windowTarget {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backlog never reached the fairness window (%d/%d dispatched)", wa+wb, windowTarget)
		}
		time.Sleep(5 * time.Millisecond)
	}
	shareA := float64(wa) / float64(wa+wb)
	if shareA < 0.4 || shareA > 0.6 {
		t.Errorf("windowed fair share: tenant-a %.1f%% (a=%d b=%d), want 50%% ± 10%%", 100*shareA, wa, wb)
	}
	t.Logf("fair-share window: tenant-a %d, tenant-b %d (%.1f%%), rejections %d", wa, wb, 100*shareA, rejections)

	// Drain everything; nothing may be lost or failed.
	allIDs := append(append(append([]string{}, idsA...), idsB...), idsC...)
	for _, id := range allIDs {
		status := waitFinished(t, ts, id)
		if status.Failed != 0 || status.Completed != status.Total {
			t.Fatalf("matrix %s: %d/%d completed, %d failed", id, status.Completed, status.Total, status.Failed)
		}
	}

	// No cell may have fallen back to coordinator-local compute (a live
	// fleet existed throughout), and the fleet must actually have
	// executed the work.
	var fsEnd fleetStatusJSON
	getJSON(t, ts, "/fleet", &fsEnd)
	if fsEnd.LocalFallbacks != 0 {
		t.Errorf("%d cells fell back to local compute under a live fleet", fsEnd.LocalFallbacks)
	}
	executed := 0
	for _, fleet := range []*testFleet{starter, big} {
		for _, w := range fleet.workers {
			executed += w.Executed()
		}
	}
	totalCells := 2*cellsPerTenant + 2*len(idsC) + 2 // a + b + c + rush... (c matrices are 2 cells each too)
	if executed < totalCells {
		t.Errorf("workers executed %d cells, want at least %d (the whole grid)", executed, totalCells)
	}

	// Affinity actually pays: across the fleet, workload-cache hits.
	hits := 0
	for _, fleet := range []*testFleet{starter, big} {
		for _, w := range fleet.workers {
			h, _ := w.CacheStats()
			hits += h
		}
	}
	if hits == 0 {
		t.Error("no worker workload-cache hits — affinity dispatch never grouped cells")
	}
	t.Logf("workers executed %d cells, %d workload-cache hits", executed, hits)

	// Byte identity at scale: a direct in-process Runner over tenant-a's
	// and tenant-b's specs must match the served results exactly.
	for _, id := range append(append([]string{}, idsA[:5]...), idsB[:5]...) {
		var results resultsJSON
		getJSON(t, ts, "/matrices/"+id+"/results", &results)
		specs := make([]scenario.Spec, len(results.Results))
		for i, cell := range results.Results {
			if cell == nil || cell.Result == nil {
				t.Fatalf("matrix %s cell %d missing", id, i)
			}
			specs[i] = cell.Spec
		}
		direct, err := (&scenario.Runner{Workers: runtime.NumCPU()}).RunCells(specs)
		if err != nil {
			t.Fatal(err)
		}
		for i, cr := range direct {
			if encodeResult(t, results.Results[i].Result) != encodeResult(t, cr.Result) {
				t.Errorf("matrix %s cell %d (%s): served bytes differ from direct run", id, i, cr.Spec.Label())
			}
		}
	}
}
