package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"krum/distsgd"
	"krum/scenario"
	"krum/scenario/store"
)

// matrixBody renders a small rules-sweep matrix as the POST payload.
func matrixBody(t *testing.T, seed uint64, rules ...string) string {
	t.Helper()
	m := scenario.Matrix{
		Base: scenario.Spec{
			Workload:  "gmm(k=3,dim=6,radius=4,sigma=0.5)",
			Rule:      "krum",
			Schedule:  "inverset(gamma=0.5,power=0.75,t0=50)",
			N:         9,
			F:         2,
			Rounds:    8,
			BatchSize: 8,
			Seed:      seed,
			EvalEvery: 4,
			EvalBatch: 64,
		},
		Rules: rules,
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// submit POSTs a matrix and decodes the accepted response.
func submit(t *testing.T, ts *httptest.Server, body string) submitResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/matrices", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, msg)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// getJSON decodes a GET endpoint into out.
func getJSON(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

// waitFinished polls a matrix's status until it finishes.
func waitFinished(t *testing.T, ts *httptest.Server, id string) statusJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st statusJSON
		getJSON(t, ts, "/matrices/"+id, &st)
		if st.Finished {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("matrix %s did not finish in time", id)
	return statusJSON{}
}

// encodeResult is the stable-encoding comparison helper.
func encodeResult(t *testing.T, r *distsgd.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServerConcurrentMatricesShareStoreAndPool is the service-level
// acceptance criterion: two matrices submitted concurrently to a
// 2-worker shared pool both complete, and their results are
// byte-identical to direct scenario.Runner runs of the same grids —
// the interleaving across matrices changes nothing.
func TestServerConcurrentMatricesShareStoreAndPool(t *testing.T) {
	st := store.NewMemory()
	srv := NewServer(2, st, 0)
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	bodyA := matrixBody(t, 11, "krum", "average")
	bodyB := matrixBody(t, 23, "krum", "coordmedian")
	subA := submit(t, ts, bodyA)
	subB := submit(t, ts, bodyB)
	if subA.ID == subB.ID {
		t.Fatalf("both matrices got id %s", subA.ID)
	}

	stA := waitFinished(t, ts, subA.ID)
	stB := waitFinished(t, ts, subB.ID)
	if stA.Failed != 0 || stB.Failed != 0 {
		t.Fatalf("failed cells: A=%d B=%d", stA.Failed, stB.Failed)
	}
	if stA.Total != 2 || stB.Total != 2 || stA.Completed != 2 || stB.Completed != 2 {
		t.Fatalf("unexpected totals: A=%+v B=%+v", stA, stB)
	}

	// Reference runs of the same grids, directly on the Runner.
	for _, tc := range []struct {
		sub  submitResponse
		body string
	}{{subA, bodyA}, {subB, bodyB}} {
		var m scenario.Matrix
		if err := json.Unmarshal([]byte(tc.body), &m); err != nil {
			t.Fatal(err)
		}
		want, err := (&scenario.Runner{Workers: 1}).Run(m)
		if err != nil {
			t.Fatal(err)
		}
		var got resultsJSON
		getJSON(t, ts, "/matrices/"+tc.sub.ID+"/results", &got)
		if len(got.Results) != len(want) {
			t.Fatalf("matrix %s: %d results, want %d", tc.sub.ID, len(got.Results), len(want))
		}
		for i := range want {
			cell := got.Results[i]
			if cell == nil {
				t.Fatalf("matrix %s: result %d still null after finish", tc.sub.ID, i)
			}
			if cell.Index != i {
				t.Errorf("matrix %s: results[%d].Index = %d; want positional", tc.sub.ID, i, cell.Index)
			}
			if encodeResult(t, cell.Result) != encodeResult(t, want[i].Result) {
				t.Errorf("matrix %s cell %d: service result differs from direct Runner run", tc.sub.ID, i)
			}
		}
	}
}

// TestServerStreamReplaysCompletionOrder reads the NDJSON stream of a
// finished matrix and expects every cell exactly once.
func TestServerStreamReplaysCompletionOrder(t *testing.T) {
	srv := NewServer(2, store.NewMemory(), 0)
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sub := submit(t, ts, matrixBody(t, 31, "krum", "average"))
	waitFinished(t, ts, sub.ID)

	resp, err := http.Get(ts.URL + sub.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	seen := map[int]bool{}
	for {
		var c cellJSON
		if err := dec.Decode(&c); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if seen[c.Index] {
			t.Errorf("cell %d streamed twice", c.Index)
		}
		seen[c.Index] = true
	}
	if len(seen) != sub.Cells {
		t.Errorf("streamed %d cells, want %d", len(seen), sub.Cells)
	}
}

// TestServerResumeAfterRestart simulates the crash/resume cycle: run a
// matrix against a file store, "restart" the service on the same file,
// resubmit, and expect every cell to replay as a store hit.
func TestServerResumeAfterRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	st1, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(2, st1, 0)
	ts1 := httptest.NewServer(srv1)
	body := matrixBody(t, 47, "krum", "average")
	sub1 := submit(t, ts1, body)
	first := waitFinished(t, ts1, sub1.ID)
	if first.Cached != 0 {
		t.Fatalf("fresh store served %d cached cells", first.Cached)
	}
	var before resultsJSON
	getJSON(t, ts1, "/matrices/"+sub1.ID+"/results", &before)
	srv1.Stop()
	ts1.Close()
	st1.Close()

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(2, st2, 0)
	defer srv2.Stop()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	sub2 := submit(t, ts2, body)
	second := waitFinished(t, ts2, sub2.ID)
	if second.Cached != second.Total {
		t.Fatalf("resume served %d/%d cells from store; want all", second.Cached, second.Total)
	}
	var after resultsJSON
	getJSON(t, ts2, "/matrices/"+sub2.ID+"/results", &after)
	for i := range before.Results {
		if encodeResult(t, after.Results[i].Result) != encodeResult(t, before.Results[i].Result) {
			t.Errorf("cell %d: resumed result differs from original", i)
		}
	}
}

// TestServerStopAbortsCleanly submits work and stops immediately: the
// server must not deadlock, and each matrix must end either finished
// or aborted with only completed cells recorded.
func TestServerStopAbortsCleanly(t *testing.T) {
	srv := NewServer(1, store.NewMemory(), 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sub := submit(t, ts, matrixBody(t, 53, "krum", "average", "coordmedian", "medoid"))
	srv.Stop() // races the executor on purpose; must not race wg.Add

	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st statusJSON
		getJSON(t, ts, "/matrices/"+sub.ID, &st)
		if st.Finished || st.Aborted {
			// The two terminal states are mutually exclusive: finished
			// strictly means every cell completed.
			if st.Finished && st.Aborted {
				t.Fatalf("matrix is both finished and aborted: %+v", st)
			}
			if st.Finished && st.Completed != st.Total {
				t.Fatalf("finished with only %d/%d cells completed", st.Completed, st.Total)
			}
			if st.Aborted && st.Completed > st.Total {
				t.Fatalf("aborted with impossible completion %d/%d", st.Completed, st.Total)
			}
			// Submissions after shutdown are refused.
			resp, err := http.Post(ts.URL+"/matrices", "application/json",
				strings.NewReader(matrixBody(t, 1, "krum")))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("post-shutdown submit status %d, want 503", resp.StatusCode)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("matrix never finalized after Stop")
}

// TestServerDeleteEvictsFinishedMatrix pins the retention contract:
// DELETE evicts a terminal matrix from memory while the store keeps
// its cells, and still-running matrices cannot be deleted... the
// resubmission after deletion is served from the store.
func TestServerDeleteEvictsFinishedMatrix(t *testing.T) {
	srv := NewServer(2, store.NewMemory(), 0)
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := matrixBody(t, 71, "krum", "average")
	sub := submit(t, ts, body)
	waitFinished(t, ts, sub.ID)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/matrices/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d, want 204", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/matrices/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status after delete %d, want 404", resp.StatusCode)
	}

	// The store survives eviction: resubmitting is fully cached.
	again := waitFinished(t, ts, submit(t, ts, body).ID)
	if again.Cached != again.Total {
		t.Fatalf("resubmission after delete: %d/%d cached", again.Cached, again.Total)
	}
}

// failingSaveStore misses every lookup and fails every save.
type failingSaveStore struct{}

func (failingSaveStore) Lookup(scenario.Spec) (*distsgd.Result, bool) { return nil, false }
func (failingSaveStore) Save(scenario.Spec, *distsgd.Result) error {
	return errDiskFull
}

var errDiskFull = fmt.Errorf("disk full")

// TestServerSurfacesStoreErrors pins that failed write-throughs are
// visible, not silently swallowed: the cells compute fine (failed=0)
// but status reports store_errors and each cell carries store_error —
// the operator's signal that resume-by-resubmission will NOT find
// these cells in the store.
func TestServerSurfacesStoreErrors(t *testing.T) {
	srv := NewServer(2, failingSaveStore{}, 0)
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sub := submit(t, ts, matrixBody(t, 83, "krum", "average"))
	st := waitFinished(t, ts, sub.ID)
	if st.Failed != 0 {
		t.Fatalf("failed = %d, want 0 (only persistence failed)", st.Failed)
	}
	if st.StoreErrors != st.Total {
		t.Fatalf("store_errors = %d, want %d", st.StoreErrors, st.Total)
	}
	var got resultsJSON
	getJSON(t, ts, "/matrices/"+sub.ID+"/results", &got)
	for i, cell := range got.Results {
		if cell.Result == nil || cell.Error != "" {
			t.Errorf("cell %d: result missing or marked failed: %+v", i, cell)
		}
		if cell.StoreError == "" {
			t.Errorf("cell %d: store_error not surfaced", i)
		}
	}
}

// TestServerRejectsBadSubmissions pins the validation surface.
func TestServerRejectsBadSubmissions(t *testing.T) {
	srv := NewServer(1, store.NewMemory(), 0)
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for name, body := range map[string]string{
		"not json":     "not json at all",
		"unknown keys": `{"base": {}, "bogus": 1}`,
		"invalid spec": `{"base": {"workload": "gmm", "rule": "nope", "schedule": "const(gamma=0.1)", "n": 4, "f": 1, "rounds": 2, "batch_size": 4, "seed": 1}}`,
	} {
		resp, err := http.Post(ts.URL+"/matrices", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/matrices/m999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}

	// A small JSON body declaring a huge cartesian product must be
	// rejected before expansion, not OOM the service.
	huge := scenario.Matrix{Base: scenario.Spec{}}
	for i := 0; i < 1000; i++ {
		huge.Seeds = append(huge.Seeds, uint64(i))
	}
	for i := 0; i < 200; i++ {
		huge.Rules = append(huge.Rules, "krum")
	}
	huge.Attacks = []string{"none", "signflip", "gaussian", "mimic", "crash"}
	blob, err := json.Marshal(huge)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/matrices", "application/json", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized matrix: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(msg), "cells") {
		t.Errorf("oversized matrix: message %q does not mention the cell cap", msg)
	}
}

// TestServerStoreStats checks the /store endpoint against the expected
// counters after a cold and a warm matrix.
func TestServerStoreStats(t *testing.T) {
	srv := NewServer(2, store.NewMemory(), 0)
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := matrixBody(t, 61, "krum", "average")
	waitFinished(t, ts, submit(t, ts, body).ID)
	warm := waitFinished(t, ts, submit(t, ts, body).ID)
	if warm.Cached != warm.Total {
		t.Fatalf("warm resubmission: %d/%d cached", warm.Cached, warm.Total)
	}

	var stats map[string]int
	getJSON(t, ts, "/store", &stats)
	if stats["entries"] != 2 || stats["hits"] != 2 || stats["misses"] != 2 {
		t.Errorf("store stats = %v, want 2 entries, 2 hits, 2 misses", stats)
	}

	var health map[string]string
	getJSON(t, ts, "/healthz", &health)
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}
	var list []statusJSON
	getJSON(t, ts, "/matrices", &list)
	if len(list) != 2 {
		t.Errorf("listed %d matrices, want 2", len(list))
	}
	if len(list) == 2 && !(list[0].ID == "m1" && list[1].ID == "m2") {
		t.Errorf("list order %v, want [m1 m2]", []string{list[0].ID, list[1].ID})
	}
}
