// Command krum-worker joins a krum-ps parameter server as one worker,
// honest or Byzantine:
//
//	krum-worker -addr 127.0.0.1:7070 -seed 1                       # honest
//	krum-worker -addr 127.0.0.1:7070 -seed 2 -behaviour gaussian   # attacker
//
// The -workload flag must match the server's.
package main

import (
	"flag"
	"fmt"
	"os"

	"krum/internal/harness"
	"krum/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7070", "parameter server address")
	workload := flag.String("workload", "mnist", "workload spec: "+harness.WorkloadUsage()+" (must match the server)")
	batch := flag.Int("batch", 16, "mini-batch size")
	behaviourName := flag.String("behaviour", "correct", "correct | gaussian | signflip | labelflip")
	seed := flag.Uint64("seed", 1, "private sampling seed (give each worker its own)")
	workloadSeed := flag.Uint64("workload-seed", 42, "workload construction seed (must match the server's -seed)")
	flag.Parse()

	var behaviour transport.WorkerBehaviour
	switch *behaviourName {
	case "correct":
		behaviour = transport.BehaviourCorrect
	case "gaussian":
		behaviour = transport.BehaviourGaussian
	case "signflip":
		behaviour = transport.BehaviourSignFlip
	case "labelflip":
		behaviour = transport.BehaviourLabelFlip
	default:
		fmt.Fprintf(os.Stderr, "unknown behaviour %q\n", *behaviourName)
		return 2
	}

	wl, err := harness.BuildWorkload(*workload, harness.Quick, *workloadSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workload: %v\n", err)
		return 2
	}

	fmt.Printf("worker joining %s as %s (%s)\n", *addr, behaviour, wl.Description)
	rounds, err := transport.RunWorker(transport.WorkerConfig{
		Addr:      *addr,
		Model:     wl.Model,
		Dataset:   wl.Dataset,
		Batch:     *batch,
		Behaviour: behaviour,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v (served %d rounds)\n", err, rounds)
		return 1
	}
	fmt.Printf("shutdown after %d rounds\n", rounds)
	return 0
}
