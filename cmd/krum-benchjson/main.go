// Command krum-benchjson converts `go test -bench` text output (stdin)
// into the JSON perf-trajectory format written to BENCH_scenario.json
// by `make bench`. The "raw" field preserves the benchmark text
// verbatim — feed it to benchstat to compare runs — and "benchmarks"
// carries the parsed per-benchmark metrics for dashboards.
//
//	go test -run '^$' -bench BenchmarkBulyanMemoized -benchmem . | krum-benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchmark is one parsed benchmark line.
type benchmark struct {
	// Name is the benchmark identifier including the -GOMAXPROCS
	// suffix.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported metric
	// ("ns/op", "B/op", "allocs/op", custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// output is the BENCH_scenario.json schema.
type output struct {
	Format     string      `json:"format"`
	Note       string      `json:"note"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
	Raw        string      `json:"raw"`
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout))
}

// run is the testable body of main (exit-once rule).
func run(in io.Reader, out io.Writer) int {
	var raw strings.Builder
	res := output{
		Format: "go-bench",
		Note:   "the raw field is benchstat-compatible `go test -bench` output",
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		raw.WriteString(line)
		raw.WriteByte('\n')
		switch {
		case strings.HasPrefix(line, "goos:"):
			res.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			res.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			res.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			res.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				res.Benchmarks = append(res.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "reading bench output: %v\n", err)
		return 1
	}
	res.Raw = raw.String()
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintf(os.Stderr, "encoding: %v\n", err)
		return 1
	}
	return 0
}

// parseBenchLine parses "BenchmarkX-8  100  123 ns/op  45 B/op ..."
// into a benchmark; value/unit pairs follow the iteration count.
func parseBenchLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
