// Command krum-bench measures aggregation-rule cost: the Lemma 4.1
// sweep over (n, d) for Krum, plus the same grid for the baselines
// (including the exponential minimal-diameter rule on small n, which is
// exactly the cost argument the paper makes for Krum).
//
//	krum-bench -rules krum,average,medoid -n 5,10,20,40 -d 1000,10000 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"krum"
	"krum/internal/core"
	"krum/internal/metrics"
	"krum/internal/vec"
)

func main() {
	os.Exit(run())
}

func run() int {
	rulesFlag := flag.String("rules", "krum,multikrum,average,medoid,coordmedian,geomedian", "comma-separated rules (add 'minimaldiameter' for the exponential baseline)")
	nFlag := flag.String("n", "5,10,20,40", "comma-separated worker counts")
	dFlag := flag.String("d", "100,1000,10000", "comma-separated dimensions")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	seedFlag := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	ns, err := parseInts(*nFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-n: %v\n", err)
		return 2
	}
	ds, err := parseInts(*dFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-d: %v\n", err)
		return 2
	}

	rng := vec.NewRNG(*seedFlag)
	tbl := metrics.NewTable("rule", "n", "d", "ns/op", "ns/(n²·d)")
	for _, n := range ns {
		f := (n - 3) / 2
		if f < 0 {
			f = 0
		}
		for _, d := range ds {
			vectors := make([][]float64, n)
			for i := range vectors {
				vectors[i] = rng.NewNormal(d, 0, 1)
			}
			dst := make([]float64, d)
			for _, name := range strings.Split(*rulesFlag, ",") {
				rule, err := ruleByName(strings.TrimSpace(name), n, f)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%v\n", err)
					return 2
				}
				nanos, err := timeRule(rule, dst, vectors)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s n=%d d=%d: %v\n", name, n, d, err)
					return 1
				}
				tbl.AddRowf(rule.Name(), n, d, nanos, nanos/(float64(n)*float64(n)*float64(d)))
			}
		}
	}
	if *csvFlag {
		if err := tbl.RenderCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		return 0
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}
	return 0
}

// ruleByName maps CLI names to rules configured for (n, f).
func ruleByName(name string, n, f int) (core.Rule, error) {
	switch name {
	case "krum":
		return krum.NewKrum(f), nil
	case "multikrum":
		m := n - f
		if m < 1 {
			m = 1
		}
		return krum.NewMultiKrum(f, m), nil
	case "average":
		return krum.Average{}, nil
	case "medoid":
		return krum.Medoid{}, nil
	case "coordmedian":
		return krum.CoordMedian{}, nil
	case "trimmedmean":
		return krum.TrimmedMean{Trim: f}, nil
	case "geomedian":
		return krum.GeoMedian{}, nil
	case "minimaldiameter":
		return krum.NewMinimalDiameter(f), nil
	case "clippedmean":
		return krum.ClippedMean{}, nil
	case "bulyan":
		bf := (n - 3) / 4
		if f < bf {
			bf = f
		}
		return krum.NewBulyan(bf), nil
	default:
		return nil, fmt.Errorf("unknown rule %q", name)
	}
}

// timeRule measures one rule's aggregation latency with calibrated
// repetitions.
func timeRule(rule core.Rule, dst []float64, vectors [][]float64) (float64, error) {
	start := time.Now()
	if err := rule.Aggregate(dst, vectors); err != nil {
		return 0, err
	}
	first := time.Since(start)
	reps := 1
	if first < 10*time.Millisecond {
		reps = int(10*time.Millisecond/(first+time.Nanosecond)) + 1
		if reps > 5000 {
			reps = 5000
		}
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if err := rule.Aggregate(dst, vectors); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps), nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
