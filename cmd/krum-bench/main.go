// Command krum-bench measures aggregation-rule cost: the Lemma 4.1
// sweep over (n, d) for Krum, plus the same grid for the baselines
// (including the exponential minimal-diameter rule on small n, which is
// exactly the cost argument the paper makes for Krum).
//
// Rules are registry specs; parameters omitted from a spec default to
// the sweep's per-n cluster shape:
//
//	krum-bench -rules krum,average,medoid -n 5,10,20,40 -d 1000,10000 -csv
//	krum-bench -rules "multikrum(m=3),bulyan" -n 20 -d 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"krum"
	"krum/internal/metrics"
	"krum/internal/vec"
)

func main() {
	os.Exit(run())
}

func run() int {
	rulesFlag := flag.String("rules", "krum,multikrum,average,medoid,coordmedian,geomedian",
		"comma-separated rule specs, from: "+krum.RuleUsage())
	nFlag := flag.String("n", "5,10,20,40", "comma-separated worker counts")
	dFlag := flag.String("d", "100,1000,10000", "comma-separated dimensions")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	seedFlag := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	ns, err := parseInts(*nFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-n: %v\n", err)
		return 2
	}
	ds, err := parseInts(*dFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-d: %v\n", err)
		return 2
	}

	rng := vec.NewRNG(*seedFlag)
	tbl := metrics.NewTable("rule", "n", "d", "ns/op", "ns/(n²·d)")
	for _, n := range ns {
		f := (n - 3) / 2
		if f < 0 {
			f = 0
		}
		for _, d := range ds {
			vectors := make([][]float64, n)
			for i := range vectors {
				vectors[i] = rng.NewNormal(d, 0, 1)
			}
			dst := make([]float64, d)
			// SplitRuleSpecs keeps commas inside parameter lists, so
			// "krum,multikrum(f=2,m=3)" is two specs, not three.
			for _, spec := range krum.SplitRuleSpecs(*rulesFlag) {
				rule, err := krum.ParseRuleIn(krum.SpecContext{N: n, F: f}, spec)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%v\n", err)
					return 2
				}
				nanos, err := timeRule(rule, dst, vectors)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s n=%d d=%d: %v\n", spec, n, d, err)
					return 1
				}
				tbl.AddRowf(rule.Name(), n, d, nanos, nanos/(float64(n)*float64(n)*float64(d)))
			}
		}
	}
	if *csvFlag {
		if err := tbl.RenderCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		return 0
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}
	return 0
}

// timeRule measures one rule's aggregation latency with calibrated
// repetitions.
func timeRule(rule krum.Rule, dst []float64, vectors [][]float64) (float64, error) {
	start := time.Now()
	if err := rule.Aggregate(dst, vectors); err != nil {
		return 0, err
	}
	first := time.Since(start)
	reps := 1
	if first < 10*time.Millisecond {
		reps = int(10*time.Millisecond/(first+time.Nanosecond)) + 1
		if reps > 5000 {
			reps = 5000
		}
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if err := rule.Aggregate(dst, vectors); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps), nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
