// Command krum-experiments regenerates every table and figure of the
// reproduction (see EXPERIMENTS.md at the repository root for the
// experiment → paper-claim → command index):
//
//	krum-experiments -exp all -scale quick
//	krum-experiments -exp fig4 -scale full -seed 7
//
// Experiments: lemma31, fig2, lemma41, prop42, prop43, fig4, fig5,
// fig6, fig7, table1, ablation, noniid, staleness, all.
//
// A JSON config file can drive the same experiments plus an arbitrary
// scenario matrix (rules × attacks × f-values × seeds, every axis a
// registry spec string) executed on a concurrent runner:
//
//	krum-experiments -config examples/matrix.json
//
// Config schema: {"experiments": ["table1"], "scale": "quick",
// "seed": 42, "workers": 4, "store": "cells.jsonl", "matrix": {...}} —
// the matrix object is a scenario.Matrix; run with -list to see every
// registered rule, attack, schedule, workload and arrival spec.
//
// With -store (or the "store" config key) every scenario cell — the
// figure-experiment grids and config matrices — is checked against a
// content-addressed persistent result store before running and written
// through after (see scenario/store): re-running an experiment with a
// warm store replays its cells as cache hits, so overlapping grids
// (e.g. -exp all after -exp fig4) only pay for uncovered cells.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"krum"
	"krum/attack"
	"krum/internal/harness"
	"krum/internal/metrics"
	"krum/scenario"
	"krum/scenario/store"
	"krum/workload"
)

// experiment binds a name to its regenerator.
type experiment struct {
	name string
	desc string
	run  func(w io.Writer, scale harness.Scale, seed uint64) error
}

// wrap adapts a typed harness entry point.
func wrap[T any](f func(io.Writer, harness.Scale, uint64) (T, error)) func(io.Writer, harness.Scale, uint64) error {
	return func(w io.Writer, s harness.Scale, seed uint64) error {
		_, err := f(w, s, seed)
		return err
	}
}

func experiments() []experiment {
	return []experiment{
		{name: "lemma31", desc: "E1: one Byzantine worker controls any linear rule", run: wrap(harness.RunLemma31)},
		{name: "fig2", desc: "E2: medoid collusion vs Krum", run: wrap(harness.RunFig2)},
		{name: "lemma41", desc: "E3: O(n²·d) cost scaling", run: wrap(harness.RunLemma41)},
		{name: "prop42", desc: "E4: (α,f)-Byzantine resilience Monte Carlo", run: wrap(harness.RunProp42)},
		{name: "prop43", desc: "E5: convergence to the flat basin under attack", run: wrap(harness.RunProp43)},
		{name: "fig4", desc: "F4: Gaussian attack accuracy curves", run: wrap(harness.RunFig4)},
		{name: "fig5", desc: "F5: omniscient attack accuracy curves", run: wrap(harness.RunFig5)},
		{name: "fig6", desc: "F6: Multi-Krum trade-off", run: wrap(harness.RunFig6)},
		{name: "fig7", desc: "F7: cost of resilience (mini-batch sweep)", run: wrap(harness.RunFig7)},
		{name: "table1", desc: "T1: Byzantine-selection rate matrix", run: wrap(harness.RunTable1)},
		{name: "ablation", desc: "E6: hidden-coordinate attack, Krum vs Bulyan", run: wrap(harness.RunAblation)},
		{name: "noniid", desc: "E7: label-skewed honest workers (i.i.d. assumption violated)", run: wrap(harness.RunNonIID)},
		{name: "staleness", desc: "E8: bounded-staleness asynchronous arrivals sweep (Kardam-style)", run: wrap(harness.RunStaleness)},
	}
}

// fileConfig is the -config JSON schema. The named experiments run
// through exactly the code path the flags use, so a config file
// reproduces a flag-driven invocation byte for byte; the optional
// matrix then runs on the concurrent scenario runner.
type fileConfig struct {
	// Experiments names harness experiments to run in order.
	Experiments []string `json:"experiments,omitempty"`
	// Scale is "quick" (default) or "full".
	Scale string `json:"scale,omitempty"`
	// Seed is the master seed (default 42, matching the flag).
	Seed *uint64 `json:"seed,omitempty"`
	// Workers bounds matrix-cell concurrency (0 = NumCPU).
	Workers int `json:"workers,omitempty"`
	// Store is an optional result-store JSONL path (same as -store; the
	// flag wins when both are given).
	Store string `json:"store,omitempty"`
	// Matrix is an optional free-form scenario grid.
	Matrix *scenario.Matrix `json:"matrix,omitempty"`
}

func main() {
	os.Exit(run())
}

// run is the testable body of main (exit-once rule).
func run() int {
	expFlag := flag.String("exp", "all", "experiment to run (or 'all')")
	scaleFlag := flag.String("scale", "quick", "quick | full")
	seedFlag := flag.Uint64("seed", 42, "master random seed")
	listFlag := flag.Bool("list", false, "list experiments and registry specs, then exit")
	configFlag := flag.String("config", "", "JSON scenario config (experiments + matrix; see EXPERIMENTS.md); overrides -exp/-scale/-seed")
	storeFlag := flag.String("store", "", "result-store JSONL path: scenario cells (figure grids, config matrices) are served from it when present and written through when computed")
	flag.Parse()

	exps := experiments()
	if *listFlag {
		fmt.Println("experiments:")
		for _, e := range exps {
			fmt.Printf("  %-10s %s\n", e.name, e.desc)
		}
		// Generated from the registries, so this list can never drift
		// from the implemented set.
		fmt.Println("\nregistry specs (usable in -config matrix files):")
		fmt.Printf("  rules:     %s\n", krum.RuleUsage())
		fmt.Printf("  attacks:   %s\n", attack.Usage())
		fmt.Printf("  schedules: %s\n", krum.ScheduleUsage())
		fmt.Printf("  workloads: %s\n", workload.Usage())
		fmt.Printf("  arrivals:  %s\n", krum.ArrivalUsage())
		return 0
	}

	if *configFlag != "" {
		return runConfig(*configFlag, *storeFlag, exps)
	}

	st, code := openStore(*storeFlag)
	if code != 0 {
		return code
	}
	defer closeStore(st)

	scale, ok := parseScale(*scaleFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick|full)\n", *scaleFlag)
		return 2
	}
	want := strings.Split(*expFlag, ",")
	ran := 0
	for _, e := range exps {
		if !selected(want, e.name) {
			continue
		}
		if err := e.run(os.Stdout, scale, *seedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", e.name, err)
			return 1
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; use -list\n", *expFlag)
		return 2
	}
	return 0
}

// openStore opens the optional result store and routes harness
// scenario runs through it; an empty path is a no-op. The non-zero
// return code reports a failure to the caller.
func openStore(path string) (*store.Store, int) {
	if path == "" {
		return nil, 0
	}
	st, err := store.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "store: %v\n", err)
		return nil, 2
	}
	harness.SetStore(st)
	return st, 0
}

// closeStore prints the session's cache economics and releases the
// store (no-op when no store is configured).
func closeStore(st *store.Store) {
	if st == nil {
		return
	}
	fmt.Printf("\nresult store %s: %s\n", st.Path(), st.Stats())
	harness.SetStore(nil)
	st.Close()
}

// runConfig executes a JSON scenario config: named experiments first
// (identical code path to the flags), then the optional matrix on the
// concurrent runner. storePath (the -store flag) overrides the
// config's "store" key.
func runConfig(path, storePath string, exps []experiment) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "config: %v\n", err)
		return 2
	}
	var cfg fileConfig
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		fmt.Fprintf(os.Stderr, "config %s: %v\n", path, err)
		return 2
	}
	scaleName := cfg.Scale
	if scaleName == "" {
		scaleName = "quick"
	}
	scale, ok := parseScale(scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "config %s: unknown scale %q (quick|full)\n", path, scaleName)
		return 2
	}
	seed := uint64(42)
	if cfg.Seed != nil {
		seed = *cfg.Seed
	}
	if storePath == "" {
		storePath = cfg.Store
	}
	st, code := openStore(storePath)
	if code != 0 {
		return code
	}
	defer closeStore(st)

	for _, name := range cfg.Experiments {
		found := false
		for _, e := range exps {
			if e.name == name {
				found = true
				if err := e.run(os.Stdout, scale, seed); err != nil {
					fmt.Fprintf(os.Stderr, "experiment %s: %v\n", e.name, err)
					return 1
				}
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "config %s: unknown experiment %q; use -list\n", path, name)
			return 2
		}
	}

	if cfg.Matrix != nil {
		if code := runMatrix(*cfg.Matrix, cfg.Workers, st); code != 0 {
			return code
		}
	}
	if len(cfg.Experiments) == 0 && cfg.Matrix == nil {
		fmt.Fprintf(os.Stderr, "config %s: nothing to run (no experiments, no matrix)\n", path)
		return 2
	}
	return 0
}

// runMatrix validates and executes a scenario matrix, streaming per-cell
// progress and rendering a deterministic summary table. When st is
// non-nil, cells already in the store are served from it (marked
// "cached" in the stream) and fresh cells are written through.
func runMatrix(m scenario.Matrix, workers int, st *store.Store) int {
	if err := m.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "matrix: %v\n", err)
		return 2
	}
	total := m.Size()
	fmt.Printf("\n===== scenario matrix — %d cells =====\n", total)
	done := 0
	runner := &scenario.Runner{
		Workers: workers,
		OnCell: func(cr scenario.CellResult) {
			done++
			status := "error"
			if cr.Err == nil {
				switch {
				case cr.Result.Diverged:
					status = fmt.Sprintf("DIVERGED at round %d", cr.Result.DivergedRound)
				case math.IsNaN(cr.Result.FinalTestAccuracy):
					status = "done (no eval)"
				default:
					status = fmt.Sprintf("acc %.4f", cr.Result.FinalTestAccuracy)
				}
				if cr.Cached {
					status += " (cached)"
				}
			}
			fmt.Printf("[%d/%d] %s — %s\n", done, total, cr.Spec.Label(), status)
		},
	}
	if st != nil {
		runner.Store = st
	}
	results, err := runner.Run(m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "matrix: %v\n", err)
		return 1
	}

	fmt.Println()
	tbl := metrics.NewTable("workload", "rule", "attack", "f", "seed", "final acc", "final loss", "diverged", "byz sel rate")
	for _, cr := range results {
		s, r := cr.Spec, cr.Result
		atk := s.Attack
		if atk == "" {
			atk = "none"
		}
		tbl.AddRowf(s.Workload, s.Rule, atk, s.F, s.Seed,
			r.FinalTestAccuracy, r.FinalTestLoss, r.Diverged, r.ByzantineSelectionRate())
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "matrix table: %v\n", err)
		return 1
	}
	return 0
}

func parseScale(name string) (harness.Scale, bool) {
	switch name {
	case "quick":
		return harness.Quick, true
	case "full":
		return harness.Full, true
	default:
		return 0, false
	}
}

func selected(want []string, name string) bool {
	for _, w := range want {
		if w == "all" || strings.TrimSpace(w) == name {
			return true
		}
	}
	return false
}
