// Command krum-experiments regenerates every table and figure of the
// reproduction (see EXPERIMENTS.md for the index):
//
//	krum-experiments -exp all -scale quick
//	krum-experiments -exp fig4 -scale full -seed 7
//
// Experiments: lemma31, fig2, lemma41, prop42, prop43, fig4, fig5,
// fig6, fig7, table1, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"krum/internal/harness"
)

// experiment binds a name to its regenerator.
type experiment struct {
	name string
	desc string
	run  func(w io.Writer, scale harness.Scale, seed uint64) error
}

// wrap adapts a typed harness entry point.
func wrap[T any](f func(io.Writer, harness.Scale, uint64) (T, error)) func(io.Writer, harness.Scale, uint64) error {
	return func(w io.Writer, s harness.Scale, seed uint64) error {
		_, err := f(w, s, seed)
		return err
	}
}

func experiments() []experiment {
	return []experiment{
		{name: "lemma31", desc: "E1: one Byzantine worker controls any linear rule", run: wrap(harness.RunLemma31)},
		{name: "fig2", desc: "E2: medoid collusion vs Krum", run: wrap(harness.RunFig2)},
		{name: "lemma41", desc: "E3: O(n²·d) cost scaling", run: wrap(harness.RunLemma41)},
		{name: "prop42", desc: "E4: (α,f)-Byzantine resilience Monte Carlo", run: wrap(harness.RunProp42)},
		{name: "prop43", desc: "E5: convergence to the flat basin under attack", run: wrap(harness.RunProp43)},
		{name: "fig4", desc: "F4: Gaussian attack accuracy curves", run: wrap(harness.RunFig4)},
		{name: "fig5", desc: "F5: omniscient attack accuracy curves", run: wrap(harness.RunFig5)},
		{name: "fig6", desc: "F6: Multi-Krum trade-off", run: wrap(harness.RunFig6)},
		{name: "fig7", desc: "F7: cost of resilience (mini-batch sweep)", run: wrap(harness.RunFig7)},
		{name: "table1", desc: "T1: Byzantine-selection rate matrix", run: wrap(harness.RunTable1)},
		{name: "ablation", desc: "E6: hidden-coordinate attack, Krum vs Bulyan", run: wrap(harness.RunAblation)},
		{name: "noniid", desc: "E7: label-skewed honest workers (i.i.d. assumption violated)", run: wrap(harness.RunNonIID)},
	}
}

func main() {
	os.Exit(run())
}

// run is the testable body of main (exit-once rule).
func run() int {
	expFlag := flag.String("exp", "all", "experiment to run (or 'all')")
	scaleFlag := flag.String("scale", "quick", "quick | full")
	seedFlag := flag.Uint64("seed", 42, "master random seed")
	listFlag := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	exps := experiments()
	if *listFlag {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return 0
	}

	var scale harness.Scale
	switch *scaleFlag {
	case "quick":
		scale = harness.Quick
	case "full":
		scale = harness.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick|full)\n", *scaleFlag)
		return 2
	}

	want := strings.Split(*expFlag, ",")
	ran := 0
	for _, e := range exps {
		if !selected(want, e.name) {
			continue
		}
		if err := e.run(os.Stdout, scale, *seedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", e.name, err)
			return 1
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; use -list\n", *expFlag)
		return 2
	}
	return 0
}

func selected(want []string, name string) bool {
	for _, w := range want {
		if w == "all" || strings.TrimSpace(w) == name {
			return true
		}
	}
	return false
}
