package krum_test

// Benchmarks regenerating every table and figure of the reproduction
// (see EXPERIMENTS.md): one testing.B per artifact, each running the
// quick-scale experiment end to end, plus microbenchmarks of the Krum
// kernel across the Lemma 4.1 (n, d) grid. Run with
//
//	go test -bench=. -benchmem
//
// The figure benches report the headline metric of their artifact as a
// custom b.ReportMetric value so the bench log doubles as a results
// table.

import (
	"fmt"
	"io"
	"os"
	"testing"

	"krum"
	"krum/internal/harness"
	"krum/internal/vec"
	"krum/scenario"
	"krum/scenario/store"
)

// benchSeed keeps bench results stable across runs.
const benchSeed = 42

// BenchmarkLemma31 regenerates E1 (one Byzantine worker vs linear
// rules).
func BenchmarkLemma31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunLemma31(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.KrumFinalAccuracy, "krum-acc")
		b.ReportMetric(boolMetric(res.AverageDiverged || res.AverageFinalAccuracy < 0.6), "avg-destroyed")
	}
}

// BenchmarkFig2Medoid regenerates E2 (medoid collusion).
func BenchmarkFig2Medoid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig2(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		// Row for f=2 carries the headline claim.
		b.ReportMetric(res.Rows[1].MedoidByzRate, "medoid-captured")
		b.ReportMetric(res.Rows[1].KrumByzRate, "krum-captured")
	}
}

// BenchmarkLemma41Fit regenerates E3 (cost-model fit quality).
func BenchmarkLemma41Fit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunLemma41(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.R2, "n2d-fit-r2")
	}
}

// BenchmarkProp42 regenerates E4 (resilience Monte Carlo).
func BenchmarkProp42(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunProp42(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		pass := 0
		for _, row := range res.Rows {
			if row.SinAlpha < 1 && row.KrumConditionI && row.KrumConditionII {
				pass++
			}
		}
		b.ReportMetric(float64(pass), "krum-resilient-rows")
	}
}

// BenchmarkProp43 regenerates E5 (convergence under attack).
func BenchmarkProp43(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunProp43(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReductionFactor, "gradnorm-reduction")
	}
}

// BenchmarkFig4Gaussian regenerates F4 (Gaussian attack curves).
func BenchmarkFig4Gaussian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig4(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.KrumByzFinal, "krum-byz-acc")
		b.ReportMetric(res.AvgByzFinal, "avg-byz-acc")
	}
}

// BenchmarkFig5Omniscient regenerates F5 (omniscient attack curves).
func BenchmarkFig5Omniscient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig5(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.KrumByzFinal, "krum-byz-acc")
		b.ReportMetric(boolMetric(res.AvgByzDiverged || res.AvgByzFinal < 0.3), "avg-destroyed")
	}
}

// BenchmarkFig6MultiKrum regenerates F6 (Multi-Krum trade-off).
func BenchmarkFig6MultiKrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig6(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].ByzFinal, "m1-byz-acc")
		b.ReportMetric(res.Rows[len(res.Rows)-1].ByzFinal, "mn-byz-acc")
	}
}

// BenchmarkFig7Batch regenerates F7 (cost of resilience).
func BenchmarkFig7Batch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig7(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(res.AverageCleanFinal-last.KrumByzFinal, "residual-gap")
	}
}

// BenchmarkTable1Selection regenerates T1 (selection-rate matrix).
func BenchmarkTable1Selection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable1(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if cell := res.Cell("gaussian(sigma=200)", "krum"); cell != nil {
			b.ReportMetric(cell.ByzSelectedRate, "krum-gauss-selrate")
		}
	}
}

// --- Kernel microbenchmarks: the Lemma 4.1 grid -----------------------

// benchVectors builds n random d-dimensional proposals.
func benchVectors(n, d int) [][]float64 {
	rng := vec.NewRNG(benchSeed)
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NewNormal(d, 0, 1)
	}
	return vs
}

// BenchmarkKrumScaling measures the Krum kernel across the (n, d) grid;
// ns/op should scale as n²·d (Lemma 4.1).
func BenchmarkKrumScaling(b *testing.B) {
	for _, n := range []int{5, 10, 20, 40, 80} {
		for _, d := range []int{100, 1000, 10000} {
			b.Run(fmt.Sprintf("n=%d/d=%d", n, d), func(b *testing.B) {
				vs := benchVectors(n, d)
				rule := krum.NewKrum((n - 3) / 2)
				dst := make([]float64, d)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := rule.Aggregate(dst, vs); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n*n*d), "n2d")
			})
		}
	}
}

// BenchmarkRules compares every aggregation rule at one operating
// point, including the exponential minimal-diameter rule the paper
// rejects on cost grounds.
func BenchmarkRules(b *testing.B) {
	const n, d, f = 15, 1000, 4
	vs := benchVectors(n, d)
	dst := make([]float64, d)
	rules := map[string]krum.Rule{
		"krum":            krum.NewKrum(f),
		"multikrum":       krum.NewMultiKrum(f, n-f),
		"average":         krum.Average{},
		"medoid":          krum.Medoid{},
		"coordmedian":     krum.CoordMedian{},
		"trimmedmean":     krum.TrimmedMean{Trim: f},
		"geomedian":       krum.GeoMedian{},
		"minimaldiameter": krum.NewMinimalDiameter(f),
		"bulyan":          krum.NewBulyan(3), // n = 15 ≥ 4·3+3
		"clippedmean":     krum.ClippedMean{},
	}
	for _, name := range []string{"krum", "multikrum", "average", "medoid", "coordmedian", "trimmedmean", "geomedian", "minimaldiameter", "bulyan", "clippedmean"} {
		rule := rules[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := rule.Aggregate(dst, vs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBulyanMemoized measures the memoized Bulyan at the
// iterated-Krum stress point (n = 40, d = 10000, θ = 31): the selection
// phase builds ONE distance matrix and masks winners out of it, so the
// cost is Θ(n²·d + θ·n²) instead of the seed's Θ(θ·n²·d). See
// BenchmarkBulyanSelectSeedReference in internal/core for the
// pool-rebuilding baseline it replaces (~10× slower at this point).
func BenchmarkBulyanMemoized(b *testing.B) {
	const n, d = 40, 10000
	f := (n - 3) / 4
	vs := benchVectors(n, d)
	dst := make([]float64, d)
	rule := krum.NewBulyan(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rule.Aggregate(dst, vs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n-2*f), "theta")
}

// BenchmarkDistanceMatrix contrasts the distance-matrix kernels at the
// Lemma 4.1 stress point (n = 40, d = 10000): the seed's per-pair
// subtract-square loop ("naive") against the blocked Gram-trick kernel
// (SSE2 2×4 tiles on amd64), serial and parallel. The blocked/naive
// ratio is the tracked speedup (≥3× on amd64). The parallel variant is
// recorded for the trajectory but tracks the blocked timing here: the
// working set (~7.8 Mflop) sits under the kernel's minParallelFlops
// threshold, so NewDistanceMatrixParallel degrades to the serial
// blocked kernel rather than paying goroutine overhead for no win.
// Goroutines engage at larger working sets (see BenchmarkKrumParallel
// at d = 100000 and BenchmarkDistanceMatrixLargeN).
func BenchmarkDistanceMatrix(b *testing.B) {
	const n, d = 40, 10000
	vs := benchVectors(n, d)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vec.NewDistanceMatrixNaive(vs)
		}
	})
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vec.NewDistanceMatrix(vs)
		}
	})
	b.Run("blocked-parallel8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vec.NewDistanceMatrixParallel(vs, 8)
		}
	})
	// Per-kernel-tier variants of the blocked build (the "blocked"
	// subtest above runs whatever tier the process auto-selected; these
	// pin each tier explicitly so the trajectory records the per-ISA
	// spread — the avx2/sse2 ratio is the tentpole speedup).
	for _, kt := range vec.AvailableTiers() {
		b.Run("blocked-"+kt.String(), func(b *testing.B) {
			restore, err := vec.SetKernelTier(kt)
			if err != nil {
				b.Skip(err)
			}
			defer restore()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vec.NewDistanceMatrix(vs)
			}
		})
	}
}

// BenchmarkDistanceMatrixIncremental measures the cross-round
// incremental path at the same stress point: UpdateRows over change
// sets of c ∈ {1, 2, 4, 10} proposals (2.5%–25% of n) against the
// full blocked rebuild every round ("full-rebuild"). Steady-state cost
// is Θ(c·n·d) vs Θ(n²·d), so small change-sets win by n/(2c)-ish;
// the recorded full-rebuild/changed ratios are the tracked numbers.
func BenchmarkDistanceMatrixIncremental(b *testing.B) {
	const n, d = 40, 10000
	vs := benchVectors(n, d)
	b.Run("full-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vec.NewDistanceMatrix(vs)
		}
	})
	for _, c := range []int{1, 2, 4, 10} {
		b.Run(fmt.Sprintf("changed=%d", c), func(b *testing.B) {
			m := vec.NewDistanceMatrix(vs)
			// Two alternating variants of the changed rows, so every
			// iteration installs genuinely different vectors.
			variants := [2][][]float64{benchVectors(n, d), benchVectors(n, d)}
			changed := make([]int, c)
			for k := range changed {
				changed[k] = (k * 7) % n
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.UpdateRows(changed, variants[i%2])
			}
			b.ReportMetric(float64(c)/float64(n), "changed-frac")
		})
	}
}

// BenchmarkRunIncrementalAsync measures the bounded-staleness mode's
// steady-state economics at the Lemma 4.1 stress point (n = 40,
// d = 10000): a round stream driven by a bernoulli(p=0.25,tau=8)
// arrival trace, with each round's distance work done either as a full
// blocked rebuild or through the cross-round incremental cache (one
// round-0 build, then UpdateRows over each round's arrival set). Both
// arms walk the identical proposal history, so the
// full-rebuild/incremental ns/op ratio is the tracked async cache win
// (acceptance: ≥ 2× under this traffic).
func BenchmarkRunIncrementalAsync(b *testing.B) {
	const n, d, rounds = 40, 10000, 32
	proc, err := krum.ParseArrival("bernoulli(p=0.25,tau=8)")
	if err != nil {
		b.Fatal(err)
	}
	trace := proc.NewTrace(benchSeed, n)
	rng := vec.NewRNG(benchSeed)

	// Proposal history: states[r] holds the full n-vector state after
	// round r's arrivals installed fresh proposals; unchanged rows share
	// their backing arrays with the previous round.
	states := make([][][]float64, rounds)
	changed := make([][]int, rounds)
	states[0] = benchVectors(n, d)
	changed[0] = trace.Next()
	totalChanged := 0
	for r := 1; r < rounds; r++ {
		arrivals := trace.Next()
		states[r] = make([][]float64, n)
		copy(states[r], states[r-1])
		for _, i := range arrivals {
			states[r][i] = rng.NewNormal(d, 0, 1)
		}
		changed[r] = arrivals
		totalChanged += len(arrivals)
	}
	frac := float64(totalChanged) / float64((rounds-1)*n)

	b.Run("full-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r < rounds; r++ {
				vec.NewDistanceMatrix(states[r])
			}
		}
		b.ReportMetric(frac, "changed-frac")
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := vec.NewDistanceMatrix(states[0])
			for r := 1; r < rounds; r++ {
				m.UpdateRows(changed[r], states[r])
			}
		}
		b.ReportMetric(frac, "changed-frac")
	})
}

// BenchmarkScenarioMatrixRunner measures scenario-matrix throughput on
// the concurrent runner — cells/sec over a 12-cell (rules × attacks ×
// seeds) grid of short training runs. This is the tracked metric for
// the many-concurrent-experiments serving path (`make bench`).
func BenchmarkScenarioMatrixRunner(b *testing.B) {
	m := scenario.Matrix{
		Base: scenario.Spec{
			Workload:  "gmm(k=3,dim=6,radius=4,sigma=0.5)",
			Rule:      "krum",
			Schedule:  "inverset(gamma=0.5,power=0.75,t0=50)",
			N:         9,
			F:         2,
			Rounds:    20,
			BatchSize: 8,
			Seed:      benchSeed,
		},
		Rules:   []string{"krum", "average", "multikrum(m=5)"},
		Attacks: []string{"none", "gaussian(sigma=200)"},
		Seeds:   []uint64{1, 2},
	}
	cells := m.Size()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&scenario.Runner{}).Run(m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkRunnerWithStore measures the content-addressed result
// store's warm-vs-cold economics on the BenchmarkScenarioMatrixRunner
// grid (tracked by `make bench`): "cold" runs the matrix into a fresh
// in-memory store every iteration (training + write-through), "warm"
// re-runs it against a pre-populated store, where every cell is a hit
// and no training or distance-matrix work happens. The cold/warm ratio
// is the speedup a repeated grid enjoys; warm ns/op is the pure
// store-serving overhead (hashing + decode).
func BenchmarkRunnerWithStore(b *testing.B) {
	m := scenario.Matrix{
		Base: scenario.Spec{
			Workload:  "gmm(k=3,dim=6,radius=4,sigma=0.5)",
			Rule:      "krum",
			Schedule:  "inverset(gamma=0.5,power=0.75,t0=50)",
			N:         9,
			F:         2,
			Rounds:    20,
			BatchSize: 8,
			Seed:      benchSeed,
		},
		Rules:   []string{"krum", "average", "multikrum(m=5)"},
		Attacks: []string{"none", "gaussian(sigma=200)"},
		Seeds:   []uint64{1, 2},
	}
	cells := m.Size()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := store.NewMemory()
			if _, err := (&scenario.Runner{Store: st}).Run(m); err != nil {
				b.Fatal(err)
			}
			if got := st.Stats().Saves; got != cells {
				b.Fatalf("cold run saved %d cells, want %d", got, cells)
			}
		}
		b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/s")
	})

	b.Run("warm", func(b *testing.B) {
		st := store.NewMemory()
		if _, err := (&scenario.Runner{Store: st}).Run(m); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results, err := (&scenario.Runner{Store: st}).Run(m)
			if err != nil {
				b.Fatal(err)
			}
			for j := range results {
				if !results[j].Cached {
					b.Fatalf("cell %d missed the warm store", j)
				}
			}
		}
		b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/s")
	})
}

// BenchmarkResilienceVerifier measures the Definition 3.2 Monte-Carlo
// verifier throughput.
func BenchmarkResilienceVerifier(b *testing.B) {
	g := make([]float64, 10)
	vec.Fill(g, 1)
	for i := 0; i < b.N; i++ {
		if _, err := krum.VerifyResilience(krum.ResilienceConfig{
			Rule: krum.NewKrum(3), N: 15, F: 3, Gradient: g, Sigma: 0.05,
			Trials: 200, Seed: benchSeed,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkKrumParallel contrasts the serial and goroutine-parallel
// distance matrix in the deep-learning regime d ≫ n (the Lemma 4.1
// cost lives almost entirely there).
func BenchmarkKrumParallel(b *testing.B) {
	const n, d, f = 30, 100000, 8
	vs := benchVectors(n, d)
	dst := make([]float64, d)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rule := &krum.Krum{F: f, Parallel: workers}
			for i := 0; i < b.N; i++ {
				if err := rule.Aggregate(dst, vs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHiddenCoordinate regenerates the E6 extension table.
func BenchmarkAblationHiddenCoordinate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunAblation(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if r := res.Row("bulyan"); r != nil {
			b.ReportMetric(r.CoordError, "bulyan-coord-err")
		}
		if r := res.Row("average"); r != nil {
			b.ReportMetric(r.CoordError, "avg-coord-err")
		}
	}
}

// BenchmarkNonIID regenerates the E7 extension table (the i.i.d.
// assumption stress test).
func BenchmarkNonIID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunNonIID(io.Discard, harness.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if r := res.Row("krum"); r != nil {
			b.ReportMetric(r.Gap, "krum-skew-gap")
		}
		if r := res.Row("average"); r != nil {
			b.ReportMetric(r.Gap, "avg-skew-gap")
		}
	}
}

// --- Large-n tier: screened selection ---------------------------------

// benchByzVectors builds n proposals in the Byzantine regime the
// screened selection targets: n−f honest workers drawing gradients at
// σ = 1 plus f colluding outliers at σ = 200 (the attack.Gaussian
// scale used throughout the experiment suite). The norm screen can
// only discard rows that are geometrically far from the honest
// cluster, so this is the input family where pruning pays.
func benchByzVectors(n, f, d int) [][]float64 {
	rng := vec.NewRNG(benchSeed)
	vs := make([][]float64, n)
	for i := range vs {
		sigma := 1.0
		if i >= n-f {
			sigma = 200.0
		}
		vs[i] = rng.NewNormal(d, 0, sigma)
	}
	return vs
}

// screenedTiers is the large-n benchmark tier shared by
// BenchmarkKrumScreened and BenchmarkDistanceMatrixLargeN. d shrinks
// as n grows to keep wall clock and the Θ(n²) matrix footprint sane
// (n = 10000 already needs ~800 MB for the distance matrix alone);
// the 10k point only runs when KRUM_LARGE_BENCH is set — use
// `make bench-large`.
var screenedTiers = []struct {
	n, d  int
	large bool
}{
	{n: 100, d: 1000},
	{n: 1000, d: 1000},
	{n: 10000, d: 128, large: true},
}

// BenchmarkKrumScreened contrasts dense and screened Krum selection
// across the large-n tier on Byzantine-regime inputs. The screened
// subtests report two tracked metrics: pruned/op (rows discarded per
// selection purely from norm/triangle lower bounds) and dotfrac (the
// fraction of the n² full inner products the screened path actually
// computed — the acceptance target is < 0.50 at n = 1000). Both paths
// select the same index by construction (bounds may prune, never
// decide; the exact re-check decides), which the bench re-asserts
// before timing.
func BenchmarkKrumScreened(b *testing.B) {
	for _, tier := range screenedTiers {
		if tier.large && os.Getenv("KRUM_LARGE_BENCH") == "" {
			continue
		}
		n, d := tier.n, tier.d
		f := (n - 3) / 2
		vs := benchByzVectors(n, f, d)
		rule := krum.NewKrum(f)

		dense := krum.NewEngine(0)
		denseSel, err := dense.Select(rule, vs)
		if err != nil {
			b.Fatal(err)
		}
		screened := krum.NewEngine(0).EnableScreening()
		screenedSel, err := screened.Select(rule, vs)
		if err != nil {
			b.Fatal(err)
		}
		if len(denseSel) != 1 || len(screenedSel) != 1 || denseSel[0] != screenedSel[0] {
			b.Fatalf("n=%d d=%d: screened selection %v != dense %v", n, d, screenedSel, denseSel)
		}
		// The selection is deterministic, so one un-timed screener run
		// yields the exact per-op work profile for the metrics below.
		scr := vec.NewScreener(vs)
		scr.SelectKSmallest(n-f-2, 1)
		st := scr.Stats()

		b.Run(fmt.Sprintf("n=%d/d=%d/dense", n, d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dense.Select(rule, vs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/d=%d/screened", n, d), func(b *testing.B) {
			start := vec.ScreenPruneCount()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := screened.Select(rule, vs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(vec.ScreenPruneCount()-start)/float64(b.N), "pruned/op")
			b.ReportMetric(float64(st.Dots)/(float64(n)*float64(n)), "dotfrac")
		})
		// Per-kernel-tier screened selection: the bound computation and
		// the exact re-check both ride the tier kernels, so the tier
		// spread shows up here too (d = 1000 keeps the dots dominant).
		for _, kt := range vec.AvailableTiers() {
			b.Run(fmt.Sprintf("n=%d/d=%d/screened-%s", n, d, kt), func(b *testing.B) {
				restore, err := vec.SetKernelTier(kt)
				if err != nil {
					b.Skip(err)
				}
				defer restore()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := screened.Select(rule, vs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDistanceMatrixLargeN measures the full-matrix kernels at
// the large-n tier, where — unlike the n = 40 stress point of
// BenchmarkDistanceMatrix — the total work clears the kernel's
// minParallelFlops threshold and the parallel build genuinely engages.
// The blocked/parallel8 ratio at n ≥ 1000 is the tracked number.
func BenchmarkDistanceMatrixLargeN(b *testing.B) {
	for _, tier := range screenedTiers {
		if tier.large && os.Getenv("KRUM_LARGE_BENCH") == "" {
			continue
		}
		n, d := tier.n, tier.d
		vs := benchVectors(n, d)
		b.Run(fmt.Sprintf("n=%d/d=%d/blocked", n, d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vec.NewDistanceMatrix(vs)
			}
		})
		b.Run(fmt.Sprintf("n=%d/d=%d/parallel8", n, d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vec.NewDistanceMatrixParallel(vs, 8)
			}
		})
	}
}
