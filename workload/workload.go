// Package workload is the central workload registry: it pairs the
// dataset substrates of package data with matching model architectures
// from package model and makes the bundles constructible from compact
// spec strings — the fourth axis of the experiment grid next to rules
// (internal/core), attacks (attack) and schedules (internal/sgd). Spec
// strings take the form
//
//	mnist(size=16,hidden=48) | spambase(spamrate=0.394) |
//	gmm(k=3,dim=8) | noniid(base=mnist(size=10,hidden=16),classes=3)
//
// Parameter values may themselves be specs (noniid wraps another
// workload), and every parsed Workload records the canonical spec that
// rebuilds it, so workloads round-trip through JSON scenario files:
// Parse(ctx, w.Spec) reconstructs w.
package workload

import (
	"errors"
	"fmt"

	"krum/data"
	"krum/internal/spec"
	"krum/model"
)

// ErrBadSpec is returned (wrapped) for malformed or unknown workload
// specs.
var ErrBadSpec = errors.New("workload: bad spec")

// SpecContext supplies the deterministic seed every workload factory
// draws its dataset structure and model initialization from.
type SpecContext struct {
	// Seed drives dataset generation and model weight initialization.
	Seed uint64
}

// Workload bundles a dataset with a matching model architecture — the
// unit the scenario matrix and the CLI binaries select by spec.
type Workload struct {
	// Name is the registry identifier ("mnist", "gmm", ...).
	Name string
	// Spec is the canonical spec string: parsing it with the same
	// SpecContext reconstructs this workload exactly.
	Spec string
	// Dataset is the sample stream.
	Dataset data.Dataset
	// Model is the architecture (callers clone it before training).
	Model model.Model
	// Description is a human-readable summary.
	Description string
}

// SpecArgs holds the key=value parameters of a parsed workload spec.
type SpecArgs = spec.Args

// Factory builds a Workload from a parsed spec.
type Factory = spec.Factory[*Workload, SpecContext]

var registry = spec.NewRegistry[*Workload, SpecContext]("workload", ErrBadSpec)

// Register adds a workload factory under the given (case-insensitive)
// name; it panics on duplicates — a programmer error at init time.
func Register(name string, f Factory) { registry.Register(name, f) }

// Parse constructs the workload described by spec. Unknown names,
// unknown parameter keys, and malformed values are all reported as
// wrapped ErrBadSpec.
func Parse(ctx SpecContext, s string) (*Workload, error) { return registry.Parse(ctx, s) }

// Names returns the registered workload names, sorted.
func Names() []string { return registry.Names() }

// Usage returns a generated one-line summary of every registered
// workload with its parameters — CLI help text is built from this so it
// can never drift from the implemented set.
func Usage() string { return registry.Usage() }

// init registers the built-in workloads. Third-party workloads can call
// Register from their own init functions.
func init() {
	Register("mnist", Factory{
		Params: []string{"size", "hidden", "noise"},
		Doc:    "synthetic MNIST digits + one-hidden-layer MLP (the paper's image task)",
		New: func(ctx SpecContext, a SpecArgs) (*Workload, error) {
			size, err := a.Int("size", 16)
			if err != nil {
				return nil, err
			}
			hidden, err := a.Int("hidden", 48)
			if err != nil {
				return nil, err
			}
			if hidden < 1 {
				return nil, fmt.Errorf("hidden = %d must be positive: %w", hidden, ErrBadSpec)
			}
			noise, err := a.Float("noise", 0.05)
			if err != nil {
				return nil, err
			}
			ds, err := data.NewSyntheticMNIST(size, noise)
			if err != nil {
				return nil, err
			}
			mlp, err := model.NewMLP(ds.Dim(), []int{hidden}, 10, model.ActReLU, model.SoftmaxCrossEntropy{}, ctx.Seed)
			if err != nil {
				return nil, err
			}
			return &Workload{
				Name:    "mnist",
				Spec:    fmt.Sprintf("mnist(size=%d,hidden=%d,noise=%g)", size, hidden, noise),
				Dataset: ds,
				Model:   mlp,
				Description: fmt.Sprintf("%dx%d synthetic MNIST, MLP(%d hidden, d=%d)",
					size, size, hidden, mlp.Dim()),
			}, nil
		},
	})
	Register("mnistconv", Factory{
		Params: []string{"size", "channels", "hidden", "noise"},
		Doc:    "synthetic MNIST digits + small ConvNet",
		New: func(ctx SpecContext, a SpecArgs) (*Workload, error) {
			size, err := a.Int("size", 16)
			if err != nil {
				return nil, err
			}
			channels, err := a.Int("channels", 8)
			if err != nil {
				return nil, err
			}
			hidden, err := a.Int("hidden", 32)
			if err != nil {
				return nil, err
			}
			noise, err := a.Float("noise", 0.05)
			if err != nil {
				return nil, err
			}
			ds, err := data.NewSyntheticMNIST(size, noise)
			if err != nil {
				return nil, err
			}
			conv, err := model.NewConvNet(size, size, channels, hidden, 10, ctx.Seed)
			if err != nil {
				return nil, err
			}
			return &Workload{
				Name:    "mnistconv",
				Spec:    fmt.Sprintf("mnistconv(size=%d,channels=%d,hidden=%d,noise=%g)", size, channels, hidden, noise),
				Dataset: ds,
				Model:   conv,
				Description: fmt.Sprintf("%dx%d synthetic MNIST, ConvNet(d=%d)",
					size, size, conv.Dim()),
			}, nil
		},
	})
	Register("spambase", Factory{
		Params: []string{"spamrate"},
		Doc:    "synthetic UCI Spambase + logistic regression (the paper's spam task)",
		New: func(ctx SpecContext, a SpecArgs) (*Workload, error) {
			rate, err := a.Float("spamrate", 0.394)
			if err != nil {
				return nil, err
			}
			ds, err := data.NewSyntheticSpambase(rate, ctx.Seed)
			if err != nil {
				return nil, err
			}
			lr, err := model.NewLogistic(ds.Dim(), ctx.Seed+1)
			if err != nil {
				return nil, err
			}
			return &Workload{
				Name:    "spambase",
				Spec:    fmt.Sprintf("spambase(spamrate=%g)", rate),
				Dataset: ds,
				Model:   lr,
				Description: fmt.Sprintf("synthetic spambase (%d features), logistic regression (d=%d)",
					ds.Dim(), lr.Dim()),
			}, nil
		},
	})
	Register("gmm", Factory{
		Params: []string{"k", "dim", "radius", "sigma"},
		Doc:    "k-class Gaussian mixture + softmax classifier (smallest mis-aggregation-visible task)",
		New: func(ctx SpecContext, a SpecArgs) (*Workload, error) {
			k, err := a.Int("k", 3)
			if err != nil {
				return nil, err
			}
			dim, err := a.Int("dim", 8)
			if err != nil {
				return nil, err
			}
			radius, err := a.Float("radius", 4)
			if err != nil {
				return nil, err
			}
			sigma, err := a.Float("sigma", 0.5)
			if err != nil {
				return nil, err
			}
			ds, err := data.NewGaussianMixture(k, dim, radius, sigma, ctx.Seed)
			if err != nil {
				return nil, err
			}
			clf, err := model.NewSoftmaxClassifier(dim, k, ctx.Seed+1)
			if err != nil {
				return nil, err
			}
			return &Workload{
				Name:    "gmm",
				Spec:    fmt.Sprintf("gmm(k=%d,dim=%d,radius=%g,sigma=%g)", k, dim, radius, sigma),
				Dataset: ds,
				Model:   clf,
				Description: fmt.Sprintf("%d-class Gaussian mixture, softmax classifier (d=%d)",
					k, clf.Dim()),
			}, nil
		},
	})
	Register("regression", Factory{
		Params: []string{"in", "out", "noise"},
		Doc:    "linear regression stream, quadratic cost (Proposition 4.3's strongly convex workload)",
		New: func(ctx SpecContext, a SpecArgs) (*Workload, error) {
			in, err := a.Int("in", 12)
			if err != nil {
				return nil, err
			}
			out, err := a.Int("out", 1)
			if err != nil {
				return nil, err
			}
			noise, err := a.Float("noise", 0.2)
			if err != nil {
				return nil, err
			}
			ds, err := data.NewLinearRegressionStream(in, out, noise, ctx.Seed)
			if err != nil {
				return nil, err
			}
			lr, err := model.NewLinearRegression(in, out, ctx.Seed+1)
			if err != nil {
				return nil, err
			}
			return &Workload{
				Name:        "regression",
				Spec:        fmt.Sprintf("regression(in=%d,out=%d,noise=%g)", in, out, noise),
				Dataset:     ds,
				Model:       lr,
				Description: fmt.Sprintf("linear regression stream, quadratic cost (d=%d)", lr.Dim()),
			}, nil
		},
	})
	Register("noniid", Factory{
		Params: []string{"base", "classes"},
		Doc:    "class-restricted view of a base workload (violates the i.i.d. assumption)",
		New: func(ctx SpecContext, a SpecArgs) (*Workload, error) {
			baseSpec := a.String("base", "")
			if baseSpec == "" {
				return nil, fmt.Errorf("noniid needs a base workload spec: %w", ErrBadSpec)
			}
			if !a.Has("classes") {
				return nil, fmt.Errorf("noniid needs an explicit class count: %w", ErrBadSpec)
			}
			classes, err := a.Int("classes", 0)
			if err != nil {
				return nil, err
			}
			base, err := Parse(ctx, baseSpec)
			if err != nil {
				return nil, fmt.Errorf("base workload: %w", err)
			}
			k := base.Dataset.OutDim()
			if classes < 1 || classes >= k {
				return nil, fmt.Errorf("classes = %d outside [1, %d): %w", classes, k, ErrBadSpec)
			}
			kept := make([]int, classes)
			for i := range kept {
				kept[i] = i
			}
			filtered, err := data.NewClassFilter(base.Dataset, kept)
			if err != nil {
				return nil, err
			}
			return &Workload{
				Name:        "noniid",
				Spec:        fmt.Sprintf("noniid(base=%s,classes=%d)", base.Spec, classes),
				Dataset:     filtered,
				Model:       base.Model,
				Description: fmt.Sprintf("%s, restricted to the first %d classes", base.Description, classes),
			}, nil
		},
	})
}
