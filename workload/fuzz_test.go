package workload

import (
	"errors"
	"math"
	"strconv"
	"testing"

	"krum/internal/spec"
)

// fuzzGuardErr is a throwaway sentinel for the guard's structural
// pre-parse; the real sentinel checks happen in Parse itself.
var fuzzGuardErr = errors.New("workload fuzz guard")

// oversizedSpec reports whether any numeric parameter in s (or a
// nested spec value, noniid-style) exceeds the fuzz budget. Workload
// factories construct datasets and models EAGERLY, so an unguarded
// "mnist(size=999999)" would try to allocate a gigapixel dataset —
// the guard keeps the fuzzer exploring parser behavior instead of
// OOM-killing the process. Structurally malformed input passes the
// guard untouched: Parse must reject it gracefully itself.
func oversizedSpec(s string, depth int) bool {
	if depth > 3 {
		return true
	}
	_, args, err := spec.Parse("workload", fuzzGuardErr, s)
	if err != nil {
		return false
	}
	for _, v := range args {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			if math.Abs(f) > 64 {
				return true
			}
			continue
		}
		if oversizedSpec(v, depth+1) {
			return true
		}
	}
	return false
}

// FuzzParseWorkload drives the workload-spec parser with arbitrary
// (size-guarded) input: no input may panic, and any accepted spec must
// round-trip — the constructed workload's canonical Spec string
// reparses, under the same seed context, to the same Spec.
func FuzzParseWorkload(f *testing.F) {
	for _, seed := range []string{
		"mnist", "mnist(size=10,hidden=16)", "mnistconv(size=12,channels=4)",
		"spambase", "spambase(spamrate=0.394)", "gmm(k=3,dim=6,radius=4,sigma=0.5)",
		"regression(dim=8)", "noniid(base=mnist(size=10,hidden=16),classes=3)",
		"MNIST(SIZE=10)", " gmm ( k = 2 ) ",
		"", "(", "mnist(size=)", "mnist(size=0)", "mnist(size=-5)",
		"mnist(hidden=0)", "gmm(k=0)", "noniid(base=nosuchworkload)",
		"noniid(base=noniid(base=mnist))", "nosuchworkload", "mnist(size=8,size=9)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 256 || oversizedSpec(s, 0) {
			t.Skip("outside the fuzz size budget")
		}
		ctx := SpecContext{Seed: 1}
		w, err := Parse(ctx, s) // must not panic, whatever s is
		if err != nil {
			return
		}
		back, err := Parse(ctx, w.Spec)
		if err != nil {
			t.Fatalf("accepted spec %q produced canonical Spec %q that does not reparse: %v", s, w.Spec, err)
		}
		if back.Spec != w.Spec {
			t.Fatalf("Spec round-trip unstable for %q: %q -> %q", s, w.Spec, back.Spec)
		}
		if back.Name != w.Name {
			t.Fatalf("Name changed across reparse for %q: %q -> %q", s, w.Name, back.Name)
		}
	})
}
