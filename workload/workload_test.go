package workload

import (
	"errors"
	"strings"
	"testing"

	"krum/internal/vec"
)

// TestParseRoundTrip: every built-in workload round-trips through its
// canonical Spec string.
func TestParseRoundTrip(t *testing.T) {
	ctx := SpecContext{Seed: 7}
	cases := []struct {
		spec string
		want string
	}{
		{"mnist", "mnist(size=16,hidden=48,noise=0.05)"},
		{"mnist(size=10,hidden=16)", "mnist(size=10,hidden=16,noise=0.05)"},
		{"mnistconv", "mnistconv(size=16,channels=8,hidden=32,noise=0.05)"},
		{"spambase", "spambase(spamrate=0.394)"},
		{"gmm", "gmm(k=3,dim=8,radius=4,sigma=0.5)"},
		{"gmm(k=4,dim=6)", "gmm(k=4,dim=6,radius=4,sigma=0.5)"},
		{"regression", "regression(in=12,out=1,noise=0.2)"},
		{"noniid(base=gmm,classes=2)", "noniid(base=gmm(k=3,dim=8,radius=4,sigma=0.5),classes=2)"},
	}
	for _, tc := range cases {
		w, err := Parse(ctx, tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if w.Spec != tc.want {
			t.Errorf("Parse(%q).Spec = %q, want %q", tc.spec, w.Spec, tc.want)
			continue
		}
		again, err := Parse(ctx, w.Spec)
		if err != nil {
			t.Errorf("round trip Parse(%q): %v", w.Spec, err)
			continue
		}
		if again.Spec != w.Spec {
			t.Errorf("round trip of %q: %q != %q", tc.spec, again.Spec, w.Spec)
		}
		if again.Description != w.Description {
			t.Errorf("%q: descriptions differ: %q != %q", tc.spec, again.Description, w.Description)
		}
		if w.Model.Dim() < 1 || w.Dataset.Dim() < 1 {
			t.Errorf("%q: degenerate workload %+v", tc.spec, w)
		}
	}
}

// TestSameSeedSameModel: parsing the same spec twice with the same seed
// yields identical model parameters — the determinism the scenario
// runner relies on.
func TestSameSeedSameModel(t *testing.T) {
	ctx := SpecContext{Seed: 42}
	a, err := Parse(ctx, "mnist(size=10,hidden=16)")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(ctx, "mnist(size=10,hidden=16)")
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(a.Model.Params(nil), b.Model.Params(nil), 0) {
		t.Error("same spec + same seed produced different initial parameters")
	}
	c, err := Parse(SpecContext{Seed: 43}, "mnist(size=10,hidden=16)")
	if err != nil {
		t.Fatal(err)
	}
	if vec.ApproxEqual(a.Model.Params(nil), c.Model.Params(nil), 0) {
		t.Error("different seeds produced identical initial parameters")
	}
}

func TestParseMalformedSpecs(t *testing.T) {
	ctx := SpecContext{Seed: 1}
	bad := []string{
		"",
		"nosuchworkload",
		"mnist(",
		"mnist(size)",
		"mnist(size=x)",
		"mnist(zz=3)",
		"mnist(size=2)",        // below the generator minimum
		"mnist(hidden=0)",      // degenerate model
		"spambase(spamrate=2)", // prior outside (0, 1)
		"gmm(k=1)",             // too few classes
		"noniid",               // base required
		"noniid(classes=2)",    // base required
		"noniid(base=gmm)",     // classes required
		"noniid(base=gmm,classes=0)",
		"noniid(base=gmm,classes=3)",        // must keep a strict subset
		"noniid(base=nosuch,classes=1)",     // bad nested spec
		"noniid(base=regression,classes=1)", // base is not one-hot
	}
	for _, s := range bad {
		if _, err := Parse(ctx, s); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Parse(%q) = %v, want wrapped ErrBadSpec", s, err)
		}
	}
}

func TestNonIIDRestrictsClasses(t *testing.T) {
	w, err := Parse(SpecContext{Seed: 3}, "noniid(base=gmm(k=3,dim=4),classes=2)")
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(5)
	x := make([]float64, w.Dataset.Dim())
	y := make([]float64, w.Dataset.OutDim())
	for i := 0; i < 200; i++ {
		w.Dataset.Sample(rng, x, y)
		if cls := vec.Argmax(y); cls >= 2 {
			t.Fatalf("sample %d drew excluded class %d", i, cls)
		}
	}
}

func TestUsageListsEveryWorkload(t *testing.T) {
	usage := Usage()
	for _, name := range Names() {
		if !strings.Contains(usage, name) {
			t.Errorf("Usage() omits %q: %s", name, usage)
		}
	}
	if !strings.Contains(usage, "mnist(size,hidden,noise)") {
		t.Errorf("Usage() should document mnist parameters: %s", usage)
	}
}
