package vec

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 collide on %d of 64 outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collide on %d of 64 outputs", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) only produced %d distinct values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("sample mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("sample variance = %v, want ~1", variance)
	}
}

func TestFillNormalParameters(t *testing.T) {
	r := NewRNG(6)
	v := make([]float64, 100000)
	r.FillNormal(v, 3, 2)
	mean := Sum(v) / float64(len(v))
	var ss float64
	for _, x := range v {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / float64(len(v)))
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("sd = %v, want ~2", sd)
	}
}

func TestFillUniformRange(t *testing.T) {
	r := NewRNG(7)
	v := make([]float64, 10000)
	r.FillUniform(v, -2, 5)
	for _, x := range v {
		if x < -2 || x >= 5 {
			t.Fatalf("uniform sample out of [-2,5): %v", x)
		}
	}
	mean := Sum(v) / float64(len(v))
	if math.Abs(mean-1.5) > 0.1 {
		t.Errorf("uniform mean = %v, want ~1.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, idx := range p {
			if idx < 0 || idx >= n || seen[idx] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[idx] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(9)
	v := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	for _, x := range v {
		sum += x
	}
	if sum != 15 {
		t.Errorf("Shuffle changed elements: %v", v)
	}
}
