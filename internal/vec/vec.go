// Package vec provides the dense float64 vector and matrix kernels used
// throughout the repository: BLAS-level-1 style operations, pairwise
// distance computation, partial selection, and deterministic random
// sampling.
//
// The package is deliberately allocation-conscious: every mutating
// operation works in place on caller-provided slices, and the few
// allocating helpers are clearly named (Clone, NewDense, ...). All
// functions treat a nil slice as an empty vector.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned (or caused panics in must-variants)
// when two vectors participating in an operation have different lengths.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// checkLen panics with a descriptive message if the two lengths differ.
// The hot-path kernels use panics rather than error returns, mirroring
// the stdlib convention for programmer errors (e.g. copy of mismatched
// fixed shapes); the boundary APIs in package core validate sizes and
// return errors before calling into these kernels.
func checkLen(op string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("vec: %s: dimension mismatch (%d vs %d): %v", op, a, b, ErrDimensionMismatch))
	}
}

// Dot returns the inner product <a, b>.
func Dot(a, b []float64) float64 {
	checkLen("Dot", len(a), len(b))
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	return math.Sqrt(Norm2(v))
}

// Dist2 returns the squared Euclidean distance between a and b.
// This is the primitive the Krum score is built from.
func Dist2(a, b []float64) float64 {
	checkLen("Dist2", len(a), len(b))
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	return math.Sqrt(Dist2(a, b))
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	checkLen("Axpy", len(x), len(y))
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Add computes dst = a + b. dst may alias a or b.
func Add(dst, a, b []float64) {
	checkLen("Add", len(a), len(b))
	checkLen("Add", len(dst), len(a))
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b. dst may alias a or b.
func Sub(dst, a, b []float64) {
	checkLen("Sub", len(a), len(b))
	checkLen("Sub", len(dst), len(a))
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Mul computes the element-wise (Hadamard) product dst = a ⊙ b.
func Mul(dst, a, b []float64) {
	checkLen("Mul", len(a), len(b))
	checkLen("Mul", len(dst), len(a))
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// Zero sets every element of v to 0.
func Zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to c.
func Fill(v []float64, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Clone returns a freshly allocated copy of v. Clone(nil) returns nil.
func Clone(v []float64) []float64 {
	if v == nil {
		return nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// CloneAll deep-copies a slice of vectors.
func CloneAll(vs [][]float64) [][]float64 {
	if vs == nil {
		return nil
	}
	out := make([][]float64, len(vs))
	for i, v := range vs {
		out[i] = Clone(v)
	}
	return out
}

// Mean computes dst = the arithmetic mean of the vectors vs.
// It panics if vs is empty or dimensions disagree.
func Mean(dst []float64, vs [][]float64) {
	if len(vs) == 0 {
		panic("vec: Mean of zero vectors")
	}
	Zero(dst)
	for _, v := range vs {
		Axpy(1, v, dst)
	}
	Scale(1/float64(len(vs)), dst)
}

// WeightedSum computes dst = Σ w[i]·vs[i].
func WeightedSum(dst []float64, w []float64, vs [][]float64) {
	checkLen("WeightedSum", len(w), len(vs))
	Zero(dst)
	for i, v := range vs {
		Axpy(w[i], v, dst)
	}
}

// MaxAbs returns the largest absolute element of v, or 0 for an empty vector.
func MaxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AllFinite reports whether every element of v is finite (no NaN or Inf).
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether a and b are element-wise equal within tol
// (absolute tolerance).
func ApproxEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, av := range a {
		if math.Abs(av-b[i]) > tol {
			return false
		}
	}
	return true
}

// Clamp limits every element of v to [lo, hi] in place.
func Clamp(v []float64, lo, hi float64) {
	for i, x := range v {
		if x < lo {
			v[i] = lo
		} else if x > hi {
			v[i] = hi
		}
	}
}

// Argmin returns the index of the smallest element of v (first occurrence
// wins ties), or -1 for an empty vector.
func Argmin(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x < v[best] {
			best = i
		}
	}
	return best
}

// Argmax returns the index of the largest element of v (first occurrence
// wins ties), or -1 for an empty vector.
func Argmax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}
