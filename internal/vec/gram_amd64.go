//go:build amd64

package vec

// amd64 dispatch for the Gram microkernels. Three tiers share the seam
// (see tier.go): TierGo runs the pure-Go pair2 references, TierSSE2
// the baseline SSE2 assembly (bit-identical to TierGo — the two 64-bit
// XMM lanes ARE dotPairGo's even/odd accumulator pair), and TierAVX2
// the AVX2+FMA assembly in gram_avx2_amd64.s, whose four fused YMM
// lanes implement the distinct "fma4" canonical order defined by
// dotFMAGo. The tier is chosen once at init (CPUID probe + the
// KRUM_KERNEL_TIER knob) and read here as one atomic load per call —
// noise against the O(d) inner product each call performs.
// gram_test.go pins every tier to its pure-Go reference order and to
// fixed golden vectors.

//go:noescape
func dotSSE2(a, b *float64, n int) float64

//go:noescape
func dot4SSE2(a, b0, b1, b2, b3 *float64, n int, out *[4]float64)

//go:noescape
func dot24SSE2(a0, a1, b0, b1, b2, b3 *float64, n int, out *[8]float64)

//go:noescape
func dotAVX2(a, b *float64, n int) float64

//go:noescape
func dot4AVX2(a, b0, b1, b2, b3 *float64, n int, out *[4]float64)

//go:noescape
func dot24AVX2(a0, a1, b0, b1, b2, b3 *float64, n int, out *[8]float64)

// dotPairBlock returns ⟨a,b⟩ over one depth block (len ≤ gramBlock) in
// the active tier's canonical lane order; the blocked wrapper in
// gram.go composes it across blocks (see the contract there).
func dotPairBlock(a, b []float64) float64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n]
	switch KernelTier() {
	case TierAVX2:
		return dotAVX2(&a[0], &b[0], n)
	case TierGo:
		return dotPairGo(a, b)
	default:
		return dotSSE2(&a[0], &b[0], n)
	}
}

// dot4Block is the one-depth-block 1×4 tile in the active tier's lane
// order; every column is bit-identical to dotPairBlock(a, bi).
func dot4Block(a, b0, b1, b2, b3 []float64) (float64, float64, float64, float64) {
	n := len(a)
	if n == 0 {
		return 0, 0, 0, 0
	}
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	var out [4]float64
	switch KernelTier() {
	case TierAVX2:
		dot4AVX2(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n, &out)
	case TierGo:
		return dot4Go(a, b0, b1, b2, b3)
	default:
		dot4SSE2(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n, &out)
	}
	return out[0], out[1], out[2], out[3]
}

// dot24Block is the one-depth-block 2×4 tile in the active tier's lane
// order; see dot24Go for the layout.
func dot24Block(a0, a1, b0, b1, b2, b3 []float64, out *[8]float64) {
	n := len(a0)
	if n == 0 {
		*out = [8]float64{}
		return
	}
	a1 = a1[:n]
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	switch KernelTier() {
	case TierAVX2:
		dot24AVX2(&a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], n, out)
	case TierGo:
		dot24Go(a0, a1, b0, b1, b2, b3, out)
	default:
		dot24SSE2(&a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], n, out)
	}
}
