//go:build amd64

package vec

// amd64 dispatch for the Gram microkernels: SSE2 is part of the amd64
// baseline, so no feature detection is needed. The assembly keeps the
// canonical even/odd accumulation order of dotPairGo — the two 64-bit
// lanes of one XMM accumulator are exactly the (s0, s1) pair — so the
// results are bit-identical to the pure-Go reference (pinned by
// gram_test.go), just at two multiply-adds per instruction.

//go:noescape
func dotSSE2(a, b *float64, n int) float64

//go:noescape
func dot4SSE2(a, b0, b1, b2, b3 *float64, n int, out *[4]float64)

//go:noescape
func dot24SSE2(a0, a1, b0, b1, b2, b3 *float64, n int, out *[8]float64)

// dotPair returns ⟨a,b⟩; see dotPairGo for the accumulation-order
// contract.
func dotPair(a, b []float64) float64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n]
	return dotSSE2(&a[0], &b[0], n)
}

// dot4 returns ⟨a,b0⟩, ⟨a,b1⟩, ⟨a,b2⟩, ⟨a,b3⟩; see dot4Go for the
// accumulation-order contract.
func dot4(a, b0, b1, b2, b3 []float64) (float64, float64, float64, float64) {
	n := len(a)
	if n == 0 {
		return 0, 0, 0, 0
	}
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	var out [4]float64
	dot4SSE2(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n, &out)
	return out[0], out[1], out[2], out[3]
}

// dot24 computes the 2×4 tile; see dot24Go for the layout and
// accumulation-order contract.
func dot24(a0, a1, b0, b1, b2, b3 []float64, out *[8]float64) {
	n := len(a0)
	if n == 0 {
		*out = [8]float64{}
		return
	}
	a1 = a1[:n]
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	dot24SSE2(&a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], n, out)
}
