//go:build amd64

#include "textflag.h"

// SSE2 Gram microkernels. Both functions keep ONE [even, odd]
// accumulator pair per inner product (the two lanes of an XMM
// register), reduced low+high at the end — the exact accumulation
// order of dotPairGo, so the assembly and the pure-Go reference agree
// bit for bit on every input (see gram.go for the contract and
// gram_test.go for the pin). The speed comes from dot4SSE2's four
// independent column chains: one 128-bit load of a[k:k+2] feeds four
// MULPD/ADDPD pairs, where the scalar loop was bound by its single
// add-latency chain.

// func dotSSE2(a, b *float64, n int) float64
TEXT ·dotSSE2(SB), NOSPLIT, $0-32
	MOVQ  a+0(FP), SI
	MOVQ  b+8(FP), DI
	MOVQ  n+16(FP), CX
	XORPS X0, X0
	XORQ  DX, DX
	MOVQ  CX, AX
	ANDQ  $-2, AX        // AX = n &^ 1: the even prefix handled two at a time
	CMPQ  DX, AX
	JGE   tail
loop:
	MOVUPD (SI)(DX*8), X1
	MOVUPD (DI)(DX*8), X2
	MULPD  X2, X1
	ADDPD  X1, X0        // lanes accumulate (even k, odd k) partial sums
	ADDQ   $2, DX
	CMPQ   DX, AX
	JLT    loop
tail:
	CMPQ DX, CX
	JGE  reduce
	MOVSD (SI)(DX*8), X1
	MOVSD (DI)(DX*8), X2
	MULSD X2, X1
	ADDSD X1, X0         // odd-length remainder joins the even (low) lane
reduce:
	MOVAPD   X0, X1
	UNPCKHPD X1, X1
	ADDSD    X1, X0      // s0 + s1, same final reduction as dotPairGo
	MOVSD    X0, ret+24(FP)
	RET

// func dot4SSE2(a, b0, b1, b2, b3 *float64, n int, out *[4]float64)
TEXT ·dot4SSE2(SB), NOSPLIT, $0-56
	MOVQ  a+0(FP), SI
	MOVQ  b0+8(FP), R8
	MOVQ  b1+16(FP), R9
	MOVQ  b2+24(FP), R10
	MOVQ  b3+32(FP), R11
	MOVQ  n+40(FP), CX
	MOVQ  out+48(FP), BX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORQ  DX, DX
	MOVQ  CX, AX
	ANDQ  $-2, AX
	CMPQ  DX, AX
	JGE   tail4
loop4:
	MOVUPD (SI)(DX*8), X4
	MOVUPD (R8)(DX*8), X5
	MULPD  X4, X5
	ADDPD  X5, X0
	MOVUPD (R9)(DX*8), X6
	MULPD  X4, X6
	ADDPD  X6, X1
	MOVUPD (R10)(DX*8), X7
	MULPD  X4, X7
	ADDPD  X7, X2
	MOVUPD (R11)(DX*8), X8
	MULPD  X4, X8
	ADDPD  X8, X3
	ADDQ   $2, DX
	CMPQ   DX, AX
	JLT    loop4
tail4:
	CMPQ DX, CX
	JGE  reduce4
	MOVSD (SI)(DX*8), X4
	MOVSD (R8)(DX*8), X5
	MULSD X4, X5
	ADDSD X5, X0
	MOVSD (R9)(DX*8), X6
	MULSD X4, X6
	ADDSD X6, X1
	MOVSD (R10)(DX*8), X7
	MULSD X4, X7
	ADDSD X7, X2
	MOVSD (R11)(DX*8), X8
	MULSD X4, X8
	ADDSD X8, X3
reduce4:
	MOVAPD   X0, X4
	UNPCKHPD X4, X4
	ADDSD    X4, X0
	MOVSD    X0, (BX)
	MOVAPD   X1, X5
	UNPCKHPD X5, X5
	ADDSD    X5, X1
	MOVSD    X1, 8(BX)
	MOVAPD   X2, X6
	UNPCKHPD X6, X6
	ADDSD    X6, X2
	MOVSD    X2, 16(BX)
	MOVAPD   X3, X7
	UNPCKHPD X7, X7
	ADDSD    X7, X3
	MOVSD    X3, 24(BX)
	RET

// func dot24SSE2(a0, a1, b0, b1, b2, b3 *float64, n int, out *[8]float64)
//
// The 2×4 tile: accumulators X0..X3 hold a0 against b0..b3, X4..X7
// hold a1 against b0..b3; every streamed 128-bit column load is reused
// by both rows, which is where the tile's bandwidth saving comes from.
TEXT ·dot24SSE2(SB), NOSPLIT, $0-64
	MOVQ  a0+0(FP), SI
	MOVQ  a1+8(FP), DI
	MOVQ  b0+16(FP), R8
	MOVQ  b1+24(FP), R9
	MOVQ  b2+32(FP), R10
	MOVQ  b3+40(FP), R11
	MOVQ  n+48(FP), CX
	MOVQ  out+56(FP), BX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	XORQ  DX, DX
	MOVQ  CX, AX
	ANDQ  $-2, AX
	CMPQ  DX, AX
	JGE   tail24
loop24:
	MOVUPD (SI)(DX*8), X8
	MOVUPD (DI)(DX*8), X9
	MOVUPD (R8)(DX*8), X10
	MOVAPD X10, X11
	MULPD  X8, X10
	ADDPD  X10, X0
	MULPD  X9, X11
	ADDPD  X11, X4
	MOVUPD (R9)(DX*8), X12
	MOVAPD X12, X13
	MULPD  X8, X12
	ADDPD  X12, X1
	MULPD  X9, X13
	ADDPD  X13, X5
	MOVUPD (R10)(DX*8), X14
	MOVAPD X14, X15
	MULPD  X8, X14
	ADDPD  X14, X2
	MULPD  X9, X15
	ADDPD  X15, X6
	MOVUPD (R11)(DX*8), X10
	MOVAPD X10, X11
	MULPD  X8, X10
	ADDPD  X10, X3
	MULPD  X9, X11
	ADDPD  X11, X7
	ADDQ   $2, DX
	CMPQ   DX, AX
	JLT    loop24
tail24:
	CMPQ DX, CX
	JGE  reduce24
	MOVSD (SI)(DX*8), X8
	MOVSD (DI)(DX*8), X9
	MOVSD (R8)(DX*8), X10
	MOVAPD X10, X11
	MULSD X8, X10
	ADDSD X10, X0
	MULSD X9, X11
	ADDSD X11, X4
	MOVSD (R9)(DX*8), X12
	MOVAPD X12, X13
	MULSD X8, X12
	ADDSD X12, X1
	MULSD X9, X13
	ADDSD X13, X5
	MOVSD (R10)(DX*8), X14
	MOVAPD X14, X15
	MULSD X8, X14
	ADDSD X14, X2
	MULSD X9, X15
	ADDSD X15, X6
	MOVSD (R11)(DX*8), X10
	MOVAPD X10, X11
	MULSD X8, X10
	ADDSD X10, X3
	MULSD X9, X11
	ADDSD X11, X7
reduce24:
	MOVAPD   X0, X8
	UNPCKHPD X8, X8
	ADDSD    X8, X0
	MOVSD    X0, (BX)
	MOVAPD   X1, X9
	UNPCKHPD X9, X9
	ADDSD    X9, X1
	MOVSD    X1, 8(BX)
	MOVAPD   X2, X10
	UNPCKHPD X10, X10
	ADDSD    X10, X2
	MOVSD    X2, 16(BX)
	MOVAPD   X3, X11
	UNPCKHPD X11, X11
	ADDSD    X11, X3
	MOVSD    X3, 24(BX)
	MOVAPD   X4, X12
	UNPCKHPD X12, X12
	ADDSD    X12, X4
	MOVSD    X4, 32(BX)
	MOVAPD   X5, X13
	UNPCKHPD X13, X13
	ADDSD    X13, X5
	MOVSD    X5, 40(BX)
	MOVAPD   X6, X14
	UNPCKHPD X14, X14
	ADDSD    X14, X6
	MOVSD    X6, 48(BX)
	MOVAPD   X7, X15
	UNPCKHPD X15, X15
	ADDSD    X15, X7
	MOVSD    X7, 56(BX)
	RET
