package vec

import "sync/atomic"

// matrixBuilds counts DistanceMatrix constructions process-wide; tests
// use it to assert memoization ("exactly one matrix per aggregation").
var matrixBuilds atomic.Uint64

// MatrixBuildCount returns the number of distance matrices built since
// process start. It is test instrumentation: take a snapshot, run the
// code under test, and diff.
func MatrixBuildCount() uint64 { return matrixBuilds.Load() }

// DistanceMatrix holds the full symmetric matrix of pairwise squared
// Euclidean distances between n vectors, stored densely (n×n, row major).
// The diagonal is zero. It is the O(n²·d) object at the heart of Krum
// (Lemma 4.1): building it dominates the aggregation cost.
type DistanceMatrix struct {
	n int
	d []float64 // n*n squared distances, row major
}

// NewDistanceMatrix computes all pairwise squared distances between the
// given vectors. Cost: exactly n·(n−1)/2 distance evaluations of d
// multiply-adds each, i.e. Θ(n²·d).
func NewDistanceMatrix(vectors [][]float64) *DistanceMatrix {
	matrixBuilds.Add(1)
	n := len(vectors)
	m := &DistanceMatrix{n: n, d: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := Dist2(vectors[i], vectors[j])
			m.d[i*n+j] = dist
			m.d[j*n+i] = dist
		}
	}
	return m
}

// N returns the number of vectors the matrix was built from.
func (m *DistanceMatrix) N() int { return m.n }

// At returns the squared distance between vectors i and j.
func (m *DistanceMatrix) At(i, j int) float64 { return m.d[i*m.n+j] }

// Row returns the row of squared distances from vector i to every vector
// (including the zero self-distance). The returned slice aliases internal
// storage and must not be modified.
func (m *DistanceMatrix) Row(i int) []float64 { return m.d[i*m.n : (i+1)*m.n] }

// SumKSmallestExcludingSelf returns the sum of the k smallest squared
// distances from vector i to the other vectors (the self-distance is
// excluded). This is exactly the Krum score s(i) when k = n − f − 2.
//
// The selection runs in O(n·k) time with no allocation beyond a k-sized
// scratch buffer, keeping the overall Krum cost at O(n²·(d + n)) ≈
// O(n²·d) for the high-dimensional regime the paper targets.
func (m *DistanceMatrix) SumKSmallestExcludingSelf(i, k int, scratch []float64) float64 {
	row := m.Row(i)
	return sumKSmallest(row, i, k, scratch)
}

// sumKSmallest sums the k smallest entries of row, skipping index skip.
// scratch must have capacity ≥ k; it is used as a simple binary max-heap
// of the current k smallest values.
func sumKSmallest(row []float64, skip, k int, scratch []float64) float64 {
	if k <= 0 {
		return 0
	}
	heap := scratch[:0]
	for j, v := range row {
		if j == skip {
			continue
		}
		if len(heap) < k {
			heap = append(heap, v)
			siftUp(heap, len(heap)-1)
			continue
		}
		if v < heap[0] {
			heap[0] = v
			siftDown(heap, 0)
		}
	}
	var s float64
	for _, v := range heap {
		s += v
	}
	return s
}

// KSmallestIndices returns the indices of the k smallest entries of vals,
// skipping index skip (pass skip = -1 to consider every index). Ties are
// broken in favour of the smaller index, matching the paper's footnote 3
// tie-break rule. The result is sorted by (value, index).
func KSmallestIndices(vals []float64, skip, k int) []int {
	if k <= 0 {
		return nil
	}
	type entry struct {
		v float64
		i int
	}
	// Insertion into a bounded, sorted slice: O(n·k). k is small
	// relative to n in all our uses (k ≤ n), and this keeps the
	// tie-break deterministic without a full sort.
	best := make([]entry, 0, k)
	for i, v := range vals {
		if i == skip {
			continue
		}
		if len(best) == k && !lessEntry(v, i, best[k-1].v, best[k-1].i) {
			continue
		}
		pos := len(best)
		for pos > 0 && lessEntry(v, i, best[pos-1].v, best[pos-1].i) {
			pos--
		}
		if len(best) < k {
			best = append(best, entry{})
		}
		copy(best[pos+1:], best[pos:len(best)-1])
		best[pos] = entry{v: v, i: i}
	}
	out := make([]int, len(best))
	for i, e := range best {
		out[i] = e.i
	}
	return out
}

func lessEntry(v1 float64, i1 int, v2 float64, i2 int) bool {
	if v1 != v2 {
		return v1 < v2
	}
	return i1 < i2
}

func siftUp(h []float64, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] >= h[i] {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func siftDown(h []float64, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h[l] > h[largest] {
			largest = l
		}
		if r < n && h[r] > h[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
