package vec

import "sync/atomic"

// matrixBuilds counts DistanceMatrix constructions process-wide; tests
// use it to assert memoization ("exactly one matrix per aggregation").
var matrixBuilds atomic.Uint64

// matrixRowUpdates counts incremental row recomputations process-wide;
// tests use it to assert that the cross-round cache actually took the
// incremental path instead of silently rebuilding.
var matrixRowUpdates atomic.Uint64

// MatrixBuildCount returns the number of distance matrices built since
// process start. It is test instrumentation: take a snapshot, run the
// code under test, and diff.
func MatrixBuildCount() uint64 { return matrixBuilds.Load() }

// MatrixRowUpdateCount returns the number of incremental row
// recomputations (UpdateRow / UpdateRows rows) since process start —
// the same snapshot-and-diff instrumentation as MatrixBuildCount.
func MatrixRowUpdateCount() uint64 { return matrixRowUpdates.Load() }

// DistanceMatrix holds the full symmetric matrix of pairwise squared
// Euclidean distances between n vectors, stored densely (n×n, row
// major). The diagonal is zero. It is the O(n²·d) object at the heart
// of Krum (Lemma 4.1): building it dominates the aggregation cost.
//
// Distances are assembled through the Gram trick
// ‖a−b‖² = ‖a‖² + ‖b‖² − 2·⟨a,b⟩ over a register-blocked inner-product
// kernel (see gram.go), with a clamp to zero against the small negative
// values floating-point cancellation can produce. The matrix owns a
// contiguous copy of the input vectors and their squared norms, which
// is what makes the incremental UpdateRow path self-contained: callers
// may mutate or recycle their proposal buffers between rounds without
// corrupting the cache.
type DistanceMatrix struct {
	n    int
	dim  int
	gram bool      // Gram-trick kernel (large dim) vs exact subtract-square
	vecs []float64 // n*dim vector copies, row major
	nrm  []float64 // n squared norms ‖v_i‖²
	d    []float64 // n*n squared distances, row major
}

// naiveDimMax is the dimension at or below which NewDistanceMatrix
// keeps the subtract-square kernel: with only a handful of
// coordinates the O(n²·d) bill is trivial either way, and the direct
// formula is immune to the cancellation noise that can flip exact
// decimal ties (Krum's index tie-break is observable behavior). Above
// it, the blocked Gram kernel's throughput wins and the property
// suite bounds its error relative to the input magnitudes.
const naiveDimMax = 16

// NewDistanceMatrix computes all pairwise squared distances between the
// given vectors with the blocked Gram-trick kernel (dimensions above
// naiveDimMax; tiny dimensions keep the exact subtract-square loop).
// Cost: Θ(n·d) for the norms plus n·(n−1)/2 inner products of d
// multiply-adds each, i.e. Θ(n²·d) — the same asymptotic bill as the
// naive kernel, paid at a much higher arithmetic throughput. Above
// gramBlock dimensions the build runs depth-first (buildBlocked) so
// every vector's k-slice is consumed by all pairs while cache-resident;
// the result is bit-identical to the pair-at-a-time walk either way
// (the canonical blocked order of gram.go does not depend on the loop
// nest).
func NewDistanceMatrix(vectors [][]float64) *DistanceMatrix {
	m := newShell(vectors)
	if m.gram && m.dim > gramBlock {
		m.buildBlocked()
		return m
	}
	for u := 0; u < m.n; u += 2 {
		m.buildRowPair(u)
	}
	return m
}

// NewDistanceMatrixNaive computes the same matrix with the reference
// per-pair subtract-square loop (Dist2) at every dimension. It is the
// oracle the property tests pin the blocked kernel against and the
// baseline BenchmarkDistanceMatrix measures the blocked kernel's
// speedup over; production callers always want NewDistanceMatrix.
// Incremental updates on a naive matrix stay in the naive kernel.
func NewDistanceMatrixNaive(vectors [][]float64) *DistanceMatrix {
	m := newShell(vectors)
	m.gram = false
	for u := 0; u < m.n; u += 2 {
		m.buildRowPair(u)
	}
	return m
}

// newShell validates dimensions, copies the vectors into contiguous
// storage, computes the squared norms, and allocates the zeroed
// distance matrix. Both constructors and the parallel builder share it.
func newShell(vectors [][]float64) *DistanceMatrix {
	matrixBuilds.Add(1)
	n := len(vectors)
	dim := 0
	if n > 0 {
		dim = len(vectors[0])
	}
	m := &DistanceMatrix{
		n:    n,
		dim:  dim,
		gram: dim > naiveDimMax,
		vecs: make([]float64, n*dim),
		nrm:  make([]float64, n),
		d:    make([]float64, n*n),
	}
	for i, v := range vectors {
		checkLen("NewDistanceMatrix", len(v), dim)
		copy(m.vector(i), v)
		m.nrm[i] = dotPair(v, v)
	}
	return m
}

// vector returns the matrix's own copy of vector i.
func (m *DistanceMatrix) vector(i int) []float64 {
	return m.vecs[i*m.dim : (i+1)*m.dim]
}

// buildRowPair fills the strict upper-triangle cells of rows u and u+1
// and their mirrors: the unit of work the parallel builder distributes
// (and the serial builder runs at dimensions within one depth block,
// where buildBlocked would degenerate to the same walk). Working on two
// rows at once lets the inner loop run the 2×4 tile, which streams each
// column vector once for two rows. The dots go through the blocked
// wrappers of gram.go, so the result is bit-identical to buildBlocked's
// depth-first accumulation. A trailing odd row falls back to the 1×4
// row kernel.
func (m *DistanceMatrix) buildRowPair(u int) {
	n := m.n
	if !m.gram {
		for i := u; i < n && i < u+2; i++ {
			vi := m.vector(i)
			for j := i + 1; j < n; j++ {
				dist := Dist2(vi, m.vector(j))
				m.d[i*n+j] = dist
				m.d[j*n+i] = dist
			}
		}
		return
	}
	if u+1 >= n {
		m.rowDots(u, u+1, n)
		m.assembleRow(u, u+1, n, true)
		return
	}
	v0, v1 := m.vector(u), m.vector(u+1)
	row0 := m.d[u*n : (u+1)*n]
	row1 := m.d[(u+1)*n : (u+2)*n]
	row0[u+1] = dotPair(v0, v1)
	var t [8]float64
	j := u + 2
	for ; j+4 <= n; j += 4 {
		dot24(v0, v1, m.vector(j), m.vector(j+1), m.vector(j+2), m.vector(j+3), &t)
		row0[j], row0[j+1], row0[j+2], row0[j+3] = t[0], t[1], t[2], t[3]
		row1[j], row1[j+1], row1[j+2], row1[j+3] = t[4], t[5], t[6], t[7]
	}
	for ; j < n; j++ {
		vj := m.vector(j)
		row0[j] = dotPair(v0, vj)
		row1[j] = dotPair(v1, vj)
	}
	m.assembleRow(u, u+1, n, true)
	m.assembleRow(u+1, u+2, n, true)
}

// buildBlocked fills the whole matrix depth-first: the outer loop walks
// k-blocks of gramBlock coordinates, the inner loop walks row pairs,
// and each pair's raw inner products accumulate across blocks in the
// cells of m.d (zero at allocation) before one final assembly pass
// turns them into clamped distances. Per pair this computes exactly the
// blocked order of gram.go — each block's lanes reduce and the block
// results sum in ascending k — so the matrix is bit-identical to the
// pair-at-a-time build; the loop inversion exists purely for locality.
// A pair-outer build streams every column vector once per earlier row
// pair (Θ(n²/4) vector loads, ~32 MB from L3 at n = 40, d = 10⁴),
// where this walk keeps all n slices of one k-block (n·gramBlock·8
// bytes, 640 KB at n = 40) L2-resident while the n²/2 tile kernels
// consume them — measured ~30% off the pair-outer wall clock at that
// shape on one core.
func (m *DistanceMatrix) buildBlocked() {
	n, d := m.n, m.dim
	var t [8]float64
	for k0 := 0; k0 < d; k0 += gramBlock {
		k1 := k0 + gramBlock
		if k1 > d {
			k1 = d
		}
		slice := func(i int) []float64 { return m.vecs[i*d+k0 : i*d+k1] }
		// Row pairs cover every strict-upper-triangle cell, including
		// column n−1 of an odd trailing row (reached as a column of the
		// earlier pairs, never as a row of its own).
		for u := 0; u+1 < n; u += 2 {
			v0, v1 := slice(u), slice(u+1)
			row0 := m.d[u*n : (u+1)*n]
			row1 := m.d[(u+1)*n : (u+2)*n]
			row0[u+1] += dotPairBlock(v0, v1)
			j := u + 2
			for ; j+4 <= n; j += 4 {
				dot24Block(v0, v1, slice(j), slice(j+1), slice(j+2), slice(j+3), &t)
				row0[j] += t[0]
				row0[j+1] += t[1]
				row0[j+2] += t[2]
				row0[j+3] += t[3]
				row1[j] += t[4]
				row1[j+1] += t[5]
				row1[j+2] += t[6]
				row1[j+3] += t[7]
			}
			for ; j < n; j++ {
				vj := slice(j)
				row0[j] += dotPairBlock(v0, vj)
				row1[j] += dotPairBlock(v1, vj)
			}
		}
	}
	for u := 0; u < n; u++ {
		m.assembleRow(u, u+1, n, true)
	}
}

// rowDots writes ⟨v_i, v_j⟩ for j in [from, to) into the d-row of i,
// using the 1×4 register tile with a dotPair remainder. Tile alignment
// never changes a pair's value: every column accumulates in the
// canonical dotPair order (see gram.go).
func (m *DistanceMatrix) rowDots(i, from, to int) {
	vi := m.vector(i)
	row := m.d[i*m.n : (i+1)*m.n]
	j := from
	for ; j+4 <= to; j += 4 {
		row[j], row[j+1], row[j+2], row[j+3] = dot4(
			vi, m.vector(j), m.vector(j+1), m.vector(j+2), m.vector(j+3))
	}
	for ; j < to; j++ {
		row[j] = dotPair(vi, m.vector(j))
	}
}

// assembleRow turns the inner products staged in row i's cells [from,
// to) into clamped squared distances, mirroring each value into column
// i when mirror is set. The clamp guards against the small negative
// results cancellation produces when ⟨a,b⟩ ≈ (‖a‖²+‖b‖²)/2.
func (m *DistanceMatrix) assembleRow(i, from, to int, mirror bool) {
	row := m.d[i*m.n : (i+1)*m.n]
	ni := m.nrm[i]
	for j := from; j < to; j++ {
		if j == i {
			row[i] = 0
			continue
		}
		v := ni + m.nrm[j] - 2*row[j]
		if v < 0 {
			v = 0
		}
		row[j] = v
		if mirror {
			m.d[j*m.n+i] = v
		}
	}
}

// UpdateRow replaces vector i with v and recomputes row and column i of
// the matrix in Θ(n·d) — the incremental alternative to a Θ(n²·d)
// rebuild when few vectors changed between rounds. The result is
// bit-identical to NewDistanceMatrix over the updated vector set: the
// recomputed pairs go through the same canonical inner-product order as
// a full build, and untouched cells are exactly the values a full build
// would recompute for unchanged vectors.
func (m *DistanceMatrix) UpdateRow(i int, v []float64) {
	m.setVector(i, v)
	m.recomputeRow(i)
}

// UpdateRows replaces every vector named in changed with its entry in
// vectors (the caller's full current vector set) and recomputes the
// affected rows and columns in Θ(c·n·d) for c changed vectors. All
// replacements are installed before any row is recomputed, so
// changed–changed pairs use both new vectors. Above gramBlock
// dimensions the batch runs depth-first (updateRowsBlocked) with the
// same locality win as a blocked full build; the result is
// bit-identical either way.
func (m *DistanceMatrix) UpdateRows(changed []int, vectors [][]float64) {
	for _, i := range changed {
		m.setVector(i, vectors[i])
	}
	if m.gram && m.dim > gramBlock && len(changed) >= 2 {
		m.updateRowsBlocked(dedupChanged(changed))
		return
	}
	// Recompute changed rows two at a time so the update path runs the
	// same bandwidth-saving 2×4 tile as a full build; a trailing odd
	// row uses the 1×4 row kernel. Changed–changed pairs are simply
	// computed from both (new) sides — the values agree bit for bit.
	k := 0
	for ; k+2 <= len(changed); k += 2 {
		m.recomputeRowDual(changed[k], changed[k+1])
	}
	if k < len(changed) {
		m.recomputeRow(changed[k])
	}
}

// dedupChanged returns changed without duplicate indices (first
// occurrence wins, order otherwise preserved). The common case — the
// cross-round cache diffs distinct proposal slots, so the set is
// already duplicate-free — returns the input unchanged without
// allocating.
func dedupChanged(changed []int) []int {
	for k := 1; k < len(changed); k++ {
		for l := 0; l < k; l++ {
			if changed[l] != changed[k] {
				continue
			}
			uniq := make([]int, 0, len(changed))
			seen := make(map[int]bool, len(changed))
			for _, i := range changed {
				if !seen[i] {
					seen[i] = true
					uniq = append(uniq, i)
				}
			}
			return uniq
		}
	}
	return changed
}

// updateRowsBlocked recomputes the changed rows depth-first over
// k-blocks, mirroring buildBlocked's locality: each k-block keeps the
// n vector slices it touches cache-resident while every changed row
// pair consumes them, instead of streaming the full n·d working set
// once per row pair (the bandwidth bill that made the pair-at-a-time
// batch ~25% slower per pair than a blocked build at n = 40,
// d = 10⁴). Per pair the raw dots accumulate in the canonical blocked
// order of gram.go, so the matrix stays bit-identical to the
// full-depth update path and to a rebuild. changed must be
// duplicate-free (rows accumulate in place, so a repeated index would
// double-count itself).
func (m *DistanceMatrix) updateRowsBlocked(changed []int) {
	matrixRowUpdates.Add(uint64(len(changed)))
	n, d := m.n, m.dim
	for _, i := range changed {
		row := m.d[i*n : (i+1)*n]
		for j := range row {
			row[j] = 0
		}
	}
	var t [8]float64
	for k0 := 0; k0 < d; k0 += gramBlock {
		k1 := k0 + gramBlock
		if k1 > d {
			k1 = d
		}
		slice := func(i int) []float64 { return m.vecs[i*d+k0 : i*d+k1] }
		k := 0
		for ; k+2 <= len(changed); k += 2 {
			v0, v1 := slice(changed[k]), slice(changed[k+1])
			row0 := m.d[changed[k]*n : (changed[k]+1)*n]
			row1 := m.d[changed[k+1]*n : (changed[k+1]+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				dot24Block(v0, v1, slice(j), slice(j+1), slice(j+2), slice(j+3), &t)
				row0[j] += t[0]
				row0[j+1] += t[1]
				row0[j+2] += t[2]
				row0[j+3] += t[3]
				row1[j] += t[4]
				row1[j+1] += t[5]
				row1[j+2] += t[6]
				row1[j+3] += t[7]
			}
			for ; j < n; j++ {
				vj := slice(j)
				row0[j] += dotPairBlock(v0, vj)
				row1[j] += dotPairBlock(v1, vj)
			}
		}
		if k < len(changed) {
			vi := slice(changed[k])
			row := m.d[changed[k]*n : (changed[k]+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				r0, r1, r2, r3 := dot4Block(vi, slice(j), slice(j+1), slice(j+2), slice(j+3))
				row[j] += r0
				row[j+1] += r1
				row[j+2] += r2
				row[j+3] += r3
			}
			for ; j < n; j++ {
				row[j] += dotPairBlock(vi, slice(j))
			}
		}
	}
	// Assemble without mirroring first: a changed row's column cells in
	// OTHER changed rows still hold staged raw dots, and both sides of a
	// changed–changed pair staged the same canonical value, so each row
	// assembles independently of the rest. Then mirror the finished
	// distances into every column (rewriting another changed row's
	// already-assembled cell installs the identical value).
	for _, i := range changed {
		m.assembleRow(i, 0, n, false)
	}
	for _, i := range changed {
		for j := 0; j < n; j++ {
			m.d[j*n+i] = m.d[i*n+j]
		}
	}
}

// setVector installs a copy of v as vector i and refreshes its norm.
func (m *DistanceMatrix) setVector(i int, v []float64) {
	checkLen("UpdateRow", len(v), m.dim)
	copy(m.vector(i), v)
	m.nrm[i] = dotPair(v, v)
}

// recomputeRow recomputes every distance involving vector i from the
// stored vectors. The j == i cell passes through rowDots as the
// self-inner-product (keeping the tile walk uniform) and is then zeroed
// by assembleRow.
func (m *DistanceMatrix) recomputeRow(i int) {
	matrixRowUpdates.Add(1)
	n := m.n
	if !m.gram {
		vi := m.vector(i)
		for j := 0; j < n; j++ {
			dist := 0.0
			if j != i {
				dist = Dist2(vi, m.vector(j))
			}
			m.d[i*n+j] = dist
			m.d[j*n+i] = dist
		}
		return
	}
	m.rowDots(i, 0, n)
	m.assembleRow(i, 0, n, true)
}

// recomputeRowDual recomputes rows i0 and i1 together with the 2×4
// tile. The cross pair (i0, i1) is produced from both sides with the
// same canonical order, so the mirror writes agree. A duplicated index
// (the rows would alias) degrades to the single-row path.
func (m *DistanceMatrix) recomputeRowDual(i0, i1 int) {
	if i0 == i1 || !m.gram {
		m.recomputeRow(i0)
		if i0 != i1 {
			m.recomputeRow(i1)
		}
		return
	}
	matrixRowUpdates.Add(2)
	n := m.n
	v0, v1 := m.vector(i0), m.vector(i1)
	row0 := m.d[i0*n : (i0+1)*n]
	row1 := m.d[i1*n : (i1+1)*n]
	var t [8]float64
	j := 0
	for ; j+4 <= n; j += 4 {
		dot24(v0, v1, m.vector(j), m.vector(j+1), m.vector(j+2), m.vector(j+3), &t)
		row0[j], row0[j+1], row0[j+2], row0[j+3] = t[0], t[1], t[2], t[3]
		row1[j], row1[j+1], row1[j+2], row1[j+3] = t[4], t[5], t[6], t[7]
	}
	for ; j < n; j++ {
		vj := m.vector(j)
		row0[j] = dotPair(v0, vj)
		row1[j] = dotPair(v1, vj)
	}
	// Assembling row i0 mirrors its finished distances into column i0 —
	// overwriting row i1's STAGED raw dot at (i1, i0). Re-stage that
	// cross dot before assembling row i1.
	cross := row1[i0]
	m.assembleRow(i0, 0, n, true)
	row1[i0] = cross
	m.assembleRow(i1, 0, n, true)
}

// VectorEqual reports whether v is element-for-element identical to the
// matrix's stored copy of vector i — the exact comparison the
// cross-round cache uses to detect unchanged proposals. "Exact" is
// IEEE ==, deliberately NOT a bit-pattern comparison: NaN ≠ NaN, so a
// NaN-carrying proposal always counts as changed and a poisoned round
// can never be served from the cache (TestVectorEqual pins this; in
// practice distsgd halts a run as soon as parameters go non-finite, so
// the conservative recompute costs nothing real). A length mismatch is
// simply "not equal".
func (m *DistanceMatrix) VectorEqual(i int, v []float64) bool {
	if len(v) != m.dim {
		return false
	}
	w := m.vector(i)
	for k, x := range v {
		if x != w[k] {
			return false
		}
	}
	return true
}

// N returns the number of vectors the matrix was built from.
func (m *DistanceMatrix) N() int { return m.n }

// Dim returns the common dimension of the vectors.
func (m *DistanceMatrix) Dim() int { return m.dim }

// At returns the squared distance between vectors i and j.
func (m *DistanceMatrix) At(i, j int) float64 { return m.d[i*m.n+j] }

// Row returns the row of squared distances from vector i to every vector
// (including the zero self-distance). The returned slice aliases internal
// storage and must not be modified.
func (m *DistanceMatrix) Row(i int) []float64 { return m.d[i*m.n : (i+1)*m.n] }

// SumKSmallestExcludingSelf returns the sum of the k smallest squared
// distances from vector i to the other vectors (the self-distance is
// excluded). This is exactly the Krum score s(i) when k = n − f − 2.
//
// The selection runs in O(n·k) time with no allocation beyond a k-sized
// scratch buffer, keeping the overall Krum cost at O(n²·(d + n)) ≈
// O(n²·d) for the high-dimensional regime the paper targets.
func (m *DistanceMatrix) SumKSmallestExcludingSelf(i, k int, scratch []float64) float64 {
	row := m.Row(i)
	return sumKSmallest(row, i, k, scratch)
}

// sumKSmallest sums the k smallest entries of row, skipping index skip.
// scratch must have capacity ≥ k; it is used as a simple binary max-heap
// of the current k smallest values.
func sumKSmallest(row []float64, skip, k int, scratch []float64) float64 {
	if k <= 0 {
		return 0
	}
	heap := scratch[:0]
	for j, v := range row {
		if j == skip {
			continue
		}
		if len(heap) < k {
			heap = append(heap, v)
			siftUp(heap, len(heap)-1)
			continue
		}
		if v < heap[0] {
			heap[0] = v
			siftDown(heap, 0)
		}
	}
	var s float64
	for _, v := range heap {
		s += v
	}
	return s
}

// KSmallestIndices returns the indices of the k smallest entries of vals,
// skipping index skip (pass skip = -1 to consider every index). Ties are
// broken in favour of the smaller index, matching the paper's footnote 3
// tie-break rule. The result is sorted by (value, index).
func KSmallestIndices(vals []float64, skip, k int) []int {
	if k <= 0 {
		return nil
	}
	type entry struct {
		v float64
		i int
	}
	// Insertion into a bounded, sorted slice: O(n·k). k is small
	// relative to n in all our uses (k ≤ n), and this keeps the
	// tie-break deterministic without a full sort.
	best := make([]entry, 0, k)
	for i, v := range vals {
		if i == skip {
			continue
		}
		if len(best) == k && !lessEntry(v, i, best[k-1].v, best[k-1].i) {
			continue
		}
		pos := len(best)
		for pos > 0 && lessEntry(v, i, best[pos-1].v, best[pos-1].i) {
			pos--
		}
		if len(best) < k {
			best = append(best, entry{})
		}
		copy(best[pos+1:], best[pos:len(best)-1])
		best[pos] = entry{v: v, i: i}
	}
	out := make([]int, len(best))
	for i, e := range best {
		out[i] = e.i
	}
	return out
}

func lessEntry(v1 float64, i1 int, v2 float64, i2 int) bool {
	if v1 != v2 {
		return v1 < v2
	}
	return i1 < i2
}

func siftUp(h []float64, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] >= h[i] {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func siftDown(h []float64, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h[l] > h[largest] {
			largest = l
		}
		if r < n && h[r] > h[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
