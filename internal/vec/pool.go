package vec

import "sync"

// Pooled scratch buffers for the score/selection workspaces of the
// aggregation rules. The parameter-server round loop calls the rules at
// high frequency with identically-sized workspaces (n scores, k-sized
// selection heaps, d-sized update vectors), which makes them ideal
// sync.Pool citizens: steady-state rounds run allocation-free.
//
// Contents of a pooled buffer are ARBITRARY — callers must fully
// overwrite (or use the slice in append-from-zero fashion, s[:0]).

var floatPool sync.Pool // stores *[]float64

// GetFloats returns a length-n float64 slice with arbitrary contents,
// recycled from the pool when one with sufficient capacity is available.
// Release it with PutFloats when done.
func GetFloats(n int) []float64 {
	if v := floatPool.Get(); v != nil {
		s := *v.(*[]float64)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

// PutFloats recycles a slice obtained from GetFloats (or any float64
// slice the caller no longer needs). The caller must not use s after.
func PutFloats(s []float64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	floatPool.Put(&s)
}
