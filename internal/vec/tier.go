package vec

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
)

// Kernel tiers. The Gram microkernels behind DistanceMatrix (dotPair /
// dot4 / dot24, see gram.go) exist in several implementations of
// increasing ISA requirements; exactly one — the tier — is active in a
// process at a time, selected once at init from CPU feature detection
// and the KRUM_KERNEL_TIER environment knob.
//
// The tier is more than a speed setting: each tier defines its own
// CANONICAL ACCUMULATION ORDER for an inner product (contract decision
// (a) of the ROADMAP — see gram.go), so results computed under
// different orders may differ in the low bits. Order identity, not
// tier identity, is therefore what the rest of the system keys on:
// Tier.Order() names the order family ("pair2" for go/sse2, "fma4"
// for avx2), the store salts every content-addressed key with it
// (scenario/store), distsgd records it in Result.Kernel, and the
// coordinator join handshake pins it exactly like store.Version — a
// heterogeneous fleet can share cached results between order-identical
// tiers (a pure-Go arm64 worker and an SSE2 amd64 worker agree bit for
// bit) but can never alias results across order families.

// Tier identifies one kernel implementation tier.
type Tier int32

const (
	// TierGo is the portable pure-Go tier: dotPairGo's interleaved
	// even/odd two-accumulator order. Always available.
	TierGo Tier = iota
	// TierSSE2 is the amd64 SSE2 assembly tier. Its two 64-bit XMM
	// lanes ARE dotPairGo's (even, odd) accumulator pair, so TierSSE2
	// and TierGo share the "pair2" order and agree bit for bit.
	TierSSE2
	// TierAVX2 is the amd64 AVX2+FMA assembly tier: four YMM lanes of
	// fused multiply-adds (the "fma4" order — see dotFMAGo). Fusing
	// removes the per-step product rounding, so TierAVX2 results differ
	// from pair2 tiers in the low bits (by less error, not more).
	TierAVX2
	// TierAVX512 is a reserved stub behind the same dispatch seam: the
	// name parses (ParseTier) so ops tooling and configs can speak it
	// before kernels land, but it is never available — selecting it
	// falls back — and it defines no order family yet. Implementing it
	// means an 8-lane asm kernel, a pure-Go reference defining its
	// canonical order, an Order() id, and goldens in gram_test.go.
	TierAVX512
)

// String returns the tier's spec name — the value KRUM_KERNEL_TIER
// accepts and ParseTier inverts.
func (t Tier) String() string {
	switch t {
	case TierGo:
		return "go"
	case TierSSE2:
		return "sse2"
	case TierAVX2:
		return "avx2"
	case TierAVX512:
		return "avx512"
	}
	return fmt.Sprintf("tier(%d)", int32(t))
}

// Order returns the tier's canonical accumulation-order family id —
// the identity the store key salt, the Result.Kernel metadata field
// and the fleet join handshake carry. Tiers sharing an Order are
// bit-identical on every input (pinned by gram_test.go) and may freely
// share cached results; tiers with different Orders round differently
// and must never alias.
func (t Tier) Order() string {
	switch t {
	case TierAVX2:
		return "fma4"
	default:
		return "pair2"
	}
}

// ParseTier parses a tier spec name ("go", "sse2", "avx2", "avx512"),
// case-insensitively.
func ParseTier(s string) (Tier, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "go":
		return TierGo, nil
	case "sse2":
		return TierSSE2, nil
	case "avx2":
		return TierAVX2, nil
	case "avx512":
		return TierAVX512, nil
	}
	return TierGo, fmt.Errorf("vec: unknown kernel tier %q (want go|sse2|avx2|avx512)", s)
}

// currentTier holds the active tier. It is read on every microkernel
// dispatch (one atomic load against an O(d) inner product) and written
// only by init and SetKernelTier.
var currentTier atomic.Int32

// supportedTiers is the availability set probed once at init
// (availableTiers is per-GOARCH: CPUID on amd64, {go} elsewhere).
var supportedTiers = availableTiers()

// KernelTier returns the active kernel tier.
func KernelTier() Tier { return Tier(currentTier.Load()) }

// KernelOrder returns the active tier's canonical accumulation-order
// family id — shorthand for KernelTier().Order().
func KernelOrder() string { return KernelTier().Order() }

// TierAvailable reports whether t can run on this process's CPU.
func TierAvailable(t Tier) bool {
	for _, s := range supportedTiers {
		if s == t {
			return true
		}
	}
	return false
}

// AvailableTiers returns the tiers this CPU supports, in ascending
// capability order (the last entry is the auto-selected default).
func AvailableTiers() []Tier {
	out := make([]Tier, len(supportedTiers))
	copy(out, supportedTiers)
	return out
}

// SetKernelTier activates tier t for every subsequent microkernel
// dispatch and returns a function restoring the previous tier. It
// errors (and changes nothing) if the CPU does not support t.
//
// The intended callers are process init (the KRUM_KERNEL_TIER knob)
// and tests forcing a tier around a battery; switching tiers while
// kernel-derived state is live is safe but subtle — an existing
// DistanceMatrix updated incrementally under a different tier than it
// was built under loses its bit-identical-to-rebuild guarantee, and
// store keys computed before the switch describe the old order. Force
// the tier first, compute after.
func SetKernelTier(t Tier) (restore func(), err error) {
	if !TierAvailable(t) {
		return nil, fmt.Errorf("vec: kernel tier %v not available on this CPU (have %v)", t, supportedTiers)
	}
	prev := currentTier.Swap(int32(t))
	return func() { currentTier.Store(prev) }, nil
}

// tierEnv is the environment knob forcing a kernel tier for tests and
// ops ("go", "sse2", "avx2"). An unknown or unavailable value keeps
// the auto-detected tier (with a note on stderr) rather than failing:
// the CI tier matrix exports the knob unconditionally and hosts
// lacking an ISA must degrade gracefully, not break.
const tierEnv = "KRUM_KERNEL_TIER"

func init() {
	// Auto-select the most capable tier, then let the knob narrow it.
	best := supportedTiers[len(supportedTiers)-1]
	if v := os.Getenv(tierEnv); v != "" {
		t, err := ParseTier(v)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "vec: ignoring %s=%q: %v\n", tierEnv, v, err)
		case !TierAvailable(t):
			fmt.Fprintf(os.Stderr, "vec: ignoring %s=%q: tier unavailable on this CPU (have %v)\n", tierEnv, v, supportedTiers)
		default:
			best = t
		}
	}
	currentTier.Store(int32(best))
}
