package vec

import "math"

// Pure-Go reference implementations for the AVX2+FMA tier's canonical
// accumulation order, the "fma4" family (see the contract in gram.go
// and the tier taxonomy in tier.go).
//
// The order: an inner product keeps FOUR independent partial sums,
// lane j accumulating the terms with k ≡ j (mod 4) through FUSED
// multiply-adds (math.FMA — one rounding per term instead of two), and
// a tail element k ≥ 4·⌊n/4⌋ joins lane k mod 4. The final reduction
// is (s0 + s2) + (s1 + s3) — exactly what the assembly's
// VEXTRACTF128/VADDPD/ADDSD sequence computes, with the four lanes of
// one YMM accumulator playing s0..s3 and a masked load feeding the
// tail lanes (a masked-out lane contributes fma(0, 0, s) = s, bit for
// bit). math.FMA is correctly rounded on every platform (hardware FMA
// on amd64/arm64, exact software emulation elsewhere), so these
// references — and the golden vectors pinned in gram_test.go — are
// portable even though the asm tier itself is amd64-only.

// dotFMAGo returns ⟨a,b⟩ in the canonical fma4 order.
func dotFMAGo(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= len(a); k += 4 {
		s0 = math.FMA(a[k], b[k], s0)
		s1 = math.FMA(a[k+1], b[k+1], s1)
		s2 = math.FMA(a[k+2], b[k+2], s2)
		s3 = math.FMA(a[k+3], b[k+3], s3)
	}
	// Tail lanes: element k joins lane k mod 4. The lanes are
	// independent, so the statement order here is immaterial.
	switch len(a) - k {
	case 3:
		s2 = math.FMA(a[k+2], b[k+2], s2)
		fallthrough
	case 2:
		s1 = math.FMA(a[k+1], b[k+1], s1)
		fallthrough
	case 1:
		s0 = math.FMA(a[k], b[k], s0)
	}
	return (s0 + s2) + (s1 + s3)
}

// dot4FMAGo returns ⟨a,b0⟩..⟨a,b3⟩ in the canonical fma4 order. Each
// column keeps its own four-lane accumulator set, so every result is
// bit-identical to dotFMAGo(a, bi) — the tile is an arrangement, never
// a different sum, exactly as in the pair2 family.
func dot4FMAGo(a, b0, b1, b2, b3 []float64) (r0, r1, r2, r3 float64) {
	return dotFMAGo(a, b0), dotFMAGo(a, b1), dotFMAGo(a, b2), dotFMAGo(a, b3)
}

// dot24FMAGo is the fma4 reference for the 2×4 tile; see dot24Go for
// the output layout.
func dot24FMAGo(a0, a1, b0, b1, b2, b3 []float64, out *[8]float64) {
	out[0], out[1], out[2], out[3] = dot4FMAGo(a0, b0, b1, b2, b3)
	out[4], out[5], out[6], out[7] = dot4FMAGo(a1, b0, b1, b2, b3)
}
