//go:build amd64

#include "textflag.h"

// AVX2+FMA Gram microkernels — the TierAVX2 implementations dispatched
// by gram_amd64.go when the CPU supports them (tier_amd64.go probe).
//
// Accumulation order ("fma4", defined by dotFMAGo in gram_fma.go):
// each inner product keeps ONE four-lane YMM accumulator — lane j
// holds the fused partial sum of terms k ≡ j (mod 4) — and reduces as
// (s0 + s2) + (s1 + s3) via VEXTRACTF128 + VADDPD + ADDSD. The tail
// (n mod 4 elements) is folded with a VMASKMOVPD masked load of both
// operands: lane i < tail gets its fused term, masked-out lanes load
// zero and contribute fma(0, 0, s) = s, bit for bit. gram_test.go pins
// every function here to the pure-Go fma4 reference and to fixed
// golden vectors across all tail residues.
//
// laneidx is the [0,1,2,3] qword vector the tail mask is built from:
// mask = (broadcast(tail) > laneidx), signed qword compare.

DATA laneidx<>+0(SB)/8, $0
DATA laneidx<>+8(SB)/8, $1
DATA laneidx<>+16(SB)/8, $2
DATA laneidx<>+24(SB)/8, $3
GLOBL laneidx<>(SB), RODATA|NOPTR, $32

// func dotAVX2(a, b *float64, n int) float64
TEXT ·dotAVX2(SB), NOSPLIT, $0-32
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), DI
	MOVQ   n+16(FP), CX
	VXORPD Y0, Y0, Y0    // accumulator lanes (s0, s1, s2, s3)
	XORQ   DX, DX
	MOVQ   CX, AX
	ANDQ   $-4, AX       // AX = n &^ 3: the full-vector prefix
	CMPQ   DX, AX
	JGE    tail
loop:
	VMOVUPD     (SI)(DX*8), Y1
	VMOVUPD     (DI)(DX*8), Y2
	VFMADD231PD Y2, Y1, Y0    // Y0 += a[k:k+4] * b[k:k+4], fused per lane
	ADDQ        $4, DX
	CMPQ        DX, AX
	JLT         loop
tail:
	MOVQ  CX, R12
	SUBQ  DX, R12        // R12 = n mod 4
	TESTQ R12, R12
	JZ    reduce
	MOVQ         R12, X1
	VPBROADCASTQ X1, Y1
	VMOVDQU      laneidx<>(SB), Y2
	VPCMPGTQ     Y2, Y1, Y3       // mask: lane i live iff i < tail
	VMASKMOVPD   (SI)(DX*8), Y3, Y1
	VMASKMOVPD   (DI)(DX*8), Y3, Y2
	VFMADD231PD  Y2, Y1, Y0       // dead lanes: fma(0, 0, s) = s
reduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0       // (s0+s2, s1+s3)
	VZEROUPPER
	MOVAPD   X0, X1
	UNPCKHPD X1, X1
	ADDSD    X1, X0               // (s0+s2) + (s1+s3)
	MOVSD    X0, ret+24(FP)
	RET

// func dot4AVX2(a, b0, b1, b2, b3 *float64, n int, out *[4]float64)
//
// The 1×4 column tile in fma4 order: one 256-bit load of a[k:k+4]
// feeds four independent fused column chains, each bit-identical to
// dotAVX2(a, bi) — the tile is an arrangement, never a different sum.
TEXT ·dot4AVX2(SB), NOSPLIT, $0-56
	MOVQ   a+0(FP), SI
	MOVQ   b0+8(FP), R8
	MOVQ   b1+16(FP), R9
	MOVQ   b2+24(FP), R10
	MOVQ   b3+32(FP), R11
	MOVQ   n+40(FP), CX
	MOVQ   out+48(FP), BX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ   DX, DX
	MOVQ   CX, AX
	ANDQ   $-4, AX
	CMPQ   DX, AX
	JGE    tail4
loop4:
	VMOVUPD     (SI)(DX*8), Y4
	VMOVUPD     (R8)(DX*8), Y5
	VFMADD231PD Y5, Y4, Y0
	VMOVUPD     (R9)(DX*8), Y6
	VFMADD231PD Y6, Y4, Y1
	VMOVUPD     (R10)(DX*8), Y7
	VFMADD231PD Y7, Y4, Y2
	VMOVUPD     (R11)(DX*8), Y8
	VFMADD231PD Y8, Y4, Y3
	ADDQ        $4, DX
	CMPQ        DX, AX
	JLT         loop4
tail4:
	MOVQ  CX, R12
	SUBQ  DX, R12
	TESTQ R12, R12
	JZ    reduce4
	MOVQ         R12, X4
	VPBROADCASTQ X4, Y4
	VMOVDQU      laneidx<>(SB), Y5
	VPCMPGTQ     Y5, Y4, Y9
	VMASKMOVPD   (SI)(DX*8), Y9, Y4
	VMASKMOVPD   (R8)(DX*8), Y9, Y5
	VFMADD231PD  Y5, Y4, Y0
	VMASKMOVPD   (R9)(DX*8), Y9, Y6
	VFMADD231PD  Y6, Y4, Y1
	VMASKMOVPD   (R10)(DX*8), Y9, Y7
	VFMADD231PD  Y7, Y4, Y2
	VMASKMOVPD   (R11)(DX*8), Y9, Y8
	VFMADD231PD  Y8, Y4, Y3
reduce4:
	VEXTRACTF128 $1, Y0, X4
	VADDPD       X4, X0, X0
	VEXTRACTF128 $1, Y1, X5
	VADDPD       X5, X1, X1
	VEXTRACTF128 $1, Y2, X6
	VADDPD       X6, X2, X2
	VEXTRACTF128 $1, Y3, X7
	VADDPD       X7, X3, X3
	VZEROUPPER
	MOVAPD   X0, X4
	UNPCKHPD X4, X4
	ADDSD    X4, X0
	MOVSD    X0, (BX)
	MOVAPD   X1, X5
	UNPCKHPD X5, X5
	ADDSD    X5, X1
	MOVSD    X1, 8(BX)
	MOVAPD   X2, X6
	UNPCKHPD X6, X6
	ADDSD    X6, X2
	MOVSD    X2, 16(BX)
	MOVAPD   X3, X7
	UNPCKHPD X7, X7
	ADDSD    X7, X3
	MOVSD    X3, 24(BX)
	RET

// func dot24AVX2(a0, a1, b0, b1, b2, b3 *float64, n int, out *[8]float64)
//
// The 2×4 tile in fma4 order: Y0..Y3 accumulate a0 against b0..b3,
// Y4..Y7 accumulate a1 against the same columns, and every streamed
// 256-bit column load is reused by both rows — the bandwidth saving
// the blocked builder exists for (see dist.go buildRowPair).
TEXT ·dot24AVX2(SB), NOSPLIT, $0-64
	MOVQ   a0+0(FP), SI
	MOVQ   a1+8(FP), DI
	MOVQ   b0+16(FP), R8
	MOVQ   b1+24(FP), R9
	MOVQ   b2+32(FP), R10
	MOVQ   b3+40(FP), R11
	MOVQ   n+48(FP), CX
	MOVQ   out+56(FP), BX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ   DX, DX
	MOVQ   CX, AX
	ANDQ   $-4, AX
	CMPQ   DX, AX
	JGE    tail24
loop24:
	VMOVUPD     (SI)(DX*8), Y8
	VMOVUPD     (DI)(DX*8), Y9
	VMOVUPD     (R8)(DX*8), Y10
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y10, Y9, Y4
	VMOVUPD     (R9)(DX*8), Y11
	VFMADD231PD Y11, Y8, Y1
	VFMADD231PD Y11, Y9, Y5
	VMOVUPD     (R10)(DX*8), Y12
	VFMADD231PD Y12, Y8, Y2
	VFMADD231PD Y12, Y9, Y6
	VMOVUPD     (R11)(DX*8), Y13
	VFMADD231PD Y13, Y8, Y3
	VFMADD231PD Y13, Y9, Y7
	ADDQ        $4, DX
	CMPQ        DX, AX
	JLT         loop24
tail24:
	MOVQ  CX, R12
	SUBQ  DX, R12
	TESTQ R12, R12
	JZ    reduce24
	MOVQ         R12, X8
	VPBROADCASTQ X8, Y8
	VMOVDQU      laneidx<>(SB), Y9
	VPCMPGTQ     Y9, Y8, Y14
	VMASKMOVPD   (SI)(DX*8), Y14, Y8
	VMASKMOVPD   (DI)(DX*8), Y14, Y9
	VMASKMOVPD   (R8)(DX*8), Y14, Y10
	VFMADD231PD  Y10, Y8, Y0
	VFMADD231PD  Y10, Y9, Y4
	VMASKMOVPD   (R9)(DX*8), Y14, Y11
	VFMADD231PD  Y11, Y8, Y1
	VFMADD231PD  Y11, Y9, Y5
	VMASKMOVPD   (R10)(DX*8), Y14, Y12
	VFMADD231PD  Y12, Y8, Y2
	VFMADD231PD  Y12, Y9, Y6
	VMASKMOVPD   (R11)(DX*8), Y14, Y13
	VFMADD231PD  Y13, Y8, Y3
	VFMADD231PD  Y13, Y9, Y7
reduce24:
	VEXTRACTF128 $1, Y0, X8
	VADDPD       X8, X0, X0
	VEXTRACTF128 $1, Y1, X9
	VADDPD       X9, X1, X1
	VEXTRACTF128 $1, Y2, X10
	VADDPD       X10, X2, X2
	VEXTRACTF128 $1, Y3, X11
	VADDPD       X11, X3, X3
	VEXTRACTF128 $1, Y4, X12
	VADDPD       X12, X4, X4
	VEXTRACTF128 $1, Y5, X13
	VADDPD       X13, X5, X5
	VEXTRACTF128 $1, Y6, X14
	VADDPD       X14, X6, X6
	VEXTRACTF128 $1, Y7, X15
	VADDPD       X15, X7, X7
	VZEROUPPER
	MOVAPD   X0, X8
	UNPCKHPD X8, X8
	ADDSD    X8, X0
	MOVSD    X0, (BX)
	MOVAPD   X1, X9
	UNPCKHPD X9, X9
	ADDSD    X9, X1
	MOVSD    X1, 8(BX)
	MOVAPD   X2, X10
	UNPCKHPD X10, X10
	ADDSD    X10, X2
	MOVSD    X2, 16(BX)
	MOVAPD   X3, X11
	UNPCKHPD X11, X11
	ADDSD    X11, X3
	MOVSD    X3, 24(BX)
	MOVAPD   X4, X12
	UNPCKHPD X12, X12
	ADDSD    X12, X4
	MOVSD    X4, 32(BX)
	MOVAPD   X5, X13
	UNPCKHPD X13, X13
	ADDSD    X13, X5
	MOVSD    X5, 40(BX)
	MOVAPD   X6, X14
	UNPCKHPD X14, X14
	ADDSD    X14, X6
	MOVSD    X6, 48(BX)
	MOVAPD   X7, X15
	UNPCKHPD X15, X15
	ADDSD    X15, X7
	MOVSD    X7, 56(BX)
	RET
