package vec

// This file holds the blocked Gram-trick microkernels behind
// DistanceMatrix: every pairwise squared distance is assembled as
//
//	‖a−b‖² = ‖a‖² + ‖b‖² − 2·⟨a,b⟩
//
// so the O(n²·d) work collapses into inner products, which vectorize
// far better than the per-pair subtract-square loop (no serial
// dependency on a single accumulator, one shared load of a[k] feeding
// four columns).
//
// BIT-STABILITY CONTRACT: dotPairGo defines the one canonical
// accumulation order for an inner product — two interleaved even/odd
// partial sums reduced as s0+s1 at the end — and every other entry
// point (dot4 columns, norms, row updates, the parallel builder, and
// the amd64 SSE2 assembly in gram_amd64.s, whose two 64-bit lanes ARE
// the even/odd pair) reproduces exactly that order. IEEE-754
// multiplication is commutative bit for bit and the k-order never
// changes, so ⟨a,b⟩ is bit-identical whichever kernel, goroutine
// count, or tile alignment computes it. This is what lets
// DistanceMatrix.UpdateRow promise results identical to a full
// rebuild, and the scenario runner promise identical results across
// worker counts.
//
// dotPair and dot4 (the names the matrix code calls) dispatch to the
// assembly on amd64 and to these reference implementations elsewhere;
// gram_test.go pins the two to exact equality.

// dotPairGo returns ⟨a,b⟩ using the canonical two-accumulator order.
// The two independent chains break the add-latency dependency that
// bounds the naive loop; the final reduction is s0 + s1.
func dotPairGo(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1 float64
	k := 0
	for ; k+2 <= len(a); k += 2 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
	}
	if k < len(a) {
		s0 += a[k] * b[k]
	}
	return s0 + s1
}

// dot4Go returns ⟨a,b0⟩, ⟨a,b1⟩, ⟨a,b2⟩, ⟨a,b3⟩ in one pass over a:
// the 1×4 register tile of the blocked kernel. Each load of a[k] feeds
// four independent multiply-add chains, and every column keeps its own
// even/odd accumulator pair, so each result is bit-identical to
// dotPairGo(a, bi).
func dot4Go(a, b0, b1, b2, b3 []float64) (r0, r1, r2, r3 float64) {
	n := len(a)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	var p0, q0, p1, q1, p2, q2, p3, q3 float64
	k := 0
	for ; k+2 <= n; k += 2 {
		x, y := a[k], a[k+1]
		p0 += x * b0[k]
		q0 += y * b0[k+1]
		p1 += x * b1[k]
		q1 += y * b1[k+1]
		p2 += x * b2[k]
		q2 += y * b2[k+1]
		p3 += x * b3[k]
		q3 += y * b3[k+1]
	}
	if k < n {
		x := a[k]
		p0 += x * b0[k]
		p1 += x * b1[k]
		p2 += x * b2[k]
		p3 += x * b3[k]
	}
	return p0 + q0, p1 + q1, p2 + q2, p3 + q3
}

// dot24Go is the 2×4 tile: the dots of two row vectors a0, a1 against
// four column vectors in one conceptual pass, written to out as
// [⟨a0,b0⟩..⟨a0,b3⟩, ⟨a1,b0⟩..⟨a1,b3⟩]. The tile exists for memory
// traffic, not arithmetic: each streamed b column is reused by two
// rows, cutting the bandwidth per pair to 6/8 of a vector where the
// 1×4 tile pays 5/4. Every pair keeps the canonical dotPairGo order —
// the reference implementation simply runs dot4Go twice.
func dot24Go(a0, a1, b0, b1, b2, b3 []float64, out *[8]float64) {
	out[0], out[1], out[2], out[3] = dot4Go(a0, b0, b1, b2, b3)
	out[4], out[5], out[6], out[7] = dot4Go(a1, b0, b1, b2, b3)
}
