package vec

// This file holds the blocked Gram-trick microkernels behind
// DistanceMatrix: every pairwise squared distance is assembled as
//
//	‖a−b‖² = ‖a‖² + ‖b‖² − 2·⟨a,b⟩
//
// so the O(n²·d) work collapses into inner products, which vectorize
// far better than the per-pair subtract-square loop (no serial
// dependency on a single accumulator, one shared load of a[k] feeding
// four columns).
//
// BIT-STABILITY CONTRACT (per tier — ROADMAP decision (a)): every
// kernel TIER (tier.go) defines its own canonical accumulation order
// for an inner product, and WITHIN a tier every entry point — dot4
// columns, norms, row updates, the parallel builder, the screened
// materialization, the incremental UpdateRow path — reproduces exactly
// that order. IEEE-754 multiplication is commutative bit for bit and
// the k-order never changes within a tier, so ⟨a,b⟩ is bit-identical
// whichever kernel shape, goroutine count, or tile alignment computes
// it. This is what lets DistanceMatrix.UpdateRow promise results
// identical to a full rebuild, and the scenario runner promise
// identical results across worker counts — all per tier.
//
// The canonical order has two levels:
//
// DEPTH BLOCKING (both families): an inner product of dimension d is
// accumulated in consecutive k-blocks of gramBlock elements. Each
// block starts its lane accumulators at zero, runs the family's lane
// order below, and reduces; the per-block results are then summed into
// one scalar in ascending-k order. For d ≤ gramBlock this is exactly
// the single-pass order (one block), so the golden vectors and every
// small-dimension result are unchanged by blocking. The block seam is
// what lets DistanceMatrix build depth-first at deep-learning
// dimensions — all n vectors' k-slices stay cache-resident while every
// pair consumes them — without perturbing a single bit: a pair's value
// depends only on the k-sequence its own lanes consume, never on which
// loop nest (pair-outer dot24 over full vectors, or block-outer
// partial sums) drove the kernel.
//
// LANE ORDER (the order families):
//
//   - "pair2" (TierGo here, TierSSE2 in gram_amd64.s): dotPairGo's two
//     interleaved even/odd partial sums, reduced as s0+s1. The SSE2
//     assembly's two 64-bit XMM lanes ARE the (s0, s1) pair, so the go
//     and sse2 tiers agree bit for bit on every input.
//   - "fma4" (TierAVX2, reference dotFMAGo in gram_fma.go): four
//     interleaved fused-multiply-add partial sums, reduced as
//     (s0+s2)+(s1+s3). Fusing drops the per-term product rounding, so
//     fma4 results differ from pair2 in the low bits.
//
// ACROSS tiers equality is only promised to the norm-relative
// tolerance of dist_property_test.go's error model; anything that
// persists or exchanges result bytes must therefore carry the order
// id (Tier.Order): the scenario store salts keys with it, distsgd
// records it in Result.Kernel, and the fleet join handshake pins it.
//
// dotPair, dot4 and dot24 (the names the matrix code calls) are the
// blocked wrappers below; the per-block primitives dotPairBlock,
// dot4Block and dot24Block dispatch on the active tier (gram_amd64.go
// on amd64, this package's pure-Go references elsewhere).
// gram_test.go pins every tier to its reference order, to fixed golden
// vectors, and to the blocked composition at multi-block dimensions.

// gramBlock is the depth-blocking factor of the canonical accumulation
// order: inner products accumulate in k-blocks of this many elements
// (see the contract above). It is part of the observable order — low
// bits at d > gramBlock depend on it — so changing it is a
// result-changing event exactly like changing a lane order: the order
// family names would need new ids. 2048 doubles (16 KiB per vector
// slice) keeps a 2×4 tile's six operand slices under typical L1/L2
// budgets while amortizing the per-call reduction to noise; it is a
// multiple of 8, so every block starts lane-phase-aligned for both
// families. Tuned on BenchmarkDistanceMatrix at n = 40, d = 10⁴
// against 1024/4096/unblocked.
const gramBlock = 2048

// dotPair returns ⟨a,b⟩ in the active tier's canonical blocked
// accumulation order.
func dotPair(a, b []float64) float64 {
	n := len(a)
	if n <= gramBlock {
		return dotPairBlock(a, b)
	}
	b = b[:n]
	var s float64
	for k := 0; k < n; k += gramBlock {
		e := k + gramBlock
		if e > n {
			e = n
		}
		s += dotPairBlock(a[k:e], b[k:e])
	}
	return s
}

// dot4 returns ⟨a,b0⟩, ⟨a,b1⟩, ⟨a,b2⟩, ⟨a,b3⟩ in the active tier's
// canonical blocked order; every column is bit-identical to
// dotPair(a, bi).
func dot4(a, b0, b1, b2, b3 []float64) (float64, float64, float64, float64) {
	n := len(a)
	if n <= gramBlock {
		return dot4Block(a, b0, b1, b2, b3)
	}
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	var r0, r1, r2, r3 float64
	for k := 0; k < n; k += gramBlock {
		e := k + gramBlock
		if e > n {
			e = n
		}
		p0, p1, p2, p3 := dot4Block(a[k:e], b0[k:e], b1[k:e], b2[k:e], b3[k:e])
		r0 += p0
		r1 += p1
		r2 += p2
		r3 += p3
	}
	return r0, r1, r2, r3
}

// dot24 computes the 2×4 tile in the active tier's canonical blocked
// order; see dot24Go for the output layout. Every cell is
// bit-identical to the corresponding dotPair.
func dot24(a0, a1, b0, b1, b2, b3 []float64, out *[8]float64) {
	n := len(a0)
	if n <= gramBlock {
		dot24Block(a0, a1, b0, b1, b2, b3, out)
		return
	}
	a1 = a1[:n]
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	*out = [8]float64{}
	var t [8]float64
	for k := 0; k < n; k += gramBlock {
		e := k + gramBlock
		if e > n {
			e = n
		}
		dot24Block(a0[k:e], a1[k:e], b0[k:e], b1[k:e], b2[k:e], b3[k:e], &t)
		for i := range out {
			out[i] += t[i]
		}
	}
}

// dotPairGo returns ⟨a,b⟩ using the canonical two-accumulator order.
// The two independent chains break the add-latency dependency that
// bounds the naive loop; the final reduction is s0 + s1.
func dotPairGo(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1 float64
	k := 0
	for ; k+2 <= len(a); k += 2 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
	}
	if k < len(a) {
		s0 += a[k] * b[k]
	}
	return s0 + s1
}

// dot4Go returns ⟨a,b0⟩, ⟨a,b1⟩, ⟨a,b2⟩, ⟨a,b3⟩ in one pass over a:
// the 1×4 register tile of the blocked kernel. Each load of a[k] feeds
// four independent multiply-add chains, and every column keeps its own
// even/odd accumulator pair, so each result is bit-identical to
// dotPairGo(a, bi).
func dot4Go(a, b0, b1, b2, b3 []float64) (r0, r1, r2, r3 float64) {
	n := len(a)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	var p0, q0, p1, q1, p2, q2, p3, q3 float64
	k := 0
	for ; k+2 <= n; k += 2 {
		x, y := a[k], a[k+1]
		p0 += x * b0[k]
		q0 += y * b0[k+1]
		p1 += x * b1[k]
		q1 += y * b1[k+1]
		p2 += x * b2[k]
		q2 += y * b2[k+1]
		p3 += x * b3[k]
		q3 += y * b3[k+1]
	}
	if k < n {
		x := a[k]
		p0 += x * b0[k]
		p1 += x * b1[k]
		p2 += x * b2[k]
		p3 += x * b3[k]
	}
	return p0 + q0, p1 + q1, p2 + q2, p3 + q3
}

// dot24Go is the 2×4 tile: the dots of two row vectors a0, a1 against
// four column vectors in one conceptual pass, written to out as
// [⟨a0,b0⟩..⟨a0,b3⟩, ⟨a1,b0⟩..⟨a1,b3⟩]. The tile exists for memory
// traffic, not arithmetic: each streamed b column is reused by two
// rows, cutting the bandwidth per pair to 6/8 of a vector where the
// 1×4 tile pays 5/4. Every pair keeps the canonical dotPairGo order —
// the reference implementation simply runs dot4Go twice.
func dot24Go(a0, a1, b0, b1, b2, b3 []float64, out *[8]float64) {
	out[0], out[1], out[2], out[3] = dot4Go(a0, b0, b1, b2, b3)
	out[4], out[5], out[6], out[7] = dot4Go(a1, b0, b1, b2, b3)
}
