//go:build !amd64

package vec

// Portable dispatch for the Gram microkernels: non-amd64 platforms run
// the pure-Go pair2 reference implementations — TierGo is the only
// available tier here (tier_other.go), and its canonical order is
// exactly what amd64's SSE2 tier reproduces bit for bit, so go and
// sse2 processes share one accumulation-order family (and therefore
// one store-key salt; see tier.go).

// dotPairBlock returns ⟨a,b⟩ over one depth block; see dotPairGo for
// the lane order and gram.go for the blocked composition.
func dotPairBlock(a, b []float64) float64 { return dotPairGo(a, b) }

// dot4Block is the one-depth-block 1×4 tile; see dot4Go for the lane
// order.
func dot4Block(a, b0, b1, b2, b3 []float64) (float64, float64, float64, float64) {
	return dot4Go(a, b0, b1, b2, b3)
}

// dot24Block is the one-depth-block 2×4 tile; see dot24Go for the
// layout and lane order.
func dot24Block(a0, a1, b0, b1, b2, b3 []float64, out *[8]float64) {
	dot24Go(a0, a1, b0, b1, b2, b3, out)
}
