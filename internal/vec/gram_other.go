//go:build !amd64

package vec

// Portable dispatch for the Gram microkernels: non-amd64 platforms run
// the pure-Go reference implementations, which define the canonical
// accumulation order the amd64 assembly reproduces bit for bit.

// dotPair returns ⟨a,b⟩; see dotPairGo for the accumulation-order
// contract.
func dotPair(a, b []float64) float64 { return dotPairGo(a, b) }

// dot4 returns ⟨a,b0⟩, ⟨a,b1⟩, ⟨a,b2⟩, ⟨a,b3⟩; see dot4Go for the
// accumulation-order contract.
func dot4(a, b0, b1, b2, b3 []float64) (float64, float64, float64, float64) {
	return dot4Go(a, b0, b1, b2, b3)
}

// dot24 computes the 2×4 tile; see dot24Go for the layout and
// accumulation-order contract.
func dot24(a0, a1, b0, b1, b2, b3 []float64, out *[8]float64) {
	dot24Go(a0, a1, b0, b1, b2, b3, out)
}
