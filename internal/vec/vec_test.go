package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{name: "empty", a: nil, b: nil, want: 0},
		{name: "orthogonal", a: []float64{1, 0}, b: []float64{0, 1}, want: 0},
		{name: "parallel", a: []float64{1, 2, 3}, b: []float64{2, 4, 6}, want: 28},
		{name: "negative", a: []float64{-1, 2}, b: []float64{3, -4}, want: -11},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); got != tt.want {
				t.Errorf("Dot(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	v := []float64{3, 4}
	if got := Norm2(v); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
	if got := Norm(v); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Norm(nil); got != 0 {
		t.Errorf("Norm(nil) = %v, want 0", got)
	}
}

func TestDist2(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 6, 3}
	if got := Dist2(a, b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := Dist(a, b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestAxpyScaleAddSub(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	if !ApproxEqual(y, []float64{3, 5, 7}, 0) {
		t.Errorf("Axpy result = %v", y)
	}
	Scale(0.5, y)
	if !ApproxEqual(y, []float64{1.5, 2.5, 3.5}, 0) {
		t.Errorf("Scale result = %v", y)
	}
	dst := make([]float64, 3)
	Add(dst, []float64{1, 2, 3}, []float64{4, 5, 6})
	if !ApproxEqual(dst, []float64{5, 7, 9}, 0) {
		t.Errorf("Add result = %v", dst)
	}
	Sub(dst, []float64{1, 2, 3}, []float64{4, 5, 6})
	if !ApproxEqual(dst, []float64{-3, -3, -3}, 0) {
		t.Errorf("Sub result = %v", dst)
	}
	Mul(dst, []float64{1, 2, 3}, []float64{4, 5, 6})
	if !ApproxEqual(dst, []float64{4, 10, 18}, 0) {
		t.Errorf("Mul result = %v", dst)
	}
}

func TestAddAliasing(t *testing.T) {
	a := []float64{1, 2}
	Add(a, a, a)
	if !ApproxEqual(a, []float64{2, 4}, 0) {
		t.Errorf("aliased Add = %v, want [2 4]", a)
	}
}

func TestMean(t *testing.T) {
	vs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	dst := make([]float64, 2)
	Mean(dst, vs)
	if !ApproxEqual(dst, []float64{3, 4}, 1e-15) {
		t.Errorf("Mean = %v, want [3 4]", dst)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean of zero vectors did not panic")
		}
	}()
	Mean(make([]float64, 1), nil)
}

func TestWeightedSum(t *testing.T) {
	vs := [][]float64{{1, 0}, {0, 1}}
	dst := make([]float64, 2)
	WeightedSum(dst, []float64{2, 3}, vs)
	if !ApproxEqual(dst, []float64{2, 3}, 0) {
		t.Errorf("WeightedSum = %v", dst)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := []float64{1, 2, 3}
	c := Clone(v)
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
	if Clone(nil) != nil {
		t.Error("Clone(nil) != nil")
	}
	vs := [][]float64{{1}, {2}}
	cs := CloneAll(vs)
	cs[0][0] = 42
	if vs[0][0] != 1 {
		t.Error("CloneAll shares storage")
	}
}

func TestArgminArgmax(t *testing.T) {
	tests := []struct {
		name     string
		v        []float64
		min, max int
	}{
		{name: "empty", v: nil, min: -1, max: -1},
		{name: "single", v: []float64{7}, min: 0, max: 0},
		{name: "basic", v: []float64{3, 1, 2}, min: 1, max: 0},
		{name: "ties pick first", v: []float64{1, 1, 0, 0}, min: 2, max: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Argmin(tt.v); got != tt.min {
				t.Errorf("Argmin(%v) = %d, want %d", tt.v, got, tt.min)
			}
			if got := Argmax(tt.v); got != tt.max {
				t.Errorf("Argmax(%v) = %d, want %d", tt.v, got, tt.max)
			}
		})
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Error("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("+Inf not detected")
	}
}

func TestClamp(t *testing.T) {
	v := []float64{-5, 0.5, 7}
	Clamp(v, 0, 1)
	if !ApproxEqual(v, []float64{0, 0.5, 1}, 0) {
		t.Errorf("Clamp = %v", v)
	}
}

func TestMaxAbsSum(t *testing.T) {
	if got := MaxAbs([]float64{-3, 2}); got != 3 {
		t.Errorf("MaxAbs = %v", got)
	}
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Errorf("Sum = %v", got)
	}
}

// Property: Cauchy–Schwarz, |<a,b>| <= |a||b|.
func TestDotCauchySchwarzProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := sanitize(raw[:half]), sanitize(raw[half:2*half])
		lhs := math.Abs(Dot(a, b))
		rhs := Norm(a) * Norm(b)
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Dist.
func TestDistTriangleProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		third := len(raw) / 3
		a := sanitize(raw[:third])
		b := sanitize(raw[third : 2*third])
		c := sanitize(raw[2*third : 3*third])
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sanitize maps arbitrary quick-generated floats into a bounded, finite
// range so that property checks are not dominated by overflow.
func sanitize(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Mod(x, 1e6)
	}
	return out
}
