package vec

// ActiveSet is a logical row/column deletion view over a DistanceMatrix:
// vectors can be deactivated one by one without recomputing (or copying)
// any distance. It is the memoization device behind the iterated-Krum
// phase of Bulyan: the O(n²·d) matrix is built once, and each of the
// θ = n − 2f selection rounds only masks the previous winner out of the
// score sums — Θ(n²) per round instead of Θ(n²·d).
//
// Indices handed to ActiveSet methods are always ORIGINAL indices into
// the matrix the view was created from; the view never renumbers.
type ActiveSet struct {
	m     *DistanceMatrix
	alive []bool
	count int
}

// NewActiveSet returns a view over m with every vector active.
func NewActiveSet(m *DistanceMatrix) *ActiveSet {
	alive := make([]bool, m.N())
	for i := range alive {
		alive[i] = true
	}
	return &ActiveSet{m: m, alive: alive, count: m.N()}
}

// Count returns the number of active vectors.
func (a *ActiveSet) Count() int { return a.count }

// Alive reports whether vector i is still active.
func (a *ActiveSet) Alive(i int) bool { return a.alive[i] }

// Deactivate logically deletes vector i from the view. Deactivating an
// already-inactive vector is a no-op.
func (a *ActiveSet) Deactivate(i int) {
	if a.alive[i] {
		a.alive[i] = false
		a.count--
	}
}

// AppendAlive appends the active original indices in ascending order to
// dst and returns the extended slice.
func (a *ActiveSet) AppendAlive(dst []int) []int {
	for i, ok := range a.alive {
		if ok {
			dst = append(dst, i)
		}
	}
	return dst
}

// SumKSmallest returns the sum of the k smallest squared distances from
// active vector i to the OTHER active vectors (the self-distance and
// every deactivated vector are excluded). With k = m − f − 2 over the m
// active vectors this is exactly the Krum score of the shrunken pool,
// computed without rebuilding anything.
//
// scratch must have capacity ≥ k; it is used as the same bounded
// max-heap as DistanceMatrix.SumKSmallestExcludingSelf, so masked and
// unmasked score extraction accumulate in the identical order and agree
// bit for bit.
func (a *ActiveSet) SumKSmallest(i, k int, scratch []float64) float64 {
	if k <= 0 {
		return 0
	}
	row := a.m.Row(i)
	heap := scratch[:0]
	for j, v := range row {
		if j == i || !a.alive[j] {
			continue
		}
		if len(heap) < k {
			heap = append(heap, v)
			siftUp(heap, len(heap)-1)
			continue
		}
		if v < heap[0] {
			heap[0] = v
			siftDown(heap, 0)
		}
	}
	var s float64
	for _, v := range heap {
		s += v
	}
	return s
}
