package vec

import (
	"testing"
	"testing/quick"
)

func TestMatMulBasic(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	dst := NewDense(2, 2)
	MatMul(dst, a, b)
	want := []float64{58, 64, 139, 154}
	if !ApproxEqual(dst.Data, want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", dst.Data, want)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad shapes did not panic")
		}
	}()
	MatMul(NewDense(2, 2), NewDense(2, 3), NewDense(2, 2))
}

// Oracle implementations used by the property tests.
func naiveMatMul(a, b *Dense) *Dense {
	dst := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

func transpose(m *Dense) *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

func randomDense(rng *RNG, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	rng.FillNormal(m.Data, 0, 1)
	return m
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	f := func(seed uint64, r8, k8, c8 uint8) bool {
		r, k, c := int(r8%6)+1, int(k8%6)+1, int(c8%6)+1
		rng := NewRNG(seed)
		a := randomDense(rng, r, k)
		b := randomDense(rng, k, c)
		dst := NewDense(r, c)
		MatMul(dst, a, b)
		return ApproxEqual(dst.Data, naiveMatMul(a, b).Data, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatMulATBMatchesTranspose(t *testing.T) {
	f := func(seed uint64, r8, k8, c8 uint8) bool {
		r, k, c := int(r8%5)+1, int(k8%5)+1, int(c8%5)+1
		rng := NewRNG(seed)
		a := randomDense(rng, k, r) // aᵀ is r×k
		b := randomDense(rng, k, c)
		dst := NewDense(r, c)
		MatMulATB(dst, a, b)
		return ApproxEqual(dst.Data, naiveMatMul(transpose(a), b).Data, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatMulABTMatchesTranspose(t *testing.T) {
	f := func(seed uint64, r8, k8, c8 uint8) bool {
		r, k, c := int(r8%5)+1, int(k8%5)+1, int(c8%5)+1
		rng := NewRNG(seed)
		a := randomDense(rng, r, k)
		b := randomDense(rng, c, k) // bᵀ is k×c
		dst := NewDense(r, c)
		MatMulABT(dst, a, b)
		return ApproxEqual(dst.Data, naiveMatMul(a, transpose(b)).Data, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	AddRowVector(m, []float64{10, 20, 30})
	want := []float64{11, 22, 33, 14, 25, 36}
	if !ApproxEqual(m.Data, want, 0) {
		t.Errorf("AddRowVector = %v, want %v", m.Data, want)
	}
	sums := make([]float64, 3)
	SumRows(sums, m)
	if !ApproxEqual(sums, []float64{25, 47, 69}, 0) {
		t.Errorf("SumRows = %v", sums)
	}
}

func TestDenseCloneRowSet(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 {
		t.Error("Set/At mismatch")
	}
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 5 {
		t.Error("Clone shares storage")
	}
	row := m.Row(0)
	row[0] = 7
	if m.At(0, 0) != 7 {
		t.Error("Row does not alias storage")
	}
	m.Zero()
	if m.At(0, 1) != 0 {
		t.Error("Zero did not clear")
	}
}

func TestNewDenseFromValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDenseFrom with wrong length did not panic")
		}
	}()
	NewDenseFrom(2, 2, []float64{1, 2, 3})
}
