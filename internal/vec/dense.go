package vec

import "fmt"

// Dense is a row-major dense matrix of float64. It is the workhorse of
// the from-scratch neural-network substrate (package model): forward and
// backward passes are expressed as a handful of Dense products.
//
// The zero value is an empty 0×0 matrix; construct with NewDense to get a
// usable shape.
type Dense struct {
	Rows, Cols int
	// Data holds Rows*Cols values, row major: element (i, j) lives at
	// Data[i*Cols+j].
	Data []float64
}

// NewDense allocates a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewDense(%d, %d): negative dimension", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFrom wraps an existing backing slice (no copy). It panics if
// len(data) != rows*cols.
func NewDenseFrom(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("vec: NewDenseFrom: len(data)=%d, want %d", len(data), rows*cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	return &Dense{Rows: m.Rows, Cols: m.Cols, Data: Clone(m.Data)}
}

// Zero sets all elements to 0.
func (m *Dense) Zero() { Zero(m.Data) }

// MatMul computes dst = a·b where a is (r×k) and b is (k×c); dst must be
// (r×c) and must not alias a or b. The k-loop is innermost over
// contiguous rows of b, which keeps the kernel cache-friendly without
// resorting to blocking — sufficient for the model sizes in this
// repository (d up to a few hundred thousand parameters).
func MatMul(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("vec: MatMul: shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulATB computes dst = aᵀ·b where a is (k×r) and b is (k×c); dst must
// be (r×c). Used for weight-gradient accumulation in backprop
// (dW = xᵀ·dy) without materializing transposes.
func MatMulATB(dst, a, b *Dense) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("vec: MatMulATB: shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulABT computes dst = a·bᵀ where a is (r×k) and b is (c×k); dst must
// be (r×c). Used for input-gradient propagation in backprop
// (dx = dy·Wᵀ).
func MatMulABT(dst, a, b *Dense) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("vec: MatMulABT: shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] = Dot(arow, b.Row(j))
		}
	}
}

// AddRowVector adds the row vector v to every row of m in place
// (broadcast bias addition).
func AddRowVector(m *Dense, v []float64) {
	checkLen("AddRowVector", m.Cols, len(v))
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, b := range v {
			row[j] += b
		}
	}
}

// SumRows accumulates the column-wise sum of m into dst (len m.Cols) —
// the bias-gradient reduction in backprop.
func SumRows(dst []float64, m *Dense) {
	checkLen("SumRows", m.Cols, len(dst))
	Zero(dst)
	for i := 0; i < m.Rows; i++ {
		Axpy(1, m.Row(i), dst)
	}
}
