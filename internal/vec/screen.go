package vec

import (
	"math"
	"sync/atomic"
)

// This file implements screened k-smallest-score selection: the
// large-n path that lets Krum-style selection skip most of the n²
// full d-dimensional inner products behind the distance matrix.
//
// The idea is metric pruning (Elkan-style): per-vector norms give the
// reverse triangle inequality ‖a−b‖ ≥ |‖a‖−‖b‖|, and a small set of
// pivot vectors with exactly-computed distance rows gives the
// triangle bounds ‖a−b‖ ≥ |‖a−p‖−‖b−p‖| for every pivot p. From
// those per-pair lower bounds a lower bound on each candidate's Krum
// score (the sum of its k smallest squared distances) follows, and a
// candidate whose score lower bound already exceeds the running m-th
// best EXACT score can be skipped without ever computing its row.
//
// EXACTNESS: bounds may prune, never decide. Every candidate that
// survives screening gets its full distance row recomputed through
// the canonical accumulation order of gram.go (bit-identical to what
// a full DistanceMatrix build produces) and its score extracted by
// the same bounded-heap sumKSmallest as the dense path, so the
// selected index sequence — and therefore every byte derived from it
// — is bit-identical to the unscreened path. Pruning is sound
// because the bounds are deflated by a rigorous floating-point error
// margin (see screenErrConst) and the prune test is strict: a pruned
// candidate's true score is strictly greater than the m-th smallest
// selected score, so it could not have entered the selection under
// any (score, index) tie-break. Inputs that defeat the bounds
// (non-finite norms or scores) disable pruning entirely and fall
// back to evaluating every row — still through the canonical
// kernels, so exactness is unconditional.
var screenPrunes atomic.Uint64

// ScreenPruneCount returns the number of candidate rows pruned by
// screened selection since process start — snapshot-and-diff test
// instrumentation, like MatrixBuildCount.
func ScreenPruneCount() uint64 { return screenPrunes.Load() }

// screenErrConst scales the floating-point error margin applied to
// every screening bound. The dot-product error model is the one the
// dist property suite pins (gramTol): |computed − exact| ≤
// c·(d+1)·ε·(‖a‖²+‖b‖²+1). gramTol uses c = 8; screening chains two
// bound layers (pivot distances and candidate distances) plus a few
// arithmetic steps of its own, so it deflates with c = 32. A larger
// constant only costs prune rate, never correctness.
const screenErrConst = 32

// screenRelSlack absorbs the handful of exactly-rounded operations
// (subtract, square, max) the bound assembly itself performs.
const screenRelSlack = 1 - 1e-12

// refineMissBudget is the adaptive cutoff on the per-candidate pivot
// refinement: after this many consecutive refinements that failed to
// prune, the selection loop stops paying the Θ(n·pivots) refinement
// and evaluates remaining candidates on the norm bound alone. Once the
// loop is deep into a cluster of genuinely-close candidates (which the
// triangle bounds cannot exclude), further refinement is pure
// overhead; a prune resets the budget. Like the pivot budget, this
// only trades prune rate — never results.
const refineMissBudget = 8

// Screener performs screened k-smallest Krum-score selection over one
// set of vectors. It owns contiguous vector copies and norms (via an
// internal DistanceMatrix shell) and materializes exact distance rows
// lazily: pivot rows at construction, candidate rows only when the
// bounds fail to prune them. A Screener is NOT goroutine-safe; like
// the RoundCache that may own it, it serves one sequential round loop.
type Screener struct {
	m    *DistanceMatrix
	done []bool // done[i]: row i of m.d holds exact distances
	// pivots are the indices whose rows were materialized up front to
	// seed the triangle bounds (greedy farthest-first, deterministic).
	pivots []int
	// rlo/rhi bracket each vector's true Euclidean norm from below and
	// above across the norm computation's rounding error.
	rlo, rhi []float64
	// tlo/thi bracket the true distance from pivot p to vector j:
	// tlo[p][j] ≤ dist(pivot_p, v_j) ≤ thi[p][j].
	tlo, thi [][]float64
	// disabled records that a non-finite norm or score was seen: no
	// pruning, every candidate is evaluated exactly.
	disabled bool

	// idx is materializeRow's gathered-column scratch (capacity n).
	idx []int

	// Cumulative counters (snapshot-and-diff, see Stats).
	exactRows, prunedRows, dots uint64

	// Memo of the most recent selection, so selection + aggregation
	// within one round pay the screening pass once.
	lastK, lastM int
	lastSel      []int
}

// ScreenStats is a snapshot of a Screener's work counters. All
// counters are cumulative across the screener's lifetime (including
// cross-round reuse through a RoundCache); diff two snapshots to
// measure one selection.
type ScreenStats struct {
	// Pivots is the number of pivot rows materialized at construction.
	Pivots int
	// ExactRows counts candidate rows materialized exactly (pivot rows
	// included).
	ExactRows uint64
	// PrunedRows counts candidate rows skipped by the bounds.
	PrunedRows uint64
	// Dots counts full d-dimensional inner products computed — the
	// unit the dense path pays n·(n−1)/2 of per matrix.
	Dots uint64
	// Disabled reports that non-finite input disabled pruning.
	Disabled bool
}

// Stats returns the screener's counters.
func (s *Screener) Stats() ScreenStats {
	return ScreenStats{
		Pivots:     len(s.pivots),
		ExactRows:  s.exactRows,
		PrunedRows: s.prunedRows,
		Dots:       s.dots,
		Disabled:   s.disabled,
	}
}

// N returns the number of vectors.
func (s *Screener) N() int { return s.m.n }

// Dim returns the common vector dimension.
func (s *Screener) Dim() int { return s.m.dim }

// VectorEqual reports whether v is element-for-element identical to
// the screener's stored copy of vector i — the same exact comparison
// as DistanceMatrix.VectorEqual (NaN ≠ NaN).
func (s *Screener) VectorEqual(i int, v []float64) bool { return s.m.VectorEqual(i, v) }

// screenPivotCount returns the deterministic pivot budget for n
// vectors: roughly 1.5·∛n, clamped to [3, 32]. The exact choice can
// change only prune rate, never results.
func screenPivotCount(n int) int {
	p := 3 + int(1.5*math.Cbrt(float64(n)))
	if p > 32 {
		p = 32
	}
	if p > n {
		p = n
	}
	return p
}

// NewScreener builds a screener over the vectors: contiguous copies
// and squared norms (Θ(n·d)), then pivot selection with exact pivot
// rows (Θ(p·n·d) inner products). No other distances are computed
// until SelectKSmallest needs them.
func NewScreener(vectors [][]float64) *Screener {
	m := newShell(vectors)
	n := m.n
	s := &Screener{
		m:    m,
		done: make([]bool, n),
		rlo:  make([]float64, n),
		rhi:  make([]float64, n),
	}
	s.refreshNormBounds(nil)
	s.choosePivots()
	return s
}

// refreshNormBounds recomputes rlo/rhi (and the disabled flag) for the
// given indices, or for every vector when indices is nil.
func (s *Screener) refreshNormBounds(indices []int) {
	ce := screenErrConst * float64(s.m.dim+1) * 2.22e-16
	one := func(i int) {
		nrm := s.m.nrm[i]
		if !isFinite(nrm) {
			s.disabled = true
			s.rlo[i], s.rhi[i] = 0, math.Inf(1)
			return
		}
		e := ce * (2*nrm + 1)
		lo := nrm - e
		if lo < 0 {
			lo = 0
		}
		s.rlo[i] = math.Sqrt(lo)
		s.rhi[i] = math.Sqrt(nrm + e)
	}
	if indices == nil {
		for i := 0; i < s.m.n; i++ {
			one(i)
		}
		return
	}
	for _, i := range indices {
		one(i)
	}
}

// isFinite reports x is neither NaN nor ±Inf.
func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// choosePivots picks the pivot set greedily farthest-first (start at
// index 0; each next pivot maximizes its exact distance to the chosen
// set, smallest index on ties) and materializes each pivot's exact
// row. Deterministic by construction.
func (s *Screener) choosePivots() {
	n := s.m.n
	if n == 0 {
		return
	}
	budget := screenPivotCount(n)
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = math.Inf(1)
	}
	next := 0
	for len(s.pivots) < budget {
		s.pivots = append(s.pivots, next)
		s.materializeRow(next)
		row := s.m.Row(next)
		best, bestD := -1, 0.0
		for j := 0; j < n; j++ {
			if row[j] < minD[j] {
				minD[j] = row[j]
			}
			if !s.done[j] && minD[j] > bestD {
				best, bestD = j, minD[j]
			}
		}
		if best < 0 || bestD == 0 {
			break // every remaining vector duplicates a pivot
		}
		next = best
	}
	s.refreshPivotBounds(nil)
}

// refreshPivotBounds rebuilds the tlo/thi brackets from the pivot
// rows — for the given column indices only, or for every column when
// indices is nil. Non-finite pivot distances disable pruning.
func (s *Screener) refreshPivotBounds(indices []int) {
	if s.tlo == nil {
		n := s.m.n
		s.tlo = make([][]float64, len(s.pivots))
		s.thi = make([][]float64, len(s.pivots))
		for p := range s.pivots {
			s.tlo[p] = make([]float64, n)
			s.thi[p] = make([]float64, n)
		}
	}
	for p := range s.pivots {
		s.refreshPivotRow(p, indices)
	}
}

// refreshPivotRow rebuilds pivot p's tlo/thi brackets at the given
// column indices (nil = every column).
func (s *Screener) refreshPivotRow(p int, indices []int) {
	pi := s.pivots[p]
	row := s.m.Row(pi)
	ce := screenErrConst * float64(s.m.dim+1) * 2.22e-16
	one := func(j int) {
		d2 := row[j]
		if !isFinite(d2) {
			s.disabled = true
			s.tlo[p][j], s.thi[p][j] = 0, math.Inf(1)
			return
		}
		e := ce * (s.m.nrm[pi] + s.m.nrm[j] + 1)
		lo := d2 - e
		if lo < 0 {
			lo = 0
		}
		s.tlo[p][j] = math.Sqrt(lo)
		s.thi[p][j] = math.Sqrt(d2 + e)
	}
	if indices == nil {
		for j := 0; j < s.m.n; j++ {
			one(j)
		}
		return
	}
	for _, j := range indices {
		one(j)
	}
}

// materializeRow fills row i of the matrix with exact distances. Cells
// against already-materialized rows are copied from the symmetric side
// (the canonical order makes ⟨v_i,v_j⟩ ≡ ⟨v_j,v_i⟩ bit for bit, so the
// copy equals a recompute); the rest run the same kernels as a dense
// build: Dist2 below naiveDimMax, gathered 1×4 tile dots assembled
// exactly as assembleRow above it. Either way every cell is
// bit-identical to the cell a full DistanceMatrix build would hold.
func (s *Screener) materializeRow(i int) {
	if s.done[i] {
		return
	}
	m := s.m
	n := m.n
	row := m.d[i*n : (i+1)*n]
	if !m.gram {
		vi := m.vector(i)
		for j := 0; j < n; j++ {
			switch {
			case j == i:
				row[j] = 0
			case s.done[j]:
				row[j] = m.d[j*n+i]
			default:
				row[j] = Dist2(vi, m.vector(j))
				s.dots++
			}
		}
		s.done[i] = true
		s.exactRows++
		return
	}
	// Gather the columns that need fresh inner products; the rest copy
	// from the symmetric side of already-materialized rows. Gathering
	// matters late in a selection pass, when done columns fragment the
	// row: dot4 takes four arbitrary column slices, so the 1×4 tile
	// stays fully fed instead of degrading to per-column calls. Each
	// column still accumulates in the canonical dotPair order, so the
	// staged values are bit-identical to a dense build's.
	if cap(s.idx) < n {
		s.idx = make([]int, 0, n)
	}
	idx := s.idx[:0]
	for j := 0; j < n; j++ {
		switch {
		case j == i:
			row[j] = 0
		case s.done[j]:
			row[j] = m.d[j*n+i]
		default:
			idx = append(idx, j)
		}
	}
	vi := m.vector(i)
	t := 0
	for ; t+4 <= len(idx); t += 4 {
		r0, r1, r2, r3 := dot4(vi,
			m.vector(idx[t]), m.vector(idx[t+1]), m.vector(idx[t+2]), m.vector(idx[t+3]))
		row[idx[t]], row[idx[t+1]], row[idx[t+2]], row[idx[t+3]] = r0, r1, r2, r3
	}
	for ; t < len(idx); t++ {
		row[idx[t]] = dotPair(vi, m.vector(idx[t]))
	}
	s.dots += uint64(len(idx))
	// Assemble the fresh cells into clamped squared distances — the
	// same expression as assembleRow, cell for cell (no mirroring:
	// not-yet-done rows own no valid storage to mirror into).
	nrmI := m.nrm[i]
	for _, j := range idx {
		v := nrmI + m.nrm[j] - 2*row[j]
		if v < 0 {
			v = 0
		}
		row[j] = v
	}
	s.done[i] = true
	s.exactRows++
}

// materializeRowPair materializes two pending rows together through the
// 2×4 tile (dot24) — the same kernel the dense build's row pairs run,
// with half the column-vector traffic of two 1×4 passes. The done
// bitmap is shared, so both rows need fresh dots at exactly the same
// columns and one gathered index list serves both. Every cell is still
// bit-identical to a dense build's: dot24's lanes accumulate in the
// canonical dotPair order (gram contract), and the assembly expression
// matches assembleRow cell for cell. Falls back to per-row
// materialization off the Gram path or when either row is already done.
func (s *Screener) materializeRowPair(i0, i1 int) {
	m := s.m
	if !m.gram || i0 == i1 || s.done[i0] || s.done[i1] {
		s.materializeRow(i0)
		s.materializeRow(i1)
		return
	}
	n := m.n
	row0 := m.d[i0*n : (i0+1)*n]
	row1 := m.d[i1*n : (i1+1)*n]
	if cap(s.idx) < n {
		s.idx = make([]int, 0, n)
	}
	idx := s.idx[:0]
	for j := 0; j < n; j++ {
		if j == i0 || j == i1 {
			continue
		}
		if s.done[j] {
			row0[j] = m.d[j*n+i0]
			row1[j] = m.d[j*n+i1]
			continue
		}
		idx = append(idx, j)
	}
	v0, v1 := m.vector(i0), m.vector(i1)
	cross := dotPair(v0, v1)
	var t [8]float64
	p := 0
	for ; p+4 <= len(idx); p += 4 {
		dot24(v0, v1,
			m.vector(idx[p]), m.vector(idx[p+1]), m.vector(idx[p+2]), m.vector(idx[p+3]), &t)
		row0[idx[p]], row0[idx[p+1]], row0[idx[p+2]], row0[idx[p+3]] = t[0], t[1], t[2], t[3]
		row1[idx[p]], row1[idx[p+1]], row1[idx[p+2]], row1[idx[p+3]] = t[4], t[5], t[6], t[7]
	}
	for ; p < len(idx); p++ {
		vj := m.vector(idx[p])
		row0[idx[p]] = dotPair(v0, vj)
		row1[idx[p]] = dotPair(v1, vj)
	}
	s.dots += 2*uint64(len(idx)) + 1
	n0, n1 := m.nrm[i0], m.nrm[i1]
	d2 := n0 + n1 - 2*cross
	if d2 < 0 {
		d2 = 0
	}
	row0[i0], row1[i1] = 0, 0
	row0[i1], row1[i0] = d2, d2
	for _, j := range idx {
		v := n0 + m.nrm[j] - 2*row0[j]
		if v < 0 {
			v = 0
		}
		row0[j] = v
		w := n1 + m.nrm[j] - 2*row1[j]
		if w < 0 {
			w = 0
		}
		row1[j] = w
	}
	s.done[i0], s.done[i1] = true, true
	s.exactRows += 2
}

// materializeAll completes every pending row, pairing them through the
// 2×4 tile.
func (s *Screener) materializeAll() {
	prev := -1
	for i := 0; i < s.m.n; i++ {
		if s.done[i] {
			continue
		}
		if prev < 0 {
			prev = i
			continue
		}
		s.materializeRowPair(prev, i)
		prev = -1
	}
	if prev >= 0 {
		s.materializeRow(prev)
	}
}

// normGapRow stages into g the norm-screen gap |‖v_i‖−‖v_j‖| for every
// j, in true-distance units and possibly negative (the reverse triangle
// inequality applied to the origin): dist(i,j) ≥ rlo[i]−rhi[j] and
// ≥ rlo[j]−rhi[i]. Cost is Θ(n) with no pivot work — the cheap first
// screen every candidate row pays.
func (s *Screener) normGapRow(i int, g []float64) {
	rlo, rhi := s.rlo, s.rhi
	rloI, rhiI := rlo[i], rhi[i]
	for j := range g {
		v := rloI - rhi[j]
		if w := rlo[j] - rhiI; w > v {
			v = w
		}
		g[j] = v
	}
	g[i] = 0
}

// pivotGapRow folds the per-pivot triangle gaps into a staged gap row:
// dist(i,j) ≥ dist(i,p)−dist(j,p) for every pivot p, using the
// [tlo, thi] brackets so floating-point error in the pivot distances
// can only weaken the bound. Θ(n·pivots) — the refinement stage, paid
// only by rows the norm screen could not already exclude. The loop
// runs pivot-outer over flat per-pivot slices so the inner body is
// branch-cheap.
func (s *Screener) pivotGapRow(i int, g []float64) {
	for p := range s.pivots {
		tlo, thi := s.tlo[p], s.thi[p]
		tloI, thiI := tlo[i], thi[i]
		for j := range g {
			v := g[j]
			if w := tloI - thi[j]; w > v {
				v = w
			}
			if w := tlo[j] - thiI; w > v {
				v = w
			}
			g[j] = v
		}
	}
	g[i] = 0
}

// deflateGapRow turns staged true-distance gaps into per-pair lower
// bounds on the EXACT computed squared distance d²(i,j): non-positive
// gaps clamp to 0, positive gaps are squared and deflated by the
// floating-point margin so the bound can never exceed what the
// canonical kernel would compute.
func (s *Screener) deflateGapRow(i int, g []float64) {
	nrm := s.m.nrm
	nrmI := nrm[i]
	ce := screenErrConst * float64(s.m.dim+1) * 2.22e-16
	for j := range g {
		v := g[j]
		if v <= 0 {
			g[j] = 0
			continue
		}
		v = v*v*screenRelSlack - ce*(nrmI+nrm[j]+1)
		if v < 0 {
			v = 0
		}
		g[j] = v
	}
	g[i] = 0
}

// lowerBoundRow writes into lb the full per-pair lower bound row (norm
// screen plus every pivot refinement, deflated). The selection path
// stages the same passes separately so the pivot cost is lazy; this
// composition is the reference the bound-soundness property tests
// exercise.
func (s *Screener) lowerBoundRow(i int, lb []float64) {
	s.normGapRow(i, lb)
	s.pivotGapRow(i, lb)
	s.deflateGapRow(i, lb)
}

// boundSum returns the sum of the k smallest entries of the bound row
// lb (self column excluded) — the score lower bound the pruning
// threshold compares against. Bound rows are finite and non-negative
// by construction, so when at least k off-diagonal entries are exactly
// zero the k smallest are all zero and the sum is exactly 0 in any
// summation order: rows inside the honest cluster (whose gaps all
// clamp to 0 against their neighbours) skip the heap pass entirely.
func boundSum(lb []float64, i, k int, scratch []float64) float64 {
	zeros := 0
	for j, v := range lb {
		if v == 0 && j != i {
			zeros++
		}
	}
	if zeros >= k {
		return 0
	}
	return sumKSmallest(lb, i, k, scratch)
}

// selEntry is one (score, index) selection candidate.
type selEntry struct {
	v float64
	i int
}

// insertBounded inserts e into the (value, index)-sorted bounded list
// sel of capacity m, returning the updated list — the same ordering
// rule as KSmallestIndices, maintained incrementally.
func insertBounded(sel []selEntry, e selEntry, m int) []selEntry {
	if len(sel) == m && !lessEntry(e.v, e.i, sel[m-1].v, sel[m-1].i) {
		return sel
	}
	pos := len(sel)
	for pos > 0 && lessEntry(e.v, e.i, sel[pos-1].v, sel[pos-1].i) {
		pos--
	}
	if len(sel) < m {
		sel = append(sel, selEntry{})
	}
	copy(sel[pos+1:], sel[pos:len(sel)-1])
	sel[pos] = e
	return sel
}

// SelectKSmallest returns the indices of the m smallest Krum scores
// (each score the sum of the k smallest squared distances to the other
// vectors), ordered by (score, index) — exactly the sequence the dense
// path produces from KSmallestIndices over a full score slice, but
// computing full distance rows only for candidates the bounds cannot
// exclude. The returned slice is freshly allocated.
//
// Callers are responsible for k, m validation (Krum passes
// k = n−f−2 ≥ 1, m = 1; MultiKrum validates 1 ≤ m ≤ n); out-of-range
// values degrade gracefully (k ≤ 0 scores everything 0, m is clamped
// to n).
func (s *Screener) SelectKSmallest(k, m int) []int {
	n := s.m.n
	if m > n {
		m = n
	}
	if m <= 0 {
		return nil
	}
	if s.lastSel != nil && s.lastK == k && s.lastM == m {
		return append([]int(nil), s.lastSel...)
	}
	sel := s.selectKSmallest(k, m)
	s.lastK, s.lastM, s.lastSel = k, m, sel
	return append([]int(nil), sel...)
}

// selectKSmallest is the uncached selection body.
func (s *Screener) selectKSmallest(k, m int) []int {
	n := s.m.n
	if s.disabled {
		return s.selectDense(k, m)
	}
	scratch := GetFloats(k)
	defer PutFloats(scratch)
	lbRow := GetFloats(n)
	defer PutFloats(lbRow)
	lbRow = lbRow[:n]

	// Candidate order: rows already materialized first (their exact
	// evaluation costs no inner products — evaluating them early only
	// tightens the threshold), then the rest by ascending score lower
	// bound. Evaluation order cannot change the result, only how much
	// gets pruned: the final selection is the m smallest (score, index)
	// pairs over every evaluated candidate, and pruned candidates
	// provably cannot enter it.
	//
	// Stage 1 bounds each candidate with the norm screen alone — Θ(n)
	// per row. The Θ(n·pivots) triangle refinement is deferred into the
	// evaluation loop, where it is paid one row at a time and only by
	// candidates the norm screen could not already prune.
	type cand struct {
		lb float64
		i  int
	}
	cands := make([]cand, 0, n)
	var free []int
	for i := 0; i < n; i++ {
		if s.done[i] {
			free = append(free, i)
			continue
		}
		s.normGapRow(i, lbRow)
		s.deflateGapRow(i, lbRow)
		cands = append(cands, cand{lb: boundSum(lbRow, i, k, scratch), i: i})
	}
	// Stable insertion sort by (lb, index): n is the matrix side, and
	// the comparison must stay deterministic.
	for a := 1; a < len(cands); a++ {
		c := cands[a]
		b := a
		for b > 0 && lessEntry(c.lb, c.i, cands[b-1].lb, cands[b-1].i) {
			cands[b] = cands[b-1]
			b--
		}
		cands[b] = c
	}

	sel := make([]selEntry, 0, m)
	refineMisses := 0
	evaluate := func(i int) bool {
		s.materializeRow(i)
		score := sumKSmallest(s.m.Row(i), i, k, scratch)
		if math.IsNaN(score) {
			// A NaN score defeats the (value, index) total order the
			// bounded insertion relies on; fall back to the dense
			// path, which replicates KSmallestIndices' NaN handling
			// exactly.
			s.disabled = true
			return false
		}
		sel = insertBounded(sel, selEntry{v: score, i: i}, m)
		return true
	}
	for _, i := range free {
		if !evaluate(i) {
			return s.selectDense(k, m)
		}
	}
	// Candidates that survive their bound checks are materialized two at
	// a time through the 2×4 tile. While one row is pending its partner,
	// the threshold lags by that row's unscored entry — pruning against
	// a stale (larger) threshold is conservative, so every prune
	// decision below stays valid; at worst one extra row is evaluated.
	pending := -1
	ok := true
	for ci, c := range cands {
		// Strict inequality: a candidate whose bound TIES the m-th best
		// score could still displace a larger-index selection entry, so
		// only a strictly larger bound may prune. The threshold only
		// shrinks as more candidates are evaluated and cands is sorted
		// by ascending bound, so the first norm-bound crossing prunes
		// every remaining candidate at once.
		if len(sel) == m && c.lb > sel[m-1].v {
			pruned := len(cands) - ci
			s.prunedRows += uint64(pruned)
			screenPrunes.Add(uint64(pruned))
			break
		}
		// Stage 2: before paying Θ(n·d) for the exact row, refine this
		// candidate's bound with the pivot triangle gaps — Θ(n·pivots).
		// A refined bound can prune only this row (cands is sorted by
		// the norm bound, so later candidates may refine lower); with
		// the selection not yet full nothing can be pruned, so the
		// refinement is skipped, and refineMissBudget stops the
		// refinement once it keeps failing.
		if len(sel) == m && refineMisses < refineMissBudget {
			s.normGapRow(c.i, lbRow)
			s.pivotGapRow(c.i, lbRow)
			s.deflateGapRow(c.i, lbRow)
			if boundSum(lbRow, c.i, k, scratch) > sel[m-1].v {
				s.prunedRows++
				screenPrunes.Add(1)
				refineMisses = 0
				continue
			}
			refineMisses++
		}
		if pending < 0 {
			pending = c.i
			continue
		}
		s.materializeRowPair(pending, c.i)
		ok = evaluate(pending) && evaluate(c.i)
		pending = -1
		if !ok {
			return s.selectDense(k, m)
		}
	}
	if pending >= 0 && !evaluate(pending) {
		return s.selectDense(k, m)
	}
	out := make([]int, len(sel))
	for i, e := range sel {
		out[i] = e.i
	}
	return out
}

// selectDense evaluates every row exactly and selects through the same
// KSmallestIndices call as the dense path — the unconditional fallback
// when bounds are unavailable (non-finite input). No pruning, same
// bits.
func (s *Screener) selectDense(k, m int) []int {
	n := s.m.n
	scratch := GetFloats(k)
	defer PutFloats(scratch)
	scores := GetFloats(n)
	defer PutFloats(scores)
	scores = scores[:n]
	s.materializeAll()
	for i := 0; i < n; i++ {
		scores[i] = sumKSmallest(s.m.Row(i), i, k, scratch)
	}
	return KSmallestIndices(scores, -1, m)
}

// Materialize completes every row and returns the underlying
// DistanceMatrix — bit-identical to NewDistanceMatrix over the same
// vectors. It is the escape hatch for a consumer that needs the full
// matrix after screening has already started (e.g. a dense-only rule
// sharing a screened round).
func (s *Screener) Materialize() *DistanceMatrix {
	s.materializeAll()
	return s.m
}

// UpdateRows replaces every vector named in changed with its entry in
// vectors and repairs all screening state so the screener is
// indistinguishable from a fresh build over the new vector set:
// changed rows lose their materialization (their next use recomputes
// them), surviving materialized rows are patched only at the changed
// columns (Θ(done·c) inner products), and the norm and pivot bounds
// are refreshed only for the changed indices — bounds are invalidated
// for changed rows, never wholesale. Cost: Θ(c·n·d) worst case (a
// changed pivot row rebuilds fully), Θ((p+done)·c·d) typical.
func (s *Screener) UpdateRows(changed []int, vectors [][]float64) {
	if len(changed) == 0 {
		return
	}
	m := s.m
	n := m.n
	isChanged := make([]bool, n)
	uniq := changed[:0:0]
	for _, i := range changed {
		if !isChanged[i] {
			m.setVector(i, vectors[i])
			isChanged[i] = true
			uniq = append(uniq, i)
		}
	}
	changed = uniq
	// Changed rows: whatever was materialized is stale row-wide.
	for i := 0; i < n; i++ {
		if isChanged[i] {
			s.done[i] = false
		}
	}
	// Surviving materialized rows: only the changed columns moved.
	// Patch those cells exactly BEFORE any changed pivot row rebuilds,
	// so the rebuild's symmetric copies out of done rows are current.
	for i := 0; i < n; i++ {
		if !s.done[i] {
			continue
		}
		row := m.d[i*n : (i+1)*n]
		for _, j := range changed {
			row[j] = m.cell(i, j)
			s.dots++
		}
	}
	// Changed pivot rows must stay exact — rebuild them outright.
	for _, p := range s.pivots {
		if isChanged[p] {
			s.materializeRow(p)
		}
	}
	// Bounds: invalidated only for changed rows on the common path. A
	// previously disabled screener refreshes wholesale instead — the
	// poison may live in unchanged entries, and only a full recheck can
	// prove this round clean enough to re-enable pruning.
	if s.disabled {
		s.disabled = false
		s.refreshNormBounds(nil)
		s.refreshPivotBounds(nil)
	} else {
		s.refreshNormBounds(changed)
		s.refreshPivotBounds(changed)
		for p, pi := range s.pivots {
			if isChanged[pi] {
				s.refreshPivotRow(p, nil)
			}
		}
	}
	s.lastSel = nil
}

// cell computes the exact distance between vectors i and j with the
// same kernel and canonical accumulation order as a full build: Dist2
// below naiveDimMax, norms minus twice the canonical inner product
// (clamped) above it.
func (m *DistanceMatrix) cell(i, j int) float64 {
	if i == j {
		return 0
	}
	if !m.gram {
		return Dist2(m.vector(i), m.vector(j))
	}
	v := m.nrm[i] + m.nrm[j] - 2*dotPair(m.vector(i), m.vector(j))
	if v < 0 {
		v = 0
	}
	return v
}
