//go:build !amd64

package vec

// Non-amd64 platforms run only the portable pure-Go tier. Its "pair2"
// order is shared with amd64's SSE2 tier, so results (and store keys)
// agree bit for bit across a mixed go/sse2 fleet.
func availableTiers() []Tier { return []Tier{TierGo} }
