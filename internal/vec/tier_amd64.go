//go:build amd64

package vec

// amd64 tier availability: SSE2 is part of the architectural baseline,
// AVX2 requires a CPUID probe. The probe is hand-rolled (cpuid_amd64.s)
// rather than a dependency: three CPUID leaves and one XGETBV.

// cpuid executes CPUID with the given EAX/ECX inputs.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-controlled extended-state enable mask.
// Only valid when CPUID.1:ECX.OSXSAVE is set.
func xgetbv0() uint64

// availableTiers probes the CPU once at init.
func availableTiers() []Tier {
	tiers := []Tier{TierGo, TierSSE2}
	if cpuHasAVX2FMA() {
		tiers = append(tiers, TierAVX2)
	}
	return tiers
}

// cpuHasAVX2FMA reports whether the AVX2+FMA tier can run: the CPU must
// advertise AVX, FMA and AVX2, and the OS must have enabled YMM state
// saving (OSXSAVE set and XCR0 bits 1|2 — SSE and AVX state — granted),
// otherwise executing a VEX.256 instruction faults.
func cpuHasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	const ymmState = 0x6 // XCR0[1] XMM + XCR0[2] YMM
	if xgetbv0()&ymmState != ymmState {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}
