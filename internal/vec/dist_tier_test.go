package vec

import (
	"math"
	"testing"
)

// The cross-tier differential matrix. Every WITHIN-tier guarantee the
// package makes (blocked ≡ oracle within the principled band, parallel
// ≡ serial bit for bit, incremental ≡ rebuild bit for bit, screened ≡
// dense index-for-index) must hold under each available tier — the
// battery here forces each tier in turn and re-proves them. ACROSS
// tiers only norm-relative agreement is promised (gram.go contract),
// and the agreement tests below pin exactly that: adversarial
// magnitudes stay inside the shared error band, and non-finite inputs
// classify identically (a NaN cell under one tier is a NaN cell under
// every tier) so screening decisions cannot diverge on poisoned rounds.

// TestPropertyBatteryPerTier re-runs the within-tier determinism
// battery once per available tier.
func TestPropertyBatteryPerTier(t *testing.T) {
	for _, tier := range AvailableTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			rng := NewRNG(uint64(1000 + tier))

			// Blocked ≡ oracle + invariants, straddling naiveDimMax, both
			// tile tails, and the gramBlock depth seam (the last shape
			// takes the depth-first buildBlocked path, with an odd n so
			// the trailing row is covered there too).
			for _, shape := range []struct{ n, d int }{{1, 1}, {3, 17}, {7, 33}, {9, 64}, {12, 129}, {40, 251}, {7, 2*gramBlock + 51}} {
				vs := adversarialVectors(rng, shape.n, shape.d)
				m := NewDistanceMatrix(vs)
				checkMatrixInvariants(t, m)
				checkAgainstOracle(t, m, vs)

				// Parallel ≡ serial, bit for bit.
				for _, workers := range []int{2, 5} {
					par := NewDistanceMatrixParallel(vs, workers)
					for i := 0; i < shape.n; i++ {
						for j := 0; j < shape.n; j++ {
							if m.At(i, j) != par.At(i, j) {
								t.Fatalf("n=%d d=%d workers=%d: parallel cell (%d,%d) differs: %v vs %v",
									shape.n, shape.d, workers, i, j, par.At(i, j), m.At(i, j))
							}
						}
					}
				}

				// Incremental ≡ rebuild, bit for bit, after a mutation burst.
				shadow := CloneAll(vs)
				changed := make([]int, 0, shape.n)
				for step := 0; step < 3; step++ {
					i := rng.Intn(shape.n)
					shadow[i] = adversarialVectors(rng, 1, shape.d)[0]
					changed = append(changed, i)
				}
				m.UpdateRows(changed, shadow)
				fresh := NewDistanceMatrix(shadow)
				for i := 0; i < shape.n; i++ {
					for j := 0; j < shape.n; j++ {
						if m.At(i, j) != fresh.At(i, j) {
							t.Fatalf("n=%d d=%d: incremental cell (%d,%d) diverged from rebuild: %v vs %v",
								shape.n, shape.d, i, j, m.At(i, j), fresh.At(i, j))
						}
					}
				}

				// Screened ≡ dense: same selection indices, and every
				// materialized cell bit-equal to the dense matrix.
				s := NewScreener(shadow)
				k := shape.n/2 + 1
				got := s.SelectKSmallest(k, shape.n-1)
				want := s.selectDense(k, shape.n-1)
				if len(got) != len(want) {
					t.Fatalf("n=%d d=%d: screened selection length %d, dense %d", shape.n, shape.d, len(got), len(want))
				}
				for x := range got {
					if got[x] != want[x] {
						t.Fatalf("n=%d d=%d: screened selection %v, dense %v", shape.n, shape.d, got, want)
					}
				}
				dm := s.Materialize()
				for i := 0; i < shape.n; i++ {
					for j := 0; j < shape.n; j++ {
						if dm.At(i, j) != fresh.At(i, j) {
							t.Fatalf("n=%d d=%d: screened cell (%d,%d) differs from dense: %v vs %v",
								shape.n, shape.d, i, j, dm.At(i, j), fresh.At(i, j))
						}
					}
				}
			}
		})
	}
}

// TestBuildBlockedMatchesRowPair pins the loop-nest independence of the
// canonical blocked order directly: at multi-block dimensions the
// depth-first buildBlocked walk (what NewDistanceMatrix runs) and the
// pair-at-a-time buildRowPair walk (what the parallel builder
// distributes) must produce bit-identical matrices under every tier —
// each pair's lanes consume the same k-sequence either way, so any
// difference is a seam bug.
func TestBuildBlockedMatchesRowPair(t *testing.T) {
	for _, tier := range AvailableTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			rng := NewRNG(uint64(4000 + tier))
			for _, shape := range []struct{ n, d int }{{2, gramBlock + 1}, {9, 2 * gramBlock}, {12, 2*gramBlock + 1807}} {
				vs := adversarialVectors(rng, shape.n, shape.d)
				blocked := NewDistanceMatrix(vs)
				rowPair := newShell(vs)
				matrixBuilds.Add(^uint64(0)) // uncount the shell: not a public build
				for u := 0; u < rowPair.n; u += 2 {
					rowPair.buildRowPair(u)
				}
				for i := 0; i < shape.n; i++ {
					for j := 0; j < shape.n; j++ {
						if blocked.At(i, j) != rowPair.At(i, j) {
							t.Fatalf("n=%d d=%d cell (%d,%d): buildBlocked %v ≠ buildRowPair %v",
								shape.n, shape.d, i, j, blocked.At(i, j), rowPair.At(i, j))
						}
					}
				}
			}
		})
	}
}

// crossTierMatrices builds the SAME vector set under every available
// tier and returns the per-tier matrices (nil when only one tier
// exists — then the test is vacuous and skipped by the caller).
func crossTierMatrices(t *testing.T, vs [][]float64) map[Tier]*DistanceMatrix {
	t.Helper()
	out := make(map[Tier]*DistanceMatrix, len(AvailableTiers()))
	for _, tier := range AvailableTiers() {
		restore, err := SetKernelTier(tier)
		if err != nil {
			t.Fatalf("SetKernelTier(%v): %v", tier, err)
		}
		out[tier] = NewDistanceMatrix(CloneAll(vs))
		restore()
	}
	return out
}

// TestCrossTierAgreement is the cross-tier half of the contract: on
// adversarial magnitudes (±1e8 and ±1e-8 entries mixed with unit
// noise), matrices built under different tiers agree cell-for-cell
// within the norm-relative band of gramTol — the SAME band each tier
// individually owes the subtract-square oracle, so tiers can never
// drift further from each other than either may drift from the truth.
func TestCrossTierAgreement(t *testing.T) {
	tiers := AvailableTiers()
	if len(tiers) < 2 {
		t.Skip("single-tier platform: cross-tier agreement is vacuous")
	}
	rng := NewRNG(31337)
	for _, shape := range []struct{ n, d int }{{2, 1}, {5, 7}, {9, 33}, {17, 129}, {40, 1000}, {5, 2*gramBlock + 13}} {
		vs := adversarialVectors(rng, shape.n, shape.d)
		ms := crossTierMatrices(t, vs)
		base := ms[tiers[0]]
		for _, tier := range tiers[1:] {
			m := ms[tier]
			for i := 0; i < shape.n; i++ {
				for j := 0; j < shape.n; j++ {
					a, b := base.At(i, j), m.At(i, j)
					if tol := gramTol(base, i, j); math.Abs(a-b) > tol {
						t.Fatalf("n=%d d=%d cell (%d,%d): %v under %v vs %v under %v (|Δ| = %g > tol %g)",
							shape.n, shape.d, i, j, a, tiers[0], b, tier, math.Abs(a-b), tol)
					}
				}
			}
		}
	}
}

// TestCrossTierPair2BitIdentical pins the deliberate aliasing: go and
// sse2 share the pair2 order, so their matrices must be BIT-identical —
// this is what justifies the two tiers sharing one store-key salt.
func TestCrossTierPair2BitIdentical(t *testing.T) {
	if !TierAvailable(TierSSE2) {
		t.Skip("no sse2 tier on this platform")
	}
	rng := NewRNG(555)
	vs := adversarialVectors(rng, 23, 137)
	ms := crossTierMatrices(t, vs)
	g, s := ms[TierGo], ms[TierSSE2]
	for i := 0; i < 23; i++ {
		for j := 0; j < 23; j++ {
			if g.At(i, j) != s.At(i, j) {
				t.Fatalf("cell (%d,%d): go %v ≠ sse2 %v — pair2 tiers must be bit-identical or the shared store salt is wrong",
					i, j, g.At(i, j), s.At(i, j))
			}
		}
	}
}

// TestCrossTierNonFiniteClassification: rows carrying NaN or ±Inf
// (Byzantine payloads) must classify identically under every tier —
// IEEE-754 makes NaN absorbing and Inf−Inf NaN in EVERY accumulation
// order, so a poisoned cell is poisoned under all tiers and screening
// decisions cannot diverge across a heterogeneous fleet. Compared via
// Dist2 and raw cell values (checkMatrixInvariants would reject the
// NaNs by design, so this test reads cells directly).
func TestCrossTierNonFiniteClassification(t *testing.T) {
	tiers := AvailableTiers()
	if len(tiers) < 2 {
		t.Skip("single-tier platform: cross-tier agreement is vacuous")
	}
	rng := NewRNG(2718)
	const n, d = 8, 37
	vs := adversarialVectors(rng, n, d)
	vs[1][3] = math.NaN()
	vs[2][0] = math.Inf(1)
	vs[3][d-1] = math.Inf(-1)
	vs[4][5] = math.Inf(1)
	vs[4][6] = math.Inf(-1) // mixed ±Inf in one row → NaN at reduction
	classify := func(x float64) int {
		switch {
		case math.IsNaN(x):
			return 0
		case math.IsInf(x, 0):
			return 1
		}
		return 2
	}
	ms := crossTierMatrices(t, vs)
	base := ms[tiers[0]]
	for _, tier := range tiers[1:] {
		m := ms[tier]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if classify(base.At(i, j)) != classify(m.At(i, j)) {
					t.Fatalf("cell (%d,%d): class %d (%v) under %v vs class %d (%v) under %v",
						i, j, classify(base.At(i, j)), base.At(i, j), tiers[0],
						classify(m.At(i, j)), m.At(i, j), tier)
				}
			}
		}
	}
}
