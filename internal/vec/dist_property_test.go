package vec

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveDist2 is the test-local oracle: the textbook subtract-square
// loop, written independently of both production kernels.
func naiveDist2(a, b []float64) float64 {
	var s float64
	for k := range a {
		d := a[k] - b[k]
		s += d * d
	}
	return s
}

// gramTol returns the acceptance band for comparing a Gram-trick
// distance against the subtract-square oracle for vectors i and j. The
// two formulas accumulate O(d) rounding steps over terms bounded by
// the squared norms, so the principled bound is relative to the input
// MAGNITUDES, not the result: cancellation can make the true distance
// arbitrarily small while both computed values still carry
// O(d·ε·(‖a‖²+‖b‖²)) noise.
func gramTol(m *DistanceMatrix, i, j int) float64 {
	const eps = 2.22e-16 // 2^-52
	scale := m.nrm[i] + m.nrm[j]
	return 8 * float64(m.dim+1) * eps * (scale + 1)
}

// adversarialVectors builds n d-dimensional vectors whose entries mix
// the magnitude extremes ±1e8 and ±1e-8 with unit-scale noise — the
// regime where the Gram trick's cancellation error is worst.
func adversarialVectors(rng *RNG, n, d int) [][]float64 {
	vs := make([][]float64, n)
	for i := range vs {
		v := rng.NewNormal(d, 0, 1)
		for k := range v {
			switch rng.Intn(4) {
			case 0:
				v[k] *= 1e8
			case 1:
				v[k] *= 1e-8
			}
			if rng.Intn(2) == 0 {
				v[k] = -v[k]
			}
		}
		vs[i] = v
	}
	return vs
}

// checkMatrixInvariants asserts the structural properties every
// distance matrix must satisfy regardless of kernel: zero diagonal,
// exact symmetry, and non-negativity (the clamp's contract).
func checkMatrixInvariants(t *testing.T, m *DistanceMatrix) {
	t.Helper()
	n := m.N()
	for i := 0; i < n; i++ {
		if got := m.At(i, i); got != 0 {
			t.Fatalf("At(%d,%d) = %v, want exact 0", i, i, got)
		}
		for j := 0; j < n; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatalf("asymmetry at (%d,%d): %v vs %v", i, j, m.At(i, j), m.At(j, i))
			}
			if m.At(i, j) < 0 {
				t.Fatalf("negative distance at (%d,%d): %v", i, j, m.At(i, j))
			}
			if math.IsNaN(m.At(i, j)) {
				t.Fatalf("NaN distance at (%d,%d)", i, j)
			}
		}
	}
}

// checkAgainstOracle cross-checks every cell of m against the
// independent subtract-square oracle within the principled tolerance.
func checkAgainstOracle(t *testing.T, m *DistanceMatrix, vectors [][]float64) {
	t.Helper()
	for i := range vectors {
		for j := range vectors {
			want := naiveDist2(vectors[i], vectors[j])
			got := m.At(i, j)
			if tol := gramTol(m, i, j); math.Abs(got-want) > tol {
				t.Fatalf("At(%d,%d) = %v, oracle %v (|Δ| = %g > tol %g, d = %d)",
					i, j, got, want, math.Abs(got-want), tol, m.Dim())
			}
		}
	}
}

// TestBlockedKernelMatchesNaiveAcrossShapes pins the blocked Gram
// kernel to the oracle over every n in 1..64 (small d) and over the
// dimension extremes of the issue grid — d = 1 and 3 exercise the tile
// tails, 1000 and 10007 the steady-state loop (10007 is odd AND ≡ 3
// mod 4, hitting both remainder paths at once).
func TestBlockedKernelMatchesNaiveAcrossShapes(t *testing.T) {
	rng := NewRNG(1234)
	for n := 1; n <= 64; n++ {
		d := 1 + rng.Intn(40) // straddles naiveDimMax: both kernels run
		vs := adversarialVectors(rng, n, d)
		m := NewDistanceMatrix(vs)
		checkMatrixInvariants(t, m)
		checkAgainstOracle(t, m, vs)
	}
	for _, d := range []int{1, 3, 17, 33, 1000, 10007} {
		for _, n := range []int{1, 2, 5, 9, 40} {
			vs := adversarialVectors(rng, n, d)
			m := NewDistanceMatrix(vs)
			checkMatrixInvariants(t, m)
			checkAgainstOracle(t, m, vs)
			// The naive constructor must satisfy the same invariants
			// (it shares the struct but not the kernel).
			checkMatrixInvariants(t, NewDistanceMatrixNaive(vs))
		}
	}
}

// TestBlockedKernelQuick is the randomized property: arbitrary shapes
// and magnitudes, blocked == oracle within tolerance, plus invariants.
func TestBlockedKernelQuick(t *testing.T) {
	f := func(seed uint64, n8, d8 uint8) bool {
		n := int(n8%24) + 1
		d := int(d8%40) + 1
		rng := NewRNG(seed)
		vs := adversarialVectors(rng, n, d)
		m := NewDistanceMatrix(vs)
		for i := 0; i < n; i++ {
			if m.At(i, i) != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if m.At(i, j) != m.At(j, i) || m.At(i, j) < 0 {
					return false
				}
				if math.Abs(m.At(i, j)-naiveDist2(vs[i], vs[j])) > gramTol(m, i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestParallelBitIdenticalToSerial: the worker count must never change
// a single bit of the matrix — the determinism contract the scenario
// runner builds on. Exact comparison, no tolerance.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	rng := NewRNG(99)
	for _, n := range []int{2, 3, 4, 5, 7, 8, 16, 31, 40} {
		for _, workers := range []int{0, 1, 2, 3, 8, 100} {
			vs := adversarialVectors(rng, n, 129)
			serial := NewDistanceMatrix(vs)
			par := NewDistanceMatrixParallel(vs, workers)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if serial.At(i, j) != par.At(i, j) {
						t.Fatalf("n=%d workers=%d: cell (%d,%d) differs: %v vs %v",
							n, workers, i, j, serial.At(i, j), par.At(i, j))
					}
				}
			}
		}
	}
}

// TestUpdateRowEquivalence is the incremental-path contract: after any
// sequence of single-row mutations, the matrix is BIT-IDENTICAL to a
// full rebuild over the final vector set. The guarantee is exact — not
// within tolerance — because update and build share the canonical
// per-pair accumulation order (see gram.go).
func TestUpdateRowEquivalence(t *testing.T) {
	rng := NewRNG(4242)
	for _, shape := range []struct{ n, d int }{{1, 7}, {2, 3}, {5, 1}, {9, 64}, {17, 129}, {40, 257}} {
		vs := adversarialVectors(rng, shape.n, shape.d)
		m := NewDistanceMatrix(vs)
		shadow := CloneAll(vs)
		for step := 0; step < 30; step++ {
			i := rng.Intn(shape.n)
			nv := adversarialVectors(rng, 1, shape.d)[0]
			m.UpdateRow(i, nv)
			shadow[i] = nv
			if step%10 != 9 {
				continue
			}
			fresh := NewDistanceMatrix(shadow)
			for a := 0; a < shape.n; a++ {
				for b := 0; b < shape.n; b++ {
					if m.At(a, b) != fresh.At(a, b) {
						t.Fatalf("n=%d d=%d step %d: cell (%d,%d) diverged from rebuild: %v vs %v",
							shape.n, shape.d, step, a, b, m.At(a, b), fresh.At(a, b))
					}
				}
			}
			checkMatrixInvariants(t, m)
		}
	}
}

// TestUpdateRowsEquivalence covers the batch path: random change-sets
// (including overlapping/duplicate indices and odd sizes that exercise
// the dual-row tile's trailing single row) must land bit-identically
// on the full rebuild, and the update must leave the stored copies in
// sync (VectorEqual sees the new content). The second shape's
// dimension exceeds gramBlock, driving the same change-sets through
// the depth-first blocked batch path (updateRowsBlocked).
func TestUpdateRowsEquivalence(t *testing.T) {
	rng := NewRNG(777)
	for _, shape := range []struct{ n, d int }{{13, 37}, {11, gramBlock + 453}} {
		n, d := shape.n, shape.d
		vs := adversarialVectors(rng, n, d)
		m := NewDistanceMatrix(vs)
		shadow := CloneAll(vs)
		for step := 0; step < 40; step++ {
			c := rng.Intn(n) + 1
			changed := make([]int, c)
			for k := range changed {
				changed[k] = rng.Intn(n) // duplicates allowed on purpose
			}
			for _, i := range changed {
				shadow[i] = adversarialVectors(rng, 1, d)[0]
			}
			m.UpdateRows(changed, shadow)
			fresh := NewDistanceMatrix(shadow)
			for a := 0; a < n; a++ {
				if !m.VectorEqual(a, shadow[a]) {
					t.Fatalf("n=%d d=%d step %d: stored vector %d out of sync after UpdateRows", n, d, step, a)
				}
				for b := 0; b < n; b++ {
					if m.At(a, b) != fresh.At(a, b) {
						t.Fatalf("n=%d d=%d step %d (changed %v): cell (%d,%d) diverged: %v vs %v",
							n, d, step, changed, a, b, m.At(a, b), fresh.At(a, b))
					}
				}
			}
		}
	}
}

// TestVectorEqual pins the exact-comparison semantics the cross-round
// cache depends on: bitwise equality, length mismatch is "not equal",
// and NaN ≠ NaN (a NaN-carrying proposal is always "changed", so a
// poisoned round can never be served from the cache).
func TestVectorEqual(t *testing.T) {
	m := NewDistanceMatrix([][]float64{{1, 2, 3}, {4, 5, math.NaN()}})
	if !m.VectorEqual(0, []float64{1, 2, 3}) {
		t.Error("identical vector reported unequal")
	}
	if m.VectorEqual(0, []float64{1, 2}) {
		t.Error("shorter vector reported equal")
	}
	if m.VectorEqual(0, []float64{1, 2, 3.0000001}) {
		t.Error("perturbed vector reported equal")
	}
	if m.VectorEqual(1, []float64{4, 5, math.NaN()}) {
		t.Error("NaN-carrying vector compared equal; cache would serve a poisoned round")
	}
	if m.VectorEqual(0, []float64{1, 2, -3}) {
		t.Error("sign flip reported equal")
	}
}

// TestUpdateRowDimensionPanic: feeding a wrong-dimension vector to the
// incremental path must panic like every other vec kernel, not corrupt
// the matrix.
func TestUpdateRowDimensionPanic(t *testing.T) {
	m := NewDistanceMatrix([][]float64{{1, 2}, {3, 4}})
	defer func() {
		if recover() == nil {
			t.Error("UpdateRow with wrong dimension did not panic")
		}
	}()
	m.UpdateRow(0, []float64{1, 2, 3})
}

// TestDistanceMatrixDoesNotAliasInput: the matrix must own copies —
// mutating the caller's vectors after construction must not change
// results (the property the cross-round cache depends on when callers
// recycle gradient buffers).
func TestDistanceMatrixDoesNotAliasInput(t *testing.T) {
	vs := [][]float64{{0, 0}, {3, 4}}
	m := NewDistanceMatrix(vs)
	vs[0][0] = 100
	vs[1][1] = -100
	if got := m.At(0, 1); got != 25 {
		t.Errorf("At(0,1) = %v after caller mutation, want 25", got)
	}
	if !m.VectorEqual(0, []float64{0, 0}) {
		t.Error("stored copy changed when caller mutated input")
	}
}
