package vec

import (
	"math"
	"testing"
	"testing/quick"
)

// denseSelect is the oracle the screened path must reproduce
// bit-for-bit: full matrix, full score slice, KSmallestIndices — the
// exact code the dense Krum/Multi-Krum path runs.
func denseSelect(vs [][]float64, k, m int) []int {
	dm := NewDistanceMatrix(vs)
	scores := make([]float64, len(vs))
	scratch := make([]float64, 0, k+1)
	for i := range vs {
		scores[i] = dm.SumKSmallestExcludingSelf(i, k, scratch[:0:k+1])
	}
	return KSmallestIndices(scores, -1, m)
}

// sameIndexSeq compares selected-index sequences exactly.
func sameIndexSeq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkScreenedSelection asserts the screened selection over vs equals
// the dense oracle for the given (k, m) — the identical index SEQUENCE,
// not merely the same set or the same scores.
func checkScreenedSelection(t *testing.T, vs [][]float64, k, m int) *Screener {
	t.Helper()
	s := NewScreener(vs)
	got := s.SelectKSmallest(k, m)
	want := denseSelect(vs, k, m)
	if !sameIndexSeq(got, want) {
		t.Fatalf("n=%d d=%d k=%d m=%d: screened %v, dense %v (stats %+v)",
			len(vs), len(vs[0]), k, m, got, want, s.Stats())
	}
	return s
}

// TestScreenedSelectionMatchesDenseAcrossShapes sweeps shapes across
// both kernels (d straddles naiveDimMax), adversarial magnitudes, and
// several (k, m) combinations including the saturating k > n−1 and
// m = n extremes.
func TestScreenedSelectionMatchesDenseAcrossShapes(t *testing.T) {
	rng := NewRNG(2026)
	for _, d := range []int{1, 3, 16, 17, 64, 129} {
		for _, n := range []int{1, 2, 3, 5, 9, 17, 40} {
			vs := adversarialVectors(rng, n, d)
			for _, km := range [][2]int{{1, 1}, {max(1, n-3), 1}, {max(1, n/2), max(1, n/3)}, {n + 2, n}} {
				checkScreenedSelection(t, vs, km[0], km[1])
			}
		}
	}
}

// TestScreenedSelectionQuick is the randomized property: arbitrary
// shapes, magnitudes and (k, m), identical index sequences.
func TestScreenedSelectionQuick(t *testing.T) {
	f := func(seed uint64, n8, d8, k8, m8 uint8) bool {
		n := int(n8%24) + 1
		d := int(d8%40) + 1
		k := int(k8%uint8(n)) + 1
		m := int(m8%uint8(n)) + 1
		rng := NewRNG(seed)
		vs := adversarialVectors(rng, n, d)
		s := NewScreener(vs)
		return sameIndexSeq(s.SelectKSmallest(k, m), denseSelect(vs, k, m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestScreenedSelectionTies drives the tie-heavy inputs where the
// (score, index) tie-break is the entire answer: all-equal vectors,
// duplicated vectors, grid vectors with massively duplicated distances,
// and near-threshold clusters whose scores differ by at most an ulp.
func TestScreenedSelectionTies(t *testing.T) {
	rng := NewRNG(55)
	cases := map[string][][]float64{}

	// Every vector identical: every distance 0, every score ties at 0;
	// the selection must be 0, 1, 2, ... by the index tie-break alone.
	allEq := make([][]float64, 12)
	base := rng.NewNormal(33, 0, 1)
	for i := range allEq {
		allEq[i] = append([]float64(nil), base...)
	}
	cases["all-equal"] = allEq

	// Pairs of duplicated vectors: duplicate distances everywhere.
	dup := make([][]float64, 0, 14)
	for i := 0; i < 7; i++ {
		v := rng.NewNormal(20, 0, 1)
		dup = append(dup, v, append([]float64(nil), v...))
	}
	cases["duplicate-vectors"] = dup

	// Integer grid in 2 coordinates of a 24-dim space: squared
	// distances collapse onto few distinct values (exact in FP).
	grid := make([][]float64, 0, 16)
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			v := make([]float64, 24)
			v[0], v[1] = float64(x), float64(y)
			grid = append(grid, v)
		}
	}
	cases["grid"] = grid

	// Near-threshold: two tight clusters plus ulp-level perturbations,
	// so candidate scores straddle the selection threshold by amounts
	// far below every screening bound's error margin — pruning must
	// stand down and the re-check must decide.
	near := make([][]float64, 0, 18)
	c0 := rng.NewNormal(40, 0, 1)
	c1 := rng.NewNormal(40, 10, 1)
	for i := 0; i < 9; i++ {
		v := append([]float64(nil), c0...)
		v[i%len(v)] = math.Nextafter(v[i%len(v)], math.Inf(1))
		near = append(near, v)
	}
	for i := 0; i < 9; i++ {
		v := append([]float64(nil), c1...)
		v[(7*i)%len(v)] = math.Nextafter(v[(7*i)%len(v)], -1e30)
		near = append(near, v)
	}
	cases["near-threshold"] = near

	for name, vs := range cases {
		n := len(vs)
		for _, km := range [][2]int{{1, 1}, {n - 3, 1}, {n - 3, 4}, {n / 2, n / 2}, {n - 1, n}} {
			k, m := km[0], km[1]
			if k < 1 {
				k = 1
			}
			s := NewScreener(vs)
			got := s.SelectKSmallest(k, m)
			want := denseSelect(vs, k, m)
			if !sameIndexSeq(got, want) {
				t.Errorf("%s k=%d m=%d: screened %v, dense %v", name, k, m, got, want)
			}
		}
	}
}

// TestScreenedMatchesNaiveOracleSmallDim pins the ISSUE's oracle
// explicitly: at d ≤ naiveDimMax both the dense path and the screener
// run the subtract-square kernel, so the screener's materialized
// matrix must be BIT-IDENTICAL to NewDistanceMatrixNaive and the
// selection identical to the oracle over it.
func TestScreenedMatchesNaiveOracleSmallDim(t *testing.T) {
	rng := NewRNG(606)
	for _, n := range []int{2, 5, 13, 29} {
		vs := adversarialVectors(rng, n, naiveDimMax)
		s := NewScreener(vs)
		k, m := max(1, n-3), max(1, n/2)
		got := s.SelectKSmallest(k, m)
		naive := NewDistanceMatrixNaive(vs)
		scores := make([]float64, n)
		scratch := make([]float64, 0, k)
		for i := 0; i < n; i++ {
			scores[i] = naive.SumKSmallestExcludingSelf(i, k, scratch)
		}
		if want := KSmallestIndices(scores, -1, m); !sameIndexSeq(got, want) {
			t.Fatalf("n=%d: screened %v, naive oracle %v", n, got, want)
		}
		mat := s.Materialize()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if mat.At(i, j) != naive.At(i, j) {
					t.Fatalf("n=%d: materialized cell (%d,%d) = %v, naive %v",
						n, i, j, mat.At(i, j), naive.At(i, j))
				}
			}
		}
	}
}

// TestScreenerBoundsNeverExceedExact is the soundness property under
// the floating-point error model: every per-pair lower bound must sit
// at or below the EXACT computed distance of the canonical kernel, on
// the adversarial magnitude mix where rounding is worst. An invalid
// bound is the one failure mode that could silently break bit-identity.
func TestScreenerBoundsNeverExceedExact(t *testing.T) {
	rng := NewRNG(31337)
	for _, shape := range []struct{ n, d int }{{5, 3}, {9, 17}, {17, 64}, {31, 129}, {40, 1000}} {
		vs := adversarialVectors(rng, shape.n, shape.d)
		s := NewScreener(vs)
		lb := make([]float64, shape.n)
		bounds := make([][]float64, shape.n)
		for i := 0; i < shape.n; i++ {
			s.lowerBoundRow(i, lb)
			bounds[i] = append([]float64(nil), lb...)
		}
		mat := s.Materialize()
		for i := 0; i < shape.n; i++ {
			for j := 0; j < shape.n; j++ {
				if bounds[i][j] > mat.At(i, j) {
					t.Fatalf("n=%d d=%d: bound (%d,%d) = %v exceeds exact %v",
						shape.n, shape.d, i, j, bounds[i][j], mat.At(i, j))
				}
			}
		}
	}
}

// byzantineVectors builds the paper's Gaussian-attack regime: honest
// workers propose unit-variance gradients, f Byzantine workers propose
// σ = 200 noise. This is the workload where screening earns its keep —
// the norm screen alone separates the outlier population.
func byzantineVectors(rng *RNG, n, f, d int) [][]float64 {
	vs := make([][]float64, n)
	for i := 0; i < n-f; i++ {
		vs[i] = rng.NewNormal(d, 0, 1)
	}
	for i := n - f; i < n; i++ {
		vs[i] = rng.NewNormal(d, 0, 200)
	}
	return vs
}

// TestScreenerPrunesByzantineRegime asserts the perf claim behind the
// whole layer on the acceptance workload: under the Gaussian attack the
// screener must agree with the dense oracle while pruning most of the
// Byzantine population's rows, landing the inner-product bill under
// 50% of n² (the dense path pays n·(n−1)/2 ≈ 50%). Honest workers'
// i.i.d. scores concentrate — they are genuine near-ties the re-check
// must evaluate — so the prunable fraction IS the outlier fraction;
// the margin below 45% checks the pruning actually bites.
func TestScreenerPrunesByzantineRegime(t *testing.T) {
	rng := NewRNG(7)
	const n, d = 200, 100
	f := (n - 3) / 2
	vs := byzantineVectors(rng, n, f, d)
	k := n - f - 2
	s := checkScreenedSelection(t, vs, k, 1)
	st := s.Stats()
	if st.PrunedRows < uint64(f)/2 {
		t.Fatalf("only %d rows pruned on the Byzantine regime with f = %d: %+v", st.PrunedRows, f, st)
	}
	if budget := uint64(n) * n * 45 / 100; st.Dots >= budget {
		t.Errorf("screened path computed %d dots, want < 45%% of n² = %d (stats %+v)",
			st.Dots, budget, st)
	}
}

// TestScreenerUpdateRowsEquivalence is the cross-round contract: after
// any sequence of batched vector replacements (duplicates allowed), a
// reused screener must select identically to BOTH a fresh screener and
// the dense oracle over the final vectors, and its materialized matrix
// must be bit-identical to a fresh build.
func TestScreenerUpdateRowsEquivalence(t *testing.T) {
	rng := NewRNG(909)
	const n, d = 15, 37
	vs := adversarialVectors(rng, n, d)
	s := NewScreener(vs)
	shadow := CloneAll(vs)
	k, m := n-4, 3
	for step := 0; step < 30; step++ {
		c := rng.Intn(n) + 1
		changed := make([]int, c)
		for i := range changed {
			changed[i] = rng.Intn(n)
		}
		for _, i := range changed {
			shadow[i] = adversarialVectors(rng, 1, d)[0]
		}
		s.UpdateRows(changed, shadow)
		for a := 0; a < n; a++ {
			if !s.VectorEqual(a, shadow[a]) {
				t.Fatalf("step %d: stored vector %d out of sync", step, a)
			}
		}
		got := s.SelectKSmallest(k, m)
		if want := denseSelect(shadow, k, m); !sameIndexSeq(got, want) {
			t.Fatalf("step %d (changed %v): reused screener %v, dense %v", step, changed, got, want)
		}
		if fresh := NewScreener(shadow).SelectKSmallest(k, m); !sameIndexSeq(got, fresh) {
			t.Fatalf("step %d: reused screener %v, fresh screener %v", step, got, fresh)
		}
		if step%10 == 9 {
			mat, freshM := s.Materialize(), NewDistanceMatrix(shadow)
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if mat.At(a, b) != freshM.At(a, b) {
						t.Fatalf("step %d: cell (%d,%d) diverged: %v vs %v",
							step, a, b, mat.At(a, b), freshM.At(a, b))
					}
				}
			}
		}
	}
}

// TestScreenerNonFiniteFallback: NaN/Inf coordinates defeat metric
// bounds, so the screener must disable pruning and still return exactly
// what the dense path returns (whose NaN semantics KSmallestIndices
// pins). Covers poison in the initial build and poison arriving (and
// leaving) through UpdateRows.
func TestScreenerNonFiniteFallback(t *testing.T) {
	rng := NewRNG(13)
	const n, d = 11, 21
	for _, poison := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		vs := adversarialVectors(rng, n, d)
		vs[4][3] = poison
		vs[9][0] = poison
		s := NewScreener(vs)
		got := s.SelectKSmallest(n-3, 2)
		if want := denseSelect(vs, n-3, 2); !sameIndexSeq(got, want) {
			t.Fatalf("poison %v: screened %v, dense %v", poison, got, want)
		}
		if !s.Stats().Disabled {
			t.Fatalf("poison %v: screener did not disable pruning", poison)
		}
		// The poison departs: pruning must re-enable and stay exact.
		clean := CloneAll(vs)
		clean[4] = rng.NewNormal(d, 0, 1)
		clean[9] = rng.NewNormal(d, 0, 1)
		s.UpdateRows([]int{4, 9}, clean)
		got = s.SelectKSmallest(n-3, 2)
		if want := denseSelect(clean, n-3, 2); !sameIndexSeq(got, want) {
			t.Fatalf("poison %v cleaned: screened %v, dense %v", poison, got, want)
		}
		if s.Stats().Disabled {
			t.Fatalf("poison %v cleaned: pruning still disabled", poison)
		}
		// And poison arriving through an update disables it again.
		dirty := CloneAll(clean)
		dirty[0] = append([]float64(nil), clean[0]...)
		dirty[0][d-1] = poison
		s.UpdateRows([]int{0}, dirty)
		got = s.SelectKSmallest(n-3, 2)
		if want := denseSelect(dirty, n-3, 2); !sameIndexSeq(got, want) {
			t.Fatalf("poison %v re-injected: screened %v, dense %v", poison, got, want)
		}
	}
}

// TestScreenerSelectionMemo: repeating the same (k, m) must serve the
// memoized selection (no extra rows evaluated) and hand out a fresh
// slice each call, while a different (k, m) recomputes.
func TestScreenerSelectionMemo(t *testing.T) {
	rng := NewRNG(99)
	vs := byzantineVectors(rng, 60, 20, 33)
	s := NewScreener(vs)
	first := s.SelectKSmallest(38, 2)
	st := s.Stats()
	second := s.SelectKSmallest(38, 2)
	if !sameIndexSeq(first, second) {
		t.Fatalf("memoized selection differs: %v vs %v", first, second)
	}
	if st2 := s.Stats(); st2.ExactRows != st.ExactRows || st2.Dots != st.Dots {
		t.Errorf("repeat selection did extra work: %+v then %+v", st, st2)
	}
	second[0] = -1
	if third := s.SelectKSmallest(38, 2); third[0] == -1 {
		t.Error("SelectKSmallest returned an aliased slice")
	}
	if other := s.SelectKSmallest(38, 5); len(other) != 5 {
		t.Errorf("m=5 selection returned %v", other)
	}
}

// TestScreenerDegenerateShapes: the edges the round loop can produce.
func TestScreenerDegenerateShapes(t *testing.T) {
	if got := NewScreener(nil).SelectKSmallest(1, 1); len(got) != 0 {
		t.Errorf("empty input selected %v", got)
	}
	one := NewScreener([][]float64{{1, 2, 3}})
	if got := one.SelectKSmallest(5, 1); !sameIndexSeq(got, []int{0}) {
		t.Errorf("single vector selected %v, want [0]", got)
	}
	if got := one.SelectKSmallest(1, 0); got != nil {
		t.Errorf("m=0 selected %v, want nil", got)
	}
	zeroDim := NewScreener([][]float64{{}, {}, {}})
	if got := zeroDim.SelectKSmallest(1, 3); !sameIndexSeq(got, []int{0, 1, 2}) {
		t.Errorf("zero-dim vectors selected %v, want [0 1 2]", got)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
