package vec

import "testing"

// TestParseTier pins the spec names round-tripping through String, the
// case/whitespace tolerance, and rejection of unknown names.
func TestParseTier(t *testing.T) {
	for _, tier := range []Tier{TierGo, TierSSE2, TierAVX2, TierAVX512} {
		got, err := ParseTier(tier.String())
		if err != nil || got != tier {
			t.Errorf("ParseTier(%q) = %v, %v; want %v", tier.String(), got, err, tier)
		}
	}
	if got, err := ParseTier("  AvX2 "); err != nil || got != TierAVX2 {
		t.Errorf("ParseTier with case/space = %v, %v; want TierAVX2", got, err)
	}
	if _, err := ParseTier("avx9000"); err == nil {
		t.Error("ParseTier accepted an unknown tier name")
	}
	if _, err := ParseTier(""); err == nil {
		t.Error("ParseTier accepted the empty string")
	}
}

// TestTierOrder pins the order-family mapping the store salt and join
// handshake depend on: go and sse2 share pair2 (they are bit-identical,
// so sharing cached results is correct), avx2 alone is fma4.
func TestTierOrder(t *testing.T) {
	if TierGo.Order() != "pair2" || TierSSE2.Order() != "pair2" {
		t.Errorf("go/sse2 orders = %q/%q, want pair2/pair2", TierGo.Order(), TierSSE2.Order())
	}
	if TierAVX2.Order() != "fma4" {
		t.Errorf("avx2 order = %q, want fma4", TierAVX2.Order())
	}
	if TierGo.Order() == TierAVX2.Order() {
		t.Error("go and avx2 share an order family; the cross-tier salt would be vacuous")
	}
}

// TestAvailableTiers checks the availability set's invariants: TierGo
// is always present and first, the active tier is available, and
// TierAvailable agrees with the slice.
func TestAvailableTiers(t *testing.T) {
	tiers := AvailableTiers()
	if len(tiers) == 0 || tiers[0] != TierGo {
		t.Fatalf("AvailableTiers() = %v; want TierGo first", tiers)
	}
	if !TierAvailable(KernelTier()) {
		t.Errorf("active tier %v not in available set %v", KernelTier(), tiers)
	}
	for _, tier := range tiers {
		if !TierAvailable(tier) {
			t.Errorf("TierAvailable(%v) = false but AvailableTiers lists it", tier)
		}
	}
	if TierAvailable(TierAVX512) {
		t.Error("TierAVX512 reported available; it is a stub with no kernels")
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// process's availability set.
	tiers[0] = TierAVX512
	if TierAvailable(TierAVX512) {
		t.Error("mutating AvailableTiers() result changed the availability set")
	}
}

// TestSetKernelTierRestore checks the force/restore protocol tests and
// the env-knob path rely on, and that unavailable tiers are refused
// without side effects.
func TestSetKernelTierRestore(t *testing.T) {
	initial := KernelTier()
	restore, err := SetKernelTier(TierGo)
	if err != nil {
		t.Fatalf("SetKernelTier(TierGo): %v", err)
	}
	if KernelTier() != TierGo {
		t.Errorf("after SetKernelTier(TierGo), KernelTier() = %v", KernelTier())
	}
	if _, err := SetKernelTier(TierAVX512); err == nil {
		t.Error("SetKernelTier(TierAVX512) succeeded; the stub tier has no kernels")
	}
	if KernelTier() != TierGo {
		t.Errorf("failed SetKernelTier changed the tier to %v", KernelTier())
	}
	restore()
	if KernelTier() != initial {
		t.Errorf("restore left tier %v, want %v", KernelTier(), initial)
	}
}

// TestKernelOrderMatchesTier ties the package-level shorthands to the
// active tier.
func TestKernelOrderMatchesTier(t *testing.T) {
	for _, tier := range AvailableTiers() {
		restore, err := SetKernelTier(tier)
		if err != nil {
			t.Fatalf("SetKernelTier(%v): %v", tier, err)
		}
		if KernelTier() != tier || KernelOrder() != tier.Order() {
			t.Errorf("forced %v: KernelTier()=%v KernelOrder()=%q", tier, KernelTier(), KernelOrder())
		}
		restore()
	}
}
