package vec

import (
	"runtime"
	"sync"
)

// NewDistanceMatrixParallel computes the same matrix as
// NewDistanceMatrix using up to workers goroutines (0 means
// GOMAXPROCS). Row pairs are strided across workers — the pair at row
// u carries ~2·(n−u) upper-triangle dots, so striding balances the
// triangular load — and every pair goes through the same blocked
// Gram-trick builder as the serial constructor, so the result is
// bit-identical whatever the worker count (the concurrency contract
// the scenario runner's determinism test pins down). Each dot's O(d)
// inner product dominates, so speedup is close to linear in the
// deep-learning regime (d ≫ n) the paper targets — Lemma 4.1's cost
// lives almost entirely here.
func NewDistanceMatrixParallel(vectors [][]float64, workers int) *DistanceMatrix {
	n := len(vectors)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if pairs := (n + 1) / 2; workers > pairs {
		workers = pairs
	}
	// Small inputs: the goroutine overhead dwarfs the work.
	if workers <= 1 || n < 4 {
		return NewDistanceMatrix(vectors)
	}
	m := newShell(vectors)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// buildRowPair writes cells (u, j>u), (u+1, j>u+1) and
			// their column mirrors; distinct pairs never write the
			// same cell, so the workers share no state beyond the
			// matrix buffer.
			for u := 2 * w; u < n; u += 2 * workers {
				m.buildRowPair(u)
			}
		}(w)
	}
	wg.Wait()
	return m
}
