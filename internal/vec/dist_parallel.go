package vec

import (
	"runtime"
	"sync"
)

// NewDistanceMatrixParallel computes the same matrix as
// NewDistanceMatrix using up to workers goroutines (0 means
// GOMAXPROCS). The n·(n−1)/2 pairs are strided across workers; each
// pair's O(d) inner product dominates, so speedup is close to linear in
// the deep-learning regime (d ≫ n) the paper targets — Lemma 4.1's cost
// lives almost entirely here.
func NewDistanceMatrixParallel(vectors [][]float64, workers int) *DistanceMatrix {
	n := len(vectors)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Small inputs: the goroutine overhead dwarfs the work.
	if workers == 1 || n < 4 {
		return NewDistanceMatrix(vectors)
	}
	matrixBuilds.Add(1)
	m := &DistanceMatrix{n: n, d: make([]float64, n*n)}
	// Enumerate the upper-triangle pairs once so strided assignment
	// balances load regardless of row length.
	type pair struct{ i, j int }
	pairs := make([]pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < len(pairs); k += workers {
				p := pairs[k]
				dist := Dist2(vectors[p.i], vectors[p.j])
				m.d[p.i*n+p.j] = dist
				m.d[p.j*n+p.i] = dist
			}
		}(w)
	}
	wg.Wait()
	return m
}
