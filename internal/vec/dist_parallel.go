package vec

import (
	"runtime"
	"sync"
)

// minParallelFlops is the minimum number of inner-product multiply-adds
// a parallel build assigns per goroutine; fan-out is capped at
// totalWork / minParallelFlops. Tuned on BenchmarkDistanceMatrix /
// BenchmarkDistanceMatrixLargeN: an n = 40, d = 10⁴ build (~8 Mflop)
// now runs serial — where parallel was a wash — while n ≥ 10³ builds
// still fan out fully.
const minParallelFlops = 8 << 20

// NewDistanceMatrixParallel computes the same matrix as
// NewDistanceMatrix using up to workers goroutines (0 means
// GOMAXPROCS). Row pairs are strided across workers — the pair at row
// u carries ~2·(n−u) upper-triangle dots, so striding balances the
// triangular load — and every pair goes through the same blocked
// Gram-trick builder as the serial constructor, so the result is
// bit-identical whatever the worker count (the concurrency contract
// the scenario runner's determinism test pins down). Each dot's O(d)
// inner product dominates, so speedup is close to linear in the
// deep-learning regime (d ≫ n) the paper targets — Lemma 4.1's cost
// lives almost entirely here.
func NewDistanceMatrixParallel(vectors [][]float64, workers int) *DistanceMatrix {
	n := len(vectors)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if pairs := (n + 1) / 2; workers > pairs {
		workers = pairs
	}
	// Cap the fan-out so each goroutine gets at least minParallelFlops
	// of multiply-add work: below that, spawn/park/cache-line costs eat
	// the speedup (at n = 40, d = 10⁴ the whole build is ~8 Mflop —
	// barely one goroutine's worth). Worker count never affects results
	// (bit-identical by the shared buildRowPair), only wall clock, so
	// the cap is purely a scheduling decision.
	dim := 0
	if n > 0 {
		dim = len(vectors[0])
	}
	totalFlops := uint64(n) * uint64(n-1) / 2 * uint64(dim)
	if maxW := totalFlops / minParallelFlops; uint64(workers) > maxW {
		workers = int(maxW)
	}
	// Small inputs: the goroutine overhead dwarfs the work.
	if workers <= 1 || n < 4 {
		return NewDistanceMatrix(vectors)
	}
	m := newShell(vectors)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// buildRowPair writes cells (u, j>u), (u+1, j>u+1) and
			// their column mirrors; distinct pairs never write the
			// same cell, so the workers share no state beyond the
			// matrix buffer.
			for u := 2 * w; u < n; u += 2 * workers {
				m.buildRowPair(u)
			}
		}(w)
	}
	wg.Wait()
	return m
}
