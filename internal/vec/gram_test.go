package vec

import (
	"math"
	"testing"
)

// tierRefs bundles the pure-Go reference implementations that DEFINE an
// accumulation-order family (gram.go): the dispatched kernels of every
// tier in the family must agree with these bit for bit.
type tierRefs struct {
	dotPair func(a, b []float64) float64
	dot4    func(a, b0, b1, b2, b3 []float64) (float64, float64, float64, float64)
	dot24   func(a0, a1, b0, b1, b2, b3 []float64, out *[8]float64)
}

func refsFor(t *testing.T, order string) tierRefs {
	t.Helper()
	switch order {
	case "pair2":
		return tierRefs{dotPairGo, dot4Go, dot24Go}
	case "fma4":
		return tierRefs{dotFMAGo, dot4FMAGo, dot24FMAGo}
	}
	t.Fatalf("no reference implementation for order family %q", order)
	return tierRefs{}
}

// forceTier activates tier and registers the restore; tests below run
// their whole battery once per available tier.
func forceTier(t *testing.T, tier Tier) {
	t.Helper()
	restore, err := SetKernelTier(tier)
	if err != nil {
		t.Fatalf("SetKernelTier(%v): %v", tier, err)
	}
	t.Cleanup(restore)
}

// TestDotKernelsBitIdentical pins the dispatched kernels of EVERY
// available tier to that tier's pure-Go reference order: all lengths —
// including the empty, single-element, and every tail residue — must
// agree bit for bit, not just within tolerance. On non-amd64 platforms
// the only tier's dispatch IS the reference and the test is trivially
// green; on amd64 this is the asm ≡ reference proof for SSE2 and AVX2.
func TestDotKernelsBitIdentical(t *testing.T) {
	for _, tier := range AvailableTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			refs := refsFor(t, tier.Order())
			rng := NewRNG(7)
			for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 15, 16, 33, 100, 1001} {
				a := rng.NewNormal(n, 0, 3)
				bs := make([][]float64, 4)
				for i := range bs {
					bs[i] = rng.NewNormal(n, 0, 3)
				}
				// Inject magnitude spread so accumulation order actually
				// matters: a reordered sum would differ in the low bits.
				for k := range a {
					if k%3 == 0 {
						a[k] *= 1e8
					}
					if k%5 == 0 {
						a[k] *= 1e-8
					}
				}
				for i, b := range bs {
					if got, want := dotPair(a, b), refs.dotPair(a, b); got != want {
						t.Errorf("n=%d: dotPair(a, b%d) = %v, reference %v", n, i, got, want)
					}
				}
				g0, g1, g2, g3 := dot4(a, bs[0], bs[1], bs[2], bs[3])
				w0, w1, w2, w3 := refs.dot4(a, bs[0], bs[1], bs[2], bs[3])
				for i, pair := range [][2]float64{{g0, w0}, {g1, w1}, {g2, w2}, {g3, w3}} {
					if pair[0] != pair[1] {
						t.Errorf("n=%d: dot4 column %d = %v, reference %v", n, i, pair[0], pair[1])
					}
				}
				// dot4 columns must equal the pairwise kernel too (the tile
				// is an arrangement, never a different sum).
				for i, b := range bs {
					single := refs.dotPair(a, b)
					quad := []float64{w0, w1, w2, w3}[i]
					if single != quad {
						t.Errorf("n=%d: reference dot4 column %d = %v, dotPair %v", n, i, quad, single)
					}
				}
				// The 2×4 tile: dispatched vs reference vs pairwise, all
				// exact.
				a1 := rng.NewNormal(n, 0, 3)
				var got24, want24 [8]float64
				dot24(a, a1, bs[0], bs[1], bs[2], bs[3], &got24)
				refs.dot24(a, a1, bs[0], bs[1], bs[2], bs[3], &want24)
				if got24 != want24 {
					t.Errorf("n=%d: dot24 = %v, reference %v", n, got24, want24)
				}
				for i, b := range bs {
					if want24[i] != refs.dotPair(a, b) || want24[4+i] != refs.dotPair(a1, b) {
						t.Errorf("n=%d: reference dot24 column %d disagrees with dotPair", n, i)
					}
				}
			}
		})
	}
}

// blockedRef composes the canonical blocked order out of a family's
// single-block reference: per-block reference sums added in ascending-k
// order — the independent spelling of gram.go's dotPair wrapper the
// composition test pins the dispatch against.
func blockedRef(ref func(a, b []float64) float64, a, b []float64) float64 {
	var s float64
	for k := 0; k < len(a); k += gramBlock {
		e := k + gramBlock
		if e > len(a) {
			e = len(a)
		}
		s += ref(a[k:e], b[k:e])
	}
	return s
}

// TestDotBlockedComposition pins the depth-blocked accumulation order
// at multi-block dimensions for every available tier: the dispatched
// dotPair must equal the per-block reference sums composed in
// ascending-k order, every dot4/dot24 cell must equal that same value
// (tile ≡ pairwise across the block seam), and the blocked result must
// actually DIFFER from a single-pass reference sum on at least one
// tested length — proving the block seam is an observable part of the
// order (and therefore of the order-family salt), not a no-op.
func TestDotBlockedComposition(t *testing.T) {
	lengths := []int{gramBlock + 1, 2 * gramBlock, 2*gramBlock + 5, 3*gramBlock + 1807}
	for _, tier := range AvailableTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			refs := refsFor(t, tier.Order())
			rng := NewRNG(11)
			seamObserved := false
			for _, n := range lengths {
				a := rng.NewNormal(n, 0, 3)
				a1 := rng.NewNormal(n, 0, 3)
				bs := make([][]float64, 4)
				for i := range bs {
					bs[i] = rng.NewNormal(n, 0, 3)
				}
				for k := range a {
					if k%3 == 0 {
						a[k] *= 1e8
					}
					if k%5 == 0 {
						a[k] *= 1e-8
					}
				}
				for i, b := range bs {
					want := blockedRef(refs.dotPair, a, b)
					if got := dotPair(a, b); got != want {
						t.Errorf("n=%d: dotPair(a, b%d) = %v, blocked reference %v", n, i, got, want)
					}
					if refs.dotPair(a, b) != want {
						seamObserved = true
					}
				}
				g0, g1, g2, g3 := dot4(a, bs[0], bs[1], bs[2], bs[3])
				var g24 [8]float64
				dot24(a, a1, bs[0], bs[1], bs[2], bs[3], &g24)
				for i, b := range bs {
					want := blockedRef(refs.dotPair, a, b)
					if got := []float64{g0, g1, g2, g3}[i]; got != want {
						t.Errorf("n=%d: dot4 column %d = %v, blocked reference %v", n, i, got, want)
					}
					if g24[i] != want {
						t.Errorf("n=%d: dot24 row 0 column %d = %v, blocked reference %v", n, i, g24[i], want)
					}
					if want1 := blockedRef(refs.dotPair, a1, b); g24[4+i] != want1 {
						t.Errorf("n=%d: dot24 row 1 column %d = %v, blocked reference %v", n, i, g24[4+i], want1)
					}
				}
			}
			if !seamObserved {
				t.Error("blocked and single-pass reference sums agreed on every input; the seam test is vacuous")
			}
		})
	}
}

// goldenVec deterministically builds a golden input vector from pure
// integer arithmetic and exact float operations (a 53-bit mantissa is
// converted exactly; the ×1e3 / ×1e-3 magnitude spread keeps every
// element contributing to the low bits of the sum, so a dropped tail
// lane cannot hide). No libm calls — the inputs are bit-identical on
// every platform and Go release.
func goldenVec(seed uint64, n int) []float64 {
	x := seed
	v := make([]float64, n)
	for i := range v {
		x = x*6364136223846793005 + 1442695040888963407
		f := float64(x>>11)/(1<<53) - 0.5
		switch i % 3 {
		case 1:
			f *= 1e3
		case 2:
			f *= 1e-3
		}
		v[i] = f
	}
	return v
}

// goldenLens covers every AVX2 tail residue twice over (n mod 8 ∈ 0..7
// and n mod 4 ∈ 0..3 for each) plus a long vector.
var goldenLens = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 100}

// dotGoldens pins ⟨goldenVec(A,n), goldenVec(B,n)⟩ per order family as
// raw bit patterns, one per entry of goldenLens. These were computed
// once from the pure-Go references and hardcoded: they freeze each
// family's canonical accumulation order forever — an "optimization"
// that reorders a sum, a tail-handling bug, or an asm/reference drift
// all land here as a bit mismatch. Note the families agree on short
// vectors and split from n=8 on: fused rounding only shows once enough
// terms accumulate.
var dotGoldens = map[string][]uint64{
	"pair2": {
		0x0000000000000000, 0x3fc2a21dbd18ab28, 0xc0ebcd8cb90888a1,
		0xc0ebcd8cb908b55f, 0xc0ebcd8e95e38d10, 0x40de81ca63ccae08,
		0x40de81ca63cca610, 0x40de81cd2f9784b4, 0xc101d3e7236094ae,
		0xc101d3e72360947e, 0xc101d3e6cf3455c6, 0xc0f4db754097c82c,
		0xc0f4db754097d87a, 0xc0f4db75bbbf74e2, 0xc0fa6f69ce58f496,
		0xc0fa6f69ce58f76e, 0xc0fa6f6b8b5840e6, 0x412c4cc48c4cd262,
	},
	"fma4": {
		0x0000000000000000, 0x3fc2a21dbd18ab28, 0xc0ebcd8cb90888a1,
		0xc0ebcd8cb908b55f, 0xc0ebcd8e95e38d10, 0x40de81ca63ccae08,
		0x40de81ca63cca610, 0x40de81cd2f9784b4, 0xc101d3e7236094b0,
		0xc101d3e72360947e, 0xc101d3e6cf3455c8, 0xc0f4db754097c82e,
		0xc0f4db754097d87c, 0xc0f4db75bbbf74e4, 0xc0fa6f69ce58f496,
		0xc0fa6f69ce58f76c, 0xc0fa6f6b8b5840e4, 0x412c4cc48c4cd261,
	},
}

// TestDotGoldenVectors checks every order family's reference against
// the frozen goldens (portable — both references are pure Go, so this
// runs on every platform), then forces each available tier and checks
// the DISPATCHED kernels against the same goldens. Together with
// TestDotKernelsBitIdentical this pins asm ≡ reference ≡ golden.
func TestDotGoldenVectors(t *testing.T) {
	const seedA, seedB = 0x9e3779b97f4a7c15, 0xd1b54a32d192ed03
	for order, goldens := range dotGoldens {
		t.Run("reference/"+order, func(t *testing.T) {
			refs := refsFor(t, order)
			for i, n := range goldenLens {
				a, b := goldenVec(seedA, n), goldenVec(seedB, n)
				if got := math.Float64bits(refs.dotPair(a, b)); got != goldens[i] {
					t.Errorf("n=%d: reference dot = %#016x, golden %#016x", n, got, goldens[i])
				}
			}
		})
	}
	for _, tier := range AvailableTiers() {
		t.Run("dispatch/"+tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			goldens := dotGoldens[tier.Order()]
			for i, n := range goldenLens {
				a, b := goldenVec(seedA, n), goldenVec(seedB, n)
				if got := math.Float64bits(dotPair(a, b)); got != goldens[i] {
					t.Errorf("n=%d: dotPair = %#016x, golden %#016x", n, got, goldens[i])
				}
				g0, g1, g2, g3 := dot4(a, b, b, b, b)
				for col, g := range []float64{g0, g1, g2, g3} {
					if math.Float64bits(g) != goldens[i] {
						t.Errorf("n=%d: dot4 column %d = %#016x, golden %#016x", n, col, math.Float64bits(g), goldens[i])
					}
				}
				var out [8]float64
				dot24(a, a, b, b, b, b, &out)
				for col, g := range out {
					if math.Float64bits(g) != goldens[i] {
						t.Errorf("n=%d: dot24 column %d = %#016x, golden %#016x", n, col, math.Float64bits(g), goldens[i])
					}
				}
			}
		})
	}
}

// TestOrderFamiliesDistinct documents that pair2 and fma4 are REAL
// distinct orders — on long-enough inputs their goldens differ — so the
// store-key salt and handshake pin are load-bearing, not ceremonial.
func TestOrderFamiliesDistinct(t *testing.T) {
	differ := false
	for i := range goldenLens {
		if dotGoldens["pair2"][i] != dotGoldens["fma4"][i] {
			differ = true
		}
	}
	if !differ {
		t.Fatal("pair2 and fma4 goldens are identical on every length; the order-family distinction is vacuous")
	}
}
