package vec

import "testing"

// TestDotKernelsBitIdentical pins the dispatched kernels (SSE2 assembly
// on amd64) to the pure-Go reference order: every length — including
// the empty, single-element, and odd-length tails — must agree bit for
// bit, not just within tolerance. On non-amd64 platforms dispatch IS
// the reference and the test is trivially green.
func TestDotKernelsBitIdentical(t *testing.T) {
	rng := NewRNG(7)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 100, 1001} {
		a := rng.NewNormal(n, 0, 3)
		bs := make([][]float64, 4)
		for i := range bs {
			bs[i] = rng.NewNormal(n, 0, 3)
		}
		// Inject magnitude spread so accumulation order actually
		// matters: a reordered sum would differ in the low bits.
		for k := range a {
			if k%3 == 0 {
				a[k] *= 1e8
			}
			if k%5 == 0 {
				a[k] *= 1e-8
			}
		}
		for i, b := range bs {
			if got, want := dotPair(a, b), dotPairGo(a, b); got != want {
				t.Errorf("n=%d: dotPair(a, b%d) = %v, reference %v", n, i, got, want)
			}
		}
		g0, g1, g2, g3 := dot4(a, bs[0], bs[1], bs[2], bs[3])
		w0, w1, w2, w3 := dot4Go(a, bs[0], bs[1], bs[2], bs[3])
		for i, pair := range [][2]float64{{g0, w0}, {g1, w1}, {g2, w2}, {g3, w3}} {
			if pair[0] != pair[1] {
				t.Errorf("n=%d: dot4 column %d = %v, reference %v", n, i, pair[0], pair[1])
			}
		}
		// dot4 columns must equal the pairwise kernel too (the tile is
		// an arrangement, never a different sum).
		for i, b := range bs {
			single := dotPairGo(a, b)
			quad := []float64{w0, w1, w2, w3}[i]
			if single != quad {
				t.Errorf("n=%d: dot4Go column %d = %v, dotPairGo %v", n, i, quad, single)
			}
		}
		// The 2×4 tile: dispatched vs reference vs pairwise, all exact.
		a1 := rng.NewNormal(n, 0, 3)
		var got24, want24 [8]float64
		dot24(a, a1, bs[0], bs[1], bs[2], bs[3], &got24)
		dot24Go(a, a1, bs[0], bs[1], bs[2], bs[3], &want24)
		if got24 != want24 {
			t.Errorf("n=%d: dot24 = %v, reference %v", n, got24, want24)
		}
		for i, b := range bs {
			if want24[i] != dotPairGo(a, b) || want24[4+i] != dotPairGo(a1, b) {
				t.Errorf("n=%d: dot24Go column %d disagrees with dotPairGo", n, i)
			}
		}
	}
}
