package vec

import (
	"sort"
	"testing"
)

func TestActiveSetDeactivateAndCount(t *testing.T) {
	rng := NewRNG(1)
	vs := make([][]float64, 6)
	for i := range vs {
		vs[i] = rng.NewNormal(4, 0, 1)
	}
	a := NewActiveSet(NewDistanceMatrix(vs))
	if a.Count() != 6 {
		t.Fatalf("count = %d, want 6", a.Count())
	}
	a.Deactivate(2)
	a.Deactivate(2) // idempotent
	a.Deactivate(5)
	if a.Count() != 4 {
		t.Fatalf("count = %d, want 4", a.Count())
	}
	if a.Alive(2) || a.Alive(5) || !a.Alive(0) {
		t.Fatalf("alive flags wrong: %v %v %v", a.Alive(2), a.Alive(5), a.Alive(0))
	}
	got := a.AppendAlive(nil)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("AppendAlive = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendAlive = %v, want %v", got, want)
		}
	}
}

// TestActiveSetSumKSmallestMatchesBruteForce checks the masked score sum
// against a direct sort over the surviving distances.
func TestActiveSetSumKSmallestMatchesBruteForce(t *testing.T) {
	rng := NewRNG(2)
	const n, d = 9, 5
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NewNormal(d, 0, 1)
	}
	m := NewDistanceMatrix(vs)
	a := NewActiveSet(m)
	a.Deactivate(3)
	a.Deactivate(7)
	scratch := make([]float64, n)
	for i := 0; i < n; i++ {
		if !a.Alive(i) {
			continue
		}
		var surviving []float64
		for j := 0; j < n; j++ {
			if j == i || !a.Alive(j) {
				continue
			}
			surviving = append(surviving, m.At(i, j))
		}
		sort.Float64s(surviving)
		for k := 0; k <= len(surviving); k++ {
			var want float64
			for _, v := range surviving[:k] {
				want += v
			}
			// The heap accumulates in a different order than the
			// sorted reference, so compare with a float tolerance.
			got := a.SumKSmallest(i, k, scratch)
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("SumKSmallest(%d, %d) = %v, want %v", i, k, got, want)
			}
		}
	}
}

// TestActiveSetMatchesUnmaskedMatrix: with nothing deactivated the masked
// sum must agree bit for bit with the DistanceMatrix method.
func TestActiveSetMatchesUnmaskedMatrix(t *testing.T) {
	rng := NewRNG(3)
	const n, d = 11, 8
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NewNormal(d, 0, 1)
	}
	m := NewDistanceMatrix(vs)
	a := NewActiveSet(m)
	scratch := make([]float64, n)
	scratch2 := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := 1; k < n-1; k++ {
			if got, want := a.SumKSmallest(i, k, scratch), m.SumKSmallestExcludingSelf(i, k, scratch2); got != want {
				t.Fatalf("masked(%d,%d) = %v, unmasked = %v", i, k, got, want)
			}
		}
	}
}

func TestFloatPoolRoundTrip(t *testing.T) {
	s := GetFloats(16)
	if len(s) != 16 {
		t.Fatalf("len = %d, want 16", len(s))
	}
	for i := range s {
		s[i] = float64(i)
	}
	PutFloats(s)
	s2 := GetFloats(8)
	if len(s2) != 8 {
		t.Fatalf("len = %d, want 8", len(s2))
	}
	PutFloats(s2)
	PutFloats(nil) // must not panic
}

func TestMatrixBuildCountIncrements(t *testing.T) {
	vs := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 2}}
	before := MatrixBuildCount()
	NewDistanceMatrix(vs)
	NewDistanceMatrixParallel(vs, 2)
	if got := MatrixBuildCount() - before; got != 2 {
		t.Fatalf("build count delta = %d, want 2", got)
	}
}
