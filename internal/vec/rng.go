package vec

import "math"

// RNG is a small, fast, deterministic random number generator
// (xoshiro256** seeded through SplitMix64). It exists so that every
// experiment in the repository is reproducible from a single integer
// seed, and so that substreams handed to concurrent workers are
// statistically independent (Split) without any shared mutable state —
// the guides' "avoid mutable globals" rule applied to randomness.
//
// The zero value is NOT usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
	// gauss caches the second variate of the Box–Muller pair.
	gauss    float64
	hasGauss bool
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

// splitMix64 advances the SplitMix64 state and returns (newState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent generator from r. The derived stream is
// seeded from fresh output of r, so distinct calls yield distinct,
// decorrelated streams; r itself advances.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Float64 returns a uniform sample from [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform sample from {0, ..., n-1}. It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vec: RNG.Intn with non-positive n")
	}
	// Lemire-style rejection-free bound for our (non-cryptographic)
	// purposes: the modulo bias is < 2^-40 for all n we use.
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal sample (Box–Muller transform).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.gauss = radius * math.Sin(theta)
	r.hasGauss = true
	return radius * math.Cos(theta)
}

// FillNormal fills dst with i.i.d. N(mean, sigma²) samples.
func (r *RNG) FillNormal(dst []float64, mean, sigma float64) {
	for i := range dst {
		dst[i] = mean + sigma*r.NormFloat64()
	}
}

// FillUniform fills dst with i.i.d. Uniform[lo, hi) samples.
func (r *RNG) FillUniform(dst []float64, lo, hi float64) {
	w := hi - lo
	for i := range dst {
		dst[i] = lo + w*r.Float64()
	}
}

// NewNormal returns a freshly allocated vector of n i.i.d. N(mean, sigma²)
// samples.
func (r *RNG) NewNormal(n int, mean, sigma float64) []float64 {
	v := make([]float64, n)
	r.FillNormal(v, mean, sigma)
	return v
}

// Perm returns a uniformly random permutation of {0, ..., n-1}
// (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
