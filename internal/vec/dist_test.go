package vec

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistanceMatrixBasic(t *testing.T) {
	vs := [][]float64{{0, 0}, {3, 4}, {0, 1}}
	m := NewDistanceMatrix(vs)
	if m.N() != 3 {
		t.Fatalf("N = %d, want 3", m.N())
	}
	wants := [][3]float64{
		{0, 25, 1},
		{25, 0, 18},
		{1, 18, 0},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got := m.At(i, j); math.Abs(got-wants[i][j]) > 1e-12 {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, got, wants[i][j])
			}
		}
	}
}

func TestDistanceMatrixSymmetryProperty(t *testing.T) {
	f := func(seed uint64, n8, d8 uint8) bool {
		n := int(n8%8) + 2
		d := int(d8%5) + 1
		rng := NewRNG(seed)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = rng.NewNormal(d, 0, 1)
		}
		m := NewDistanceMatrix(vs)
		for i := 0; i < n; i++ {
			if m.At(i, i) != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if m.At(i, j) != m.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSumKSmallestExcludingSelf(t *testing.T) {
	vs := [][]float64{{0}, {1}, {3}, {10}}
	m := NewDistanceMatrix(vs)
	scratch := make([]float64, 4)
	// Distances² from vector 0: 1, 9, 100.
	tests := []struct {
		k    int
		want float64
	}{
		{k: 0, want: 0},
		{k: 1, want: 1},
		{k: 2, want: 10},
		{k: 3, want: 110},
	}
	for _, tt := range tests {
		if got := m.SumKSmallestExcludingSelf(0, tt.k, scratch); got != tt.want {
			t.Errorf("k=%d: got %v, want %v", tt.k, got, tt.want)
		}
	}
}

// Property: SumKSmallestExcludingSelf agrees with a sort-based oracle.
func TestSumKSmallestMatchesSortOracle(t *testing.T) {
	f := func(seed uint64, n8, k8 uint8) bool {
		n := int(n8%10) + 3
		k := int(k8) % n
		rng := NewRNG(seed)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = rng.NewNormal(4, 0, 10)
		}
		m := NewDistanceMatrix(vs)
		scratch := make([]float64, k+1)
		for i := 0; i < n; i++ {
			got := m.SumKSmallestExcludingSelf(i, k, scratch)
			row := append([]float64(nil), m.Row(i)...)
			row = append(row[:i], row[i+1:]...)
			sort.Float64s(row)
			var want float64
			for _, v := range row[:k] {
				want += v
			}
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSumKSmallestBoundaries pins the selection boundaries: k = 0
// (empty selection), k = n−1 (every other vector, exactly the Krum sum
// at f = −1), k beyond the candidate count (graceful saturation), and
// duplicate distances (ties must not double- or under-count).
func TestSumKSmallestBoundaries(t *testing.T) {
	// Distances² from vector 0: 1, 1, 4, 4, 9 — duplicates on purpose.
	vs := [][]float64{{0}, {1}, {-1}, {2}, {-2}, {3}}
	n := len(vs)
	m := NewDistanceMatrix(vs)
	scratch := make([]float64, n)
	tests := []struct {
		k    int
		want float64
	}{
		{k: 0, want: 0},
		{k: -3, want: 0},       // negative k behaves like zero
		{k: 1, want: 1},        // one of the tied pair
		{k: 2, want: 2},        // both tied values, not the same one twice
		{k: 3, want: 6},        // 1+1+4 crosses a tie boundary
		{k: 4, want: 10},       // 1+1+4+4
		{k: n - 1, want: 19},   // all five others
		{k: n, want: 19},       // k beyond the candidate count saturates
		{k: 100 * n, want: 19}, // far beyond
	}
	for _, tt := range tests {
		if got := m.SumKSmallestExcludingSelf(0, tt.k, scratch); got != tt.want {
			t.Errorf("k=%d: got %v, want %v", tt.k, got, tt.want)
		}
	}
	// The self-distance stays excluded even when every candidate is a
	// duplicate of it.
	dup := NewDistanceMatrix([][]float64{{0}, {0}, {0}})
	if got := dup.SumKSmallestExcludingSelf(1, 2, scratch); got != 0 {
		t.Errorf("all-duplicate matrix: got %v, want 0", got)
	}
	// n = 1: no candidates at all.
	single := NewDistanceMatrix([][]float64{{5}})
	if got := single.SumKSmallestExcludingSelf(0, 1, scratch); got != 0 {
		t.Errorf("single-vector matrix: got %v, want 0", got)
	}
	// All-equal vectors: every pairwise distance is an exact zero tie;
	// every k must sum to 0 from every viewpoint — the degenerate
	// input screened selection must also survive (its scores then tie
	// completely and selection is decided by index alone).
	allEq := NewDistanceMatrix([][]float64{{2, 2}, {2, 2}, {2, 2}, {2, 2}})
	for i := 0; i < 4; i++ {
		for k := 0; k <= 5; k++ {
			if got := allEq.SumKSmallestExcludingSelf(i, k, scratch); got != 0 {
				t.Errorf("all-equal matrix: i=%d k=%d got %v, want 0", i, k, got)
			}
		}
	}
	// Near-threshold duplicates: the k-th and (k+1)-th smallest differ
	// by one ulp; the heap must keep exactly the k smallest, never the
	// near-tie above the boundary.
	lo := 4.0
	hi := math.Nextafter(lo, math.Inf(1))
	row := []float64{0, lo, hi, lo, hi, 100}
	if got := sumKSmallest(row, 0, 2, scratch); got != lo+lo {
		t.Errorf("ulp boundary k=2: got %v, want %v", got, lo+lo)
	}
	if got := sumKSmallest(row, 0, 3, scratch); got != lo+lo+hi {
		t.Errorf("ulp boundary k=3: got %v, want %v", got, lo+lo+hi)
	}
}

func TestKSmallestIndices(t *testing.T) {
	vals := []float64{5, 1, 3, 1, 0}
	tests := []struct {
		name string
		skip int
		k    int
		want []int
	}{
		{name: "k=0", skip: -1, k: 0, want: nil},
		{name: "k=2 no skip", skip: -1, k: 2, want: []int{4, 1}},
		{name: "tie broken by index", skip: -1, k: 3, want: []int{4, 1, 3}},
		{name: "skip smallest", skip: 4, k: 2, want: []int{1, 3}},
		{name: "k larger than n", skip: -1, k: 10, want: []int{4, 1, 3, 2, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := KSmallestIndices(vals, tt.skip, tt.k)
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
}

// Property: KSmallestIndices returns indices whose values are the k
// smallest in multiset terms.
func TestKSmallestIndicesOracle(t *testing.T) {
	f := func(seed uint64, n8, k8 uint8) bool {
		n := int(n8%12) + 1
		k := int(k8)%n + 1
		rng := NewRNG(seed)
		vals := rng.NewNormal(n, 0, 5)
		got := KSmallestIndices(vals, -1, k)
		if len(got) != k {
			return false
		}
		gotVals := make([]float64, k)
		for i, idx := range got {
			gotVals[i] = vals[idx]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for i := 0; i < k; i++ {
			if gotVals[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDistanceMatrixParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(42)
	for _, n := range []int{2, 3, 7, 16} {
		for _, workers := range []int{0, 1, 2, 8, 100} {
			vs := make([][]float64, n)
			for i := range vs {
				vs[i] = rng.NewNormal(24, 0, 3)
			}
			serial := NewDistanceMatrix(vs)
			par := NewDistanceMatrixParallel(vs, workers)
			if par.N() != serial.N() {
				t.Fatalf("n=%d workers=%d: N mismatch", n, workers)
			}
			for i := 0; i < n; i++ {
				if !ApproxEqual(par.Row(i), serial.Row(i), 0) {
					t.Fatalf("n=%d workers=%d: row %d differs", n, workers, i)
				}
			}
		}
	}
}

func TestDistanceMatrixParallelSingleVector(t *testing.T) {
	m := NewDistanceMatrixParallel([][]float64{{1, 2}}, 4)
	if m.N() != 1 || m.At(0, 0) != 0 {
		t.Error("single-vector matrix wrong")
	}
}
