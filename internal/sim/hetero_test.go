package sim

import (
	"errors"
	"testing"

	"krum/data"
	"krum/internal/vec"
	"krum/model"
)

func TestNewHeterogeneousPoolValidation(t *testing.T) {
	m, _ := testSetup(t)
	g1, err := data.NewGaussianMixture(3, 4, 2, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := data.NewGaussianMixture(3, 5, 2, 0.3, 1) // different dim
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHeterogeneousPool(nil, []data.Dataset{g1}, 4, 1); !errors.Is(err, ErrConfig) {
		t.Error("nil model accepted")
	}
	if _, err := NewHeterogeneousPool(m, nil, 4, 1); !errors.Is(err, ErrConfig) {
		t.Error("no datasets accepted")
	}
	if _, err := NewHeterogeneousPool(m, []data.Dataset{g1, nil}, 4, 1); !errors.Is(err, ErrConfig) {
		t.Error("nil dataset accepted")
	}
	if _, err := NewHeterogeneousPool(m, []data.Dataset{g1, g2}, 4, 1); !errors.Is(err, ErrConfig) {
		t.Error("mismatched dataset shapes accepted")
	}
	if _, err := NewHeterogeneousPool(m, []data.Dataset{g1}, 0, 1); !errors.Is(err, ErrConfig) {
		t.Error("zero batch accepted")
	}
}

func TestHeterogeneousPoolWorkersDrawFromOwnDistribution(t *testing.T) {
	// Build a 4-class mixture and give each of two workers a disjoint
	// class pair; their gradient estimates must differ systematically
	// (the skew E7 exploits).
	base, err := data.NewGaussianMixture(4, 6, 5, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.PartitionClasses(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewSoftmaxClassifier(6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewHeterogeneousPool(m, []data.Dataset{parts[0], parts[1]}, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if pool.N() != 2 || pool.Dim() != m.Dim() {
		t.Fatalf("pool shape N=%d dim=%d", pool.N(), pool.Dim())
	}
	params := m.Params(nil)
	grads, loss, err := pool.Gradients(params)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Errorf("loss %v", loss)
	}
	// The two workers see disjoint classes, so their gradients point in
	// visibly different directions (cosine well below 1).
	cos := vec.Dot(grads[0], grads[1]) / (vec.Norm(grads[0])*vec.Norm(grads[1]) + 1e-12)
	if cos > 0.95 {
		t.Errorf("heterogeneous workers produced near-identical gradients: cos=%v", cos)
	}
}

func TestHeterogeneousPoolSharedDatasetMatchesNewPool(t *testing.T) {
	// With the SAME dataset per worker and the same seed, the
	// heterogeneous constructor is exactly NewPool.
	m, ds := testSetup(t)
	p1, err := NewPool(m, ds, 3, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewHeterogeneousPool(m, []data.Dataset{ds, ds, ds}, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	params := m.Params(nil)
	g1, l1, err := p1.Gradients(params)
	if err != nil {
		t.Fatal(err)
	}
	g2, l2, err := p2.Gradients(params)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Errorf("losses differ: %v vs %v", l1, l2)
	}
	for i := range g1 {
		if !vec.ApproxEqual(g1[i], g2[i], 0) {
			t.Errorf("worker %d gradients differ", i)
		}
	}
}
