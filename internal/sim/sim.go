// Package sim is the in-process substrate for the paper's distributed
// model (Section 2): a pool of correct workers that, in each synchronous
// round, receive the broadcast parameter vector, draw an i.i.d.
// mini-batch, and return gradient estimates. Workers run concurrently
// (one goroutine each per round, joined before the round returns), hold
// independent model replicas and independent RNG substreams, and share
// no mutable state — the same isolation real worker processes would
// have, minus the network (package transport provides that).
package sim

import (
	"errors"
	"fmt"
	"sync"

	"krum/data"
	"krum/internal/vec"
	"krum/model"
)

// ErrConfig is returned for invalid pool configurations.
var ErrConfig = errors.New("sim: bad configuration")

// worker is one correct worker's private state.
type worker struct {
	m    model.Model
	rng  *vec.RNG
	x, y *vec.Dense
	grad []float64
	loss float64
	err  error
	// ds is this worker's sample stream (shared in the homogeneous
	// NewPool case, distinct under NewHeterogeneousPool).
	ds data.Dataset
}

// Pool simulates n correct workers. Construct with NewPool (i.i.d., the
// paper's model) or NewHeterogeneousPool (per-worker distributions, the
// E7 stress test). Pool is not safe for concurrent use by multiple
// goroutines; one training loop owns it.
type Pool struct {
	workers []*worker
	dim     int
}

// NewPool creates nWorkers replicas of template, each drawing
// batch-sized mini-batches from ds. Randomness is split from seed so
// worker streams are mutually independent and the whole pool is
// reproducible.
func NewPool(template model.Model, ds data.Dataset, nWorkers, batch int, seed uint64) (*Pool, error) {
	if template == nil {
		return nil, fmt.Errorf("nil model: %w", ErrConfig)
	}
	if ds == nil {
		return nil, fmt.Errorf("nil dataset: %w", ErrConfig)
	}
	if nWorkers < 1 {
		return nil, fmt.Errorf("nWorkers = %d: %w", nWorkers, ErrConfig)
	}
	if batch < 1 {
		return nil, fmt.Errorf("batch = %d: %w", batch, ErrConfig)
	}
	root := vec.NewRNG(seed)
	p := &Pool{workers: make([]*worker, nWorkers), dim: template.Dim()}
	for i := range p.workers {
		p.workers[i] = &worker{
			m:    template.Clone(),
			rng:  root.Split(),
			x:    vec.NewDense(batch, ds.Dim()),
			y:    vec.NewDense(batch, ds.OutDim()),
			grad: make([]float64, template.Dim()),
			ds:   ds,
		}
	}
	return p, nil
}

// N returns the number of workers.
func (p *Pool) N() int { return len(p.workers) }

// Dim returns the parameter dimension.
func (p *Pool) Dim() int { return p.dim }

// Gradients runs one synchronous round: every worker receives params,
// draws a fresh mini-batch and computes its gradient estimate
// V_i = G(x_t, ξ_i). It returns the n proposals and the mean mini-batch
// loss across workers. The returned slices are owned by the pool and
// remain valid only until the next call — the engine copies what it
// keeps (copy-at-boundary).
func (p *Pool) Gradients(params []float64) ([][]float64, float64, error) {
	if len(params) != p.dim {
		return nil, 0, fmt.Errorf("params dim %d, want %d: %w", len(params), p.dim, ErrConfig)
	}
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.err = w.round(w.ds, params)
		}(w)
	}
	wg.Wait()

	proposals := make([][]float64, len(p.workers))
	var lossSum float64
	for i, w := range p.workers {
		if w.err != nil {
			return nil, 0, fmt.Errorf("worker %d: %w", i, w.err)
		}
		proposals[i] = w.grad
		lossSum += w.loss
	}
	return proposals, lossSum / float64(len(p.workers)), nil
}

// round is one worker's round-t computation.
func (w *worker) round(ds data.Dataset, params []float64) error {
	if err := w.m.SetParams(params); err != nil {
		return err
	}
	if err := data.FillBatch(ds, w.rng, w.x, w.y); err != nil {
		return err
	}
	loss, err := w.m.Gradient(w.grad, w.x, w.y)
	if err != nil {
		return err
	}
	w.loss = loss
	return nil
}
