package sim

import (
	"errors"
	"testing"

	"krum/data"
	"krum/internal/vec"
	"krum/model"
)

func testSetup(t *testing.T) (model.Model, data.Dataset) {
	t.Helper()
	ds, err := data.NewGaussianMixture(3, 4, 2, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewSoftmaxClassifier(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return m, ds
}

func TestNewPoolValidation(t *testing.T) {
	m, ds := testSetup(t)
	if _, err := NewPool(nil, ds, 3, 8, 1); !errors.Is(err, ErrConfig) {
		t.Error("nil model accepted")
	}
	if _, err := NewPool(m, nil, 3, 8, 1); !errors.Is(err, ErrConfig) {
		t.Error("nil dataset accepted")
	}
	if _, err := NewPool(m, ds, 0, 8, 1); !errors.Is(err, ErrConfig) {
		t.Error("zero workers accepted")
	}
	if _, err := NewPool(m, ds, 3, 0, 1); !errors.Is(err, ErrConfig) {
		t.Error("zero batch accepted")
	}
}

func TestGradientsShapeAndIndependence(t *testing.T) {
	m, ds := testSetup(t)
	p, err := NewPool(m, ds, 5, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 5 || p.Dim() != m.Dim() {
		t.Fatalf("N=%d Dim=%d", p.N(), p.Dim())
	}
	params := m.Params(nil)
	grads, loss, err := p.Gradients(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(grads) != 5 {
		t.Fatalf("%d proposals", len(grads))
	}
	if loss <= 0 {
		t.Errorf("loss = %v", loss)
	}
	// Workers draw independent batches, so their gradient estimates
	// must differ.
	for i := 0; i < 5; i++ {
		if !vec.AllFinite(grads[i]) {
			t.Errorf("worker %d produced non-finite gradient", i)
		}
		for j := i + 1; j < 5; j++ {
			if vec.ApproxEqual(grads[i], grads[j], 1e-12) {
				t.Errorf("workers %d and %d returned identical gradients", i, j)
			}
		}
	}
}

func TestGradientsDeterministicAcrossPools(t *testing.T) {
	m, ds := testSetup(t)
	p1, err := NewPool(m, ds, 4, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPool(m, ds, 4, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	params := m.Params(nil)
	g1, l1, err := p1.Gradients(params)
	if err != nil {
		t.Fatal(err)
	}
	g2, l2, err := p2.Gradients(params)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Errorf("losses differ: %v vs %v", l1, l2)
	}
	for i := range g1 {
		if !vec.ApproxEqual(g1[i], g2[i], 0) {
			t.Errorf("worker %d gradients differ across identically seeded pools", i)
		}
	}
}

func TestGradientsUnbiasedTowardTrueGradient(t *testing.T) {
	// On a linear regression stream, the average of many worker
	// estimates approximates the server-side full-batch gradient.
	ds, err := data.NewLinearRegressionStream(3, 1, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLinearRegression(3, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(m, ds, 50, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	params := m.Params(nil)
	grads, _, err := p.Gradients(params)
	if err != nil {
		t.Fatal(err)
	}
	meanGrad := make([]float64, m.Dim())
	vec.Mean(meanGrad, grads)
	// Reference: one huge batch on the server model.
	rng := vec.NewRNG(12345)
	bx, by, err := data.NewBatch(ds, rng, 20000)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, m.Dim())
	if _, err := m.Gradient(ref, bx, by); err != nil {
		t.Fatal(err)
	}
	// Relative direction agreement.
	cos := vec.Dot(meanGrad, ref) / (vec.Norm(meanGrad)*vec.Norm(ref) + 1e-12)
	if cos < 0.99 {
		t.Errorf("mean worker gradient misaligned with true gradient: cos = %v", cos)
	}
}

func TestGradientsParamMismatch(t *testing.T) {
	m, ds := testSetup(t)
	p, err := NewPool(m, ds, 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Gradients(make([]float64, 3)); !errors.Is(err, ErrConfig) {
		t.Errorf("wrong param length: %v", err)
	}
}
