package sim

import (
	"fmt"

	"krum/data"
	"krum/internal/vec"
	"krum/model"
)

// NewHeterogeneousPool is NewPool with one dataset per worker — the
// substrate for the non-i.i.d. experiments (E7): worker i draws its
// mini-batches from datasets[i], so the paper's assumption of i.i.d.
// unbiased gradient estimates across workers is deliberately violated
// while everything else (synchronous rounds, honest computation) stays
// intact.
func NewHeterogeneousPool(template model.Model, datasets []data.Dataset, batch int, seed uint64) (*Pool, error) {
	if template == nil {
		return nil, fmt.Errorf("nil model: %w", ErrConfig)
	}
	if len(datasets) == 0 {
		return nil, fmt.Errorf("no datasets: %w", ErrConfig)
	}
	if batch < 1 {
		return nil, fmt.Errorf("batch = %d: %w", batch, ErrConfig)
	}
	dim0, out0 := datasets[0].Dim(), datasets[0].OutDim()
	for i, ds := range datasets {
		if ds == nil {
			return nil, fmt.Errorf("dataset %d is nil: %w", i, ErrConfig)
		}
		if ds.Dim() != dim0 || ds.OutDim() != out0 {
			return nil, fmt.Errorf("dataset %d shape (%d, %d) differs from (%d, %d): %w",
				i, ds.Dim(), ds.OutDim(), dim0, out0, ErrConfig)
		}
	}
	root := vec.NewRNG(seed)
	p := &Pool{workers: make([]*worker, len(datasets)), dim: template.Dim()}
	for i := range p.workers {
		p.workers[i] = &worker{
			m:    template.Clone(),
			rng:  root.Split(),
			x:    vec.NewDense(batch, dim0),
			y:    vec.NewDense(batch, out0),
			grad: make([]float64, template.Dim()),
			ds:   datasets[i],
		}
	}
	return p, nil
}
