package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"krum/internal/vec"
)

func TestWelfordAgainstClosedForm(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.N() != len(data) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Unbiased variance of that classic sample is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Error("variance of single point should be 0")
	}
	if w.Mean() != 3 {
		t.Errorf("Mean = %v", w.Mean())
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset: naive sum-of-squares would lose precision.
	var w Welford
	offset := 1e9
	for _, x := range []float64{offset + 1, offset + 2, offset + 3} {
		w.Add(x)
	}
	if math.Abs(w.Variance()-1) > 1e-6 {
		t.Errorf("Variance = %v, want 1", w.Variance())
	}
}

func TestWelfordMatchesTwoPassProperty(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%50) + 2
		rng := vec.NewRNG(seed)
		var w Welford
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * 10
			w.Add(data[i])
		}
		mean, _ := MeanOf(data)
		var ss float64
		for _, x := range data {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-variance) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMomentsRaw(t *testing.T) {
	var m Moments
	for _, x := range []float64{1, 2, 3} {
		m.Add(x)
	}
	wants := map[int]float64{1: 2, 2: 14.0 / 3, 3: 12, 4: 98.0 / 3}
	for r, want := range wants {
		if got := m.Raw(r); math.Abs(got-want) > 1e-12 {
			t.Errorf("Raw(%d) = %v, want %v", r, got, want)
		}
	}
	if m.N() != 3 {
		t.Errorf("N = %d", m.N())
	}
}

func TestMomentsEmptyAndPanic(t *testing.T) {
	var m Moments
	if m.Raw(2) != 0 {
		t.Error("empty Moments should return 0")
	}
	m.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Raw(5) did not panic")
		}
	}()
	m.Raw(5)
}

func TestVecMean(t *testing.T) {
	vm := NewVecMean(2)
	got := vm.Mean(nil)
	if !vec.ApproxEqual(got, []float64{0, 0}, 0) {
		t.Errorf("empty VecMean = %v", got)
	}
	vm.Add([]float64{1, 2})
	vm.Add([]float64{3, 4})
	got = vm.Mean(nil)
	if !vec.ApproxEqual(got, []float64{2, 3}, 1e-15) {
		t.Errorf("VecMean = %v, want [2 3]", got)
	}
	if vm.N() != 2 {
		t.Errorf("N = %d", vm.N())
	}
}

func TestVecMeanDimensionPanic(t *testing.T) {
	vm := NewVecMean(2)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	vm.Add([]float64{1})
}

func TestQuantile(t *testing.T) {
	sample := []float64{3, 1, 2, 4}
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 1},
		{q: 1, want: 4},
		{q: 0.5, want: 2.5},
		{q: 0.25, want: 1.75},
	}
	for _, tt := range tests {
		got, err := Quantile(sample, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Input must be untouched.
	if sample[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrNoData) {
		t.Errorf("empty sample: err = %v, want ErrNoData", err)
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Error("q out of range accepted")
	}
	got, err := Median([]float64{9})
	if err != nil || got != 9 {
		t.Errorf("Median single = %v, %v", got, err)
	}
}

func TestMeanOf(t *testing.T) {
	if _, err := MeanOf(nil); !errors.Is(err, ErrNoData) {
		t.Error("MeanOf(nil) should return ErrNoData")
	}
	got, err := MeanOf([]float64{1, 2, 3})
	if err != nil || got != 2 {
		t.Errorf("MeanOf = %v, %v", got, err)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x exactly
	a, b, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("fit = (%v, %v, %v), want (3, 2, 1)", a, b, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrNoData) {
		t.Error("single point should return ErrNoData")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestLinearFitNoisyR2(t *testing.T) {
	rng := vec.NewRNG(11)
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = float64(i)
		y[i] = 1 + 0.5*x[i] + rng.NormFloat64()*0.01
	}
	_, b, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 0.01 {
		t.Errorf("slope = %v, want ~0.5", b)
	}
	if r2 < 0.999 {
		t.Errorf("r² = %v, want ≈1", r2)
	}
}
