// Package stats provides the streaming statistical estimators used by the
// Byzantine-resilience verifier (Definition 3.2 of the paper) and by the
// experiment harness: Welford mean/variance, raw moments up to order four,
// quantiles, and simple normal-approximation confidence intervals.
//
// Everything is single-pass and allocation-free after construction so it
// can be embedded in long Monte-Carlo loops.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by estimators queried before any observation.
var ErrNoData = errors.New("stats: no observations")

// Welford accumulates count, mean and (unbiased) variance in one pass
// using Welford's numerically stable recurrence. The zero value is ready
// to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval on the mean.
func (w *Welford) CI95() float64 { return 1.96 * w.StdErr() }

// Moments accumulates the raw moments E[X^r] for r = 1..4 in one pass.
// These are exactly the quantities condition (ii) of Definition 3.2
// bounds: E‖F‖^r for r = 2, 3, 4 against products of moments of the
// correct gradient estimator G. The zero value is ready to use.
type Moments struct {
	n          int
	s1, s2, s3 float64
	s4         float64
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	m.n++
	x2 := x * x
	m.s1 += x
	m.s2 += x2
	m.s3 += x2 * x
	m.s4 += x2 * x2
}

// N returns the number of observations.
func (m *Moments) N() int { return m.n }

// Raw returns the estimated raw moment E[X^r] for r in 1..4.
// It panics for r outside that range and returns 0 before any data.
func (m *Moments) Raw(r int) float64 {
	if m.n == 0 {
		return 0
	}
	n := float64(m.n)
	switch r {
	case 1:
		return m.s1 / n
	case 2:
		return m.s2 / n
	case 3:
		return m.s3 / n
	case 4:
		return m.s4 / n
	default:
		panic("stats: Moments.Raw supports r in 1..4")
	}
}

// VecMean accumulates the element-wise mean of a stream of equal-length
// vectors. It is used to estimate E[F] for condition (i) of
// Definition 3.2. Construct with NewVecMean.
type VecMean struct {
	n   int
	sum []float64
}

// NewVecMean returns an accumulator for vectors of dimension d.
func NewVecMean(d int) *VecMean {
	return &VecMean{sum: make([]float64, d)}
}

// Add incorporates one vector observation. It panics on dimension
// mismatch.
func (v *VecMean) Add(x []float64) {
	if len(x) != len(v.sum) {
		panic("stats: VecMean dimension mismatch")
	}
	v.n++
	for i, xi := range x {
		v.sum[i] += xi
	}
}

// N returns the number of observations.
func (v *VecMean) N() int { return v.n }

// Mean writes the current mean into dst and returns it. If dst is nil a
// fresh slice is allocated.
func (v *VecMean) Mean(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(v.sum))
	}
	if v.n == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	inv := 1 / float64(v.n)
	for i, s := range v.sum {
		dst[i] = s * inv
	}
	return dst
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sample using linear
// interpolation between order statistics. The input slice is not
// modified. It returns ErrNoData for an empty sample.
func Quantile(sample []float64, q float64) (float64, error) {
	if len(sample) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the sample median, or ErrNoData for an empty sample.
func Median(sample []float64) (float64, error) {
	return Quantile(sample, 0.5)
}

// MeanOf returns the arithmetic mean of sample, or ErrNoData if empty.
func MeanOf(sample []float64) (float64, error) {
	if len(sample) == 0 {
		return 0, ErrNoData
	}
	var s float64
	for _, x := range sample {
		s += x
	}
	return s / float64(len(sample)), nil
}

// LinearFit fits y ≈ a + b·x by ordinary least squares and returns
// (a, b, r²). It is used by the Lemma 4.1 harness to fit measured Krum
// cost against n²·d. It returns an error with fewer than two points or
// degenerate x.
func LinearFit(x, y []float64) (a, b, r2 float64, err error) {
	if len(x) != len(y) {
		return 0, 0, 0, errors.New("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		return 0, 0, 0, ErrNoData
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, errors.New("stats: LinearFit degenerate x")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1, nil
	}
	var ssRes float64
	for i := range x {
		r := y[i] - (a + b*x[i])
		ssRes += r * r
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2, nil
}
