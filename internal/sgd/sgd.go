// Package sgd implements the optimizer substrate of the paper's Section 2:
// the parameter-server update rule x_{t+1} = x_t − γ_t·F(V_1,...,V_n),
// learning-rate schedules satisfying the Robbins–Monro conditions of
// Proposition 4.3 (Σγ_t = ∞, Σγ_t² < ∞), and gradient-norm based
// stopping diagnostics.
package sgd

import (
	"errors"
	"fmt"
	"math"

	"krum/internal/vec"
)

// ErrBadSchedule is returned for schedules with invalid parameters.
var ErrBadSchedule = errors.New("sgd: bad schedule parameter")

// Schedule maps the round index t = 0, 1, 2, ... to the learning rate γ_t.
type Schedule interface {
	// Rate returns γ_t for round t.
	Rate(t int) float64
	// Name identifies the schedule in experiment logs. For every
	// built-in the returned string is a valid registry spec:
	// ParseSchedule(s.Name()) reconstructs s.
	Name() string
}

// Constant is the fixed learning-rate schedule γ_t = Gamma. It does NOT
// satisfy Σγ_t² < ∞ and is provided for short-horizon experiments where
// the paper's almost-sure convergence is not the quantity of interest.
type Constant struct {
	// Gamma is the rate; must be positive.
	Gamma float64
}

var _ Schedule = Constant{}

// Rate implements Schedule.
func (c Constant) Rate(int) float64 { return c.Gamma }

// Name implements Schedule.
func (c Constant) Name() string { return fmt.Sprintf("const(gamma=%g)", c.Gamma) }

// InverseT is the Robbins–Monro family γ_t = Gamma / (1 + t/T0)^Power.
// For 0.5 < Power ≤ 1 it satisfies both conditions (ii) of
// Proposition 4.3: Σγ_t = ∞ and Σγ_t² < ∞.
type InverseT struct {
	// Gamma is the initial rate γ_0; must be positive.
	Gamma float64
	// Power is the decay exponent; the convergence theorem needs
	// 0.5 < Power ≤ 1.
	Power float64
	// T0 stretches the decay horizon; 0 means 1 (no stretch).
	T0 float64
}

var _ Schedule = InverseT{}

// Rate implements Schedule.
func (s InverseT) Rate(t int) float64 {
	t0 := s.T0
	if t0 <= 0 {
		t0 = 1
	}
	return s.Gamma / math.Pow(1+float64(t)/t0, s.Power)
}

// Name implements Schedule. It reports the effective t0 (1 when unset)
// so the name round-trips through ParseSchedule.
func (s InverseT) Name() string {
	t0 := s.T0
	if t0 <= 0 {
		t0 = 1
	}
	return fmt.Sprintf("inverset(gamma=%g,power=%g,t0=%g)", s.Gamma, s.Power, t0)
}

// Validate checks the Robbins–Monro admissibility of the schedule.
func (s InverseT) Validate() error {
	if s.Gamma <= 0 {
		return fmt.Errorf("gamma = %g must be positive: %w", s.Gamma, ErrBadSchedule)
	}
	if s.Power <= 0.5 || s.Power > 1 {
		return fmt.Errorf("power = %g outside (0.5, 1]: %w", s.Power, ErrBadSchedule)
	}
	return nil
}

// Step is the piecewise-constant schedule that multiplies the rate by
// Factor every Every rounds — the "step decay" used by the deep-learning
// experiments of the full paper.
type Step struct {
	// Gamma is the initial rate.
	Gamma float64
	// Every is the number of rounds between decays; must be positive.
	Every int
	// Factor is the multiplicative decay in (0, 1].
	Factor float64
}

var _ Schedule = Step{}

// Rate implements Schedule.
func (s Step) Rate(t int) float64 {
	if s.Every <= 0 {
		return s.Gamma
	}
	return s.Gamma * math.Pow(s.Factor, float64(t/s.Every))
}

// Name implements Schedule.
func (s Step) Name() string {
	return fmt.Sprintf("step(gamma=%g,every=%d,factor=%g)", s.Gamma, s.Every, s.Factor)
}

// Optimizer applies the parameter-server SGD recurrence with an optional
// classical momentum term (momentum is off, Mu = 0, in all
// paper-faithful experiments; it exists for the ablation benches).
// Construct with NewOptimizer.
type Optimizer struct {
	schedule Schedule
	mu       float64
	velocity []float64
	t        int
}

// NewOptimizer returns an optimizer over parameters of dimension d.
func NewOptimizer(schedule Schedule, d int, mu float64) (*Optimizer, error) {
	if schedule == nil {
		return nil, fmt.Errorf("nil schedule: %w", ErrBadSchedule)
	}
	if d <= 0 {
		return nil, fmt.Errorf("dimension %d: %w", d, ErrBadSchedule)
	}
	if mu < 0 || mu >= 1 {
		return nil, fmt.Errorf("momentum %g outside [0, 1): %w", mu, ErrBadSchedule)
	}
	return &Optimizer{schedule: schedule, mu: mu, velocity: make([]float64, d)}, nil
}

// Round returns the number of steps applied so far.
func (o *Optimizer) Round() int { return o.t }

// CurrentRate returns γ_t for the upcoming step.
func (o *Optimizer) CurrentRate() float64 { return o.schedule.Rate(o.t) }

// Step applies x ← x − γ_t·(update + momentum) in place and advances t.
// update is the aggregated choice-function output F(V_1..V_n).
func (o *Optimizer) Step(x, update []float64) error {
	if len(x) != len(o.velocity) || len(update) != len(o.velocity) {
		return fmt.Errorf("dimension mismatch (x=%d, update=%d, want %d): %w",
			len(x), len(update), len(o.velocity), ErrBadSchedule)
	}
	gamma := o.schedule.Rate(o.t)
	o.t++
	if o.mu == 0 {
		vec.Axpy(-gamma, update, x)
		return nil
	}
	for i := range o.velocity {
		o.velocity[i] = o.mu*o.velocity[i] + update[i]
	}
	vec.Axpy(-gamma, o.velocity, x)
	return nil
}

// Reset rewinds the optimizer to round zero and clears momentum state.
func (o *Optimizer) Reset() {
	o.t = 0
	vec.Zero(o.velocity)
}
