package sgd

import (
	"errors"
	"math"
	"testing"

	"krum/internal/vec"
)

func TestConstantSchedule(t *testing.T) {
	s := Constant{Gamma: 0.3}
	for _, tt := range []int{0, 1, 100} {
		if s.Rate(tt) != 0.3 {
			t.Errorf("Rate(%d) = %v", tt, s.Rate(tt))
		}
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestInverseTSchedule(t *testing.T) {
	s := InverseT{Gamma: 1, Power: 1}
	if s.Rate(0) != 1 {
		t.Errorf("Rate(0) = %v", s.Rate(0))
	}
	if s.Rate(1) != 0.5 {
		t.Errorf("Rate(1) = %v", s.Rate(1))
	}
	if s.Rate(9) != 0.1 {
		t.Errorf("Rate(9) = %v", s.Rate(9))
	}
	// T0 stretch.
	s2 := InverseT{Gamma: 1, Power: 1, T0: 10}
	if s2.Rate(10) != 0.5 {
		t.Errorf("T0 Rate(10) = %v", s2.Rate(10))
	}
}

func TestInverseTValidate(t *testing.T) {
	tests := []struct {
		name string
		s    InverseT
		ok   bool
	}{
		{name: "valid 0.75", s: InverseT{Gamma: 0.1, Power: 0.75}, ok: true},
		{name: "valid 1.0", s: InverseT{Gamma: 0.1, Power: 1}, ok: true},
		{name: "power too small", s: InverseT{Gamma: 0.1, Power: 0.5}, ok: false},
		{name: "power too large", s: InverseT{Gamma: 0.1, Power: 1.1}, ok: false},
		{name: "non-positive gamma", s: InverseT{Gamma: 0, Power: 0.75}, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.s.Validate()
			if tt.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tt.ok && !errors.Is(err, ErrBadSchedule) {
				t.Errorf("err = %v, want ErrBadSchedule", err)
			}
		})
	}
}

// The Robbins–Monro conditions themselves, checked numerically: partial
// sums of γ_t diverge while partial sums of γ_t² converge.
func TestInverseTRobbinsMonroNumerically(t *testing.T) {
	s := InverseT{Gamma: 1, Power: 0.75}
	var sum, sumSq float64
	var sum1k float64
	for i := 0; i < 100000; i++ {
		g := s.Rate(i)
		sum += g
		sumSq += g * g
		if i == 999 {
			sum1k = sum
		}
	}
	if sum < 2*sum1k {
		t.Errorf("Σγ looks convergent: sum(1e5)=%v vs sum(1e3)=%v", sum, sum1k)
	}
	// For p = 0.75, Σγ² = Σ(1+t)^-1.5 converges to ≈ ζ(1.5) ≈ 2.612.
	if sumSq > 3 {
		t.Errorf("Σγ² = %v diverging", sumSq)
	}
}

func TestStepSchedule(t *testing.T) {
	s := Step{Gamma: 1, Every: 10, Factor: 0.5}
	if s.Rate(0) != 1 || s.Rate(9) != 1 {
		t.Error("no decay expected before first boundary")
	}
	if s.Rate(10) != 0.5 {
		t.Errorf("Rate(10) = %v", s.Rate(10))
	}
	if s.Rate(25) != 0.25 {
		t.Errorf("Rate(25) = %v", s.Rate(25))
	}
	// Every <= 0 degrades to constant.
	if (Step{Gamma: 2}).Rate(100) != 2 {
		t.Error("Every=0 should be constant")
	}
}

func TestNewOptimizerValidation(t *testing.T) {
	if _, err := NewOptimizer(nil, 3, 0); !errors.Is(err, ErrBadSchedule) {
		t.Error("nil schedule accepted")
	}
	if _, err := NewOptimizer(Constant{Gamma: 1}, 0, 0); !errors.Is(err, ErrBadSchedule) {
		t.Error("zero dimension accepted")
	}
	if _, err := NewOptimizer(Constant{Gamma: 1}, 3, 1.0); !errors.Is(err, ErrBadSchedule) {
		t.Error("momentum 1.0 accepted")
	}
	if _, err := NewOptimizer(Constant{Gamma: 1}, 3, -0.1); !errors.Is(err, ErrBadSchedule) {
		t.Error("negative momentum accepted")
	}
}

func TestOptimizerStepNoMomentum(t *testing.T) {
	o, err := NewOptimizer(Constant{Gamma: 0.5}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 1}
	if err := o.Step(x, []float64{2, -2}); err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(x, []float64{0, 2}, 1e-15) {
		t.Errorf("x = %v", x)
	}
	if o.Round() != 1 {
		t.Errorf("Round = %d", o.Round())
	}
}

func TestOptimizerScheduleAdvances(t *testing.T) {
	o, err := NewOptimizer(InverseT{Gamma: 1, Power: 1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0}
	grad := []float64{1}
	_ = o.Step(x, grad) // γ_0 = 1
	_ = o.Step(x, grad) // γ_1 = 0.5
	_ = o.Step(x, grad) // γ_2 = 1/3
	want := -(1 + 0.5 + 1.0/3.0)
	if math.Abs(x[0]-want) > 1e-12 {
		t.Errorf("x = %v, want %v", x[0], want)
	}
	if o.CurrentRate() != 0.25 {
		t.Errorf("CurrentRate = %v, want 0.25", o.CurrentRate())
	}
}

func TestOptimizerMomentum(t *testing.T) {
	o, err := NewOptimizer(Constant{Gamma: 1}, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0}
	_ = o.Step(x, []float64{1}) // v = 1,   x = -1
	_ = o.Step(x, []float64{1}) // v = 1.9, x = -2.9
	if math.Abs(x[0]+2.9) > 1e-12 {
		t.Errorf("x = %v, want -2.9", x[0])
	}
	o.Reset()
	if o.Round() != 0 {
		t.Error("Reset did not rewind rounds")
	}
	x = []float64{0}
	_ = o.Step(x, []float64{1})
	if math.Abs(x[0]+1) > 1e-12 {
		t.Error("Reset did not clear momentum")
	}
}

func TestOptimizerDimensionMismatch(t *testing.T) {
	o, err := NewOptimizer(Constant{Gamma: 1}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Step([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrBadSchedule) {
		t.Errorf("err = %v", err)
	}
}

// Integration: plain SGD on a convex quadratic converges to the minimum.
func TestOptimizerConvergesOnQuadratic(t *testing.T) {
	o, err := NewOptimizer(InverseT{Gamma: 0.5, Power: 0.75}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Q(x) = ½‖x − c‖², ∇Q = x − c.
	c := []float64{3, -2}
	x := []float64{10, 10}
	grad := make([]float64, 2)
	for i := 0; i < 2000; i++ {
		vec.Sub(grad, x, c)
		if err := o.Step(x, grad); err != nil {
			t.Fatal(err)
		}
	}
	if vec.Dist(x, c) > 0.01 {
		t.Errorf("x = %v did not converge to %v", x, c)
	}
}
