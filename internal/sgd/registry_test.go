package sgd

import (
	"errors"
	"strings"
	"testing"
)

// TestParseScheduleRoundTrip: every built-in schedule round-trips
// through its Name().
func TestParseScheduleRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"const(gamma=0.5)", "const(gamma=0.5)"},
		{"inverset(gamma=0.1)", "inverset(gamma=0.1,power=0.75,t0=1)"},
		{"inverset(gamma=0.5,power=0.75,t0=200)", "inverset(gamma=0.5,power=0.75,t0=200)"},
		{"step(gamma=0.5,every=50,factor=0.5)", "step(gamma=0.5,every=50,factor=0.5)"},
		{"step(gamma=0.5)", "step(gamma=0.5,every=0,factor=1)"},
	}
	for _, tc := range cases {
		s, err := ParseSchedule(tc.spec)
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", tc.spec, err)
			continue
		}
		if s.Name() != tc.name {
			t.Errorf("ParseSchedule(%q).Name() = %q, want %q", tc.spec, s.Name(), tc.name)
			continue
		}
		again, err := ParseSchedule(s.Name())
		if err != nil {
			t.Errorf("round trip ParseSchedule(%q): %v", s.Name(), err)
			continue
		}
		if again.Name() != s.Name() {
			t.Errorf("round trip of %q: %q != %q", tc.spec, again.Name(), s.Name())
		}
		if got, want := again.Rate(17), s.Rate(17); got != want {
			t.Errorf("%q: round-tripped rate %v != %v", tc.spec, got, want)
		}
	}
}

func TestParseScheduleMalformedSpecs(t *testing.T) {
	bad := []string{
		"",
		"nosuchschedule",
		"const",          // gamma required
		"const(gamma=0)", // out of range
		"const(gamma=x)", // non-numeric
		"const(zz=1)",    // unknown parameter
		"const(gamma=1",  // missing paren
		"inverset(gamma=0.5,power=0)",
		"inverset(gamma=0.5,t0=0)",
		"step(gamma=0.5,every=-1)",
		"step(gamma=0.5,factor=0)",
		"step(gamma=0.5,factor=2)",
	}
	for _, s := range bad {
		if _, err := ParseSchedule(s); !errors.Is(err, ErrBadSchedule) {
			t.Errorf("ParseSchedule(%q) = %v, want wrapped ErrBadSchedule", s, err)
		}
	}
}

func TestScheduleUsageListsEverySchedule(t *testing.T) {
	usage := ScheduleUsage()
	for _, name := range ScheduleNames() {
		if !strings.Contains(usage, name) {
			t.Errorf("ScheduleUsage() omits %q: %s", name, usage)
		}
	}
	if !strings.Contains(usage, "inverset(gamma,power,t0)") {
		t.Errorf("ScheduleUsage() should document inverset parameters: %s", usage)
	}
}

func TestParseScheduleCaseStable(t *testing.T) {
	for _, s := range []string{"const(gamma=0.5)", "Const(Gamma=0.5)", "CONST(GAMMA=0.5)"} {
		sched, err := ParseSchedule(s)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", s, err)
		}
		if sched.Name() != "const(gamma=0.5)" {
			t.Errorf("ParseSchedule(%q).Name() = %q", s, sched.Name())
		}
	}
}
