package sgd

import "testing"

// FuzzParseSchedule drives the learning-rate schedule parser with
// arbitrary input: no input may panic, and any accepted spec must
// round-trip — the constructed schedule's Name() is itself a valid
// spec whose reparse yields the same Name.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"const(gamma=0.5)", "inverset(gamma=0.5)",
		"inverset(gamma=0.5,power=0.75,t0=200)",
		"step(gamma=0.1,every=50,factor=0.5)",
		"CONST(GAMMA=1)", " step ( gamma = 0.1 ) ",
		"", "const", "const()", "const(gamma=0)", "const(gamma=-1)",
		"const(gamma=x)", "inverset(power=0.75)", "step(gamma=0.1,every=-1)",
		"nosuchschedule", "const(gamma=1,gamma=2)", "const(gamma=1e999)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := ParseSchedule(s) // must not panic, whatever s is
		if err != nil {
			return
		}
		name := sched.Name()
		back, err := ParseSchedule(name)
		if err != nil {
			t.Fatalf("accepted spec %q produced Name %q that does not reparse: %v", s, name, err)
		}
		if got := back.Name(); got != name {
			t.Fatalf("Name round-trip unstable for spec %q: %q -> %q", s, name, got)
		}
	})
}
