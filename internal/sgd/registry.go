package sgd

import (
	"fmt"

	"krum/internal/spec"
)

// This file is the central learning-rate schedule registry, the γ_t
// analogue of the rule registry in internal/core: the harness, the
// scenario package and the CLI binaries construct schedules exclusively
// through ParseSchedule. Spec strings take the form
//
//	const(gamma=0.5) | inverset(gamma=0.5,power=0.75,t0=200) |
//	step(gamma=0.5,every=50,factor=0.5)
//
// and every built-in Schedule's Name() is itself a valid spec, so
// schedules round-trip through experiment logs and JSON scenario files.

// ScheduleArgs holds the key=value parameters of a parsed schedule
// spec.
type ScheduleArgs = spec.Args

// ScheduleFactory builds a Schedule from a parsed spec. Schedules take
// no context defaults — gamma must always be spelled out; the remaining
// parameters have universal defaults.
type ScheduleFactory = spec.Factory[Schedule, struct{}]

var schedules = spec.NewRegistry[Schedule, struct{}]("schedule", ErrBadSchedule)

// RegisterSchedule adds a schedule factory under the given
// (case-insensitive) name; it panics on duplicates — a programmer error
// at init time.
func RegisterSchedule(name string, f ScheduleFactory) { schedules.Register(name, f) }

// ParseSchedule constructs the schedule described by spec. Unknown
// names, unknown parameter keys, and malformed values are all reported
// as wrapped ErrBadSchedule.
func ParseSchedule(s string) (Schedule, error) { return schedules.Parse(struct{}{}, s) }

// ScheduleNames returns the registered schedule names, sorted.
func ScheduleNames() []string { return schedules.Names() }

// ScheduleUsage returns a generated one-line summary of every
// registered schedule with its parameters — CLI help text is built from
// this so it can never drift from the implemented set.
func ScheduleUsage() string { return schedules.Usage() }

// gammaArg extracts the mandatory positive gamma parameter.
func gammaArg(a ScheduleArgs) (float64, error) {
	if !a.Has("gamma") {
		return 0, fmt.Errorf("gamma is required: %w", ErrBadSchedule)
	}
	gamma, err := a.Float("gamma", 0)
	if err != nil {
		return 0, err
	}
	if gamma <= 0 {
		return 0, fmt.Errorf("gamma = %g must be positive: %w", gamma, ErrBadSchedule)
	}
	return gamma, nil
}

// init registers the built-in schedules. Third-party schedules can call
// RegisterSchedule from their own init functions.
func init() {
	RegisterSchedule("const", ScheduleFactory{
		Params: []string{"gamma"},
		Doc:    "fixed rate γ_t = gamma (short-horizon experiments; violates Σγ_t² < ∞)",
		New: func(_ struct{}, a ScheduleArgs) (Schedule, error) {
			gamma, err := gammaArg(a)
			if err != nil {
				return nil, err
			}
			return Constant{Gamma: gamma}, nil
		},
	})
	RegisterSchedule("inverset", ScheduleFactory{
		Params: []string{"gamma", "power", "t0"},
		Doc:    "Robbins–Monro family γ_t = gamma/(1+t/t0)^power (Proposition 4.3 needs 0.5 < power ≤ 1)",
		New: func(_ struct{}, a ScheduleArgs) (Schedule, error) {
			gamma, err := gammaArg(a)
			if err != nil {
				return nil, err
			}
			power, err := a.Float("power", 0.75)
			if err != nil {
				return nil, err
			}
			if power <= 0 {
				return nil, fmt.Errorf("power = %g must be positive: %w", power, ErrBadSchedule)
			}
			t0, err := a.Float("t0", 1)
			if err != nil {
				return nil, err
			}
			if t0 <= 0 {
				return nil, fmt.Errorf("t0 = %g must be positive: %w", t0, ErrBadSchedule)
			}
			return InverseT{Gamma: gamma, Power: power, T0: t0}, nil
		},
	})
	RegisterSchedule("step", ScheduleFactory{
		Params: []string{"gamma", "every", "factor"},
		Doc:    "step decay: rate × factor every `every` rounds (deep-learning experiments)",
		New: func(_ struct{}, a ScheduleArgs) (Schedule, error) {
			gamma, err := gammaArg(a)
			if err != nil {
				return nil, err
			}
			every, err := a.Int("every", 0)
			if err != nil {
				return nil, err
			}
			if every < 0 {
				return nil, fmt.Errorf("every = %d must be non-negative: %w", every, ErrBadSchedule)
			}
			factor, err := a.Float("factor", 1)
			if err != nil {
				return nil, err
			}
			if factor <= 0 || factor > 1 {
				return nil, fmt.Errorf("factor = %g outside (0, 1]: %w", factor, ErrBadSchedule)
			}
			return Step{Gamma: gamma, Every: every, Factor: factor}, nil
		},
	})
}
