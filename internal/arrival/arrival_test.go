package arrival

import (
	"errors"
	"reflect"
	"testing"

	"krum/internal/vec"
)

// collect materializes rounds arrivals of a fresh trace.
func collect(p Process, seed uint64, n, rounds int) [][]int {
	tr := p.NewTrace(seed, n)
	out := make([][]int, rounds)
	for t := range out {
		out[t] = tr.Next()
	}
	return out
}

// TestSyncAllArriveEveryRound pins the degenerate process: every
// worker, every round.
func TestSyncAllArriveEveryRound(t *testing.T) {
	all := make([]int, 7)
	for i := range all {
		all[i] = i
	}
	for r, arr := range collect(Sync{}, 1, 7, 5) {
		if !reflect.DeepEqual(arr, all) {
			t.Fatalf("round %d: sync arrivals = %v, want all 7", r, arr)
		}
	}
}

// TestRoundZeroColdStart: every process starts with a full arrival
// round — there is nothing to replay yet.
func TestRoundZeroColdStart(t *testing.T) {
	for _, p := range []Process{
		Sync{},
		Bounded{TauBound: 3},
		Bernoulli{P: 0.1, TauBound: 9},
	} {
		arr := p.NewTrace(99, 11).Next()
		if len(arr) != 11 {
			t.Fatalf("%s: round 0 arrivals = %v, want all 11", p.Name(), arr)
		}
	}
}

// TestTauBoundNeverViolated is the core property test: over a sweep of
// processes and seeds, replayed staleness never exceeds τ, arrivals
// are strictly ascending, and Staleness agrees with an independently
// tracked last-arrival table.
func TestTauBoundNeverViolated(t *testing.T) {
	procs := []Process{
		Sync{},
		Bounded{TauBound: 1},
		Bounded{TauBound: 4},
		Bounded{TauBound: 7, Lambda: 0.5},
		Bernoulli{P: 0.05, TauBound: 3},
		Bernoulli{P: 0.3, TauBound: 8},
		Bernoulli{P: 0.9, TauBound: 1},
		Bernoulli{P: 1, TauBound: 6},
	}
	rng := vec.NewRNG(2026)
	for _, p := range procs {
		for trial := 0; trial < 8; trial++ {
			seed := rng.Uint64()
			n := 1 + rng.Intn(40)
			tr := p.NewTrace(seed, n)
			lastAt := make([]int, n)
			for round := 0; round < 200; round++ {
				arr := tr.Next()
				for k, i := range arr {
					if i < 0 || i >= n {
						t.Fatalf("%s n=%d: arrival index %d out of range", p.Name(), n, i)
					}
					if k > 0 && arr[k-1] >= i {
						t.Fatalf("%s n=%d round %d: arrivals %v not strictly ascending", p.Name(), n, round, arr)
					}
					lastAt[i] = round
				}
				for i := 0; i < n; i++ {
					s := round - lastAt[i]
					if s > p.Tau() {
						t.Fatalf("%s n=%d round %d: worker %d staleness %d exceeds tau %d",
							p.Name(), n, round, i, s, p.Tau())
					}
					if got := tr.Staleness(i); got != s {
						t.Fatalf("%s n=%d round %d: Staleness(%d) = %d, want %d",
							p.Name(), n, round, i, got, s)
					}
				}
			}
		}
	}
}

// TestTraceDeterminism: the trace is a pure function of (seed, n) —
// same inputs, same arrivals; for the RNG-backed family, different
// seeds give different traces.
func TestTraceDeterminism(t *testing.T) {
	p := Bernoulli{P: 0.4, TauBound: 6}
	a := collect(p, 42, 15, 60)
	b := collect(p, 42, 15, 60)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, n) produced different traces")
	}
	c := collect(p, 43, 15, 60)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical bernoulli traces")
	}
}

// TestBoundedRotation pins the staggered schedule: after the cold
// start, worker i arrives exactly at rounds with (t+i) ≡ 0 mod (τ+1),
// so every proposal hits staleness exactly τ before refresh.
func TestBoundedRotation(t *testing.T) {
	const tau, n, rounds = 3, 8, 40
	tr := Bounded{TauBound: tau}.NewTrace(5, n)
	for round := 0; round < rounds; round++ {
		arr := tr.Next()
		want := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if round == 0 || (round+i)%(tau+1) == 0 {
				want = append(want, i)
			}
		}
		if !reflect.DeepEqual(arr, want) {
			t.Fatalf("round %d: arrivals %v, want %v", round, arr, want)
		}
	}
}

// TestDampFactor pins the Kardam damping curve and its two identity
// regimes (fresh proposals; λ = 0).
func TestDampFactor(t *testing.T) {
	if got := DampFactor(0.5, 0); got != 1 {
		t.Fatalf("DampFactor(0.5, 0) = %g, want exactly 1", got)
	}
	if got := DampFactor(0, 7); got != 1 {
		t.Fatalf("DampFactor(0, 7) = %g, want exactly 1", got)
	}
	if got, want := DampFactor(0.5, 2), 0.5; got != want {
		t.Fatalf("DampFactor(0.5, 2) = %g, want %g", got, want)
	}
	prev := 1.0
	for s := 1; s < 10; s++ {
		f := DampFactor(0.3, s)
		if f <= 0 || f >= prev {
			t.Fatalf("DampFactor not strictly decreasing positive: s=%d f=%g prev=%g", s, f, prev)
		}
		prev = f
	}
}

// TestParseRoundTrip: Parse(p.Name()) reconstructs an identical
// process for every built-in shape, matching the registry contract of
// the other four registries.
func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"sync",
		"bounded(tau=1)",
		"bounded(tau=3)",
		"bounded(tau=3,damp=0.5)",
		"bernoulli(p=0.5,tau=8)",
		"bernoulli(p=0.25,tau=8)",
		"bernoulli(p=0.5,tau=4,damp=0.1)",
	} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		back, err := Parse(p.Name())
		if err != nil {
			t.Fatalf("Parse(Name %q): %v", p.Name(), err)
		}
		if back.Name() != p.Name() {
			t.Fatalf("round trip unstable: %q -> %q -> %q", s, p.Name(), back.Name())
		}
		if !reflect.DeepEqual(back, p) {
			t.Fatalf("round trip changed process: %q: %#v vs %#v", s, p, back)
		}
	}
}

// TestTauZeroCollapsesToSync: τ = 0 means every worker is forced every
// round, so the parser canonicalizes those specs to Sync — the alias
// the store uses to keep bounded(tau=0) cells on sync keys.
func TestTauZeroCollapsesToSync(t *testing.T) {
	for _, s := range []string{"bounded(tau=0)", "bernoulli(p=0.5,tau=0)", "bounded(tau=0,damp=2)"} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if _, ok := p.(Sync); !ok || p.Name() != "sync" {
			t.Fatalf("Parse(%q) = %#v (Name %q), want Sync", s, p, p.Name())
		}
	}
}

// TestParseDefaults pins bernoulli's p default.
func TestParseDefaults(t *testing.T) {
	p, err := Parse("bernoulli(tau=4)")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Name(); got != "bernoulli(p=0.5,tau=4)" {
		t.Fatalf("default p: Name = %q", got)
	}
}

// TestParseErrors: malformed specs are rejected with wrapped
// ErrBadArrival, never a panic.
func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"nosuch",
		"bounded",                // tau required
		"bounded()",              // tau required
		"bounded(tau=-1)",        // negative tau
		"bounded(tau=x)",         // malformed value
		"bounded(p=0.5)",         // unknown key for bounded
		"bernoulli(tau=2,p=0)",   // p out of range
		"bernoulli(tau=2,p=1.5)", // p out of range
		"bernoulli(p=0.5)",       // tau required
		"bounded(tau=2,damp=-1)", // negative damp
		"sync(tau=1)",            // sync takes no params
	} {
		if _, err := Parse(s); !errors.Is(err, ErrBadArrival) {
			t.Fatalf("Parse(%q) error = %v, want ErrBadArrival", s, err)
		}
	}
}

// TestBernoulliDrawStabilityUnderForcing: the election draw is
// consumed even on forced-arrival rounds, so the tail of the trace
// does not depend on how often forcing fired — two processes with the
// same p and seed but different τ agree on elections wherever neither
// is forced. Materially: the trace stays a pure function of (seed, n).
func TestBernoulliDrawStabilityUnderForcing(t *testing.T) {
	const n, rounds = 10, 80
	low := Bernoulli{P: 0.3, TauBound: 2}.NewTrace(7, n)
	high := Bernoulli{P: 0.3, TauBound: 40}.NewTrace(7, n)
	lowLast := make([]int, n)
	highLast := make([]int, n)
	for round := 0; round < rounds; round++ {
		la, ha := low.Next(), high.Next()
		inLow := memberSet(la)
		inHigh := memberSet(ha)
		for i := 0; i < n; i++ {
			lowForced := round == 0 || round-lowLast[i] > 2
			highForced := round == 0 || round-highLast[i] > 40
			if !lowForced && !highForced && inLow[i] != inHigh[i] {
				t.Fatalf("round %d worker %d: elections diverged across tau (low %v, high %v)",
					round, i, inLow[i], inHigh[i])
			}
			if inLow[i] {
				lowLast[i] = round
			}
			if inHigh[i] {
				highLast[i] = round
			}
		}
	}
}

func memberSet(arr []int) map[int]bool {
	m := make(map[int]bool, len(arr))
	for _, i := range arr {
		m[i] = true
	}
	return m
}
