// Package arrival models bounded-staleness asynchronous rounds as a
// deterministic arrival process over the n workers (ROADMAP item 5,
// after Kardam-style bounded-staleness SGD, Damaskinos et al.
// ICML'18). Each round only an arriving subset of workers submits a
// fresh proposal; stragglers replay their last one, optionally damped
// by a staleness-decreasing factor, and no worker may lag more than τ
// rounds behind — the trace force-arrives any worker about to exceed
// the bound.
//
// Determinism is load-bearing: the scenario store and the scenariod
// fleet both assume every cell is a pure function of its Spec, so an
// arrival trace derives exclusively from the cell seed and the worker
// count — never from wall-clock time or scheduling accidents. Two
// runs of the same cell observe the same arrivals in the same order,
// on any machine and any topology.
//
// Processes are constructed through the spec registry in this package
// (Parse), the fifth registry of the repository after rules, attacks,
// schedules and workloads, with the same round-trip guarantee: every
// Process's Name() is itself a valid spec and Parse(p.Name())
// reconstructs p.
package arrival

import (
	"fmt"

	"krum/internal/vec"
)

// Process describes a deterministic arrival schedule family. A Process
// is immutable and reusable; per-run state lives in the Trace it mints.
type Process interface {
	// Name returns the canonical spec string, parseable by Parse.
	Name() string
	// Tau is the staleness bound τ: a proposal replayed at round t was
	// submitted no earlier than round t−τ. Sync has τ = 0.
	Tau() int
	// Damp is the Kardam-style staleness damping coefficient λ ≥ 0: a
	// proposal of staleness s is scaled by 1/(1+λ·s) before
	// aggregation. 0 disables damping (pure replay).
	Damp() float64
	// NewTrace mints the arrival trace for one run: seed is the cell
	// seed (the same integer that drives the rest of the run), n the
	// total worker count.
	NewTrace(seed uint64, n int) *Trace
}

// DampFactor returns the Kardam damping factor 1/(1+λ·s) for a
// proposal of staleness s rounds under coefficient λ. s = 0 (a fresh
// arrival) always maps to exactly 1, so damping never perturbs
// synchronous traffic.
func DampFactor(lambda float64, s int) float64 {
	if s <= 0 || lambda == 0 {
		return 1
	}
	return 1 / (1 + lambda*float64(s))
}

// decideFunc reports whether worker i would arrive at round t of its
// own accord (before τ-forcing). It must consume the same RNG draws
// regardless of forcing so that traces stay deterministic functions of
// (seed, n) alone.
type decideFunc func(t, i int, rng *vec.RNG) bool

// Trace is the materialized arrival process of one run: a stateful
// iterator yielding, per round, the ascending indices of the workers
// that submit a fresh proposal that round. Round 0 is a cold start —
// every worker arrives, there is nothing to replay. Afterwards a
// worker arrives when its process elects it or when skipping the round
// would push its staleness beyond τ (forced arrival), so
// Staleness(i) ≤ Tau holds at every round by construction.
//
// A Trace is not safe for concurrent use.
type Trace struct {
	n      int
	tau    int
	round  int   // next round Next will serve
	lastAt []int // round of each worker's most recent fresh arrival
	decide decideFunc
	rng    *vec.RNG // nil for RNG-free processes
}

// traceSalt decorrelates the trace RNG stream from every other
// consumer of the cell seed (worker pool, eval batch, attack): the
// trace is seeded from splitMix64(seed XOR salt), not from draws of
// the run's root RNG, so adding or removing evaluation (which draws
// from the root) never shifts the arrival pattern.
const traceSalt = 0xA551C0DE5EEDFACE

func newTrace(seed uint64, n, tau int, decide decideFunc, needRNG bool) *Trace {
	tr := &Trace{
		n:      n,
		tau:    tau,
		lastAt: make([]int, n),
		decide: decide,
	}
	if needRNG {
		_, mixed := splitMix64(seed ^ traceSalt)
		tr.rng = vec.NewRNG(mixed)
	}
	return tr
}

// splitMix64 advances the SplitMix64 state and returns
// (newState, output) — the same mixer the matrix seed derivation and
// vec.NewRNG use.
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

// N returns the worker count the trace was minted for.
func (tr *Trace) N() int { return tr.n }

// Tau returns the staleness bound the trace enforces.
func (tr *Trace) Tau() int { return tr.tau }

// Rounds returns how many rounds Next has served so far.
func (tr *Trace) Rounds() int { return tr.round }

// Next returns the ascending indices of the workers arriving at the
// next round. The returned slice is freshly allocated and owned by the
// caller. Round 0 always returns all n indices (cold start); later
// rounds contain every elected worker plus every worker whose lag
// would otherwise exceed τ.
func (tr *Trace) Next() []int {
	t := tr.round
	arrivals := make([]int, 0, tr.n)
	for i := 0; i < tr.n; i++ {
		// The election is evaluated unconditionally so RNG-backed
		// processes consume an identical draw sequence whatever the
		// forcing pattern — the trace stays a pure function of
		// (seed, n).
		elected := tr.decide(t, i, tr.rng)
		forced := t == 0 || t-tr.lastAt[i] > tr.tau
		if elected || forced {
			tr.lastAt[i] = t
			arrivals = append(arrivals, i)
		}
	}
	tr.round++
	return arrivals
}

// Staleness returns the age, in rounds, of worker i's current proposal
// at the most recently served round: 0 for a fresh arrival, and at
// most Tau by construction. It panics if called before the first Next.
func (tr *Trace) Staleness(i int) int {
	if tr.round == 0 {
		panic("arrival: Staleness before first Next")
	}
	return (tr.round - 1) - tr.lastAt[i]
}

// Sync is the degenerate arrival process of the synchronous protocol:
// every worker arrives every round and τ = 0. Running distsgd with
// arrival "sync" is byte-identical to not configuring an arrival
// process at all — the differential tests pin this.
type Sync struct{}

// Name implements Process.
func (Sync) Name() string { return "sync" }

// Tau implements Process.
func (Sync) Tau() int { return 0 }

// Damp implements Process.
func (Sync) Damp() float64 { return 0 }

// NewTrace implements Process.
func (Sync) NewTrace(seed uint64, n int) *Trace {
	return newTrace(seed, n, 0, func(t, i int, _ *vec.RNG) bool { return true }, false)
}

// Bounded is a deterministic staggered arrival process: worker i
// arrives exactly when (t+i) mod (τ+1) == 0, so each round ⌈n/(τ+1)⌉
// workers rotate in and every proposal is replayed for exactly τ
// rounds between refreshes. It is the RNG-free worst case for the
// staleness bound — every worker rides the bound permanently — which
// makes it the sharpest test load for τ enforcement and for the
// incremental distance cache.
type Bounded struct {
	// TauBound is the staleness bound τ ≥ 1 (τ = 0 is Sync).
	TauBound int
	// Lambda is the Kardam damping coefficient (see Process.Damp).
	Lambda float64
}

// Name implements Process.
func (b Bounded) Name() string {
	if b.Lambda != 0 {
		return fmt.Sprintf("bounded(tau=%d,damp=%g)", b.TauBound, b.Lambda)
	}
	return fmt.Sprintf("bounded(tau=%d)", b.TauBound)
}

// Tau implements Process.
func (b Bounded) Tau() int { return b.TauBound }

// Damp implements Process.
func (b Bounded) Damp() float64 { return b.Lambda }

// NewTrace implements Process.
func (b Bounded) NewTrace(seed uint64, n int) *Trace {
	period := b.TauBound + 1
	return newTrace(seed, n, b.TauBound, func(t, i int, _ *vec.RNG) bool {
		return (t+i)%period == 0
	}, false)
}

// Bernoulli is an i.i.d. arrival process: at each round every worker
// independently arrives with probability p, drawn from a dedicated
// seed-derived RNG stream, with τ-forcing capping the lag of unlucky
// workers. It models workers with random per-round availability — the
// realistic partial-update traffic the incremental distance cache is
// benchmarked under.
type Bernoulli struct {
	// P is the per-round arrival probability, in (0, 1].
	P float64
	// TauBound is the staleness bound τ ≥ 1 (τ = 0 is Sync).
	TauBound int
	// Lambda is the Kardam damping coefficient (see Process.Damp).
	Lambda float64
}

// Name implements Process.
func (b Bernoulli) Name() string {
	if b.Lambda != 0 {
		return fmt.Sprintf("bernoulli(p=%g,tau=%d,damp=%g)", b.P, b.TauBound, b.Lambda)
	}
	return fmt.Sprintf("bernoulli(p=%g,tau=%d)", b.P, b.TauBound)
}

// Tau implements Process.
func (b Bernoulli) Tau() int { return b.TauBound }

// Damp implements Process.
func (b Bernoulli) Damp() float64 { return b.Lambda }

// NewTrace implements Process.
func (b Bernoulli) NewTrace(seed uint64, n int) *Trace {
	return newTrace(seed, n, b.TauBound, func(t, i int, rng *vec.RNG) bool {
		return rng.Float64() < b.P
	}, true)
}
