package arrival

import "testing"

// FuzzParseArrival drives the arrival-process parser with arbitrary
// input, matching the contract of the other four registries: no input
// may panic, and any accepted spec must round-trip — the constructed
// process's Name() is itself a valid spec whose reparse yields the
// same Name.
func FuzzParseArrival(f *testing.F) {
	for _, seed := range []string{
		"sync", "bounded(tau=3)", "bounded(tau=0)",
		"bounded(tau=3,damp=0.5)", "bernoulli(p=0.5,tau=8)",
		"bernoulli(tau=4)", "bernoulli(p=0.25,tau=8,damp=0.1)",
		"SYNC", " bounded ( tau = 2 ) ",
		"", "bounded", "bounded()", "bounded(tau=-1)", "bounded(tau=x)",
		"bernoulli(p=0,tau=2)", "bernoulli(p=2,tau=2)", "bernoulli(p=0.5)",
		"sync(tau=1)", "nosucharrival", "bounded(tau=1,tau=2)",
		"bounded(tau=1e999)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s) // must not panic, whatever s is
		if err != nil {
			return
		}
		name := p.Name()
		back, err := Parse(name)
		if err != nil {
			t.Fatalf("accepted spec %q produced Name %q that does not reparse: %v", s, name, err)
		}
		if got := back.Name(); got != name {
			t.Fatalf("Name round-trip unstable for spec %q: %q -> %q", s, name, got)
		}
	})
}
