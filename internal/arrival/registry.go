package arrival

import (
	"errors"
	"fmt"

	"krum/internal/spec"
)

// This file is the central arrival-process registry — the fifth spec
// registry of the repository after rules, attacks, schedules and
// workloads. distsgd.Config.ArrivalSpec, scenario.Spec.Arrival and the
// CLI binaries construct processes exclusively through Parse. Spec
// strings take the form
//
//	sync | bounded(tau=3) | bernoulli(p=0.5,tau=8,damp=0.1)
//
// and every built-in Process's Name() is itself a valid spec, so
// processes round-trip through experiment logs, JSON scenario files
// and the result store's canonical form. A τ = 0 spec collapses to
// Sync (with τ = 0 every worker is forced to arrive every round, so
// the process IS synchronous) — its canonical name is "sync", which is
// what lets the store alias bounded(tau=0) cells onto sync cells.

// ErrBadArrival is returned for malformed arrival specs and invalid
// arrival parameters.
var ErrBadArrival = errors.New("arrival: bad arrival spec")

// Args holds the key=value parameters of a parsed arrival spec.
type Args = spec.Args

// Factory builds a Process from a parsed spec. Arrival processes take
// no context defaults — τ must always be spelled out for the
// non-synchronous families.
type Factory = spec.Factory[Process, struct{}]

var processes = spec.NewRegistry[Process, struct{}]("arrival", ErrBadArrival)

// Register adds an arrival-process factory under the given
// (case-insensitive) name; it panics on duplicates — a programmer
// error at init time.
func Register(name string, f Factory) { processes.Register(name, f) }

// Parse constructs the arrival process described by s. Unknown names,
// unknown parameter keys, and malformed values are all reported as
// wrapped ErrBadArrival.
func Parse(s string) (Process, error) { return processes.Parse(struct{}{}, s) }

// Names returns the registered arrival-process names, sorted.
func Names() []string { return processes.Names() }

// Usage returns a generated one-line summary of every registered
// arrival process with its parameters — CLI help text is built from
// this so it can never drift from the implemented set.
func Usage() string { return processes.Usage() }

// tauArg extracts the mandatory non-negative tau parameter.
func tauArg(a Args) (int, error) {
	if !a.Has("tau") {
		return 0, fmt.Errorf("tau is required: %w", ErrBadArrival)
	}
	tau, err := a.Int("tau", 0)
	if err != nil {
		return 0, err
	}
	if tau < 0 {
		return 0, fmt.Errorf("tau = %d must be non-negative: %w", tau, ErrBadArrival)
	}
	return tau, nil
}

// dampArg extracts the optional non-negative damp parameter.
func dampArg(a Args) (float64, error) {
	damp, err := a.Float("damp", 0)
	if err != nil {
		return 0, err
	}
	if damp < 0 {
		return 0, fmt.Errorf("damp = %g must be non-negative: %w", damp, ErrBadArrival)
	}
	return damp, nil
}

// init registers the built-in arrival processes. Third-party processes
// can call Register from their own init functions.
func init() {
	Register("sync", Factory{
		Doc: "synchronous rounds: every worker submits fresh every round (τ = 0)",
		New: func(_ struct{}, a Args) (Process, error) {
			return Sync{}, nil
		},
	})
	Register("bounded", Factory{
		Params: []string{"tau", "damp"},
		Doc:    "staggered rotation: worker i arrives when (t+i) mod (τ+1) = 0, every proposal exactly τ rounds stale between refreshes",
		New: func(_ struct{}, a Args) (Process, error) {
			tau, err := tauArg(a)
			if err != nil {
				return nil, err
			}
			damp, err := dampArg(a)
			if err != nil {
				return nil, err
			}
			if tau == 0 {
				// τ = 0 forces every worker every round; canonicalize
				// to Sync so the store aliases it onto sync cells.
				return Sync{}, nil
			}
			return Bounded{TauBound: tau, Lambda: damp}, nil
		},
	})
	Register("bernoulli", Factory{
		Params: []string{"p", "tau", "damp"},
		Doc:    "i.i.d. availability: each worker arrives with probability p per round (default 0.5), lag capped at τ",
		New: func(_ struct{}, a Args) (Process, error) {
			p, err := a.Float("p", 0.5)
			if err != nil {
				return nil, err
			}
			if p <= 0 || p > 1 {
				return nil, fmt.Errorf("p = %g outside (0, 1]: %w", p, ErrBadArrival)
			}
			tau, err := tauArg(a)
			if err != nil {
				return nil, err
			}
			damp, err := dampArg(a)
			if err != nil {
				return nil, err
			}
			if tau == 0 {
				return Sync{}, nil
			}
			return Bernoulli{P: p, TauBound: tau, Lambda: damp}, nil
		},
	})
}
