// Package transport is the real-network substrate for the paper's
// parameter-server architecture: a length-prefixed binary protocol over
// TCP, a parameter server that drives synchronous rounds across remote
// workers, and the worker-side loop. It substitutes for the authors'
// multi-machine testbed (see EXPERIMENTS.md): the synchronous-round semantics
// are identical to the in-process simulator, so any experiment can run
// over loopback or a real network by swapping the GradientSource.
//
// Wire format (all integers little endian):
//
//	uint32  payload length (bytes after the type byte)
//	uint8   message type
//	...     payload
//
// Vectors are encoded as uint32 count followed by IEEE-754 bits per
// element. Messages are capped at MaxMessageSize to bound allocation
// from untrusted peers.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Message types.
const (
	// MsgHello is sent by a worker on connect; payload: uint32 protocol
	// version.
	MsgHello = uint8(iota + 1)
	// MsgWelcome is the server's reply; payload: uint32 assigned worker
	// id, uint32 parameter dimension.
	MsgWelcome
	// MsgRound is the server's broadcast; payload: uint32 round, vector
	// params.
	MsgRound
	// MsgGradient is the worker's reply; payload: uint32 round, float64
	// loss, vector gradient.
	MsgGradient
	// MsgShutdown ends the session; empty payload.
	MsgShutdown
)

// ProtocolVersion identifies the wire format.
const ProtocolVersion = 1

// MaxMessageSize bounds a single message (64 MiB allows d ≈ 8.3M
// float64 parameters).
const MaxMessageSize = 64 << 20

// Protocol errors.
var (
	// ErrMessageTooLarge is returned when a frame exceeds
	// MaxMessageSize.
	ErrMessageTooLarge = errors.New("transport: message exceeds size limit")
	// ErrBadMessage is returned for malformed frames.
	ErrBadMessage = errors.New("transport: malformed message")
	// ErrVersionMismatch is returned when peers disagree on
	// ProtocolVersion.
	ErrVersionMismatch = errors.New("transport: protocol version mismatch")
)

// writeFrame writes a complete [len][type][payload] frame.
func writeFrame(w io.Writer, msgType uint8, payload []byte) error {
	if len(payload) > MaxMessageSize {
		return fmt.Errorf("%d bytes: %w", len(payload), ErrMessageTooLarge)
	}
	header := make([]byte, 5)
	binary.LittleEndian.PutUint32(header, uint32(len(payload)))
	header[4] = msgType
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("writing frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("writing frame payload: %w", err)
		}
	}
	return nil
}

// readFrame reads one frame, returning its type and payload.
func readFrame(r io.Reader) (uint8, []byte, error) {
	header := make([]byte, 5)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, nil, fmt.Errorf("reading frame header: %w", err)
	}
	size := binary.LittleEndian.Uint32(header)
	if size > MaxMessageSize {
		return 0, nil, fmt.Errorf("%d bytes: %w", size, ErrMessageTooLarge)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("reading frame payload: %w", err)
	}
	return header[4], payload, nil
}

// appendUint32 appends v little endian.
func appendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// appendFloat64 appends the IEEE bits of v.
func appendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// appendVector appends count + elements.
func appendVector(b []byte, v []float64) []byte {
	b = appendUint32(b, uint32(len(v)))
	for _, x := range v {
		b = appendFloat64(b, x)
	}
	return b
}

// reader is a cursor over a payload.
type reader struct {
	buf []byte
	off int
}

func (r *reader) uint32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, fmt.Errorf("truncated uint32 at %d: %w", r.off, ErrBadMessage)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) float64() (float64, error) {
	if r.off+8 > len(r.buf) {
		return 0, fmt.Errorf("truncated float64 at %d: %w", r.off, ErrBadMessage)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v, nil
}

func (r *reader) vector() ([]float64, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if r.off+8*int(n) > len(r.buf) {
		return nil, fmt.Errorf("truncated vector of %d at %d: %w", n, r.off, ErrBadMessage)
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
		r.off += 8
	}
	return v, nil
}

func (r *reader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%d trailing bytes: %w", len(r.buf)-r.off, ErrBadMessage)
	}
	return nil
}

// encodeHello builds a MsgHello payload.
func encodeHello() []byte { return appendUint32(nil, ProtocolVersion) }

func decodeHello(payload []byte) (uint32, error) {
	r := &reader{buf: payload}
	v, err := r.uint32()
	if err != nil {
		return 0, err
	}
	return v, r.done()
}

// encodeWelcome builds a MsgWelcome payload.
func encodeWelcome(workerID, dim uint32) []byte {
	return appendUint32(appendUint32(nil, workerID), dim)
}

func decodeWelcome(payload []byte) (workerID, dim uint32, err error) {
	r := &reader{buf: payload}
	if workerID, err = r.uint32(); err != nil {
		return 0, 0, err
	}
	if dim, err = r.uint32(); err != nil {
		return 0, 0, err
	}
	return workerID, dim, r.done()
}

// encodeRound builds a MsgRound payload.
func encodeRound(round uint32, params []float64) []byte {
	b := make([]byte, 0, 8+8*len(params))
	b = appendUint32(b, round)
	return appendVector(b, params)
}

func decodeRound(payload []byte) (round uint32, params []float64, err error) {
	r := &reader{buf: payload}
	if round, err = r.uint32(); err != nil {
		return 0, nil, err
	}
	if params, err = r.vector(); err != nil {
		return 0, nil, err
	}
	return round, params, r.done()
}

// encodeGradient builds a MsgGradient payload.
func encodeGradient(round uint32, loss float64, grad []float64) []byte {
	b := make([]byte, 0, 16+8*len(grad))
	b = appendUint32(b, round)
	b = appendFloat64(b, loss)
	return appendVector(b, grad)
}

func decodeGradient(payload []byte) (round uint32, loss float64, grad []float64, err error) {
	r := &reader{buf: payload}
	if round, err = r.uint32(); err != nil {
		return 0, 0, nil, err
	}
	if loss, err = r.float64(); err != nil {
		return 0, 0, nil, err
	}
	if grad, err = r.vector(); err != nil {
		return 0, 0, nil, err
	}
	return round, loss, grad, r.done()
}
