package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Server-side errors.
var (
	// ErrNotEnoughWorkers is returned when the accept phase times out
	// before the expected number of workers joined.
	ErrNotEnoughWorkers = errors.New("transport: not enough workers joined")
	// ErrRoundMismatch is returned when a worker answers for the wrong
	// round.
	ErrRoundMismatch = errors.New("transport: round mismatch")
	// ErrClosed is returned when using a closed pool.
	ErrClosed = errors.New("transport: pool closed")
)

// ServerPool is a distsgd.GradientSource whose workers are remote TCP
// peers. Construct with Listen + AcceptWorkers. The pool implements the
// paper's synchronous model: each Gradients call is one round —
// broadcast x_t, await every worker's V_i.
type ServerPool struct {
	listener net.Listener
	dim      int
	timeout  time.Duration

	mu      sync.Mutex
	conns   []net.Conn
	round   uint32
	closed  bool
	lastErr error
}

// ServerOption customizes Listen (functional options per the style
// guide).
type ServerOption func(*ServerPool)

// WithRoundTimeout bounds each round's network wait (default 30s).
func WithRoundTimeout(d time.Duration) ServerOption {
	return func(s *ServerPool) { s.timeout = d }
}

// Listen starts a parameter-server listener on addr (e.g.
// "127.0.0.1:0") for workers computing gradients of dimension dim.
func Listen(addr string, dim int, opts ...ServerOption) (*ServerPool, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("dim = %d: %w", dim, ErrBadMessage)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listening on %s: %w", addr, err)
	}
	s := &ServerPool{listener: ln, dim: dim, timeout: 30 * time.Second}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Addr returns the bound listener address (use after Listen with port
// 0).
func (s *ServerPool) Addr() string { return s.listener.Addr().String() }

// AcceptWorkers blocks until n workers complete the hello handshake or
// the deadline passes.
func (s *ServerPool) AcceptWorkers(n int, deadline time.Duration) error {
	if n <= 0 {
		return fmt.Errorf("n = %d: %w", n, ErrBadMessage)
	}
	if tcp, ok := s.listener.(*net.TCPListener); ok {
		if err := tcp.SetDeadline(time.Now().Add(deadline)); err != nil {
			return fmt.Errorf("setting accept deadline: %w", err)
		}
	}
	for len(s.conns) < n {
		conn, err := s.listener.Accept()
		if err != nil {
			return fmt.Errorf("%w: accepted %d of %d: %v", ErrNotEnoughWorkers, len(s.conns), n, err)
		}
		if err := s.handshake(conn); err != nil {
			_ = conn.Close()
			return fmt.Errorf("handshake with %s: %w", conn.RemoteAddr(), err)
		}
		s.conns = append(s.conns, conn)
	}
	return nil
}

// handshake validates the hello and assigns a worker id.
func (s *ServerPool) handshake(conn net.Conn) error {
	if err := conn.SetDeadline(time.Now().Add(s.timeout)); err != nil {
		return err
	}
	msgType, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if msgType != MsgHello {
		return fmt.Errorf("expected hello, got type %d: %w", msgType, ErrBadMessage)
	}
	version, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if version != ProtocolVersion {
		return fmt.Errorf("worker speaks v%d, server v%d: %w", version, ProtocolVersion, ErrVersionMismatch)
	}
	return writeFrame(conn, MsgWelcome, encodeWelcome(uint32(len(s.conns)), uint32(s.dim)))
}

// N implements distsgd.GradientSource.
func (s *ServerPool) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Dim implements distsgd.GradientSource.
func (s *ServerPool) Dim() int { return s.dim }

// Gradients implements distsgd.GradientSource: one synchronous round
// over the network. Worker replies are awaited concurrently; a slow or
// dead worker fails the round (the paper's model is synchronous — fault
// tolerance is the aggregation rule's job, not the transport's).
func (s *ServerPool) Gradients(params []float64) ([][]float64, float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, ErrClosed
	}
	if len(params) != s.dim {
		return nil, 0, fmt.Errorf("params dim %d, want %d: %w", len(params), s.dim, ErrBadMessage)
	}
	round := s.round
	s.round++
	payload := encodeRound(round, params)

	type reply struct {
		idx  int
		grad []float64
		loss float64
		err  error
	}
	replies := make(chan reply, len(s.conns))
	var wg sync.WaitGroup
	for i, conn := range s.conns {
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			r := reply{idx: i}
			defer func() { replies <- r }()
			if r.err = conn.SetDeadline(time.Now().Add(s.timeout)); r.err != nil {
				return
			}
			if r.err = writeFrame(conn, MsgRound, payload); r.err != nil {
				return
			}
			msgType, data, err := readFrame(conn)
			if err != nil {
				r.err = err
				return
			}
			if msgType != MsgGradient {
				r.err = fmt.Errorf("expected gradient, got type %d: %w", msgType, ErrBadMessage)
				return
			}
			gotRound, loss, grad, err := decodeGradient(data)
			if err != nil {
				r.err = err
				return
			}
			if gotRound != round {
				r.err = fmt.Errorf("got round %d, want %d: %w", gotRound, round, ErrRoundMismatch)
				return
			}
			if len(grad) != s.dim {
				r.err = fmt.Errorf("gradient dim %d, want %d: %w", len(grad), s.dim, ErrBadMessage)
				return
			}
			r.grad, r.loss = grad, loss
		}(i, conn)
	}
	wg.Wait()
	close(replies)

	grads := make([][]float64, len(s.conns))
	var lossSum float64
	for r := range replies {
		if r.err != nil {
			return nil, 0, fmt.Errorf("worker %d round %d: %w", r.idx, round, r.err)
		}
		grads[r.idx] = r.grad
		lossSum += r.loss
	}
	return grads, lossSum / float64(len(s.conns)), nil
}

// Close shuts every worker down and releases the listener. Safe to call
// more than once.
func (s *ServerPool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for _, conn := range s.conns {
		_ = conn.SetDeadline(time.Now().Add(time.Second))
		if err := writeFrame(conn, MsgShutdown, nil); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := s.listener.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
