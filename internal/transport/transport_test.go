package transport

import (
	"bytes"
	"errors"
	"net"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"krum/data"
	"krum/internal/vec"
	"krum/model"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, MsgRound, payload); err != nil {
		t.Fatal(err)
	}
	msgType, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgRound || !bytes.Equal(got, payload) {
		t.Errorf("round trip: type %d payload %v", msgType, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, MsgShutdown, nil); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgShutdown || len(payload) != 0 {
		t.Error("empty frame mangled")
	}
}

func TestReadFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	// Forge a header announcing an oversized frame.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, MsgRound})
	if _, _, err := readFrame(&buf); !errors.Is(err, ErrMessageTooLarge) {
		t.Errorf("oversized frame: %v", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{10, 0, 0, 0, MsgRound, 1, 2}) // promises 10 bytes, has 2
	if _, _, err := readFrame(&buf); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestHelloWelcomeCodec(t *testing.T) {
	v, err := decodeHello(encodeHello())
	if err != nil || v != ProtocolVersion {
		t.Errorf("hello: %v %v", v, err)
	}
	id, dim, err := decodeWelcome(encodeWelcome(7, 123))
	if err != nil || id != 7 || dim != 123 {
		t.Errorf("welcome: %v %v %v", id, dim, err)
	}
	if _, _, err := decodeWelcome([]byte{1}); !errors.Is(err, ErrBadMessage) {
		t.Error("truncated welcome accepted")
	}
	if _, err := decodeHello(append(encodeHello(), 9)); !errors.Is(err, ErrBadMessage) {
		t.Error("trailing bytes accepted")
	}
}

func TestRoundGradientCodecProperty(t *testing.T) {
	f := func(round uint32, loss float64, raw []float64) bool {
		p := encodeRound(round, raw)
		r2, params, err := decodeRound(p)
		if err != nil || r2 != round || len(params) != len(raw) {
			return false
		}
		g := encodeGradient(round, loss, raw)
		r3, l2, grad, err := decodeGradient(g)
		if err != nil || r3 != round || len(grad) != len(raw) {
			return false
		}
		// NaN-safe bitwise comparison.
		for i := range raw {
			if raw[i] != params[i] && !(raw[i] != raw[i] && params[i] != params[i]) {
				return false
			}
			if raw[i] != grad[i] && !(raw[i] != raw[i] && grad[i] != grad[i]) {
				return false
			}
		}
		return l2 == loss || (loss != loss && l2 != l2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeGradientMalformed(t *testing.T) {
	if _, _, _, err := decodeGradient([]byte{1, 2}); !errors.Is(err, ErrBadMessage) {
		t.Error("short gradient accepted")
	}
	// Vector count promising more than available.
	p := appendUint32(nil, 0)
	p = appendFloat64(p, 1)
	p = appendUint32(p, 99) // claims 99 elements, provides none
	if _, _, _, err := decodeGradient(p); !errors.Is(err, ErrBadMessage) {
		t.Error("lying vector length accepted")
	}
}

// startCluster spins a server pool and nWorkers loopback workers; the
// returned cleanup joins every goroutine.
func startCluster(t *testing.T, nWorkers int, behaviours []WorkerBehaviour) (*ServerPool, func()) {
	t.Helper()
	ds, err := data.NewGaussianMixture(3, 4, 3, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewSoftmaxClassifier(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := Listen("127.0.0.1:0", m.Dim(), WithRoundTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		behaviour := BehaviourCorrect
		if behaviours != nil {
			behaviour = behaviours[i]
		}
		wg.Add(1)
		go func(i int, b WorkerBehaviour) {
			defer wg.Done()
			if _, err := RunWorker(WorkerConfig{
				Addr:      pool.Addr(),
				Model:     m,
				Dataset:   ds,
				Batch:     8,
				Behaviour: b,
				Seed:      uint64(100 + i),
			}); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i, behaviour)
	}
	if err := pool.AcceptWorkers(nWorkers, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	return pool, func() {
		_ = pool.Close()
		wg.Wait()
	}
}

func TestLoopbackRound(t *testing.T) {
	pool, cleanup := startCluster(t, 4, nil)
	defer cleanup()
	if pool.N() != 4 {
		t.Fatalf("N = %d", pool.N())
	}
	params := make([]float64, pool.Dim())
	grads, loss, err := pool.Gradients(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(grads) != 4 {
		t.Fatalf("%d gradients", len(grads))
	}
	if loss <= 0 {
		t.Errorf("loss %v", loss)
	}
	for i, g := range grads {
		if len(g) != pool.Dim() || !vec.AllFinite(g) {
			t.Errorf("gradient %d bad", i)
		}
	}
	// Distinct workers → distinct gradients.
	if vec.ApproxEqual(grads[0], grads[1], 1e-12) {
		t.Error("two workers returned identical gradients")
	}
	// Second round advances.
	if _, _, err := pool.Gradients(params); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackMultipleRoundsConsistency(t *testing.T) {
	pool, cleanup := startCluster(t, 3, nil)
	defer cleanup()
	params := make([]float64, pool.Dim())
	for round := 0; round < 5; round++ {
		if _, _, err := pool.Gradients(params); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestByzantineWorkerBehaviours(t *testing.T) {
	pool, cleanup := startCluster(t, 3, []WorkerBehaviour{
		BehaviourCorrect, BehaviourGaussian, BehaviourSignFlip,
	})
	defer cleanup()
	params := make([]float64, pool.Dim())
	grads, _, err := pool.Gradients(params)
	if err != nil {
		t.Fatal(err)
	}
	// Workers connect in arrival order, so identify each behaviour by
	// its signature: honest gradient (unit-ish norm) < signflip
	// (20× honest norm) < gaussian (σ=200 noise, norm ≈ 200·√d).
	norms := make([]float64, 3)
	order := []int{0, 1, 2}
	for i, g := range grads {
		norms[i] = vec.Norm(g)
	}
	sort.Slice(order, func(a, b int) bool { return norms[order[a]] < norms[order[b]] })
	correct, flipped, gaussian := grads[order[0]], grads[order[1]], grads[order[2]]
	if vec.Norm(gaussian) < 100 {
		t.Errorf("gaussian worker norm %v, want ≫ 100", vec.Norm(gaussian))
	}
	// The sign-flip worker's proposal opposes the honest gradient
	// direction.
	if dot := vec.Dot(correct, flipped); dot >= 0 {
		t.Errorf("signflip not opposing: dot = %v", dot)
	}
}

func TestGradientsAfterClose(t *testing.T) {
	pool, cleanup := startCluster(t, 2, nil)
	cleanup()
	if _, _, err := pool.Gradients(make([]float64, pool.Dim())); !errors.Is(err, ErrClosed) {
		t.Errorf("closed pool: %v", err)
	}
	// Idempotent close.
	if err := pool.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestGradientsParamValidation(t *testing.T) {
	pool, cleanup := startCluster(t, 2, nil)
	defer cleanup()
	if _, _, err := pool.Gradients(make([]float64, 1)); !errors.Is(err, ErrBadMessage) {
		t.Errorf("wrong dim: %v", err)
	}
}

func TestAcceptWorkersTimeout(t *testing.T) {
	pool, err := Listen("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()
	if err := pool.AcceptWorkers(1, 50*time.Millisecond); !errors.Is(err, ErrNotEnoughWorkers) {
		t.Errorf("timeout: %v", err)
	}
}

func TestWorkerConfigValidation(t *testing.T) {
	ds, err := data.NewGaussianMixture(2, 2, 1, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewSoftmaxClassifier(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorker(WorkerConfig{Addr: "x", Model: nil, Dataset: ds, Batch: 4}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := RunWorker(WorkerConfig{Addr: "x", Model: m, Dataset: ds, Batch: 0}); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := RunWorker(WorkerConfig{Addr: "127.0.0.1:1", Model: m, Dataset: ds, Batch: 4, DialTimeout: 100 * time.Millisecond}); err == nil {
		t.Error("dial to dead port succeeded")
	}
}

func TestBehaviourString(t *testing.T) {
	tests := []struct {
		b    WorkerBehaviour
		want string
	}{
		{b: BehaviourCorrect, want: "correct"},
		{b: BehaviourGaussian, want: "gaussian"},
		{b: BehaviourSignFlip, want: "signflip"},
		{b: BehaviourLabelFlip, want: "labelflip"},
		{b: WorkerBehaviour(42), want: "behaviour(42)"},
	}
	for _, tt := range tests {
		if got := tt.b.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

// Failure injection: a worker process dying mid-training must surface
// as a round error (the paper's model is synchronous; masking dead
// workers is the aggregation rule's job only while they keep sending).
// The raw client's handshake runs in its own goroutine because the
// server's side of the handshake happens inside AcceptWorkers.
func TestWorkerDeathFailsRound(t *testing.T) {
	ds, err := data.NewGaussianMixture(2, 3, 2, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewSoftmaxClassifier(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := Listen("127.0.0.1:0", m.Dim(), WithRoundTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	var wg sync.WaitGroup
	// One well-behaved worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = RunWorker(WorkerConfig{
			Addr: pool.Addr(), Model: m, Dataset: ds, Batch: 4, Seed: 1,
		})
	}()
	// One raw peer that handshakes, serves exactly one round, then dies.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", pool.Addr())
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer func() { _ = conn.Close() }()
		if err := writeFrame(conn, MsgHello, encodeHello()); err != nil {
			t.Errorf("hello: %v", err)
			return
		}
		if _, _, err := readFrame(conn); err != nil { // welcome
			t.Errorf("welcome: %v", err)
			return
		}
		msgType, payload, err := readFrame(conn)
		if err != nil || msgType != MsgRound {
			return
		}
		round, params, err := decodeRound(payload)
		if err != nil {
			return
		}
		grad := make([]float64, len(params))
		_ = writeFrame(conn, MsgGradient, encodeGradient(round, 0.5, grad))
		// fail-stop: deferred Close runs now.
	}()

	if err := pool.AcceptWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	params := make([]float64, pool.Dim())
	// Round 0 succeeds (both alive).
	if _, _, err := pool.Gradients(params); err != nil {
		t.Fatalf("round 0: %v", err)
	}
	// Round 1 must fail: the dead worker cannot answer.
	if _, _, err := pool.Gradients(params); err == nil {
		t.Fatal("round with dead worker succeeded")
	}
	_ = pool.Close()
	wg.Wait()
}

// A malicious peer lying about the round number is rejected.
func TestRoundMismatchRejected(t *testing.T) {
	pool, err := Listen("127.0.0.1:0", 2, WithRoundTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", pool.Addr())
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer func() { _ = conn.Close() }()
		if err := writeFrame(conn, MsgHello, encodeHello()); err != nil {
			return
		}
		if _, _, err := readFrame(conn); err != nil { // welcome
			return
		}
		msgType, _, err := readFrame(conn)
		if err != nil || msgType != MsgRound {
			return
		}
		// Answer for round 99 instead of 0.
		_ = writeFrame(conn, MsgGradient, encodeGradient(99, 0, make([]float64, 2)))
	}()

	if err := pool.AcceptWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	_, _, err = pool.Gradients(make([]float64, 2))
	if !errors.Is(err, ErrRoundMismatch) {
		t.Errorf("err = %v, want ErrRoundMismatch", err)
	}
	_ = pool.Close()
	wg.Wait()
}

// A peer with the wrong protocol version is refused at handshake.
func TestVersionMismatchRejected(t *testing.T) {
	pool, err := Listen("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", pool.Addr())
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		_ = writeFrame(conn, MsgHello, appendUint32(nil, 999))
		_, _, _ = readFrame(conn) // server closes without welcome
	}()

	if err := pool.AcceptWorkers(1, 2*time.Second); err == nil {
		t.Fatal("version mismatch accepted")
	}
	_ = pool.Close()
	wg.Wait()
}
