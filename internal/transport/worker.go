package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"krum/data"
	"krum/internal/vec"
	"krum/model"
)

// WorkerBehaviour selects how a remote worker computes its proposal.
// Correct workers return honest mini-batch gradients; the Byzantine
// behaviours implement the attacks that do not require the omniscient
// view (a real network adversary cannot read other workers' proposals;
// omniscient attacks are reproduced on the in-process substrate, see
// EXPERIMENTS.md).
type WorkerBehaviour int

// Supported behaviours (start at 1 per the style guide).
const (
	// BehaviourCorrect computes honest gradient estimates.
	BehaviourCorrect WorkerBehaviour = iota + 1
	// BehaviourGaussian sends N(0, σ²) garbage (σ = 200), the Figure 4
	// attack.
	BehaviourGaussian
	// BehaviourSignFlip sends the negated local gradient scaled ×20 —
	// the network-feasible approximation of the omniscient attack
	// (the local estimate stands in for the global one).
	BehaviourSignFlip
	// BehaviourLabelFlip trains on label-flipped data — the
	// data-poisoning failure of the paper's introduction.
	BehaviourLabelFlip
)

// String returns a stable identifier.
func (b WorkerBehaviour) String() string {
	switch b {
	case BehaviourCorrect:
		return "correct"
	case BehaviourGaussian:
		return "gaussian"
	case BehaviourSignFlip:
		return "signflip"
	case BehaviourLabelFlip:
		return "labelflip"
	default:
		return fmt.Sprintf("behaviour(%d)", int(b))
	}
}

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Addr is the parameter server address.
	Addr string
	// Model is the local replica architecture (cloned internally).
	Model model.Model
	// Dataset is the worker's sample stream.
	Dataset data.Dataset
	// Batch is the mini-batch size.
	Batch int
	// Behaviour selects correct vs Byzantine operation; zero value
	// defaults to BehaviourCorrect.
	Behaviour WorkerBehaviour
	// Seed drives the worker's private randomness.
	Seed uint64
	// DialTimeout bounds the connect (default 10s).
	DialTimeout time.Duration
	// IOTimeout bounds each read/write (default 60s).
	IOTimeout time.Duration
}

// RunWorker connects to the parameter server and serves rounds until
// the server sends MsgShutdown or the connection drops. It returns the
// number of rounds served. A clean shutdown returns a nil error.
func RunWorker(cfg WorkerConfig) (int, error) {
	if cfg.Model == nil || cfg.Dataset == nil {
		return 0, fmt.Errorf("nil model or dataset: %w", ErrBadMessage)
	}
	if cfg.Batch <= 0 {
		return 0, fmt.Errorf("batch = %d: %w", cfg.Batch, ErrBadMessage)
	}
	behaviour := cfg.Behaviour
	if behaviour == 0 {
		behaviour = BehaviourCorrect
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	ioTimeout := cfg.IOTimeout
	if ioTimeout <= 0 {
		ioTimeout = 60 * time.Second
	}

	conn, err := net.DialTimeout("tcp", cfg.Addr, dialTimeout)
	if err != nil {
		return 0, fmt.Errorf("dialing %s: %w", cfg.Addr, err)
	}
	defer func() { _ = conn.Close() }()

	if err := conn.SetDeadline(time.Now().Add(ioTimeout)); err != nil {
		return 0, err
	}
	if err := writeFrame(conn, MsgHello, encodeHello()); err != nil {
		return 0, err
	}
	msgType, payload, err := readFrame(conn)
	if err != nil {
		return 0, err
	}
	if msgType != MsgWelcome {
		return 0, fmt.Errorf("expected welcome, got type %d: %w", msgType, ErrBadMessage)
	}
	_, dim, err := decodeWelcome(payload)
	if err != nil {
		return 0, err
	}

	m := cfg.Model.Clone()
	if m.Dim() != int(dim) {
		return 0, fmt.Errorf("server dim %d, local model dim %d: %w", dim, m.Dim(), ErrBadMessage)
	}
	ds := cfg.Dataset
	if behaviour == BehaviourLabelFlip {
		ds = data.LabelFlip{Base: cfg.Dataset}
	}
	rng := vec.NewRNG(cfg.Seed)
	x := vec.NewDense(cfg.Batch, ds.Dim())
	y := vec.NewDense(cfg.Batch, ds.OutDim())
	grad := make([]float64, m.Dim())

	rounds := 0
	for {
		if err := conn.SetDeadline(time.Now().Add(ioTimeout)); err != nil {
			return rounds, err
		}
		msgType, payload, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return rounds, nil // server went away after serving; treat as shutdown
			}
			return rounds, err
		}
		switch msgType {
		case MsgShutdown:
			return rounds, nil
		case MsgRound:
			round, params, err := decodeRound(payload)
			if err != nil {
				return rounds, err
			}
			loss, err := computeProposal(m, ds, behaviour, rng, params, x, y, grad)
			if err != nil {
				return rounds, err
			}
			if err := writeFrame(conn, MsgGradient, encodeGradient(round, loss, grad)); err != nil {
				return rounds, err
			}
			rounds++
		default:
			return rounds, fmt.Errorf("unexpected message type %d: %w", msgType, ErrBadMessage)
		}
	}
}

// computeProposal fills grad with the behaviour's proposal and returns
// the reported loss.
func computeProposal(m model.Model, ds data.Dataset, behaviour WorkerBehaviour, rng *vec.RNG, params []float64, x, y *vec.Dense, grad []float64) (float64, error) {
	switch behaviour {
	case BehaviourGaussian:
		rng.FillNormal(grad, 0, 200)
		return 0, nil
	case BehaviourCorrect, BehaviourSignFlip, BehaviourLabelFlip:
		if err := m.SetParams(params); err != nil {
			return 0, err
		}
		if err := data.FillBatch(ds, rng, x, y); err != nil {
			return 0, err
		}
		loss, err := m.Gradient(grad, x, y)
		if err != nil {
			return 0, err
		}
		if behaviour == BehaviourSignFlip {
			vec.Scale(-20, grad)
		}
		return loss, nil
	default:
		return 0, fmt.Errorf("unknown behaviour %d: %w", behaviour, ErrBadMessage)
	}
}
