// Package metrics provides the reporting primitives for the experiment
// harness: aligned text tables, CSV output, shared-axis series blocks
// (the textual equivalent of the paper's figures) and a minimal ASCII
// chart for quick terminal inspection.
package metrics

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"unicode/utf8"
)

// ErrBadSeries is returned when series in one figure disagree on X.
var ErrBadSeries = errors.New("metrics: series length mismatch")

// Table is an aligned text table with a header row.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: append([]string(nil), headers...)}
}

// AddRow appends a row; missing cells render empty, extra cells are an
// error at render time.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, append([]string(nil), cells...))
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v for strings/ints and %.4g for floats.
func (t *Table) AddRowf(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case float32:
			row[i] = formatFloat(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	if math.IsNaN(x) {
		return "NaN"
	}
	return fmt.Sprintf("%.4g", x)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		if len(row) > len(t.headers) {
			return fmt.Errorf("row has %d cells for %d headers: %w", len(row), len(t.headers), ErrBadSeries)
		}
		for i, c := range row {
			if w := utf8.RuneCountInString(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i := range t.headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as comma-separated values (cells are
// quoted when they contain commas or quotes).
func (t *Table) RenderCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Series is one named curve of a figure.
type Series struct {
	// Name labels the curve ("krum 33% byz", ...).
	Name string
	// Y holds the curve values; all series of one figure share the X
	// axis.
	Y []float64
}

// Figure is a shared-X collection of curves — the textual form of one
// paper figure.
type Figure struct {
	// Title is printed above the block.
	Title string
	// XLabel names the shared axis ("round").
	XLabel string
	// X is the shared axis.
	X []float64
	// Series are the curves.
	Series []Series
}

// Render writes the figure as an aligned multi-column block: X then one
// column per series.
func (f *Figure) Render(w io.Writer) error {
	for _, s := range f.Series {
		if len(s.Y) != len(f.X) {
			return fmt.Errorf("series %q has %d points for %d x values: %w", s.Name, len(s.Y), len(f.X), ErrBadSeries)
		}
	}
	if _, err := fmt.Fprintf(w, "# %s\n", f.Title); err != nil {
		return err
	}
	headers := make([]string, 0, 1+len(f.Series))
	headers = append(headers, f.XLabel)
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(headers...)
	for i, x := range f.X {
		row := make([]interface{}, 0, len(headers))
		row = append(row, x)
		for _, s := range f.Series {
			row = append(row, s.Y[i])
		}
		t.AddRowf(row...)
	}
	return t.Render(w)
}

// ASCIIChart renders the figure as a crude height×width terminal chart,
// one glyph per series, for quick visual inspection. Values are
// min-max normalized over all series.
func (f *Figure) ASCIIChart(w io.Writer, width, height int) error {
	if width < 8 || height < 2 {
		return fmt.Errorf("chart %dx%d too small: %w", width, height, ErrBadSeries)
	}
	for _, s := range f.Series {
		if len(s.Y) != len(f.X) {
			return fmt.Errorf("series %q mismatched: %w", s.Name, ErrBadSeries)
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("no finite data: %w", ErrBadSeries)
	}
	if hi == lo {
		hi = lo + 1
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	n := len(f.X)
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for i, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			col := 0
			if n > 1 {
				col = i * (width - 1) / (n - 1)
			}
			rowF := (y - lo) / (hi - lo)
			row := height - 1 - int(rowF*float64(height-1)+0.5)
			grid[row][col] = g
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s  [%.4g .. %.4g]\n", f.Title, lo, hi)
	for _, line := range grid {
		sb.WriteString("|")
		sb.Write(line)
		sb.WriteString("|\n")
	}
	for si, s := range f.Series {
		fmt.Fprintf(&sb, "  %c = %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
