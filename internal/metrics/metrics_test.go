package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tbl := NewTable("rule", "accuracy")
	tbl.AddRow("krum", "0.95")
	tbl.AddRow("average", "0.12")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All rows align to equal width.
	if len(lines[0]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned table:\n%s", out)
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("missing separator")
	}
	if !strings.HasPrefix(lines[2], "krum") {
		t.Errorf("row order wrong:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tbl := NewTable("a", "b", "c")
	tbl.AddRowf(1, 0.123456789, "x")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.1235") {
		t.Errorf("float not formatted: %s", sb.String())
	}
	tbl2 := NewTable("a")
	tbl2.AddRowf(math.NaN())
	var sb2 strings.Builder
	if err := tbl2.Render(&sb2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "NaN") {
		t.Error("NaN not rendered")
	}
}

func TestTableTooManyCells(t *testing.T) {
	tbl := NewTable("one")
	tbl.AddRow("a", "b")
	if err := tbl.Render(&strings.Builder{}); !errors.Is(err, ErrBadSeries) {
		t.Errorf("extra cells accepted: %v", err)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("plain", "1")
	tbl.AddRow("with,comma", `with"quote`)
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,value\nplain,1\n\"with,comma\",\"with\"\"quote\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		Title:  "accuracy vs round",
		XLabel: "round",
		X:      []float64{0, 10, 20},
		Series: []Series{
			{Name: "krum", Y: []float64{0.1, 0.5, 0.9}},
			{Name: "average", Y: []float64{0.1, 0.2, 0.1}},
		},
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# accuracy vs round", "round", "krum", "average", "0.9"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigureRenderMismatch(t *testing.T) {
	f := &Figure{
		Title: "bad", XLabel: "x", X: []float64{1, 2},
		Series: []Series{{Name: "s", Y: []float64{1}}},
	}
	if err := f.Render(&strings.Builder{}); !errors.Is(err, ErrBadSeries) {
		t.Errorf("mismatch accepted: %v", err)
	}
}

func TestASCIIChart(t *testing.T) {
	f := &Figure{
		Title:  "demo",
		XLabel: "x",
		X:      []float64{0, 1, 2, 3},
		Series: []Series{{Name: "up", Y: []float64{0, 1, 2, 3}}},
	}
	var sb strings.Builder
	if err := f.ASCIIChart(&sb, 20, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "* = up") {
		t.Errorf("chart missing glyphs:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Header + 5 grid rows + legend + trailing empty.
	if len(lines) < 7 {
		t.Errorf("chart too short:\n%s", out)
	}
}

func TestASCIIChartErrors(t *testing.T) {
	f := &Figure{Title: "x", XLabel: "x", X: []float64{1}, Series: []Series{{Name: "s", Y: []float64{1}}}}
	if err := f.ASCIIChart(&strings.Builder{}, 2, 1); !errors.Is(err, ErrBadSeries) {
		t.Error("tiny chart accepted")
	}
	bad := &Figure{Title: "x", XLabel: "x", X: []float64{1, 2}, Series: []Series{{Name: "s", Y: []float64{1}}}}
	if err := bad.ASCIIChart(&strings.Builder{}, 20, 4); !errors.Is(err, ErrBadSeries) {
		t.Error("mismatched chart accepted")
	}
	nan := &Figure{Title: "x", XLabel: "x", X: []float64{1}, Series: []Series{{Name: "s", Y: []float64{math.NaN()}}}}
	if err := nan.ASCIIChart(&strings.Builder{}, 20, 4); !errors.Is(err, ErrBadSeries) {
		t.Error("all-NaN chart accepted")
	}
}

func TestASCIIChartFlatSeries(t *testing.T) {
	f := &Figure{
		Title: "flat", XLabel: "x", X: []float64{0, 1},
		Series: []Series{{Name: "s", Y: []float64{2, 2}}},
	}
	var sb strings.Builder
	if err := f.ASCIIChart(&sb, 16, 4); err != nil {
		t.Errorf("flat series: %v", err)
	}
}
