package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"krum/internal/vec"
)

func TestBulyanRequiresN4F3(t *testing.T) {
	mk := func(n int) [][]float64 {
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = []float64{float64(i)}
		}
		return vs
	}
	dst := make([]float64, 1)
	if err := NewBulyan(1).Aggregate(dst, mk(6)); !errors.Is(err, ErrTooFewWorkers) {
		t.Errorf("n=6 f=1 accepted: %v", err)
	}
	if err := NewBulyan(1).Aggregate(dst, mk(7)); err != nil {
		t.Errorf("n=7 f=1 rejected: %v", err)
	}
	if err := NewBulyan(-1).Aggregate(dst, mk(7)); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative f accepted: %v", err)
	}
	if _, err := NewBulyan(0).Select(nil); !errors.Is(err, ErrNoVectors) {
		t.Errorf("empty input accepted: %v", err)
	}
}

func TestBulyanSelectsThetaFromCorrectCluster(t *testing.T) {
	rng := vec.NewRNG(1)
	const n, f, d = 11, 2, 6 // n ≥ 4f+3 = 11
	center := rng.NewNormal(d, 0, 1)
	vs := clusterWithOutliers(rng, n, f, d, center, 0.05, 500)
	b := NewBulyan(f)
	sel, err := b.Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != n-2*f {
		t.Fatalf("selected %d, want θ = %d", len(sel), n-2*f)
	}
	seen := make(map[int]bool)
	for _, idx := range sel {
		if seen[idx] {
			t.Fatalf("duplicate selection %d", idx)
		}
		seen[idx] = true
		if idx >= n-f {
			t.Errorf("bulyan selected Byzantine proposal %d", idx)
		}
	}
}

func TestBulyanAggregateNearClusterCenter(t *testing.T) {
	rng := vec.NewRNG(2)
	const n, f, d = 12, 2, 8
	center := rng.NewNormal(d, 0, 1)
	vs := clusterWithOutliers(rng, n, f, d, center, 0.05, 1000)
	dst := make([]float64, d)
	if err := NewBulyan(f).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if vec.Dist(dst, center) > 0.2 {
		t.Errorf("bulyan output %.3f from center", vec.Dist(dst, center))
	}
}

// The motivating scenario for Bulyan: an attacker matches the cluster on
// every coordinate except one, where it plants a huge value. Krum can
// pick it (the single coordinate barely moves Euclidean distance in high
// dimension — here it does move it, so we use a moderate spike close to
// the Krum decision boundary); Bulyan's trimmed second phase must crush
// the spike regardless of the selection outcome.
func TestBulyanCrushesSingleCoordinateSpike(t *testing.T) {
	rng := vec.NewRNG(3)
	const n, f, d = 11, 2, 50
	center := make([]float64, d)
	vs := make([][]float64, n)
	for i := 0; i < n-f; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = center[j] + 0.5*rng.NormFloat64()
		}
		vs[i] = v
	}
	for i := n - f; i < n; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = center[j] + 0.5*rng.NormFloat64()
		}
		v[7] = 100 // the hidden-coordinate attack
		vs[i] = v
	}
	dst := make([]float64, d)
	if err := NewBulyan(f).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if math.Abs(dst[7]) > 2 {
		t.Errorf("bulyan coordinate 7 = %v, spike not trimmed", dst[7])
	}
	// The naive average is visibly pulled.
	avg := make([]float64, d)
	if err := (Average{}).Aggregate(avg, vs); err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg[7]) < 10 {
		t.Errorf("test not discriminating: average coordinate 7 = %v", avg[7])
	}
}

func TestBulyanAgreesWithMeanOnIdenticalInputs(t *testing.T) {
	const n, f, d = 11, 2, 4
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = []float64{1, 2, 3, 4}
	}
	dst := make([]float64, d)
	if err := NewBulyan(f).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(dst, []float64{1, 2, 3, 4}, 1e-12) {
		t.Errorf("bulyan on identical inputs = %v", dst)
	}
}

func TestBulyanDoesNotMutateInputs(t *testing.T) {
	rng := vec.NewRNG(4)
	const n, f, d = 11, 2, 5
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NewNormal(d, 0, 1)
	}
	orig := vec.CloneAll(vs)
	dst := make([]float64, d)
	if err := NewBulyan(f).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if !vec.ApproxEqual(vs[i], orig[i], 0) {
			t.Fatalf("input %d mutated", i)
		}
	}
}

// Property: Bulyan's output is always inside the coordinate-wise range
// of the selected (hence of all) proposals — it is a trimmed mean, never
// an extrapolation.
func TestBulyanOutputInRangeProperty(t *testing.T) {
	f := func(seed uint64, f8 uint8) bool {
		fByz := int(f8 % 3)
		n := 4*fByz + 3 + int(seed%3)
		const d = 5
		rng := vec.NewRNG(seed)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = rng.NewNormal(d, 0, 5)
		}
		dst := make([]float64, d)
		if err := NewBulyan(fByz).Aggregate(dst, vs); err != nil {
			return false
		}
		for j := 0; j < d; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range vs {
				lo = math.Min(lo, v[j])
				hi = math.Max(hi, v[j])
			}
			if dst[j] < lo-1e-9 || dst[j] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMedianOf(t *testing.T) {
	if got := medianOf([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := medianOf([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}
