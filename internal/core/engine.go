package core

import (
	"krum/internal/vec"
)

// RoundContext carries the state shared by every rule invocation over
// one round's proposals — above all the O(n²·d) pairwise distance
// matrix of Lemma 4.1, which is computed lazily and AT MOST ONCE no
// matter how many distance-based rules (or how many iterated-Krum
// passes inside Bulyan) consume it.
//
// A context is cheap to create; the matrix is only built when a rule
// first asks for it. Contexts are single-round objects: the proposals
// must not be mutated while a context referencing them is in use.
type RoundContext struct {
	vectors  [][]float64
	parallel int
	dm       *vec.DistanceMatrix
	// cache, when non-nil, serves Distances through the engine's
	// cross-round cache instead of building a fresh matrix.
	cache *RoundCache
	// changed is the caller-declared change-set (see SetChanged);
	// changedKnown distinguishes "nothing changed" from "unknown".
	changed      []int
	changedKnown bool
	// screened offers rules a vec.Screener (norm + triangle-inequality
	// pruned selection) instead of the full matrix; scr memoizes it.
	screened bool
	scr      *vec.Screener
}

// NewRoundContext returns a context over one round's proposals.
func NewRoundContext(vectors [][]float64) *RoundContext {
	return &RoundContext{vectors: vectors}
}

// SetParallel sets the number of goroutines used if/when the distance
// matrix is built (0 = serial) and returns the context for chaining. It
// must be called before the first Distances call to have any effect.
func (c *RoundContext) SetParallel(workers int) *RoundContext {
	c.parallel = workers
	return c
}

// EnsureParallel raises the worker count used for the not-yet-built
// distance matrix; once the matrix exists it is a no-op. Rules that
// carry their own parallelism knob (Krum.Parallel) call this so the
// knob keeps working when the rule runs against an engine-provided
// context.
func (c *RoundContext) EnsureParallel(workers int) {
	if c.dm == nil && workers > c.parallel {
		c.parallel = workers
	}
}

// SetScreened toggles the screened selection path for this round (see
// Engine.Screened) and returns the context for chaining. Like
// SetParallel it must precede the first Distances/Screener call to
// have any effect.
func (c *RoundContext) SetScreened(on bool) *RoundContext {
	c.screened = on
	return c
}

// SetChanged declares the change-set for a cached round: the indices
// of proposals whose contents differ from the previous round's (as
// held by the engine's RoundCache). The contract is one-sided — every
// changed index MUST be listed, extra indices merely waste work. Rounds
// through an uncached engine ignore the declaration. Callers that do
// not know their change-set should not call SetChanged at all: the
// cache then diffs the proposals itself. It returns the context for
// chaining.
func (c *RoundContext) SetChanged(changed []int) *RoundContext {
	c.changed = changed
	c.changedKnown = true
	return c
}

// N returns the number of proposals.
func (c *RoundContext) N() int { return len(c.vectors) }

// Vectors returns the round's proposals. Callers must not mutate them.
func (c *RoundContext) Vectors() [][]float64 { return c.vectors }

// Distances returns the pairwise squared-distance matrix, building it
// on first use and memoizing it for every later caller. Contexts from
// a cache-enabled engine route through the cross-round RoundCache,
// which recomputes only the rows of changed proposals when it can.
//
// Aliasing: on a cache-enabled engine the returned matrix is the
// cache's long-lived instance — the NEXT round's update rewrites its
// cells in place. Use it within the round it was obtained for; callers
// that need to retain distances across rounds must copy them out.
func (c *RoundContext) Distances() *vec.DistanceMatrix {
	if c.dm == nil {
		if scr := c.Screener(); scr != nil {
			// A screened round that still needs the full matrix (e.g.
			// Bulyan's iterated selection reads every active row each
			// iteration) completes the screener's lazily-filled matrix —
			// bit-identical to a dense build, with already-exact rows
			// reused.
			c.dm = scr.Materialize()
		} else if c.cache != nil {
			c.dm = c.cache.distances(c.vectors, c.changed, c.changedKnown, c.parallel)
		} else {
			c.dm = buildMatrix(c.vectors, c.parallel)
		}
	}
	return c.dm
}

// Screener returns the round's screened-selection view (see
// vec.Screener), creating it on first use, or nil when the round should
// use the dense path: the engine is not screened, or the full matrix
// was already built (at which point every score is a cheap row scan and
// bounds could save nothing). Rules treat a nil screener as "take the
// dense path"; both paths select bit-identical indices.
func (c *RoundContext) Screener() *vec.Screener {
	if !c.screened || c.dm != nil {
		return nil
	}
	if c.scr == nil {
		if c.cache != nil {
			c.scr = c.cache.screener(c.vectors, c.changed, c.changedKnown)
		} else {
			c.scr = vec.NewScreener(c.vectors)
		}
	}
	return c.scr
}

// buildMatrix is the one place a fresh distance matrix is constructed.
func buildMatrix(vectors [][]float64, parallel int) *vec.DistanceMatrix {
	if parallel > 1 {
		return vec.NewDistanceMatrixParallel(vectors, parallel)
	}
	return vec.NewDistanceMatrix(vectors)
}

// ContextSelector is implemented by selection rules whose Select can
// run against a shared RoundContext, reusing its distance matrix
// instead of computing their own.
type ContextSelector interface {
	Selector
	// SelectContext is Select over the context's proposals.
	SelectContext(ctx *RoundContext) ([]int, error)
}

// ContextRule is implemented by rules whose Aggregate can run against a
// shared RoundContext.
type ContextRule interface {
	Rule
	// AggregateContext is Aggregate over the context's proposals.
	AggregateContext(dst []float64, ctx *RoundContext) error
}

// SelectContext runs rule.Select through the shared context when the
// rule supports it, falling back to the plain path otherwise.
func SelectContext(rule Selector, ctx *RoundContext) ([]int, error) {
	if cs, ok := rule.(ContextSelector); ok {
		return cs.SelectContext(ctx)
	}
	return rule.Select(ctx.Vectors())
}

// AggregateContext runs rule.Aggregate through the shared context when
// the rule supports it, falling back to the plain path otherwise.
func AggregateContext(rule Rule, dst []float64, ctx *RoundContext) error {
	if cr, ok := rule.(ContextRule); ok {
		return cr.AggregateContext(dst, ctx)
	}
	return rule.Aggregate(dst, ctx.Vectors())
}

// RoundCache carries the distance matrix ACROSS rounds: because SGD
// proposals often move little (or, for crashed/replaying Byzantine
// workers, not at all) between consecutive rounds, a round in which
// only c of n proposals changed needs only those c rows recomputed —
// Θ(c·n·d) instead of the full Θ(n²·d) rebuild (Lemma 4.1's bill).
//
// The cache holds its own copies of the previous round's vectors
// (inside vec.DistanceMatrix), so callers may freely recycle proposal
// buffers between rounds. It falls back to a full rebuild when there
// is nothing to reuse: the first round, a shape change (different n or
// d), or a change-set covering every proposal.
//
// A RoundCache is owned by one Engine and is NOT goroutine-safe: it
// serves the strictly sequential round loop of a single training run
// (concurrent scenario cells each own their engine).
type RoundCache struct {
	dm *vec.DistanceMatrix
	// scr is the screened counterpart: a cache serving a screened
	// engine retains the screener (its lazily-filled matrix plus
	// pruning bounds) instead of a dense matrix. At most one of dm/scr
	// is non-nil.
	scr *vec.Screener
	// stats, exposed through Stats for tests and diagnostics.
	builds  uint64
	reuses  uint64
	rowUpds uint64
}

// CacheStats summarizes how a RoundCache served its rounds.
type CacheStats struct {
	// Builds counts full matrix (re)builds, including the first round.
	Builds uint64
	// Reuses counts rounds served without building: fully unchanged
	// rounds plus rounds served by incremental row updates.
	Reuses uint64
	// RowUpdates counts individual row recomputations across all
	// incremental rounds.
	RowUpdates uint64
}

// Stats returns the cache's serving counters.
func (rc *RoundCache) Stats() CacheStats {
	return CacheStats{Builds: rc.builds, Reuses: rc.reuses, RowUpdates: rc.rowUpds}
}

// Changed returns the indices of vectors that differ from the cache's
// stored copies — the honest change-set a round loop passes to
// RoundContext.SetChanged. With no cached matrix (or a shape change)
// every index is returned. The comparison is exact IEEE equality
// (vec.DistanceMatrix.VectorEqual): a proposal that merely wiggles in
// the last ulp still counts as changed — correctness never depends on
// a tolerance — and NaN ≠ NaN, so a non-finite proposal always counts
// as changed rather than ever being served from the cache.
func (rc *RoundCache) Changed(vectors [][]float64) []int {
	n := len(vectors)
	if !rc.reusable(vectors) {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	equal := func(i int, v []float64) bool { return rc.dm.VectorEqual(i, v) }
	if rc.dm == nil {
		equal = func(i int, v []float64) bool { return rc.scr.VectorEqual(i, v) }
	}
	var changed []int
	for i, v := range vectors {
		if !equal(i, v) {
			changed = append(changed, i)
		}
	}
	return changed
}

// reusable reports whether the cached matrix (or screener) matches the
// round's shape.
func (rc *RoundCache) reusable(vectors [][]float64) bool {
	n := len(vectors)
	var cn, cd int
	switch {
	case rc.dm != nil:
		cn, cd = rc.dm.N(), rc.dm.Dim()
	case rc.scr != nil:
		cn, cd = rc.scr.N(), rc.scr.Dim()
	default:
		return false
	}
	if cn != n || n == 0 {
		return false
	}
	return cd == len(vectors[0])
}

// distances serves one round's matrix: full rebuild when the cache is
// cold, the shape changed, or (nearly) everything changed; otherwise
// incremental row updates for the changed set. An unknown change-set
// is diffed here, so cached engines stay transparent to callers that
// never declare one.
func (rc *RoundCache) distances(vectors [][]float64, changed []int, changedKnown bool, parallel int) *vec.DistanceMatrix {
	if rc.scr != nil {
		// The cache has been serving screened rounds; a dense request
		// routes through the screener so its already-exact rows are
		// reused, and the cache keeps the screener as its store.
		return rc.screener(vectors, changed, changedKnown).Materialize()
	}
	if !rc.reusable(vectors) {
		rc.dm = buildMatrix(vectors, parallel)
		rc.builds++
		return rc.dm
	}
	if !changedKnown {
		changed = rc.Changed(vectors)
	}
	if len(changed) >= len(vectors) {
		rc.dm = buildMatrix(vectors, parallel)
		rc.builds++
		return rc.dm
	}
	rc.reuses++
	if len(changed) > 0 {
		rc.dm.UpdateRows(changed, vectors)
		rc.rowUpds += uint64(len(changed))
	}
	return rc.dm
}

// screener serves one screened round's vec.Screener, the analogue of
// distances for the pruned-selection path: a fresh screener when the
// cache is cold, the shape changed, or everything changed; otherwise
// the retained screener with its exact rows and bounds repaired only
// for the changed vectors (Screener.UpdateRows).
func (rc *RoundCache) screener(vectors [][]float64, changed []int, changedKnown bool) *vec.Screener {
	if rc.scr == nil || !rc.reusable(vectors) {
		rc.dm = nil
		rc.scr = vec.NewScreener(vectors)
		rc.builds++
		return rc.scr
	}
	if !changedKnown {
		changed = rc.Changed(vectors)
	}
	if len(changed) >= len(vectors) {
		rc.scr = vec.NewScreener(vectors)
		rc.builds++
		return rc.scr
	}
	rc.reuses++
	if len(changed) > 0 {
		rc.scr.UpdateRows(changed, vectors)
		rc.rowUpds += uint64(len(changed))
	}
	return rc.scr
}

// Engine is the shared aggregation engine of the parameter server: it
// hands out one RoundContext per round so that selection tracking,
// aggregation, and any diagnostics all share a single distance matrix.
// The zero value is ready to use (serial matrix construction, no
// cross-round cache).
type Engine struct {
	// Parallel is the number of goroutines used for each round's
	// distance matrix (0 = serial); see vec.NewDistanceMatrixParallel
	// for the d ≫ n crossover.
	Parallel int
	// Screened switches selection rules to the norm/triangle-inequality
	// pruned path (vec.Screener): rows whose score lower bound exceeds
	// the running selection threshold are never computed, and surviving
	// rows are re-checked exactly, so selected indices stay
	// bit-identical to the dense path. The knob trades nothing but
	// wall clock — it exists as a flag (rather than always-on) so both
	// paths stay benchmarkable and cross-checkable.
	Screened bool
	// cache, when enabled, reuses the previous round's matrix through
	// incremental row updates; see RoundCache.
	cache *RoundCache
}

// NewEngine returns an engine building distance matrices with the given
// number of goroutines (0 = serial).
func NewEngine(parallel int) *Engine { return &Engine{Parallel: parallel} }

// EnableCache switches the engine to cross-round incremental distance
// updates (idempotent) and returns the engine for chaining. Enabling
// the cache never changes results — reused and recomputed cells are
// bit-identical to a fresh build — it only changes how much of the
// matrix each round recomputes, at the price of the cache retaining
// O(n·d + n²) memory between rounds.
func (e *Engine) EnableCache() *Engine {
	if e.cache == nil {
		e.cache = &RoundCache{}
	}
	return e
}

// EnableScreening switches the engine's selection rules to the
// screened (pruned) path and returns the engine for chaining. Like
// EnableCache, it never changes results — only which distances get
// computed. Screening composes with the cache: a screened cached
// engine retains the screener across rounds and repairs only changed
// rows' bounds.
func (e *Engine) EnableScreening() *Engine {
	e.Screened = true
	return e
}

// Cache returns the engine's cross-round cache, or nil when caching is
// not enabled.
func (e *Engine) Cache() *RoundCache { return e.cache }

// Round returns the shared context for one round's proposals. On a
// cache-enabled engine the context serves Distances through the
// cache; pass the round's change-set with RoundContext.SetChanged to
// skip the cache's own diff.
func (e *Engine) Round(vectors [][]float64) *RoundContext {
	ctx := NewRoundContext(vectors).SetParallel(e.Parallel)
	ctx.cache = e.cache
	ctx.screened = e.Screened
	return ctx
}

// Select runs a selection rule over one round through a fresh context.
func (e *Engine) Select(rule Selector, vectors [][]float64) ([]int, error) {
	return SelectContext(rule, e.Round(vectors))
}

// Aggregate runs a rule over one round through a fresh context.
func (e *Engine) Aggregate(rule Rule, dst []float64, vectors [][]float64) error {
	return AggregateContext(rule, dst, e.Round(vectors))
}
