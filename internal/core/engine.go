package core

import (
	"krum/internal/vec"
)

// RoundContext carries the state shared by every rule invocation over
// one round's proposals — above all the O(n²·d) pairwise distance
// matrix of Lemma 4.1, which is computed lazily and AT MOST ONCE no
// matter how many distance-based rules (or how many iterated-Krum
// passes inside Bulyan) consume it.
//
// A context is cheap to create; the matrix is only built when a rule
// first asks for it. Contexts are single-round objects: the proposals
// must not be mutated while a context referencing them is in use.
type RoundContext struct {
	vectors  [][]float64
	parallel int
	dm       *vec.DistanceMatrix
}

// NewRoundContext returns a context over one round's proposals.
func NewRoundContext(vectors [][]float64) *RoundContext {
	return &RoundContext{vectors: vectors}
}

// SetParallel sets the number of goroutines used if/when the distance
// matrix is built (0 = serial) and returns the context for chaining. It
// must be called before the first Distances call to have any effect.
func (c *RoundContext) SetParallel(workers int) *RoundContext {
	c.parallel = workers
	return c
}

// EnsureParallel raises the worker count used for the not-yet-built
// distance matrix; once the matrix exists it is a no-op. Rules that
// carry their own parallelism knob (Krum.Parallel) call this so the
// knob keeps working when the rule runs against an engine-provided
// context.
func (c *RoundContext) EnsureParallel(workers int) {
	if c.dm == nil && workers > c.parallel {
		c.parallel = workers
	}
}

// N returns the number of proposals.
func (c *RoundContext) N() int { return len(c.vectors) }

// Vectors returns the round's proposals. Callers must not mutate them.
func (c *RoundContext) Vectors() [][]float64 { return c.vectors }

// Distances returns the pairwise squared-distance matrix, building it
// on first use and memoizing it for every later caller.
func (c *RoundContext) Distances() *vec.DistanceMatrix {
	if c.dm == nil {
		if c.parallel > 1 {
			c.dm = vec.NewDistanceMatrixParallel(c.vectors, c.parallel)
		} else {
			c.dm = vec.NewDistanceMatrix(c.vectors)
		}
	}
	return c.dm
}

// ContextSelector is implemented by selection rules whose Select can
// run against a shared RoundContext, reusing its distance matrix
// instead of computing their own.
type ContextSelector interface {
	Selector
	// SelectContext is Select over the context's proposals.
	SelectContext(ctx *RoundContext) ([]int, error)
}

// ContextRule is implemented by rules whose Aggregate can run against a
// shared RoundContext.
type ContextRule interface {
	Rule
	// AggregateContext is Aggregate over the context's proposals.
	AggregateContext(dst []float64, ctx *RoundContext) error
}

// SelectContext runs rule.Select through the shared context when the
// rule supports it, falling back to the plain path otherwise.
func SelectContext(rule Selector, ctx *RoundContext) ([]int, error) {
	if cs, ok := rule.(ContextSelector); ok {
		return cs.SelectContext(ctx)
	}
	return rule.Select(ctx.Vectors())
}

// AggregateContext runs rule.Aggregate through the shared context when
// the rule supports it, falling back to the plain path otherwise.
func AggregateContext(rule Rule, dst []float64, ctx *RoundContext) error {
	if cr, ok := rule.(ContextRule); ok {
		return cr.AggregateContext(dst, ctx)
	}
	return rule.Aggregate(dst, ctx.Vectors())
}

// Engine is the shared aggregation engine of the parameter server: it
// hands out one RoundContext per round so that selection tracking,
// aggregation, and any diagnostics all share a single distance matrix.
// The zero value is ready to use (serial matrix construction).
type Engine struct {
	// Parallel is the number of goroutines used for each round's
	// distance matrix (0 = serial); see vec.NewDistanceMatrixParallel
	// for the d ≫ n crossover.
	Parallel int
}

// NewEngine returns an engine building distance matrices with the given
// number of goroutines (0 = serial).
func NewEngine(parallel int) *Engine { return &Engine{Parallel: parallel} }

// Round returns the shared context for one round's proposals.
func (e *Engine) Round(vectors [][]float64) *RoundContext {
	return NewRoundContext(vectors).SetParallel(e.Parallel)
}

// Select runs a selection rule over one round through a fresh context.
func (e *Engine) Select(rule Selector, vectors [][]float64) ([]int, error) {
	return SelectContext(rule, e.Round(vectors))
}

// Aggregate runs a rule over one round through a fresh context.
func (e *Engine) Aggregate(rule Rule, dst []float64, vectors [][]float64) error {
	return AggregateContext(rule, dst, e.Round(vectors))
}
