// Package core implements the paper's primary contribution: the Krum and
// Multi-Krum Byzantine-tolerant gradient aggregation rules (Blanchard,
// El Mhamdi, Guerraoui, Stainer — PODC'17 / NeurIPS'17), the baseline
// choice functions the paper compares against (averaging and other linear
// rules, the distance-based "medoid" rule of Section 4, the exponential
// majority-based minimal-diameter rule), and an empirical verifier for
// the (α, f)-Byzantine-resilience property of Definition 3.2.
//
// The exported surface of the repository re-exports this package as the
// root package krum; see that package for usage examples.
package core

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by aggregation rules. They are wrapped with
// contextual detail; test with errors.Is.
var (
	// ErrNoVectors is returned when a rule is invoked with zero input
	// vectors.
	ErrNoVectors = errors.New("core: no input vectors")
	// ErrDimensionMismatch is returned when input vectors (or the
	// destination buffer) disagree on dimension.
	ErrDimensionMismatch = errors.New("core: dimension mismatch")
	// ErrTooFewWorkers is returned when n is too small for the rule's
	// declared Byzantine tolerance (Krum requires n − f − 2 ≥ 1 to be
	// well defined, and n > 2f + 2 for the resilience guarantee of
	// Proposition 4.2).
	ErrTooFewWorkers = errors.New("core: too few workers for declared f")
	// ErrBadParameter is returned for out-of-range rule parameters
	// (negative f, zero trim fraction, m outside 1..n, ...).
	ErrBadParameter = errors.New("core: bad parameter")
)

// Rule is the parameter server's choice function F of the paper's
// Section 2: a deterministic function mapping the n proposed vectors
// V_1, ..., V_n to the update applied to the parameter vector.
//
// Aggregate writes F(vectors...) into dst, which must have the common
// dimension of the inputs. Implementations must not retain or mutate the
// input vectors.
type Rule interface {
	// Name returns a short stable identifier used in experiment tables
	// ("krum", "average", ...).
	Name() string
	// Aggregate computes the aggregate of the proposed vectors into dst.
	Aggregate(dst []float64, vectors [][]float64) error
}

// Selector is implemented by rules that output one of (or a subset of)
// their input vectors rather than an arbitrary point. Select returns the
// indices of the chosen input(s) in selection order. The experiment
// harness uses this to count how often a Byzantine proposal is chosen.
type Selector interface {
	Select(vectors [][]float64) ([]int, error)
}

// checkInputs validates the common preconditions of every rule: at least
// one vector, consistent dimensions, and dst of matching length.
func checkInputs(dst []float64, vectors [][]float64) error {
	if len(vectors) == 0 {
		return ErrNoVectors
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			return fmt.Errorf("vector %d has dimension %d, want %d: %w", i, len(v), d, ErrDimensionMismatch)
		}
	}
	if len(dst) != d {
		return fmt.Errorf("dst has dimension %d, want %d: %w", len(dst), d, ErrDimensionMismatch)
	}
	return nil
}
