package core

import (
	"fmt"

	"krum/internal/spec"
)

// This file is the central rule registry: every aggregation rule in the
// repository registers a named factory here, and every binary, example,
// and the distsgd engine construct rules exclusively through
// ParseRule / ParseRuleIn — there is no hand-rolled name→rule switch
// anywhere else in the tree. Spec strings take the form
//
//	krum | krum(f=2) | multikrum(f=2,m=5) | trimmedmean(b=1)
//
// Names and parameter keys are case-insensitive (normalized to lower
// case), so registry lookups are case-stable. The parsing machinery is
// the generic internal/spec registry shared with the attack, schedule
// and workload axes; only the rule factories live here.

// SpecContext supplies cluster-shape defaults for parameters a spec
// omits: "krum" parsed with SpecContext{N: 15, F: 3} yields Krum{F: 3}.
// The zero value means "shape unknown" — parameters without a universal
// default must then be spelled out in the spec.
type SpecContext struct {
	// N is the total number of proposals per round (0 = unknown).
	N int
	// F is the default Byzantine tolerance for rules that take one.
	F int
}

// Args holds the key=value parameters of a parsed rule spec, keys lower
// case.
type Args = spec.Args

// Factory builds a rule from a parsed spec. Register one per rule name.
type Factory = spec.Factory[Rule, SpecContext]

// registry is the central rule registry; every parse failure wraps
// ErrBadParameter.
var registry = spec.NewRegistry[Rule, SpecContext]("rule", ErrBadParameter)

// Register adds a rule factory under the given (case-insensitive) name.
// It panics on an empty name, a nil constructor, or a duplicate
// registration — all programmer errors at init time.
func Register(name string, f Factory) { registry.Register(name, f) }

// Lookup returns the factory registered under name (case-insensitive).
func Lookup(name string) (Factory, bool) { return registry.Lookup(name) }

// Names returns the registered rule names, sorted.
func Names() []string { return registry.Names() }

// Usage returns a generated one-line summary of every registered rule
// with its accepted parameters — the CLI help strings are built from
// this so they can never drift from the registry.
func Usage() string { return registry.Usage() }

// SplitSpecs splits a comma-separated list of rule specs, keeping
// commas inside parameter parentheses — "krum,multikrum(f=2,m=3)"
// yields ["krum", "multikrum(f=2,m=3)"]. Empty items are dropped; the
// items are not validated (ParseRuleIn does that).
func SplitSpecs(list string) []string { return spec.SplitSpecs(list) }

// ParseSpec splits a rule spec into its lower-cased name and parameter
// map without consulting the registry. Malformed specs are reported as
// wrapped ErrBadParameter.
func ParseSpec(s string) (string, Args, error) {
	return spec.Parse("rule", ErrBadParameter, s)
}

// ParseRuleIn constructs the rule described by spec, with cluster-shape
// defaults from ctx. Unknown names, unknown parameter keys, and
// malformed values are all reported as wrapped ErrBadParameter.
func ParseRuleIn(ctx SpecContext, s string) (Rule, error) {
	return registry.Parse(ctx, s)
}

// ParseRule is ParseRuleIn with an empty context: every parameter
// without a universal default must be spelled out in the spec.
func ParseRule(spec string) (Rule, error) {
	return ParseRuleIn(SpecContext{}, spec)
}

// init registers the built-in rules. Third-party rules can call
// Register from their own init functions.
func init() {
	Register("krum", Factory{
		Params: []string{"f"},
		Doc:    "the paper's choice function Kr (Section 4)",
		New: func(ctx SpecContext, a Args) (Rule, error) {
			f, err := a.Int("f", ctx.F)
			if err != nil {
				return nil, err
			}
			return &Krum{F: f}, nil
		},
	})
	Register("multikrum", Factory{
		Params: []string{"f", "m"},
		Doc:    "average of the m smallest-score proposals (full paper, Figure 6)",
		New: func(ctx SpecContext, a Args) (Rule, error) {
			f, err := a.Int("f", ctx.F)
			if err != nil {
				return nil, err
			}
			defM := 0
			if ctx.N > 0 {
				defM = ctx.N - f
				if defM < 1 {
					defM = 1
				}
			}
			m, err := a.Int("m", defM)
			if err != nil {
				return nil, err
			}
			if m < 1 {
				if !a.Has("m") {
					return nil, fmt.Errorf("multikrum needs m (or a SpecContext with N set): %w", ErrBadParameter)
				}
				return nil, fmt.Errorf("m = %d (need m ≥ 1): %w", m, ErrBadParameter)
			}
			return &MultiKrum{F: f, M: m}, nil
		},
	})
	Register("krumk", Factory{
		Params: []string{"k"},
		Doc:    "ablation Krum with an explicit neighbour count",
		New: func(ctx SpecContext, a Args) (Rule, error) {
			if !a.Has("k") {
				return nil, fmt.Errorf("krumk needs an explicit k: %w", ErrBadParameter)
			}
			k, err := a.Int("k", 0)
			if err != nil {
				return nil, err
			}
			return &KrumK{K: k}, nil
		},
	})
	Register("average", Factory{
		Doc: "classical barycenter (no Byzantine tolerance, Lemma 3.1)",
		New: func(SpecContext, Args) (Rule, error) { return Average{}, nil },
	})
	Register("medoid", Factory{
		Doc: "distance-based rule of Section 4 (tolerates one Byzantine worker)",
		New: func(SpecContext, Args) (Rule, error) { return Medoid{}, nil },
	})
	Register("coordmedian", Factory{
		Doc: "coordinate-wise median baseline",
		New: func(SpecContext, Args) (Rule, error) { return CoordMedian{}, nil },
	})
	Register("trimmedmean", Factory{
		Params: []string{"b"},
		Doc:    "coordinate-wise β-trimmed mean baseline",
		New: func(ctx SpecContext, a Args) (Rule, error) {
			b, err := a.Int("b", ctx.F)
			if err != nil {
				return nil, err
			}
			return TrimmedMean{Trim: b}, nil
		},
	})
	Register("geomedian", Factory{
		Params: []string{"maxiter", "tol"},
		Doc:    "Weiszfeld geometric-median baseline",
		New: func(ctx SpecContext, a Args) (Rule, error) {
			maxIter, err := a.Int("maxiter", 0)
			if err != nil {
				return nil, err
			}
			tol, err := a.Float("tol", 0)
			if err != nil {
				return nil, err
			}
			return GeoMedian{MaxIter: maxIter, Tol: tol}, nil
		},
	})
	Register("minimaldiameter", Factory{
		Params: []string{"f", "maxsubsets"},
		Doc:    "exponential minimal-diameter subset rule (cost baseline)",
		New: func(ctx SpecContext, a Args) (Rule, error) {
			f, err := a.Int("f", ctx.F)
			if err != nil {
				return nil, err
			}
			maxSubsets, err := a.Int("maxsubsets", 0)
			if err != nil {
				return nil, err
			}
			return &MinimalDiameter{F: f, MaxSubsets: maxSubsets}, nil
		},
	})
	Register("bulyan", Factory{
		Params: []string{"f"},
		Doc:    "iterated Krum + trimmed mean (ICML 2018 follow-up, needs n ≥ 4f+3)",
		New: func(ctx SpecContext, a Args) (Rule, error) {
			if a.Has("f") {
				f, err := a.Int("f", 0)
				if err != nil {
					return nil, err
				}
				return &Bulyan{F: f}, nil
			}
			// Default: the declared tolerance, clamped to the largest
			// value the known cluster size supports (n ≥ 4f + 3).
			f := ctx.F
			if ctx.N > 0 {
				if maxF := (ctx.N - 3) / 4; f > maxF {
					f = maxF
				}
				if f < 0 {
					f = 0
				}
			}
			return &Bulyan{F: f}, nil
		},
	})
	Register("clippedmean", Factory{
		Doc: "median-norm clipping then average (magnitude attacks only)",
		New: func(SpecContext, Args) (Rule, error) { return ClippedMean{}, nil },
	})
}
