package core

import (
	"sort"

	"krum/internal/vec"
)

// ClippedMean is the norm-clipping baseline from the practical
// robust-aggregation literature: every proposal is rescaled to at most
// the median proposal norm, then averaged. It defeats pure
// large-magnitude attacks (Gaussian σ=200, scaled omniscient) at O(n·d)
// cost, but — unlike Krum — provides no directional guarantee: f
// correctly-sized malicious vectors still shift the mean by Θ(f/n) in
// an arbitrary direction, so it fails Definition 3.2 condition (i)
// against the sign-flip adversary. Included as an ablation baseline.
type ClippedMean struct{}

var _ Rule = ClippedMean{}

// Name implements Rule.
func (ClippedMean) Name() string { return "clippedmean" }

// Aggregate implements Rule.
func (ClippedMean) Aggregate(dst []float64, vectors [][]float64) error {
	if err := checkInputs(dst, vectors); err != nil {
		return err
	}
	n := len(vectors)
	norms := make([]float64, n)
	for i, v := range vectors {
		norms[i] = vec.Norm(v)
	}
	sorted := append([]float64(nil), norms...)
	sort.Float64s(sorted)
	var clip float64
	if n%2 == 1 {
		clip = sorted[n/2]
	} else {
		clip = 0.5 * (sorted[n/2-1] + sorted[n/2])
	}
	vec.Zero(dst)
	for i, v := range vectors {
		w := 1.0
		if norms[i] > clip && norms[i] > 0 {
			w = clip / norms[i]
		}
		vec.Axpy(w, v, dst)
	}
	vec.Scale(1/float64(n), dst)
	return nil
}
