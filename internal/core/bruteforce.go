package core

import (
	"fmt"
	"math"

	"krum/internal/vec"
)

// MinimalDiameter is the majority-based rule the paper sketches in the
// introduction as the conceptually robust but computationally prohibitive
// alternative to Krum: enumerate every subset of n − f proposals, pick
// the subset with the smallest diameter (largest pairwise distance inside
// the subset), and average it. Its cost is C(n, f)·(n−f)² distance
// lookups on top of the O(n²·d) distance matrix — exponential in f —
// which is exactly why the paper rejects it in favour of Krum. It is
// implemented here to reproduce that cost comparison (experiment E3
// includes it as the upper curve) and as a semantic reference point in
// tests.
type MinimalDiameter struct {
	// F is the number of Byzantine workers excluded from the chosen
	// subset.
	F int
	// MaxSubsets guards against accidental combinatorial blow-ups: if
	// C(n, f) exceeds it, Aggregate returns ErrBadParameter instead of
	// running for hours. 0 means the default (2,000,000).
	MaxSubsets int
}

// NewMinimalDiameter returns the exponential majority-based rule.
func NewMinimalDiameter(f int) *MinimalDiameter { return &MinimalDiameter{F: f} }

var (
	_ Rule            = (*MinimalDiameter)(nil)
	_ Selector        = (*MinimalDiameter)(nil)
	_ ContextRule     = (*MinimalDiameter)(nil)
	_ ContextSelector = (*MinimalDiameter)(nil)
)

// Name implements Rule.
func (*MinimalDiameter) Name() string { return "minimaldiameter" }

// SelectContext implements ContextSelector: the subset enumeration runs
// over the shared distance matrix. Ties resolve to the
// lexicographically smallest subset because enumeration is in
// lexicographic order and strict improvement is required to switch.
func (md *MinimalDiameter) SelectContext(ctx *RoundContext) ([]int, error) {
	vectors := ctx.Vectors()
	n := len(vectors)
	if n == 0 {
		return nil, ErrNoVectors
	}
	if md.F < 0 || n-md.F < 1 {
		return nil, fmt.Errorf("f = %d with n = %d: %w", md.F, n, ErrTooFewWorkers)
	}
	k := n - md.F
	limit := md.MaxSubsets
	if limit <= 0 {
		limit = 2_000_000
	}
	if c := binomial(n, k); c < 0 || c > limit {
		return nil, fmt.Errorf("C(%d, %d) subsets exceed limit %d: %w", n, k, limit, ErrBadParameter)
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			return nil, fmt.Errorf("vector %d has dimension %d, want %d: %w", i, len(v), d, ErrDimensionMismatch)
		}
	}
	dm := ctx.Distances()

	best := make([]int, k)
	cur := make([]int, k)
	for i := range cur {
		cur[i] = i
	}
	copy(best, cur)
	bestDiam := subsetDiameter(dm, cur)
	for nextCombination(cur, n) {
		if diam := subsetDiameter(dm, cur); diam < bestDiam {
			bestDiam = diam
			copy(best, cur)
		}
	}
	return best, nil
}

// Select returns the indices of the minimal-diameter subset of size
// n − F, ordered ascending.
func (md *MinimalDiameter) Select(vectors [][]float64) ([]int, error) {
	return md.SelectContext(NewRoundContext(vectors))
}

// AggregateContext implements ContextRule: the average of the
// minimal-diameter subset found on the shared matrix.
func (md *MinimalDiameter) AggregateContext(dst []float64, ctx *RoundContext) error {
	if err := checkInputs(dst, ctx.Vectors()); err != nil {
		return err
	}
	sel, err := md.SelectContext(ctx)
	if err != nil {
		return err
	}
	vec.Zero(dst)
	for _, i := range sel {
		vec.Axpy(1, ctx.Vectors()[i], dst)
	}
	vec.Scale(1/float64(len(sel)), dst)
	return nil
}

// Aggregate implements Rule: the average of the minimal-diameter subset.
func (md *MinimalDiameter) Aggregate(dst []float64, vectors [][]float64) error {
	return md.AggregateContext(dst, NewRoundContext(vectors))
}

// subsetDiameter returns the largest pairwise squared distance within
// the index subset.
func subsetDiameter(dm *vec.DistanceMatrix, subset []int) float64 {
	var diam float64
	for a := 0; a < len(subset); a++ {
		for b := a + 1; b < len(subset); b++ {
			if d := dm.At(subset[a], subset[b]); d > diam {
				diam = d
			}
		}
	}
	return diam
}

// nextCombination advances idx to the next k-combination of {0..n-1} in
// lexicographic order, returning false after the last one.
func nextCombination(idx []int, n int) bool {
	k := len(idx)
	for i := k - 1; i >= 0; i-- {
		if idx[i] < n-k+i {
			idx[i]++
			for j := i + 1; j < k; j++ {
				idx[j] = idx[j-1] + 1
			}
			return true
		}
	}
	return false
}

// binomial returns C(n, k), or -1 on overflow of int.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 1; i <= k; i++ {
		// res * (n-k+i) may overflow; detect via float guard.
		if float64(res)*float64(n-k+i) > math.MaxInt64/4 {
			return -1
		}
		res = res * (n - k + i) / i
	}
	return res
}
