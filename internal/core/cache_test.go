package core

import (
	"testing"

	"krum/internal/vec"
)

// cacheRound pulls one round's matrix through a cache-enabled engine,
// declaring the change-set the way the distsgd round loop does.
func cacheRound(e *Engine, vs [][]float64) *vec.DistanceMatrix {
	return e.Round(vs).SetChanged(e.Cache().Changed(vs)).Distances()
}

// TestRoundCacheReusesUnchangedRound: a second round over bit-identical
// proposals builds nothing and recomputes no rows.
func TestRoundCacheReusesUnchangedRound(t *testing.T) {
	vs := engineTestVectors(9, 24, 7)
	e := NewEngine(0).EnableCache()
	first := cacheRound(e, vs)
	builds := vec.MatrixBuildCount()
	rows := vec.MatrixRowUpdateCount()
	second := cacheRound(e, vec.CloneAll(vs)) // equal contents, different buffers
	if second != first {
		t.Error("unchanged round did not return the cached matrix")
	}
	if got := vec.MatrixBuildCount() - builds; got != 0 {
		t.Errorf("unchanged round built %d matrices", got)
	}
	if got := vec.MatrixRowUpdateCount() - rows; got != 0 {
		t.Errorf("unchanged round recomputed %d rows", got)
	}
	st := e.Cache().Stats()
	if st.Builds != 1 || st.Reuses != 1 || st.RowUpdates != 0 {
		t.Errorf("stats = %+v, want 1 build / 1 reuse / 0 row updates", st)
	}
}

// TestRoundCacheIncrementalMatchesRebuild: after mutating a few
// proposals, the cached matrix must be bit-identical to a from-scratch
// build over the new proposals, having recomputed only the changed
// rows.
func TestRoundCacheIncrementalMatchesRebuild(t *testing.T) {
	const n, d = 11, 40
	vs := engineTestVectors(n, d, 3)
	e := NewEngine(0).EnableCache()
	cacheRound(e, vs)

	next := vec.CloneAll(vs)
	next[2] = engineTestVectors(1, d, 99)[0]
	next[7] = engineTestVectors(1, d, 100)[0]
	builds := vec.MatrixBuildCount()
	rows := vec.MatrixRowUpdateCount()
	got := cacheRound(e, next)
	if b := vec.MatrixBuildCount() - builds; b != 0 {
		t.Errorf("incremental round built %d matrices", b)
	}
	if r := vec.MatrixRowUpdateCount() - rows; r != 2 {
		t.Errorf("incremental round recomputed %d rows, want 2", r)
	}
	want := vec.NewDistanceMatrix(next)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("cell (%d,%d): cached %v, rebuild %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestRoundCacheBypasses: the documented full-rebuild cases — first
// round, a shape change (n or d), and a change-set covering every
// proposal — must all build rather than update.
func TestRoundCacheBypasses(t *testing.T) {
	e := NewEngine(0).EnableCache()
	before := vec.MatrixBuildCount()
	cacheRound(e, engineTestVectors(6, 20, 1)) // first round
	cacheRound(e, engineTestVectors(7, 20, 2)) // n changed
	cacheRound(e, engineTestVectors(7, 21, 3)) // d changed
	cacheRound(e, engineTestVectors(7, 21, 4)) // everything changed
	if got := vec.MatrixBuildCount() - before; got != 4 {
		t.Errorf("bypass rounds built %d matrices, want 4", got)
	}
	st := e.Cache().Stats()
	if st.Builds != 4 || st.Reuses != 0 || st.RowUpdates != 0 {
		t.Errorf("stats = %+v, want 4 builds / 0 reuses / 0 row updates", st)
	}
}

// TestRoundCacheUndeclaredChangeSet: a context from a cached engine
// that never calls SetChanged must still serve correct matrices — the
// cache diffs the proposals itself.
func TestRoundCacheUndeclaredChangeSet(t *testing.T) {
	const n, d = 8, 30
	vs := engineTestVectors(n, d, 5)
	e := NewEngine(0).EnableCache()
	e.Round(vs).Distances()
	next := vec.CloneAll(vs)
	next[4] = engineTestVectors(1, d, 50)[0]
	rows := vec.MatrixRowUpdateCount()
	got := e.Round(next).Distances()
	if r := vec.MatrixRowUpdateCount() - rows; r != 1 {
		t.Errorf("auto-diffed round recomputed %d rows, want 1", r)
	}
	want := vec.NewDistanceMatrix(next)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("cell (%d,%d): cached %v, rebuild %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestRoundCacheChangedReportsAll: Changed on a cold or shape-mismatched
// cache names every index.
func TestRoundCacheChangedReportsAll(t *testing.T) {
	e := NewEngine(0).EnableCache()
	vs := engineTestVectors(5, 10, 8)
	changed := e.Cache().Changed(vs)
	if len(changed) != 5 {
		t.Fatalf("cold cache Changed = %v, want all 5", changed)
	}
	cacheRound(e, vs)
	if got := e.Cache().Changed(vs); len(got) != 0 {
		t.Errorf("identical round Changed = %v, want empty", got)
	}
	if got := e.Cache().Changed(engineTestVectors(6, 10, 9)); len(got) != 6 {
		t.Errorf("shape change Changed = %v, want all 6", got)
	}
}

// TestUncachedEngineIgnoresSetChanged: declaring a change-set on a
// plain engine is inert — every round builds fresh (the PR-1 memoized
// behavior is unchanged).
func TestUncachedEngineIgnoresSetChanged(t *testing.T) {
	vs := engineTestVectors(6, 12, 11)
	e := NewEngine(0)
	if e.Cache() != nil {
		t.Fatal("plain engine has a cache")
	}
	before := vec.MatrixBuildCount()
	e.Round(vs).SetChanged(nil).Distances()
	e.Round(vs).SetChanged(nil).Distances()
	if got := vec.MatrixBuildCount() - before; got != 2 {
		t.Errorf("uncached engine built %d matrices, want 2", got)
	}
}

// TestRoundCacheParallelBuild: the cache's full rebuilds honor the
// engine's parallelism and stay bit-identical to serial ones.
func TestRoundCacheParallelBuild(t *testing.T) {
	const n, d = 10, 64
	vs := engineTestVectors(n, d, 13)
	par := NewEngine(4).EnableCache()
	ser := NewEngine(0).EnableCache()
	a := cacheRound(par, vs)
	b := cacheRound(ser, vs)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("cell (%d,%d): parallel %v, serial %v", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}
