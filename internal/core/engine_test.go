package core

import (
	"testing"

	"krum/internal/vec"
)

func engineTestVectors(n, d int, seed uint64) [][]float64 {
	rng := vec.NewRNG(seed)
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NewNormal(d, 0, 1)
	}
	return vs
}

// TestRoundContextMemoizesMatrix: selection tracking plus aggregation
// through one shared context builds exactly one distance matrix.
func TestRoundContextMemoizesMatrix(t *testing.T) {
	const n, d, f = 11, 8, 2
	vs := engineTestVectors(n, d, 1)
	dst := make([]float64, d)
	rule := NewKrum(f)
	engine := NewEngine(0)

	before := vec.MatrixBuildCount()
	ctx := engine.Round(vs)
	if _, err := SelectContext(rule, ctx); err != nil {
		t.Fatal(err)
	}
	if err := AggregateContext(rule, dst, ctx); err != nil {
		t.Fatal(err)
	}
	if got := vec.MatrixBuildCount() - before; got != 1 {
		t.Fatalf("shared context built %d matrices for select+aggregate, want 1", got)
	}

	// The plain path pays twice — that is exactly what the engine saves.
	before = vec.MatrixBuildCount()
	if _, err := rule.Select(vs); err != nil {
		t.Fatal(err)
	}
	if err := rule.Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if got := vec.MatrixBuildCount() - before; got != 2 {
		t.Fatalf("plain path built %d matrices, want 2", got)
	}
}

// TestEngineMatchesDirectRules: for every registered rule, aggregation
// through the engine produces the same output (and the same selection)
// as calling the rule directly.
func TestEngineMatchesDirectRules(t *testing.T) {
	const n, d = 15, 7
	ctx := SpecContext{N: n, F: 3}
	vs := engineTestVectors(n, d, 2)
	engine := NewEngine(0)
	for _, name := range Names() {
		spec := name
		if name == "krumk" {
			spec = "krumk(k=3)"
		}
		rule, err := ParseRuleIn(ctx, spec)
		if err != nil {
			t.Fatalf("ParseRuleIn(%q): %v", spec, err)
		}
		direct := make([]float64, d)
		viaEngine := make([]float64, d)
		if err := rule.Aggregate(direct, vs); err != nil {
			t.Fatalf("%s direct: %v", spec, err)
		}
		if err := engine.Aggregate(rule, viaEngine, vs); err != nil {
			t.Fatalf("%s engine: %v", spec, err)
		}
		if !vec.ApproxEqual(direct, viaEngine, 0) {
			t.Errorf("%s: engine output differs from direct output", spec)
		}
		sel, ok := rule.(Selector)
		if !ok {
			continue
		}
		want, err := sel.Select(vs)
		if err != nil {
			t.Fatalf("%s direct select: %v", spec, err)
		}
		got, err := engine.Select(sel, vs)
		if err != nil {
			t.Fatalf("%s engine select: %v", spec, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: engine selected %v, direct %v", spec, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: engine selected %v, direct %v", spec, got, want)
			}
		}
	}
}

// TestEngineParallelMatrixMatchesSerial: a parallel engine must select
// identically to a serial one (the matrix entries are the same pairs).
func TestEngineParallelMatrixMatchesSerial(t *testing.T) {
	const n, d, f = 13, 32, 3
	vs := engineTestVectors(n, d, 3)
	rule := NewKrum(f)
	serial, err := NewEngine(0).Select(rule, vs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewEngine(4).Select(rule, vs)
	if err != nil {
		t.Fatal(err)
	}
	if serial[0] != parallel[0] {
		t.Fatalf("parallel engine selected %d, serial %d", parallel[0], serial[0])
	}
}

// TestFiniteGuardContextSharesMatrixWhenClean: a guard wrapping a
// context-aware rule reuses the shared matrix when no proposal needs
// sanitization, and still neutralizes NaNs when one does.
func TestFiniteGuardContextSharesMatrixWhenClean(t *testing.T) {
	const n, d, f = 11, 6, 2
	vs := engineTestVectors(n, d, 4)
	dst := make([]float64, d)
	guard := FiniteGuard{Inner: NewKrum(f)}
	engine := NewEngine(0)

	before := vec.MatrixBuildCount()
	ctx := engine.Round(vs)
	if _, err := SelectContext(guard, ctx); err != nil {
		t.Fatal(err)
	}
	if err := AggregateContext(guard, dst, ctx); err != nil {
		t.Fatal(err)
	}
	if got := vec.MatrixBuildCount() - before; got != 1 {
		t.Fatalf("clean guard built %d matrices, want 1", got)
	}

	// Poison one proposal: the guard must rebuild over the sanitized
	// view and still aggregate finitely.
	poisoned := vec.CloneAll(vs)
	poisoned[0][0] = nan()
	if err := engine.Aggregate(guard, dst, poisoned); err != nil {
		t.Fatal(err)
	}
	if !vec.AllFinite(dst) {
		t.Fatal("guard let a NaN through")
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}
