package core

import (
	"errors"
	"testing"
	"testing/quick"

	"krum/internal/vec"
)

// clusterWithOutliers builds n-f tight proposals around center plus f
// far-away Byzantine proposals.
func clusterWithOutliers(rng *vec.RNG, n, f, d int, center []float64, spread, outlierDist float64) [][]float64 {
	vs := make([][]float64, n)
	for i := 0; i < n-f; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = center[j] + spread*rng.NormFloat64()
		}
		vs[i] = v
	}
	for i := n - f; i < n; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = center[j] + outlierDist + rng.NormFloat64()
		}
		vs[i] = v
	}
	return vs
}

func TestKrumSelectsFromCorrectCluster(t *testing.T) {
	rng := vec.NewRNG(1)
	const n, f, d = 11, 3, 20
	center := rng.NewNormal(d, 0, 1)
	vs := clusterWithOutliers(rng, n, f, d, center, 0.1, 1000)
	k := NewKrum(f)
	sel, err := k.Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] >= n-f {
		t.Errorf("Krum selected Byzantine vector %d", sel[0])
	}
	dst := make([]float64, d)
	if err := k.Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(dst, vs[sel[0]], 0) {
		t.Error("Aggregate did not copy the selected vector")
	}
}

func TestKrumScoresMatchDefinition(t *testing.T) {
	// Hand-computable 1-D instance: vectors 0, 1, 3, 10, n=4, f=0.
	// Neighbours per score: n-f-2 = 2.
	vs := [][]float64{{0}, {1}, {3}, {10}}
	k := NewKrum(0)
	scores, err := k.Scores(vs)
	if err != nil {
		t.Fatal(err)
	}
	// s(0): two closest to 0 are 1 (d²=1), 3 (d²=9) → 10
	// s(1): closest are 0 (1), 3 (4) → 5
	// s(2): closest are 1 (4), 0 (9) → 13
	// s(3): closest are 3 (49), 1 (81) → 130
	want := []float64{10, 5, 13, 130}
	if !vec.ApproxEqual(scores, want, 1e-12) {
		t.Errorf("scores = %v, want %v", scores, want)
	}
	sel, err := k.Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != 1 {
		t.Errorf("selected %d, want 1", sel[0])
	}
}

func TestKrumTieBreaksToSmallestID(t *testing.T) {
	// Two identical pairs: scores tie; paper footnote 3 says pick the
	// smallest worker id.
	vs := [][]float64{{0, 0}, {0, 0}, {5, 5}, {5, 5}}
	k := NewKrum(0)
	sel, err := k.Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != 0 {
		t.Errorf("tie broken to %d, want 0", sel[0])
	}
}

func TestKrumOutputIsAlwaysAnInputProperty(t *testing.T) {
	f := func(seed uint64, n8, f8, d8 uint8) bool {
		n := int(n8%10) + 4
		fByz := int(f8) % maxInt(1, n-3) // ensure n ≥ f+3 ⇒ f ≤ n-3
		d := int(d8%6) + 1
		rng := vec.NewRNG(seed)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = rng.NewNormal(d, 0, 5)
		}
		k := NewKrum(fByz)
		dst := make([]float64, d)
		if err := k.Aggregate(dst, vs); err != nil {
			return false
		}
		for _, v := range vs {
			if vec.ApproxEqual(dst, v, 0) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Krum must be invariant under permutation of its inputs (up to the
// identity of the returned vector — the value must match, not the index).
func TestKrumPermutationInvarianceProperty(t *testing.T) {
	f := func(seed uint64, n8, f8 uint8) bool {
		n := int(n8%8) + 5
		fByz := int(f8) % (n - 3)
		const d = 4
		rng := vec.NewRNG(seed)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = rng.NewNormal(d, 0, 3)
		}
		k := NewKrum(fByz)
		a := make([]float64, d)
		if err := k.Aggregate(a, vs); err != nil {
			return false
		}
		perm := rng.Perm(n)
		shuffled := make([][]float64, n)
		for i, p := range perm {
			shuffled[i] = vs[p]
		}
		b := make([]float64, d)
		if err := k.Aggregate(b, shuffled); err != nil {
			return false
		}
		// With random continuous data, ties have measure zero, so the
		// selected VALUE must be identical.
		return vec.ApproxEqual(a, b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Krum never selects any of f far outliers when the correct
// majority is tight and 2f+2 < n — the headline robustness property.
func TestKrumRejectsOutliersProperty(t *testing.T) {
	f := func(seed uint64, n8, f8 uint8) bool {
		n := int(n8%10) + 9 // 9..18
		maxF := (n - 3) / 2 // 2f+2 < n
		fByz := int(f8)%maxF + 1
		const d = 8
		rng := vec.NewRNG(seed)
		center := rng.NewNormal(d, 0, 1)
		vs := clusterWithOutliers(rng, n, fByz, d, center, 0.05, 500)
		k := NewKrum(fByz)
		sel, err := k.Select(vs)
		if err != nil {
			return false
		}
		return sel[0] < n-fByz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKrumErrorCases(t *testing.T) {
	d := 3
	mk := func(n int) [][]float64 {
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = make([]float64, d)
		}
		return vs
	}
	dst := make([]float64, d)

	tests := []struct {
		name    string
		k       *Krum
		vs      [][]float64
		dst     []float64
		wantErr error
	}{
		{name: "no vectors", k: NewKrum(0), vs: nil, dst: dst, wantErr: ErrNoVectors},
		{name: "negative f", k: NewKrum(-1), vs: mk(5), dst: dst, wantErr: ErrBadParameter},
		{name: "n too small", k: NewKrum(3), vs: mk(5), dst: dst, wantErr: ErrTooFewWorkers},
		{name: "strict violated", k: &Krum{F: 2, Strict: true}, vs: mk(6), dst: dst, wantErr: ErrTooFewWorkers},
		{name: "dst mismatch", k: NewKrum(0), vs: mk(5), dst: make([]float64, 2), wantErr: ErrDimensionMismatch},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.k.Aggregate(tt.dst, tt.vs)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}

	t.Run("ragged dimensions", func(t *testing.T) {
		vs := mk(5)
		vs[2] = make([]float64, d+1)
		if err := NewKrum(0).Aggregate(dst, vs); !errors.Is(err, ErrDimensionMismatch) {
			t.Errorf("err = %v, want ErrDimensionMismatch", err)
		}
	})

	t.Run("strict satisfied", func(t *testing.T) {
		k := &Krum{F: 1, Strict: true}
		if err := k.Aggregate(dst, mk(5)); err != nil {
			t.Errorf("n=5, f=1 strict should pass: %v", err)
		}
	})
}

func TestKrumDoesNotMutateInputs(t *testing.T) {
	rng := vec.NewRNG(5)
	vs := make([][]float64, 6)
	for i := range vs {
		vs[i] = rng.NewNormal(4, 0, 1)
	}
	orig := vec.CloneAll(vs)
	dst := make([]float64, 4)
	if err := NewKrum(1).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if !vec.ApproxEqual(vs[i], orig[i], 0) {
			t.Fatalf("input vector %d mutated", i)
		}
	}
}

func TestMultiKrumSelectOrdering(t *testing.T) {
	// n=6, f=1 ⇒ neighbours = 3. Construct a tight cluster plus two
	// progressively farther points; multi-krum m=3 must pick three
	// cluster members.
	vs := [][]float64{{0}, {0.1}, {-0.1}, {0.05}, {50}, {100}}
	mk := NewMultiKrum(1, 3)
	sel, err := mk.Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("selected %d vectors, want 3", len(sel))
	}
	for _, i := range sel {
		if i >= 4 {
			t.Errorf("multi-krum selected outlier %d", i)
		}
	}
}

func TestMultiKrumMEqualsOneMatchesKrum(t *testing.T) {
	rng := vec.NewRNG(6)
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(8)
		f := rng.Intn(n - 3)
		d := 1 + rng.Intn(5)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = rng.NewNormal(d, 0, 2)
		}
		a := make([]float64, d)
		b := make([]float64, d)
		if err := NewKrum(f).Aggregate(a, vs); err != nil {
			t.Fatal(err)
		}
		if err := NewMultiKrum(f, 1).Aggregate(b, vs); err != nil {
			t.Fatal(err)
		}
		if !vec.ApproxEqual(a, b, 0) {
			t.Fatalf("trial %d: multikrum(m=1) != krum", trial)
		}
	}
}

func TestMultiKrumMEqualsNMatchesAverage(t *testing.T) {
	rng := vec.NewRNG(7)
	const n, d = 8, 5
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NewNormal(d, 0, 2)
	}
	a := make([]float64, d)
	b := make([]float64, d)
	if err := NewMultiKrum(0, n).Aggregate(a, vs); err != nil {
		t.Fatal(err)
	}
	if err := (Average{}).Aggregate(b, vs); err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(a, b, 1e-12) {
		t.Error("multikrum(m=n) != average")
	}
}

func TestMultiKrumParameterValidation(t *testing.T) {
	vs := [][]float64{{1}, {2}, {3}, {4}, {5}}
	dst := make([]float64, 1)
	if err := NewMultiKrum(0, 0).Aggregate(dst, vs); !errors.Is(err, ErrBadParameter) {
		t.Errorf("m=0: err = %v", err)
	}
	if err := NewMultiKrum(0, 6).Aggregate(dst, vs); !errors.Is(err, ErrBadParameter) {
		t.Errorf("m>n: err = %v", err)
	}
	if NewMultiKrum(1, 2).Name() != "multikrum(m=2)" {
		t.Error("Name mismatch")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Property: Krum is translation-equivariant — Kr(V+t) = Kr(V) + t.
// Distances are translation invariant, so the same worker wins.
func TestKrumTranslationEquivarianceProperty(t *testing.T) {
	f := func(seed uint64, n8, f8 uint8) bool {
		n := int(n8%8) + 5
		fByz := int(f8) % (n - 3)
		const d = 4
		rng := vec.NewRNG(seed)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = rng.NewNormal(d, 0, 2)
		}
		shift := rng.NewNormal(d, 0, 10)
		shifted := make([][]float64, n)
		for i, v := range vs {
			s := vec.Clone(v)
			vec.Axpy(1, shift, s)
			shifted[i] = s
		}
		k := NewKrum(fByz)
		a := make([]float64, d)
		b := make([]float64, d)
		if err := k.Aggregate(a, vs); err != nil {
			return false
		}
		if err := k.Aggregate(b, shifted); err != nil {
			return false
		}
		vec.Axpy(1, shift, a)
		return vec.ApproxEqual(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Krum is positively scale-equivariant — Kr(c·V) = c·Kr(V)
// for c > 0 (all squared distances scale by c², preserving order).
func TestKrumScaleEquivarianceProperty(t *testing.T) {
	f := func(seed uint64, n8 uint8, c8 uint8) bool {
		n := int(n8%8) + 5
		c := 0.1 + float64(c8)/16 // positive scale
		const d, fByz = 3, 1
		rng := vec.NewRNG(seed)
		vs := make([][]float64, n)
		scaled := make([][]float64, n)
		for i := range vs {
			vs[i] = rng.NewNormal(d, 0, 2)
			s := vec.Clone(vs[i])
			vec.Scale(c, s)
			scaled[i] = s
		}
		k := NewKrum(fByz)
		a := make([]float64, d)
		b := make([]float64, d)
		if err := k.Aggregate(a, vs); err != nil {
			return false
		}
		if err := k.Aggregate(b, scaled); err != nil {
			return false
		}
		vec.Scale(c, a)
		return vec.ApproxEqual(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Krum scores are non-negative and zero only for a worker
// whose n−f−2 nearest neighbours coincide with it.
func TestKrumScoresNonNegativeProperty(t *testing.T) {
	f := func(seed uint64, n8, f8 uint8) bool {
		n := int(n8%8) + 5
		fByz := int(f8) % (n - 3)
		rng := vec.NewRNG(seed)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = rng.NewNormal(3, 0, 1)
		}
		scores, err := NewKrum(fByz).Scores(vs)
		if err != nil {
			return false
		}
		for _, s := range scores {
			if s < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
