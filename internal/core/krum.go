package core

import (
	"fmt"

	"krum/internal/vec"
)

// Krum is the paper's choice function Kr (Section 4). For each proposed
// vector V_i it computes the score
//
//	s(i) = Σ_{i→j} ‖V_i − V_j‖²
//
// where the sum ranges over the n − f − 2 vectors closest to V_i, and
// outputs the vector of the worker with the minimal score, breaking ties
// in favour of the smallest worker identifier (footnote 3).
//
// Complexity is O(n²·d) (Lemma 4.1): the pairwise distance matrix
// dominates; score extraction adds O(n²) with the bounded-heap
// selection of package vec.
//
// The zero value declares f = 0 (crash-free operation); construct with
// NewKrum to declare a Byzantine tolerance.
type Krum struct {
	// F is the number of Byzantine workers tolerated. The resilience
	// guarantee of Proposition 4.2 requires n > 2F + 2.
	F int
	// Strict, when set, makes Aggregate fail unless n > 2F + 2 (the
	// resilience precondition) instead of merely requiring the score to
	// be well defined (n ≥ F + 3).
	Strict bool
	// Parallel sets the number of goroutines used for the O(n²·d)
	// distance matrix (0 = serial). Worth enabling for the
	// deep-learning regime d ≫ n; see BenchmarkKrumParallel for the
	// crossover.
	Parallel int
}

// NewKrum returns a Krum rule tolerating f Byzantine workers.
func NewKrum(f int) *Krum { return &Krum{F: f} }

var (
	_ Rule            = (*Krum)(nil)
	_ Selector        = (*Krum)(nil)
	_ ContextRule     = (*Krum)(nil)
	_ ContextSelector = (*Krum)(nil)
)

// Name implements Rule.
func (k *Krum) Name() string { return "krum" }

// validateN checks the rule parameters against the number of inputs.
func (k *Krum) validateN(n int) error {
	if k.F < 0 {
		return fmt.Errorf("f = %d: %w", k.F, ErrBadParameter)
	}
	// The score sums over n − F − 2 neighbours; it must cover at least
	// one vector for the rule to discriminate at all.
	if n-k.F-2 < 1 {
		return fmt.Errorf("n = %d with f = %d leaves no neighbours (need n ≥ f+3): %w", n, k.F, ErrTooFewWorkers)
	}
	if k.Strict && n <= 2*k.F+2 {
		return fmt.Errorf("n = %d does not satisfy n > 2f+2 = %d: %w", n, 2*k.F+2, ErrTooFewWorkers)
	}
	return nil
}

// prepare validates the round's proposals against the rule parameters
// and returns the neighbour count n − F − 2 of the score sum.
func (k *Krum) prepare(ctx *RoundContext) (int, error) {
	vectors := ctx.Vectors()
	n := len(vectors)
	if n == 0 {
		return 0, ErrNoVectors
	}
	if err := k.validateN(n); err != nil {
		return 0, err
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			return 0, fmt.Errorf("vector %d has dimension %d, want %d: %w", i, len(v), d, ErrDimensionMismatch)
		}
	}
	return n - k.F - 2, nil
}

// scoresInto writes the Krum score s(i) of every proposal into scores
// (length n), reusing the context's shared distance matrix and a pooled
// selection heap.
func (k *Krum) scoresInto(ctx *RoundContext, scores []float64) error {
	neighbours, err := k.prepare(ctx)
	if err != nil {
		return err
	}
	n := ctx.N()
	ctx.EnsureParallel(k.Parallel)
	dm := ctx.Distances()
	scratch := vec.GetFloats(neighbours)
	defer vec.PutFloats(scratch)
	for i := 0; i < n; i++ {
		scores[i] = dm.SumKSmallestExcludingSelf(i, neighbours, scratch)
	}
	return nil
}

// Scores returns the Krum score s(i) for every proposed vector. The
// returned slice is freshly allocated.
func (k *Krum) Scores(vectors [][]float64) ([]float64, error) {
	scores := make([]float64, len(vectors))
	if err := k.scoresInto(k.round(vectors), scores); err != nil {
		return nil, err
	}
	return scores, nil
}

// round builds the standalone context used by the plain (non-engine)
// entry points.
func (k *Krum) round(vectors [][]float64) *RoundContext {
	return NewRoundContext(vectors).SetParallel(k.Parallel)
}

// SelectContext implements ContextSelector against a shared round. On
// a screened round the winner comes from the pruned path — the same
// index Argmin over the full score slice would produce (including
// degenerate non-finite inputs, for which the screener falls back to
// evaluating everything), because the bounded selection orders by the
// identical (score, index) comparison and pruning is strict.
func (k *Krum) SelectContext(ctx *RoundContext) ([]int, error) {
	neighbours, err := k.prepare(ctx)
	if err != nil {
		return nil, err
	}
	ctx.EnsureParallel(k.Parallel)
	if scr := ctx.Screener(); scr != nil {
		return scr.SelectKSmallest(neighbours, 1), nil
	}
	scores := vec.GetFloats(ctx.N())
	defer vec.PutFloats(scores)
	if err := k.scoresInto(ctx, scores); err != nil {
		return nil, err
	}
	return []int{vec.Argmin(scores)}, nil
}

// Select implements Selector: it returns the index i* of the score
// minimiser (a single-element slice). Ties resolve to the smallest index
// because Argmin keeps the first minimum.
func (k *Krum) Select(vectors [][]float64) ([]int, error) {
	return k.SelectContext(k.round(vectors))
}

// AggregateContext implements ContextRule: dst = V_{i*} with the score
// pass running over the shared distance matrix.
func (k *Krum) AggregateContext(dst []float64, ctx *RoundContext) error {
	if err := checkInputs(dst, ctx.Vectors()); err != nil {
		return err
	}
	sel, err := k.SelectContext(ctx)
	if err != nil {
		return err
	}
	copy(dst, ctx.Vectors()[sel[0]])
	return nil
}

// Aggregate implements Rule: dst = V_{i*}.
func (k *Krum) Aggregate(dst []float64, vectors [][]float64) error {
	return k.AggregateContext(dst, k.round(vectors))
}

// MultiKrum is the m-Krum variant discussed in the full version of the
// paper (and in the Multi-Krum experiments, Figure 6 there): it averages
// the m proposed vectors with the smallest Krum scores, interpolating
// between Krum (m = 1, maximal resilience) and plain averaging (m = n,
// fastest convergence, no resilience).
type MultiKrum struct {
	// F is the declared number of Byzantine workers.
	F int
	// M is the number of lowest-score vectors averaged; it must satisfy
	// 1 ≤ M ≤ n at aggregation time. The selected set retains the
	// resilience guarantee as long as it cannot be majority-captured,
	// i.e. for M ≤ n − f in the regime n > 2f + 2.
	M int
	// Strict has the same meaning as Krum.Strict.
	Strict bool
}

// NewMultiKrum returns an m-Krum rule tolerating f Byzantine workers.
func NewMultiKrum(f, m int) *MultiKrum { return &MultiKrum{F: f, M: m} }

var (
	_ Rule            = (*MultiKrum)(nil)
	_ Selector        = (*MultiKrum)(nil)
	_ ContextRule     = (*MultiKrum)(nil)
	_ ContextSelector = (*MultiKrum)(nil)
)

// Name implements Rule.
func (mk *MultiKrum) Name() string { return fmt.Sprintf("multikrum(m=%d)", mk.M) }

// SelectContext implements ContextSelector against a shared round. The
// screened path returns the identical (score, index)-ordered M-subset
// as KSmallestIndices over the full score slice.
func (mk *MultiKrum) SelectContext(ctx *RoundContext) ([]int, error) {
	if mk.M < 1 {
		return nil, fmt.Errorf("m = %d (need m ≥ 1): %w", mk.M, ErrBadParameter)
	}
	if mk.M > ctx.N() {
		return nil, fmt.Errorf("m = %d exceeds n = %d: %w", mk.M, ctx.N(), ErrBadParameter)
	}
	inner := Krum{F: mk.F, Strict: mk.Strict}
	neighbours, err := inner.prepare(ctx)
	if err != nil {
		return nil, err
	}
	if scr := ctx.Screener(); scr != nil {
		return scr.SelectKSmallest(neighbours, mk.M), nil
	}
	scores := vec.GetFloats(ctx.N())
	defer vec.PutFloats(scores)
	if err := inner.scoresInto(ctx, scores); err != nil {
		return nil, err
	}
	return vec.KSmallestIndices(scores, -1, mk.M), nil
}

// Select returns the indices of the M smallest-score vectors ordered by
// (score, index).
func (mk *MultiKrum) Select(vectors [][]float64) ([]int, error) {
	return mk.SelectContext(NewRoundContext(vectors))
}

// AggregateContext implements ContextRule: dst = (1/M)·Σ V_i over the
// selected set, scored on the shared distance matrix.
func (mk *MultiKrum) AggregateContext(dst []float64, ctx *RoundContext) error {
	if err := checkInputs(dst, ctx.Vectors()); err != nil {
		return err
	}
	sel, err := mk.SelectContext(ctx)
	if err != nil {
		return err
	}
	vec.Zero(dst)
	for _, i := range sel {
		vec.Axpy(1, ctx.Vectors()[i], dst)
	}
	vec.Scale(1/float64(len(sel)), dst)
	return nil
}

// Aggregate implements Rule: dst = (1/M)·Σ V_i over the selected set.
func (mk *MultiKrum) Aggregate(dst []float64, vectors [][]float64) error {
	return mk.AggregateContext(dst, NewRoundContext(vectors))
}
