package core

import (
	"fmt"

	"krum/internal/vec"
)

// FiniteGuard wraps any Rule with a pre-filter that neutralizes
// non-finite proposals (NaN or ±Inf coordinates) by replacing them with
// zero vectors before aggregation.
//
// Rationale: the paper's model lets a Byzantine worker propose ANY
// vector, including NaN — and a single NaN poisons every Euclidean
// distance it touches, which would make the Krum scores of honest
// workers NaN as well (IEEE comparisons with NaN are false, so the
// argmin degenerates to "first index"). A real parameter server must
// not let one malformed message select the attacker; a zero vector is
// the canonical harmless proposal (a no-op update direction). The
// replacement preserves n, so the wrapped rule's (α, f) guarantee is
// unaffected: a zeroed proposal is just another Byzantine vector, one
// that happens to be benign.
type FiniteGuard struct {
	// Inner is the wrapped rule; it must be non-nil.
	Inner Rule
}

var _ Rule = FiniteGuard{}

// Name implements Rule.
func (g FiniteGuard) Name() string {
	if g.Inner == nil {
		return "finiteguard(nil)"
	}
	return "finiteguard(" + g.Inner.Name() + ")"
}

// Aggregate implements Rule.
func (g FiniteGuard) Aggregate(dst []float64, vectors [][]float64) error {
	if g.Inner == nil {
		return fmt.Errorf("nil inner rule: %w", ErrBadParameter)
	}
	if err := checkInputs(dst, vectors); err != nil {
		return err
	}
	sanitized := vectors
	var replaced []float64 // shared zero vector, allocated lazily
	for i, v := range vectors {
		if vec.AllFinite(v) {
			continue
		}
		if replaced == nil {
			// Copy-on-write: never mutate the caller's slice of
			// proposals, only our view of it.
			sanitized = append([][]float64(nil), vectors...)
			replaced = make([]float64, len(dst))
		}
		sanitized[i] = replaced
	}
	if err := g.Inner.Aggregate(dst, sanitized); err != nil {
		return fmt.Errorf("guarded %s: %w", g.Inner.Name(), err)
	}
	return nil
}

// Select implements Selector when the inner rule does, applying the
// same sanitization so selection histograms stay meaningful under
// malformed input.
func (g FiniteGuard) Select(vectors [][]float64) ([]int, error) {
	sel, ok := g.Inner.(Selector)
	if !ok {
		return nil, fmt.Errorf("inner rule %T is not a Selector: %w", g.Inner, ErrBadParameter)
	}
	sanitized := vectors
	var replaced []float64
	dim := 0
	if len(vectors) > 0 {
		dim = len(vectors[0])
	}
	for i, v := range vectors {
		if vec.AllFinite(v) {
			continue
		}
		if replaced == nil {
			sanitized = append([][]float64(nil), vectors...)
			replaced = make([]float64, dim)
		}
		sanitized[i] = replaced
	}
	return sel.Select(sanitized)
}
