package core

import (
	"fmt"

	"krum/internal/vec"
)

// FiniteGuard wraps any Rule with a pre-filter that neutralizes
// non-finite proposals (NaN or ±Inf coordinates) by replacing them with
// zero vectors before aggregation.
//
// Rationale: the paper's model lets a Byzantine worker propose ANY
// vector, including NaN — and a single NaN poisons every Euclidean
// distance it touches, which would make the Krum scores of honest
// workers NaN as well (IEEE comparisons with NaN are false, so the
// argmin degenerates to "first index"). A real parameter server must
// not let one malformed message select the attacker; a zero vector is
// the canonical harmless proposal (a no-op update direction). The
// replacement preserves n, so the wrapped rule's (α, f) guarantee is
// unaffected: a zeroed proposal is just another Byzantine vector, one
// that happens to be benign.
type FiniteGuard struct {
	// Inner is the wrapped rule; it must be non-nil.
	Inner Rule
}

var (
	_ Rule        = FiniteGuard{}
	_ ContextRule = FiniteGuard{}
)

// sanitize returns the proposals with every non-finite vector replaced
// by a shared zero vector of dimension dim, copying the slice only when
// a replacement is needed (copy-on-write: the caller's slice is never
// mutated). The second result reports whether anything was replaced.
func sanitize(vectors [][]float64, dim int) ([][]float64, bool) {
	sanitized := vectors
	var replaced []float64 // shared zero vector, allocated lazily
	for i, v := range vectors {
		if vec.AllFinite(v) {
			continue
		}
		if replaced == nil {
			sanitized = append([][]float64(nil), vectors...)
			replaced = make([]float64, dim)
		}
		sanitized[i] = replaced
	}
	return sanitized, replaced != nil
}

// Name implements Rule.
func (g FiniteGuard) Name() string {
	if g.Inner == nil {
		return "finiteguard(nil)"
	}
	return "finiteguard(" + g.Inner.Name() + ")"
}

// AggregateContext implements ContextRule: when no proposal needs
// replacement the inner rule runs against the SHARED context (and its
// memoized distance matrix); otherwise a fresh context over the
// sanitized view is used, since the shared matrix no longer describes
// the sanitized proposals.
func (g FiniteGuard) AggregateContext(dst []float64, ctx *RoundContext) error {
	if g.Inner == nil {
		return fmt.Errorf("nil inner rule: %w", ErrBadParameter)
	}
	if err := checkInputs(dst, ctx.Vectors()); err != nil {
		return err
	}
	sanitized, changed := sanitize(ctx.Vectors(), len(dst))
	inner := ctx
	if changed {
		inner = NewRoundContext(sanitized).SetParallel(ctx.parallel)
	}
	if err := AggregateContext(g.Inner, dst, inner); err != nil {
		return fmt.Errorf("guarded %s: %w", g.Inner.Name(), err)
	}
	return nil
}

// Aggregate implements Rule.
func (g FiniteGuard) Aggregate(dst []float64, vectors [][]float64) error {
	return g.AggregateContext(dst, NewRoundContext(vectors))
}

// SelectContext implements ContextSelector semantics when the inner
// rule is a Selector, with the same context reuse as AggregateContext.
func (g FiniteGuard) SelectContext(ctx *RoundContext) ([]int, error) {
	sel, ok := g.Inner.(Selector)
	if !ok {
		return nil, fmt.Errorf("inner rule %T is not a Selector: %w", g.Inner, ErrBadParameter)
	}
	dim := 0
	if ctx.N() > 0 {
		dim = len(ctx.Vectors()[0])
	}
	sanitized, changed := sanitize(ctx.Vectors(), dim)
	inner := ctx
	if changed {
		inner = NewRoundContext(sanitized).SetParallel(ctx.parallel)
	}
	return SelectContext(sel, inner)
}

// Select implements Selector when the inner rule does, applying the
// same sanitization so selection histograms stay meaningful under
// malformed input.
func (g FiniteGuard) Select(vectors [][]float64) ([]int, error) {
	return g.SelectContext(NewRoundContext(vectors))
}
