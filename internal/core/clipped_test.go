package core

import (
	"errors"
	"testing"

	"krum/internal/vec"
)

func TestClippedMeanDefeatsMagnitudeAttack(t *testing.T) {
	rng := vec.NewRNG(1)
	const n, d = 9, 6
	vs := make([][]float64, n)
	for i := 0; i < n-2; i++ {
		vs[i] = rng.NewNormal(d, 1, 0.05)
	}
	// Two huge-magnitude Byzantine proposals pulling the same way (so
	// they cannot cancel in the plain average).
	vs[n-2] = rng.NewNormal(d, 1000, 10)
	vs[n-1] = rng.NewNormal(d, 1500, 10)
	dst := make([]float64, d)
	if err := (ClippedMean{}).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	center := make([]float64, d)
	vec.Fill(center, 1)
	// Clipping bounds each Byzantine contribution to the median norm
	// (≈ √6), so the mean stays within ~2·√d/n of the center.
	if vec.Dist(dst, center) > 1.5 {
		t.Errorf("clipped mean %v dragged to distance %v", dst, vec.Dist(dst, center))
	}
	// Control: the plain average is destroyed.
	avg := make([]float64, d)
	if err := (Average{}).Aggregate(avg, vs); err != nil {
		t.Fatal(err)
	}
	if vec.Dist(avg, center) < 10 {
		t.Error("test not discriminating: average survived the magnitude attack")
	}
}

func TestClippedMeanFailsDirectionalAttack(t *testing.T) {
	// f sign-flipped proposals of honest magnitude still shift the
	// clipped mean — the documented limitation vs Krum.
	rng := vec.NewRNG(2)
	const n, f, d = 9, 3, 6
	g := make([]float64, d)
	vec.Fill(g, 1)
	vs := make([][]float64, n)
	for i := 0; i < n-f; i++ {
		v := vec.Clone(g)
		for j := range v {
			v[j] += 0.05 * rng.NormFloat64()
		}
		vs[i] = v
	}
	for i := n - f; i < n; i++ {
		v := vec.Clone(g)
		vec.Scale(-1, v)
		vs[i] = v
	}
	clipped := make([]float64, d)
	if err := (ClippedMean{}).Aggregate(clipped, vs); err != nil {
		t.Fatal(err)
	}
	krumOut := make([]float64, d)
	if err := NewKrum(f).Aggregate(krumOut, vs); err != nil {
		t.Fatal(err)
	}
	// Krum's output aligns with g; the clipped mean is pulled toward
	// (n−2f)/n·g ≈ g/3, a 3× shrink in the gradient direction.
	if clipDot, krumDot := vec.Dot(clipped, g), vec.Dot(krumOut, g); clipDot > 0.7*krumDot {
		t.Errorf("clipped mean unexpectedly robust: dot %v vs krum %v", clipDot, krumDot)
	}
}

func TestClippedMeanNoOpOnEqualNorms(t *testing.T) {
	vs := [][]float64{{1, 0}, {0, 1}, {-1, 0}}
	dst := make([]float64, 2)
	if err := (ClippedMean{}).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(dst, []float64{0, 1.0 / 3.0}, 1e-12) {
		t.Errorf("clipped mean = %v", dst)
	}
}

func TestClippedMeanZeroVectors(t *testing.T) {
	vs := [][]float64{{0, 0}, {0, 0}, {5, 5}}
	dst := make([]float64, 2)
	if err := (ClippedMean{}).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if !vec.AllFinite(dst) {
		t.Error("zero-norm division leaked")
	}
}

func TestClippedMeanErrors(t *testing.T) {
	if err := (ClippedMean{}).Aggregate(make([]float64, 1), nil); !errors.Is(err, ErrNoVectors) {
		t.Error("empty accepted")
	}
	if (ClippedMean{}).Name() != "clippedmean" {
		t.Error("name")
	}
}
