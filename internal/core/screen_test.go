package core

import (
	"reflect"
	"testing"

	"krum/internal/vec"
)

// screenTestVectors mixes honest unit-variance proposals with a
// Byzantine σ = 200 population — the regime where screening prunes.
func screenTestVectors(n, f, d int, seed uint64) [][]float64 {
	rng := vec.NewRNG(seed)
	vs := make([][]float64, n)
	for i := 0; i < n-f; i++ {
		vs[i] = rng.NewNormal(d, 0, 1)
	}
	for i := n - f; i < n; i++ {
		vs[i] = rng.NewNormal(d, 0, 200)
	}
	return vs
}

// TestScreenedEngineSelectsIdentically: Krum and Multi-Krum through a
// screened engine must return the exact index sequences of the dense
// engine, over clean, Byzantine and tie-degenerate rounds. This is the
// blocking screened-vs-dense equivalence test the -race CI job runs.
func TestScreenedEngineSelectsIdentically(t *testing.T) {
	const n, d = 31, 65
	f := (n - 3) / 2
	rounds := map[string][][]float64{
		"clean":     engineTestVectors(n, d, 5),
		"byzantine": screenTestVectors(n, f, d, 6),
		"all-equal": func() [][]float64 {
			vs := make([][]float64, n)
			base := engineTestVectors(1, d, 7)[0]
			for i := range vs {
				vs[i] = append([]float64(nil), base...)
			}
			return vs
		}(),
	}
	rules := []struct {
		name string
		rule ContextSelector
	}{
		{"krum", NewKrum(f)},
		{"multikrum-1", NewMultiKrum(f, 1)},
		{"multikrum-7", NewMultiKrum(f, 7)},
		{"multikrum-n", NewMultiKrum(f, n)},
	}
	for name, vs := range rounds {
		for _, r := range rules {
			rule := r.rule
			dense := NewEngine(0)
			screened := NewEngine(0).EnableScreening()
			want, err := SelectContext(rule, dense.Round(vs))
			if err != nil {
				t.Fatalf("%s/%s dense: %v", name, r.name, err)
			}
			got, err := SelectContext(rule, screened.Round(vs))
			if err != nil {
				t.Fatalf("%s/%s screened: %v", name, r.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: screened %v, dense %v", name, r.name, got, want)
			}
		}
	}
}

// TestScreenedRoundSharesScreener: selection tracking plus aggregation
// within one screened round must pay the screening pass once — no
// dense matrix is ever built, and the screener is memoized on the
// context.
func TestScreenedRoundSharesScreener(t *testing.T) {
	vs := screenTestVectors(25, 11, 40, 8)
	e := NewEngine(0).EnableScreening()
	ctx := e.Round(vs)
	builds := vec.MatrixBuildCount()
	rule := NewKrum(11)
	sel, err := SelectContext(rule, ctx)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 40)
	if err := AggregateContext(rule, dst, ctx); err != nil {
		t.Fatal(err)
	}
	// One build: the screener's internal shell. A dense round would
	// also build exactly one — the point here is that select+aggregate
	// did not build a second.
	if got := vec.MatrixBuildCount() - builds; got != 1 {
		t.Errorf("screened select+aggregate built %d matrices, want 1", got)
	}
	if !reflect.DeepEqual(dst, vs[sel[0]]) {
		t.Error("aggregate did not copy the selected proposal")
	}
}

// TestScreenedEngineWithCache runs a multi-round partially-changing
// sequence through dense, screened, and screened+cached engines: all
// three must select identically every round, and the screened cache
// must actually reuse (not rebuild) on partially-changed rounds.
func TestScreenedEngineWithCache(t *testing.T) {
	const n, d, f = 21, 48, 9
	rule := NewMultiKrum(f, 5)
	vs := screenTestVectors(n, f, d, 9)
	dense := NewEngine(0)
	screened := NewEngine(0).EnableScreening()
	cached := NewEngine(0).EnableCache().EnableScreening()
	rng := vec.NewRNG(10)
	for round := 0; round < 12; round++ {
		want, err := SelectContext(rule, dense.Round(vs))
		if err != nil {
			t.Fatal(err)
		}
		got, err := SelectContext(rule, screened.Round(vs))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: screened %v, dense %v", round, got, want)
		}
		ctx := cached.Round(vs).SetChanged(cached.Cache().Changed(vs))
		gotC, err := SelectContext(rule, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotC, want) {
			t.Fatalf("round %d: screened+cached %v, dense %v", round, gotC, want)
		}
		// Mutate a few proposals for the next round; every third round
		// replays verbatim.
		vs = vec.CloneAll(vs)
		if round%3 != 2 {
			for c := 0; c < 1+rng.Intn(3); c++ {
				i := rng.Intn(n)
				sigma := 1.0
				if i >= n-f {
					sigma = 200
				}
				vs[i] = rng.NewNormal(d, 0, sigma)
			}
		}
	}
	st := cached.Cache().Stats()
	if st.Builds != 1 {
		t.Errorf("screened cache built %d times, want 1 (stats %+v)", st.Builds, st)
	}
	if st.Reuses == 0 || st.RowUpdates == 0 {
		t.Errorf("screened cache never reused incrementally (stats %+v)", st)
	}
}

// TestBulyanOnScreenedEngine: a rule that needs the full matrix
// (Bulyan reads every active row each iteration) must keep working on
// a screened engine — Distances() completes the screener's matrix —
// and agree exactly with the dense engine.
func TestBulyanOnScreenedEngine(t *testing.T) {
	const n, d, f = 19, 33, 3 // Bulyan needs n ≥ 4f + 3
	vs := screenTestVectors(n, f, d, 11)
	rule := NewBulyan(f)
	want := make([]float64, d)
	if err := AggregateContext(rule, want, NewEngine(0).Round(vs)); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, d)
	if err := AggregateContext(rule, got, NewEngine(0).EnableScreening().Round(vs)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("Bulyan aggregate differs between screened and dense engines")
	}
}

// TestScreenedCacheServesDenseRequest: a cache that has been holding a
// screener must still serve a plain Distances() request (e.g. the
// engine's screening later toggled off) bit-identically to a fresh
// build, via the screener's materialization.
func TestScreenedCacheServesDenseRequest(t *testing.T) {
	const n, d, f = 15, 29, 6
	vs := screenTestVectors(n, f, d, 12)
	e := NewEngine(0).EnableCache().EnableScreening()
	if _, err := SelectContext(NewKrum(f), e.Round(vs)); err != nil {
		t.Fatal(err)
	}
	e.Screened = false
	next := vec.CloneAll(vs)
	next[3] = vec.NewRNG(13).NewNormal(d, 0, 1)
	dm := e.Round(next).Distances()
	fresh := vec.NewDistanceMatrix(next)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dm.At(i, j) != fresh.At(i, j) {
				t.Fatalf("cell (%d,%d): cached-screener %v, fresh %v", i, j, dm.At(i, j), fresh.At(i, j))
			}
		}
	}
}

// TestScreenedEngineSelectsIdenticallyPerTier re-proves the screened ≡
// dense selection equivalence under EVERY available kernel tier: the
// screener's pruning bounds are computed from the same tier kernels as
// the dense matrix, so whichever accumulation order is active, pruning
// must stay exact — a bound derived under one rounding order comparing
// against distances from another would break this.
func TestScreenedEngineSelectsIdenticallyPerTier(t *testing.T) {
	const n, d = 25, 129
	f := (n - 3) / 2
	for _, tier := range vec.AvailableTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			restore, err := vec.SetKernelTier(tier)
			if err != nil {
				t.Fatalf("SetKernelTier(%v): %v", tier, err)
			}
			t.Cleanup(restore)
			vs := screenTestVectors(n, f, d, 9)
			for _, r := range []struct {
				name string
				rule ContextSelector
			}{
				{"krum", NewKrum(f)},
				{"multikrum-5", NewMultiKrum(f, 5)},
			} {
				dense := NewEngine(0)
				screened := NewEngine(0).EnableScreening()
				want, err := SelectContext(r.rule, dense.Round(vs))
				if err != nil {
					t.Fatalf("%s dense: %v", r.name, err)
				}
				got, err := SelectContext(r.rule, screened.Round(vs))
				if err != nil {
					t.Fatalf("%s screened: %v", r.name, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s under %v: screened %v, dense %v", r.name, tier, got, want)
				}
			}
		})
	}
}
