package core

import (
	"errors"
	"math"
	"testing"

	"krum/internal/vec"
)

func TestMinimalDiameterPicksTightSubset(t *testing.T) {
	// 4 tight points, 2 far spread-out points; with f=2 the minimal
	// diameter subset of size 4 is exactly the tight cluster.
	vs := [][]float64{{0}, {0.1}, {0.2}, {0.05}, {50}, {-70}}
	md := NewMinimalDiameter(2)
	sel, err := md.Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	if len(sel) != len(want) {
		t.Fatalf("selected %v", sel)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("selected %v, want %v", sel, want)
		}
	}
	dst := make([]float64, 1)
	if err := md.Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if got, want := dst[0], (0.0+0.1+0.2+0.05)/4; math.Abs(got-want) > 1e-12 {
		t.Errorf("aggregate = %v, want %v", got, want)
	}
}

func TestMinimalDiameterFZero(t *testing.T) {
	vs := [][]float64{{1}, {5}}
	md := NewMinimalDiameter(0)
	dst := make([]float64, 1)
	if err := md.Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 3 {
		t.Errorf("f=0 should average everything: %v", dst[0])
	}
}

func TestMinimalDiameterErrors(t *testing.T) {
	dst := make([]float64, 1)
	md := NewMinimalDiameter(0)
	if err := md.Aggregate(dst, nil); !errors.Is(err, ErrNoVectors) {
		t.Errorf("empty: %v", err)
	}
	if err := NewMinimalDiameter(5).Aggregate(dst, [][]float64{{1}, {2}}); !errors.Is(err, ErrTooFewWorkers) {
		t.Errorf("f≥n: %v", err)
	}
	big := make([][]float64, 40)
	for i := range big {
		big[i] = []float64{float64(i)}
	}
	bounded := &MinimalDiameter{F: 20, MaxSubsets: 1000}
	if err := bounded.Aggregate(dst, big); !errors.Is(err, ErrBadParameter) {
		t.Errorf("subset explosion not caught: %v", err)
	}
}

func TestMinimalDiameterAgreesWithKrumOnCleanCluster(t *testing.T) {
	// With a single tight cluster and distant outliers both rules must
	// derive their output from the cluster.
	rng := vec.NewRNG(13)
	const n, f, d = 9, 2, 3
	center := rng.NewNormal(d, 0, 1)
	vs := clusterWithOutliers(rng, n, f, d, center, 0.01, 300)
	md := NewMinimalDiameter(f)
	sel, err := md.Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range sel {
		if i >= n-f {
			t.Errorf("minimal-diameter subset contains outlier %d", i)
		}
	}
}

func TestNextCombination(t *testing.T) {
	idx := []int{0, 1}
	var all [][2]int
	all = append(all, [2]int{idx[0], idx[1]})
	for nextCombination(idx, 4) {
		all = append(all, [2]int{idx[0], idx[1]})
	}
	want := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(all) != len(want) {
		t.Fatalf("enumerated %v", all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("enumerated %v, want %v", all, want)
		}
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k, want int
	}{
		{n: 5, k: 2, want: 10},
		{n: 10, k: 0, want: 1},
		{n: 10, k: 10, want: 1},
		{n: 10, k: 11, want: 0},
		{n: 6, k: 3, want: 20},
		{n: 52, k: 5, want: 2598960},
	}
	for _, tt := range tests {
		if got := binomial(tt.n, tt.k); got != tt.want {
			t.Errorf("C(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
	if binomial(1000, 500) != -1 {
		t.Error("overflow not detected")
	}
}
