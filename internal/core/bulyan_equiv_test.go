package core

import (
	"fmt"
	"testing"

	"krum/internal/vec"
)

// bulyanSelectSeed is the seed (pre-memoization) formulation of the
// Bulyan selection phase, kept verbatim as the equivalence oracle: run
// Krum over a physically shrinking pool, rebuilding the distance matrix
// from scratch every round — Θ(θ·n²·d).
func bulyanSelectSeed(f int, vectors [][]float64) ([]int, error) {
	n := len(vectors)
	if n == 0 {
		return nil, ErrNoVectors
	}
	if err := (&Bulyan{F: f}).validate(n); err != nil {
		return nil, err
	}
	theta := n - 2*f
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	pool := append([][]float64(nil), vectors...)
	selected := make([]int, 0, theta)
	for len(selected) < theta {
		if len(pool) < 3 {
			selected = append(selected, remaining...)
			selected = selected[:theta]
			break
		}
		innerF := f
		if maxF := len(pool) - 3; innerF > maxF {
			innerF = maxF
		}
		inner := Krum{F: innerF}
		sel, err := inner.Select(pool)
		if err != nil {
			return nil, fmt.Errorf("iterated krum at |pool|=%d: %w", len(pool), err)
		}
		w := sel[0]
		selected = append(selected, remaining[w])
		pool = append(pool[:w], pool[w+1:]...)
		remaining = append(remaining[:w], remaining[w+1:]...)
	}
	return selected, nil
}

// TestBulyanMemoizedMatchesSeedSelection asserts the acceptance
// criterion: the memoized ActiveSet formulation selects the IDENTICAL
// index sequence as the seed pool-rebuilding implementation across
// randomized shapes, scales, and tie-heavy inputs.
func TestBulyanMemoizedMatchesSeedSelection(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		rng := vec.NewRNG(seed)
		for _, f := range []int{0, 1, 2, 3} {
			n := 4*f + 3 + int(seed%4)
			for _, d := range []int{1, 6, 25} {
				vs := make([][]float64, n)
				for i := range vs {
					vs[i] = rng.NewNormal(d, 0, float64(1+seed%5))
				}
				// Duplicate a few vectors to exercise the tie-break
				// path (identical scores must resolve identically).
				if n > 4 {
					vs[n-1] = vec.Clone(vs[0])
					vs[n-2] = vec.Clone(vs[1])
				}
				b := NewBulyan(f)
				got, err := b.Select(vs)
				if err != nil {
					t.Fatalf("seed=%d f=%d n=%d d=%d: memoized: %v", seed, f, n, d, err)
				}
				want, err := bulyanSelectSeed(f, vs)
				if err != nil {
					t.Fatalf("seed=%d f=%d n=%d d=%d: reference: %v", seed, f, n, d, err)
				}
				if len(got) != len(want) {
					t.Fatalf("seed=%d f=%d n=%d d=%d: got %v, want %v", seed, f, n, d, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed=%d f=%d n=%d d=%d: index %d: got %v, want %v", seed, f, n, d, i, got, want)
					}
				}
			}
		}
	}
}

// TestBulyanAggregateBuildsExactlyOneMatrix asserts the memoization
// contract directly: one full Aggregate (selection phase included)
// constructs exactly one distance matrix.
func TestBulyanAggregateBuildsExactlyOneMatrix(t *testing.T) {
	rng := vec.NewRNG(7)
	const n, f, d = 15, 3, 40
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NewNormal(d, 0, 1)
	}
	dst := make([]float64, d)
	before := vec.MatrixBuildCount()
	if err := NewBulyan(f).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if got := vec.MatrixBuildCount() - before; got != 1 {
		t.Fatalf("aggregate built %d distance matrices, want exactly 1", got)
	}
	// The seed formulation built θ of them — make sure the oracle in
	// this test really is the expensive one.
	before = vec.MatrixBuildCount()
	if _, err := bulyanSelectSeed(f, vs); err != nil {
		t.Fatal(err)
	}
	if got, theta := vec.MatrixBuildCount()-before, uint64(n-2*f); got != theta {
		t.Fatalf("seed reference built %d matrices, want θ = %d", got, theta)
	}
}

// BenchmarkBulyanSelectMemoized vs ...SeedReference demonstrates the
// Θ(θ·n²·d) → Θ(n²·d + θ·n²) drop at the ISSUE's operating point.
func benchBulyanVectors(n, d int) [][]float64 {
	rng := vec.NewRNG(42)
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NewNormal(d, 0, 1)
	}
	return vs
}

func BenchmarkBulyanSelectMemoized(b *testing.B) {
	const n, d = 40, 10000
	f := (n - 3) / 4
	vs := benchBulyanVectors(n, d)
	rule := NewBulyan(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rule.Select(vs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulyanSelectSeedReference(b *testing.B) {
	const n, d = 40, 10000
	f := (n - 3) / 4
	vs := benchBulyanVectors(n, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bulyanSelectSeed(f, vs); err != nil {
			b.Fatal(err)
		}
	}
}
