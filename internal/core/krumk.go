package core

import (
	"fmt"

	"krum/internal/vec"
)

// KrumK is the ablation variant of Krum with an explicit neighbour
// count: the score sums the K smallest squared distances instead of the
// paper's n − f − 2. It exists to demonstrate WHY the paper picks
// n − f − 2 (experiment E8 / BenchmarkKrumKAblation):
//
//   - K too large (→ n − 1) degenerates to the medoid criterion, which
//     Figure 2's collusion captures: remote decoys re-enter the sums.
//   - K too small discriminates on too few neighbours, raising the
//     variance of the selection (and K ≤ f lets a clique of f colluders
//     form a mutual-neighbour cluster whose internal distances are
//     zero, winning the argmin).
//   - K = n − f − 2 is the largest count guaranteed to consist of
//     correct vectors' distances only, up to the two slots the proof
//     reserves.
//
// Not part of the paper's API; use Krum for real deployments.
type KrumK struct {
	// K is the neighbour count (1 ≤ K ≤ n−2 at aggregation time).
	K int
}

var (
	_ Rule            = (*KrumK)(nil)
	_ Selector        = (*KrumK)(nil)
	_ ContextRule     = (*KrumK)(nil)
	_ ContextSelector = (*KrumK)(nil)
)

// Name implements Rule.
func (k *KrumK) Name() string { return fmt.Sprintf("krumk(k=%d)", k.K) }

// SelectContext implements ContextSelector against a shared round.
func (k *KrumK) SelectContext(ctx *RoundContext) ([]int, error) {
	vectors := ctx.Vectors()
	n := len(vectors)
	if n == 0 {
		return nil, ErrNoVectors
	}
	if k.K < 1 || k.K > n-2 {
		return nil, fmt.Errorf("k = %d with n = %d (need 1 ≤ k ≤ n−2): %w", k.K, n, ErrBadParameter)
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			return nil, fmt.Errorf("vector %d has dimension %d, want %d: %w", i, len(v), d, ErrDimensionMismatch)
		}
	}
	dm := ctx.Distances()
	scores := vec.GetFloats(n)
	scratch := vec.GetFloats(k.K)
	defer vec.PutFloats(scores)
	defer vec.PutFloats(scratch)
	for i := 0; i < n; i++ {
		scores[i] = dm.SumKSmallestExcludingSelf(i, k.K, scratch)
	}
	return []int{vec.Argmin(scores)}, nil
}

// Select implements Selector.
func (k *KrumK) Select(vectors [][]float64) ([]int, error) {
	return k.SelectContext(NewRoundContext(vectors))
}

// AggregateContext implements ContextRule.
func (k *KrumK) AggregateContext(dst []float64, ctx *RoundContext) error {
	if err := checkInputs(dst, ctx.Vectors()); err != nil {
		return err
	}
	sel, err := k.SelectContext(ctx)
	if err != nil {
		return err
	}
	copy(dst, ctx.Vectors()[sel[0]])
	return nil
}

// Aggregate implements Rule.
func (k *KrumK) Aggregate(dst []float64, vectors [][]float64) error {
	return k.AggregateContext(dst, NewRoundContext(vectors))
}
