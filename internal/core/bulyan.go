package core

import (
	"fmt"
	"sort"

	"krum/internal/vec"
)

// Bulyan is the authors' follow-up defense (El Mhamdi, Guerraoui,
// Rouault — "The Hidden Vulnerability of Distributed Learning in
// Byzantium", ICML 2018), included here as the paper's natural
// extension: Krum alone can be steered by attacks hiding in a single
// coordinate of a high-dimensional vector; Bulyan closes that gap.
//
// It proceeds in two phases:
//
//  1. Selection: run Krum repeatedly, each time moving the winner into
//     a selection set S and removing it from the pool, until
//     |S| = θ = n − 2f.
//  2. Aggregation: output the coordinate-wise β-trimmed mean of S with
//     β = θ − 2f, i.e. for each coordinate average the β values
//     closest to the coordinate median.
//
// The iterated-Krum phase is memoized: the O(n²·d) pairwise distance
// matrix (Lemma 4.1) is built exactly once per aggregation, and each of
// the θ rounds only masks the previous winner out of the score sums
// with a vec.ActiveSet view — Θ(n²·d + θ·n²) total instead of the
// Θ(θ·n²·d) of rebuilding the pool every round. The selected index
// sequence is identical to the naive pool-rebuilding formulation.
//
// It requires n ≥ 4f + 3. Construct with NewBulyan.
type Bulyan struct {
	// F is the number of Byzantine workers tolerated.
	F int
}

// NewBulyan returns a Bulyan rule tolerating f Byzantine workers.
func NewBulyan(f int) *Bulyan { return &Bulyan{F: f} }

var (
	_ Rule            = (*Bulyan)(nil)
	_ Selector        = (*Bulyan)(nil)
	_ ContextRule     = (*Bulyan)(nil)
	_ ContextSelector = (*Bulyan)(nil)
)

// Name implements Rule.
func (b *Bulyan) Name() string { return "bulyan" }

// validate checks the n ≥ 4f + 3 requirement.
func (b *Bulyan) validate(n int) error {
	if b.F < 0 {
		return fmt.Errorf("f = %d: %w", b.F, ErrBadParameter)
	}
	if n < 4*b.F+3 {
		return fmt.Errorf("n = %d does not satisfy n ≥ 4f+3 = %d: %w", n, 4*b.F+3, ErrTooFewWorkers)
	}
	return nil
}

// SelectContext implements ContextSelector: the θ = n − 2f indices
// chosen by the memoized iterated-Krum phase, in selection order. The
// context's shared distance matrix is the only one ever built.
func (b *Bulyan) SelectContext(ctx *RoundContext) ([]int, error) {
	vectors := ctx.Vectors()
	n := len(vectors)
	if n == 0 {
		return nil, ErrNoVectors
	}
	if err := b.validate(n); err != nil {
		return nil, err
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			return nil, fmt.Errorf("vector %d has dimension %d, want %d: %w", i, len(v), d, ErrDimensionMismatch)
		}
	}
	theta := n - 2*b.F
	active := vec.NewActiveSet(ctx.Distances())
	scratch := vec.GetFloats(n)
	defer vec.PutFloats(scratch)
	selected := make([]int, 0, theta)
	for len(selected) < theta {
		m := active.Count()
		// Krum over the masked pool. The Krum score needs
		// m − f' − 2 ≥ 1 neighbours; near the end of the loop the pool
		// drops to 2f + 1 elements, so the effective tolerance f' is
		// clamped to m − 3. This is sound: winners already moved to S
		// only shrink the pool, never raise the number of Byzantine
		// proposals left in it.
		if m < 3 {
			// With one or two candidates the Krum score cannot
			// discriminate at all; take them in id order (the paper's
			// deterministic tie-break).
			selected = active.AppendAlive(selected)
			selected = selected[:theta]
			break
		}
		innerF := b.F
		if maxF := m - 3; innerF > maxF {
			innerF = maxF
		}
		neighbours := m - innerF - 2
		// Argmin over the active scores; iterating active indices in
		// ascending order with strict improvement reproduces the
		// smallest-id tie-break of footnote 3.
		best, bestScore := -1, 0.0
		for i := 0; i < n; i++ {
			if !active.Alive(i) {
				continue
			}
			s := active.SumKSmallest(i, neighbours, scratch)
			if best < 0 || s < bestScore {
				best, bestScore = i, s
			}
		}
		selected = append(selected, best)
		active.Deactivate(best)
	}
	return selected, nil
}

// Select implements Selector: the θ = n − 2f indices chosen by the
// iterated-Krum phase, in selection order.
func (b *Bulyan) Select(vectors [][]float64) ([]int, error) {
	return b.SelectContext(NewRoundContext(vectors))
}

// AggregateContext implements ContextRule: the coordinate-wise trimmed
// mean of the set selected on the shared distance matrix.
func (b *Bulyan) AggregateContext(dst []float64, ctx *RoundContext) error {
	vectors := ctx.Vectors()
	if err := checkInputs(dst, vectors); err != nil {
		return err
	}
	selected, err := b.SelectContext(ctx)
	if err != nil {
		return err
	}
	theta := len(selected)
	beta := theta - 2*b.F
	if beta < 1 {
		// Unreachable given validate(), kept as a defensive guard.
		return fmt.Errorf("β = %d: %w", beta, ErrBadParameter)
	}
	type entry struct {
		val  float64
		dist float64
	}
	column := make([]entry, theta)
	vals := vec.GetFloats(theta)
	defer vec.PutFloats(vals)
	for j := range dst {
		for i, idx := range selected {
			vals[i] = vectors[idx][j]
		}
		med := medianOf(vals)
		for i, v := range vals {
			d := v - med
			if d < 0 {
				d = -d
			}
			column[i] = entry{val: v, dist: d}
		}
		sort.Slice(column, func(a, c int) bool { return column[a].dist < column[c].dist })
		var s float64
		for i := 0; i < beta; i++ {
			s += column[i].val
		}
		dst[j] = s / float64(beta)
	}
	return nil
}

// Aggregate implements Rule: the coordinate-wise trimmed mean of the
// selected set around the median.
func (b *Bulyan) Aggregate(dst []float64, vectors [][]float64) error {
	return b.AggregateContext(dst, NewRoundContext(vectors))
}

// medianOf returns the median of vals; it scrambles the slice order.
func medianOf(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return 0.5 * (vals[n/2-1] + vals[n/2])
}
