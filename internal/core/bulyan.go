package core

import (
	"fmt"
	"sort"
)

// Bulyan is the authors' follow-up defense (El Mhamdi, Guerraoui,
// Rouault — "The Hidden Vulnerability of Distributed Learning in
// Byzantium", ICML 2018), included here as the paper's natural
// extension: Krum alone can be steered by attacks hiding in a single
// coordinate of a high-dimensional vector; Bulyan closes that gap.
//
// It proceeds in two phases:
//
//  1. Selection: run Krum repeatedly, each time moving the winner into
//     a selection set S and removing it from the pool, until
//     |S| = θ = n − 2f.
//  2. Aggregation: output the coordinate-wise β-trimmed mean of S with
//     β = θ − 2f, i.e. for each coordinate average the β values
//     closest to the coordinate median.
//
// It requires n ≥ 4f + 3. Construct with NewBulyan.
type Bulyan struct {
	// F is the number of Byzantine workers tolerated.
	F int
}

// NewBulyan returns a Bulyan rule tolerating f Byzantine workers.
func NewBulyan(f int) *Bulyan { return &Bulyan{F: f} }

var (
	_ Rule     = (*Bulyan)(nil)
	_ Selector = (*Bulyan)(nil)
)

// Name implements Rule.
func (b *Bulyan) Name() string { return "bulyan" }

// validate checks the n ≥ 4f + 3 requirement.
func (b *Bulyan) validate(n int) error {
	if b.F < 0 {
		return fmt.Errorf("f = %d: %w", b.F, ErrBadParameter)
	}
	if n < 4*b.F+3 {
		return fmt.Errorf("n = %d does not satisfy n ≥ 4f+3 = %d: %w", n, 4*b.F+3, ErrTooFewWorkers)
	}
	return nil
}

// Select implements Selector: the θ = n − 2f indices chosen by the
// iterated-Krum phase, in selection order.
func (b *Bulyan) Select(vectors [][]float64) ([]int, error) {
	n := len(vectors)
	if n == 0 {
		return nil, ErrNoVectors
	}
	if err := b.validate(n); err != nil {
		return nil, err
	}
	theta := n - 2*b.F
	// remaining maps pool positions to original indices.
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	pool := append([][]float64(nil), vectors...)
	selected := make([]int, 0, theta)
	for len(selected) < theta {
		// Krum over the shrinking pool. The Krum score needs
		// |pool| − f' − 2 ≥ 1 neighbours; near the end of the loop the
		// pool drops to 2f + 1 elements, so the effective tolerance f'
		// is clamped to |pool| − 3. This is sound: winners already
		// moved to S only shrink the pool, never raise the number of
		// Byzantine proposals left in it.
		if len(pool) < 3 {
			// With one or two candidates the Krum score cannot
			// discriminate at all; take them in id order (the paper's
			// deterministic tie-break).
			selected = append(selected, remaining...)
			selected = selected[:theta]
			break
		}
		innerF := b.F
		if maxF := len(pool) - 3; innerF > maxF {
			innerF = maxF
		}
		inner := Krum{F: innerF}
		sel, err := inner.Select(pool)
		if err != nil {
			return nil, fmt.Errorf("iterated krum at |pool|=%d: %w", len(pool), err)
		}
		w := sel[0]
		selected = append(selected, remaining[w])
		pool = append(pool[:w], pool[w+1:]...)
		remaining = append(remaining[:w], remaining[w+1:]...)
	}
	return selected, nil
}

// Aggregate implements Rule: the coordinate-wise trimmed mean of the
// selected set around the median.
func (b *Bulyan) Aggregate(dst []float64, vectors [][]float64) error {
	if err := checkInputs(dst, vectors); err != nil {
		return err
	}
	selected, err := b.Select(vectors)
	if err != nil {
		return err
	}
	theta := len(selected)
	beta := theta - 2*b.F
	if beta < 1 {
		// Unreachable given validate(), kept as a defensive guard.
		return fmt.Errorf("β = %d: %w", beta, ErrBadParameter)
	}
	type entry struct {
		val  float64
		dist float64
	}
	column := make([]entry, theta)
	vals := make([]float64, theta)
	for j := range dst {
		for i, idx := range selected {
			vals[i] = vectors[idx][j]
		}
		med := medianOf(vals)
		for i, v := range vals {
			d := v - med
			if d < 0 {
				d = -d
			}
			column[i] = entry{val: v, dist: d}
		}
		sort.Slice(column, func(a, c int) bool { return column[a].dist < column[c].dist })
		var s float64
		for i := 0; i < beta; i++ {
			s += column[i].val
		}
		dst[j] = s / float64(beta)
	}
	return nil
}

// medianOf returns the median of vals; it scrambles the slice order.
func medianOf(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return 0.5 * (vals[n/2-1] + vals[n/2])
}
