package core

import (
	"fmt"
	"math"
	"sort"

	"krum/internal/vec"
)

// Average is the classical choice function used by virtually all
// distributed SGD deployments the paper cites: the barycenter
// F_bary = (1/n)·Σ V_i. By Lemma 3.1 it tolerates zero Byzantine
// workers. The zero value is ready to use.
type Average struct{}

var _ Rule = Average{}

// Name implements Rule.
func (Average) Name() string { return "average" }

// Aggregate implements Rule.
func (Average) Aggregate(dst []float64, vectors [][]float64) error {
	if err := checkInputs(dst, vectors); err != nil {
		return err
	}
	vec.Mean(dst, vectors)
	return nil
}

// Linear is the general linear choice function of Lemma 3.1:
// F_lin = Σ λ_i·V_i with non-zero coefficients. A single Byzantine
// worker that knows the λ_i's and the other proposals can force the
// output to any target vector (see attack.LinearTakeover). Construct
// with NewLinear.
type Linear struct {
	weights []float64
}

// NewLinear returns a linear rule with the given coefficients. All
// coefficients must be non-zero, matching the lemma's hypothesis.
func NewLinear(weights []float64) (*Linear, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("empty weights: %w", ErrBadParameter)
	}
	for i, w := range weights {
		if w == 0 {
			return nil, fmt.Errorf("weight %d is zero: %w", i, ErrBadParameter)
		}
	}
	return &Linear{weights: vec.Clone(weights)}, nil
}

var _ Rule = (*Linear)(nil)

// Name implements Rule.
func (*Linear) Name() string { return "linear" }

// Weights returns a copy of the coefficients (copy-at-boundary per the
// style guides, so callers cannot mutate internal state).
func (l *Linear) Weights() []float64 { return vec.Clone(l.weights) }

// Aggregate implements Rule.
func (l *Linear) Aggregate(dst []float64, vectors [][]float64) error {
	if err := checkInputs(dst, vectors); err != nil {
		return err
	}
	if len(vectors) != len(l.weights) {
		return fmt.Errorf("got %d vectors for %d weights: %w", len(vectors), len(l.weights), ErrDimensionMismatch)
	}
	vec.WeightedSum(dst, l.weights, vectors)
	return nil
}

// Medoid is the distance-based choice function the paper discusses (and
// dismisses) in Section 4: it selects the proposed vector U minimizing
// Σ_i ‖U − V_i‖² over ALL proposals. It tolerates exactly one Byzantine
// worker: per Figure 2, two colluding attackers defeat it (see
// attack.MedoidCollusion). It is implemented here as the baseline for
// experiment E2. The zero value is ready to use.
type Medoid struct{}

var (
	_ Rule            = Medoid{}
	_ Selector        = Medoid{}
	_ ContextRule     = Medoid{}
	_ ContextSelector = Medoid{}
)

// Name implements Rule.
func (Medoid) Name() string { return "medoid" }

// SelectContext implements ContextSelector against a shared round.
func (Medoid) SelectContext(ctx *RoundContext) ([]int, error) {
	vectors := ctx.Vectors()
	n := len(vectors)
	if n == 0 {
		return nil, ErrNoVectors
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			return nil, fmt.Errorf("vector %d has dimension %d, want %d: %w", i, len(v), d, ErrDimensionMismatch)
		}
	}
	dm := ctx.Distances()
	scores := vec.GetFloats(n)
	defer vec.PutFloats(scores)
	for i := 0; i < n; i++ {
		scores[i] = vec.Sum(dm.Row(i))
	}
	return []int{vec.Argmin(scores)}, nil
}

// Select returns the index of the sum-of-squared-distance minimiser,
// ties broken by smallest index.
func (m Medoid) Select(vectors [][]float64) ([]int, error) {
	return m.SelectContext(NewRoundContext(vectors))
}

// AggregateContext implements ContextRule.
func (m Medoid) AggregateContext(dst []float64, ctx *RoundContext) error {
	if err := checkInputs(dst, ctx.Vectors()); err != nil {
		return err
	}
	sel, err := m.SelectContext(ctx)
	if err != nil {
		return err
	}
	copy(dst, ctx.Vectors()[sel[0]])
	return nil
}

// Aggregate implements Rule.
func (m Medoid) Aggregate(dst []float64, vectors [][]float64) error {
	return m.AggregateContext(dst, NewRoundContext(vectors))
}

// CoordMedian is the coordinate-wise median, a classical robust
// baseline from the follow-up literature. Included for the derived
// selection-quality table (T1) and ablations; it is NOT one of the
// paper's rules but shares the (α, f) verifier.
type CoordMedian struct{}

var _ Rule = CoordMedian{}

// Name implements Rule.
func (CoordMedian) Name() string { return "coordmedian" }

// Aggregate implements Rule.
func (CoordMedian) Aggregate(dst []float64, vectors [][]float64) error {
	if err := checkInputs(dst, vectors); err != nil {
		return err
	}
	n := len(vectors)
	column := make([]float64, n)
	for j := range dst {
		for i, v := range vectors {
			column[i] = v[j]
		}
		sort.Float64s(column)
		if n%2 == 1 {
			dst[j] = column[n/2]
		} else {
			dst[j] = 0.5 * (column[n/2-1] + column[n/2])
		}
	}
	return nil
}

// TrimmedMean is the coordinate-wise β-trimmed mean: for each coordinate
// it discards the Trim largest and Trim smallest values and averages the
// rest. Another classical robust baseline used in the ablation benches.
type TrimmedMean struct {
	// Trim is the number of values removed at EACH end per coordinate;
	// it must satisfy 2·Trim < n.
	Trim int
}

var _ Rule = TrimmedMean{}

// Name implements Rule.
func (t TrimmedMean) Name() string { return fmt.Sprintf("trimmedmean(b=%d)", t.Trim) }

// Aggregate implements Rule.
func (t TrimmedMean) Aggregate(dst []float64, vectors [][]float64) error {
	if err := checkInputs(dst, vectors); err != nil {
		return err
	}
	n := len(vectors)
	if t.Trim < 0 || 2*t.Trim >= n {
		return fmt.Errorf("trim = %d with n = %d (need 2·trim < n): %w", t.Trim, n, ErrBadParameter)
	}
	column := make([]float64, n)
	kept := float64(n - 2*t.Trim)
	for j := range dst {
		for i, v := range vectors {
			column[i] = v[j]
		}
		sort.Float64s(column)
		var s float64
		for _, x := range column[t.Trim : n-t.Trim] {
			s += x
		}
		dst[j] = s / kept
	}
	return nil
}

// GeoMedian approximates the geometric median (the point minimizing the
// sum of UNSQUARED distances) with Weiszfeld's algorithm. The paper's
// resilience proof for Krum is "reminiscent of the geometric median
// technique" (Section 4); this rule lets the benches compare against it
// directly. Unlike Krum it does not output one of the proposals.
type GeoMedian struct {
	// MaxIter bounds Weiszfeld iterations; 0 means the default (100).
	MaxIter int
	// Tol is the convergence threshold on the step norm; 0 means the
	// default (1e-8).
	Tol float64
}

var _ Rule = GeoMedian{}

// Name implements Rule.
func (GeoMedian) Name() string { return "geomedian" }

// Aggregate implements Rule.
func (g GeoMedian) Aggregate(dst []float64, vectors [][]float64) error {
	if err := checkInputs(dst, vectors); err != nil {
		return err
	}
	maxIter := g.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	tol := g.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	// Start from the barycenter.
	vec.Mean(dst, vectors)
	next := make([]float64, len(dst))
	for iter := 0; iter < maxIter; iter++ {
		var wsum float64
		vec.Zero(next)
		exactHit := false
		for _, v := range vectors {
			dist := math.Sqrt(vec.Dist2(dst, v))
			if dist < 1e-12 {
				// Weiszfeld is undefined exactly at a data point; the
				// data point itself is then a valid output.
				copy(dst, v)
				exactHit = true
				break
			}
			w := 1 / dist
			wsum += w
			vec.Axpy(w, v, next)
		}
		if exactHit {
			return nil
		}
		vec.Scale(1/wsum, next)
		moved := vec.Dist2(dst, next)
		copy(dst, next)
		if moved < tol*tol {
			return nil
		}
	}
	return nil
}
