package core

import (
	"errors"
	"strings"
	"testing"

	"krum/internal/vec"
)

// TestParseRuleRoundTrip: a rule built from a spec reports a Name()
// that is itself a valid spec reconstructing an identically-named rule.
func TestParseRuleRoundTrip(t *testing.T) {
	ctx := SpecContext{N: 15, F: 3}
	cases := []struct {
		spec string
		name string
	}{
		{"krum", "krum"},
		{"krum(f=2)", "krum"},
		{"multikrum(f=2,m=5)", "multikrum(m=5)"},
		{"multikrum", "multikrum(m=12)"}, // m defaults to n − f
		{"krumk(k=4)", "krumk(k=4)"},
		{"average", "average"},
		{"medoid", "medoid"},
		{"coordmedian", "coordmedian"},
		{"trimmedmean(b=2)", "trimmedmean(b=2)"},
		{"trimmedmean", "trimmedmean(b=3)"}, // b defaults to f
		{"geomedian", "geomedian"},
		{"minimaldiameter", "minimaldiameter"},
		{"bulyan(f=1)", "bulyan"},
		{"clippedmean", "clippedmean"},
	}
	for _, tc := range cases {
		rule, err := ParseRuleIn(ctx, tc.spec)
		if err != nil {
			t.Errorf("ParseRuleIn(%q): %v", tc.spec, err)
			continue
		}
		if rule.Name() != tc.name {
			t.Errorf("ParseRuleIn(%q).Name() = %q, want %q", tc.spec, rule.Name(), tc.name)
			continue
		}
		// Round trip: the reported name parses back to the same name.
		again, err := ParseRuleIn(ctx, rule.Name())
		if err != nil {
			t.Errorf("round trip ParseRuleIn(%q): %v", rule.Name(), err)
			continue
		}
		if again.Name() != rule.Name() {
			t.Errorf("round trip of %q: %q != %q", tc.spec, again.Name(), rule.Name())
		}
	}
}

func TestParseRuleUnknownName(t *testing.T) {
	_, err := ParseRule("nosuchrule")
	if !errors.Is(err, ErrBadParameter) {
		t.Fatalf("unknown rule error = %v, want ErrBadParameter", err)
	}
	if !strings.Contains(err.Error(), "krum") {
		t.Errorf("error should list registered names, got: %v", err)
	}
}

func TestParseRuleMalformedSpecs(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"krum(",
		"krum(f=2",
		"krum)",
		"krum(f)",
		"krum(f=)",
		"krum(=2)",
		"(f=2)",
		"krum(f=2,f=3)",    // duplicate key
		"krum(f=x)",        // non-integer value
		"krum(zz=3)",       // unknown parameter
		"krumk",            // k is required
		"multikrum",        // m required without context
		"multikrum(m=0)",   // out of range
		"geomedian(tol=x)", // non-numeric float
	}
	for _, spec := range bad {
		if _, err := ParseRule(spec); !errors.Is(err, ErrBadParameter) {
			t.Errorf("ParseRule(%q) = %v, want wrapped ErrBadParameter", spec, err)
		}
	}
}

// TestRegistryCaseStable: names and parameter keys are normalized, so
// lookups are stable under case changes.
func TestRegistryCaseStable(t *testing.T) {
	for _, spec := range []string{"krum", "Krum", "KRUM", "Krum(F=2)"} {
		rule, err := ParseRule(spec)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", spec, err)
		}
		if rule.Name() != "krum" {
			t.Errorf("ParseRule(%q).Name() = %q, want krum", spec, rule.Name())
		}
	}
	if _, ok := Lookup("MultiKrum"); !ok {
		t.Error("Lookup is not case-stable")
	}
	for _, name := range Names() {
		if name != strings.ToLower(name) {
			t.Errorf("registered name %q is not lower case", name)
		}
	}
}

func TestParseRuleContextDefaults(t *testing.T) {
	rule, err := ParseRuleIn(SpecContext{N: 15, F: 3}, "krum")
	if err != nil {
		t.Fatal(err)
	}
	if k := rule.(*Krum); k.F != 3 {
		t.Errorf("krum F = %d, want 3 from context", k.F)
	}
	rule, err = ParseRuleIn(SpecContext{N: 15, F: 3}, "multikrum")
	if err != nil {
		t.Fatal(err)
	}
	if mk := rule.(*MultiKrum); mk.F != 3 || mk.M != 12 {
		t.Errorf("multikrum = F %d M %d, want F 3 M 12", mk.F, mk.M)
	}
	// Bulyan's default f clamps to what the cluster supports (n ≥ 4f+3).
	rule, err = ParseRuleIn(SpecContext{N: 9, F: 3}, "bulyan")
	if err != nil {
		t.Fatal(err)
	}
	if b := rule.(*Bulyan); b.F != 1 {
		t.Errorf("bulyan default F = %d, want clamp to 1 at n = 9", b.F)
	}
	// An explicit f is taken verbatim, no clamping.
	rule, err = ParseRuleIn(SpecContext{N: 9, F: 3}, "bulyan(f=3)")
	if err != nil {
		t.Fatal(err)
	}
	if b := rule.(*Bulyan); b.F != 3 {
		t.Errorf("bulyan explicit F = %d, want 3", b.F)
	}
}

// TestEveryRegisteredRuleAggregates smoke-tests the whole registry at a
// common operating point.
func TestEveryRegisteredRuleAggregates(t *testing.T) {
	const n, d = 15, 6
	ctx := SpecContext{N: n, F: 3}
	rng := vec.NewRNG(5)
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NewNormal(d, 0, 1)
	}
	dst := make([]float64, d)
	for _, name := range Names() {
		spec := name
		if name == "krumk" {
			spec = "krumk(k=3)" // k has no default by design
		}
		rule, err := ParseRuleIn(ctx, spec)
		if err != nil {
			t.Errorf("ParseRuleIn(%q): %v", spec, err)
			continue
		}
		if err := rule.Aggregate(dst, vs); err != nil {
			t.Errorf("%s.Aggregate: %v", spec, err)
		}
		if !vec.AllFinite(dst) {
			t.Errorf("%s produced non-finite output", spec)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	expectPanic := func(name string, f Factory) {
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) did not panic", name)
			}
		}()
		Register(name, f)
	}
	expectPanic("", Factory{New: func(SpecContext, Args) (Rule, error) { return Average{}, nil }})
	expectPanic("nilconstructor", Factory{})
	expectPanic("krum", Factory{New: func(SpecContext, Args) (Rule, error) { return Average{}, nil }}) // duplicate
}

func TestUsageListsEveryRule(t *testing.T) {
	usage := Usage()
	for _, name := range Names() {
		if !strings.Contains(usage, name) {
			t.Errorf("Usage() omits %q: %s", name, usage)
		}
	}
	// Parameterized rules advertise their parameters.
	if !strings.Contains(usage, "multikrum(f,m)") {
		t.Errorf("Usage() should document multikrum parameters: %s", usage)
	}
}

func TestSplitSpecs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"krum", []string{"krum"}},
		{"krum,average", []string{"krum", "average"}},
		{"krum,multikrum(f=2,m=3)", []string{"krum", "multikrum(f=2,m=3)"}},
		{" geomedian(maxiter=5,tol=0.1) , bulyan ", []string{"geomedian(maxiter=5,tol=0.1)", "bulyan"}},
		{"", nil},
		{",,", nil},
	}
	for _, tc := range cases {
		got := SplitSpecs(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("SplitSpecs(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("SplitSpecs(%q) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}
