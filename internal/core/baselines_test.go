package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"krum/internal/vec"
)

func TestAverage(t *testing.T) {
	vs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	dst := make([]float64, 2)
	if err := (Average{}).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(dst, []float64{3, 4}, 1e-15) {
		t.Errorf("Average = %v", dst)
	}
	if (Average{}).Name() != "average" {
		t.Error("name mismatch")
	}
	if err := (Average{}).Aggregate(dst, nil); !errors.Is(err, ErrNoVectors) {
		t.Error("empty input accepted")
	}
}

func TestLinearValidation(t *testing.T) {
	if _, err := NewLinear(nil); !errors.Is(err, ErrBadParameter) {
		t.Error("empty weights accepted")
	}
	if _, err := NewLinear([]float64{1, 0, 2}); !errors.Is(err, ErrBadParameter) {
		t.Error("zero weight accepted")
	}
	l, err := NewLinear([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 1)
	if err := l.Aggregate(dst, [][]float64{{2}, {4}}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 3 {
		t.Errorf("linear = %v, want 3", dst[0])
	}
	// Wrong count of vectors.
	if err := l.Aggregate(dst, [][]float64{{2}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("vector count mismatch: err = %v", err)
	}
	// Weights() must return a copy.
	w := l.Weights()
	w[0] = 99
	if l.Weights()[0] != 0.5 {
		t.Error("Weights() exposes internal state")
	}
}

// Lemma 3.1 witness at the rule level: with the other proposals known, a
// single Byzantine worker makes any linear rule output exactly U.
func TestLinearSingleByzantineForcesAnyOutput(t *testing.T) {
	rng := vec.NewRNG(10)
	const n, d = 7, 6
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 0.1 + rng.Float64() // non-zero
	}
	l, err := NewLinear(weights)
	if err != nil {
		t.Fatal(err)
	}
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NewNormal(d, 0, 3)
	}
	target := rng.NewNormal(d, 5, 1) // arbitrary U
	// Byzantine worker n-1 solves for its proposal:
	// V_b = (U − Σ_{i≠b} λ_i V_i) / λ_b.
	b := n - 1
	forced := vec.Clone(target)
	for i := 0; i < n-1; i++ {
		vec.Axpy(-weights[i], vs[i], forced)
	}
	vec.Scale(1/weights[b], forced)
	vs[b] = forced

	dst := make([]float64, d)
	if err := l.Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(dst, target, 1e-9) {
		t.Errorf("single Byzantine failed to force U: got %v, want %v", dst, target)
	}
}

func TestMedoidSelectsCentralVector(t *testing.T) {
	vs := [][]float64{{0}, {1}, {2}, {100}}
	sel, err := Medoid{}.Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	// Sums of squared distances: v0:1+4+10000, v1:1+1+9801, v2:4+1+9604, v3 huge.
	if sel[0] != 2 {
		t.Errorf("medoid = %d, want 2", sel[0])
	}
	dst := make([]float64, 1)
	if err := (Medoid{}).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 2 {
		t.Errorf("aggregate = %v", dst)
	}
}

// The Figure 2 scenario at rule level: f−1 decoys drag the barycenter so
// the remaining Byzantine vector (placed at the shifted barycenter) wins
// the medoid criterion, while Krum still picks a correct vector.
func TestMedoidCollusionVsKrum(t *testing.T) {
	rng := vec.NewRNG(11)
	const n, f, d = 11, 2, 5
	center := rng.NewNormal(d, 0, 1)
	vs := make([][]float64, n)
	for i := 0; i < n-f; i++ {
		v := vec.Clone(center)
		for j := range v {
			v[j] += 0.01 * rng.NormFloat64()
		}
		vs[i] = v
	}
	// f−1 = 1 decoy very far away.
	decoy := vec.Clone(center)
	for j := range decoy {
		decoy[j] += 1e4
	}
	vs[n-f] = decoy
	// Last Byzantine proposes the barycenter of everything proposed so
	// far (correct + decoy + itself-at-barycenter fixed point): solving
	// b = (Σ others + b)/n gives b = Σ others/(n−1).
	bary := make([]float64, d)
	for i := 0; i < n-1; i++ {
		vec.Axpy(1, vs[i], bary)
	}
	vec.Scale(1/float64(n-1), bary)
	vs[n-1] = bary

	medSel, err := Medoid{}.Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	if medSel[0] != n-1 {
		t.Errorf("medoid selected %d; the collusion should force the barycenter proposal %d", medSel[0], n-1)
	}
	krumSel, err := NewKrum(f).Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	if krumSel[0] >= n-f {
		t.Errorf("krum selected Byzantine vector %d", krumSel[0])
	}
}

func TestCoordMedian(t *testing.T) {
	tests := []struct {
		name string
		vs   [][]float64
		want []float64
	}{
		{name: "odd", vs: [][]float64{{1, 9}, {2, 8}, {3, 7}}, want: []float64{2, 8}},
		{name: "even", vs: [][]float64{{1, 0}, {3, 0}, {5, 2}, {7, 2}}, want: []float64{4, 1}},
		{name: "outlier immune", vs: [][]float64{{1}, {2}, {1e9}}, want: []float64{2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dst := make([]float64, len(tt.want))
			if err := (CoordMedian{}).Aggregate(dst, tt.vs); err != nil {
				t.Fatal(err)
			}
			if !vec.ApproxEqual(dst, tt.want, 1e-12) {
				t.Errorf("median = %v, want %v", dst, tt.want)
			}
		})
	}
}

func TestTrimmedMean(t *testing.T) {
	vs := [][]float64{{0}, {1}, {2}, {3}, {1000}}
	dst := make([]float64, 1)
	if err := (TrimmedMean{Trim: 1}).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 2 {
		t.Errorf("trimmed mean = %v, want 2", dst[0])
	}
	if err := (TrimmedMean{Trim: 3}).Aggregate(dst, vs); !errors.Is(err, ErrBadParameter) {
		t.Errorf("2·trim ≥ n accepted: %v", err)
	}
	if err := (TrimmedMean{Trim: -1}).Aggregate(dst, vs); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative trim accepted: %v", err)
	}
	// Trim=0 equals average.
	if err := (TrimmedMean{}).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if math.Abs(dst[0]-201.2) > 1e-9 {
		t.Errorf("trim=0 = %v, want 201.2", dst[0])
	}
}

func TestGeoMedianCollinear(t *testing.T) {
	// Geometric median of {0, 1, 10} on a line is the middle point 1.
	vs := [][]float64{{0}, {1}, {10}}
	dst := make([]float64, 1)
	if err := (GeoMedian{}).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if math.Abs(dst[0]-1) > 1e-3 {
		t.Errorf("geomedian = %v, want ≈1", dst[0])
	}
}

func TestGeoMedianRobustToOutlier(t *testing.T) {
	rng := vec.NewRNG(12)
	const d = 4
	vs := make([][]float64, 9)
	for i := 0; i < 8; i++ {
		vs[i] = rng.NewNormal(d, 0, 0.1)
	}
	out := make([]float64, d)
	vec.Fill(out, 1e6)
	vs[8] = out
	dst := make([]float64, d)
	if err := (GeoMedian{}).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if vec.Norm(dst) > 1 {
		t.Errorf("geomedian dragged to %v by one outlier", vec.Norm(dst))
	}
}

func TestGeoMedianExactDataPoint(t *testing.T) {
	// All identical: Weiszfeld would divide by zero without the
	// exact-hit branch.
	vs := [][]float64{{2, 2}, {2, 2}, {2, 2}}
	dst := make([]float64, 2)
	if err := (GeoMedian{}).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(dst, []float64{2, 2}, 1e-9) {
		t.Errorf("geomedian = %v, want [2 2]", dst)
	}
}

// Property: for symmetric inputs the medoid, coordinate median, trimmed
// mean and average all agree (they must — every robust rule is unbiased
// without attackers on symmetric data).
func TestRulesAgreeOnTwoSymmetricPointsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vec.NewRNG(seed)
		const d = 3
		a := rng.NewNormal(d, 0, 1)
		b := make([]float64, d)
		for i := range b {
			b[i] = -a[i]
		}
		vs := [][]float64{a, b}
		avg := make([]float64, d)
		med := make([]float64, d)
		if err := (Average{}).Aggregate(avg, vs); err != nil {
			return false
		}
		if err := (CoordMedian{}).Aggregate(med, vs); err != nil {
			return false
		}
		return vec.ApproxEqual(avg, med, 1e-12) && vec.ApproxEqual(avg, make([]float64, d), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
