package core

import "testing"

// FuzzParseRule drives the rule-spec parser with arbitrary input. Two
// properties must hold on EVERY input: the parser never panics (it
// rejects with a wrapped ErrBadParameter instead), and any accepted
// spec round-trips — the constructed rule's Name() is itself a valid
// spec whose reparse yields the same Name (the stability contract the
// experiment tables and JSON scenario files rely on).
func FuzzParseRule(f *testing.F) {
	for _, seed := range []string{
		"krum", "krum(f=2)", "multikrum(f=2,m=5)", "krumk(k=3)",
		"average", "medoid", "coordmedian", "trimmedmean(b=1)",
		"geomedian(maxiter=50,tol=1e-9)", "minimaldiameter(f=2,maxsubsets=100)",
		"bulyan(f=2)", "clippedmean",
		"KRUM(F=2)", " krum ( f = 2 ) ", "krum()",
		"", "(", ")", "krum(f=)", "krum(=2)", "krum(f=2", "krum)f=2(",
		"nosuchrule", "krum(f=2,f=3)", "krum(zzz=1)", "multikrum",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		rule, err := ParseRule(s) // must not panic, whatever s is
		if err != nil {
			return
		}
		name := rule.Name()
		back, err := ParseRule(name)
		if err != nil {
			t.Fatalf("accepted spec %q produced Name %q that does not reparse: %v", s, name, err)
		}
		if got := back.Name(); got != name {
			t.Fatalf("Name round-trip unstable for spec %q: %q -> %q", s, name, got)
		}
	})
}

// FuzzParseRuleIn covers the contextual parser: cluster-shape defaults
// must never turn a non-panicking parse into a panic, and acceptance
// under a context still implies Name round-trip stability under the
// same context.
func FuzzParseRuleIn(f *testing.F) {
	f.Add("krum", 15, 3)
	f.Add("multikrum", 9, 2)
	f.Add("bulyan", 11, 2)
	f.Add("trimmedmean", 0, -1)
	f.Add("krum(f=4)", -5, 100)
	f.Fuzz(func(t *testing.T, s string, n, fByz int) {
		ctx := SpecContext{N: n, F: fByz}
		rule, err := ParseRuleIn(ctx, s)
		if err != nil {
			return
		}
		name := rule.Name()
		back, err := ParseRuleIn(ctx, name)
		if err != nil {
			t.Fatalf("accepted spec %q (ctx %+v) produced Name %q that does not reparse: %v", s, ctx, name, err)
		}
		if got := back.Name(); got != name {
			t.Fatalf("Name round-trip unstable for spec %q (ctx %+v): %q -> %q", s, ctx, name, got)
		}
	})
}
