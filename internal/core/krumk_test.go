package core

import (
	"errors"
	"testing"

	"krum/internal/vec"
)

func TestKrumKMatchesKrumAtPaperValue(t *testing.T) {
	rng := vec.NewRNG(1)
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(8)
		f := rng.Intn(n - 4)
		d := 1 + rng.Intn(6)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = rng.NewNormal(d, 0, 2)
		}
		a := make([]float64, d)
		b := make([]float64, d)
		if err := NewKrum(f).Aggregate(a, vs); err != nil {
			t.Fatal(err)
		}
		kk := &KrumK{K: n - f - 2}
		if err := kk.Aggregate(b, vs); err != nil {
			t.Fatal(err)
		}
		if !vec.ApproxEqual(a, b, 0) {
			t.Fatalf("trial %d: KrumK(n-f-2) != Krum(f)", trial)
		}
	}
}

func TestKrumKValidation(t *testing.T) {
	vs := [][]float64{{1}, {2}, {3}, {4}}
	dst := make([]float64, 1)
	if err := (&KrumK{K: 0}).Aggregate(dst, vs); !errors.Is(err, ErrBadParameter) {
		t.Error("k=0 accepted")
	}
	if err := (&KrumK{K: 3}).Aggregate(dst, vs); !errors.Is(err, ErrBadParameter) {
		t.Error("k=n-1 accepted")
	}
	if _, err := (&KrumK{K: 1}).Select(nil); !errors.Is(err, ErrNoVectors) {
		t.Error("empty accepted")
	}
	if err := (&KrumK{K: 1}).Aggregate(dst, [][]float64{{1}, {2, 3}, {4}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("ragged accepted")
	}
}

// The design-choice demonstration: with K near n−1 the rule inherits the
// medoid's Figure 2 vulnerability; at the paper's K it does not.
func TestKrumKLargeKCapturedByCollusion(t *testing.T) {
	rng := vec.NewRNG(2)
	const n, f, d = 13, 3, 8
	center := rng.NewNormal(d, 0, 1)
	correct := make([][]float64, n-f)
	for i := range correct {
		v := vec.Clone(center)
		for j := range v {
			v[j] += 0.05 * rng.NormFloat64()
		}
		correct[i] = v
	}
	// Figure 2 collusion geometry: f−1 decoys, one dragged barycenter.
	decoyOffset := 1e4
	proposals := append([][]float64(nil), correct...)
	for i := 0; i < f-1; i++ {
		v := vec.Clone(center)
		for j := range v {
			v[j] += decoyOffset
		}
		proposals = append(proposals, v)
	}
	bary := make([]float64, d)
	for _, v := range proposals {
		vec.Axpy(1, v, bary)
	}
	vec.Scale(1/float64(n-1), bary)
	proposals = append(proposals, bary)

	// K = n−2 (max allowed): every score sums all other vectors —
	// exactly the medoid criterion, captured by the collusion.
	large := &KrumK{K: n - 2}
	sel, err := large.Select(proposals)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != n-1 {
		t.Errorf("K=n−2 selected %d; expected the collusion to capture it (medoid behaviour)", sel[0])
	}

	// Paper's K: immune.
	paper := &KrumK{K: n - f - 2}
	sel, err = paper.Select(proposals)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] >= n-f {
		t.Errorf("paper K selected Byzantine %d", sel[0])
	}
}

// K ≤ f hazard: f identical colluders form a zero-distance clique that
// wins the argmin when the score only counts K ≤ f−1 neighbours.
func TestKrumKSmallKCliqueCapture(t *testing.T) {
	rng := vec.NewRNG(3)
	const n, f, d = 11, 4, 6
	center := rng.NewNormal(d, 0, 1)
	proposals := make([][]float64, 0, n)
	for i := 0; i < n-f; i++ {
		v := vec.Clone(center)
		for j := range v {
			v[j] += 0.1 * rng.NormFloat64()
		}
		proposals = append(proposals, v)
	}
	// f colluders at an arbitrary remote point, all EXACTLY equal.
	lie := vec.Clone(center)
	for j := range lie {
		lie[j] += 50
	}
	for i := 0; i < f; i++ {
		proposals = append(proposals, vec.Clone(lie))
	}

	clique := &KrumK{K: f - 1} // each colluder's K nearest are its clones: score 0
	sel, err := clique.Select(proposals)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] < n-f {
		t.Errorf("small-K clique attack failed to capture (selected %d) — test geometry broken", sel[0])
	}

	paper := &KrumK{K: n - f - 2} // = 5 > f−1: scores must include real distances
	sel, err = paper.Select(proposals)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] >= n-f {
		t.Errorf("paper K captured by clique: selected %d", sel[0])
	}
}
