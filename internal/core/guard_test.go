package core

import (
	"errors"
	"math"
	"testing"

	"krum/internal/vec"
)

func TestFiniteGuardNeutralizesNaNProposal(t *testing.T) {
	rng := vec.NewRNG(1)
	const n, f, d = 9, 2, 6
	center := rng.NewNormal(d, 5, 0.1)
	vs := make([][]float64, n)
	for i := 0; i < n-f; i++ {
		v := vec.Clone(center)
		for j := range v {
			v[j] += 0.05 * rng.NormFloat64()
		}
		vs[i] = v
	}
	// Byzantine slot 1: all NaN. Byzantine slot 2: one Inf coordinate.
	nan := make([]float64, d)
	vec.Fill(nan, math.NaN())
	vs[n-2] = nan
	inf := vec.Clone(center)
	inf[3] = math.Inf(1)
	vs[n-1] = inf

	// Unguarded Krum degenerates: NaN distances poison every honest
	// score, and the NaN-vector can win the argmin.
	raw := NewKrum(f)
	rawSel, err := raw.Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	// (Documenting the hazard rather than asserting a specific index:
	// scores involving NaN make the comparison semantics fragile.)
	_ = rawSel

	guarded := FiniteGuard{Inner: NewKrum(f)}
	dst := make([]float64, d)
	if err := guarded.Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if !vec.AllFinite(dst) {
		t.Fatal("guarded output is non-finite")
	}
	if vec.Dist(dst, center) > 1 {
		t.Errorf("guarded output %v far from center", dst)
	}
	sel, err := guarded.Select(vs)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] >= n-f {
		// Selecting a sanitized (zero) Byzantine slot is allowed only
		// if zero is closer to the cluster than honest proposals —
		// impossible here since the cluster sits at distance 5·√6.
		t.Errorf("guard selected sanitized Byzantine slot %d", sel[0])
	}
}

func TestFiniteGuardPassthroughWhenClean(t *testing.T) {
	rng := vec.NewRNG(2)
	const n, d = 7, 4
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NewNormal(d, 0, 1)
	}
	a := make([]float64, d)
	b := make([]float64, d)
	if err := NewKrum(1).Aggregate(a, vs); err != nil {
		t.Fatal(err)
	}
	if err := (FiniteGuard{Inner: NewKrum(1)}).Aggregate(b, vs); err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(a, b, 0) {
		t.Error("guard changed clean aggregation")
	}
}

func TestFiniteGuardDoesNotMutateCallerSlices(t *testing.T) {
	nan := []float64{math.NaN(), 1}
	vs := [][]float64{{1, 1}, {1.1, 0.9}, {0.9, 1.1}, {1, 0.95}, nan}
	dst := make([]float64, 2)
	if err := (FiniteGuard{Inner: Average{}}).Aggregate(dst, vs); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(vs[4][0]) {
		t.Error("guard mutated the caller's proposal")
	}
	if !vec.AllFinite(dst) {
		t.Error("guarded average non-finite")
	}
}

func TestFiniteGuardErrors(t *testing.T) {
	dst := make([]float64, 1)
	if err := (FiniteGuard{}).Aggregate(dst, [][]float64{{1}}); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil inner: %v", err)
	}
	if err := (FiniteGuard{Inner: Average{}}).Aggregate(dst, nil); !errors.Is(err, ErrNoVectors) {
		t.Errorf("empty input: %v", err)
	}
	if _, err := (FiniteGuard{Inner: Average{}}).Select([][]float64{{1}}); !errors.Is(err, ErrBadParameter) {
		t.Errorf("non-selector inner: %v", err)
	}
	if got := (FiniteGuard{Inner: NewKrum(1)}).Name(); got != "finiteguard(krum)" {
		t.Errorf("name %q", got)
	}
	if got := (FiniteGuard{}).Name(); got != "finiteguard(nil)" {
		t.Errorf("nil name %q", got)
	}
}

func TestKrumParallelMatchesSerial(t *testing.T) {
	rng := vec.NewRNG(3)
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(10)
		d := 1 + rng.Intn(50)
		f := rng.Intn(n - 3)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = rng.NewNormal(d, 0, 2)
		}
		serial := Krum{F: f}
		parallel := Krum{F: f, Parallel: 4}
		s1, err := serial.Scores(vs)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := parallel.Scores(vs)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.ApproxEqual(s1, s2, 0) {
			t.Fatalf("trial %d: parallel scores differ", trial)
		}
	}
}
