package core

import (
	"errors"
	"math"
	"testing"

	"krum/internal/vec"
)

func TestEtaValuesAndAsymptotics(t *testing.T) {
	// f = 0: inner = n, η = √(2n).
	for _, n := range []int{3, 10, 100} {
		got, err := Eta(n, 0)
		if err != nil {
			t.Fatalf("Eta(%d, 0): %v", n, err)
		}
		if want := math.Sqrt(2 * float64(n)); math.Abs(got-want) > 1e-12 {
			t.Errorf("Eta(%d, 0) = %v, want %v", n, got, want)
		}
	}
	// Monotone in f for fixed n.
	prev := 0.0
	for f := 0; 2*f+2 < 31; f++ {
		got, err := Eta(31, f)
		if err != nil {
			t.Fatalf("Eta(31, %d): %v", f, err)
		}
		if got <= prev {
			t.Errorf("Eta(31, %d) = %v not increasing (prev %v)", f, got, prev)
		}
		prev = got
	}
	// f = O(1): η/√n bounded. f = n/4: η/n bounded.
	r1 := make([]float64, 0, 4)
	r2 := make([]float64, 0, 4)
	for _, n := range []int{40, 80, 160, 320} {
		e1, err := Eta(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		r1 = append(r1, e1/math.Sqrt(float64(n)))
		e2, err := Eta(n, n/4)
		if err != nil {
			t.Fatal(err)
		}
		r2 = append(r2, e2/float64(n))
	}
	for i := 1; i < len(r1); i++ {
		if r1[i] > r1[0]*1.5 {
			t.Errorf("η(n,1)/√n grows: %v", r1)
		}
		if r2[i] > r2[0]*1.5 {
			t.Errorf("η(n,n/4)/n grows: %v", r2)
		}
	}
}

func TestEtaErrors(t *testing.T) {
	if _, err := Eta(5, -1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative f: %v", err)
	}
	if _, err := Eta(6, 2); !errors.Is(err, ErrTooFewWorkers) {
		t.Errorf("2f+2 ≥ n accepted: %v", err)
	}
	if _, err := Eta(7, 2); err != nil {
		t.Errorf("2f+2 < n rejected: %v", err)
	}
}

// largeNoise returns an adversary proposing huge random vectors.
func largeNoise(magnitude float64, seed uint64, f int) Adversary {
	rng := vec.NewRNG(seed)
	return func(g []float64, correct [][]float64) [][]float64 {
		out := make([][]float64, f)
		for i := range out {
			out[i] = rng.NewNormal(len(g), magnitude, 1)
		}
		return out
	}
}

func TestKrumSatisfiesResilienceAtOperatingPoint(t *testing.T) {
	const n, f, d = 15, 3, 10
	g := make([]float64, d)
	vec.Fill(g, 1) // ‖g‖ = √10
	// Choose σ small enough that η√d·σ < ‖g‖: η(15,3) = √(2·(12+(3·10+9·11)/7))
	// = √(2·30.43) ≈ 7.80; √d = √10 ⇒ need σ < √10/(7.80·√10) ≈ 0.128.
	rep, err := VerifyResilience(ResilienceConfig{
		Rule:      NewKrum(f),
		N:         n,
		F:         f,
		Gradient:  g,
		Sigma:     0.05,
		Adversary: largeNoise(100, 99, f),
		Trials:    1500,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SinAlpha >= 1 {
		t.Fatalf("test misconfigured: sin α = %v ≥ 1", rep.SinAlpha)
	}
	if !rep.ConditionI {
		t.Errorf("condition (i) failed: ⟨EF,g⟩ = %v < bound %v", rep.DotProduct, rep.Bound)
	}
	if !rep.ConditionII {
		t.Errorf("condition (ii) failed: moment ratios %v", rep.MomentRatio)
	}
}

func TestAverageViolatesResilienceUnderAttack(t *testing.T) {
	const n, f, d = 15, 3, 10
	g := make([]float64, d)
	vec.Fill(g, 1)
	// Attack pushes the mean far in the -g direction: averaging must
	// fail condition (i).
	adv := func(g []float64, correct [][]float64) [][]float64 {
		out := make([][]float64, f)
		for i := range out {
			v := vec.Clone(g)
			vec.Scale(-100, v)
			out[i] = v
		}
		return out
	}
	rep, err := VerifyResilience(ResilienceConfig{
		Rule:      Average{},
		N:         n,
		F:         f,
		Gradient:  g,
		Sigma:     0.05,
		Adversary: adv,
		Trials:    800,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConditionI {
		t.Errorf("averaging passed condition (i) under a directed attack: dot = %v, bound = %v",
			rep.DotProduct, rep.Bound)
	}
}

func TestResilienceNoAdversaryFillsCorrect(t *testing.T) {
	const n, f, d = 9, 2, 4
	g := make([]float64, d)
	vec.Fill(g, 2)
	rep, err := VerifyResilience(ResilienceConfig{
		Rule:     NewKrum(f),
		N:        n,
		F:        f,
		Gradient: g,
		Sigma:    0.01,
		Trials:   400,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ConditionI || !rep.ConditionII {
		t.Errorf("benign run failed resilience: %+v", rep)
	}
	// ⟨EF, g⟩ should be very close to ‖g‖² = 16 without attackers.
	if math.Abs(rep.DotProduct-16) > 0.5 {
		t.Errorf("benign dot = %v, want ≈16", rep.DotProduct)
	}
}

func TestVerifyResilienceValidation(t *testing.T) {
	g := []float64{1}
	base := ResilienceConfig{Rule: NewKrum(1), N: 7, F: 1, Gradient: g, Sigma: 0.1, Trials: 10}
	tests := []struct {
		name   string
		mutate func(*ResilienceConfig)
		want   error
	}{
		{name: "nil rule", mutate: func(c *ResilienceConfig) { c.Rule = nil }, want: ErrBadParameter},
		{name: "negative f", mutate: func(c *ResilienceConfig) { c.F = -1 }, want: ErrBadParameter},
		{name: "f > n", mutate: func(c *ResilienceConfig) { c.F = 99 }, want: ErrBadParameter},
		{name: "empty gradient", mutate: func(c *ResilienceConfig) { c.Gradient = nil }, want: ErrBadParameter},
		{name: "zero gradient", mutate: func(c *ResilienceConfig) { c.Gradient = []float64{0} }, want: ErrBadParameter},
		{name: "2f+2 ≥ n", mutate: func(c *ResilienceConfig) { c.N = 4 }, want: ErrTooFewWorkers},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := VerifyResilience(cfg); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}

	t.Run("adversary count mismatch", func(t *testing.T) {
		cfg := base
		cfg.Adversary = func(g []float64, correct [][]float64) [][]float64 { return nil }
		if _, err := VerifyResilience(cfg); !errors.Is(err, ErrBadParameter) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestResilienceSinAlphaGrowsWithSigma(t *testing.T) {
	const n, f, d = 15, 3, 10
	g := make([]float64, d)
	vec.Fill(g, 1)
	var prev float64
	for _, sigma := range []float64{0.01, 0.05, 0.1} {
		rep, err := VerifyResilience(ResilienceConfig{
			Rule: NewKrum(f), N: n, F: f, Gradient: g, Sigma: sigma, Trials: 50, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.SinAlpha <= prev {
			t.Errorf("sin α not increasing with σ: %v after %v", rep.SinAlpha, prev)
		}
		prev = rep.SinAlpha
	}
}
