package core

import (
	"fmt"
	"math"

	"krum/internal/stats"
	"krum/internal/vec"
)

// Eta returns the constant η(n, f) of Proposition 4.2 controlling the
// resilience angle sin α = η(n,f)·√d·σ/‖g‖. The closed form comes from
// the full version of the paper (arXiv:1703.02757, Proposition 1):
//
//	η(n, f) = √( 2·( n − f + (f·(n−f−2) + f²·(n−f−1)) / (n−2f−2) ) )
//
// which matches the brief announcement's asymptotics: O(√n) for
// f = O(1) and O(n) for f = Θ(n). It returns an error unless 2f+2 < n.
func Eta(n, f int) (float64, error) {
	if f < 0 {
		return 0, fmt.Errorf("f = %d: %w", f, ErrBadParameter)
	}
	if 2*f+2 >= n {
		return 0, fmt.Errorf("n = %d does not satisfy n > 2f+2 = %d: %w", n, 2*f+2, ErrTooFewWorkers)
	}
	nf := float64(n)
	ff := float64(f)
	inner := nf - ff + (ff*(nf-ff-2)+ff*ff*(nf-ff-1))/(nf-2*ff-2)
	return math.Sqrt(2 * inner), nil
}

// Adversary produces the f Byzantine proposals for one resilience trial.
// It receives the true gradient g and the correct workers' proposals
// (the Section 2 omniscient threat model: Byzantine workers see
// everything and may collude) and returns exactly f vectors of the same
// dimension. Implementations must not mutate correct.
type Adversary func(g []float64, correct [][]float64) [][]float64

// ResilienceConfig parameterizes one Monte-Carlo verification of
// Definition 3.2 for a choice function.
type ResilienceConfig struct {
	// Rule is the choice function F under test.
	Rule Rule
	// N and F are the worker counts (total, Byzantine).
	N, F int
	// Gradient is the true gradient g (EG = g).
	Gradient []float64
	// Sigma is the per-coordinate standard deviation of the correct
	// estimator G = g + N(0, σ²·I), so that E‖G−g‖² = d·σ² exactly as
	// in Proposition 4.2.
	Sigma float64
	// Adversary generates the Byzantine proposals; nil means "no
	// attack" (Byzantine slots are filled with correct proposals).
	Adversary Adversary
	// Trials is the number of Monte-Carlo rounds; 0 means 2000.
	Trials int
	// Seed makes the verification deterministic.
	Seed uint64
}

// ResilienceReport is the outcome of a Monte-Carlo check of
// Definition 3.2.
type ResilienceReport struct {
	// DotProduct is the estimated ⟨E F, g⟩.
	DotProduct float64
	// Bound is (1 − sin α)·‖g‖², the right-hand side of condition (i),
	// with sin α computed from η(n, f), √d·σ and ‖g‖ per
	// Proposition 4.2 (clamped to 1 when the precondition
	// η√d·σ < ‖g‖ fails).
	Bound float64
	// SinAlpha is η(n,f)·√d·σ/‖g‖ (possibly ≥ 1 when the precondition
	// fails; then the proposition promises nothing).
	SinAlpha float64
	// Eta is η(n, f).
	Eta float64
	// ConditionI reports ⟨E F, g⟩ ≥ (1 − sin α)·‖g‖² > 0.
	ConditionI bool
	// MomentF[r-2] estimates E‖F‖^r for r = 2, 3, 4.
	MomentF [3]float64
	// MomentG[r-2] estimates E‖G‖^r for r = 2, 3, 4 from the correct
	// proposals.
	MomentG [3]float64
	// MomentRatio[r-2] is MomentF[r]/MomentG[r]; condition (ii) asks
	// for the F-moments to be bounded by a linear combination of
	// products of G-moments — a bounded ratio is the practical
	// Monte-Carlo proxy reported here.
	MomentRatio [3]float64
	// ConditionII reports MomentRatio ≤ the verifier's constant bound
	// for all r (see VerifyResilience).
	ConditionII bool
	// Trials is the number of rounds actually run.
	Trials int
}

// momentRatioBound is the constant against which the empirical moment
// ratios are compared. Condition (ii) only requires SOME linear
// combination with constant coefficients; a generous fixed constant
// keeps the check meaningful (it fails spectacularly for averaging under
// a large-norm attack where the ratio grows with the attack magnitude)
// without trying to recover the proof's exact combinatorial constants.
const momentRatioBound = 100.0

// VerifyResilience estimates the two conditions of Definition 3.2 for
// cfg.Rule by Monte-Carlo simulation and reports the measurements. A
// report with both conditions true is evidence (not proof) of
// (α, f)-Byzantine resilience at the configured operating point; the
// benches sweep σ to exhibit where the precondition of Proposition 4.2
// breaks.
func VerifyResilience(cfg ResilienceConfig) (*ResilienceReport, error) {
	if cfg.Rule == nil {
		return nil, fmt.Errorf("nil rule: %w", ErrBadParameter)
	}
	if cfg.F < 0 || cfg.F > cfg.N {
		return nil, fmt.Errorf("f = %d with n = %d: %w", cfg.F, cfg.N, ErrBadParameter)
	}
	if len(cfg.Gradient) == 0 {
		return nil, fmt.Errorf("empty gradient: %w", ErrBadParameter)
	}
	g := cfg.Gradient
	d := len(g)
	normG2 := vec.Norm2(g)
	if normG2 == 0 {
		return nil, fmt.Errorf("zero gradient: %w", ErrBadParameter)
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 2000
	}

	eta, err := Eta(cfg.N, cfg.F)
	if err != nil {
		return nil, err
	}
	sinAlpha := eta * math.Sqrt(float64(d)) * cfg.Sigma / math.Sqrt(normG2)

	rng := vec.NewRNG(cfg.Seed)
	meanF := stats.NewVecMean(d)
	var momF, momG [3]stats.Moments

	nCorrect := cfg.N - cfg.F
	correct := make([][]float64, nCorrect)
	for i := range correct {
		correct[i] = make([]float64, d)
	}
	proposals := make([][]float64, cfg.N)
	out := make([]float64, d)

	for t := 0; t < trials; t++ {
		for _, c := range correct {
			for j := range c {
				c[j] = g[j] + cfg.Sigma*rng.NormFloat64()
			}
			nrm := vec.Norm(c)
			for r := 2; r <= 4; r++ {
				momG[r-2].Add(math.Pow(nrm, float64(r)))
			}
		}
		var byz [][]float64
		if cfg.Adversary != nil && cfg.F > 0 {
			byz = cfg.Adversary(g, correct)
			if len(byz) != cfg.F {
				return nil, fmt.Errorf("adversary returned %d vectors, want %d: %w", len(byz), cfg.F, ErrBadParameter)
			}
		}
		// Byzantine workers occupy the LAST f slots; Definition 3.2
		// quantifies over all index placements, and every rule in this
		// package is permutation-invariant up to tie-breaking (a
		// property the unit tests check), so one placement suffices.
		for i := 0; i < nCorrect; i++ {
			proposals[i] = correct[i]
		}
		for i := 0; i < cfg.F; i++ {
			if byz != nil {
				proposals[nCorrect+i] = byz[i]
			} else {
				proposals[nCorrect+i] = correct[i%nCorrect]
			}
		}
		if err := cfg.Rule.Aggregate(out, proposals); err != nil {
			return nil, fmt.Errorf("aggregating trial %d: %w", t, err)
		}
		meanF.Add(out)
		nrm := vec.Norm(out)
		for r := 2; r <= 4; r++ {
			momF[r-2].Add(math.Pow(nrm, float64(r)))
		}
	}

	rep := &ResilienceReport{
		SinAlpha: sinAlpha,
		Eta:      eta,
		Trials:   trials,
	}
	ef := meanF.Mean(nil)
	rep.DotProduct = vec.Dot(ef, g)
	effSin := math.Min(sinAlpha, 1)
	rep.Bound = (1 - effSin) * normG2
	rep.ConditionI = rep.DotProduct >= rep.Bound && rep.Bound > 0

	rep.ConditionII = true
	for r := 0; r < 3; r++ {
		// Moments accumulators already hold ‖·‖^r samples, so the first
		// raw moment of the accumulator IS E‖·‖^r.
		rep.MomentF[r] = momF[r].Raw(1)
		rep.MomentG[r] = momG[r].Raw(1)
		if rep.MomentG[r] > 0 {
			rep.MomentRatio[r] = rep.MomentF[r] / rep.MomentG[r]
		} else {
			rep.MomentRatio[r] = math.Inf(1)
		}
		if rep.MomentRatio[r] > momentRatioBound {
			rep.ConditionII = false
		}
	}
	return rep, nil
}
