package spec

import (
	"errors"
	"strings"
	"testing"
)

var errTest = errors.New("test: bad parameter")

type widget struct {
	Size  int
	Ratio float64
	Base  string
}

type testCtx struct{ DefSize int }

func newTestRegistry(t *testing.T) *Registry[*widget, testCtx] {
	t.Helper()
	r := NewRegistry[*widget, testCtx]("widget", errTest)
	r.Register("box", Factory[*widget, testCtx]{
		Params: []string{"size", "ratio", "base"},
		Doc:    "a box",
		New: func(ctx testCtx, a Args) (*widget, error) {
			size, err := a.Int("size", ctx.DefSize)
			if err != nil {
				return nil, err
			}
			ratio, err := a.Float("ratio", 1)
			if err != nil {
				return nil, err
			}
			return &widget{Size: size, Ratio: ratio, Base: a.String("base", "")}, nil
		},
	})
	r.Register("dot", Factory[*widget, testCtx]{
		Doc: "parameterless",
		New: func(testCtx, Args) (*widget, error) { return &widget{}, nil },
	})
	return r
}

func TestRegistryParse(t *testing.T) {
	r := newTestRegistry(t)
	w, err := r.Parse(testCtx{DefSize: 7}, "box(ratio=0.5)")
	if err != nil {
		t.Fatal(err)
	}
	if w.Size != 7 || w.Ratio != 0.5 {
		t.Errorf("widget = %+v", w)
	}
	// Case-insensitive names and keys.
	w, err = r.Parse(testCtx{}, "BOX(Size=3)")
	if err != nil {
		t.Fatal(err)
	}
	if w.Size != 3 {
		t.Errorf("widget = %+v", w)
	}
}

func TestRegistryParseErrorsWrapSentinel(t *testing.T) {
	r := newTestRegistry(t)
	bad := []string{
		"", "   ", "nosuch", "box(", "box(size=2", "box)", "box(size)",
		"box(size=)", "box(=2)", "(size=2)", "box(size=2,size=3)",
		"box(size=x)", "box(ratio=x)", "box(zz=3)", "box space(size=2)",
	}
	for _, s := range bad {
		if _, err := r.Parse(testCtx{}, s); !errors.Is(err, errTest) {
			t.Errorf("Parse(%q) = %v, want wrapped sentinel", s, err)
		}
	}
	// Unknown-name errors enumerate the registered set.
	_, err := r.Parse(testCtx{}, "nosuch")
	if err == nil || !strings.Contains(err.Error(), "box") {
		t.Errorf("unknown-name error should list names: %v", err)
	}
	// Factory errors that do not wrap the sentinel get it added.
	r.Register("fail", Factory[*widget, testCtx]{
		New: func(testCtx, Args) (*widget, error) { return nil, errors.New("boom") },
	})
	if _, err := r.Parse(testCtx{}, "fail"); !errors.Is(err, errTest) {
		t.Errorf("factory error not wrapped: %v", err)
	}
}

func TestNestedSpecValues(t *testing.T) {
	r := newTestRegistry(t)
	w, err := r.Parse(testCtx{}, "box(base=box(size=2,ratio=0.5),size=4)")
	if err != nil {
		t.Fatal(err)
	}
	if w.Base != "box(size=2,ratio=0.5)" {
		t.Errorf("nested base = %q", w.Base)
	}
	if w.Size != 4 {
		t.Errorf("size = %d", w.Size)
	}
}

func TestArgsUint64(t *testing.T) {
	a := Args{"seed": "42"}
	v, err := a.Uint64("seed", 0)
	if err != nil || v != 42 {
		t.Errorf("Uint64 = %d, %v", v, err)
	}
	if v, err := a.Uint64("missing", 9); err != nil || v != 9 {
		t.Errorf("Uint64 default = %d, %v", v, err)
	}
	if _, err := (Args{"seed": "-1"}).Uint64("seed", 0); err == nil {
		t.Error("negative accepted as uint64")
	}
}

func TestRegistryRegisterPanics(t *testing.T) {
	r := newTestRegistry(t)
	expectPanic := func(name string, f Factory[*widget, testCtx]) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) did not panic", name)
			}
		}()
		r.Register(name, f)
	}
	ok := func(testCtx, Args) (*widget, error) { return &widget{}, nil }
	expectPanic("", Factory[*widget, testCtx]{New: ok})
	expectPanic("nilconstructor", Factory[*widget, testCtx]{})
	expectPanic("box", Factory[*widget, testCtx]{New: ok}) // duplicate
	expectPanic("bad name", Factory[*widget, testCtx]{New: ok})
	expectPanic("bad(name", Factory[*widget, testCtx]{New: ok})
}

func TestRegistryUsageAndNames(t *testing.T) {
	r := newTestRegistry(t)
	usage := r.Usage()
	if !strings.Contains(usage, "box(size,ratio,base)") || !strings.Contains(usage, "dot") {
		t.Errorf("usage = %q", usage)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "box" || names[1] != "dot" {
		t.Errorf("names = %v", names)
	}
}

func TestSplitSpecsDepthAware(t *testing.T) {
	got := SplitSpecs(" a , b(x=1,y=2) ,, c ")
	want := []string{"a", "b(x=1,y=2)", "c"}
	if len(got) != len(want) {
		t.Fatalf("SplitSpecs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitSpecs = %v", got)
		}
	}
	if SplitSpecs("") != nil || SplitSpecs(",,") != nil {
		t.Error("empty lists should split to nil")
	}
}
