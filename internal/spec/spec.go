// Package spec is the generic spec-string machinery shared by every
// registry in the repository: aggregation rules (internal/core),
// Byzantine attacks (attack), learning-rate schedules (internal/sgd)
// and workloads (workload) all parse the same compact form
//
//	name | name(key=value) | name(key=value,key=value)
//
// through one Registry, so error messages, case normalization and
// round-tripping (Parse(x.Name()) ≡ x) are uniform across every axis of
// the experiment grid. Names and parameter keys are case-insensitive
// (normalized to lower case); values keep their case. Parameter values
// may themselves be specs — "noniid(base=mnist(size=10),classes=3)" —
// because parameter splitting is parenthesis-aware.
//
// A Registry is parameterized by the constructed type T and a context
// type C supplying defaults for parameters a spec omits (cluster shape
// for rules, seed for workloads, struct{} where no defaults exist).
// Every parse failure wraps the registry's sentinel error, so callers
// test errors.Is(err, pkg.ErrBadParameter)-style sentinels exactly as
// before the registries were unified.
package spec

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// errValue is the internal sentinel wrapped by Args accessors; Registry
// re-wraps it with the registry's own sentinel so callers only ever see
// that one.
var errValue = errors.New("bad parameter value")

// Args holds the key=value parameters of a parsed spec, keys lower
// case.
type Args map[string]string

// Has reports whether the spec spelled out the given key.
func (a Args) Has(key string) bool {
	_, ok := a[key]
	return ok
}

// String returns the raw value of key, or def when the spec omitted it.
func (a Args) String(key, def string) string {
	if s, ok := a[key]; ok {
		return s
	}
	return def
}

// Int returns the integer value of key, or def when the spec omitted
// it. A malformed value is reported as a wrapped sentinel error once it
// passes through Registry.Parse.
func (a Args) Int(key string, def int) (int, error) {
	s, ok := a[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer: %w", key, s, errValue)
	}
	return v, nil
}

// Uint64 returns the unsigned integer value of key, or def when the
// spec omitted it.
func (a Args) Uint64(key string, def uint64) (uint64, error) {
	s, ok := a[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an unsigned integer: %w", key, s, errValue)
	}
	return v, nil
}

// Float returns the float value of key, or def when the spec omitted
// it. A malformed value is reported as a wrapped sentinel error once it
// passes through Registry.Parse.
func (a Args) Float(key string, def float64) (float64, error) {
	s, ok := a[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not a number: %w", key, s, errValue)
	}
	return v, nil
}

// Factory builds a T from a parsed spec. Register one per name.
type Factory[T, C any] struct {
	// Params names the accepted spec parameters in display order; any
	// other key in a spec is rejected with the registry's sentinel.
	Params []string
	// Doc is a one-line description used in generated help text.
	Doc string
	// New constructs the value from the context defaults and the spec
	// parameters.
	New func(ctx C, args Args) (T, error)
}

// Registry maps lower-case names to factories for one axis of the
// experiment grid. Construct with NewRegistry; the zero value is not
// usable.
type Registry[T, C any] struct {
	kind     string
	sentinel error
	mu       sync.RWMutex
	entries  map[string]Factory[T, C]
}

// NewRegistry returns an empty registry. kind names the axis in error
// messages ("rule", "attack", "schedule", "workload"); sentinel is the
// package-level error every parse failure wraps.
func NewRegistry[T, C any](kind string, sentinel error) *Registry[T, C] {
	if kind == "" || sentinel == nil {
		panic("spec: NewRegistry needs a kind and a sentinel error")
	}
	return &Registry[T, C]{
		kind:     kind,
		sentinel: sentinel,
		entries:  map[string]Factory[T, C]{},
	}
}

// Register adds a factory under the given (case-insensitive) name. It
// panics on an empty name, a nil constructor, or a duplicate
// registration — all programmer errors at init time.
func (r *Registry[T, C]) Register(name string, f Factory[T, C]) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		panic(fmt.Sprintf("spec: Register with empty %s name", r.kind))
	}
	if strings.ContainsAny(key, "(),= ") {
		panic(fmt.Sprintf("spec: %s name %q contains spec syntax", r.kind, name))
	}
	if f.New == nil {
		panic(fmt.Sprintf("spec: Register(%q) with nil constructor", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[key]; dup {
		panic(fmt.Sprintf("spec: Register(%q) called twice", key))
	}
	r.entries[key] = f
}

// Lookup returns the factory registered under name (case-insensitive).
func (r *Registry[T, C]) Lookup(name string) (Factory[T, C], bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.entries[strings.ToLower(strings.TrimSpace(name))]
	return f, ok
}

// Names returns the registered names, sorted.
func (r *Registry[T, C]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Usage returns a generated one-line summary of every registered entry
// with its accepted parameters — CLI help strings are built from this
// so they can never drift from the registry.
func (r *Registry[T, C]) Usage() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		f := r.entries[name]
		if len(f.Params) == 0 {
			parts = append(parts, name)
			continue
		}
		parts = append(parts, name+"("+strings.Join(f.Params, ",")+")")
	}
	return strings.Join(parts, " | ")
}

// Parse constructs the value described by spec, with defaults from ctx.
// Unknown names, unknown parameter keys, and malformed values are all
// reported as errors wrapping the registry's sentinel.
func (r *Registry[T, C]) Parse(ctx C, s string) (T, error) {
	var zero T
	name, args, err := Parse(r.kind, r.sentinel, s)
	if err != nil {
		return zero, err
	}
	factory, ok := r.Lookup(name)
	if !ok {
		return zero, fmt.Errorf("unknown %s %q (registered: %s): %w",
			r.kind, name, strings.Join(r.Names(), ", "), r.sentinel)
	}
	for key := range args {
		known := false
		for _, p := range factory.Params {
			if key == p {
				known = true
				break
			}
		}
		if !known {
			return zero, fmt.Errorf("%s %q does not take parameter %q (accepts: %s): %w",
				r.kind, name, key, strings.Join(factory.Params, ", "), r.sentinel)
		}
	}
	v, err := factory.New(ctx, args)
	if err != nil {
		if errors.Is(err, r.sentinel) {
			return zero, fmt.Errorf("%s spec %q: %w", r.kind, s, err)
		}
		return zero, fmt.Errorf("%s spec %q: %w: %w", r.kind, s, err, r.sentinel)
	}
	return v, nil
}

// Parse splits a spec into its lower-cased name and parameter map
// without consulting any registry. Malformed specs are reported as
// errors wrapping sentinel; kind names the axis in those messages.
// Parameter splitting is parenthesis-aware, so values may themselves be
// specs: "noniid(base=mnist(size=10,hidden=16),classes=3)" yields
// base = "mnist(size=10,hidden=16)".
func Parse(kind string, sentinel error, spec string) (string, Args, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return "", nil, fmt.Errorf("empty %s spec: %w", kind, sentinel)
	}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if strings.ContainsAny(s, "),= ") {
			return "", nil, fmt.Errorf("malformed %s spec %q: %w", kind, spec, sentinel)
		}
		return strings.ToLower(s), Args{}, nil
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return "", nil, fmt.Errorf("%s spec %q has no name: %w", kind, spec, sentinel)
	}
	if strings.ContainsAny(name, "),= ") {
		return "", nil, fmt.Errorf("malformed %s spec %q: %w", kind, spec, sentinel)
	}
	if !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("%s spec %q: missing ')': %w", kind, spec, sentinel)
	}
	args := Args{}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner == "" {
		return strings.ToLower(name), args, nil
	}
	for _, kv := range splitDepthAware(inner) {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("%s spec %q: parameter %q is not key=value: %w",
				kind, spec, strings.TrimSpace(kv), sentinel)
		}
		key := strings.ToLower(strings.TrimSpace(kv[:eq]))
		val := strings.TrimSpace(kv[eq+1:])
		if key == "" || val == "" {
			return "", nil, fmt.Errorf("%s spec %q: empty key or value in %q: %w",
				kind, spec, strings.TrimSpace(kv), sentinel)
		}
		if _, dup := args[key]; dup {
			return "", nil, fmt.Errorf("%s spec %q: duplicate parameter %q: %w", kind, spec, key, sentinel)
		}
		args[key] = val
	}
	return strings.ToLower(name), args, nil
}

// SplitSpecs splits a comma-separated list of specs, keeping commas
// inside parameter parentheses — "krum,multikrum(f=2,m=3)" yields
// ["krum", "multikrum(f=2,m=3)"]. Empty items are dropped; the items
// are not validated (Registry.Parse does that).
func SplitSpecs(list string) []string {
	var out []string
	for _, item := range splitDepthAware(list) {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// splitDepthAware splits s on commas at parenthesis depth zero.
func splitDepthAware(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}
