package harness

import (
	"fmt"
	"io"

	"krum/data"
	"krum/distsgd"
	"krum/internal/core"
	"krum/internal/metrics"
	"krum/internal/sim"
)

// NonIIDRow is one rule's outcome under homogeneous and label-skewed
// worker data.
type NonIIDRow struct {
	// Rule names the aggregation rule.
	Rule string
	// IIDAccuracy is the final accuracy with i.i.d. workers.
	IIDAccuracy float64
	// SkewAccuracy is the final accuracy with label-skewed workers.
	SkewAccuracy float64
	// Gap is IIDAccuracy − SkewAccuracy.
	Gap float64
}

// NonIIDResult summarizes extension experiment E7.
type NonIIDResult struct {
	// N is the number of (all honest) workers.
	N int
	// Rows is one entry per rule.
	Rows []NonIIDRow
}

// RunNonIID executes E7: violate the paper's assumption (iii) — i.i.d.
// unbiased gradient estimators — by giving each honest worker a skewed
// class subset, with NO Byzantine workers at all. Averaging still sees
// an unbiased aggregate (the skews cancel in the mean); Krum selects a
// SINGLE worker's gradient per round, which under label skew is a
// biased estimate, so selection rules degrade. This is the documented
// boundary of the paper's guarantee, not a bug.
func RunNonIID(w io.Writer, scale Scale, seed uint64) (*NonIIDResult, error) {
	const n = 10
	rounds := pick(scale, 200, 600)
	evalEvery := pick(scale, 20, 40)
	batch := pick(scale, 16, 32)

	work, err := newImageWorkload(scale, seed)
	if err != nil {
		return nil, err
	}
	partitions, err := data.PartitionClasses(work.Dataset, n)
	if err != nil {
		return nil, err
	}
	datasets := make([]data.Dataset, n)
	for i, p := range partitions {
		datasets[i] = p
	}

	base := distsgd.Config{
		Model:        work.Model,
		Dataset:      work.Dataset, // evaluation stays on the full distribution
		N:            n,
		F:            0,
		BatchSize:    batch,
		ScheduleSpec: figSchedule,
		Rounds:       rounds,
		Seed:         seed,
		EvalEvery:    evalEvery,
		EvalBatch:    pick(scale, 300, 1000),
	}

	res := &NonIIDResult{N: n}
	// Rules come from the central registry; the experiment declares a
	// nominal tolerance f = 2 even though every worker is honest.
	specCtx := core.SpecContext{N: n, F: 2}
	specs := []string{"average", "krum", fmt.Sprintf("multikrum(m=%d)", n-2), "coordmedian"}
	rules := make([]core.Rule, 0, len(specs))
	for _, spec := range specs {
		rule, err := core.ParseRuleIn(specCtx, spec)
		if err != nil {
			return nil, fmt.Errorf("rule %q: %w", spec, err)
		}
		rules = append(rules, rule)
	}
	for _, rule := range rules {
		iidCfg := base
		iidCfg.Rule = rule
		iidRun, err := distsgd.Run(iidCfg)
		if err != nil {
			return nil, fmt.Errorf("%s iid: %w", rule.Name(), err)
		}

		skewPool, err := sim.NewHeterogeneousPool(work.Model, datasets, batch, seed+1)
		if err != nil {
			return nil, fmt.Errorf("building heterogeneous pool: %w", err)
		}
		skewCfg := base
		skewCfg.Rule = rule
		skewCfg.Source = skewPool
		skewRun, err := distsgd.Run(skewCfg)
		if err != nil {
			return nil, fmt.Errorf("%s skew: %w", rule.Name(), err)
		}

		res.Rows = append(res.Rows, NonIIDRow{
			Rule:         rule.Name(),
			IIDAccuracy:  iidRun.FinalTestAccuracy,
			SkewAccuracy: skewRun.FinalTestAccuracy,
			Gap:          iidRun.FinalTestAccuracy - skewRun.FinalTestAccuracy,
		})
	}

	section(w, fmt.Sprintf("E7 (extension) — non-i.i.d. workers on %s", work.Description))
	fmt.Fprintf(w, "n = %d honest workers, NO attackers; 'skew' deals each worker a disjoint\nclass subset (assumption (iii) of Prop. 4.3 violated)\n\n", n)
	tbl := metrics.NewTable("rule", "iid accuracy", "label-skew accuracy", "gap")
	for _, r := range res.Rows {
		tbl.AddRowf(r.Rule, r.IIDAccuracy, r.SkewAccuracy, r.Gap)
	}
	if err := tbl.Render(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nAveraging cancels the per-worker skews; Krum selects one (biased) worker\nper round and pays for it — the documented boundary of the paper's\ni.i.d. assumption, and the opening for later heterogeneity-aware work.\n")
	return res, nil
}

// Row returns the named row, or nil.
func (r *NonIIDResult) Row(rule string) *NonIIDRow {
	for i := range r.Rows {
		if r.Rows[i].Rule == rule {
			return &r.Rows[i]
		}
	}
	return nil
}
