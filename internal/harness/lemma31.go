package harness

import (
	"fmt"
	"io"

	"krum"
	"krum/attack"
	"krum/data"
	"krum/distsgd"
	"krum/internal/metrics"
	"krum/internal/vec"
	"krum/model"
)

// Lemma31Result summarizes experiment E1: a single Byzantine worker
// versus a linear rule (averaging) and versus Krum.
type Lemma31Result struct {
	// ForcedUpdateError is ‖F_lin − U‖/‖U‖ on the first round — how
	// exactly the attacker controls the linear rule's output (should
	// be ≈ 0).
	ForcedUpdateError float64
	// AverageDiverged reports whether the averaging run left the
	// finite range.
	AverageDiverged bool
	// AverageFinalAccuracy is the last measured accuracy of the
	// averaging run (chance level when destroyed).
	AverageFinalAccuracy float64
	// KrumFinalAccuracy is Krum's final accuracy under the identical
	// attack.
	KrumFinalAccuracy float64
	// KrumDiverged should always be false.
	KrumDiverged bool
}

// RunLemma31 executes E1 and renders its table to w (pass io.Discard
// for benches).
func RunLemma31(w io.Writer, scale Scale, seed uint64) (*Lemma31Result, error) {
	const n, f = 11, 1
	rounds := pick(scale, 120, 400)

	ds, err := data.NewGaussianMixture(3, 8, 4, 0.5, seed)
	if err != nil {
		return nil, err
	}
	m, err := model.NewSoftmaxClassifier(8, 3, seed+1)
	if err != nil {
		return nil, err
	}

	// The attacker forces the average to the constant vector U with
	// every coordinate 1e6 — maximally destructive.
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1.0 / float64(n)
	}
	target := make([]float64, m.Dim())
	vec.Fill(target, 1e6)
	takeover, err := attack.NewLinearTakeover(target, weights)
	if err != nil {
		return nil, err
	}

	base := distsgd.Config{
		Model:     m,
		Dataset:   ds,
		N:         n,
		F:         f,
		BatchSize: 16,
		Schedule:  krum.ScheduleInverseTStretched(0.2, 0.75, 100),
		Rounds:    rounds,
		Attack:    takeover,
		Seed:      seed,
		EvalEvery: rounds / 4,
	}

	res := &Lemma31Result{}

	avgCfg := base
	avgCfg.Rule = krum.Average{}
	avgRun, err := distsgd.Run(avgCfg)
	if err != nil {
		return nil, fmt.Errorf("averaging run: %w", err)
	}
	res.AverageDiverged = avgRun.Diverged
	res.AverageFinalAccuracy = avgRun.FinalTestAccuracy
	// The forced output has norm ‖U‖ = 1e6·√d; measure relative error
	// on round 0.
	forcedNorm := vec.Norm(target)
	res.ForcedUpdateError = (avgRun.History[0].UpdateNorm - forcedNorm) / forcedNorm
	if res.ForcedUpdateError < 0 {
		res.ForcedUpdateError = -res.ForcedUpdateError
	}

	krumCfg := base
	krumCfg.Rule = krum.NewKrum(f)
	krumRun, err := distsgd.Run(krumCfg)
	if err != nil {
		return nil, fmt.Errorf("krum run: %w", err)
	}
	res.KrumDiverged = krumRun.Diverged
	res.KrumFinalAccuracy = krumRun.FinalTestAccuracy

	section(w, "E1 / Lemma 3.1 — one Byzantine worker controls any linear rule")
	fmt.Fprintf(w, "n = %d workers, f = %d Byzantine, attack = forced U with ‖U‖ = %.3g\n\n", n, f, forcedNorm)
	tbl := metrics.NewTable("rule", "round-0 |F−U|/|U|", "diverged", "final accuracy")
	tbl.AddRowf("average", res.ForcedUpdateError, res.AverageDiverged, res.AverageFinalAccuracy)
	tbl.AddRowf("krum", "-", res.KrumDiverged, res.KrumFinalAccuracy)
	if err := tbl.Render(w); err != nil {
		return nil, err
	}
	return res, nil
}
