//go:build !race

package harness

// raceDetectorEnabled is false in ordinary test builds; see
// race_enabled_test.go for why timing assertions consult it.
const raceDetectorEnabled = false
