package harness

import (
	"fmt"
	"io"
	"math"

	"krum/attack"
	"krum/internal/core"
	"krum/internal/metrics"
	"krum/internal/vec"
	"krum/scenario"
)

// AblationRow is one rule's behaviour under the hidden-coordinate
// attack.
type AblationRow struct {
	// Rule names the aggregation rule.
	Rule string
	// CoordError is E|output[j] − g[j]| on the attacked coordinate.
	CoordError float64
	// RestError is the mean absolute error over the other coordinates
	// (sanity: all rules should be accurate there).
	RestError float64
	// ByzSelectedRate is the selection rate where applicable (NaN for
	// non-selection rules).
	ByzSelectedRate float64
}

// AblationResult summarizes the extension experiment E6: the
// hidden-coordinate stress test that motivates Bulyan, applied to every
// rule in the repository.
type AblationResult struct {
	// N, F, D document the operating point.
	N, F, D int
	// Rows is one entry per rule.
	Rows []AblationRow
}

// auxKindAblation is the store record kind for E6 Monte-Carlo cells.
const auxKindAblation = "ablation"

// ablationCellRecord is the store payload of one E6 cell. It mirrors
// AblationRow except that the untracked selection rate travels as a
// Tracked flag instead of NaN (plain JSON has no NaN literal).
type ablationCellRecord struct {
	// Rule is the canonical rule name of the row.
	Rule string `json:"rule"`
	// CoordError mirrors AblationRow.CoordError.
	CoordError float64 `json:"coord_error"`
	// RestError mirrors AblationRow.RestError.
	RestError float64 `json:"rest_error"`
	// Tracked reports the rule implements selection; ByzSelectedRate is
	// meaningful only then (NaN otherwise on decode).
	Tracked bool `json:"tracked"`
	// ByzSelectedRate is the selection rate when Tracked.
	ByzSelectedRate float64 `json:"byz_selected_rate"`
}

// row converts the record back to the NaN-sentineled result row.
func (r ablationCellRecord) row() AblationRow {
	out := AblationRow{
		Rule:            r.Rule,
		CoordError:      r.CoordError,
		RestError:       r.RestError,
		ByzSelectedRate: math.NaN(),
	}
	if r.Tracked {
		out.ByzSelectedRate = r.ByzSelectedRate
	}
	return out
}

// RunAblation executes E6: Monte-Carlo aggregation under
// attack.HiddenCoordinate across all rules, measuring per-coordinate
// damage rather than selection alone. Each cell draws from its own
// derived-seed RNG (DeriveSeeds decorrelates the rules' streams), so a
// cell is a pure function of its spec plus (d, coord, trials) — which
// is what lets a configured result store (SetStore) cache the cells
// and replay a warm rerun with zero Monte-Carlo work.
func RunAblation(w io.Writer, scale Scale, seed uint64) (*AblationResult, error) {
	const n, f, d = 11, 2, 60 // n ≥ 4f+3 for Bulyan
	const coord = 7
	trials := pick(scale, 300, 2000)
	auxParams := fmt.Sprintf("d=%d,coord=%d,trials=%d", d, coord, trials)

	// The rule sweep is a scenario matrix over registry specs; the
	// hidden-coordinate attack is a spec too, so this path contains no
	// hand-rolled attack literal.
	m := scenario.Matrix{
		Base: scenario.Spec{
			N: n, F: f, Seed: seed,
			Attack: fmt.Sprintf("hiddencoord(j=%d,margin=1)", coord),
		},
		Rules: []string{
			"average",
			"krum",
			fmt.Sprintf("multikrum(m=%d)", n-2*f),
			"bulyan",
			"coordmedian",
			"trimmedmean",
			"geomedian",
		},
		DeriveSeeds: true,
	}

	res := &AblationResult{N: n, F: f, D: d}
	out := make([]float64, d)
	for _, cell := range m.Cells() {
		rule, err := core.ParseRuleIn(core.SpecContext{N: cell.N, F: cell.F}, cell.Rule)
		if err != nil {
			return nil, fmt.Errorf("rule %q: %w", cell.Rule, err)
		}
		atk, err := attack.Parse(cell.Attack)
		if err != nil {
			return nil, fmt.Errorf("attack %q: %w", cell.Attack, err)
		}
		var cached ablationCellRecord
		if lookupAuxCell(auxKindAblation, cell, auxParams, &cached) {
			res.Rows = append(res.Rows, cached.row())
			continue
		}
		rng := vec.NewRNG(cell.Seed)
		var coordErr, restErr float64
		hits, tracked := 0, 0
		for trial := 0; trial < trials; trial++ {
			g := rng.NewNormal(d, 0, 1)
			correct := make([][]float64, n-f)
			for i := range correct {
				v := vec.Clone(g)
				for j := range v {
					v[j] += 0.3 * rng.NormFloat64()
				}
				correct[i] = v
			}
			ctx := &attack.Context{Round: trial, Params: g, Correct: correct, F: f, RNG: rng}
			byz := atk.Propose(ctx)
			proposals := make([][]float64, 0, n)
			proposals = append(proposals, correct...)
			proposals = append(proposals, byz...)

			if err := rule.Aggregate(out, proposals); err != nil {
				return nil, fmt.Errorf("%s: %w", rule.Name(), err)
			}
			coordErr += math.Abs(out[coord] - g[coord])
			for j := 0; j < d; j++ {
				if j != coord {
					restErr += math.Abs(out[j] - g[j])
				}
			}
			if sel, ok := rule.(core.Selector); ok {
				indices, err := sel.Select(proposals)
				if err != nil {
					return nil, fmt.Errorf("%s select: %w", rule.Name(), err)
				}
				tracked++
				for _, idx := range indices {
					if idx >= n-f {
						hits++
						break
					}
				}
			}
		}
		rec := ablationCellRecord{
			Rule:       rule.Name(),
			CoordError: coordErr / float64(trials),
			RestError:  restErr / float64(trials*(d-1)),
		}
		if tracked > 0 {
			rec.Tracked = true
			rec.ByzSelectedRate = float64(hits) / float64(tracked)
		}
		saveAuxCell(w, auxKindAblation, cell, auxParams, rec)
		res.Rows = append(res.Rows, rec.row())
	}

	section(w, "E6 (extension) — hidden-coordinate attack: Krum vs Bulyan ablation")
	fmt.Fprintf(w, "n = %d, f = %d, d = %d, attacked coordinate %d, %d trials;\nattackers match the correct mean except for a spike hidden inside Krum's selection radius\n\n",
		n, f, d, coord, trials)
	tbl := metrics.NewTable("rule", "attacked-coord error", "other-coord error", "byz selected")
	for _, r := range res.Rows {
		tbl.AddRowf(r.Rule, r.CoordError, r.RestError, r.ByzSelectedRate)
	}
	if err := tbl.Render(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nKrum may select the stealth proposal (its distance penalty hides in the\nnoise); Bulyan's trimmed second phase bounds the attacked coordinate by\nvalues from correct workers — the follow-up paper's motivation.\n")
	return res, nil
}

// Row returns the named row, or nil.
func (a *AblationResult) Row(rule string) *AblationRow {
	for i := range a.Rows {
		if a.Rows[i].Rule == rule {
			return &a.Rows[i]
		}
	}
	return nil
}
