package harness

import (
	"fmt"
	"io"

	"krum"
	"krum/attack"
	"krum/data"
	"krum/distsgd"
	"krum/internal/metrics"
	"krum/internal/vec"
	"krum/model"
)

// Prop43Result summarizes experiment E5: almost-sure convergence of the
// true gradient to the flat basin under Byzantine presence.
type Prop43Result struct {
	// Rounds is the evaluated round axis.
	Rounds []int
	// GradNorm is ‖∇Q(x_t)‖ measured on a large held-out batch at each
	// evaluated round (quadratic workload).
	GradNorm []float64
	// ParamError is ‖x_t − x*‖ against the planted ground truth.
	ParamError []float64
	// InitialGradNorm and FinalGradNorm bracket the trajectory.
	InitialGradNorm, FinalGradNorm float64
	// ReductionFactor is InitialGradNorm/FinalGradNorm.
	ReductionFactor float64
	// NonConvexGradNorm is the same trajectory on the non-convex MLP
	// cost (the generality Proposition 4.3 actually claims: reaching a
	// basin where the landscape is "almost flat", not a global
	// optimum).
	NonConvexGradNorm []float64
	// NonConvexReduction is the first/last ratio of that trajectory.
	NonConvexReduction float64
}

// RunProp43 executes E5 on the strongly convex workload (linear
// regression, where ∇Q is measurable exactly up to sampling noise and
// assumptions (i)–(v) of the proposition hold), with f Byzantine
// workers mounting the omniscient attack and a Robbins–Monro schedule.
func RunProp43(w io.Writer, scale Scale, seed uint64) (*Prop43Result, error) {
	const n, f = 15, 3
	const inDim, outDim = 12, 1
	rounds := pick(scale, 300, 1500)
	evalEvery := rounds / 15

	stream, err := data.NewLinearRegressionStream(inDim, outDim, 0.2, seed)
	if err != nil {
		return nil, err
	}
	m, err := model.NewLinearRegression(inDim, outDim, seed+1)
	if err != nil {
		return nil, err
	}
	truth := stream.TruthParams()

	// Large reference batch to measure the true gradient ∇Q(x_t).
	refRNG := vec.NewRNG(seed + 99)
	refX, refY, err := data.NewBatch(stream, refRNG, 4000)
	if err != nil {
		return nil, err
	}
	probe := m.Clone()
	gradBuf := make([]float64, m.Dim())

	res := &Prop43Result{}
	measure := func(params []float64, round int) error {
		if err := probe.SetParams(params); err != nil {
			return err
		}
		if _, err := probe.Gradient(gradBuf, refX, refY); err != nil {
			return err
		}
		res.Rounds = append(res.Rounds, round)
		res.GradNorm = append(res.GradNorm, vec.Norm(gradBuf))
		res.ParamError = append(res.ParamError, vec.Dist(params, truth))
		return nil
	}

	cfg := distsgd.Config{
		Model:     m,
		Dataset:   stream,
		Rule:      krum.NewKrum(f),
		N:         n,
		F:         f,
		BatchSize: 16,
		Schedule:  krum.ScheduleInverseTStretched(0.3, 0.75, 40),
		Rounds:    rounds,
		Attack:    attack.Omniscient{Scale: 25},
		Seed:      seed,
	}
	// Segmented execution: run evalEvery rounds at a time, measuring
	// ∇Q exactly between segments on the reference batch.
	params := m.Params(nil)
	if err := measure(params, 0); err != nil {
		return nil, err
	}
	seg := cfg
	seg.Rounds = evalEvery
	cur := m.Clone()
	for done := 0; done < rounds; done += evalEvery {
		if err := cur.SetParams(params); err != nil {
			return nil, err
		}
		seg.Model = cur
		seg.Seed = seed + uint64(done) // fresh randomness per segment
		out, err := distsgd.Run(seg)
		if err != nil {
			return nil, fmt.Errorf("segment at round %d: %w", done, err)
		}
		params = out.FinalParams
		if err := measure(params, done+evalEvery); err != nil {
			return nil, err
		}
	}

	res.InitialGradNorm = res.GradNorm[0]
	res.FinalGradNorm = res.GradNorm[len(res.GradNorm)-1]
	if res.FinalGradNorm > 0 {
		res.ReductionFactor = res.InitialGradNorm / res.FinalGradNorm
	}

	// Second phase: the non-convex cost the proposition actually
	// targets — an MLP on the mixture task, same attackers and
	// schedule, measuring ‖∇Q‖ on a fixed reference batch.
	mix, err := data.NewGaussianMixture(3, 8, 4, 0.5, seed+7)
	if err != nil {
		return nil, err
	}
	mlp, err := model.NewMLP(8, []int{12}, 3, model.ActTanh, model.SoftmaxCrossEntropy{}, seed+8)
	if err != nil {
		return nil, err
	}
	mlpRefX, mlpRefY, err := data.NewBatch(mix, vec.NewRNG(seed+9), 2000)
	if err != nil {
		return nil, err
	}
	mlpProbe := mlp.Clone()
	mlpGrad := make([]float64, mlp.Dim())
	measureMLP := func(params []float64) error {
		if err := mlpProbe.SetParams(params); err != nil {
			return err
		}
		if _, err := mlpProbe.Gradient(mlpGrad, mlpRefX, mlpRefY); err != nil {
			return err
		}
		res.NonConvexGradNorm = append(res.NonConvexGradNorm, vec.Norm(mlpGrad))
		return nil
	}
	mlpSeg := distsgd.Config{
		Model:     mlp,
		Dataset:   mix,
		Rule:      krum.NewKrum(f),
		N:         n,
		F:         f,
		BatchSize: 16,
		Schedule:  krum.ScheduleInverseTStretched(0.5, 0.75, 60),
		Rounds:    evalEvery,
		Attack:    attack.Omniscient{Scale: 25},
	}
	mlpParams := mlp.Params(nil)
	if err := measureMLP(mlpParams); err != nil {
		return nil, err
	}
	mlpCur := mlp.Clone()
	for done := 0; done < rounds; done += evalEvery {
		if err := mlpCur.SetParams(mlpParams); err != nil {
			return nil, err
		}
		mlpSeg.Model = mlpCur
		mlpSeg.Seed = seed + 100 + uint64(done)
		out, err := distsgd.Run(mlpSeg)
		if err != nil {
			return nil, fmt.Errorf("MLP segment at round %d: %w", done, err)
		}
		mlpParams = out.FinalParams
		if err := measureMLP(mlpParams); err != nil {
			return nil, err
		}
	}
	first := res.NonConvexGradNorm[0]
	last := res.NonConvexGradNorm[len(res.NonConvexGradNorm)-1]
	if last > 0 {
		res.NonConvexReduction = first / last
	}

	section(w, "E5 / Proposition 4.3 — convergence to the flat basin under attack")
	fmt.Fprintf(w, "quadratic cost (linear regression d=%d), n = %d, f = %d omniscient attackers,\nγ_t = 0.3/(1+t/40)^0.75 (Robbins–Monro)\n\n", m.Dim(), n, f)
	xs := make([]float64, len(res.Rounds))
	for i, r := range res.Rounds {
		xs[i] = float64(r)
	}
	fig := &metrics.Figure{
		Title:  "‖∇Q(x_t)‖ and ‖x_t − x*‖ vs round",
		XLabel: "round",
		X:      xs,
		Series: []metrics.Series{
			{Name: "grad norm", Y: res.GradNorm},
			{Name: "param error", Y: res.ParamError},
		},
	}
	if err := fig.Render(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nquadratic: gradient norm reduced ×%.3g (%.4g → %.4g)\n",
		res.ReductionFactor, res.InitialGradNorm, res.FinalGradNorm)
	fmt.Fprintf(w, "non-convex (MLP, d=%d, tanh): ‖∇Q‖ %.4g → %.4g (×%.3g) under the same attack —\nthe parameter vector reaches the \"almost flat\" basin the proposition promises.\n",
		mlp.Dim(), res.NonConvexGradNorm[0], res.NonConvexGradNorm[len(res.NonConvexGradNorm)-1], res.NonConvexReduction)
	return res, nil
}
