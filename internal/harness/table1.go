package harness

import (
	"fmt"
	"io"

	"krum/attack"
	"krum/internal/core"
	"krum/internal/metrics"
	"krum/internal/vec"
	"krum/scenario"
)

// auxKindTable1 is the store record kind for T1 Monte-Carlo cells.
const auxKindTable1 = "table1"

// Table1Cell is one (attack, rule) measurement.
type Table1Cell struct {
	// Attack and Rule identify the cell (canonical registry spec
	// names).
	Attack, Rule string
	// ByzSelectedRate is the fraction of trials in which the rule
	// selected at least one Byzantine proposal.
	ByzSelectedRate float64
}

// Table1Result is the derived selection-quality matrix (T1 in
// EXPERIMENTS.md): every selection rule against every attack, in the
// scenario.Matrix expansion order (rule-major).
type Table1Result struct {
	// N, F document the cluster shape.
	N, F int
	// Cells holds the matrix cells.
	Cells []Table1Cell
}

// Table1Matrix declares the T1 grid — every selection rule against
// every attack — as a scenario matrix of registry spec strings. Both
// the flag-driven table1 experiment and JSON config files expand this
// same matrix, so the two invocation paths are literally one code path.
// DeriveSeeds decorrelates the cells' Monte-Carlo streams.
func Table1Matrix(seed uint64) scenario.Matrix {
	return scenario.Matrix{
		Base:  scenario.Spec{Name: "table1", N: 13, F: 3, Seed: seed},
		Rules: []string{"krum", "multikrum(m=4)", "medoid", "minimaldiameter", "bulyan"},
		Attacks: []string{
			"gaussian(sigma=200)",
			"omniscient(scale=20)",
			"signflip",
			"medoidcollusion",
			"mimic",
			"littleisenough",
			"hiddencoord(j=3)",
		},
		DeriveSeeds: true,
	}
}

// RunTable1 measures how often each selection rule picks a Byzantine
// proposal under each attack, at the aggregation level (tight correct
// cluster, unit-scale gradients). The grid comes from Table1Matrix;
// each cell runs its own deterministically-seeded Monte-Carlo loop —
// a pure function of its spec plus (d, trials), which is what lets a
// configured result store (SetStore) cache the cells: a warm rerun
// replays every cell with zero Monte-Carlo work.
func RunTable1(w io.Writer, scale Scale, seed uint64) (*Table1Result, error) {
	const d = 12
	trials := pick(scale, 200, 2000)
	auxParams := fmt.Sprintf("d=%d,trials=%d", d, trials)

	m := Table1Matrix(seed)
	n, f := m.Base.N, m.Base.F
	res := &Table1Result{N: n, F: f}
	for _, cell := range m.Cells() {
		atk, err := attack.Parse(cell.Attack)
		if err != nil {
			return nil, fmt.Errorf("attack %q: %w", cell.Attack, err)
		}
		rule, err := core.ParseRuleIn(core.SpecContext{N: cell.N, F: cell.F}, cell.Rule)
		if err != nil {
			return nil, fmt.Errorf("rule %q: %w", cell.Rule, err)
		}
		sel, ok := rule.(core.Selector)
		if !ok {
			continue
		}
		var cached Table1Cell
		if lookupAuxCell(auxKindTable1, cell, auxParams, &cached) {
			res.Cells = append(res.Cells, cached)
			continue
		}
		rng := vec.NewRNG(cell.Seed)
		hits := 0
		for trial := 0; trial < trials; trial++ {
			center := rng.NewNormal(d, 0, 1)
			correct := make([][]float64, n-f)
			for i := range correct {
				v := vec.Clone(center)
				for j := range v {
					v[j] += 0.1 * rng.NormFloat64()
				}
				correct[i] = v
			}
			ctx := &attack.Context{
				Round: trial, Params: center, Correct: correct, F: f, RNG: rng,
			}
			byz := atk.Propose(ctx)
			proposals := make([][]float64, 0, n)
			proposals = append(proposals, correct...)
			proposals = append(proposals, byz...)
			indices, err := sel.Select(proposals)
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", rule.Name(), atk.Name(), err)
			}
			for _, idx := range indices {
				if idx >= n-f {
					hits++
					break
				}
			}
		}
		computed := Table1Cell{
			Attack:          atk.Name(),
			Rule:            rule.Name(),
			ByzSelectedRate: float64(hits) / float64(trials),
		}
		saveAuxCell(w, auxKindTable1, cell, auxParams, computed)
		res.Cells = append(res.Cells, computed)
	}

	section(w, "T1 — Byzantine-selection rate per (attack × rule)")
	fmt.Fprintf(w, "n = %d, f = %d, %d trials per cell; entries are P[rule selects a Byzantine proposal]\n", n, f, trials)
	fmt.Fprintf(w, "(mimic replays honest values — selecting it is harmless, which the table makes visible)\n\n")
	tbl := metrics.NewTable("attack", "rule", "byz selected")
	for _, c := range res.Cells {
		tbl.AddRowf(c.Attack, c.Rule, c.ByzSelectedRate)
	}
	if err := tbl.Render(w); err != nil {
		return nil, err
	}
	return res, nil
}

// Cell returns the named cell, or nil when absent.
func (t *Table1Result) Cell(attackName, ruleName string) *Table1Cell {
	for i := range t.Cells {
		if t.Cells[i].Attack == attackName && t.Cells[i].Rule == ruleName {
			return &t.Cells[i]
		}
	}
	return nil
}
