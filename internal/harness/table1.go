package harness

import (
	"fmt"
	"io"

	"krum/attack"
	"krum/internal/core"
	"krum/internal/metrics"
	"krum/internal/vec"
)

// Table1Cell is one (attack, rule) measurement.
type Table1Cell struct {
	// Attack and Rule identify the cell.
	Attack, Rule string
	// ByzSelectedRate is the fraction of trials in which the rule
	// selected at least one Byzantine proposal.
	ByzSelectedRate float64
}

// Table1Result is the derived selection-quality matrix (T1 in
// DESIGN.md): every selection rule against every attack.
type Table1Result struct {
	// N, F document the cluster shape.
	N, F int
	// Cells holds the matrix in row-major (attack-major) order.
	Cells []Table1Cell
}

// RunTable1 measures how often each selection rule picks a Byzantine
// proposal under each attack, at the aggregation level (tight correct
// cluster, unit-scale gradients).
func RunTable1(w io.Writer, scale Scale, seed uint64) (*Table1Result, error) {
	const n, f, d = 13, 3, 12
	trials := pick(scale, 200, 2000)
	rng := vec.NewRNG(seed)

	attacks := []attack.Strategy{
		attack.Gaussian{Sigma: 200},
		attack.Omniscient{Scale: 20},
		attack.SignFlip{},
		attack.MedoidCollusion{},
		attack.Mimic{},
		attack.LittleIsEnough{},
		attack.HiddenCoordinate{Coordinate: 3},
	}
	// Rules come from the central registry; f defaults to the cluster
	// shape via SpecContext. Bulyan's default f clamps to 2 at n = 13
	// (n ≥ 4f+3).
	specCtx := core.SpecContext{N: n, F: f}
	rules := make([]core.Rule, 0, 5)
	for _, spec := range []string{"krum", "multikrum(m=4)", "medoid", "minimaldiameter", "bulyan"} {
		rule, err := core.ParseRuleIn(specCtx, spec)
		if err != nil {
			return nil, fmt.Errorf("rule %q: %w", spec, err)
		}
		rules = append(rules, rule)
	}

	res := &Table1Result{N: n, F: f}
	for _, atk := range attacks {
		for _, rule := range rules {
			sel, ok := rule.(core.Selector)
			if !ok {
				continue
			}
			hits := 0
			for trial := 0; trial < trials; trial++ {
				center := rng.NewNormal(d, 0, 1)
				correct := make([][]float64, n-f)
				for i := range correct {
					v := vec.Clone(center)
					for j := range v {
						v[j] += 0.1 * rng.NormFloat64()
					}
					correct[i] = v
				}
				ctx := &attack.Context{
					Round: trial, Params: center, Correct: correct, F: f, RNG: rng,
				}
				byz := atk.Propose(ctx)
				proposals := make([][]float64, 0, n)
				proposals = append(proposals, correct...)
				proposals = append(proposals, byz...)
				indices, err := sel.Select(proposals)
				if err != nil {
					return nil, fmt.Errorf("%s under %s: %w", rule.Name(), atk.Name(), err)
				}
				for _, idx := range indices {
					if idx >= n-f {
						hits++
						break
					}
				}
			}
			res.Cells = append(res.Cells, Table1Cell{
				Attack:          atk.Name(),
				Rule:            rule.Name(),
				ByzSelectedRate: float64(hits) / float64(trials),
			})
		}
	}

	section(w, "T1 — Byzantine-selection rate per (attack × rule)")
	fmt.Fprintf(w, "n = %d, f = %d, %d trials per cell; entries are P[rule selects a Byzantine proposal]\n", n, f, trials)
	fmt.Fprintf(w, "(mimic replays honest values — selecting it is harmless, which the table makes visible)\n\n")
	tbl := metrics.NewTable("attack", "rule", "byz selected")
	for _, c := range res.Cells {
		tbl.AddRowf(c.Attack, c.Rule, c.ByzSelectedRate)
	}
	if err := tbl.Render(w); err != nil {
		return nil, err
	}
	return res, nil
}

// Cell returns the named cell, or nil when absent.
func (t *Table1Result) Cell(attackName, ruleName string) *Table1Cell {
	for i := range t.Cells {
		if t.Cells[i].Attack == attackName && t.Cells[i].Rule == ruleName {
			return &t.Cells[i]
		}
	}
	return nil
}
