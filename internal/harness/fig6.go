package harness

import (
	"fmt"
	"io"

	"krum/internal/metrics"
	"krum/scenario"
)

// Fig6Row is one m operating point of the Multi-Krum trade-off.
type Fig6Row struct {
	// M is the Multi-Krum parameter (1 = Krum, n = averaging).
	M int
	// CleanFinal is the final accuracy without attackers.
	CleanFinal float64
	// CleanRoundsToTarget is the first evaluated round reaching the
	// target accuracy without attackers (-1 if never) — the
	// convergence-speed axis of Figure 6.
	CleanRoundsToTarget int
	// ByzFinal is the final accuracy with f Gaussian attackers — the
	// resilience axis.
	ByzFinal float64
}

// Fig6Result summarizes experiment F6.
type Fig6Result struct {
	// N, F document the cluster.
	N, F int
	// Target is the accuracy threshold used for the speed comparison.
	Target float64
	// Rows is one entry per m.
	Rows []Fig6Row
}

// RunFig6 executes the Multi-Krum trade-off: convergence speed grows
// with m (averaging more estimates reduces variance) while resilience
// holds up to the safe range and collapses as m → n. The m sweep is two
// scenario matrices — a clean arm and a Gaussian-attacked arm — run
// concurrently through one Runner; every axis is a registry spec.
func RunFig6(w io.Writer, scale Scale, seed uint64) (*Fig6Result, error) {
	const n, f = 15, 4
	rounds := pick(scale, 150, 500)
	evalEvery := pick(scale, 10, 20)
	target := 0.75

	work, err := newImageWorkload(scale, seed)
	if err != nil {
		return nil, err
	}
	base := scenario.Spec{
		Workload:  imageWorkloadSpec(scale),
		Schedule:  figSchedule,
		N:         n,
		Rounds:    rounds,
		BatchSize: pick(scale, 16, 32),
		Seed:      seed,
		EvalEvery: evalEvery,
		EvalBatch: pick(scale, 300, 1000),
	}
	ms := []int{1, 4, 8, 11, 15}
	ruleSpecs := make([]string, len(ms))
	for i, m := range ms {
		ruleSpecs[i] = fmt.Sprintf("multikrum(f=%d,m=%d)", f, m)
	}
	clean := scenario.Matrix{Base: base, Rules: ruleSpecs, Fs: []int{0}}
	byz := scenario.Matrix{Base: base, Rules: ruleSpecs, Attacks: []string{"gaussian(sigma=200)"}, Fs: []int{f}}
	cells := append(clean.Cells(), byz.Cells()...)
	results, err := newRunner().RunCells(cells)
	if err != nil {
		return nil, err
	}

	res := &Fig6Result{N: n, F: f, Target: target}
	for i, m := range ms {
		cleanRun := results[i].Result
		byzRun := results[len(ms)+i].Result

		roundsAxis, accs := cleanRun.AccuracySeries()
		toTarget := -1
		for j, a := range accs {
			if a >= target {
				toTarget = roundsAxis[j]
				break
			}
		}

		res.Rows = append(res.Rows, Fig6Row{
			M:                   m,
			CleanFinal:          finalOrChance(cleanRun),
			CleanRoundsToTarget: toTarget,
			ByzFinal:            finalOrChance(byzRun),
		})
	}

	section(w, fmt.Sprintf("F6 / Figure 6 — Multi-Krum trade-off on %s", work.Description))
	fmt.Fprintf(w, "n = %d; 'byz' columns face f = %d Gaussian attackers; target accuracy %.2f\n\n", n, f, target)
	tbl := metrics.NewTable("m", "clean final acc", "rounds to target (clean)", "final acc with attack")
	for _, r := range res.Rows {
		toTarget := "never"
		if r.CleanRoundsToTarget >= 0 {
			toTarget = fmt.Sprintf("%d", r.CleanRoundsToTarget)
		}
		tbl.AddRowf(r.M, r.CleanFinal, toTarget, r.ByzFinal)
	}
	if err := tbl.Render(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nLarger m averages more estimates (faster/cleaner convergence, Figure 6);\nresilience holds while the selected set cannot contain a majority of\nByzantine proposals and collapses as m → n (averaging).\n")
	return res, nil
}
