package harness

import (
	"fmt"
	"io"
	"math"

	"krum"
	"krum/attack"
	"krum/distsgd"
	"krum/internal/metrics"
)

// Fig6Row is one m operating point of the Multi-Krum trade-off.
type Fig6Row struct {
	// M is the Multi-Krum parameter (1 = Krum, n = averaging).
	M int
	// CleanFinal is the final accuracy without attackers.
	CleanFinal float64
	// CleanRoundsToTarget is the first evaluated round reaching the
	// target accuracy without attackers (-1 if never) — the
	// convergence-speed axis of Figure 6.
	CleanRoundsToTarget int
	// ByzFinal is the final accuracy with f Gaussian attackers — the
	// resilience axis.
	ByzFinal float64
}

// Fig6Result summarizes experiment F6.
type Fig6Result struct {
	// N, F document the cluster.
	N, F int
	// Target is the accuracy threshold used for the speed comparison.
	Target float64
	// Rows is one entry per m.
	Rows []Fig6Row
}

// RunFig6 executes the Multi-Krum trade-off: convergence speed grows
// with m (averaging more estimates reduces variance) while resilience
// holds up to the safe range and collapses as m → n.
func RunFig6(w io.Writer, scale Scale, seed uint64) (*Fig6Result, error) {
	const n, f = 15, 4
	rounds := pick(scale, 150, 500)
	evalEvery := pick(scale, 10, 20)
	target := 0.75

	work, err := newImageWorkload(scale, seed)
	if err != nil {
		return nil, err
	}
	base := distsgd.Config{
		Model:     work.mlp,
		Dataset:   work.ds,
		N:         n,
		BatchSize: pick(scale, 16, 32),
		Schedule:  krum.ScheduleInverseTStretched(0.5, 0.75, 200),
		Rounds:    rounds,
		Seed:      seed,
		EvalEvery: evalEvery,
		EvalBatch: pick(scale, 300, 1000),
	}

	res := &Fig6Result{N: n, F: f, Target: target}
	for _, m := range []int{1, 4, 8, 11, 15} {
		rule := krum.NewMultiKrum(f, m)

		cleanCfg := base
		cleanCfg.Rule = rule
		cleanCfg.F = 0
		cleanRun, err := distsgd.Run(cleanCfg)
		if err != nil {
			return nil, fmt.Errorf("m=%d clean: %w", m, err)
		}
		roundsAxis, accs := cleanRun.AccuracySeries()
		toTarget := -1
		for i, a := range accs {
			if a >= target {
				toTarget = roundsAxis[i]
				break
			}
		}

		byzCfg := base
		byzCfg.Rule = rule
		byzCfg.F = f
		byzCfg.Attack = attack.Gaussian{Sigma: 200}
		byzRun, err := distsgd.Run(byzCfg)
		if err != nil {
			return nil, fmt.Errorf("m=%d byz: %w", m, err)
		}
		byzFinal := byzRun.FinalTestAccuracy
		if byzRun.Diverged || math.IsNaN(byzFinal) {
			byzFinal = 0.1 // chance
		}

		res.Rows = append(res.Rows, Fig6Row{
			M:                   m,
			CleanFinal:          cleanRun.FinalTestAccuracy,
			CleanRoundsToTarget: toTarget,
			ByzFinal:            byzFinal,
		})
	}

	section(w, fmt.Sprintf("F6 / Figure 6 — Multi-Krum trade-off on %s", work.label))
	fmt.Fprintf(w, "n = %d; 'byz' columns face f = %d Gaussian attackers; target accuracy %.2f\n\n", n, f, target)
	tbl := metrics.NewTable("m", "clean final acc", "rounds to target (clean)", "final acc with attack")
	for _, r := range res.Rows {
		toTarget := "never"
		if r.CleanRoundsToTarget >= 0 {
			toTarget = fmt.Sprintf("%d", r.CleanRoundsToTarget)
		}
		tbl.AddRowf(r.M, r.CleanFinal, toTarget, r.ByzFinal)
	}
	if err := tbl.Render(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nLarger m averages more estimates (faster/cleaner convergence, Figure 6);\nresilience holds while the selected set cannot contain a majority of\nByzantine proposals and collapses as m → n (averaging).\n")
	return res, nil
}
