// Package harness defines and runs the reproduction experiments: one
// regenerator per lemma/proposition/figure of the paper (and of its full
// version's evaluation section), as indexed in DESIGN.md §4 and
// EXPERIMENTS.md. Each experiment returns a machine-checkable summary —
// the benches and integration tests assert the paper's qualitative
// claims on it — and renders the tables/series the paper reports.
package harness

import (
	"errors"
	"fmt"
	"io"

	"krum/data"
	"krum/model"
)

// ErrConfig is returned for invalid experiment configurations.
var ErrConfig = errors.New("harness: bad configuration")

// Scale selects experiment size: Quick runs in seconds (CI, tests,
// benches), Full approaches the paper's operating point (minutes).
type Scale int

// Supported scales (start at 1 per the style guide).
const (
	// Quick is the seconds-scale configuration.
	Quick Scale = iota + 1
	// Full is the paper-scale configuration.
	Full
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// pick returns q at Quick scale and f at Full scale.
func pick(s Scale, q, f int) int {
	if s == Full {
		return f
	}
	return q
}

// imageWorkload bundles the MNIST-substitute classification task used
// by the figure experiments.
type imageWorkload struct {
	ds    *data.SyntheticMNIST
	mlp   *model.Network
	size  int
	label string
}

// newImageWorkload builds the MLP-on-synthetic-MNIST workload: image
// side length and hidden width scale with the experiment scale.
func newImageWorkload(s Scale, seed uint64) (*imageWorkload, error) {
	size := pick(s, 10, 16)
	hidden := pick(s, 16, 48)
	ds, err := data.NewSyntheticMNIST(size, 0.05)
	if err != nil {
		return nil, fmt.Errorf("building dataset: %w", err)
	}
	mlp, err := model.NewMLP(ds.Dim(), []int{hidden}, 10, model.ActReLU, model.SoftmaxCrossEntropy{}, seed)
	if err != nil {
		return nil, fmt.Errorf("building MLP: %w", err)
	}
	return &imageWorkload{
		ds:   ds,
		mlp:  mlp,
		size: size,
		label: fmt.Sprintf("%dx%d synthetic MNIST, MLP(%d hidden, d=%d)",
			size, size, hidden, mlp.Dim()),
	}, nil
}

// section writes a titled separator for the experiment binaries.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n===== %s =====\n", title)
}
