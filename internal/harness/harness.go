// Package harness defines and runs the reproduction experiments: one
// regenerator per lemma/proposition/figure of the paper (and of its full
// version's evaluation section), as indexed in EXPERIMENTS.md at the
// repository root (experiment name → paper claim → command). Each
// experiment returns a machine-checkable summary — the benches and
// integration tests assert the paper's qualitative claims on it — and
// renders the tables/series the paper reports.
//
// The experiment grids (rules × attacks × f × seeds) are declared as
// scenario.Matrix values and executed through scenario.Runner, so the
// harness contains no hand-rolled attack or schedule literals — every
// axis is a registry spec string.
package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"krum/distsgd"
	"krum/scenario"
	"krum/workload"
)

// ErrConfig is returned for invalid experiment configurations.
var ErrConfig = errors.New("harness: bad configuration")

// cellStore, when set, backs every scenario.Runner the harness builds
// (see SetStore).
var cellStore scenario.ResultStore

// SetStore routes every harness experiment that executes scenario
// cells (the figure grids) through the given result store, so repeated
// invocations — and overlapping grids within one invocation — replay
// completed cells instead of recomputing them. The CLI wires this to
// krum-experiments -store. Pass nil to disable. Not safe to call
// concurrently with running experiments; set it once at startup.
func SetStore(st scenario.ResultStore) { cellStore = st }

// newRunner builds the shared scenario runner, wired to the configured
// store. Every harness experiment that runs cells must construct its
// runner here — constructing scenario.Runner directly would silently
// opt out of the store.
func newRunner() *scenario.Runner {
	return &scenario.Runner{Store: cellStore}
}

// auxResultStore is the optional store extension for Monte-Carlo cells
// (table1's selection rates, the ablation's coordinate errors): pure
// functions of a partial spec plus a parameter string rather than of a
// full distsgd run. scenario/store's Store implements it; a plain
// scenario.ResultStore leaves Monte-Carlo experiments uncached.
type auxResultStore interface {
	// LookupAux returns the stored payload for (kind, spec, params).
	LookupAux(kind string, spec scenario.Spec, params string) (json.RawMessage, bool)
	// SaveAux persists a payload under (kind, spec, params).
	SaveAux(kind string, spec scenario.Spec, params string, result json.RawMessage) error
}

// auxStore returns the configured store's Monte-Carlo surface, or nil.
func auxStore() auxResultStore {
	if as, ok := cellStore.(auxResultStore); ok {
		return as
	}
	return nil
}

// lookupAuxCell decodes a cached Monte-Carlo cell into out, reporting
// whether a valid entry existed. Any failure is a miss: the cell
// recomputes, which is always safe.
func lookupAuxCell(kind string, spec scenario.Spec, params string, out any) bool {
	as := auxStore()
	if as == nil {
		return false
	}
	raw, ok := as.LookupAux(kind, spec, params)
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// saveAuxCell persists a freshly-computed Monte-Carlo cell. A store
// failure is reported on the experiment's writer — the result is still
// valid, only its persistence failed (the same non-fatal treatment
// scenario.CellResult.StoreErr gets).
func saveAuxCell(w io.Writer, kind string, spec scenario.Spec, params string, v any) {
	as := auxStore()
	if as == nil {
		return
	}
	raw, err := json.Marshal(v)
	if err == nil {
		err = as.SaveAux(kind, spec, params, raw)
	}
	if err != nil {
		fmt.Fprintf(w, "warning: storing %s cell: %v\n", kind, err)
	}
}

// Scale selects experiment size: Quick runs in seconds (CI, tests,
// benches), Full approaches the paper's operating point (minutes).
type Scale int

// Supported scales (start at 1 per the style guide).
const (
	// Quick is the seconds-scale configuration.
	Quick Scale = iota + 1
	// Full is the paper-scale configuration.
	Full
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// pick returns q at Quick scale and f at Full scale.
func pick(s Scale, q, f int) int {
	if s == Full {
		return f
	}
	return q
}

// figSchedule is the learning-rate schedule spec shared by the figure
// experiments (the paper's Robbins–Monro family with a stretched decay
// horizon).
const figSchedule = "inverset(gamma=0.5,power=0.75,t0=200)"

// imageWorkloadSpec is the registry spec of the MLP-on-synthetic-MNIST
// workload the figure experiments use: image side length and hidden
// width scale with the experiment scale.
func imageWorkloadSpec(s Scale) string {
	return fmt.Sprintf("mnist(size=%d,hidden=%d)", pick(s, 10, 16), pick(s, 16, 48))
}

// newImageWorkload builds the figure experiments' workload through the
// registry.
func newImageWorkload(s Scale, seed uint64) (*workload.Workload, error) {
	return workload.Parse(workload.SpecContext{Seed: seed}, imageWorkloadSpec(s))
}

// finalOrChance returns a run's final test accuracy, mapping diverged
// or never-evaluated runs (NaN sentinel) to chance level on the
// 10-class image task — figure tables and shape tests then see a loud
// failure value instead of a silently-propagating NaN.
func finalOrChance(res *distsgd.Result) float64 {
	if res.Diverged || math.IsNaN(res.FinalTestAccuracy) {
		return 0.1
	}
	return res.FinalTestAccuracy
}

// section writes a titled separator for the experiment binaries.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n===== %s =====\n", title)
}
