package harness

import (
	"fmt"
	"io"

	"krum/attack"
	"krum/internal/metrics"
	"krum/scenario"
)

// AttackCurves holds the four accuracy-vs-round series of the Figure
// 4/5 layout: {average, krum} × {0% Byzantine, ~33% Byzantine}.
type AttackCurves struct {
	// Attack names the Byzantine behaviour (canonical registry spec).
	Attack string
	// Rounds is the shared evaluation axis.
	Rounds []int
	// AvgClean, AvgByz, KrumClean, KrumByz are the accuracy series.
	AvgClean, AvgByz, KrumClean, KrumByz []float64
	// Final accuracies (last evaluation of each run).
	AvgCleanFinal, AvgByzFinal, KrumCleanFinal, KrumByzFinal float64
	// AvgByzDiverged reports whether the attacked averaging run blew
	// up before finishing.
	AvgByzDiverged bool
}

// padTo extends a (possibly short, because diverged) series to the
// reference axis by repeating the last value — the paper plots
// destroyed runs as flat-lined chance accuracy.
func padTo(axis []int, rounds []int, accs []float64, fallback float64) []float64 {
	out := make([]float64, len(axis))
	j := 0
	last := fallback
	for i, r := range axis {
		if j < len(rounds) && rounds[j] == r {
			last = accs[j]
			j++
		}
		out[i] = last
	}
	return out
}

// RunAttackFigure executes the Figure 4 (Gaussian) or Figure 5
// (omniscient) reproduction on the image workload: accuracy per round
// for averaging and Krum with 0% and ≈33% Byzantine workers. The four
// runs are declared as two scenario matrices (a clean arm at f = 0 and
// an attacked arm at f > 0) and executed concurrently by one Runner.
func RunAttackFigure(w io.Writer, scale Scale, seed uint64, attackSpec, figName string) (*AttackCurves, error) {
	atk, err := attack.Parse(attackSpec)
	if err != nil {
		return nil, fmt.Errorf("attack spec %q: %w", attackSpec, err)
	}
	const n = 15
	f := 4 // 4/15 ≈ 27%, satisfying 2f+2 < n; the paper uses 33% of n=?
	rounds := pick(scale, 150, 600)
	evalEvery := pick(scale, 10, 20)

	work, err := newImageWorkload(scale, seed)
	if err != nil {
		return nil, err
	}

	base := scenario.Spec{
		Workload:  imageWorkloadSpec(scale),
		Schedule:  figSchedule,
		N:         n,
		Rounds:    rounds,
		BatchSize: pick(scale, 16, 32),
		Seed:      seed,
		EvalEvery: evalEvery,
		EvalBatch: pick(scale, 300, 1000),
	}
	ruleSpecs := []string{"average", fmt.Sprintf("krum(f=%d)", f)}
	clean := scenario.Matrix{Base: base, Rules: ruleSpecs, Fs: []int{0}}
	byz := scenario.Matrix{Base: base, Rules: ruleSpecs, Attacks: []string{attackSpec}, Fs: []int{f}}
	cells := append(clean.Cells(), byz.Cells()...)
	results, err := newRunner().RunCells(cells)
	if err != nil {
		return nil, err
	}
	avgCleanRes := results[0].Result
	krumCleanRes := results[1].Result
	avgByzRes := results[2].Result
	krumByzRes := results[3].Result

	curves := &AttackCurves{Attack: atk.Name()}
	axis, avgClean := avgCleanRes.AccuracySeries()
	curves.Rounds = axis
	curves.AvgClean = avgClean
	curves.AvgCleanFinal = finalOrChance(avgCleanRes)

	byzRounds, byzAccs := avgByzRes.AccuracySeries()
	curves.AvgByzDiverged = avgByzRes.Diverged
	curves.AvgByz = padTo(axis, byzRounds, byzAccs, 0.1)
	curves.AvgByzFinal = curves.AvgByz[len(curves.AvgByz)-1]

	_, krumClean := krumCleanRes.AccuracySeries()
	curves.KrumClean = padTo(axis, axis, krumClean, 0.1)
	curves.KrumCleanFinal = finalOrChance(krumCleanRes)

	_, krumByz := krumByzRes.AccuracySeries()
	curves.KrumByz = padTo(axis, axis, krumByz, 0.1)
	curves.KrumByzFinal = finalOrChance(krumByzRes)

	section(w, fmt.Sprintf("%s — %s attack on %s", figName, atk.Name(), work.Description))
	fmt.Fprintf(w, "n = %d workers, f = %d (%.0f%%) Byzantine when attacked\n\n", n, f, 100*float64(f)/float64(n))
	xs := make([]float64, len(axis))
	for i, r := range axis {
		xs[i] = float64(r)
	}
	fig := &metrics.Figure{
		Title:  "test accuracy vs round",
		XLabel: "round",
		X:      xs,
		Series: []metrics.Series{
			{Name: "average 0% byz", Y: curves.AvgClean},
			{Name: fmt.Sprintf("average %d byz", f), Y: curves.AvgByz},
			{Name: "krum 0% byz", Y: curves.KrumClean},
			{Name: fmt.Sprintf("krum %d byz", f), Y: curves.KrumByz},
		},
	}
	if err := fig.Render(w); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)
	if err := fig.ASCIIChart(w, 72, 14); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nfinal: avg(0%%)=%.3f avg(byz)=%.3f (diverged=%v) krum(0%%)=%.3f krum(byz)=%.3f\n",
		curves.AvgCleanFinal, curves.AvgByzFinal, curves.AvgByzDiverged,
		curves.KrumCleanFinal, curves.KrumByzFinal)
	return curves, nil
}

// RunFig4 is the Gaussian-attack figure (full paper Figure 4).
func RunFig4(w io.Writer, scale Scale, seed uint64) (*AttackCurves, error) {
	return RunAttackFigure(w, scale, seed, "gaussian(sigma=200)", "F4 / Figure 4")
}

// RunFig5 is the omniscient-attack figure (full paper Figure 5).
func RunFig5(w io.Writer, scale Scale, seed uint64) (*AttackCurves, error) {
	return RunAttackFigure(w, scale, seed, "omniscient(scale=20)", "F5 / Figure 5")
}
