package harness

import (
	"fmt"
	"io"

	"krum"
	"krum/attack"
	"krum/distsgd"
	"krum/internal/core"
	"krum/internal/metrics"
)

// AttackCurves holds the four accuracy-vs-round series of the Figure
// 4/5 layout: {average, krum} × {0% Byzantine, ~33% Byzantine}.
type AttackCurves struct {
	// Attack names the Byzantine behaviour.
	Attack string
	// Rounds is the shared evaluation axis.
	Rounds []int
	// AvgClean, AvgByz, KrumClean, KrumByz are the accuracy series.
	AvgClean, AvgByz, KrumClean, KrumByz []float64
	// Final accuracies (last evaluation of each run).
	AvgCleanFinal, AvgByzFinal, KrumCleanFinal, KrumByzFinal float64
	// AvgByzDiverged reports whether the attacked averaging run blew
	// up before finishing.
	AvgByzDiverged bool
}

// runCurve executes one training run and returns its accuracy series.
func runCurve(base distsgd.Config, rule core.Rule, f int, atk attack.Strategy) ([]int, []float64, *distsgd.Result, error) {
	cfg := base
	cfg.Rule = rule
	cfg.F = f
	cfg.Attack = atk
	res, err := distsgd.Run(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	rounds, accs := res.AccuracySeries()
	return rounds, accs, res, nil
}

// padTo extends a (possibly short, because diverged) series to the
// reference axis by repeating the last value — the paper plots
// destroyed runs as flat-lined chance accuracy.
func padTo(axis []int, rounds []int, accs []float64, fallback float64) []float64 {
	out := make([]float64, len(axis))
	j := 0
	last := fallback
	for i, r := range axis {
		if j < len(rounds) && rounds[j] == r {
			last = accs[j]
			j++
		}
		out[i] = last
	}
	return out
}

// RunAttackFigure executes the Figure 4 (Gaussian) or Figure 5
// (omniscient) reproduction on the image workload: accuracy per round
// for averaging and Krum with 0% and ≈33% Byzantine workers.
func RunAttackFigure(w io.Writer, scale Scale, seed uint64, atk attack.Strategy, figName string) (*AttackCurves, error) {
	if atk == nil {
		return nil, fmt.Errorf("nil attack: %w", ErrConfig)
	}
	const n = 15
	f := 4 // 4/15 ≈ 27%, satisfying 2f+2 < n; the paper uses 33% of n=?
	rounds := pick(scale, 150, 600)
	evalEvery := pick(scale, 10, 20)

	work, err := newImageWorkload(scale, seed)
	if err != nil {
		return nil, err
	}

	base := distsgd.Config{
		Model:     work.mlp,
		Dataset:   work.ds,
		N:         n,
		BatchSize: pick(scale, 16, 32),
		Schedule:  krum.ScheduleInverseTStretched(0.5, 0.75, 200),
		Rounds:    rounds,
		Seed:      seed,
		EvalEvery: evalEvery,
		EvalBatch: pick(scale, 300, 1000),
	}

	curves := &AttackCurves{Attack: atk.Name()}

	axis, avgClean, avgCleanRes, err := runCurve(base, krum.Average{}, 0, nil)
	if err != nil {
		return nil, fmt.Errorf("average clean: %w", err)
	}
	curves.Rounds = axis
	curves.AvgClean = avgClean
	curves.AvgCleanFinal = avgCleanRes.FinalTestAccuracy

	byzRounds, byzAccs, avgByzRes, err := runCurve(base, krum.Average{}, f, atk)
	if err != nil {
		return nil, fmt.Errorf("average byz: %w", err)
	}
	curves.AvgByzDiverged = avgByzRes.Diverged
	curves.AvgByz = padTo(axis, byzRounds, byzAccs, 0.1)
	curves.AvgByzFinal = curves.AvgByz[len(curves.AvgByz)-1]

	_, krumClean, krumCleanRes, err := runCurve(base, krum.NewKrum(f), 0, nil)
	if err != nil {
		return nil, fmt.Errorf("krum clean: %w", err)
	}
	curves.KrumClean = padTo(axis, axis, krumClean, 0.1)
	curves.KrumCleanFinal = krumCleanRes.FinalTestAccuracy

	_, krumByz, krumByzRes, err := runCurve(base, krum.NewKrum(f), f, atk)
	if err != nil {
		return nil, fmt.Errorf("krum byz: %w", err)
	}
	curves.KrumByz = padTo(axis, axis, krumByz, 0.1)
	curves.KrumByzFinal = krumByzRes.FinalTestAccuracy

	section(w, fmt.Sprintf("%s — %s attack on %s", figName, atk.Name(), work.label))
	fmt.Fprintf(w, "n = %d workers, f = %d (%.0f%%) Byzantine when attacked\n\n", n, f, 100*float64(f)/float64(n))
	xs := make([]float64, len(axis))
	for i, r := range axis {
		xs[i] = float64(r)
	}
	fig := &metrics.Figure{
		Title:  "test accuracy vs round",
		XLabel: "round",
		X:      xs,
		Series: []metrics.Series{
			{Name: "average 0% byz", Y: curves.AvgClean},
			{Name: fmt.Sprintf("average %d byz", f), Y: curves.AvgByz},
			{Name: "krum 0% byz", Y: curves.KrumClean},
			{Name: fmt.Sprintf("krum %d byz", f), Y: curves.KrumByz},
		},
	}
	if err := fig.Render(w); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)
	if err := fig.ASCIIChart(w, 72, 14); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nfinal: avg(0%%)=%.3f avg(byz)=%.3f (diverged=%v) krum(0%%)=%.3f krum(byz)=%.3f\n",
		curves.AvgCleanFinal, curves.AvgByzFinal, curves.AvgByzDiverged,
		curves.KrumCleanFinal, curves.KrumByzFinal)
	return curves, nil
}

// RunFig4 is the Gaussian-attack figure (full paper Figure 4).
func RunFig4(w io.Writer, scale Scale, seed uint64) (*AttackCurves, error) {
	return RunAttackFigure(w, scale, seed, attack.Gaussian{Sigma: 200}, "F4 / Figure 4")
}

// RunFig5 is the omniscient-attack figure (full paper Figure 5).
func RunFig5(w io.Writer, scale Scale, seed uint64) (*AttackCurves, error) {
	return RunAttackFigure(w, scale, seed, attack.Omniscient{Scale: 20}, "F5 / Figure 5")
}
