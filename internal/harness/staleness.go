package harness

import (
	"fmt"
	"io"

	"krum/internal/vec"
	"krum/scenario"
)

// StalenessSweep holds the bounded-staleness experiment grid: for each
// arrival process, the final accuracy of unattacked averaging (the
// baseline cost of staleness alone) and of Krum under the Gaussian
// attack (resilience while proposals go stale), plus the incremental
// distance-cache activity the async traffic generated.
type StalenessSweep struct {
	// Arrivals lists the swept arrival-process specs, "sync" first.
	Arrivals []string
	// AvgFinal is unattacked averaging's final accuracy per arrival.
	AvgFinal []float64
	// KrumFinal is attacked Krum's final accuracy per arrival.
	KrumFinal []float64
	// KrumByzRate is attacked Krum's Byzantine-selection rate per
	// arrival (NaN when selection was never tracked).
	KrumByzRate []float64
	// Builds and RowUpdates are the global distance-matrix counter
	// deltas over the whole sweep: async replay should convert most
	// per-round work from full builds into row updates.
	Builds, RowUpdates uint64
}

// stalenessArrivals is the swept grid: the synchronous control, the
// deterministic worst-case rotation at two bounds, i.i.d. availability
// at two rates, and one Kardam-damped variant.
func stalenessArrivals() []string {
	return []string{
		"sync",
		"bounded(tau=2)",
		"bounded(tau=5)",
		"bernoulli(p=0.5,tau=5)",
		"bernoulli(p=0.25,tau=8)",
		"bernoulli(p=0.5,tau=5,damp=0.5)",
	}
}

// RunStaleness executes the staleness sweep (experiment E8): the image
// workload trained across the arrival grid, one unattacked averaging
// arm and one Gaussian-attacked Krum arm per arrival process. Every
// cell runs with the incremental distance cache on — asynchronous
// replay is exactly the partial-update traffic the cache converts into
// row updates, and the sweep reports the observed build/update split.
func RunStaleness(w io.Writer, scale Scale, seed uint64) (*StalenessSweep, error) {
	const n = 15
	f := 4
	arrivals := stalenessArrivals()

	base := scenario.Spec{
		Workload:    imageWorkloadSpec(scale),
		Schedule:    figSchedule,
		N:           n,
		Rounds:      pick(scale, 150, 600),
		BatchSize:   pick(scale, 16, 32),
		Seed:        seed,
		EvalEvery:   pick(scale, 10, 20),
		EvalBatch:   pick(scale, 300, 1000),
		Incremental: true,
	}
	avgArm := scenario.Matrix{Base: base, Rules: []string{"average"}, Arrivals: arrivals, Fs: []int{0}}
	krumBase := base
	krumBase.TrackSelection = true
	krumArm := scenario.Matrix{
		Base:     krumBase,
		Rules:    []string{fmt.Sprintf("krum(f=%d)", f)},
		Attacks:  []string{"gaussian(sigma=200)"},
		Arrivals: arrivals,
		Fs:       []int{f},
	}
	cells := append(avgArm.Cells(), krumArm.Cells()...)

	builds := vec.MatrixBuildCount()
	rows := vec.MatrixRowUpdateCount()
	results, err := newRunner().RunCells(cells)
	if err != nil {
		return nil, err
	}
	sweep := &StalenessSweep{
		Arrivals:    arrivals,
		AvgFinal:    make([]float64, len(arrivals)),
		KrumFinal:   make([]float64, len(arrivals)),
		KrumByzRate: make([]float64, len(arrivals)),
		Builds:      vec.MatrixBuildCount() - builds,
		RowUpdates:  vec.MatrixRowUpdateCount() - rows,
	}
	for i := range arrivals {
		sweep.AvgFinal[i] = finalOrChance(results[i].Result)
		kr := results[len(arrivals)+i].Result
		sweep.KrumFinal[i] = finalOrChance(kr)
		sweep.KrumByzRate[i] = kr.ByzantineSelectionRate()
	}

	section(w, "E8 — bounded-staleness asynchronous arrivals (Kardam-style)")
	fmt.Fprintf(w, "n = %d workers; averaging unattacked, krum under gaussian(sigma=200) with f = %d\n", n, f)
	fmt.Fprintf(w, "incremental distance cache over the sweep: %d full builds, %d row updates\n\n",
		sweep.Builds, sweep.RowUpdates)
	fmt.Fprintf(w, "%-34s %12s %12s %14s\n", "arrival", "avg final", "krum final", "krum byz rate")
	for i, arr := range arrivals {
		fmt.Fprintf(w, "%-34s %12.3f %12.3f %14.3f\n",
			arr, sweep.AvgFinal[i], sweep.KrumFinal[i], sweep.KrumByzRate[i])
	}
	return sweep, nil
}
