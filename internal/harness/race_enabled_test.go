//go:build race

package harness

// raceDetectorEnabled reports whether this test binary was built with
// -race. Timing-based assertions (the Lemma 4.1 cost-model fit) are
// relaxed under the race detector: its instrumentation distorts
// per-operation wall time by an order of magnitude and non-uniformly
// across working-set sizes, so a poor fit there says nothing about the
// paper's claim — the plain `go test` CI job still asserts it at full
// strength.
const raceDetectorEnabled = true
