package harness

import (
	"io"
	"math"
	"testing"
)

func TestRunAblationShape(t *testing.T) {
	res, err := RunAblation(io.Discard, Quick, 5)
	if err != nil {
		t.Fatal(err)
	}
	bulyan := res.Row("bulyan")
	avg := res.Row("average")
	krumRow := res.Row("krum")
	if bulyan == nil || avg == nil || krumRow == nil {
		t.Fatal("missing rows")
	}
	// Bulyan bounds the attacked coordinate near the honest spread.
	if bulyan.CoordError > 3*bulyan.RestError+0.2 {
		t.Errorf("bulyan attacked-coord error %v vs rest %v", bulyan.CoordError, bulyan.RestError)
	}
	// The attack must actually bite somewhere: averaging (always
	// incorporates the spike) must be worse on the attacked coordinate
	// than Bulyan.
	if avg.CoordError < bulyan.CoordError {
		t.Errorf("attack not discriminating: avg %v vs bulyan %v", avg.CoordError, bulyan.CoordError)
	}
	if !math.IsNaN(avg.ByzSelectedRate) {
		t.Error("average should not report selection")
	}
	if math.IsNaN(krumRow.ByzSelectedRate) {
		t.Error("krum should report selection")
	}
}

func TestRunNonIIDShape(t *testing.T) {
	res, err := RunNonIID(io.Discard, Quick, 6)
	if err != nil {
		t.Fatal(err)
	}
	avg := res.Row("average")
	krumRow := res.Row("krum")
	if avg == nil || krumRow == nil {
		t.Fatal("missing rows")
	}
	// Everyone is honest: averaging must be essentially unaffected by
	// the skew.
	if avg.Gap > 0.1 {
		t.Errorf("averaging gap %v under label skew", avg.Gap)
	}
	// All rules learn in the iid setting.
	for _, row := range res.Rows {
		if row.IIDAccuracy < 0.5 {
			t.Errorf("%s iid accuracy %v", row.Rule, row.IIDAccuracy)
		}
	}
	// The headline of E7: Krum pays a visible price relative to
	// averaging under heterogeneity.
	if krumRow.SkewAccuracy > avg.SkewAccuracy {
		t.Logf("note: krum (%v) beat averaging (%v) under skew this seed",
			krumRow.SkewAccuracy, avg.SkewAccuracy)
	}
	if krumRow.Gap < -0.05 {
		t.Errorf("krum gap %v — skew should not HELP selection rules", krumRow.Gap)
	}
}
