package harness

import (
	"fmt"
	"io"

	"krum/internal/metrics"
	"krum/scenario"
)

// Fig7Row is one batch-size operating point of the cost-of-resilience
// experiment.
type Fig7Row struct {
	// Batch is the correct workers' mini-batch size.
	Batch int
	// KrumByzFinal is Krum's final accuracy at that batch size under
	// attack.
	KrumByzFinal float64
}

// Fig7Result summarizes experiment F7.
type Fig7Result struct {
	// AverageCleanFinal is the attack-free averaging reference at the
	// smallest batch size.
	AverageCleanFinal float64
	// Rows is the batch sweep for Krum under attack.
	Rows []Fig7Row
}

// RunFig7 executes the cost-of-resilience study (full paper Figure 7):
// Krum's slowdown relative to attack-free averaging is recovered by
// growing the correct workers' mini-batch (smaller estimator variance
// σ ⇒ smaller resilience angle α ⇒ selection closer to the true
// gradient). Batch size is not a matrix axis, so the sweep is an
// explicit scenario cell list run concurrently through the Runner.
func RunFig7(w io.Writer, scale Scale, seed uint64) (*Fig7Result, error) {
	const n, f = 15, 4
	rounds := pick(scale, 150, 500)
	evalEvery := pick(scale, 10, 20)
	smallBatch := 3
	batches := []int{3, 10, 30, 100}

	work, err := newImageWorkload(scale, seed)
	if err != nil {
		return nil, err
	}
	base := scenario.Spec{
		Workload:  imageWorkloadSpec(scale),
		Schedule:  figSchedule,
		N:         n,
		Rounds:    rounds,
		Seed:      seed,
		EvalEvery: evalEvery,
		EvalBatch: pick(scale, 300, 1000),
	}

	ref := base
	ref.Rule = "average"
	ref.F = 0
	ref.BatchSize = smallBatch
	cells := []scenario.Spec{ref}
	for _, b := range batches {
		cell := base
		cell.Rule = fmt.Sprintf("krum(f=%d)", f)
		cell.F = f
		cell.BatchSize = b
		cell.Attack = "gaussian(sigma=200)"
		cells = append(cells, cell)
	}
	results, err := newRunner().RunCells(cells)
	if err != nil {
		return nil, err
	}

	res := &Fig7Result{AverageCleanFinal: finalOrChance(results[0].Result)}
	for i, b := range batches {
		res.Rows = append(res.Rows, Fig7Row{Batch: b, KrumByzFinal: finalOrChance(results[i+1].Result)})
	}

	section(w, fmt.Sprintf("F7 / Figure 7 — cost of resilience on %s", work.Description))
	fmt.Fprintf(w, "n = %d, f = %d Gaussian attackers; reference: attack-free averaging at batch %d\n\n", n, f, smallBatch)
	tbl := metrics.NewTable("worker batch", "krum final acc (under attack)", "Δ vs clean average")
	for _, r := range res.Rows {
		tbl.AddRowf(r.Batch, r.KrumByzFinal, r.KrumByzFinal-res.AverageCleanFinal)
	}
	if err := tbl.Render(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nclean averaging reference: %.3f. Growing the mini-batch shrinks the\nestimator deviation σ, closing Krum's gap (Figure 7's crossover).\n", res.AverageCleanFinal)
	return res, nil
}
