package harness

import (
	"fmt"
	"io"
	"time"

	"krum"
	"krum/internal/metrics"
	"krum/internal/stats"
	"krum/internal/vec"
)

// Lemma41Point is one (n, d) cell of the cost-scaling experiment.
type Lemma41Point struct {
	// N and D are the worker count and dimension.
	N, D int
	// NanosPerOp is the measured Krum aggregation time.
	NanosPerOp float64
}

// Lemma41Result summarizes experiment E3: measured Krum cost against
// the Lemma 4.1 model time = c·n²·d.
type Lemma41Result struct {
	// Points holds the sweep measurements.
	Points []Lemma41Point
	// R2 is the goodness of the least-squares fit of time against
	// n²·d (1 means the O(n²·d) model explains all variance).
	R2 float64
	// NanosPerN2D is the fitted constant c.
	NanosPerN2D float64
}

// RunLemma41 executes E3: the Krum cost sweep over n and d.
func RunLemma41(w io.Writer, scale Scale, seed uint64) (*Lemma41Result, error) {
	rng := vec.NewRNG(seed)
	var ns, ds []int
	if scale == Full {
		ns = []int{5, 10, 20, 40, 80}
		ds = []int{100, 1000, 10000}
	} else {
		ns = []int{5, 10, 20}
		ds = []int{100, 1000}
	}

	res := &Lemma41Result{}
	var xs, ys []float64
	for _, n := range ns {
		for _, d := range ds {
			vectors := make([][]float64, n)
			for i := range vectors {
				vectors[i] = rng.NewNormal(d, 0, 1)
			}
			rule := krum.NewKrum((n - 3) / 2)
			dst := make([]float64, d)

			// Calibrate repetitions to ≈ 20ms of work.
			reps := 1
			start := time.Now()
			if err := rule.Aggregate(dst, vectors); err != nil {
				return nil, fmt.Errorf("n=%d d=%d: %w", n, d, err)
			}
			per := time.Since(start)
			if per < 20*time.Millisecond {
				reps = int(20*time.Millisecond/per.Round(time.Nanosecond)) + 1
				if reps > 2000 {
					reps = 2000
				}
			}
			start = time.Now()
			for r := 0; r < reps; r++ {
				if err := rule.Aggregate(dst, vectors); err != nil {
					return nil, fmt.Errorf("n=%d d=%d: %w", n, d, err)
				}
			}
			nanos := float64(time.Since(start).Nanoseconds()) / float64(reps)
			res.Points = append(res.Points, Lemma41Point{N: n, D: d, NanosPerOp: nanos})
			xs = append(xs, float64(n)*float64(n)*float64(d))
			ys = append(ys, nanos)
		}
	}
	_, slope, r2, err := stats.LinearFit(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("fitting cost model: %w", err)
	}
	res.R2 = r2
	res.NanosPerN2D = slope

	section(w, "E3 / Lemma 4.1 — Krum cost is O(n²·d)")
	tbl := metrics.NewTable("n", "d", "ns/op", "ns/(n²·d)")
	for _, p := range res.Points {
		tbl.AddRowf(p.N, p.D, p.NanosPerOp, p.NanosPerOp/(float64(p.N)*float64(p.N)*float64(p.D)))
	}
	if err := tbl.Render(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nleast-squares fit time ≈ %.4g ns · n²·d, r² = %.4f\n", res.NanosPerN2D, res.R2)
	return res, nil
}
