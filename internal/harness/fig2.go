package harness

import (
	"fmt"
	"io"

	"krum"
	"krum/attack"
	"krum/internal/metrics"
	"krum/internal/vec"
)

// Fig2Row is one (f, rule) cell of the Figure 2 reproduction.
type Fig2Row struct {
	// F is the number of colluding Byzantine workers.
	F int
	// MedoidByzRate is the fraction of trials in which the medoid rule
	// picked a Byzantine vector. Note that at f = 1 the collusion has
	// no decoys and its proposal is the harmless cluster barycenter, so
	// the selection rate alone is not the attack-success metric — the
	// distortion below is.
	MedoidByzRate float64
	// KrumByzRate is the same for Krum.
	KrumByzRate float64
	// MedoidDistortion is the mean distance between the medoid output
	// and the true gradient (the paper predicts: small for f = 1,
	// arbitrary/huge for f ≥ 2).
	MedoidDistortion float64
	// KrumDistortion is the same for Krum (small for all f with
	// 2f+2 < n).
	KrumDistortion float64
}

// Fig2Result summarizes experiment E2.
type Fig2Result struct {
	// N is the total number of workers.
	N int
	// Rows holds one entry per f value.
	Rows []Fig2Row
}

// RunFig2 executes E2: pure aggregation-level Monte Carlo of the
// Figure 2 geometry (no training loop needed — the figure is about the
// choice function itself). For each f it reports both how often each
// rule selects a Byzantine proposal and how far the selected value lies
// from the true gradient.
func RunFig2(w io.Writer, scale Scale, seed uint64) (*Fig2Result, error) {
	const n, d = 13, 10
	trials := pick(scale, 300, 3000)
	rng := vec.NewRNG(seed)
	res := &Fig2Result{N: n}

	for _, f := range []int{1, 2, 3, 4} {
		medoidHits, krumHits := 0, 0
		var medoidDist, krumDist float64
		krumRule := krum.NewKrum(f)
		collusion := attack.MedoidCollusion{Offset: 1e4}
		out := make([]float64, d)
		for trial := 0; trial < trials; trial++ {
			// Correct gradients: tight cluster around a random center.
			center := rng.NewNormal(d, 0, 1)
			correct := make([][]float64, n-f)
			for i := range correct {
				v := vec.Clone(center)
				for j := range v {
					v[j] += 0.05 * rng.NormFloat64()
				}
				correct[i] = v
			}
			ctx := &attack.Context{
				Round:   trial,
				Params:  center,
				Correct: correct,
				F:       f,
				RNG:     rng,
			}
			byz := collusion.Propose(ctx)
			proposals := make([][]float64, 0, n)
			proposals = append(proposals, correct...)
			proposals = append(proposals, byz...)

			medSel, err := (krum.Medoid{}).Select(proposals)
			if err != nil {
				return nil, fmt.Errorf("medoid select: %w", err)
			}
			if medSel[0] >= n-f {
				medoidHits++
			}
			medoidDist += vec.Dist(proposals[medSel[0]], center)

			krumSel, err := krumRule.Select(proposals)
			if err != nil {
				return nil, fmt.Errorf("krum select: %w", err)
			}
			if krumSel[0] >= n-f {
				krumHits++
			}
			if err := krumRule.Aggregate(out, proposals); err != nil {
				return nil, fmt.Errorf("krum aggregate: %w", err)
			}
			krumDist += vec.Dist(out, center)
		}
		res.Rows = append(res.Rows, Fig2Row{
			F:                f,
			MedoidByzRate:    float64(medoidHits) / float64(trials),
			KrumByzRate:      float64(krumHits) / float64(trials),
			MedoidDistortion: medoidDist / float64(trials),
			KrumDistortion:   krumDist / float64(trials),
		})
	}

	section(w, "E2 / Figure 2 — collusion defeats the medoid rule, not Krum")
	fmt.Fprintf(w, "n = %d workers, %d trials per row; 'byz sel' = P[Byzantine proposal selected],\n'dist' = E‖output − true gradient‖ (correct spread ≈ 0.16)\n\n", n, trials)
	tbl := metrics.NewTable("f", "medoid byz sel", "medoid dist", "krum byz sel", "krum dist")
	for _, r := range res.Rows {
		tbl.AddRowf(r.F, r.MedoidByzRate, r.MedoidDistortion, r.KrumByzRate, r.KrumDistortion)
	}
	if err := tbl.Render(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nAt f = 1 the collusion has no decoys (its barycenter proposal is harmless);\nfrom f = 2 on, the medoid is dragged arbitrarily far (Figure 2) while Krum's\noutput stays inside the correct cluster for every f with 2f+2 < n.\n")
	return res, nil
}
