package harness

import (
	"io"
	"testing"
)

// TestRunStalenessShape runs the E8 sweep at Quick scale: every
// arrival yields a result, the synchronous control learns, bounded
// staleness does not destroy Krum's resilience outright, and the async
// cells actually drove the incremental cache's row-update path.
func TestRunStalenessShape(t *testing.T) {
	res, err := RunStaleness(io.Discard, Quick, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arrivals) < 4 || res.Arrivals[0] != "sync" {
		t.Fatalf("arrival grid %v, want sync first and at least 4 entries", res.Arrivals)
	}
	if len(res.AvgFinal) != len(res.Arrivals) || len(res.KrumFinal) != len(res.Arrivals) || len(res.KrumByzRate) != len(res.Arrivals) {
		t.Fatalf("ragged sweep: %d arrivals, %d avg, %d krum, %d rates",
			len(res.Arrivals), len(res.AvgFinal), len(res.KrumFinal), len(res.KrumByzRate))
	}
	if res.AvgFinal[0] < 0.5 {
		t.Errorf("synchronous unattacked averaging only reached %v (chance 0.1)", res.AvgFinal[0])
	}
	if res.KrumFinal[0] < 0.5 {
		t.Errorf("synchronous attacked krum only reached %v — resilience failed", res.KrumFinal[0])
	}
	for i, arr := range res.Arrivals {
		if res.KrumFinal[i] < 0.3 {
			t.Errorf("arrival %q: attacked krum collapsed to %v", arr, res.KrumFinal[i])
		}
	}
	if res.RowUpdates == 0 {
		t.Error("async sweep produced zero incremental row updates: cache path not exercised")
	}
	if res.Builds == 0 {
		t.Error("sweep produced zero matrix builds")
	}
}
