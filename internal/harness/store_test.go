package harness

// Monte-Carlo store coverage: table1 and ablation cells are pure
// functions of (partial spec, parameter string), so a configured
// scenario/store caches them like any distsgd cell. The warm-rerun
// test is the ROADMAP acceptance proof: a second run performs ZERO
// Monte-Carlo recomputation (witnessed by the distance-matrix build
// counter staying flat — every selector rule's Select builds matrices
// when it actually runs) and reproduces the cold results exactly.

import (
	"io"
	"math"
	"testing"

	"krum/internal/vec"
	"krum/scenario/store"
)

// sameFloat compares result floats with NaN == NaN (the untracked
// selection-rate sentinel).
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

func TestMonteCarloCellsWarmRerun(t *testing.T) {
	st := store.NewMemory()
	SetStore(st)
	defer SetStore(nil)

	coldBuilds := vec.MatrixBuildCount()
	coldT1, err := RunTable1(io.Discard, Quick, 10)
	if err != nil {
		t.Fatal(err)
	}
	coldE6, err := RunAblation(io.Discard, Quick, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.MatrixBuildCount() - coldBuilds; d == 0 {
		t.Fatal("cold Monte-Carlo runs built no distance matrices — the warm zero-rebuild assertion below would be vacuous")
	}
	stats := st.Stats()
	if stats.Entries != len(coldT1.Cells)+len(coldE6.Rows) {
		t.Fatalf("cold runs stored %d entries, want %d cells + %d rows",
			stats.Entries, len(coldT1.Cells), len(coldE6.Rows))
	}

	builds := vec.MatrixBuildCount()
	warmT1, err := RunTable1(io.Discard, Quick, 10)
	if err != nil {
		t.Fatal(err)
	}
	warmE6, err := RunAblation(io.Discard, Quick, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.MatrixBuildCount() - builds; d != 0 {
		t.Errorf("warm rerun built %d distance matrices, want 0 (cells recomputed)", d)
	}
	if hits := st.Stats().Hits - stats.Hits; hits != len(coldT1.Cells)+len(coldE6.Rows) {
		t.Errorf("warm rerun hit the store %d times, want every cell (%d)",
			hits, len(coldT1.Cells)+len(coldE6.Rows))
	}

	if len(warmT1.Cells) != len(coldT1.Cells) {
		t.Fatalf("warm table1 has %d cells, cold %d", len(warmT1.Cells), len(coldT1.Cells))
	}
	for i, cold := range coldT1.Cells {
		warm := warmT1.Cells[i]
		if warm.Attack != cold.Attack || warm.Rule != cold.Rule || !sameFloat(warm.ByzSelectedRate, cold.ByzSelectedRate) {
			t.Errorf("table1 cell %d: warm %+v != cold %+v", i, warm, cold)
		}
	}
	if len(warmE6.Rows) != len(coldE6.Rows) {
		t.Fatalf("warm ablation has %d rows, cold %d", len(warmE6.Rows), len(coldE6.Rows))
	}
	for i, cold := range coldE6.Rows {
		warm := warmE6.Rows[i]
		if warm.Rule != cold.Rule || !sameFloat(warm.CoordError, cold.CoordError) ||
			!sameFloat(warm.RestError, cold.RestError) || !sameFloat(warm.ByzSelectedRate, cold.ByzSelectedRate) {
			t.Errorf("ablation row %d: warm %+v != cold %+v", i, warm, cold)
		}
	}
}

// TestMonteCarloCellsSurviveReload pins that aux records round-trip
// through the JSONL file: a second process (a fresh Open on the same
// path) serves the same cells without recomputation.
func TestMonteCarloCellsSurviveReload(t *testing.T) {
	path := t.TempDir() + "/cells.jsonl"
	st1, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	SetStore(st1)
	defer SetStore(nil)
	cold, err := RunAblation(io.Discard, Quick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if skipped := st2.Stats().SkippedRecords; skipped != 0 {
		t.Fatalf("reload skipped %d records", skipped)
	}
	SetStore(st2)
	builds := vec.MatrixBuildCount()
	warm, err := RunAblation(io.Discard, Quick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.MatrixBuildCount() - builds; d != 0 {
		t.Errorf("reloaded store recomputed (built %d matrices)", d)
	}
	for i, c := range cold.Rows {
		w := warm.Rows[i]
		if w.Rule != c.Rule || !sameFloat(w.CoordError, c.CoordError) || !sameFloat(w.RestError, c.RestError) {
			t.Errorf("row %d: reloaded %+v != cold %+v", i, w, c)
		}
	}
}
