package harness

import (
	"fmt"
	"io"

	"krum"
	"krum/internal/metrics"
	"krum/internal/vec"
)

// Prop42Row is one σ operating point of the resilience verification.
type Prop42Row struct {
	// Sigma is the gradient-estimator per-coordinate deviation.
	Sigma float64
	// SinAlpha is η(n,f)·√d·σ/‖g‖; the Proposition 4.2 precondition is
	// SinAlpha < 1.
	SinAlpha float64
	// KrumDot is ⟨E Kr, g⟩ and KrumBound is (1−sinα)·‖g‖².
	KrumDot, KrumBound float64
	// KrumConditionI / KrumConditionII report Definition 3.2 for Krum.
	KrumConditionI, KrumConditionII bool
	// AverageConditionI reports condition (i) for averaging under the
	// same adversary (expected false).
	AverageConditionI bool
}

// Prop42Result summarizes experiment E4.
type Prop42Result struct {
	// N, F, D document the operating point.
	N, F, D int
	// Eta is η(n, f).
	Eta float64
	// Rows holds the σ sweep.
	Rows []Prop42Row
}

// RunProp42 executes E4: Monte-Carlo verification of (α, f)-Byzantine
// resilience for Krum (and failure of averaging) across estimator
// noise levels, under an adversary pushing hard against the gradient.
func RunProp42(w io.Writer, scale Scale, seed uint64) (*Prop42Result, error) {
	const n, f, d = 15, 3, 10
	trials := pick(scale, 800, 5000)

	g := make([]float64, d)
	vec.Fill(g, 1) // ‖g‖ = √d

	eta, err := krum.Eta(n, f)
	if err != nil {
		return nil, err
	}
	res := &Prop42Result{N: n, F: f, D: d, Eta: eta}

	// Directed adversary: large vectors opposite to g (the hardest
	// direction for condition (i)).
	adversary := func(g []float64, correct [][]float64) [][]float64 {
		out := make([][]float64, f)
		for i := range out {
			v := vec.Clone(g)
			vec.Scale(-50, v)
			out[i] = v
		}
		return out
	}

	for _, sigma := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		krumRep, err := krum.VerifyResilience(krum.ResilienceConfig{
			Rule:      krum.NewKrum(f),
			N:         n,
			F:         f,
			Gradient:  g,
			Sigma:     sigma,
			Adversary: adversary,
			Trials:    trials,
			Seed:      seed,
		})
		if err != nil {
			return nil, fmt.Errorf("krum at σ=%g: %w", sigma, err)
		}
		avgRep, err := krum.VerifyResilience(krum.ResilienceConfig{
			Rule:      krum.Average{},
			N:         n,
			F:         f,
			Gradient:  g,
			Sigma:     sigma,
			Adversary: adversary,
			Trials:    trials,
			Seed:      seed + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("average at σ=%g: %w", sigma, err)
		}
		res.Rows = append(res.Rows, Prop42Row{
			Sigma:             sigma,
			SinAlpha:          krumRep.SinAlpha,
			KrumDot:           krumRep.DotProduct,
			KrumBound:         krumRep.Bound,
			KrumConditionI:    krumRep.ConditionI,
			KrumConditionII:   krumRep.ConditionII,
			AverageConditionI: avgRep.ConditionI,
		})
	}

	section(w, "E4 / Proposition 4.2 — (α, f)-Byzantine resilience of Krum")
	fmt.Fprintf(w, "n = %d, f = %d, d = %d, η(n,f) = %.4g, ‖g‖ = √d; adversary: −50·g from every Byzantine slot; %d trials/row\n\n",
		n, f, d, eta, trials)
	tbl := metrics.NewTable("σ", "sin α", "⟨EKr,g⟩", "(1−sinα)‖g‖²", "krum (i)", "krum (ii)", "avg (i)")
	for _, r := range res.Rows {
		tbl.AddRowf(r.Sigma, r.SinAlpha, r.KrumDot, r.KrumBound, r.KrumConditionI, r.KrumConditionII, r.AverageConditionI)
	}
	if err := tbl.Render(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nKrum satisfies both Definition 3.2 conditions while the precondition\nη√d·σ < ‖g‖ holds (sin α < 1); averaging fails condition (i) at every σ.\n")
	return res, nil
}
