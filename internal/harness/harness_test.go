package harness

import (
	"io"
	"strings"
	"testing"
)

// The harness tests ARE the reproduction's shape checks: each asserts
// the paper's qualitative claim on the quick-scale experiment.

func TestRunLemma31Shape(t *testing.T) {
	res, err := RunLemma31(io.Discard, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker controls the linear rule's output exactly.
	if res.ForcedUpdateError > 1e-6 {
		t.Errorf("forced update error %v, want ≈ 0", res.ForcedUpdateError)
	}
	// Averaging is destroyed (diverged or chance accuracy); Krum is not.
	if !res.AverageDiverged && res.AverageFinalAccuracy > 0.6 {
		t.Errorf("averaging survived: diverged=%v acc=%v", res.AverageDiverged, res.AverageFinalAccuracy)
	}
	if res.KrumDiverged {
		t.Error("krum diverged")
	}
	if res.KrumFinalAccuracy < 0.85 {
		t.Errorf("krum accuracy %v under the Lemma 3.1 attack", res.KrumFinalAccuracy)
	}
}

func TestRunFig2Shape(t *testing.T) {
	res, err := RunFig2(io.Discard, Quick, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		switch {
		case row.F == 1:
			// With one attacker the collusion has no decoys: the
			// medoid tolerates it — its output stays in the correct
			// cluster (small distortion) even if the harmless
			// barycenter proposal is selected.
			if row.MedoidDistortion > 1 {
				t.Errorf("f=1: medoid distortion %v, expected tolerance", row.MedoidDistortion)
			}
		case row.F >= 2:
			// The Figure 2 capture: the medoid selects the planted
			// barycenter essentially always, and that barycenter has
			// been dragged far from the correct area.
			if row.MedoidByzRate < 0.9 {
				t.Errorf("f=%d: medoid byz rate %v, want ≈ 1", row.F, row.MedoidByzRate)
			}
			if row.MedoidDistortion < 100 {
				t.Errorf("f=%d: medoid distortion %v, want ≫ correct spread", row.F, row.MedoidDistortion)
			}
			if row.KrumByzRate > 0.05 {
				t.Errorf("f=%d: krum byz rate %v, want ≈ 0", row.F, row.KrumByzRate)
			}
		}
		// Krum's output stays in the correct cluster for every f.
		if row.KrumDistortion > 1 {
			t.Errorf("f=%d: krum distortion %v", row.F, row.KrumDistortion)
		}
	}
}

func TestRunLemma41Shape(t *testing.T) {
	res, err := RunLemma41(io.Discard, Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// The O(n²·d) model must explain the measurements well. Under the
	// race detector the timing is instrumentation-dominated and the
	// fit quality is meaningless (it flakes under load), so the
	// threshold check is left to the plain test job.
	if !raceDetectorEnabled && res.R2 < 0.95 {
		t.Errorf("n²·d fit r² = %v, want ≥ 0.95", res.R2)
	}
	if res.NanosPerN2D <= 0 {
		t.Errorf("fitted constant %v", res.NanosPerN2D)
	}
}

func TestRunProp42Shape(t *testing.T) {
	res, err := RunProp42(io.Discard, Quick, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SinAlpha < 1 {
			// Inside the precondition: Krum must satisfy both
			// conditions, averaging must fail (i).
			if !row.KrumConditionI || !row.KrumConditionII {
				t.Errorf("σ=%v: krum failed resilience inside precondition (i=%v ii=%v)",
					row.Sigma, row.KrumConditionI, row.KrumConditionII)
			}
		}
		if row.AverageConditionI {
			t.Errorf("σ=%v: averaging passed condition (i) under directed attack", row.Sigma)
		}
	}
	// sin α must increase with σ.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].SinAlpha <= res.Rows[i-1].SinAlpha {
			t.Error("sin α not monotone in σ")
		}
	}
}

func TestRunProp43Shape(t *testing.T) {
	res, err := RunProp43(io.Discard, Quick, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GradNorm) < 5 {
		t.Fatalf("%d measurements", len(res.GradNorm))
	}
	// The true gradient norm must shrink substantially despite the
	// omniscient attackers.
	if res.ReductionFactor < 3 {
		t.Errorf("gradient norm reduced only ×%v under attack", res.ReductionFactor)
	}
	// Parameter error must shrink too.
	first, last := res.ParamError[0], res.ParamError[len(res.ParamError)-1]
	if last > first/2 {
		t.Errorf("param error %v → %v, want meaningful contraction", first, last)
	}
	// The non-convex phase must also reach a flatter region.
	if len(res.NonConvexGradNorm) < 5 {
		t.Fatalf("%d non-convex measurements", len(res.NonConvexGradNorm))
	}
	if res.NonConvexReduction < 2 {
		t.Errorf("non-convex gradient norm reduced only ×%v under attack", res.NonConvexReduction)
	}
}

func TestRunFig4Shape(t *testing.T) {
	res, err := RunFig4(io.Discard, Quick, 6)
	if err != nil {
		t.Fatal(err)
	}
	assertAttackCurves(t, res)
}

func TestRunFig5Shape(t *testing.T) {
	res, err := RunFig5(io.Discard, Quick, 7)
	if err != nil {
		t.Fatal(err)
	}
	assertAttackCurves(t, res)
}

// assertAttackCurves checks the common Figure 4/5 shape: all curves
// except attacked averaging learn; attacked averaging is destroyed.
func assertAttackCurves(t *testing.T, res *AttackCurves) {
	t.Helper()
	if len(res.Rounds) < 5 {
		t.Fatalf("%d eval points", len(res.Rounds))
	}
	if res.AvgCleanFinal < 0.5 {
		t.Errorf("clean averaging only reached %v (chance 0.1)", res.AvgCleanFinal)
	}
	if res.KrumCleanFinal < 0.5 {
		t.Errorf("clean krum only reached %v", res.KrumCleanFinal)
	}
	if res.KrumByzFinal < 0.5 {
		t.Errorf("attacked krum only reached %v — resilience failed", res.KrumByzFinal)
	}
	// Averaging under attack: destroyed — chance-level or diverged.
	if !res.AvgByzDiverged && res.AvgByzFinal > 0.3 {
		t.Errorf("attacked averaging reached %v, want ≈ chance", res.AvgByzFinal)
	}
	// Krum under attack tracks its clean curve: within 15 points.
	if res.KrumCleanFinal-res.KrumByzFinal > 0.15 {
		t.Errorf("krum degraded too much under attack: clean %v vs byz %v",
			res.KrumCleanFinal, res.KrumByzFinal)
	}
}

func TestRunFig6Shape(t *testing.T) {
	res, err := RunFig6(io.Discard, Quick, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// m = n is averaging: destroyed by the Gaussian attack.
	last := res.Rows[len(res.Rows)-1]
	if last.M != res.N {
		t.Fatalf("last row m = %d", last.M)
	}
	if last.ByzFinal > 0.3 {
		t.Errorf("m=n byz accuracy %v, want chance", last.ByzFinal)
	}
	// Safe m values (m ≤ n−f−... here 1..8 with f=4, n=15) retain
	// resilience.
	for _, row := range res.Rows {
		if row.M <= res.N-2*res.F && row.ByzFinal < 0.5 {
			t.Errorf("m=%d byz accuracy %v, resilience expected", row.M, row.ByzFinal)
		}
		if row.CleanFinal < 0.5 {
			t.Errorf("m=%d clean accuracy %v", row.M, row.CleanFinal)
		}
	}
}

func TestRunFig7Shape(t *testing.T) {
	res, err := RunFig7(io.Discard, Quick, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.AverageCleanFinal < 0.5 {
		t.Errorf("clean average reference %v", res.AverageCleanFinal)
	}
	// Larger batches must not hurt; the largest batch should land close
	// to the clean reference (the Figure 7 recovery).
	largest := res.Rows[len(res.Rows)-1]
	if res.AverageCleanFinal-largest.KrumByzFinal > 0.12 {
		t.Errorf("batch=%d krum %v still far below clean average %v",
			largest.Batch, largest.KrumByzFinal, res.AverageCleanFinal)
	}
	if largest.KrumByzFinal+0.05 < res.Rows[0].KrumByzFinal {
		t.Errorf("accuracy decreased with batch: %v", res.Rows)
	}
}

func TestRunTable1Shape(t *testing.T) {
	res, err := RunTable1(io.Discard, Quick, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Krum rejects every value-distorting attack.
	for _, atk := range []string{"gaussian(sigma=200)", "omniscient(scale=20)", "signflip", "medoidcollusion(offset=10000)"} {
		cell := res.Cell(atk, "krum")
		if cell == nil {
			t.Fatalf("missing cell %s/krum", atk)
		}
		if cell.ByzSelectedRate > 0.05 {
			t.Errorf("krum selected byz under %s at rate %v", atk, cell.ByzSelectedRate)
		}
	}
	// Medoid is captured by the collusion.
	if cell := res.Cell("medoidcollusion(offset=10000)", "medoid"); cell == nil || cell.ByzSelectedRate < 0.9 {
		t.Errorf("medoid collusion cell: %+v", cell)
	}
	// Mimic is value-identical: selection rates may be anything, but
	// the cells must exist.
	if res.Cell("mimic", "krum") == nil {
		t.Error("missing mimic cell")
	}
}

func TestExperimentOutputRenders(t *testing.T) {
	// The textual output paths (tables, figures, ASCII charts) must not
	// error and must mention the key labels.
	var sb strings.Builder
	if _, err := RunFig2(&sb, Quick, 11); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 2", "medoid", "krum"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale names")
	}
	if Scale(9).String() != "scale(9)" {
		t.Error("unknown scale name")
	}
}

func TestRunAttackFigureBadAttackSpec(t *testing.T) {
	if _, err := RunAttackFigure(io.Discard, Quick, 1, "", "x"); err == nil {
		t.Error("empty attack spec accepted")
	}
	if _, err := RunAttackFigure(io.Discard, Quick, 1, "nosuchattack", "x"); err == nil {
		t.Error("unknown attack spec accepted")
	}
}

func TestPadTo(t *testing.T) {
	axis := []int{9, 19, 29}
	got := padTo(axis, []int{9}, []float64{0.5}, 0.1)
	want := []float64{0.5, 0.5, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("padTo = %v", got)
		}
	}
	got = padTo(axis, nil, nil, 0.1)
	if got[0] != 0.1 || got[2] != 0.1 {
		t.Errorf("padTo fallback = %v", got)
	}
}

func TestImageWorkloadLabels(t *testing.T) {
	w, err := newImageWorkload(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.Description, "synthetic MNIST") {
		t.Errorf("description %q", w.Description)
	}
	// Quick scale is a 10×10 image grid.
	if w.Dataset.Dim() != 100 {
		t.Errorf("dim %d, want 100", w.Dataset.Dim())
	}
}
