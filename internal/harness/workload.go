package harness

import (
	"fmt"

	"krum/workload"
)

// WorkloadUsage returns the generated workload help line — CLI help
// text is built from this so it can never drift from the registry.
func WorkloadUsage() string { return workload.Usage() }

// BuildWorkload constructs a workload at the given scale. Bare legacy
// shorthands ("mnist", "mnist-conv", "mixture") expand to
// scale-appropriate registry specs; anything else is parsed as a
// workload registry spec verbatim, so callers can request e.g.
// "mnist(size=20,hidden=64)" directly.
func BuildWorkload(name string, scale Scale, seed uint64) (*workload.Workload, error) {
	spec := name
	switch name {
	case "mnist":
		spec = fmt.Sprintf("mnist(size=%d,hidden=%d)", pick(scale, 10, 16), pick(scale, 16, 48))
	case "mnist-conv", "mnistconv":
		spec = fmt.Sprintf("mnistconv(size=%d,channels=%d,hidden=%d)",
			pick(scale, 12, 16), pick(scale, 4, 8), pick(scale, 16, 32))
	case "mixture":
		spec = "gmm"
	}
	w, err := workload.Parse(workload.SpecContext{Seed: seed}, spec)
	if err != nil {
		return nil, fmt.Errorf("workload %q: %w", name, err)
	}
	return w, nil
}
