package harness

import (
	"fmt"

	"krum/data"
	"krum/model"
)

// Workload bundles a dataset with a matching model architecture — the
// unit the CLI binaries select by name.
type Workload struct {
	// Name is the CLI identifier.
	Name string
	// Dataset is the sample stream.
	Dataset data.Dataset
	// Model is the architecture (callers clone it).
	Model model.Model
	// Description is a human-readable summary.
	Description string
}

// WorkloadNames lists the identifiers accepted by BuildWorkload.
func WorkloadNames() []string {
	return []string{"mnist", "mnist-conv", "spambase", "mixture", "regression"}
}

// BuildWorkload constructs a named workload at the given scale.
func BuildWorkload(name string, scale Scale, seed uint64) (*Workload, error) {
	switch name {
	case "mnist":
		w, err := newImageWorkload(scale, seed)
		if err != nil {
			return nil, err
		}
		return &Workload{Name: name, Dataset: w.ds, Model: w.mlp, Description: w.label}, nil
	case "mnist-conv":
		size := pick(scale, 12, 16)
		ds, err := data.NewSyntheticMNIST(size, 0.05)
		if err != nil {
			return nil, err
		}
		conv, err := model.NewConvNet(size, size, pick(scale, 4, 8), pick(scale, 16, 32), 10, seed)
		if err != nil {
			return nil, err
		}
		return &Workload{
			Name: name, Dataset: ds, Model: conv,
			Description: fmt.Sprintf("%dx%d synthetic MNIST, ConvNet(d=%d)", size, size, conv.Dim()),
		}, nil
	case "spambase":
		ds, err := data.NewSyntheticSpambase(0.394, seed)
		if err != nil {
			return nil, err
		}
		lr, err := model.NewLogistic(ds.Dim(), seed+1)
		if err != nil {
			return nil, err
		}
		return &Workload{
			Name: name, Dataset: ds, Model: lr,
			Description: fmt.Sprintf("synthetic spambase (57 features), logistic regression (d=%d)", lr.Dim()),
		}, nil
	case "mixture":
		ds, err := data.NewGaussianMixture(3, 8, 4, 0.5, seed)
		if err != nil {
			return nil, err
		}
		clf, err := model.NewSoftmaxClassifier(8, 3, seed+1)
		if err != nil {
			return nil, err
		}
		return &Workload{
			Name: name, Dataset: ds, Model: clf,
			Description: fmt.Sprintf("3-class Gaussian mixture, softmax classifier (d=%d)", clf.Dim()),
		}, nil
	case "regression":
		ds, err := data.NewLinearRegressionStream(12, 1, 0.2, seed)
		if err != nil {
			return nil, err
		}
		lr, err := model.NewLinearRegression(12, 1, seed+1)
		if err != nil {
			return nil, err
		}
		return &Workload{
			Name: name, Dataset: ds, Model: lr,
			Description: fmt.Sprintf("linear regression stream, quadratic cost (d=%d)", lr.Dim()),
		}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (have %v): %w", name, WorkloadNames(), ErrConfig)
	}
}
