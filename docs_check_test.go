package krum_test

// Documentation drift guards, run as the blocking `make check-docs`
// target (and with the ordinary test suite): TestDocsRegistryBuiltins
// pins that every registered rule/attack/schedule/workload/arrival
// built-in is named in
// the user-facing docs AND still round-trips through its parser, so
// the spec tables in README.md and EXPERIMENTS.md cannot silently rot;
// TestDocsExportedIdentifiers is a doc-comment lint over the packages
// this repository added most recently (scenario/store,
// scenario/shardproto and cmd/krum-scenariod): every exported
// identifier, struct field included, must carry a doc comment.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"

	"krum"
	"krum/attack"
	"krum/workload"
)

// usageNames extracts registry names from a generated Usage() line
// ("average | bulyan(f) | ..." → ["average", "bulyan", ...]).
func usageNames(usage string) []string {
	var out []string
	for _, part := range strings.Split(usage, "|") {
		name := strings.TrimSpace(part)
		if i := strings.IndexByte(name, '('); i >= 0 {
			name = name[:i]
		}
		if name != "" {
			out = append(out, name)
		}
	}
	return out
}

// minimalSpec returns a parseable spec for a registry name: the bare
// name where defaults exist, otherwise the name with its minimum
// required parameters.
func minimalSpec(name string) string {
	switch name {
	case "krumk":
		return "krumk(k=2)"
	case "const", "inverset", "step":
		return name + "(gamma=0.1)"
	case "noniid":
		return "noniid(base=gmm(k=3,dim=4),classes=2)"
	case "bounded":
		return "bounded(tau=2)"
	case "bernoulli":
		return "bernoulli(tau=4)"
	default:
		return name
	}
}

// docsText concatenates the user-facing documents the registry tables
// live in.
func docsText(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for _, path := range []string{"README.md", "EXPERIMENTS.md", "ARCHITECTURE.md"} {
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s (run from the repository root): %v", path, err)
		}
		sb.Write(blob)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestDocsRegistryBuiltins checks, for every registry axis, that each
// built-in is (a) mentioned in the user-facing docs and (b) still
// constructible and round-tripping via its parser — the guarantee the
// docs promise ("Parse(x.Name()) reconstructs x").
func TestDocsRegistryBuiltins(t *testing.T) {
	docs := docsText(t)

	check := func(axis, name string, parse func(spec string) (string, error)) {
		t.Helper()
		if !strings.Contains(docs, name) {
			t.Errorf("%s %q is registered but named nowhere in README.md/EXPERIMENTS.md/ARCHITECTURE.md", axis, name)
		}
		canonical, err := parse(minimalSpec(name))
		if err != nil {
			t.Errorf("%s %q no longer parses: %v", axis, name, err)
			return
		}
		again, err := parse(canonical)
		if err != nil {
			t.Errorf("%s %q: canonical form %q does not re-parse: %v", axis, name, canonical, err)
			return
		}
		if again != canonical {
			t.Errorf("%s %q: canonical form not a fixed point: %q → %q", axis, name, canonical, again)
		}
	}

	for _, name := range usageNames(krum.RuleUsage()) {
		check("rule", name, func(spec string) (string, error) {
			r, err := krum.ParseRuleIn(krum.SpecContext{N: 15, F: 3}, spec)
			if err != nil {
				return "", err
			}
			return r.Name(), nil
		})
	}
	for _, name := range usageNames(attack.Usage()) {
		check("attack", name, func(spec string) (string, error) {
			a, err := attack.Parse(spec)
			if err != nil {
				return "", err
			}
			return a.Name(), nil
		})
	}
	for _, name := range usageNames(krum.ScheduleUsage()) {
		check("schedule", name, func(spec string) (string, error) {
			s, err := krum.ParseSchedule(spec)
			if err != nil {
				return "", err
			}
			return s.Name(), nil
		})
	}
	for _, name := range usageNames(workload.Usage()) {
		check("workload", name, func(spec string) (string, error) {
			w, err := workload.Parse(workload.SpecContext{Seed: 1}, spec)
			if err != nil {
				return "", err
			}
			return w.Spec, nil
		})
	}
	for _, name := range usageNames(krum.ArrivalUsage()) {
		check("arrival", name, func(spec string) (string, error) {
			p, err := krum.ParseArrival(spec)
			if err != nil {
				return "", err
			}
			return p.Name(), nil
		})
	}
}

// lintedPackages are the directories held to the every-exported-
// identifier-documented standard.
var lintedPackages = []string{"scenario/store", "scenario/shardproto", "cmd/krum-scenariod"}

// TestDocsExportedIdentifiers fails for any exported declaration in
// the linted packages — function, method, type, const, var, or struct
// field — that lacks a doc comment.
func TestDocsExportedIdentifiers(t *testing.T) {
	for _, dir := range lintedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			sawPackageDoc := false
			for _, file := range pkg.Files {
				if file.Doc != nil {
					sawPackageDoc = true
				}
				lintFile(t, fset, file)
			}
			if !sawPackageDoc {
				t.Errorf("%s: package %s has no package-level doc comment", dir, pkg.Name)
			}
		}
	}
}

// lintFile reports every undocumented exported declaration in one file.
func lintFile(t *testing.T, fset *token.FileSet, file *ast.File) {
	t.Helper()
	pos := func(n ast.Node) string { return fset.Position(n.Pos()).String() }
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				t.Errorf("%s: exported func %s has no doc comment", pos(d), d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
						t.Errorf("%s: exported type %s has no doc comment", pos(sp), sp.Name.Name)
					}
					if st, ok := sp.Type.(*ast.StructType); ok && sp.Name.IsExported() {
						lintFields(t, fset, sp.Name.Name, st)
					}
				case *ast.ValueSpec:
					for _, name := range sp.Names {
						if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							t.Errorf("%s: exported %s %s has no doc comment",
								pos(sp), strings.ToLower(d.Tok.String()), name.Name)
						}
					}
				}
			}
		}
	}
}

// lintFields reports undocumented exported fields of an exported
// struct type.
func lintFields(t *testing.T, fset *token.FileSet, typeName string, st *ast.StructType) {
	t.Helper()
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.IsExported() && field.Doc == nil && field.Comment == nil {
				t.Errorf("%s: exported field %s.%s has no doc comment",
					fset.Position(field.Pos()), typeName, name.Name)
			}
		}
	}
}
