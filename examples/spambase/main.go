// spambase trains a spam filter (logistic regression on the synthetic
// Spambase stream) while a quarter of the workers emit σ=200 Gaussian
// garbage — the full paper's Figure 4 attack — and prints the selection
// histogram showing Krum never picking a Byzantine proposal.
//
// The whole experiment is declarative: one scenario.Spec names every
// axis as a registry spec string, a Matrix sweeps the rule axis, and
// the Runner executes the grid concurrently.
//
//	go run ./examples/spambase
package main

import (
	"fmt"
	"log"
	"math"

	"krum/scenario"
)

func main() {
	base := scenario.Spec{
		Workload:       "spambase(spamrate=0.394)",
		Rule:           "krum",
		Attack:         "gaussian(sigma=200)",
		Schedule:       "inverset(gamma=0.3,power=0.75,t0=150)",
		N:              12,
		F:              3,
		Rounds:         300,
		BatchSize:      32,
		Seed:           11,
		EvalEvery:      50,
		TrackSelection: true,
	}
	m := scenario.Matrix{
		Base: base,
		// Rules with an f parameter pick it up from the cluster shape.
		Rules: []string{"average", "krum", "multikrum(m=5)"},
	}
	fmt.Printf("workload: %s — n=%d, f=%d under %s\n\n", base.Workload, base.N, base.F, base.Attack)

	results, err := (&scenario.Runner{}).Run(m)
	if err != nil {
		log.Fatal(err)
	}
	for _, cr := range results {
		res := cr.Result
		status := fmt.Sprintf("final accuracy %.3f", res.FinalTestAccuracy)
		if res.Diverged {
			status = fmt.Sprintf("DIVERGED at round %d", res.DivergedRound)
		}
		sel := "n/a (not a selection rule)"
		if rate := res.ByzantineSelectionRate(); !math.IsNaN(rate) {
			sel = fmt.Sprintf("%.1f%% of rounds", 100*rate)
		}
		fmt.Printf("%-16s %-28s byzantine selected: %s\n", cr.Spec.Rule, status, sel)
	}
}
