// spambase trains a spam filter (logistic regression on the synthetic
// Spambase stream) while a third of the workers emit σ=200 Gaussian
// garbage — the full paper's Figure 4 attack — and prints the selection
// histogram showing Krum never picking a Byzantine proposal.
//
//	go run ./examples/spambase
package main

import (
	"fmt"
	"log"

	"krum"
	"krum/attack"
	"krum/data"
	"krum/distsgd"
	"krum/model"
)

func main() {
	const (
		n, f   = 12, 3
		rounds = 300
	)

	ds, err := data.NewSyntheticSpambase(0.394, 3)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := model.NewLogistic(ds.Dim(), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: synthetic spambase (57 features), logistic regression\n")
	fmt.Printf("cluster: n=%d, f=%d Gaussian attackers (σ=200)\n\n", n, f)

	run := func(rule krum.Rule) *distsgd.Result {
		res, err := distsgd.Run(distsgd.Config{
			Model:          clf,
			Dataset:        ds,
			Rule:           rule,
			N:              n,
			F:              f,
			BatchSize:      32,
			Schedule:       krum.ScheduleInverseTStretched(0.3, 0.75, 150),
			Rounds:         rounds,
			Attack:         attack.Gaussian{Sigma: 200},
			Seed:           11,
			EvalEvery:      50,
			TrackSelection: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Rules come from the central registry; f defaults to the declared
	// cluster shape.
	specCtx := krum.SpecContext{N: n, F: f}
	for _, spec := range []string{"average", "krum", "multikrum(m=5)"} {
		rule, err := krum.ParseRuleIn(specCtx, spec)
		if err != nil {
			log.Fatal(err)
		}
		res := run(rule)
		status := fmt.Sprintf("final accuracy %.3f", res.FinalTestAccuracy)
		if res.Diverged {
			status = fmt.Sprintf("DIVERGED at round %d", res.DivergedRound)
		}
		rate := res.ByzantineSelectionRate()
		sel := "n/a (not a selection rule)"
		if res.SelectionTrackedRounds > 0 && rate == rate { // rate != NaN
			sel = fmt.Sprintf("%.1f%% of rounds", 100*rate)
		}
		fmt.Printf("%-16s %-28s byzantine selected: %s\n", rule.Name(), status, sel)
	}
}
