// tcp-cluster demonstrates the real-network substrate inside one
// process: a parameter server listens on loopback TCP, five workers
// (one of them a Gaussian attacker) connect as real network peers, and
// Krum trains through the wire protocol.
//
// The same roles run as separate processes / machines with the
// cmd/krum-ps and cmd/krum-worker binaries.
//
//	go run ./examples/tcp-cluster
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"krum"
	"krum/data"
	"krum/distsgd"
	"krum/internal/transport"
	"krum/model"
)

func main() {
	const (
		nWorkers = 5
		fTol     = 1
		rounds   = 120
	)

	ds, err := data.NewGaussianMixture(3, 8, 4, 0.5, 2)
	if err != nil {
		log.Fatal(err)
	}
	m, err := model.NewSoftmaxClassifier(8, 3, 4)
	if err != nil {
		log.Fatal(err)
	}

	pool, err := transport.Listen("127.0.0.1:0", m.Dim())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameter server listening on %s\n", pool.Addr())

	// Launch the workers as real TCP clients (goroutines here; separate
	// processes in production — the bytes on the wire are identical).
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		behaviour := transport.BehaviourCorrect
		if i == nWorkers-1 {
			behaviour = transport.BehaviourGaussian // one attacker
		}
		wg.Add(1)
		go func(i int, b transport.WorkerBehaviour) {
			defer wg.Done()
			served, err := transport.RunWorker(transport.WorkerConfig{
				Addr:      pool.Addr(),
				Model:     m,
				Dataset:   ds,
				Batch:     16,
				Behaviour: b,
				Seed:      uint64(100 + i),
			})
			if err != nil {
				log.Printf("worker %d: %v", i, err)
				return
			}
			fmt.Printf("worker %d (%s) served %d rounds\n", i, b, served)
		}(i, behaviour)
	}

	if err := pool.AcceptWorkers(nWorkers, 30*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d workers joined (1 Byzantine); training with krum(f=%d)\n\n", nWorkers, fTol)

	res, err := distsgd.Run(distsgd.Config{
		Model:     m,
		Dataset:   ds,
		RuleSpec:  fmt.Sprintf("krum(f=%d)", fTol), // constructed via the registry
		N:         nWorkers,
		F:         0, // all proposals arrive over the wire
		Schedule:  krum.ScheduleInverseTStretched(0.4, 0.75, 60),
		Rounds:    rounds,
		Seed:      9,
		EvalEvery: 30,
		Source:    pool,
		OnRound: func(s distsgd.RoundStats) {
			if s.Evaluated {
				fmt.Printf("round %3d  test accuracy %.3f\n", s.Round, s.TestAccuracy)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	wg.Wait()
	fmt.Printf("\nfinal accuracy %.3f despite the Gaussian attacker on the wire\n", res.FinalTestAccuracy)
}
