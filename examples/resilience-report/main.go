// resilience-report sweeps the gradient-estimator noise σ and prints a
// Definition 3.2 resilience report for Krum, Multi-Krum, Bulyan and
// averaging under a directed adversary — a library-level view of
// Proposition 4.2 (no training loop involved).
//
//	go run ./examples/resilience-report
package main

import (
	"fmt"
	"log"

	"krum"
)

func main() {
	const (
		n, f, d = 15, 3, 10
		trials  = 2000
	)
	g := make([]float64, d)
	for i := range g {
		g[i] = 1 // true gradient, ‖g‖ = √d
	}

	eta, err := krum.Eta(n, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d f=%d d=%d   η(n,f)=%.3f   precondition: σ < ‖g‖/(η√d) = %.4f\n\n",
		n, f, d, eta, 1/eta)

	adversary := func(g []float64, correct [][]float64) [][]float64 {
		out := make([][]float64, f)
		for i := range out {
			v := make([]float64, len(g))
			for j := range v {
				v[j] = -50 * g[j]
			}
			out[i] = v
		}
		return out
	}

	// Rules come from the central registry; f defaults to the declared
	// cluster shape (n = 15 supports Bulyan's n ≥ 4f+3 at f = 3).
	specCtx := krum.SpecContext{N: n, F: f}
	rules := make([]krum.Rule, 0, 4)
	for _, spec := range []string{"krum", fmt.Sprintf("multikrum(m=%d)", n-2*f), "bulyan", "average"} {
		rule, err := krum.ParseRuleIn(specCtx, spec)
		if err != nil {
			log.Fatal(err)
		}
		rules = append(rules, rule)
	}
	fmt.Printf("%-16s %-6s %-9s %-12s %-12s %-8s %-8s\n",
		"rule", "σ", "sin α", "⟨EF,g⟩", "bound", "cond(i)", "cond(ii)")
	for _, rule := range rules {
		for _, sigma := range []float64{0.02, 0.08, 0.12} {
			rep, err := krum.VerifyResilience(krum.ResilienceConfig{
				Rule:      rule,
				N:         n,
				F:         f,
				Gradient:  g,
				Sigma:     sigma,
				Adversary: adversary,
				Trials:    trials,
				Seed:      7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %-6.2f %-9.3f %-12.4f %-12.4f %-8v %-8v\n",
				rule.Name(), sigma, rep.SinAlpha, rep.DotProduct, rep.Bound,
				rep.ConditionI, rep.ConditionII)
		}
	}
	fmt.Println("\ncond(i): ⟨EF,g⟩ ≥ (1−sinα)‖g‖²; cond(ii): bounded moments r=2..4 (Def. 3.2)")
}
