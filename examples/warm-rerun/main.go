// warm-rerun demonstrates the content-addressed result store: the same
// scenario grid is executed twice against one JSONL store — the cold
// pass trains every cell and writes it through, the warm pass is
// served entirely from disk (zero training rounds, zero
// distance-matrix builds) with byte-identical results. The store file
// survives the process, so a third run in a NEW process would be just
// as warm; krum-experiments -store and the krum-scenariod service use
// exactly this mechanism for resumable experiment grids.
//
//	go run ./examples/warm-rerun
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"krum/scenario"
	"krum/scenario/store"
)

func main() {
	m := scenario.Matrix{
		Base: scenario.Spec{
			Workload:  "gmm(k=3,dim=8,radius=4,sigma=0.5)",
			Rule:      "krum",
			Schedule:  "inverset(gamma=0.5,power=0.75,t0=100)",
			N:         11,
			F:         2,
			Rounds:    120,
			BatchSize: 16,
			Seed:      7,
			EvalEvery: 30,
			EvalBatch: 256,
		},
		Rules:   []string{"krum", "multikrum(m=6)", "average"},
		Attacks: []string{"none", "gaussian(sigma=200)"},
	}

	path := filepath.Join(os.TempDir(), "krum-warm-rerun.jsonl")
	os.Remove(path) // start cold for a clean demonstration
	st, err := store.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	defer st.Close()

	runner := &scenario.Runner{Store: st}

	start := time.Now()
	cold, err := runner.Run(m)
	if err != nil {
		log.Fatal(err)
	}
	coldTime := time.Since(start)

	start = time.Now()
	warm, err := runner.Run(m)
	if err != nil {
		log.Fatal(err)
	}
	warmTime := time.Since(start)

	identical, cachedCells := 0, 0
	for i := range cold {
		a, _ := json.Marshal(cold[i].Result)
		b, _ := json.Marshal(warm[i].Result)
		if string(a) == string(b) {
			identical++
		}
		if warm[i].Cached {
			cachedCells++
		}
	}

	fmt.Printf("grid: %d cells (%d rules × %d attacks)\n", m.Size(), len(m.Rules), len(m.Attacks))
	fmt.Printf("cold run: %8.1fms — every cell trained and persisted\n", float64(coldTime.Microseconds())/1000)
	fmt.Printf("warm run: %8.1fms — %d/%d cells served from %s\n",
		float64(warmTime.Microseconds())/1000, cachedCells, len(warm), path)
	fmt.Printf("byte-identical results: %d/%d\n", identical, len(cold))
	fmt.Printf("speedup: %.0f×\n", float64(coldTime)/float64(warmTime))
	fmt.Printf("store: %s\n", st.Stats())
}
