// mnist-byzantine trains an MLP digit classifier with 15 workers of
// which 4 mount the omniscient attack (they know every honest gradient
// and propose its scaled negation), comparing classical averaging with
// Krum — the headline experiment of the paper.
//
//	go run ./examples/mnist-byzantine
package main

import (
	"fmt"
	"log"

	"krum"
	"krum/data"
	"krum/distsgd"
	"krum/model"
)

func main() {
	const (
		n, f   = 15, 4
		rounds = 200
	)

	ds, err := data.NewSyntheticMNIST(12, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	mlp, err := model.NewMLP(ds.Dim(), []int{24}, 10, model.ActReLU, model.SoftmaxCrossEntropy{}, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: 12x12 synthetic MNIST, MLP d=%d\n", mlp.Dim())
	fmt.Printf("cluster: n=%d workers, f=%d omniscient Byzantine\n\n", n, f)

	// Rules come from the central registry; "krum" picks up f from the
	// spec context.
	specCtx := krum.SpecContext{N: n, F: f}
	train := func(spec string) *distsgd.Result {
		rule, err := krum.ParseRuleIn(specCtx, spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := distsgd.Run(distsgd.Config{
			Model:     mlp,
			Dataset:   ds,
			Rule:      rule,
			N:         n,
			F:         f,
			BatchSize: 24,
			// The attack and schedule are registry specs too — the same
			// strings a JSON scenario file would carry.
			ScheduleSpec: "inverset(gamma=0.5,power=0.75,t0=100)",
			Rounds:       rounds,
			AttackSpec:   "omniscient(scale=20)",
			Seed:         1,
			EvalEvery:    25,
			OnRound: func(s distsgd.RoundStats) {
				if s.Evaluated {
					fmt.Printf("  [%s] round %3d  accuracy %.3f\n", rule.Name(), s.Round, s.TestAccuracy)
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("--- averaging under attack ---")
	avg := train("average")
	fmt.Println("--- krum under attack ---")
	kr := train("krum")

	fmt.Println()
	if avg.Diverged {
		fmt.Printf("averaging: DIVERGED at round %d\n", avg.DivergedRound)
	} else {
		fmt.Printf("averaging: final accuracy %.3f (chance = 0.100)\n", avg.FinalTestAccuracy)
	}
	fmt.Printf("krum:      final accuracy %.3f\n", kr.FinalTestAccuracy)
}
