// Quickstart: aggregate gradient proposals with Krum and watch it
// ignore Byzantine garbage that destroys the average.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"krum"
)

func main() {
	const (
		n = 9 // workers
		f = 2 // Byzantine among them (n > 2f+2 ✓)
		d = 4 // parameter dimension
	)

	// Seven honest workers estimate the true gradient (1, 1, 1, 1)
	// with small errors; two Byzantine workers propose garbage.
	proposals := [][]float64{
		{1.02, 0.97, 1.01, 0.99},
		{0.95, 1.04, 1.00, 1.02},
		{1.01, 1.00, 0.98, 0.97},
		{0.99, 0.98, 1.03, 1.01},
		{1.03, 1.02, 0.99, 0.98},
		{0.97, 0.99, 1.02, 1.03},
		{1.00, 1.01, 0.97, 1.00},
		{250, -310, 440, -170}, // Byzantine
		{-500, 380, -220, 640}, // Byzantine
	}

	// Rules are constructed from registry spec strings — the same form
	// the CLI binaries and distsgd.Config.RuleSpec accept.
	averageRule, err := krum.ParseRule("average")
	if err != nil {
		log.Fatal(err)
	}
	average := make([]float64, d)
	if err := averageRule.Aggregate(average, proposals); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average (poisoned):  %6.2f\n", average)

	parsed, err := krum.ParseRule(fmt.Sprintf("krum(f=%d)", f))
	if err != nil {
		log.Fatal(err)
	}
	rule := parsed.(*krum.Krum)
	out := make([]float64, d)
	if err := rule.Aggregate(out, proposals); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("krum   (resilient): %6.2f\n", out)

	// Krum exposes its per-worker scores: the Byzantine proposals are
	// visibly isolated.
	scores, err := rule.Scores(proposals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nkrum scores (lower = more central):")
	for i, s := range scores {
		tag := ""
		if i >= n-f {
			tag = "  <- Byzantine"
		}
		fmt.Printf("  worker %d: %12.2f%s\n", i, s, tag)
	}

	// The Proposition 4.2 constant for this cluster size.
	eta, err := krum.Eta(n, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nη(n=%d, f=%d) = %.3f — resilient while η·√d·σ < ‖g‖\n", n, f, eta)
}
