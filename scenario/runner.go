package scenario

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"krum/distsgd"
)

// ResultStore caches cell results across runs, keyed by the cell's
// fully-resolved content (see scenario/store for the canonical-hash
// implementation and its persistence format). Runner consults it
// before running a cell and writes fresh results through, which makes
// repeated and overlapping grids near-free: a cache hit returns the
// stored result without touching the training engine — zero rounds,
// zero distance-matrix builds.
//
// Implementations must be safe for concurrent use: Runner calls
// Lookup/Save from multiple worker goroutines, and krum-scenariod
// shares one store across concurrently-running matrices.
type ResultStore interface {
	// Lookup returns the stored result for an equivalent spec, if any.
	// Implementations must return a result the caller may retain and
	// mutate (a private copy), and must treat any internal failure —
	// unkeyable spec, corrupt record — as a miss rather than an error:
	// the runner then recomputes, which is always safe.
	Lookup(Spec) (*distsgd.Result, bool)
	// Save persists a freshly-computed result for the spec. Runner only
	// saves successful cells; a Save error is reported (CellResult.
	// StoreErr) but does not invalidate the computed result.
	Save(Spec, *distsgd.Result) error
}

// CellResult is the outcome of one matrix cell.
type CellResult struct {
	// Index is the cell's position in the expansion order — results are
	// returned sorted by it, so output is deterministic regardless of
	// which goroutine finished first.
	Index int
	// Spec is the cell that ran.
	Spec Spec
	// Result is the training outcome (nil when Err is set).
	Result *distsgd.Result
	// Err is the cell's failure, if any; other cells still run.
	Err error
	// Cached reports that Result was served without executing the cell
	// in this call: a ResultStore hit, or — under a single-flight store —
	// another caller's concurrent execution of the same cell. Either
	// way the result is byte-identical (under distsgd.Result's stable
	// JSON encoding) to what a fresh run would produce — the store key
	// covers every result-affecting Spec field.
	Cached bool
	// StoreErr records a failed write-through to the ResultStore. It is
	// non-fatal: Result is still the valid computed outcome, only its
	// persistence failed. RunCells folds StoreErrs into its aggregate
	// error so they are not silently lost.
	StoreErr error
}

// Runner executes matrix cells across a bounded goroutine pool. Every
// cell is an independent, explicitly-seeded training run, so results
// are identical whatever the worker count or scheduling — two
// executions of the same matrix agree cell for cell.
type Runner struct {
	// Workers bounds cell-level concurrency; 0 means runtime.NumCPU().
	Workers int
	// OnCell, when non-nil, observes each result as its cell finishes
	// (completion order, not index order). Calls are serialized, so the
	// callback may write to shared state without locking.
	OnCell func(CellResult)
	// Store, when non-nil, is consulted before each cell runs: a hit
	// skips the run entirely (CellResult.Cached), a miss computes the
	// cell and writes the result through. Because cells are pure
	// functions of their Spec, hit results equal computed results; the
	// runner's ordering and determinism guarantees are unchanged by the
	// store. When the store implements SingleFlighter (scenario/store's
	// Store does), two concurrent identical cells collapse to one
	// execution; with a plain store both may miss and both compute —
	// results being identical, the duplicate write is harmless (last
	// write wins).
	Store ResultStore
	// Executor, when non-nil, runs cells in place of the default local
	// path (LocalExecutor{Store: r.Store}) — e.g. the scenariod
	// coordinator's fleet dispatcher. A custom Executor owns its own
	// store consultation, so Store is ignored when it is set.
	Executor CellExecutor
}

// Run expands the matrix and executes every cell. The returned slice is
// in expansion order; the returned error joins the per-cell failures
// (nil when every cell succeeded).
func (r *Runner) Run(m Matrix) ([]CellResult, error) {
	return r.RunCells(m.Cells())
}

// RunCells executes an explicit cell list — the escape hatch for grids
// that are not a single cartesian product (e.g. a clean arm at f = 0
// joined with an attacked arm at f > 0).
//
// Ordering and error aggregation are guaranteed as follows: the
// returned slice always has len(cells) entries with results[i].Index
// == i holding the outcome of cells[i], regardless of completion
// order, worker count, or store hits interleaved with live runs
// (OnCell alone observes completion order). The returned error is the
// errors.Join of every per-cell failure and store write-through
// failure in cell-index order — nil if and only if every cell
// succeeded and persisted; even when it is non-nil, the full result
// slice is returned, so callers can salvage the cells that succeeded.
func (r *Runner) RunCells(cells []Spec) ([]CellResult, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("no cells to run: %w", ErrBadSpec)
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	exec := r.Executor
	if exec == nil {
		exec = LocalExecutor{Store: r.Store}
	}
	results := make([]CellResult, len(cells))
	idx := make(chan int)
	var cbMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				cr := exec.ExecuteCell(i, cells[i])
				results[i] = cr
				if r.OnCell != nil {
					cbMu.Lock()
					r.OnCell(cr)
					cbMu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("cell %d (%s): %w", i, results[i].Spec.Label(), results[i].Err))
		}
		if results[i].StoreErr != nil {
			errs = append(errs, fmt.Errorf("cell %d (%s): storing result: %w", i, results[i].Spec.Label(), results[i].StoreErr))
		}
	}
	return results, errors.Join(errs...)
}

// RunCell executes one cell exactly as Runner does: consult the store
// (st may be nil), on a miss compile and train in-process (collapsing
// concurrent identical cells to one execution when the store
// single-flights), then write the result through. It is the shared
// single-cell path between Runner, the krum-scenariod service's
// cross-matrix pool, and scenariod workers executing dispatched cells.
func RunCell(st ResultStore, index int, cell Spec) CellResult {
	return RunCellWith(st, index, cell, func() (*distsgd.Result, error) {
		return ComputeCell(cell)
	})
}
