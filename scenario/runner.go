package scenario

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"krum/distsgd"
)

// CellResult is the outcome of one matrix cell.
type CellResult struct {
	// Index is the cell's position in the expansion order — results are
	// returned sorted by it, so output is deterministic regardless of
	// which goroutine finished first.
	Index int
	// Spec is the cell that ran.
	Spec Spec
	// Result is the training outcome (nil when Err is set).
	Result *distsgd.Result
	// Err is the cell's failure, if any; other cells still run.
	Err error
}

// Runner executes matrix cells across a bounded goroutine pool. Every
// cell is an independent, explicitly-seeded training run, so results
// are identical whatever the worker count or scheduling — two
// executions of the same matrix agree cell for cell.
type Runner struct {
	// Workers bounds cell-level concurrency; 0 means runtime.NumCPU().
	Workers int
	// OnCell, when non-nil, observes each result as its cell finishes
	// (completion order, not index order). Calls are serialized, so the
	// callback may write to shared state without locking.
	OnCell func(CellResult)
}

// Run expands the matrix and executes every cell. The returned slice is
// in expansion order; the returned error joins the per-cell failures
// (nil when every cell succeeded).
func (r *Runner) Run(m Matrix) ([]CellResult, error) {
	return r.RunCells(m.Cells())
}

// RunCells executes an explicit cell list — the escape hatch for grids
// that are not a single cartesian product (e.g. a clean arm at f = 0
// joined with an attacked arm at f > 0).
func (r *Runner) RunCells(cells []Spec) ([]CellResult, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("no cells to run: %w", ErrBadSpec)
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]CellResult, len(cells))
	idx := make(chan int)
	var cbMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				cr := runCell(i, cells[i])
				results[i] = cr
				if r.OnCell != nil {
					cbMu.Lock()
					r.OnCell(cr)
					cbMu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("cell %d (%s): %w", i, results[i].Spec.Label(), results[i].Err))
		}
	}
	return results, errors.Join(errs...)
}

// runCell compiles and trains one cell.
func runCell(i int, cell Spec) CellResult {
	cr := CellResult{Index: i, Spec: cell}
	cfg, err := cell.Compile()
	if err != nil {
		cr.Err = err
		return cr
	}
	cr.Result, cr.Err = distsgd.Run(cfg)
	return cr
}
