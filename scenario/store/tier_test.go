package store

import (
	"testing"

	"krum/internal/vec"
)

// forceTier switches the active kernel tier for one test, restoring it
// on cleanup; it skips the test when the host CPU lacks the tier.
func forceTier(t *testing.T, tier vec.Tier) {
	t.Helper()
	if !vec.TierAvailable(tier) {
		t.Skipf("kernel tier %v not available on this CPU", tier)
	}
	restore, err := vec.SetKernelTier(tier)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restore)
}

// keyUnder computes quickSpec's store key with tier forced.
func keyUnder(t *testing.T, tier vec.Tier) string {
	t.Helper()
	forceTier(t, tier)
	key, err := Key(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestKeyKernelOrderSalt pins the key salting on the accumulation-order
// FAMILY: order-identical tiers (go and sse2, both "pair2") produce the
// same key — they are bit-identical, so sharing cached results is
// correct and deliberate — while the fma4 family (avx2) produces a
// different key for the same spec, so results computed under different
// rounding orders can never alias.
func TestKeyKernelOrderSalt(t *testing.T) {
	goKey := keyUnder(t, vec.TierGo)
	if vec.TierAvailable(vec.TierSSE2) {
		if sseKey := keyUnder(t, vec.TierSSE2); sseKey != goKey {
			t.Errorf("go key %s != sse2 key %s; pair2 tiers must share keys", goKey, sseKey)
		}
	}
	if !vec.TierAvailable(vec.TierAVX2) {
		t.Skip("no avx2 tier: cross-family key divergence untestable on this CPU")
	}
	if avxKey := keyUnder(t, vec.TierAVX2); avxKey == goKey {
		t.Errorf("avx2 key equals go key (%s); fma4 results would alias pair2 results", avxKey)
	}
}

// TestCrossOrderStoreMiss is the aliasing-impossible proof at the
// Lookup level: a result saved while one order family is active is a
// MISS under the other family (both directions), and a hit again once
// the original family is restored — exactly the Version-bump
// invalidation semantics, per order family.
func TestCrossOrderStoreMiss(t *testing.T) {
	if !vec.TierAvailable(vec.TierAVX2) {
		t.Skip("no avx2 tier: single order family on this CPU")
	}
	spec := quickSpec()

	// Compute and save under pair2.
	restore, err := vec.SetKernelTier(vec.TierGo)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restore)
	s := NewMemory()
	res := mustRun(t, spec)
	if err := s.Save(spec, res); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(spec); !ok {
		t.Fatal("pair2 save not visible to pair2 lookup")
	}

	// Under fma4 the same spec must miss: the cached result's low bits
	// are pair2 rounding, which this process's kernels cannot reproduce.
	restoreAVX, err := vec.SetKernelTier(vec.TierAVX2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(spec); ok {
		restoreAVX()
		t.Fatal("pair2-computed result served to an fma4 process; cross-order aliasing")
	}
	// And a fresh fma4 result saves under the fma4 key without
	// disturbing the pair2 entry.
	resAVX := mustRun(t, spec)
	if err := s.Save(spec, resAVX); err != nil {
		restoreAVX()
		t.Fatal(err)
	}
	got, ok := s.Lookup(spec)
	restoreAVX()
	if !ok {
		t.Fatal("fma4 save not visible to fma4 lookup")
	}
	if encode(t, got) != encode(t, resAVX) {
		t.Fatal("fma4 lookup returned different bytes than the fma4 save")
	}

	// Back under pair2 the original entry is served, bit for bit.
	got, ok = s.Lookup(spec)
	if !ok {
		t.Fatal("restoring the order family lost the original entry")
	}
	if encode(t, got) != encode(t, res) {
		t.Fatal("pair2 lookup after round trip returned different bytes than the pair2 save")
	}
	if st := s.Stats(); st.Entries != 2 {
		t.Fatalf("store holds %d entries, want 2 (one per order family)", st.Entries)
	}
}

// TestForeignFamilyRecordsSurviveCompaction pins the on-disk half of
// the cross-family story: a record written under one order family,
// read by a process running another, is classified FOREIGN (skipped
// but healthy — Stats.Foreign, never Stats.Tampered), and a Compact
// run by that other process merges it through instead of dropping it —
// a mixed-family fleet sharing one store directory cannot lose the
// other family's results to housekeeping.
func TestForeignFamilyRecordsSurviveCompaction(t *testing.T) {
	if !vec.TierAvailable(vec.TierAVX2) {
		t.Skip("no avx2 tier: single order family on this CPU")
	}
	dir := t.TempDir()
	spec := quickSpec()
	noSeal := SegmentedOptions{SealBytes: 1 << 30}

	// Compute, save and seal under pair2.
	restore, err := vec.SetKernelTier(vec.TierGo)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restore)
	st, err := OpenDirOptions(dir, noSeal)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, spec)
	if err := st.Save(spec, res); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Reopen under fma4: the pair2 record is foreign, not tampered, and
	// the spec misses.
	restoreAVX, err := vec.SetKernelTier(vec.TierAVX2)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := OpenDirOptions(dir, noSeal)
	if err != nil {
		restoreAVX()
		t.Fatal(err)
	}
	if s := st2.Stats(); s.Foreign != 1 || s.Tampered != 0 {
		restoreAVX()
		t.Fatalf("cross-family reopen: foreign=%d tampered=%d, want 1/0 (%s)", s.Foreign, s.Tampered, s)
	}
	if _, ok := st2.Lookup(spec); ok {
		restoreAVX()
		t.Fatal("pair2 record served to an fma4 process")
	}
	// Save this family's own result, seal, and compact: the merge runs
	// entirely under fma4 and must carry the pair2 record through.
	resAVX := mustRun(t, spec)
	if err := st2.Save(spec, resAVX); err != nil {
		restoreAVX()
		t.Fatal(err)
	}
	if err := st2.Seal(); err != nil {
		restoreAVX()
		t.Fatal(err)
	}
	if err := st2.Compact(); err != nil {
		restoreAVX()
		t.Fatal(err)
	}
	if s := st2.Stats(); s.Segments != 1 {
		restoreAVX()
		t.Fatalf("compaction left %d segments, want 1 (%s)", s.Segments, s)
	}
	st2.Close()
	restoreAVX()

	// Back under pair2 the original record survived the fma4 compaction
	// bit for bit, and now the fma4 record is the foreign one.
	st3, err := OpenDirOptions(dir, noSeal)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	got, ok := st3.Lookup(spec)
	if !ok {
		t.Fatal("compaction under fma4 lost the pair2 record")
	}
	if encode(t, got) != encode(t, res) {
		t.Fatal("pair2 record changed bytes across an fma4 compaction")
	}
	if s := st3.Stats(); s.Foreign != 1 || s.Tampered != 0 {
		t.Fatalf("post-compaction reopen: foreign=%d tampered=%d, want 1/0 (%s)", s.Foreign, s.Tampered, s)
	}
}
