package store

import (
	"testing"

	"krum/scenario"
)

// mustKey hashes a spec, failing the test on canonicalization errors.
func mustKey(t *testing.T, s scenario.Spec) string {
	t.Helper()
	k, err := Key(s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestKeyArrivalSyncAliases is the store-key level of the tentpole
// differential: every spelling of the synchronous arrival process —
// absent, "sync", any tau=0 spec, case/whitespace variants — hashes to
// the pre-arrival sync key, so stored synchronous results stay warm
// with no Version bump.
func TestKeyArrivalSyncAliases(t *testing.T) {
	base := quickSpec()
	want := mustKey(t, base)
	for _, arr := range []string{
		"sync", "SYNC", " sync ",
		"bounded(tau=0)", "bernoulli(p=0.5,tau=0)", "bounded(tau=0,damp=2)",
	} {
		s := base
		s.Arrival = arr
		if got := mustKey(t, s); got != want {
			t.Errorf("arrival %q: key %s differs from the sync key %s", arr, got, want)
		}
	}
}

// TestKeyAsyncDistinctFromSync: a genuinely asynchronous arrival is
// part of the cell identity — its key can never alias the synchronous
// cell or a differently-parameterized async cell.
func TestKeyAsyncDistinctFromSync(t *testing.T) {
	base := quickSpec()
	keys := map[string]string{"": mustKey(t, base)}
	for _, arr := range []string{
		"bounded(tau=1)", "bounded(tau=3)", "bounded(tau=3,damp=0.5)",
		"bernoulli(p=0.5,tau=8)", "bernoulli(p=0.25,tau=8)",
	} {
		s := base
		s.Arrival = arr
		k := mustKey(t, s)
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("arrival %q aliases %q", arr, prev)
			}
		}
		keys[arr] = k
	}
}

// TestKeyArrivalSpellingVariants: async specs canonicalize through the
// registry, so parameter order, case and defaults collapse to one key.
func TestKeyArrivalSpellingVariants(t *testing.T) {
	base := quickSpec()
	a := base
	a.Arrival = "bernoulli(p=0.5,tau=8)"
	b := base
	b.Arrival = " Bernoulli ( tau = 8 ) " // p defaults to 0.5
	if mustKey(t, a) != mustKey(t, b) {
		t.Error("bernoulli spelling variants hash to different keys")
	}
}

// TestCanonicalArrivalIdempotent extends the store's idempotence
// contract to the fifth axis.
func TestCanonicalArrivalIdempotent(t *testing.T) {
	for _, arr := range []string{"", "sync", "bounded(tau=0)", "bounded(tau=3)", "bernoulli(tau=4)"} {
		s := quickSpec()
		s.Arrival = arr
		once, err := Canonical(s)
		if err != nil {
			t.Fatal(err)
		}
		twice, err := Canonical(once)
		if err != nil {
			t.Fatal(err)
		}
		if once != twice {
			t.Errorf("arrival %q: Canonical not idempotent:\n%+v\n%+v", arr, once, twice)
		}
	}
}

// TestStoreAsyncHitByteIdentical: an async cell's stored result is
// served byte-identically on the second run — asynchrony does not
// weaken the store's core promise.
func TestStoreAsyncHitByteIdentical(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir + "/results.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	s := quickSpec()
	s.Arrival = "bernoulli(p=0.5,tau=4)"
	s.Incremental = true
	cold := scenario.RunCell(st, 0, s)
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	warm := scenario.RunCell(st, 0, s)
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if encode(t, cold.Result) != encode(t, warm.Result) {
		t.Error("warm async hit differs from cold run")
	}
	stats := st.Stats()
	if stats.Hits == 0 {
		t.Errorf("expected a store hit, stats = %+v", stats)
	}
}
