package store_test

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"krum/scenario"
	"krum/scenario/store"
)

// partialSpec is a table1-style Monte-Carlo identity: rule + attack +
// shape, no workload/schedule/rounds.
func partialSpec() scenario.Spec {
	return scenario.Spec{
		Name:   "table1: some label",
		Rule:   "krum",
		Attack: "Gaussian(sigma=200)",
		N:      13,
		F:      3,
		Seed:   42,
	}
}

// TestAuxKeyCollapsesSpellingVariants pins the canonicalization
// contract for partial specs: registry spelling variants and cosmetic
// fields do not change the key, while kind, params and any
// result-affecting field do.
func TestAuxKeyCollapsesSpellingVariants(t *testing.T) {
	base, err := store.KeyAux("table1", partialSpec(), "d=12,trials=200")
	if err != nil {
		t.Fatal(err)
	}

	same := partialSpec()
	same.Name = "a different label"
	same.Rule = "krum(f=3)" // the shape default, spelled out
	same.Attack = "gaussian(sigma=200)"
	if k, err := store.KeyAux("table1", same, "d=12,trials=200"); err != nil || k != base {
		t.Errorf("spelling variant changed the key: %v (%v)", k != base, err)
	}

	for name, mutate := range map[string]func(*scenario.Spec, *string, *string){
		"kind":   func(s *scenario.Spec, kind, params *string) { *kind = "ablation" },
		"params": func(s *scenario.Spec, kind, params *string) { *params = "d=12,trials=2000" },
		"seed":   func(s *scenario.Spec, kind, params *string) { s.Seed = 43 },
		"rule":   func(s *scenario.Spec, kind, params *string) { s.Rule = "medoid" },
		"attack": func(s *scenario.Spec, kind, params *string) { s.Attack = "signflip" },
		"f":      func(s *scenario.Spec, kind, params *string) { s.F = 2 },
	} {
		spec, kind, params := partialSpec(), "table1", "d=12,trials=200"
		mutate(&spec, &kind, &params)
		k, err := store.KeyAux(kind, spec, params)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}

	if _, err := store.KeyAux("", partialSpec(), "p"); err == nil {
		t.Error("empty kind accepted")
	}
	if _, err := store.KeyAux("table1", scenario.Spec{Rule: "no-such-rule", N: 5, F: 1}, "p"); err == nil {
		t.Error("unparseable rule accepted")
	}
}

// TestCanonicalAuxIdempotent pins CanonicalAux∘CanonicalAux ≡
// CanonicalAux — the property record reloads rely on.
func TestCanonicalAuxIdempotent(t *testing.T) {
	once, err := store.CanonicalAux(partialSpec())
	if err != nil {
		t.Fatal(err)
	}
	twice, err := store.CanonicalAux(once)
	if err != nil {
		t.Fatal(err)
	}
	if once != twice {
		t.Fatalf("not a fixed point: %+v → %+v", once, twice)
	}
	if once.Name != "" || once.Attack != "gaussian(sigma=200)" || once.Workload != "" || once.Schedule != "" {
		t.Errorf("unexpected canonical form: %+v", once)
	}
}

// TestAuxRecordsPersistAndReload pins the file round trip: aux and
// cell records share one JSONL file, reload cleanly, and a tampered
// aux record is skipped (never served) while intact neighbours
// survive.
func TestAuxRecordsPersistAndReload(t *testing.T) {
	path := t.TempDir() + "/cells.jsonl"
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := json.RawMessage(`{"byz_selected_rate":0.25}`)
	if err := st.SaveAux("table1", partialSpec(), "d=12,trials=200", payload); err != nil {
		t.Fatal(err)
	}
	other := json.RawMessage(`{"byz_selected_rate":1}`)
	if err := st.SaveAux("ablation", partialSpec(), "d=60,coord=7,trials=300", other); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Stats(); got.Entries != 2 || got.SkippedRecords != 0 {
		t.Fatalf("reload stats %+v, want 2 clean entries", got)
	}
	raw, ok := re.LookupAux("table1", partialSpec(), "d=12,trials=200")
	if !ok || string(raw) != string(payload) {
		t.Fatalf("aux lookup after reload: %q, %v", raw, ok)
	}
	if _, ok := re.LookupAux("table1", partialSpec(), "d=12,trials=2000"); ok {
		t.Error("different params served a stored record")
	}
	if _, ok := re.LookupAux("ablation", partialSpec(), "d=12,trials=200"); ok {
		t.Error("different kind served a stored record")
	}
	// The families never cross: the cell-record interface must not see
	// aux records even for the same spec.
	if _, ok := re.Lookup(partialSpec()); ok {
		t.Error("ResultStore.Lookup served an aux record")
	}
	re.Close()

	// Tamper with the first record's params: its key no longer
	// re-derives, so it must be skipped; the second record survives.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(blob), "d=12,trials=200", "d=12,trials=999", 1)
	if tampered == string(blob) {
		t.Fatal("tampering had no effect; fixture drifted")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	re2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.Stats(); got.Entries != 1 || got.SkippedRecords != 1 {
		t.Fatalf("tampered reload stats %+v, want 1 entry + 1 skipped", got)
	}
	if _, ok := re2.LookupAux("table1", partialSpec(), "d=12,trials=200"); ok {
		t.Error("tampered record served")
	}
	if _, ok := re2.LookupAux("ablation", partialSpec(), "d=60,coord=7,trials=300"); !ok {
		t.Error("intact neighbour lost")
	}

	if err := re2.SaveAux("x", partialSpec(), "p", json.RawMessage(`not json`)); err == nil {
		t.Error("invalid JSON payload accepted")
	}
}
