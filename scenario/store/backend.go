package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Backend is the segment blob interface of a segmented store: sealed
// segments are immutable, individually-hashed JSONL blobs, and a
// backend only needs to list, fetch, publish and delete them — no
// appends, no partial reads, no locking. That shape is deliberate:
// because the store is content-addressed and every segment is
// self-verifying (its name carries the SHA-256 of its bytes),
// replication is just shipping immutable blobs, and an object-store
// backend (S3, GCS) is a drop-in behind this interface. DirBackend,
// the local-filesystem implementation, ships today.
//
// Implementations must make WriteSegment atomic with respect to
// ListSegments: a crash mid-write must never surface a half-written
// blob under a valid segment name (DirBackend writes a temp file and
// renames). They need not be safe for concurrent use by multiple
// stores; one Store drives one Backend.
type Backend interface {
	// ListSegments returns the names of every stored segment, sorted by
	// segment sequence (the replay order).
	ListSegments() ([]string, error)
	// ReadSegment returns a segment's complete bytes.
	ReadSegment(name string) ([]byte, error)
	// WriteSegment publishes an immutable segment atomically: after it
	// returns, ListSegments includes name and ReadSegment returns
	// exactly data; on a crash mid-call, neither.
	WriteSegment(name string, data []byte) error
	// Remove deletes a segment (compaction removing merged inputs).
	// Removing an absent segment is not an error.
	Remove(name string) error
}

// DirBackend stores segments as files in a local directory — the
// filesystem implementation of Backend that OpenDir wires up. Segment
// files live alongside the store's live tail (tail.jsonl); only names
// matching the segment pattern are ever listed, so the tail and
// foreign files are invisible to the segment replay.
type DirBackend struct {
	dir string
}

// NewDirBackend creates (if needed) dir and returns a backend over it.
func NewDirBackend(dir string) (*DirBackend, error) {
	if dir == "" {
		return nil, fmt.Errorf("empty backend directory: %w", ErrStore)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating backend directory %s: %w: %w", dir, err, ErrStore)
	}
	return &DirBackend{dir: dir}, nil
}

// Dir returns the backing directory.
func (b *DirBackend) Dir() string { return b.dir }

// checkName rejects names that are not well-formed segment names —
// both foreign files and path escapes (a name with a separator could
// otherwise read or delete outside the directory).
func checkName(name string) error {
	if _, _, ok := parseSegmentName(name); !ok {
		return fmt.Errorf("malformed segment name %q: %w", name, ErrStore)
	}
	return nil
}

// ListSegments implements Backend: segment-pattern files in the
// directory, sorted by sequence then name.
func (b *DirBackend) ListSegments() ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("listing %s: %w: %w", b.dir, err, ErrStore)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, _, ok := parseSegmentName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sortSegmentNames(names)
	return names, nil
}

// ReadSegment implements Backend.
func (b *DirBackend) ReadSegment(name string) ([]byte, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(b.dir, name))
	if err != nil {
		return nil, fmt.Errorf("reading segment %s: %w: %w", name, err, ErrStore)
	}
	return data, nil
}

// WriteSegment implements Backend: the bytes land in a temp file that
// is renamed into place, so a crash mid-write leaves only a *.tmp the
// lister ignores — never a torn blob under a valid segment name.
func (b *DirBackend) WriteSegment(name string, data []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	tmp := filepath.Join(b.dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("writing segment %s: %w: %w", name, err, ErrStore)
	}
	if err := os.Rename(tmp, filepath.Join(b.dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("publishing segment %s: %w: %w", name, err, ErrStore)
	}
	return nil
}

// Remove implements Backend; removing an absent segment succeeds.
func (b *DirBackend) Remove(name string) error {
	if err := checkName(name); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(b.dir, name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("removing segment %s: %w: %w", name, err, ErrStore)
	}
	return nil
}

// sortSegmentNames orders names by (sequence, name) — the replay
// order. Ties on sequence cannot happen from one store's seal path,
// but a deterministic order keeps replay stable even for a directory
// assembled by hand.
func sortSegmentNames(names []string) {
	sort.Slice(names, func(i, j int) bool {
		si, _, _ := parseSegmentName(names[i])
		sj, _, _ := parseSegmentName(names[j])
		if si != sj {
			return si < sj
		}
		return strings.Compare(names[i], names[j]) < 0
	})
}
