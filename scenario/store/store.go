// Package store persists scenario cell results in a content-addressed,
// append-only JSONL store, keyed by a canonical hash of each cell's
// fully-resolved Spec. It implements scenario.ResultStore, so a
// scenario.Runner (or the krum-scenariod service) consults it before
// running a cell and writes fresh results through — repeated and
// overlapping experiment grids become near-free, because a cell is a
// pure function of its spec and a hit returns a result byte-identical
// (under distsgd.Result's stable JSON encoding) to a cold run.
//
// # Keys
//
// Key canonicalizes the spec before hashing: each axis spec string is
// resolved through its registry and replaced by the constructed
// object's canonical Name()/Spec form, so spelling variants collapse
// to one key — "krum" at n=15, f=3 and "krum(f=3)" hit the same
// entry, as do "Gaussian(sigma=200)" and "gaussian(sigma=200)". The
// cosmetic fields (Name label, Parallel worker count) are excluded:
// they cannot change a result. Everything else — including Seed,
// EvalEvery/EvalBatch/TrackSelection (they change Result contents) and
// the Incremental and Screened flags — is hashed, together with the
// Version salt.
//
// # Invalidation
//
// Version is the code-version salt. Because it participates in every
// key, bumping it orphans all previously-stored entries at once: old
// records remain in the file but their stored key no longer matches
// any key the new code computes, so every cell recomputes — stale
// results are never served. Bump Version whenever training semantics,
// spec interpretation, or the Result encoding change. The same
// mechanism guards individual records: Open re-derives each record's
// key from its stored spec and drops mismatches (e.g. a hand-edited
// spec), so a tampered record triggers recomputation instead of a
// stale serve.
//
// # File format and corruption
//
// The file holds one JSON record per line: {"key", "version", "spec",
// "result"}. Writes are append-only; a crash can therefore only tear
// the final line. Open tolerates exactly that: a truncated tail is
// dropped (and the file truncated back to the last intact record) so
// subsequent appends start clean; interior lines that fail to parse or
// whose key does not re-derive are skipped and counted (Stats), never
// served. Duplicate keys resolve last-write-wins, matching the append
// order. One Store is safe for concurrent use within a process; the
// file itself assumes a single writing process at a time.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"krum/attack"
	"krum/distsgd"
	"krum/internal/arrival"
	"krum/internal/core"
	"krum/internal/sgd"
	"krum/internal/vec"
	"krum/scenario"
	"krum/workload"
)

// Version is the code-version salt mixed into every key. Bump it
// whenever a change anywhere in the training stack (kernels, rules,
// attacks, schedules, workloads, protocol, Result encoding) can alter
// the result a spec produces: all existing store entries then miss and
// recompute — the invalidation rule documented in the package comment.
//
// v2: distsgd.Result gained the Kernel metadata field (the stable
// encoding changed) and keys gained the kernel-order salt below.
const Version = "krum-store-v2"

// ErrStore is the sentinel wrapped by store failures.
var ErrStore = errors.New("store: error")

// workloadCanon memoizes raw workload spec string → canonical Spec
// string. Workload factories eagerly construct their dataset and
// model, which would make every Key computation pay a full dataset
// build; the canonical spec string depends only on the parsed
// parameters (never on the seed, which only randomizes weights), so
// one construction per distinct raw string suffices for the life of
// the process. Parse failures are not memoized — they stay cheap and
// keep their full error.
var workloadCanon sync.Map

// canonicalWorkload resolves a workload spec to its registry-canonical
// string, via the memo.
func canonicalWorkload(raw string, seed uint64) (string, error) {
	if c, ok := workloadCanon.Load(raw); ok {
		return c.(string), nil
	}
	wl, err := workload.Parse(workload.SpecContext{Seed: seed}, raw)
	if err != nil {
		return "", err
	}
	workloadCanon.Store(raw, wl.Spec)
	return wl.Spec, nil
}

// Canonical returns the fully-resolved form of a spec — the identity
// the store hashes. Axis spec strings are replaced by their registry
// round-trip canonical forms (an empty attack becomes "none"), and the
// result-irrelevant fields (Name, Parallel) are cleared. Canonical is
// idempotent: Canonical(Canonical(s)) == Canonical(s), because every
// registry guarantees Parse(x.Name()) ≡ x.
func Canonical(s scenario.Spec) (scenario.Spec, error) {
	c := s
	c.Name = ""
	c.Parallel = 0
	rule, err := core.ParseRuleIn(core.SpecContext{N: s.N, F: s.F}, s.Rule)
	if err != nil {
		return scenario.Spec{}, err
	}
	c.Rule = rule.Name()
	if strings.TrimSpace(s.Attack) == "" {
		c.Attack = "none"
	} else {
		atk, err := attack.Parse(s.Attack)
		if err != nil {
			return scenario.Spec{}, err
		}
		c.Attack = atk.Name()
	}
	sched, err := sgd.ParseSchedule(s.Schedule)
	if err != nil {
		return scenario.Spec{}, err
	}
	c.Schedule = sched.Name()
	c.Workload, err = canonicalWorkload(s.Workload, s.Seed)
	if err != nil {
		return scenario.Spec{}, err
	}
	// Arrival canonicalizes through the registry like the other axes,
	// with one extra collapse: a spec whose canonical form is Sync
	// ("sync" itself, or any tau=0 spelling) is byte-identical to the
	// synchronous protocol, so it maps to the empty string — the JSON
	// field then omits entirely and the key equals the pre-arrival
	// sync key (stored results stay warm, no Version bump needed).
	// Genuinely asynchronous specs keep their canonical Name, making
	// their keys distinct from every synchronous cell by construction.
	if strings.TrimSpace(s.Arrival) == "" {
		c.Arrival = ""
	} else {
		proc, err := arrival.Parse(s.Arrival)
		if err != nil {
			return scenario.Spec{}, err
		}
		if name := proc.Name(); name == "sync" {
			c.Arrival = ""
		} else {
			c.Arrival = name
		}
	}
	return c, nil
}

// Key returns the spec's content address: "sha256:" plus the hex
// SHA-256 of the Version salt and the canonical spec's JSON. The key
// is conservative: two specs sharing a key are guaranteed to produce
// the same result under the current code version, but not every
// result-identical pair shares a key — notably Incremental and
// Screened are hashed (they are part of the cell's declared identity
// even though results are bit-identical either way), so flipping
// either recomputes; screened and unscreened cells can never alias.
func Key(s scenario.Spec) (string, error) {
	c, err := Canonical(s)
	if err != nil {
		return "", err
	}
	return keyOfCanonical(c)
}

// keyOfCanonical hashes an already-canonical spec under the active
// order family.
func keyOfCanonical(c scenario.Spec) (string, error) {
	return keyOfCanonicalWith(vec.KernelOrder(), c)
}

// keyOfCanonicalWith hashes an already-canonical spec under an explicit
// order-family salt — the re-derivation path for records written by
// ANOTHER family (see decodeLine's foreign verdict).
func keyOfCanonicalWith(order string, c scenario.Spec) (string, error) {
	blob, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("marshaling spec for hashing: %w: %w", err, ErrStore)
	}
	return hashKeyWith(order, blob), nil
}

// hashKey renders the content address of a hashed identity blob,
// salted with Version AND the active kernel accumulation-order family
// (vec.KernelOrder). Cell keys hash a canonical spec's JSON and aux
// keys an auxIdentity's JSON — the two preimage families start with
// different JSON structure, so they cannot collide.
//
// The kernel salt is the order FAMILY, not the tier name: tiers with
// the same canonical accumulation order produce bit-identical results
// (pinned in internal/vec's gram_test.go), so a pure-Go worker and an
// SSE2 worker deliberately share keys — while a result computed under
// the fma4 (AVX2) order can never be served to a pair2 process, whose
// cold run would produce different low bits. A tier switch (new CPU,
// KRUM_KERNEL_TIER change) across order families therefore orphans
// entries exactly like a Version bump, per order family.
func hashKey(blob []byte) string {
	return hashKeyWith(vec.KernelOrder(), blob)
}

// hashKeyWith is hashKey under an explicit order-family salt.
func hashKeyWith(order string, blob []byte) string {
	h := sha256.New()
	h.Write([]byte(Version))
	h.Write([]byte{'\n'})
	h.Write([]byte(order))
	h.Write([]byte{'\n'})
	h.Write(blob)
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// record is one JSONL line.
type record struct {
	// Key is the content address the record was stored under.
	Key string `json:"key"`
	// Version is the salt in effect at write time (informational — the
	// salt is already baked into Key).
	Version string `json:"version"`
	// Kernel is the accumulation-order family (vec.Tier.Order) active at
	// write time. Unlike Version it is load-bearing: a record whose Key
	// fails re-derivation under the ACTIVE family is re-checked against
	// its own declared family, and if intact under that salt it is
	// classified foreign (another family's valid entry — never served
	// here, but preserved by Compact) instead of tampered. Altering the
	// stored identity after hashing still fails BOTH derivations, so
	// this weakens no integrity check.
	Kernel string `json:"kernel,omitempty"`
	// Kind discriminates the record family: empty for distsgd cell
	// results (scenario.ResultStore records), a harness kind such as
	// "table1" or "ablation" for auxiliary Monte-Carlo records (see
	// aux.go). The kind participates in the key, so the families can
	// never collide.
	Kind string `json:"kind,omitempty"`
	// Params is the auxiliary record's extra identity (trial counts,
	// dimensions — everything result-affecting that the spec does not
	// carry); empty for cell records.
	Params string `json:"params,omitempty"`
	// Spec is the canonical spec the result was computed from.
	Spec scenario.Spec `json:"spec"`
	// Result is the stable-encoded training outcome (for cell records)
	// or the kind-specific JSON payload (for auxiliary records).
	Result json.RawMessage `json:"result"`
}

// deriveKey recomputes the record's content address from its stored
// identity under the active order family — the tamper/stale check Open
// applies to every line.
func (r record) deriveKey() (string, error) {
	return r.deriveKeyWith(vec.KernelOrder())
}

// deriveKeyWith recomputes the record's content address under an
// explicit order-family salt; decodeLine uses it with the record's own
// stored Kernel to distinguish foreign records from tampered ones.
func (r record) deriveKeyWith(order string) (string, error) {
	if r.Kind == "" {
		c, err := Canonical(r.Spec)
		if err != nil {
			return "", err
		}
		return keyOfCanonicalWith(order, c)
	}
	c, err := CanonicalAux(r.Spec)
	if err != nil {
		return "", err
	}
	return keyOfAuxCanonicalWith(order, r.Kind, c, r.Params)
}

// Stats is a snapshot of a store's counters.
type Stats struct {
	// Entries is the number of distinct keys currently indexed.
	Entries int
	// Hits and Misses count Lookup outcomes since Open.
	Hits, Misses int
	// FlightWaits counts single-flight followers since Open: DoCell
	// calls that found the same key already executing and waited for
	// its result instead of computing (see DoCell).
	FlightWaits int
	// Saves counts successful Save calls since Open.
	Saves int
	// SkippedRecords counts records dropped from the index at Open
	// time: malformed lines, key mismatches (tampered or stale-salt
	// entries), foreign-family records, or undecodable results.
	// Skipped records are never served by this process.
	SkippedRecords int
	// DroppedTailBytes is the size of the torn final line Open
	// discarded (0 for a clean file).
	DroppedTailBytes int
	// Superseded counts records currently on disk that are shadowed by
	// a later write to the same key — duplicates from re-saves, crashed
	// seals, or un-compacted history. It is the store's compaction
	// debt: Compact drives the sealed-segment share of it to zero.
	Superseded int
	// Tampered counts integrity-check failures observed since Open:
	// records whose stored key did not re-derive from their stored
	// identity, plus whole sealed segments whose content hash did not
	// match the hash in their name (each such segment counts once and
	// is skipped wholesale). Tampered data is never served; the
	// affected cells recompute. Records written under a DIFFERENT
	// kernel-order family are not tampered — see Foreign.
	Tampered int
	// Foreign counts intact records observed since Open that belong to
	// another kernel-order family (their key re-derives under their own
	// stored Kernel salt, not the active one). They are skipped — this
	// process's kernels cannot reproduce their rounding — but healthy:
	// a mixed-family fleet sharing one store file reports them here,
	// not as Tampered, and Compact preserves them on disk.
	Foreign int
	// Segments is the number of sealed segments currently backing the
	// store (0 for single-file and in-memory stores).
	Segments int
	// Seals counts tail→segment seals since Open.
	Seals int
	// Compactions counts Compact merges since Open.
	Compactions int
}

// String renders the counters in one line.
func (s Stats) String() string {
	line := fmt.Sprintf("%d entries, %d hits, %d misses, %d flight waits, %d saves, %d skipped, %d tampered, %d superseded, %d tail bytes dropped",
		s.Entries, s.Hits, s.Misses, s.FlightWaits, s.Saves, s.SkippedRecords, s.Tampered, s.Superseded, s.DroppedTailBytes)
	if s.Foreign > 0 {
		line += fmt.Sprintf(", %d foreign-family", s.Foreign)
	}
	if s.Segments > 0 || s.Seals > 0 || s.Compactions > 0 {
		line += fmt.Sprintf(", %d segments (%d seals, %d compactions)", s.Segments, s.Seals, s.Compactions)
	}
	return line
}

// Store is a content-addressed scenario result store: an in-memory
// key → result index, optionally backed by an append-only JSONL file.
// It implements scenario.ResultStore and is safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	path string
	file *os.File // nil for in-memory stores
	// offset is the end of the last fully-written record — the safe
	// append position. After a failed write the file is rolled back to
	// it so a torn fragment can never fuse with the next record.
	offset int64
	index  map[string]json.RawMessage
	// flights tracks in-progress single-flight executions by key (see
	// singleflight.go); entries exist only while a leader is computing.
	flights map[string]*flight
	stats   Stats

	// backend, when non-nil, makes this a SEGMENTED store (see
	// segment.go): the tail seals into immutable hashed segments at
	// sealBytes, replayed before the tail at Open.
	backend   Backend
	sealBytes int64
	// segSeq is the highest segment sequence in use; segments lists the
	// sealed segments in replay order.
	segSeq   int
	segments []string
	// segRecords / tailRecords count the valid indexed records living
	// in sealed segments and in the tail respectively; together with
	// diskKeys they make Stats.Superseded exact: superseded =
	// segRecords + tailRecords − len(diskKeys).
	segRecords  int
	tailRecords int
	// diskKeys is the set of distinct keys with at least one durable
	// record (subset of index for stores that dropped to memory-only).
	diskKeys map[string]struct{}
}

// NewMemory returns a store with no backing file — the index lives and
// dies with the process. It is the default for krum-scenariod when no
// -store path is given, and convenient in tests and examples.
func NewMemory() *Store {
	return &Store{
		index:    make(map[string]json.RawMessage),
		flights:  make(map[string]*flight),
		diskKeys: make(map[string]struct{}),
	}
}

// Open opens (creating if needed) the JSONL store at path, loads every
// intact record into the index, and prepares the file for appends. See
// the package comment for the corruption rules: a torn final line is
// truncated away, records whose key does not re-derive from their spec
// are skipped, duplicate keys resolve last-write-wins. The returned
// Stats (via Stats) report what was skipped.
func Open(path string) (*Store, error) {
	if path == "" {
		return nil, fmt.Errorf("empty path (use NewMemory for an in-memory store): %w", ErrStore)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("opening %s: %w: %w", path, err, ErrStore)
	}
	s := &Store{
		path:     path,
		file:     f,
		index:    make(map[string]json.RawMessage),
		flights:  make(map[string]*flight),
		diskKeys: make(map[string]struct{}),
	}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load scans the JSONL file, indexing intact records and truncating a
// torn tail.
func (s *Store) load() error {
	r := bufio.NewReader(s.file)
	var offset int64 // end of the last newline-terminated line
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A final fragment without a newline is a torn append:
			// drop it and truncate so the next append starts clean.
			if len(line) > 0 {
				s.stats.DroppedTailBytes = len(line)
				if err := s.file.Truncate(offset); err != nil {
					return fmt.Errorf("truncating torn tail of %s: %w: %w", s.path, err, ErrStore)
				}
			}
			break
		}
		if err != nil {
			return fmt.Errorf("reading %s: %w: %w", s.path, err, ErrStore)
		}
		offset += int64(len(line))
		s.indexLine(line, &s.tailRecords)
	}
	if _, err := s.file.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("seeking %s: %w: %w", s.path, err, ErrStore)
	}
	s.offset = offset
	return nil
}

// lineVerdict classifies one JSONL line for indexing.
type lineVerdict int

const (
	// lineOK is a servable record.
	lineOK lineVerdict = iota
	// lineEmpty is whitespace only.
	lineEmpty
	// lineMalformed failed to parse as a record.
	lineMalformed
	// lineTampered parsed but failed the integrity check: its stored
	// key does not re-derive from its stored identity (hand-edited
	// spec, stale version salt), or it carries no result.
	lineTampered
	// lineForeign is intact but belongs to ANOTHER kernel-order family:
	// its key re-derives under the record's own stored Kernel salt, just
	// not under the active one. Never served by this process (its low
	// bits encode a rounding order these kernels cannot reproduce), but
	// not corruption either — Compact carries foreign records through so
	// a mixed-family fleet sharing one store never loses the other
	// family's results to a compaction.
	lineForeign
)

// decodeLine parses one complete JSONL line and re-derives its key —
// the acceptance rule shared by Open's replay and Compact's merge. A
// key mismatch under BOTH the active order-family salt and the
// record's own declared one means the record was written under a
// different code version (stale salt) or its identity was altered
// after hashing — either way serving it could be a stale result. A
// mismatch that re-derives intact under the record's declared family
// alone is foreign (see lineForeign); its returned key is the stored
// one, valid in that family's keyspace and collision-free with ours
// because the salt differs.
func decodeLine(line []byte) (rec record, key string, v lineVerdict) {
	trimmed := strings.TrimSpace(string(line))
	if trimmed == "" {
		return record{}, "", lineEmpty
	}
	if err := json.Unmarshal([]byte(trimmed), &rec); err != nil {
		return record{}, "", lineMalformed
	}
	key, err := rec.deriveKey()
	if err != nil || len(rec.Result) == 0 {
		return record{}, "", lineTampered
	}
	if key != rec.Key {
		if rec.Kernel != "" && rec.Kernel != vec.KernelOrder() {
			if fk, ferr := rec.deriveKeyWith(rec.Kernel); ferr == nil && fk == rec.Key {
				return rec, rec.Key, lineForeign
			}
		}
		return record{}, "", lineTampered
	}
	return rec, key, lineOK
}

// indexLine validates one complete line and indexes it, counting (not
// failing on) records that cannot be served safely; counter is the
// location tally (segment vs tail records) a servable line bumps.
func (s *Store) indexLine(line []byte, counter *int) {
	rec, key, v := decodeLine(line)
	switch v {
	case lineEmpty:
		return
	case lineMalformed:
		s.stats.SkippedRecords++
		return
	case lineTampered:
		s.stats.SkippedRecords++
		s.stats.Tampered++
		return
	case lineForeign:
		s.stats.SkippedRecords++
		s.stats.Foreign++
		return
	}
	s.index[key] = rec.Result // duplicate keys: last write wins
	s.diskKeys[key] = struct{}{}
	*counter++
}

// Lookup implements scenario.ResultStore. Any internal failure — a
// spec that cannot be keyed, a result that no longer decodes — is a
// miss: the runner recomputes, which is always safe.
func (s *Store) Lookup(spec scenario.Spec) (*distsgd.Result, bool) {
	key, err := Key(spec)
	if err != nil {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	raw, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()
	res := new(distsgd.Result)
	if err := json.Unmarshal(raw, res); err != nil {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return res, true
}

// Save implements scenario.ResultStore: it appends one record to the
// file (when backed by one) and indexes it. The stored spec is the
// canonical form, so reloads re-derive the same key.
func (s *Store) Save(spec scenario.Spec, res *distsgd.Result) error {
	raw, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("encoding result: %w: %w", err, ErrStore)
	}
	return s.saveRaw(spec, raw)
}

// saveRaw persists an already-encoded result under the spec's key (the
// single-flight leader, which has the canonical spec and key in hand
// already, appends its record directly instead).
func (s *Store) saveRaw(spec scenario.Spec, raw json.RawMessage) error {
	c, err := Canonical(spec)
	if err != nil {
		return fmt.Errorf("canonicalizing spec: %w", err)
	}
	key, err := keyOfCanonical(c)
	if err != nil {
		return err
	}
	return s.appendRecord(record{Key: key, Version: Version, Spec: c, Result: raw})
}

// appendRecord writes one validated record to the file (when backed by
// one) and indexes it, stamping the active kernel order family into
// the record's informational Kernel field.
func (s *Store) appendRecord(rec record) error {
	if rec.Kernel == "" {
		rec.Kernel = vec.KernelOrder()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("encoding record: %w: %w", err, ErrStore)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file != nil {
		if _, err := s.file.Write(line); err != nil {
			// A failed append may have left a torn fragment; roll the
			// file back to the last good record so a later successful
			// Save cannot fuse with it (which would silently lose THAT
			// record on the next Open). If even the rollback fails, the
			// file is unusable — drop to memory-only so persistence
			// errors stay loud but hits keep working.
			if terr := s.rollbackTo(s.offset); terr != nil {
				s.file.Close()
				s.file = nil
				return fmt.Errorf("appending to %s: %w (rollback failed: %v; store is memory-only now): %w", s.path, err, terr, ErrStore)
			}
			return fmt.Errorf("appending to %s: %w: %w", s.path, err, ErrStore)
		}
		s.offset += int64(len(line))
		s.tailRecords++
		s.diskKeys[rec.Key] = struct{}{}
	}
	s.index[rec.Key] = rec.Result
	s.stats.Saves++
	// The record is durable; sealing is opportunistic on top of it — a
	// failed seal leaves the tail to keep growing and the next append
	// (or an explicit Seal) retries.
	if s.backend != nil && s.offset >= s.sealBytes {
		_ = s.sealLocked()
	}
	return nil
}

// rollbackTo truncates the file to offset and repositions the append
// cursor there. Callers hold s.mu.
func (s *Store) rollbackTo(offset int64) error {
	if err := s.file.Truncate(offset); err != nil {
		return err
	}
	_, err := s.file.Seek(offset, io.SeekStart)
	return err
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Segments = len(s.segments)
	st.Superseded = s.segRecords + s.tailRecords - len(s.diskKeys)
	return st
}

// Path returns the backing file path ("" for in-memory stores).
func (s *Store) Path() string { return s.path }

// Close releases the backing file (a no-op for in-memory stores). The
// store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}
