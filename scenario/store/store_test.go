package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"krum/distsgd"
	"krum/internal/vec"
	"krum/scenario"
)

// quickSpec is a seconds-scale cell: tight Gaussian mixture, softmax
// classifier, Krum under a Gaussian attack.
func quickSpec() scenario.Spec {
	return scenario.Spec{
		Workload:  "gmm(k=3,dim=6,radius=4,sigma=0.5)",
		Rule:      "krum",
		Attack:    "gaussian(sigma=200)",
		Schedule:  "inverset(gamma=0.5,power=0.75,t0=50)",
		N:         9,
		F:         2,
		Rounds:    12,
		BatchSize: 8,
		Seed:      11,
		EvalEvery: 6,
		EvalBatch: 64,
	}
}

// mustRun computes a cell without any store.
func mustRun(t *testing.T, s scenario.Spec) *distsgd.Result {
	t.Helper()
	cr := scenario.RunCell(nil, 0, s)
	if cr.Err != nil {
		t.Fatal(cr.Err)
	}
	return cr.Result
}

// encode renders a result in the stable store encoding, the level at
// which byte-identity is asserted.
func encode(t *testing.T, r *distsgd.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestKeyCanonicalization(t *testing.T) {
	base := quickSpec()

	variants := []scenario.Spec{base, base, base, base}
	variants[1].Rule = "krum(f=2)"                              // explicit default
	variants[1].Attack = "Gaussian(sigma=200)"                  // case-insensitive name
	variants[2].Name = "some label"                             // cosmetic
	variants[2].Parallel = 4                                    // wall-clock only
	variants[3].Workload = " gmm(k=3,dim=6,radius=4,sigma=0.5)" // whitespace

	want, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range variants {
		got, err := Key(v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if got != want {
			t.Errorf("variant %d key %s, want %s", i, got, want)
		}
	}

	// Every result-affecting field must change the key.
	mutations := map[string]func(*scenario.Spec){
		"rule":      func(s *scenario.Spec) { s.Rule = "average" },
		"attack":    func(s *scenario.Spec) { s.Attack = "signflip" },
		"schedule":  func(s *scenario.Spec) { s.Schedule = "const(gamma=0.1)" },
		"workload":  func(s *scenario.Spec) { s.Workload = "gmm(k=2,dim=6,radius=4,sigma=0.5)" },
		"f":         func(s *scenario.Spec) { s.F = 1 },
		"n":         func(s *scenario.Spec) { s.N = 11 },
		"rounds":    func(s *scenario.Spec) { s.Rounds = 13 },
		"batch":     func(s *scenario.Spec) { s.BatchSize = 9 },
		"seed":      func(s *scenario.Spec) { s.Seed = 12 },
		"evalevery": func(s *scenario.Spec) { s.EvalEvery = 3 },
		"evalbatch": func(s *scenario.Spec) { s.EvalBatch = 65 },
		"tracksel":  func(s *scenario.Spec) { s.TrackSelection = true },
		"increment": func(s *scenario.Spec) { s.Incremental = true },
		"screened":  func(s *scenario.Spec) { s.Screened = true },
	}
	for name, mutate := range mutations {
		v := base
		mutate(&v)
		got, err := Key(v)
		if err != nil {
			t.Fatalf("mutation %s: %v", name, err)
		}
		if got == want {
			t.Errorf("mutation %s did not change the key", name)
		}
	}

	// "" and "none" attacks are the same run, hence the same key.
	noAtk := base
	noAtk.Attack = ""
	noneAtk := base
	noneAtk.Attack = "none"
	kEmpty, err1 := Key(noAtk)
	kNone, err2 := Key(noneAtk)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if kEmpty != kNone {
		t.Errorf("empty attack key %s != none attack key %s", kEmpty, kNone)
	}
}

// TestStoreHitByteIdenticalZeroRebuilds is the tentpole's acceptance
// check at package level: a warm run serves the stored result without
// building a single distance matrix, and the served result is
// byte-identical (stable encoding) to the cold computation.
func TestStoreHitByteIdenticalZeroRebuilds(t *testing.T) {
	st := NewMemory()
	s := quickSpec()

	cold := scenario.RunCell(st, 0, s)
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	if cold.Cached {
		t.Fatal("first run reported cached")
	}

	builds := vec.MatrixBuildCount()
	rows := vec.MatrixRowUpdateCount()
	warm := scenario.RunCell(st, 0, s)
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if !warm.Cached {
		t.Fatal("second run did not hit the store")
	}
	if d := vec.MatrixBuildCount() - builds; d != 0 {
		t.Errorf("warm run built %d distance matrices, want 0", d)
	}
	if d := vec.MatrixRowUpdateCount() - rows; d != 0 {
		t.Errorf("warm run performed %d row updates, want 0", d)
	}
	if encode(t, warm.Result) != encode(t, cold.Result) {
		t.Error("cached result not byte-identical to cold run")
	}

	stats := st.Stats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Saves != 1 || stats.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 save, 1 entry", stats)
	}
}

// TestStorePersistsAcrossOpen writes through a file-backed store, then
// reopens it and expects a hit — the resume path krum-scenariod and
// krum-experiments -store rely on.
func TestStorePersistsAcrossOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s := quickSpec()
	cold := scenario.RunCell(st, 0, s)
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Entries; got != 1 {
		t.Fatalf("reloaded %d entries, want 1", got)
	}
	warm := scenario.RunCell(st2, 0, s)
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if !warm.Cached {
		t.Fatal("reopened store missed")
	}
	if encode(t, warm.Result) != encode(t, cold.Result) {
		t.Error("reloaded result not byte-identical")
	}
}

// TestStoreTruncatedTail tears the final record mid-line (the only
// corruption an append-only writer can produce) and expects Open to
// drop exactly that record, truncate the file, and keep appends clean.
func TestStoreTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a := quickSpec()
	b := quickSpec()
	b.Seed = 99
	if cr := scenario.RunCell(st, 0, a); cr.Err != nil {
		t.Fatal(cr.Err)
	}
	if cr := scenario.RunCell(st, 1, b); cr.Err != nil {
		t.Fatal(cr.Err)
	}
	st.Close()

	// Tear the last line in half.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(blob), "\n")
	if len(lines) < 3 || lines[2] != "" {
		t.Fatalf("expected 2 newline-terminated records, got %d segments", len(lines))
	}
	torn := lines[0] + lines[1][:len(lines[1])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	stats := st2.Stats()
	if stats.Entries != 1 {
		t.Errorf("entries = %d, want 1 (torn record dropped)", stats.Entries)
	}
	if stats.DroppedTailBytes == 0 {
		t.Error("DroppedTailBytes = 0, want the torn fragment size")
	}
	if _, ok := st2.Lookup(a); !ok {
		t.Error("intact record lost")
	}
	if _, ok := st2.Lookup(b); ok {
		t.Error("torn record served")
	}
	// The torn cell recomputes and re-persists cleanly.
	if cr := scenario.RunCell(st2, 1, b); cr.Err != nil || cr.Cached {
		t.Fatalf("recompute after tear: err=%v cached=%v", cr.Err, cr.Cached)
	}
	st2.Close()

	st3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := st3.Stats().Entries; got != 2 {
		t.Errorf("after repair reload: entries = %d, want 2", got)
	}
	if got := st3.Stats().DroppedTailBytes; got != 0 {
		t.Errorf("after repair reload: dropped tail %d bytes, want 0", got)
	}
}

// TestStoreDuplicateKeysLastWriteWins appends two records under the
// same key and expects the later one to be served.
func TestStoreDuplicateKeysLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s := quickSpec()
	first := mustRun(t, s)
	if err := st.Save(s, first); err != nil {
		t.Fatal(err)
	}
	// Second write under the same key with a recognizably different
	// (synthetic) payload.
	second := &distsgd.Result{
		History:           []distsgd.RoundStats{{Round: 0, TrainLoss: 123.5}},
		FinalParams:       []float64{1, 2, 3},
		FinalTestAccuracy: 0.5,
		FinalTestLoss:     0.25,
	}
	if err := st.Save(s, second); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Entries; got != 1 {
		t.Fatalf("entries = %d, want 1 (duplicates collapse)", got)
	}
	got, ok := st2.Lookup(s)
	if !ok {
		t.Fatal("duplicate-key record missed")
	}
	if encode(t, got) != encode(t, second) {
		t.Error("lookup served the first write; want last-write-wins")
	}
}

// TestStoreHashMismatchRecomputes edits a stored record's spec without
// updating its key — the "spec changed under the hash" corruption —
// and expects the record to be dropped at load so the cell recomputes
// instead of being stale-served.
func TestStoreHashMismatchRecomputes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s := quickSpec()
	if cr := scenario.RunCell(st, 0, s); cr.Err != nil {
		t.Fatal(cr.Err)
	}
	st.Close()

	// Hand-edit the record: double the round budget but keep the key.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]json.RawMessage
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	var spec scenario.Spec
	if err := json.Unmarshal(rec["spec"], &spec); err != nil {
		t.Fatal(err)
	}
	spec.Rounds *= 2
	edited, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec["spec"] = edited
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.Entries != 0 || stats.SkippedRecords != 1 {
		t.Errorf("stats = %+v, want 0 entries and 1 skipped record", stats)
	}
	edited2 := s
	edited2.Rounds *= 2
	for _, probe := range []scenario.Spec{s, edited2} {
		if _, ok := st2.Lookup(probe); ok {
			t.Errorf("tampered record served for %+v", probe.Label())
		}
	}
	// Both specs recompute from scratch.
	if cr := scenario.RunCell(st2, 0, s); cr.Err != nil || cr.Cached {
		t.Fatalf("recompute original: err=%v cached=%v", cr.Err, cr.Cached)
	}
}

// TestStoreSkipsMalformedInteriorLine checks that garbage between
// intact records is counted and skipped rather than failing the load
// or being served.
func TestStoreSkipsMalformedInteriorLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s := quickSpec()
	if cr := scenario.RunCell(st, 0, s); cr.Err != nil {
		t.Fatal(cr.Err)
	}
	st.Close()

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte("this is not json\n"), blob...)
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.Entries != 1 || stats.SkippedRecords != 1 {
		t.Errorf("stats = %+v, want 1 entry and 1 skipped record", stats)
	}
	if _, ok := st2.Lookup(s); !ok {
		t.Error("intact record lost behind a malformed line")
	}
}

// TestOpenRejectsEmptyPath pins the NewMemory/Open split.
func TestOpenRejectsEmptyPath(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded; want an error directing to NewMemory")
	}
}
