package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
)

// Segmented store format. A file-backed Store normally grows one
// append-only JSONL file forever; a SEGMENTED store bounds the live
// tail instead: once the tail crosses a size threshold it is sealed —
// its bytes become an immutable segment published through the Backend
// under a name that embeds their SHA-256 — and the tail restarts
// empty. Open replays sealed segments in sequence order and then the
// tail, with exactly today's corruption rules at each level:
//
//   - the tail keeps the single-file semantics: a torn final line is
//     truncated away, malformed or key-mismatched lines are skipped;
//   - a sealed segment is all-or-nothing: its content hash must match
//     the hash in its name, and a mismatch skips the WHOLE segment
//     (counted in Stats.Tampered) — a sealed blob was written
//     atomically, so any deviation is tampering or bit rot, never a
//     torn append;
//   - duplicate keys resolve last-write-wins across the whole replay
//     (segments in sequence order, then the tail), matching the order
//     the records were originally appended in.
//
// Compact merges every sealed segment into one: last write per key
// wins, superseded records and records that fail their integrity
// check are dropped, and the merged segment replaces its inputs. The
// tail is never compacted — it seals on its own schedule. Because the
// merged segment carries a higher sequence than its inputs, a crash
// between publishing it and removing them is harmless: the next Open
// replays old-then-merged and last-write-wins lands on identical
// entries.
//
// Crash windows, exhaustively: a crash mid-seal leaves either a *.tmp
// blob (ignored) or a published segment plus an untruncated tail — the
// same records twice, collapsing under last-write-wins to the same
// index, with the duplicates visible as Stats.Superseded until the
// next Compact. A crash mid-append tears only the tail's final line.
// There is no window in which a record that was acknowledged durable
// can be lost or a record can be served with bytes other than the ones
// saved.

// DefaultSealBytes is the tail size that triggers sealing when
// SegmentedOptions.SealBytes is zero.
const DefaultSealBytes = 4 << 20

// segmentPrefix and segmentSuffix frame every segment name:
// seg-<8-digit sequence>-<64-hex sha256>.jsonl.
const (
	segmentPrefix = "seg-"
	segmentSuffix = ".jsonl"
)

// segmentName renders the self-verifying name of a segment holding
// data: the sequence orders replay, the hash authenticates the bytes.
func segmentName(seq int, data []byte) string {
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%s%08d-%s%s", segmentPrefix, seq, hex.EncodeToString(sum[:]), segmentSuffix)
}

// parseSegmentName extracts the sequence and content hash from a
// segment name; ok is false for anything that is not a well-formed
// segment name (foreign files, temp files, path escapes).
func parseSegmentName(name string) (seq int, hash string, ok bool) {
	if name != filepath.Base(name) {
		return 0, "", false
	}
	rest, found := strings.CutPrefix(name, segmentPrefix)
	if !found {
		return 0, "", false
	}
	rest, found = strings.CutSuffix(rest, segmentSuffix)
	if !found {
		return 0, "", false
	}
	seqStr, hash, found := strings.Cut(rest, "-")
	if !found || len(seqStr) != 8 || len(hash) != sha256.Size*2 {
		return 0, "", false
	}
	seq, err := strconv.Atoi(seqStr)
	if err != nil || seq < 0 {
		return 0, "", false
	}
	if _, err := hex.DecodeString(hash); err != nil {
		return 0, "", false
	}
	return seq, hash, true
}

// verifySegment reports whether data hashes to the hash embedded in
// name — the wholesale integrity check Open and Compact apply before
// trusting a single line of a sealed segment.
func verifySegment(name string, data []byte) bool {
	_, want, ok := parseSegmentName(name)
	if !ok {
		return false
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]) == want
}

// SegmentedOptions tunes OpenSegmented.
type SegmentedOptions struct {
	// SealBytes is the tail size at which an append seals the tail into
	// a segment (0 means DefaultSealBytes). Tests use tiny values to
	// force sealing; production leaves the default.
	SealBytes int64
}

// OpenDir opens (creating if needed) a segmented store rooted at dir:
// sealed segments live in dir via a DirBackend and the live tail is
// dir/tail.jsonl. It is the directory-shaped sibling of Open — same
// lookup results, same corruption tolerance, bounded live file.
func OpenDir(dir string) (*Store, error) {
	return OpenDirOptions(dir, SegmentedOptions{})
}

// OpenDirOptions is OpenDir with explicit tuning.
func OpenDirOptions(dir string, opts SegmentedOptions) (*Store, error) {
	b, err := NewDirBackend(dir)
	if err != nil {
		return nil, err
	}
	return OpenSegmented(b, filepath.Join(dir, "tail.jsonl"), opts)
}

// OpenSegmented opens a segmented store: sealed segments through
// backend, the live append tail at tailPath (a local file — appends
// need a filesystem even when segments ship to an object store). The
// replay order is segments by sequence, then the tail; corruption
// handling is documented at the top of this file.
func OpenSegmented(backend Backend, tailPath string, opts SegmentedOptions) (*Store, error) {
	if backend == nil {
		return nil, fmt.Errorf("nil backend: %w", ErrStore)
	}
	sealBytes := opts.SealBytes
	if sealBytes <= 0 {
		sealBytes = DefaultSealBytes
	}
	s, err := Open(tailPath)
	if err != nil {
		return nil, err
	}
	// Open loaded the tail; graft the backend on and replay the sealed
	// segments UNDER it by rebuilding the index in replay order.
	s.backend = backend
	s.sealBytes = sealBytes
	if err := s.reloadSegmented(); err != nil {
		s.file.Close()
		return nil, err
	}
	return s, nil
}

// reloadSegmented rebuilds the index as segments-then-tail. The tail
// was already loaded (and its torn tail truncated) by Open; its lines
// must win over segment lines, so the index is cleared and the whole
// replay redone in order. Counters for the tail's skipped/tampered
// lines were set by the tail load and are preserved.
func (s *Store) reloadSegmented() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	names, err := s.backend.ListSegments()
	if err != nil {
		return err
	}
	// Reset index and re-count: segment records first, then the tail's
	// lines replayed from the (already truncated) file. The tail's
	// skip/tamper counters from the initial single-file load are reset
	// too — the tail lines run through indexLine again below, and
	// counting them twice would misreport the damage (DroppedTailBytes
	// stands: the truncation happened exactly once).
	s.index = make(map[string]json.RawMessage)
	s.diskKeys = make(map[string]struct{})
	s.stats.SkippedRecords = 0
	s.stats.Tampered = 0
	s.tailRecords = 0
	s.segRecords = 0
	s.segments = nil
	for _, name := range names {
		if seq, _, ok := parseSegmentName(name); ok && seq > s.segSeq {
			s.segSeq = seq
		}
		data, err := s.backend.ReadSegment(name)
		if err != nil {
			return err
		}
		if !verifySegment(name, data) {
			// The blob does not match the hash it was published under:
			// tampering or rot. Sealed blobs are atomic, so there is no
			// "torn tail" excuse — skip it wholesale, serve nothing from
			// it, and let the affected cells recompute.
			s.stats.Tampered++
			continue
		}
		s.segments = append(s.segments, name)
		for _, line := range splitLines(data) {
			s.indexLine(line, &s.segRecords)
		}
	}
	if err := s.replayTailLocked(); err != nil {
		return err
	}
	return nil
}

// replayTailLocked re-indexes the tail file's intact lines after the
// segments have been indexed; callers hold s.mu. The file was already
// truncated to whole lines by load, so a plain read to offset is a
// read of intact records.
func (s *Store) replayTailLocked() error {
	if s.offset == 0 {
		return nil
	}
	data := make([]byte, s.offset)
	if _, err := s.file.ReadAt(data, 0); err != nil && err != io.EOF {
		return fmt.Errorf("rereading tail %s: %w: %w", s.path, err, ErrStore)
	}
	for _, line := range splitLines(data) {
		s.indexLine(line, &s.tailRecords)
	}
	return nil
}

// splitLines cuts a blob of newline-terminated records into lines,
// dropping a trailing fragment (sealed segments never have one; the
// tail was truncated to whole lines at load).
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break
		}
		lines = append(lines, data[:i+1])
		data = data[i+1:]
	}
	return lines
}

// Seal publishes the current tail as an immutable segment and empties
// the tail. It is a no-op on an empty tail and an error on a store
// without a backend. Appends normally trigger sealing automatically at
// the SealBytes threshold; Seal exists for tests and for operators who
// want a consistent segment boundary (say, before replicating).
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.backend == nil {
		return fmt.Errorf("store has no segment backend: %w", ErrStore)
	}
	return s.sealLocked()
}

// sealLocked moves the tail's bytes into a new sealed segment; callers
// hold s.mu. The publish happens BEFORE the tail truncate, so a crash
// between the two duplicates records (resolved by last-write-wins at
// the next Open) instead of losing them.
func (s *Store) sealLocked() error {
	if s.offset == 0 || s.file == nil {
		return nil
	}
	data := make([]byte, s.offset)
	if _, err := s.file.ReadAt(data, 0); err != nil && err != io.EOF {
		return fmt.Errorf("reading tail for seal: %w: %w", err, ErrStore)
	}
	name := segmentName(s.segSeq+1, data)
	if err := s.backend.WriteSegment(name, data); err != nil {
		return err
	}
	s.segSeq++
	s.segments = append(s.segments, name)
	if err := s.rollbackTo(0); err != nil {
		// The segment holds every record, so the store is still fully
		// durable — the un-emptied tail just duplicates it until the
		// next successful truncate or Open.
		return fmt.Errorf("truncating sealed tail: %w: %w", err, ErrStore)
	}
	s.offset = 0
	s.segRecords += s.tailRecords
	s.tailRecords = 0
	s.stats.Seals++
	return nil
}

// Compact merges every sealed segment into one, last write per key
// winning, dropping superseded records and records or segments that
// fail their integrity checks, then removes the merged inputs. Foreign
// records — another kernel-order family's intact entries — are NOT
// integrity failures and merge through, so compacting under one family
// never loses the other family's results. Lookups are unchanged by
// construction — compaction rewrites where bytes live, never which
// bytes a key resolves to. The tail is untouched. A store without a
// backend errors; a store whose segments are already fully compacted
// is a no-op.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.backend == nil {
		return fmt.Errorf("store has no segment backend: %w", ErrStore)
	}
	names, err := s.backend.ListSegments()
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return nil
	}
	// Replay the sealed segments alone: final line per key, in
	// first-appearance key order (deterministic, append-flavored).
	final := make(map[string][]byte)
	var order []string
	dropped := false // any duplicate, malformed, or tampered byte on disk
	for _, name := range names {
		data, err := s.backend.ReadSegment(name)
		if err != nil {
			return err
		}
		if !verifySegment(name, data) {
			dropped = true
			continue // drop the tampered segment from disk below
		}
		for _, line := range splitLines(data) {
			_, key, v := decodeLine(line)
			if v != lineOK && v != lineForeign {
				// Malformed and tampered lines are dropped by the merge;
				// they were counted when Open replayed them. Foreign
				// records (another kernel-order family's intact entries)
				// merge through under their own stored keys — those are
				// collision-free with ours because the salt differs, so
				// last-write-wins stays per-family correct.
				dropped = v != lineEmpty
				continue
			}
			if _, seen := final[key]; !seen {
				order = append(order, key)
			} else {
				dropped = true // superseded copy goes away
			}
			final[key] = append([]byte(nil), line...)
		}
	}
	if len(names) == 1 && !dropped {
		return nil // one clean segment with no duplicates: nothing to gain
	}
	var merged []byte
	for _, key := range order {
		merged = append(merged, final[key]...)
	}
	if len(merged) > 0 {
		name := segmentName(s.segSeq+1, merged)
		if err := s.backend.WriteSegment(name, merged); err != nil {
			return err
		}
		s.segSeq++
		s.segments = []string{name}
	} else {
		s.segments = nil
	}
	// Inputs go only after the merged segment is durable; a failed
	// Remove leaves a lower-sequence duplicate that the next Open
	// resolves identically, so removal is best-effort but reported.
	var removeErr error
	for _, name := range names {
		if err := s.backend.Remove(name); err != nil && removeErr == nil {
			removeErr = err
		}
	}
	s.segRecords = len(final)
	s.stats.Compactions++
	return removeErr
}

// Segments returns the names of the sealed segments currently backing
// the store, in replay order (empty for non-segmented stores).
func (s *Store) Segments() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.segments...)
}
