package store_test

// Single-flight coverage, including the committed acceptance-criterion
// property test: N goroutines submitting one cell concurrently execute
// it exactly once (witnessed by the global distance-matrix build
// counter matching a single isolated execution) and every caller gets
// byte-identical results.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"krum/distsgd"
	"krum/internal/vec"
	"krum/scenario"
	"krum/scenario/store"
)

// writeFile is a tiny fixture helper.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// flightSpec is a small keyable cell whose krum rule builds distance
// matrices every round — the execution witness.
func flightSpec(seed uint64) scenario.Spec {
	return scenario.Spec{
		Workload:  "gmm(k=3,dim=6,radius=4,sigma=0.5)",
		Rule:      "krum",
		Schedule:  "inverset(gamma=0.5,power=0.75,t0=50)",
		N:         9,
		F:         2,
		Rounds:    10,
		BatchSize: 8,
		Seed:      seed,
	}
}

// TestSingleFlightConcurrentIdenticalCells is the property test: N
// concurrent submissions of one cell → exactly one execution,
// identical bytes for every caller.
func TestSingleFlightConcurrentIdenticalCells(t *testing.T) {
	spec := flightSpec(31)

	// Reference: the build cost of exactly one execution, in isolation.
	before := vec.MatrixBuildCount()
	ref := scenario.RunCell(store.NewMemory(), 0, spec)
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	perExecution := vec.MatrixBuildCount() - before
	if perExecution == 0 {
		t.Fatal("reference execution built no distance matrices; the property below would be vacuous")
	}
	refBytes, err := json.Marshal(ref.Result)
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	st := store.NewMemory()
	results := make([]scenario.CellResult, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	before = vec.MatrixBuildCount()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = scenario.RunCell(st, i, spec)
		}(i)
	}
	close(start)
	wg.Wait()

	if d := vec.MatrixBuildCount() - before; d != perExecution {
		t.Errorf("%d concurrent submissions built %d matrices, want the single-execution cost %d", n, d, perExecution)
	}
	leaders := 0
	for i, cr := range results {
		if cr.Err != nil {
			t.Fatalf("caller %d: %v", i, cr.Err)
		}
		if !cr.Cached {
			leaders++
		}
		got, err := json.Marshal(cr.Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(refBytes) {
			t.Errorf("caller %d: bytes differ from the isolated execution", i)
		}
	}
	if leaders != 1 {
		t.Errorf("%d callers report Cached=false, want exactly the one leader", leaders)
	}

	stats := st.Stats()
	if stats.Saves != 1 || stats.Entries != 1 {
		t.Errorf("store holds %d saves / %d entries, want exactly 1 (no duplicated results)", stats.Saves, stats.Entries)
	}
	if stats.Misses != 1 {
		t.Errorf("store counted %d misses, want 1 (the leader)", stats.Misses)
	}
	if stats.Hits+stats.FlightWaits != n-1 {
		t.Errorf("hits (%d) + flight waits (%d) = %d, want the %d followers",
			stats.Hits, stats.FlightWaits, stats.Hits+stats.FlightWaits, n-1)
	}
}

// TestSingleFlightSharesComputeWithWaiters drives DoCell directly with
// an instrumented compute: followers that arrive while the leader is
// computing wait and share its bytes, and compute runs once.
func TestSingleFlightSharesComputeWithWaiters(t *testing.T) {
	st := store.NewMemory()
	spec := flightSpec(5)
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	result := &distsgd.Result{FinalTestAccuracy: 0.75, FinalTestLoss: 0.5}

	compute := func() (*distsgd.Result, error) {
		calls.Add(1)
		close(entered)
		<-release
		return result, nil
	}

	leaderDone := make(chan scenario.CellResult, 1)
	go func() {
		leaderDone <- scenario.RunCellWith(st, 0, spec, compute)
	}()
	<-entered // the leader is inside compute; followers must now wait

	const followers = 4
	var wg sync.WaitGroup
	followerResults := make([]scenario.CellResult, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			followerResults[i] = scenario.RunCellWith(st, i+1, spec, func() (*distsgd.Result, error) {
				t.Error("a follower invoked compute")
				return nil, errors.New("unreachable")
			})
		}(i)
	}
	// Give the followers time to reach the flight table before the
	// leader finishes (correctness does not depend on this — a late
	// follower would hit the index instead — but waiting makes the
	// FlightWaits assertion meaningful).
	for st.Stats().FlightWaits < followers {
		time.Sleep(time.Millisecond)
	}
	close(release)
	leader := <-leaderDone
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	if leader.Err != nil || leader.Cached {
		t.Fatalf("leader: err=%v cached=%v", leader.Err, leader.Cached)
	}
	want, err := json.Marshal(result)
	if err != nil {
		t.Fatal(err)
	}
	for i, cr := range followerResults {
		if cr.Err != nil || !cr.Cached {
			t.Fatalf("follower %d: err=%v cached=%v", i, cr.Err, cr.Cached)
		}
		got, err := json.Marshal(cr.Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("follower %d: bytes differ from the leader's result", i)
		}
	}
	if st.Stats().FlightWaits != followers {
		t.Errorf("flight waits = %d, want %d", st.Stats().FlightWaits, followers)
	}
}

// TestSingleFlightErrorsPropagateUncached pins the failure contract:
// every waiter receives the leader's error, nothing is stored, and the
// next submission re-executes.
func TestSingleFlightErrorsPropagateUncached(t *testing.T) {
	st := store.NewMemory()
	spec := flightSpec(7)
	boom := errors.New("transient compute failure")
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan scenario.CellResult, 1)
	go func() {
		leaderDone <- scenario.RunCellWith(st, 0, spec, func() (*distsgd.Result, error) {
			calls.Add(1)
			close(entered)
			<-release
			return nil, boom
		})
	}()
	<-entered
	followerDone := make(chan scenario.CellResult, 1)
	go func() {
		followerDone <- scenario.RunCellWith(st, 1, spec, func() (*distsgd.Result, error) {
			t.Error("the follower must wait on the leader, not compute")
			return nil, errors.New("unreachable")
		})
	}()
	for st.Stats().FlightWaits < 1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	leader := <-leaderDone
	follower := <-followerDone

	if !errors.Is(leader.Err, boom) || !errors.Is(follower.Err, boom) {
		t.Fatalf("leader err %v, follower err %v; want the compute failure in both", leader.Err, follower.Err)
	}
	if st.Stats().Saves != 0 || st.Stats().Entries != 0 {
		t.Fatal("a failed execution was stored")
	}

	// The failure was not cached: a later submission re-executes.
	retry := scenario.RunCellWith(st, 2, spec, func() (*distsgd.Result, error) {
		calls.Add(1)
		return &distsgd.Result{FinalTestAccuracy: 1}, nil
	})
	if retry.Err != nil || calls.Load() != 2 {
		t.Fatalf("retry err=%v calls=%d, want a fresh execution", retry.Err, calls.Load())
	}
}

// TestSingleFlightHealsCorruptIndexEntry pins the self-repair path: a
// stored record whose key re-derives (so it loads) but whose result
// bytes no longer decode is treated as a miss, recomputed, AND
// overwritten — the corruption costs one recompute, not one per run
// forever.
func TestSingleFlightHealsCorruptIndexEntry(t *testing.T) {
	spec := flightSpec(13)
	c, err := store.Canonical(spec)
	if err != nil {
		t.Fatal(err)
	}
	key, err := store.Key(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-craft a record with a valid key/spec but an undecodable
	// result (the key does not cover the result bytes, so it loads).
	line, err := json.Marshal(map[string]any{
		"key":     key,
		"version": store.Version,
		"spec":    c,
		"result":  json.RawMessage(`{"final_params_b64": "%%%not-base64%%%"}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/cells.jsonl"
	if err := writeFile(path, append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Stats().Entries != 1 {
		t.Fatalf("fixture drifted: %d entries loaded", st.Stats().Entries)
	}

	var calls atomic.Int64
	healed := &distsgd.Result{FinalTestAccuracy: 0.9}
	first := scenario.RunCellWith(st, 0, spec, func() (*distsgd.Result, error) {
		calls.Add(1)
		return healed, nil
	})
	if first.Err != nil || first.StoreErr != nil || first.Cached || calls.Load() != 1 {
		t.Fatalf("corrupt entry: err=%v storeErr=%v cached=%v calls=%d; want one clean recompute",
			first.Err, first.StoreErr, first.Cached, calls.Load())
	}
	// The repaired entry now serves without recomputation.
	second := scenario.RunCellWith(st, 1, spec, func() (*distsgd.Result, error) {
		calls.Add(1)
		return nil, errors.New("must not recompute after healing")
	})
	if second.Err != nil || !second.Cached || calls.Load() != 1 {
		t.Fatalf("after healing: err=%v cached=%v calls=%d", second.Err, second.Cached, calls.Load())
	}
	want, _ := json.Marshal(healed)
	got, _ := json.Marshal(second.Result)
	if string(got) != string(want) {
		t.Error("healed entry serves different bytes")
	}
}

// TestSingleFlightStoreErrorOnlyAtLeader pins that a failed
// write-through surfaces as the leader's StoreErr while followers (who
// hold valid bytes) see none.
func TestSingleFlightStoreErrorOnlyAtLeader(t *testing.T) {
	// An unkeyable spec cannot be persisted or deduplicated: the cell
	// still computes, and the key failure lands in StoreErr.
	bad := flightSpec(9)
	bad.Rule = "no-such-rule"
	cr := scenario.RunCellWith(store.NewMemory(), 0, bad, func() (*distsgd.Result, error) {
		return &distsgd.Result{}, nil
	})
	if cr.Err != nil {
		t.Fatalf("cell err = %v, want success (only persistence can fail)", cr.Err)
	}
	if cr.StoreErr == nil {
		t.Fatal("unkeyable spec produced no StoreErr")
	}
	if cr.Cached {
		t.Fatal("unkeyable spec cannot be served from the store")
	}

	// A failing compute on an unkeyable spec reports the compute error,
	// not a store error.
	fail := scenario.RunCellWith(store.NewMemory(), 0, bad, func() (*distsgd.Result, error) {
		return nil, fmt.Errorf("boom")
	})
	if fail.Err == nil || fail.StoreErr != nil {
		t.Fatalf("err=%v storeErr=%v; want compute error only", fail.Err, fail.StoreErr)
	}
}
