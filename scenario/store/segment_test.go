package store

// Segmented-store coverage: the seal → compact → Open round-trip must
// serve bit-for-bit what the single-file JSONL store serves, and every
// crash window at a segment boundary — torn tail before a seal, torn
// tail after a seal, a seal that published its segment but died before
// truncating the tail — must resolve by today's rules: torn tails
// dropped, duplicates last-write-wins, tampered segments skipped
// wholesale.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"krum/distsgd"
	"krum/scenario"
)

// seededSpec is quickSpec with a distinct seed — one distinct store
// key per i.
func seededSpec(i int) scenario.Spec {
	s := quickSpec()
	s.Seed = uint64(1000 + i)
	return s
}

// fakeResult builds a small synthetic result whose stable encoding is
// recognizably tied to tag — cheap stand-ins for trained cells.
func fakeResult(tag int) *distsgd.Result {
	return &distsgd.Result{
		History:           []distsgd.RoundStats{{Round: 0, TrainLoss: float64(tag)}},
		FinalParams:       []float64{float64(tag), 2, 3},
		FinalTestAccuracy: 0.5,
		FinalTestLoss:     float64(tag) / 7,
	}
}

// lookupEncoded returns the stable encoding of a stored cell, failing
// the test on a miss.
func lookupEncoded(t *testing.T, st *Store, s scenario.Spec) string {
	t.Helper()
	res, ok := st.Lookup(s)
	if !ok {
		t.Fatalf("lookup miss for %s", s.Label())
	}
	return encode(t, res)
}

// tailPathOf is the live tail location of an OpenDir store.
func tailPathOf(dir string) string { return filepath.Join(dir, "tail.jsonl") }

// TestSegmentedRoundTripMatchesSingleFile is the issue's round-trip
// criterion: the same save sequence — including duplicate keys and an
// aux record — lands in a single-file store and a segmented store; the
// segmented one is sealed and compacted; after reopening both, every
// lookup is bit-for-bit identical across the two.
func TestSegmentedRoundTripMatchesSingleFile(t *testing.T) {
	base := t.TempDir()
	filePath := filepath.Join(base, "cells.jsonl")
	segDir := filepath.Join(base, "segmented")

	flat, err := Open(filePath)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := OpenDirOptions(segDir, SegmentedOptions{SealBytes: 1}) // seal after every append
	if err != nil {
		t.Fatal(err)
	}

	const cells = 5
	save := func(st *Store) {
		t.Helper()
		for i := 0; i < cells; i++ {
			if err := st.Save(seededSpec(i), fakeResult(i)); err != nil {
				t.Fatal(err)
			}
		}
		// Duplicate key: cell 2 re-saved with different bytes — the
		// later write must win everywhere.
		if err := st.Save(seededSpec(2), fakeResult(777)); err != nil {
			t.Fatal(err)
		}
		if err := st.SaveAux("table1", scenario.Spec{Rule: "krum", N: 9, F: 2}, "trials=3",
			json.RawMessage(`{"rate":0.25}`)); err != nil {
			t.Fatal(err)
		}
	}
	save(flat)
	save(seg)
	if got := seg.Stats().Seals; got == 0 {
		t.Fatalf("no seals happened at SealBytes=1 (stats: %s)", seg.Stats())
	}
	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}
	flat.Close()
	seg.Close()

	flat2, err := Open(filePath)
	if err != nil {
		t.Fatal(err)
	}
	defer flat2.Close()
	seg2, err := OpenDir(segDir)
	if err != nil {
		t.Fatal(err)
	}
	defer seg2.Close()

	if f, s := flat2.Stats().Entries, seg2.Stats().Entries; f != s {
		t.Fatalf("entries diverge: single-file %d, segmented %d", f, s)
	}
	for i := 0; i < cells; i++ {
		if a, b := lookupEncoded(t, flat2, seededSpec(i)), lookupEncoded(t, seg2, seededSpec(i)); a != b {
			t.Errorf("cell %d: segmented bytes differ from single-file bytes", i)
		}
	}
	// The duplicate resolved last-write-wins in both worlds.
	if got := lookupEncoded(t, seg2, seededSpec(2)); got != encode(t, fakeResult(777)) {
		t.Error("segmented store served the superseded copy of cell 2")
	}
	auxFlat, okF := flat2.LookupAux("table1", scenario.Spec{Rule: "krum", N: 9, F: 2}, "trials=3")
	auxSeg, okS := seg2.LookupAux("table1", scenario.Spec{Rule: "krum", N: 9, F: 2}, "trials=3")
	if !okF || !okS || string(auxFlat) != string(auxSeg) {
		t.Errorf("aux record diverges: single-file (%v) %q, segmented (%v) %q", okF, auxFlat, okS, auxSeg)
	}
	// Compaction left exactly one sealed segment and zero sealed-side
	// superseded debt (the duplicate save collapsed).
	if st := seg2.Stats(); st.Segments != 1 || st.Superseded != 0 {
		t.Errorf("after compact + reopen: %s; want 1 segment, 0 superseded", st)
	}
}

// TestSegmentedTornTailBeforeSeal is the crash-during-append case on
// the segment-N side of a boundary: the append that would have crossed
// the seal threshold tears. Open must drop exactly the torn fragment,
// keep every sealed and intact record, and let the next seal proceed
// cleanly.
func TestSegmentedTornTailBeforeSeal(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDirOptions(dir, SegmentedOptions{SealBytes: 1 << 30}) // no auto-seal
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := st.Save(seededSpec(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Tear the tail's final line mid-record.
	tail := tailPathOf(dir)
	blob, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(blob), "\n")
	torn := lines[0] + lines[1][:len(lines[1])/2]
	if err := os.WriteFile(tail, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.Entries != 1 || stats.DroppedTailBytes == 0 {
		t.Fatalf("after tear: %s; want 1 entry and a dropped tail", stats)
	}
	if _, ok := st2.Lookup(seededSpec(1)); ok {
		t.Error("torn record served")
	}
	// Sealing the survivor and re-saving the torn cell proceeds clean.
	if err := st2.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Save(seededSpec(1), fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	if st := st2.Stats(); st.Entries != 2 || st.Segments != 1 {
		t.Errorf("after repair: %s; want 2 entries in 1 segment + tail", st)
	}
}

// TestSegmentedTornTailAfterSeal is the segment-N+1 side: the crash
// tears the FIRST record of the fresh tail right after a seal. The
// sealed segment must be untouched and the empty-after-truncation tail
// must keep appending cleanly.
func TestSegmentedTornTailAfterSeal(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDirOptions(dir, SegmentedOptions{SealBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := st.Save(seededSpec(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(seededSpec(2), fakeResult(2)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Tear the tail's only record (the first after the seal) in half.
	tail := tailPathOf(dir)
	blob, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tail, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.Entries != 2 || stats.Segments != 1 || stats.DroppedTailBytes == 0 {
		t.Fatalf("after tear: %s; want the segment's 2 entries and a dropped tail", stats)
	}
	for i := 0; i < 2; i++ {
		if got := lookupEncoded(t, st2, seededSpec(i)); got != encode(t, fakeResult(i)) {
			t.Errorf("sealed cell %d served wrong bytes after boundary tear", i)
		}
	}
	if _, ok := st2.Lookup(seededSpec(2)); ok {
		t.Error("torn post-seal record served")
	}
	if err := st2.Save(seededSpec(2), fakeResult(2)); err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().Entries; got != 3 {
		t.Errorf("entries after repair = %d, want 3", got)
	}
}

// TestSegmentedCrashMidSeal exercises the publish-then-truncate
// window: the segment was published but the process died before the
// tail was emptied, so every record exists twice. Open must collapse
// the duplicates last-write-wins (identical bytes, so either copy
// serves the same result), report them as Superseded, and a
// seal + compact must clear the debt.
func TestSegmentedCrashMidSeal(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDirOptions(dir, SegmentedOptions{SealBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := st.Save(seededSpec(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Replay the crash by hand: publish the tail bytes as segment 1
	// and leave the tail as-is — exactly what a death between
	// WriteSegment and Truncate leaves behind.
	tailBytes, err := os.ReadFile(tailPathOf(dir))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WriteSegment(segmentName(1, tailBytes), tailBytes); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.Entries != 2 || stats.Superseded != 2 {
		t.Fatalf("after mid-seal crash: %s; want 2 entries, 2 superseded", stats)
	}
	for i := 0; i < 2; i++ {
		if got := lookupEncoded(t, st2, seededSpec(i)); got != encode(t, fakeResult(i)) {
			t.Errorf("cell %d served wrong bytes after mid-seal crash", i)
		}
	}
	// Seal the duplicated tail and compact: the debt collapses to one
	// record per key and lookups are unchanged.
	if err := st2.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats(); got.Superseded != 0 || got.Segments != 1 {
		t.Errorf("after seal+compact: %s; want 0 superseded in 1 segment", got)
	}
	st2.Close()

	st3, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	for i := 0; i < 2; i++ {
		if got := lookupEncoded(t, st3, seededSpec(i)); got != encode(t, fakeResult(i)) {
			t.Errorf("cell %d served wrong bytes after compaction reload", i)
		}
	}
}

// TestSegmentedDuplicatesStraddlingSegments writes three generations
// of one key across two sealed segments and the tail: replay order
// (segments by sequence, then tail) must resolve to the newest copy,
// Superseded must count the shadowed two, and compaction must drop the
// sealed-side duplicate while never touching which bytes the key
// serves.
func TestSegmentedDuplicatesStraddlingSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDirOptions(dir, SegmentedOptions{SealBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	spec := seededSpec(0)
	if err := st.Save(spec, fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(spec, fakeResult(2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(spec, fakeResult(3)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats := st2.Stats()
	if stats.Entries != 1 || stats.Superseded != 2 || stats.Segments != 2 {
		t.Fatalf("straddling duplicates: %s; want 1 entry, 2 superseded, 2 segments", stats)
	}
	if got := lookupEncoded(t, st2, spec); got != encode(t, fakeResult(3)) {
		t.Error("lookup did not serve the newest generation")
	}
	// Compact merges the two sealed generations into one record; the
	// tail still shadows it, so one superseded copy legitimately
	// remains until the tail itself seals and compacts.
	if err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats(); got.Segments != 1 || got.Superseded != 1 {
		t.Errorf("after compact: %s; want 1 segment, 1 superseded (the tail copy)", got)
	}
	if got := lookupEncoded(t, st2, spec); got != encode(t, fakeResult(3)) {
		t.Error("compaction changed the served bytes")
	}
	st2.Close()

	st3, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := lookupEncoded(t, st3, spec); got != encode(t, fakeResult(3)) {
		t.Error("reload after compaction changed the served bytes")
	}
}

// TestSegmentedTamperedSegmentSkippedWholesale flips one byte inside a
// sealed segment: the name hash no longer matches, so the WHOLE
// segment is skipped (its cells recompute — never stale-serve), the
// damage is counted, and compaction removes the corpse from disk.
func TestSegmentedTamperedSegmentSkippedWholesale(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDirOptions(dir, SegmentedOptions{SealBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := st.Save(seededSpec(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(seededSpec(2), fakeResult(2)); err != nil {
		t.Fatal(err)
	}
	segs := st.Segments()
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want exactly 1", segs)
	}
	st.Close()

	// Flip a byte mid-segment. The record lines inside may even still
	// parse — the wholesale hash check must reject the blob regardless.
	segPath := filepath.Join(dir, segs[0])
	blob, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(segPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats := st2.Stats()
	if stats.Entries != 1 || stats.Tampered != 1 || stats.Segments != 0 {
		t.Fatalf("after tamper: %s; want only the tail's entry, 1 tampered, 0 live segments", stats)
	}
	for i := 0; i < 2; i++ {
		if _, ok := st2.Lookup(seededSpec(i)); ok {
			t.Errorf("cell %d served from a tampered segment", i)
		}
	}
	if got := lookupEncoded(t, st2, seededSpec(2)); got != encode(t, fakeResult(2)) {
		t.Error("tail record lost behind the tampered segment")
	}
	// The tampered cells recompute (here: re-save) and compaction
	// removes the corrupt blob from disk for good.
	for i := 0; i < 2; i++ {
		if err := st2.Save(seededSpec(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st2.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	names, err := (&DirBackend{dir: dir}).ListSegments()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if name == segs[0] {
			t.Errorf("tampered segment %s still on disk after compaction", name)
		}
	}
	st3, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := st3.Stats(); got.Entries != 3 || got.Tampered != 0 {
		t.Errorf("after heal + compact: %s; want 3 entries, 0 tampered", got)
	}
}

// TestSegmentNameRoundTrip pins the self-verifying name scheme.
func TestSegmentNameRoundTrip(t *testing.T) {
	data := []byte("{\"key\":\"x\"}\n")
	name := segmentName(7, data)
	seq, _, ok := parseSegmentName(name)
	if !ok || seq != 7 {
		t.Fatalf("parseSegmentName(%q) = %d, %v", name, seq, ok)
	}
	if !verifySegment(name, data) {
		t.Fatal("freshly-named segment does not verify")
	}
	if verifySegment(name, append([]byte("x"), data...)) {
		t.Fatal("altered bytes still verify")
	}
	for _, bad := range []string{
		"seg-0000001-ffff.jsonl", // short seq, short hash
		"../" + name,             // path escape
		"tail.jsonl",             // the live tail is not a segment
		name + ".tmp",            // in-flight write
		"seg-abcdefgh-" + strings.Repeat("0", 64) + ".jsonl", // non-numeric seq
	} {
		if _, _, ok := parseSegmentName(bad); ok {
			t.Errorf("parseSegmentName accepted %q", bad)
		}
	}
}

// TestSegmentedAutoSeal pins the threshold trigger: with a tiny
// SealBytes every append seals, the tail stays bounded, and lookups
// are unaffected.
func TestSegmentedAutoSeal(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDirOptions(dir, SegmentedOptions{SealBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	const cells = 4
	for i := 0; i < cells; i++ {
		if err := st.Save(seededSpec(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Seals != cells || stats.Segments != cells {
		t.Fatalf("auto-seal: %s; want %d seals and %d segments", stats, cells, cells)
	}
	if fi, err := os.Stat(tailPathOf(dir)); err != nil || fi.Size() != 0 {
		t.Fatalf("tail not empty after sealing: size %v err %v", fi, err)
	}
	for i := 0; i < cells; i++ {
		if got := lookupEncoded(t, st, seededSpec(i)); got != encode(t, fakeResult(i)) {
			t.Errorf("cell %d wrong bytes after auto-seal", i)
		}
	}
	st.Close()

	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats(); got.Segments != 1 || got.Entries != cells {
		t.Errorf("after compact: %s; want %d entries in 1 segment", got, cells)
	}
	for i := 0; i < cells; i++ {
		if got := lookupEncoded(t, st2, seededSpec(i)); got != encode(t, fakeResult(i)) {
			t.Errorf("cell %d wrong bytes after compact", i)
		}
	}
}
