package store

import (
	"encoding/json"
	"fmt"
	"strings"

	"krum/attack"
	"krum/internal/core"
	"krum/internal/sgd"
	"krum/internal/vec"
	"krum/scenario"
)

// Auxiliary records: content-addressed storage for harness Monte-Carlo
// cells (table1's selection rates, the ablation's per-coordinate
// errors) that are pure functions of a PARTIAL scenario spec plus a
// free-form parameter string, rather than of a full distsgd run. They
// share the JSONL file, the Version salt, the corruption rules and the
// counters with cell records; the kind participates in every key, so
// the two families can never collide, and old readers skip aux lines
// as key mismatches instead of serving them.

// CanonicalAux resolves the axes a partial spec actually sets to their
// registry-canonical forms, leaving unset axes empty — the identity
// auxiliary keys hash. Unlike Canonical it tolerates specs without a
// workload or schedule (harness Monte-Carlo grids sweep only rules and
// attacks), and like Canonical it is idempotent and clears the
// cosmetic fields (Name, Parallel).
func CanonicalAux(s scenario.Spec) (scenario.Spec, error) {
	c := s
	c.Name = ""
	c.Parallel = 0
	if strings.TrimSpace(s.Rule) != "" {
		rule, err := core.ParseRuleIn(core.SpecContext{N: s.N, F: s.F}, s.Rule)
		if err != nil {
			return scenario.Spec{}, err
		}
		c.Rule = rule.Name()
	} else {
		c.Rule = ""
	}
	switch {
	case strings.TrimSpace(s.Attack) == "":
		c.Attack = "none"
	default:
		atk, err := attack.Parse(s.Attack)
		if err != nil {
			return scenario.Spec{}, err
		}
		c.Attack = atk.Name()
	}
	if strings.TrimSpace(s.Schedule) != "" {
		sched, err := sgd.ParseSchedule(s.Schedule)
		if err != nil {
			return scenario.Spec{}, err
		}
		c.Schedule = sched.Name()
	} else {
		c.Schedule = ""
	}
	if strings.TrimSpace(s.Workload) != "" {
		wl, err := canonicalWorkload(s.Workload, s.Seed)
		if err != nil {
			return scenario.Spec{}, err
		}
		c.Workload = wl
	} else {
		c.Workload = ""
	}
	return c, nil
}

// auxIdentity is the hashed preimage of an auxiliary key — JSON keeps
// the three components unambiguous whatever bytes params contains.
type auxIdentity struct {
	// Kind is the record family ("table1", "ablation", ...).
	Kind string `json:"kind"`
	// Params is the kind's extra identity string.
	Params string `json:"params"`
	// Spec is the canonical partial spec.
	Spec scenario.Spec `json:"spec"`
}

// KeyAux returns the content address of an auxiliary record:
// "sha256:" plus the hex SHA-256 of the Version salt and the JSON of
// (kind, params, canonical partial spec). Everything result-affecting
// must be in the spec or in params — as with Key, a changed identity
// recomputes and a bumped Version orphans every stored entry at once.
func KeyAux(kind string, s scenario.Spec, params string) (string, error) {
	c, err := CanonicalAux(s)
	if err != nil {
		return "", err
	}
	return keyOfAuxCanonical(kind, c, params)
}

// keyOfAuxCanonical hashes an already-canonical aux identity under the
// active order family.
func keyOfAuxCanonical(kind string, c scenario.Spec, params string) (string, error) {
	return keyOfAuxCanonicalWith(vec.KernelOrder(), kind, c, params)
}

// keyOfAuxCanonicalWith hashes an already-canonical aux identity under
// an explicit order-family salt (the foreign re-derivation path).
func keyOfAuxCanonicalWith(order, kind string, c scenario.Spec, params string) (string, error) {
	if strings.TrimSpace(kind) == "" {
		return "", fmt.Errorf("empty aux kind: %w", ErrStore)
	}
	blob, err := json.Marshal(auxIdentity{Kind: kind, Params: params, Spec: c})
	if err != nil {
		return "", fmt.Errorf("marshaling aux identity for hashing: %w: %w", err, ErrStore)
	}
	return hashKeyWith(order, blob), nil
}

// LookupAux returns the stored payload for an auxiliary identity, if
// any. As with Lookup, every internal failure is a miss — the harness
// then recomputes, which is always safe. The returned bytes are a
// private copy the caller may retain.
func (s *Store) LookupAux(kind string, spec scenario.Spec, params string) (json.RawMessage, bool) {
	key, err := KeyAux(kind, spec, params)
	if err != nil {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	return append(json.RawMessage(nil), raw...), true
}

// SaveAux persists an auxiliary payload (any valid JSON) under its
// identity, through the same append-and-index path as Save. The stored
// spec is the canonical partial form, so reloads re-derive the same
// key.
func (s *Store) SaveAux(kind string, spec scenario.Spec, params string, result json.RawMessage) error {
	if !json.Valid(result) {
		return fmt.Errorf("aux payload for kind %q is not valid JSON: %w", kind, ErrStore)
	}
	c, err := CanonicalAux(spec)
	if err != nil {
		return fmt.Errorf("canonicalizing aux spec: %w", err)
	}
	key, err := keyOfAuxCanonical(kind, c, params)
	if err != nil {
		return err
	}
	return s.appendRecord(record{Key: key, Version: Version, Kind: kind, Params: params, Spec: c, Result: result})
}
