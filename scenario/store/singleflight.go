package store

import (
	"encoding/json"
	"fmt"

	"krum/distsgd"
	"krum/scenario"
)

// Single-flight: in-flight execution dedup, the store-level complement
// of content addressing. Content addressing makes a COMPLETED cell
// free to repeat; single-flight makes an IN-PROGRESS cell free to
// repeat — when several callers submit the same key while no result is
// stored yet (two overlapping matrices, N racing goroutines, a fleet
// of scenariod workers pulling from one coordinator), exactly one
// "leader" computes and every "follower" waits for the leader's bytes.
// The result a follower receives is byte-identical to the leader's
// under distsgd.Result's stable encoding, because both decode the same
// stored raw message.

// flight is one in-progress execution. The leader publishes raw (or
// err) before closing done; followers block on done and then read —
// the close is the happens-before edge that makes the fields safe to
// read without the store lock.
type flight struct {
	done chan struct{}
	// raw is the leader's stable-encoded result (nil when err is set).
	raw json.RawMessage
	// err is the leader's compute failure, propagated to every waiter.
	err error
}

// DoCell implements scenario.SingleFlighter: it returns the cell's
// result, computing it via compute at most once per key across
// concurrent callers. The decision sequence under one lock acquisition
// is index (stored result → hit), then flights (someone is computing →
// wait), then leader (register a flight and compute). The leader
// encodes its result once, persists it through the ordinary append
// path (a failure is reported as storeErr, never as a result error)
// and hands the same bytes to every follower, so all callers decode
// identical raw messages. Compute failures are not cached: the flight
// is removed before waiters are released, so a later submission of the
// same key re-executes.
func (s *Store) DoCell(spec scenario.Spec, compute func() (*distsgd.Result, error)) (res *distsgd.Result, shared bool, storeErr, runErr error) {
	c, err := Canonical(spec)
	var key string
	if err == nil {
		key, err = keyOfCanonical(c)
	}
	if err != nil {
		// Unkeyable specs cannot be deduplicated or persisted: compute
		// directly, and surface the key failure as a store problem only
		// when there is a result whose persistence it prevented.
		res, runErr = compute()
		if runErr != nil {
			return nil, false, nil, runErr
		}
		return res, false, err, nil
	}

	s.mu.Lock()
	if raw, ok := s.index[key]; ok {
		s.mu.Unlock()
		if res, shared, _, err := decodeShared(raw); err == nil {
			s.mu.Lock()
			s.stats.Hits++
			s.mu.Unlock()
			return res, shared, nil, nil
		}
		// An undecodable index entry is a miss, same as Lookup's
		// contract: recompute (without dedup — the entry shadows the
		// flight table for this key anyway) and write the repaired
		// result back so the corruption heals instead of taxing every
		// future warm run.
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		res, runErr = compute()
		if runErr != nil {
			return nil, false, nil, runErr
		}
		fresh, err := json.Marshal(res)
		if err != nil {
			return res, false, fmt.Errorf("encoding result: %w: %w", err, ErrStore), nil
		}
		return res, false, s.appendRecord(record{Key: key, Version: Version, Spec: c, Result: fresh}), nil
	}
	if f, ok := s.flights[key]; ok {
		s.stats.FlightWaits++
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, nil, f.err
		}
		return decodeShared(f.raw)
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.stats.Misses++
	s.mu.Unlock()

	res, runErr = compute()
	if runErr != nil {
		f.err = runErr
		s.removeFlight(key)
		close(f.done)
		return nil, false, nil, runErr
	}
	raw, err := json.Marshal(res)
	if err != nil {
		// The result exists but cannot be encoded, so neither the store
		// nor the followers can be served; the leader still returns it.
		f.err = fmt.Errorf("encoding result: %w: %w", err, ErrStore)
		s.removeFlight(key)
		close(f.done)
		return res, false, f.err, nil
	}
	storeErr = s.appendRecord(record{Key: key, Version: Version, Spec: c, Result: raw})
	// Publish to followers only after the index holds the result (via
	// appendRecord) — a new submission arriving between flight removal
	// and done-close then hits the index instead of starting a second
	// compute. A failed append still publishes: the bytes are valid,
	// only their persistence failed.
	f.raw = raw
	s.removeFlight(key)
	close(f.done)
	return res, false, storeErr, nil
}

// removeFlight drops a finished flight from the in-flight table.
func (s *Store) removeFlight(key string) {
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
}

// decodeShared decodes a stored raw message into a caller-private
// result, with the shared flag set: the caller did not compute it.
func decodeShared(raw json.RawMessage) (*distsgd.Result, bool, error, error) {
	res := new(distsgd.Result)
	if err := json.Unmarshal(raw, res); err != nil {
		return nil, false, nil, fmt.Errorf("decoding shared result: %w: %w", err, ErrStore)
	}
	return res, true, nil, nil
}
